package dscs_test

import (
	"strings"
	"testing"
	"time"

	"dscs"
)

// TestPublicAPIQuickstart exercises the documented entry points end to end:
// build an environment, invoke the headline benchmark on the baseline and
// on DSCS, and check the paper's qualitative claim.
func TestPublicAPIQuickstart(t *testing.T) {
	env, err := dscs.NewEnvironment(7)
	if err != nil {
		t.Fatal(err)
	}
	b := dscs.BenchmarkBySlug("remote-sensing")
	if b == nil {
		t.Fatal("missing benchmark")
	}
	base, err := env.Baseline().Invoke(b, dscs.InvokeOptions{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := env.DSCS().Invoke(b, dscs.InvokeOptions{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if accel.Total() >= base.Total() {
		t.Fatalf("DSCS (%v) must beat the baseline (%v)", accel.Total(), base.Total())
	}
	if accel.Energy >= base.Energy {
		t.Fatal("DSCS must also win on energy")
	}
}

func TestPublicToolchain(t *testing.T) {
	cfg := dscs.PaperDSA()
	for _, m := range dscs.Models() {
		prog, err := dscs.Compile(m, 1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		st, err := dscs.Simulate(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if st.Cycles == 0 {
			t.Errorf("%s: no cycles simulated", m.Name)
		}
		if lat := st.Latency(cfg.Freq); lat <= 0 || lat > time.Second {
			t.Errorf("%s: implausible latency %v", m.Name, lat)
		}
		e, p := dscs.DSAEnergy(st, cfg)
		if e <= 0 || p <= 0 {
			t.Errorf("%s: degenerate energy estimate", m.Name)
		}
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(dscs.Experiments()) != 21 {
		t.Fatalf("registry size %d, want 21", len(dscs.Experiments()))
	}
	env, err := dscs.NewEnvironment(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dscs.RunExperiment("table2", env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "DSCS-Serverless") {
		t.Error("table2 output missing the proposed platform")
	}
	if _, err := dscs.RunExperiment("fig99", env); err == nil {
		t.Error("unknown experiment id must error")
	}
}

func TestDeploymentYAMLParses(t *testing.T) {
	for _, b := range dscs.Suite() {
		y := dscs.DeploymentYAML(b)
		if !strings.Contains(y, "accelerated: true") {
			t.Errorf("%s: YAML missing acceleration hints", b.Slug)
		}
	}
}

func TestDesignSpaceAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full DSE in -short mode")
	}
	points, err := dscs.ExploreDesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 650 {
		t.Fatalf("explored %d points, want >650", len(points))
	}
	if len(dscs.ParetoPower(points)) == 0 || len(dscs.ParetoArea(points)) == 0 {
		t.Fatal("empty frontiers")
	}
	best, ok := dscs.OptimalDesign(points)
	if !ok || best.Config.Rows != 128 {
		t.Fatalf("optimal = %+v, want a 128x128 array", best.Config)
	}
}
