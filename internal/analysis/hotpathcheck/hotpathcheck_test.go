package hotpathcheck_test

import (
	"testing"

	"dscs/internal/analysis/analysistest"
	"dscs/internal/analysis/hotpathcheck"
)

func TestHotPathAllocationDiscipline(t *testing.T) {
	analysistest.Run(t, hotpathcheck.Analyzer, "hotlabels")
}
