// Package hotlabels reproduces the hot-path allocation regression class:
// telemetry labels and map keys constructed per operation inside the
// submit→dispatch path, undoing the pre-resolved-handle discipline.
package hotlabels

import "fmt"

type counters struct {
	byKey map[string]int
}

// Submit is a hot-path root; everything it reaches inherits the
// discipline.
//
//dscslint:hotpath
func Submit(c *counters, pool string, n int) {
	record(c, pool, n)
}

func Dispatch(c *counters, pool string) { record(c, pool, 1) } //dscslint:hotpath

// record is not annotated itself but is reachable from both roots.
func record(c *counters, pool string, n int) {
	key := fmt.Sprintf("%s/%d", pool, n)       // want `fmt\.Sprintf formats \(and allocates\) in hot-path function record \(reachable from //dscslint:hotpath root Submit\)`
	label := "submit_total{pool=" + pool + "}" // want `string concatenation builds a label/key at runtime in hot-path function record`
	if c.byKey == nil {
		c.byKey = make(map[string]int) // want `map allocation in hot-path function record`
	}
	_ = map[string]bool{pool: true} // want `map literal allocates in hot-path function record`
	c.byKey[key] += n
	c.byKey[label] += n
}

// cold is NOT reachable from any root: the same spellings are fine here.
func cold(pool string, n int) string {
	m := map[string]int{pool: n}
	_ = m
	return fmt.Sprintf("%s/%d", pool, n)
}

// constKey: constant-folded concatenation allocates nothing at runtime.
//
//dscslint:hotpath
func constKey(c *counters) {
	const prefix = "serve_"
	c.byKey[prefix+"submit_total"]++
}

// missPath: a once-per-series cold branch inside a hot function carries
// a line-scoped allow with its reason.
//
//dscslint:hotpath
func missPath(c *counters, pool string) {
	if _, ok := c.byKey[pool]; !ok {
		//dscslint:allow hotpathcheck once-per-series miss; the steady state never takes this branch
		c.byKey[fmt.Sprintf("cold/%s", pool)] = 0
	}
	c.byKey[pool]++
}

// closures built on the hot path run on their own schedule; their bodies
// are not this analyzer's concern.
//
//dscslint:hotpath
func spawns(c *counters, pool string, run func(func())) {
	run(func() {
		c.byKey[fmt.Sprintf("bg/%s", pool)]++
	})
}
