// Package hotpathcheck enforces allocation discipline on the
// submit→dispatch hot path: inside any function reachable from a
// //dscslint:hotpath root, it flags fmt formatting calls, map
// allocations, and non-constant string concatenation — the three
// spellings behind every "construct a telemetry label per operation"
// regression. PR 6 bought a 6.7× submit-rate win by pre-resolving
// counter handles at pool construction and pooling request/batch
// allocations; a single fmt.Sprintf label in a dispatch loop silently
// undoes it, and nothing but this analyzer notices (the benchmark gate
// catches only a 20% cliff, long after the discipline eroded).
//
// Roots are explicit: annotate a function with //dscslint:hotpath in its
// doc comment (or trailing its declaration line). Reachability is the
// static intrapackage call graph from those roots — calls through
// interfaces and closures don't propagate, so packages on the path
// (sched's queue ops and policies, metrics' digest ingestion) annotate
// their own entry points. A cold sub-path inside a hot function (error
// construction, a once-per-series miss) carries a line-scoped
// //dscslint:allow hotpathcheck <reason>.
package hotpathcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dscs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathcheck",
	Doc:  "forbid fmt formatting, map allocation, and label concatenation in //dscslint:hotpath-rooted call paths",
	Run:  run,
}

func run(pass *analysis.Pass) {
	funcs := map[types.Object]*ast.FuncDecl{}
	var order []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				funcs[obj] = fd
				order = append(order, obj)
			}
		}
	}

	// rootOf maps every reachable function to the annotated root that
	// reaches it (first found wins; any witness will do for the message).
	rootOf := map[types.Object]string{}
	var queue []types.Object
	for _, obj := range order {
		fd := funcs[obj]
		if isRoot(pass, fd) {
			rootOf[obj] = displayName(fd)
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fd := funcs[obj]
		walkHot(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := pass.Callee(call)
			if callee == nil {
				return
			}
			target, ok := funcs[types.Object(callee)]
			if !ok {
				return
			}
			tobj := pass.TypesInfo.Defs[target.Name]
			if _, seen := rootOf[tobj]; !seen {
				rootOf[tobj] = rootOf[obj]
				queue = append(queue, tobj)
			}
		})
	}

	for obj, root := range rootOf {
		checkFunc(pass, funcs[obj], root)
	}
}

// isRoot reports a //dscslint:hotpath annotation on the declaration: in
// its doc comment, or trailing the func line.
func isRoot(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, analysis.DirectivePrefix+"hotpath") {
				return true
			}
		}
	}
	pos := pass.Fset.Position(fd.Pos())
	return pass.Dirs != nil && pass.Dirs.Hotpath(pos.Filename, pos.Line)
}

func displayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// walkHot visits the function body without descending into function
// literals: a closure built on the hot path runs on its own schedule
// (and building one is a distinct concern from this analyzer's three
// allocation classes).
func walkHot(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, root string) {
	name := displayName(fd)
	where := "hot-path function " + name
	if name != root {
		where += " (reachable from //dscslint:hotpath root " + root + ")"
	}
	// concats tracks nested string-concat nodes already covered by an
	// outer finding, so a+b+c reports once.
	concats := map[ast.Node]bool{}
	walkHot(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := pass.Callee(n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s formats (and allocates) in %s; pre-resolve the label or build the key without fmt", callee.Name(), where)
				return
			}
			// make(map[...]...) — builtin make of a map type.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map allocation in %s; allocate at construction and reuse", where)
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocates in %s; allocate at construction and reuse", where)
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD || concats[n] {
				return
			}
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Value != nil {
				return // not typed here, or constant-folded at compile time
			}
			basic, isBasic := tv.Type.Underlying().(*types.Basic)
			if !isBasic || basic.Info()&types.IsString == 0 {
				return
			}
			// Cover the nested adds so the chain reports once, at its head.
			ast.Inspect(n, func(inner ast.Node) bool {
				if b, ok := inner.(*ast.BinaryExpr); ok && b.Op == token.ADD {
					concats[b] = true
				}
				return true
			})
			pass.Reportf(n.Pos(), "string concatenation builds a label/key at runtime in %s; pre-resolve it or use a composite (struct) key", where)
		}
	})
}
