// Package directives pins the directive parser's failure modes: a
// //dscslint directive that fails to parse must surface as a finding of
// the "dscslint" checker, never a silent pass — a typo in an allow
// silently re-opens the hole it was meant to document.
package directives

// Each malformed directive below carries its expectation in the same
// comment (the harness reads expectation markers embedded in directive
// comments; the parser treats an inner double-slash as end of arguments).

//dscslint: // want `empty dscslint directive`

//dscslint:allow // want `//dscslint:allow needs an analyzer name and a reason`

//dscslint:allow clokcheck sim code must stay deterministic // want `//dscslint:allow names unknown analyzer "clokcheck"`

//dscslint:allow clockcheck // want `//dscslint:allow clockcheck needs a reason`

//dscslint:ignore clockcheck not a verb // want `unknown dscslint directive "ignore"`

// Well-formed directives parse without findings: a scoped allow with a
// reason, and a hotpath root annotation.
func ok() {
	//dscslint:allow clockcheck reviewed wall read for fixture purposes
	_ = 0
}

//dscslint:hotpath
func hot() {}
