package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Run applies every in-scope analyzer to every package and returns the
// combined findings, sorted by position. Malformed //dscslint
// directives are findings too (attributed to the "dscslint" checker):
// a directive that fails to parse must fail the build, not silently
// stop suppressing.
// CanonicalAnalyzers names the full suite for directive validation, so
// an allow directive naming a real analyzer parses even when a single
// analyzer runs in isolation (as the analysistest harness does).
var CanonicalAnalyzers = []string{"clockcheck", "rngcheck", "lockcheck", "hotpathcheck"}

func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	names := append([]string(nil), CanonicalAnalyzers...)
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, a := range analyzers {
		if !have[a.Name] {
			have[a.Name] = true
			names = append(names, a.Name)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := ParseDirectives(pkg.Fset, pkg.Files, names)
		out = append(out, dirs.Problems...)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dirs:      dirs,
			}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	SortDiagnostics(out)
	return out
}

// Format renders one finding for terminal output, with the file path
// made relative to base when possible.
func Format(d Diagnostic, base string) string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", relPath(d.Pos.Filename, base), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// GitHubAnnotation renders one finding as a GitHub Actions workflow
// command, so CI findings land as annotations on the PR diff.
func GitHubAnnotation(d Diagnostic, base string) string {
	// The message portion of a workflow command must escape % \r \n.
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Message)
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=dscslint/%s::%s",
		relPath(d.Pos.Filename, base), d.Pos.Line, d.Pos.Column, d.Analyzer, msg)
}

func relPath(path, base string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
