package rngcheck_test

import (
	"testing"

	"dscs/internal/analysis/analysistest"
	"dscs/internal/analysis/rngcheck"
)

func TestSplitStreamDeterminism(t *testing.T) {
	analysistest.Run(t, rngcheck.Analyzer, "rngstreams")
}
