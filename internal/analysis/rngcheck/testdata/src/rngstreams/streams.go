// Package rngstreams reproduces the two determinism bug classes rngcheck
// guards against: drawing from math/rand's shared global generator (one
// call interleaves with every other drawer and drifts the seeded
// goldens), and seeding a source from the wall clock (a run that can
// never be reproduced).
package rngstreams

import (
	"math/rand"
	"time"
)

func globalDraws(n int) int {
	k := rand.Intn(n)                  // want `rand\.Intn draws from the global math/rand generator`
	f := rand.Float64()                // want `rand\.Float64 draws from the global math/rand generator`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand generator`
	return k + int(f)
}

func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

// Indirection through a value does not make the global stream
// deterministic.
var pick = rand.Intn // want `rand\.Intn referenced as a value still draws from the global generator`

// seededStream is the sanctioned path: an explicitly seeded per-op
// stream. Constructor calls and methods on the stream are not flagged.
func seededStream(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) {})
	return r.Intn(n)
}

func escaped(n int) int {
	//dscslint:allow rngcheck fixture pin: the allow escape silences rngcheck too
	return rand.Intn(n)
}
