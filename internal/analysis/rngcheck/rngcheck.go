// Package rngcheck enforces split-stream RNG determinism: no code may
// draw from math/rand's package-level generator, and no seed may come
// from the wall clock. Every seeded golden in this repository (steal
// dominance, adaptive balance, the diurnal lifecycle run, the chaos
// trace) is bit-identical only because randomness flows through
// explicitly seeded per-op *rand.Rand streams (internal/sim/rng.go's
// split streams); one rand.Intn on the shared global interleaves with
// whoever else draws from it and drifts every golden downstream of the
// call. rand.NewSource(time.Now().UnixNano()) is the same bug at seed
// time — a run that can never be reproduced.
package rngcheck

import (
	"go/ast"
	"go/types"

	"dscs/internal/analysis"
)

// constructors build streams rather than drawing from the global one;
// they are the sanctioned API surface (their seeding is checked
// separately for wall-clock leaks).
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

var Analyzer = &analysis.Analyzer{
	Name: "rngcheck",
	Doc:  "forbid the global math/rand generator and wall-clock seeding",
	Run:  run,
}

func isRandPkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || !isRandPkg(fn) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand stream are the sanctioned path
			}
			if constructors[fn.Name()] {
				if leak, ok := wallClockArg(pass, call); ok {
					pass.Reportf(leak.Pos(),
						"%s.%s seeded from the wall clock: the run can never be reproduced; derive the seed from the experiment's -seed", fn.Pkg().Name(), fn.Name())
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global math/rand generator; use a seeded per-op *rand.Rand split stream so goldens stay bit-identical", fn.Pkg().Name(), fn.Name())
			return true
		})
		checkValueUses(pass, f)
	}
}

// checkValueUses flags package-level math/rand functions referenced as
// values (stored, passed) rather than called — the indirection does not
// make the global stream deterministic.
func checkValueUses(pass *analysis.Pass, f *ast.File) {
	calls := map[*ast.SelectorExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				calls[sel] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || calls[sel] {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isRandPkg(fn) || constructors[fn.Name()] {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s referenced as a value still draws from the global generator when called; pass a seeded *rand.Rand stream instead", fn.Pkg().Name(), fn.Name())
		return true
	})
}

// wallClockArg reports a time.Now call nested anywhere in the
// constructor's arguments. A nested rand constructor is not descended
// into — rand.New(rand.NewSource(time.Now...)) reports once, at the
// constructor whose argument actually reads the clock.
func wallClockArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Node, bool) {
	var found ast.Node
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.IsPkgFunc(inner, "time", "Now") {
				found = inner
				return false
			}
			if fn := pass.Callee(inner); fn != nil && isRandPkg(fn) && constructors[fn.Name()] {
				return false
			}
			return true
		})
	}
	return found, found != nil
}
