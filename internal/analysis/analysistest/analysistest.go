// Package analysistest runs one analyzer over a checked-in fixture
// package and compares its findings against // want expectations, the
// same contract as golang.org/x/tools' analysistest (reimplemented here
// because the build environment has no module proxy).
//
// A fixture lives in testdata/src/<name>/ beside the analyzer's test.
// Each expected finding is a trailing comment on the offending line:
//
//	x := time.Now() // want `reads wall time`
//
// The quoted text is a regexp matched against the finding's message;
// several expectations may share one line. Findings with no matching
// expectation, and expectations no finding matched, both fail the test
// — fixtures pin the analyzer red AND green.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dscs/internal/analysis"
)

// wantRE extracts the quoted regexps of one // want comment: Go-quoted
// ("...") or raw (`...`) strings, in order.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	source  string
	matched bool
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, applies the analyzer, and enforces the // want contract.
// Malformed //dscslint directives surface as findings of the "dscslint"
// checker, so directive-parser fixtures use the same mechanism.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", fixture, terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Fixture packages live under testdata/src and never match a scoped
	// analyzer's Packages prefixes; drop the scope so the analyzer runs.
	scopeFree := *a
	scopeFree.Packages = nil
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{&scopeFree})
	expectations := collectWants(t, pkg)

	for _, d := range diags {
		if !claim(expectations, d) {
			t.Errorf("unexpected finding at %s:%d: %s: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("no finding matched `%s` expected at %s:%d", e.source, filepath.Base(e.file), e.line)
		}
	}
}

func claim(expectations []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expectations {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				// The marker may trail other comment text (a fixture can
				// attach an expectation to a //dscslint: directive comment
				// this way, mirroring x/tools analysistest).
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed // want comment (no quoted regexp)", filepath.Base(pos.Filename), pos.Line)
				}
				for _, q := range quoted {
					src, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad // want string %s: %v", filepath.Base(pos.Filename), pos.Line, q, err)
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: bad // want regexp %s: %v", filepath.Base(pos.Filename), pos.Line, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, source: src})
				}
			}
		}
	}
	return out
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		if len(q) < 2 || !strings.HasSuffix(q, "`") {
			return "", fmt.Errorf("unterminated raw string")
		}
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}
