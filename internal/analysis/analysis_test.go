package analysis_test

import (
	"strings"
	"testing"

	"dscs/internal/analysis"
	"dscs/internal/analysis/analysistest"
)

// noop carries the directive-parser fixture: it reports nothing itself,
// so every finding over the fixture package comes from the parser.
var noop = &analysis.Analyzer{
	Name: "noopcheck",
	Doc:  "no-op carrier for directive-parser fixtures",
	Run:  func(*analysis.Pass) {},
}

func TestMalformedDirectivesAreFindings(t *testing.T) {
	analysistest.Run(t, noop, "directives")
}

func TestGitHubAnnotationEscapes(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "clockcheck",
		Message:  "100% wrong\r\ntwo lines",
	}
	d.Pos.Filename = "/repo/internal/serve/engine.go"
	d.Pos.Line = 7
	d.Pos.Column = 3
	got := analysis.GitHubAnnotation(d, "/repo")
	want := "::error file=internal/serve/engine.go,line=7,col=3,title=dscslint/clockcheck::100%25 wrong%0D%0Atwo lines"
	if got != want {
		t.Errorf("GitHubAnnotation:\n got %q\nwant %q", got, want)
	}
}

func TestFormatRelativizesInsideBaseOnly(t *testing.T) {
	d := analysis.Diagnostic{Analyzer: "rngcheck", Message: "m"}
	d.Pos.Filename = "/elsewhere/x.go"
	d.Pos.Line = 1
	d.Pos.Column = 1
	if got := analysis.Format(d, "/repo"); !strings.HasPrefix(got, "/elsewhere/x.go:1:1:") {
		t.Errorf("path outside base must stay absolute, got %q", got)
	}
}
