// Package analysis is a self-contained miniature of the go/analysis
// framework: named analyzers run over type-checked packages and report
// position-tagged diagnostics, subject to //dscslint source directives.
//
// The scheduler core's correctness rests on disciplines the compiler
// cannot see — clock injection (sims must never read wall time), per-op
// split-stream RNG determinism, never blocking while holding a pool
// lock, and pre-resolved hot-path telemetry. Each of those caused a
// real bug in PRs 4–8 and was, until this package, enforced only by
// reviewer memory. The analyzers under internal/analysis/... make them
// machine-checked; cmd/dscslint bundles them into a multichecker that
// CI runs beside staticcheck.
//
// The framework is stdlib-only on purpose: the build environment has no
// module proxy, so golang.org/x/tools (go/analysis, go/packages, SSA)
// is unavailable. Packages are loaded with `go list -export` plus
// go/parser and go/types (see load.go), and the lock analysis is an AST
// region analysis rather than SSA reachability — the covered bug
// classes are pinned by analysistest fixtures either way.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier — the name //dscslint:allow
	// directives refer to.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// equals, or lives under, one of these prefixes. Empty means every
	// package.
	Packages []string
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer is in scope for a package.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs holds the package's parsed //dscslint directives; Reportf
	// consults it so allowed findings never surface.
	Dirs *Directives

	diags      []Diagnostic
	suppressed int
}

// Reportf records a finding at pos unless a //dscslint:allow directive
// for this analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Dirs != nil && p.Dirs.Allowed(p.Analyzer.Name, position) {
		p.suppressed++
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed counts findings swallowed by allow directives.
func (p *Pass) Suppressed() int { return p.suppressed }

// Callee resolves the object a call statically invokes: a *types.Func
// for ordinary function and method calls, nil for calls through
// function-typed values, built-ins, and type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := p.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether call statically invokes the package-level
// function pkgPath.name (methods never match).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
