// Package lockcheck enforces lock-hold hygiene in the serve core: no
// blocking operation — channel send/receive/select, sync.WaitGroup.Wait,
// time.Sleep — and no call through a function-typed value (a callback
// whose latency and lock set the core cannot see) may execute while a
// sync.Mutex is held. PR 8's dead-pool livelock was exactly this bug: a
// worker spun while holding p.mu, starving every rescuer that needed the
// lock. The engine's discipline is to drop the pool lock before doing
// anything that can wait (stealInto's unlock/relock dance, executing
// outside the lock, sync.Cond parking — Cond.Wait releases its mutex and
// is deliberately not flagged).
//
// The analysis is a per-function AST region walk, not SSA: a region
// opens at X.Lock()/X.RLock() (or a TryLock-guarded branch) on any
// expression of type sync.Mutex/sync.RWMutex and closes at the matching
// Unlock; a deferred Unlock keeps the region open to the function's end.
// Branch-local acquisitions stay branch-local, and function literals are
// separate functions (a closure spawned under the lock runs on its own
// stack — unless invoked in place, in which case the region follows it).
// Interprocedural holds (a helper documented "callers hold p.mu") are
// out of AST reach; the runtime -race property harnesses cover that
// layer, as ARCHITECTURE.md's invariants table records.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"dscs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockcheck",
	Doc:      "forbid blocking operations and opaque callbacks while a mutex is held",
	Packages: []string{"dscs/internal/serve"},
	Run:      run,
}

func run(pass *analysis.Pass) {
	s := &scanner{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				s.block(fd.Body.List, map[string]bool{})
			}
		}
	}
}

type scanner struct {
	pass *analysis.Pass
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
	opTryLock
)

// mutexOp classifies a call as a lock-shaped operation on an expression
// of mutex type, returning the lock expression's source spelling as the
// region key ("p.mu", "e.balanceMu", ...).
func (s *scanner) mutexOp(call *ast.CallExpr) (string, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	case "TryLock", "TryRLock":
		op = opTryLock
	default:
		return "", opNone
	}
	tv, ok := s.pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", opNone
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", opNone
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), op
	}
	return "", opNone
}

// block walks a statement list in order, tracking the held-mutex set.
// Acquisitions inside a nested branch do not escape it (the walk
// under-approximates rather than report false positives on
// path-dependent locking).
func (s *scanner) block(stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		s.stmt(st, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (s *scanner) stmt(st ast.Stmt, held map[string]bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if path, op := s.mutexOp(call); op != opNone {
				switch op {
				case opLock:
					held[path] = true
				case opUnlock:
					delete(held, path)
				}
				return
			}
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		if _, op := s.mutexOp(st.Call); op == opUnlock {
			// The region stays open to the function's end; nothing to do.
			return
		}
		// Other deferred calls run at return time with an unknowable
		// lock set; only their argument expressions evaluate now.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.GoStmt:
		// The goroutine runs on its own stack without the caller's
		// locks; its argument expressions evaluate here, though.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.block(lit.Body.List, map[string]bool{})
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Arrow, "channel send while holding %s can block the lock's every other user; drop the lock first", heldName(held))
		}
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			s.pass.Reportf(st.Select, "select while holding %s blocks on channel readiness with the lock pinned; drop the lock first", heldName(held))
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		// A TryLock-guarded branch holds the mutex inside the branch.
		if call, ok := ast.Unparen(st.Cond).(*ast.CallExpr); ok {
			if path, op := s.mutexOp(call); op == opTryLock {
				inner := copyHeld(held)
				inner[path] = true
				s.block(st.Body.List, inner)
				if st.Else != nil {
					s.stmt(st.Else, copyHeld(held))
				}
				return
			}
		}
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		body := copyHeld(held)
		s.block(st.Body.List, body)
		if st.Post != nil {
			s.stmt(st.Post, body)
		}
	case *ast.RangeStmt:
		s.expr(st.X, held)
		if len(held) > 0 {
			if tv, ok := s.pass.TypesInfo.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.pass.Reportf(st.For, "ranging over a channel while holding %s blocks the lock on every receive; drop the lock first", heldName(held))
				}
			}
		}
		s.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.expr(e, held)
				}
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.stmt(st.Assign, held)
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		s.block(st.List, held)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	}
}

// blockingCallees are static callees that park the goroutine. Cond.Wait
// is deliberately absent: it releases its associated mutex while parked,
// which is the engine's sanctioned way to wait under p.mu.
var blockingCallees = map[string]string{
	"(*sync.WaitGroup).Wait": "waits on a WaitGroup",
	"time.Sleep":             "sleeps",
}

func (s *scanner) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A separate function: runs later, without these locks.
			s.block(n.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				s.pass.Reportf(n.OpPos, "channel receive while holding %s can block the lock's every other user; drop the lock first", heldName(held))
			}
		case *ast.CallExpr:
			// An immediately-invoked literal runs here, locks and all.
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, a := range n.Args {
					s.expr(a, held)
				}
				s.block(lit.Body.List, copyHeld(held))
				return false
			}
			if len(held) == 0 {
				return true
			}
			if _, op := s.mutexOp(n); op != opNone {
				// Nested acquisition of a second mutex (the engine's
				// ordered two-pool steal) is a lock-ordering question,
				// not a blocking-callback one; out of scope here.
				return true
			}
			fn := s.pass.Callee(n)
			if fn == nil {
				if s.isDynamicFuncCall(n) {
					s.pass.Reportf(n.Pos(), "call through a function value while holding %s runs an opaque callback under the lock; drop the lock or pre-resolve the work", heldName(held))
				}
				return true
			}
			if why, bad := blockingCallees[fn.FullName()]; bad {
				s.pass.Reportf(n.Pos(), "%s %s while holding %s; drop the lock first", fn.FullName(), why, heldName(held))
			}
		}
		return true
	})
}

// isDynamicFuncCall reports a call whose callee is a function-typed
// value (field, parameter, variable) — not a declared function, method,
// builtin, or type conversion.
func (s *scanner) isDynamicFuncCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	tv, ok := s.pass.TypesInfo.Types[fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
		return false
	}
	// Method values and interface methods resolve to *types.Func via
	// Callee; reaching here means the callee is a plain value.
	return true
}

func heldName(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
