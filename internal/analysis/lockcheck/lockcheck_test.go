package lockcheck_test

import (
	"testing"

	"dscs/internal/analysis/analysistest"
	"dscs/internal/analysis/lockcheck"
)

func TestLockHoldHygiene(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "lockhold")
}
