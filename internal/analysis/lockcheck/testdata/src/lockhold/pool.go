// Package lockhold reproduces the lock-hold bug classes behind PR 8's
// dead-pool livelock: blocking operations and opaque callbacks executed
// while a pool mutex is held, starving every other goroutine that needs
// the lock to make progress.
package lockhold

import (
	"sync"
	"time"
)

type pool struct {
	mu   sync.Mutex
	bal  sync.RWMutex
	work chan int
	done chan struct{}
	hook func()
	wg   sync.WaitGroup
	cond *sync.Cond
	n    int
}

// livelock is the historical bug shape: every statement between Lock and
// Unlock that can wait pins the lock for the duration.
func (p *pool) livelock() {
	p.mu.Lock()
	v := <-p.work                // want `channel receive while holding p\.mu`
	p.work <- v                  // want `channel send while holding p\.mu`
	p.hook()                     // want `call through a function value while holding p\.mu`
	p.wg.Wait()                  // want `\(\*sync\.WaitGroup\)\.Wait waits on a WaitGroup while holding p\.mu`
	time.Sleep(time.Millisecond) // want `time\.Sleep sleeps while holding p\.mu`
	select {                     // want `select while holding p\.mu`
	case v = <-p.work:
	case <-p.done:
	}
	p.mu.Unlock()
	// After the unlock the same operations are fine.
	v = <-p.work
	p.work <- v
	p.hook()
	_ = v
}

// deferredUnlock holds to the function's end: the receive is still under
// the lock even though no explicit Unlock precedes it.
func (p *pool) deferredUnlock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.work // want `channel receive while holding p\.mu`
}

// tryLockBranch: a TryLock-guarded branch holds the mutex inside the
// branch only.
func (p *pool) tryLockBranch() {
	if p.bal.TryLock() {
		p.hook() // want `call through a function value while holding p\.bal`
		p.bal.Unlock()
	}
	p.hook()
}

// rangeChan: ranging over a channel blocks on every receive.
func (p *pool) rangeChan() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range p.work { // want `ranging over a channel while holding p\.mu`
	}
}

// goroutinesEscape: a goroutine spawned under the lock runs on its own
// stack without it, and a closure stored for later runs later — neither
// is flagged. An immediately-invoked literal runs here, locks and all.
func (p *pool) goroutinesEscape() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() { p.work <- 1 }()
	p.hook = func() { <-p.done }
	func() {
		<-p.done // want `channel receive while holding p\.mu`
	}()
}

// condWait is the sanctioned way to wait under the lock: Cond.Wait
// releases its mutex while parked and must not be flagged.
func (p *pool) condWait() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.n == 0 {
		p.cond.Wait()
	}
	p.n--
}

// unlockThenBlock is the engine's stealInto discipline: drop the lock,
// do the waiting work, retake it.
func (p *pool) unlockThenBlock() {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	p.work <- n
	p.mu.Lock()
	p.n = 0
	p.mu.Unlock()
}

// allowEscape: a reviewed exception documents itself with a reason.
func (p *pool) allowEscape() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done <- struct{}{} //dscslint:allow lockcheck buffered signal channel sized to writers; send cannot block
}
