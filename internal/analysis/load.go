package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked analysis target.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-check problems. The analyzers run
	// anyway — a half-checked package still yields useful findings —
	// but the driver surfaces them so a broken tree is never silently
	// "clean".
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the go list patterns, rooted at
// dir (a directory inside the module). Dependencies resolve through the
// gc export data `go list -export` places in the build cache, so loading
// needs no module proxy and no golang.org/x/tools. Only non-test Go
// files are loaded — the invariants the analyzers enforce guard
// production code paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	index := map[string]*listEntry{}
	var targets []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		index[e.ImportPath] = e
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := index[path]
		if !ok || e.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e.Export)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("analysis: %s: %s", t.ImportPath, t.Error.Err)
		}
		p, err := check(fset, imp, t, index)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at dir from its .go
// files directly, without consulting go list for the package itself —
// the analysistest harness uses it for fixture packages under testdata,
// which the go tool refuses to enumerate. Imports still resolve through
// export data; the importing package must sit inside a module so `go
// list` can price its (stdlib) imports.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	t := &listEntry{ImportPath: filepath.Base(dir), Dir: dir}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			t.GoFiles = append(t.GoFiles, e.Name())
		}
	}
	if len(t.GoFiles) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	// Parse first so the fixture's imports are known, then ask go list
	// for their export data in one shot.
	fset := token.NewFileSet()
	files, parseErr := parseAll(fset, t)
	if parseErr != nil {
		return nil, parseErr
	}
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, is := range f.Imports {
			path := importPathOf(is)
			if path != "" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	index := map[string]*listEntry{}
	if len(imports) > 0 {
		args := append([]string{"list", "-e", "-deps", "-export",
			"-json=ImportPath,Export,Standard,Error"}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list %v: %v\n%s", imports, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			e := new(listEntry)
			if err := dec.Decode(e); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			index[e.ImportPath] = e
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := index[path]
		if !ok || e.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e.Export)
	})
	return checkParsed(fset, imp, t, files)
}

func importPathOf(is *ast.ImportSpec) string {
	if is.Path == nil {
		return ""
	}
	s := is.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return ""
}

func parseAll(fset *token.FileSet, t *listEntry) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listEntry, index map[string]*listEntry) (*Package, error) {
	if len(t.CgoFiles) > 0 {
		return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", t.ImportPath)
	}
	files, err := parseAll(fset, t)
	if err != nil {
		return nil, err
	}
	// ImportMap is empty for an unvendored module, but honor it if set.
	if len(t.ImportMap) > 0 {
		base := imp
		imp = importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := t.ImportMap[path]; ok {
				path = mapped
			}
			return base.Import(path)
		})
		_ = index
	}
	return checkParsed(fset, imp, t, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, t *listEntry, files []*ast.File) (*Package, error) {
	p := &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, _ := conf.Check(t.ImportPath, fset, files, p.Info)
	p.Types = pkg
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
