package clockcheck_test

import (
	"testing"

	"dscs/internal/analysis/analysistest"
	"dscs/internal/analysis/clockcheck"
)

func TestClockInjection(t *testing.T) {
	analysistest.Run(t, clockcheck.Analyzer, "clockinject")
}
