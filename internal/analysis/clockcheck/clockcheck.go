// Package clockcheck enforces clock injection: packages shared between
// the live engine and the discrete-event simulations must never read or
// schedule against wall time. A single time.Now in a sim-shared path
// desynchronizes the virtual clock from the state machine it drives and
// silently breaks every seeded golden; the whole design of
// internal/serve's clock-free core (core.go, lifecycle.go) exists so
// that both clocks drive one implementation.
//
// The live engine's wall-clock files (engine.go's timers, fault.go's
// wall-clock fault injector) are the sanctioned exception: they declare
// it with a file-scoped
//
//	//dscslint:allow clockcheck <reason>
//
// directive above their package clause, which doubles as documentation
// that the file is the wall-clock half.
package clockcheck

import (
	"go/ast"
	"go/types"

	"dscs/internal/analysis"
)

// banned maps time package identifiers to why they are disallowed in
// clock-injected packages. Both calls and bare references are flagged —
// storing time.Now in a clock field is the same leak one step removed.
var banned = map[string]string{
	"Now":       "reads wall time",
	"Since":     "reads wall time",
	"Until":     "reads wall time",
	"Sleep":     "blocks on the wall clock",
	"After":     "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
}

var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc:  "forbid wall-clock reads and timers in clock-injected packages",
	Packages: []string{
		"dscs/internal/cluster",
		"dscs/internal/trace",
		"dscs/internal/sched",
		"dscs/internal/scale",
		"dscs/internal/serve",
		"dscs/internal/workflow",
	},
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			why, bad := banned[fn.Name()]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s in a clock-injected package; take now from the caller's clock, or mark a wall-clock file with //dscslint:allow clockcheck <reason>",
				fn.Name(), why)
			return true
		})
	}
}
