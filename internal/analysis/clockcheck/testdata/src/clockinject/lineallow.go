package clockinject

import "time"

// lineScoped exercises the two line-scoped allow spellings: a directive
// on its own line covers the line below; a trailing directive covers its
// own line (and the one after — keep it on the region's last line).
// Anything else in the function is still flagged.
func lineScoped() time.Time {
	//dscslint:allow clockcheck deliberate wall read to stamp fixture output
	a := time.Now()
	b := time.Now()    // want `time\.Now reads wall time`
	d := time.Since(b) // want `time\.Since reads wall time`
	_ = d
	return a.Add(time.Since(b)) //dscslint:allow clockcheck trailing form covers its own line
}
