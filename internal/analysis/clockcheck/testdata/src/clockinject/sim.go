// Package clockinject mimics a clock-injected simulation package: every
// timestamp must come from the injected virtual clock, never the wall.
// This fixture reproduces the bug class clockcheck exists for — a wall
// read in a sim-shared path desynchronizes the virtual clock and breaks
// every seeded golden downstream.
package clockinject

import "time"

// Clock is the injected time source the package is supposed to use.
type Clock struct{ now time.Time }

// Now returns the virtual timestamp; method calls on injected clocks are
// the sanctioned path and must not be flagged.
func (c *Clock) Now() time.Time { return c.now }

func step(c *Clock) time.Duration {
	start := c.Now()                // injected clock: fine
	wall := time.Now()              // want `time\.Now reads wall time`
	time.Sleep(time.Millisecond)    // want `time\.Sleep blocks on the wall clock`
	<-time.After(time.Millisecond)  // want `time\.After schedules on the wall clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer schedules on the wall clock`
	t.Stop()
	time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc schedules on the wall clock`
	_ = wall
	return time.Since(start) // want `time\.Since reads wall time`
}

// A bare reference leaks the wall clock just as surely as a call:
// storing time.Now in a clock field is the same bug one step removed.
var nowFn = time.Now // want `time\.Now reads wall time`

// Pure duration arithmetic and time.Time methods never touch the wall.
func window(d time.Duration, deadline time.Time) bool {
	return deadline.Add(d).After(deadline)
}
