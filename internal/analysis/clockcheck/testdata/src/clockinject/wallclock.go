//dscslint:allow clockcheck fixture for the sanctioned wall-clock-half escape: the whole file is exempt

package clockinject

import "time"

// wallDeadline models a live-engine file that is *supposed* to read wall
// time (timer arming, fault windows). The file-scoped allow above the
// package clause exempts every use in this file — none of these carry
// an expectation comment.
func wallDeadline(d time.Duration) time.Time {
	time.Sleep(0)
	return time.Now().Add(d)
}
