package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces every dscslint source directive.
const DirectivePrefix = "//dscslint:"

// DirectiveChecker is the analyzer name malformed-directive findings are
// attributed to. Directives are load-bearing — a typo in one silently
// re-opens the hole it was meant to document — so parse problems are
// diagnostics, never a silent pass.
const DirectiveChecker = "dscslint"

// Directives holds one package's parsed //dscslint directives.
//
// Two verbs exist:
//
//	//dscslint:allow <analyzer> <reason>
//	//dscslint:hotpath [note]
//
// An allow directive placed before the package clause suppresses the
// named analyzer for the whole file (the sanctioned spelling for the
// live engine's wall-clock files); anywhere else it suppresses findings
// on its own line and the line directly below, so it can trail the
// flagged statement or sit just above it. A hotpath directive in a
// function's doc comment (or trailing its declaration line) marks that
// function as a hot-path root for the hotpathcheck analyzer.
type Directives struct {
	fileAllows map[string]map[string]bool
	lineAllows map[string]map[int]map[string]bool
	hotpaths   map[string]map[int]bool
	// Problems collects malformed directives: unknown verbs, unknown
	// analyzer names, and allows with no reason.
	Problems []Diagnostic
}

// ParseDirectives scans the files' comments for //dscslint directives.
// known lists the analyzer names an allow directive may legally name.
func ParseDirectives(fset *token.FileSet, files []*ast.File, known []string) *Directives {
	knownSet := make(map[string]bool, len(known))
	for _, k := range known {
		knownSet[k] = true
	}
	d := &Directives{
		fileAllows: map[string]map[string]bool{},
		lineAllows: map[string]map[int]map[string]bool{},
		hotpaths:   map[string]map[int]bool{},
	}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, DirectivePrefix) {
					d.parse(fset, f, c, knownSet, known)
				}
			}
		}
	}
	return d
}

func (d *Directives) parse(fset *token.FileSet, f *ast.File, c *ast.Comment, known map[string]bool, knownList []string) {
	pos := fset.Position(c.Pos())
	body := strings.TrimPrefix(c.Text, DirectivePrefix)
	// An embedded "//" starts inner commentary (fixtures hang // want
	// expectations off directive comments this way); the directive's
	// arguments end there.
	if i := strings.Index(body, "//"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		d.problem(pos, "empty dscslint directive (want //dscslint:allow or //dscslint:hotpath)")
		return
	}
	verb := fields[0]
	switch verb {
	case "allow":
		if len(fields) < 2 {
			d.problem(pos, "//dscslint:allow needs an analyzer name and a reason")
			return
		}
		name := fields[1]
		if !known[name] {
			d.problem(pos, "//dscslint:allow names unknown analyzer %q (known: %s)", name, strings.Join(knownList, ", "))
			return
		}
		if len(fields) < 3 {
			d.problem(pos, "//dscslint:allow %s needs a reason — say why the invariant does not apply here", name)
			return
		}
		if c.End() < f.Package {
			// Before the package clause: the whole file is exempt.
			m := d.fileAllows[pos.Filename]
			if m == nil {
				m = map[string]bool{}
				d.fileAllows[pos.Filename] = m
			}
			m[name] = true
			return
		}
		lines := d.lineAllows[pos.Filename]
		if lines == nil {
			lines = map[int]map[string]bool{}
			d.lineAllows[pos.Filename] = lines
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			m := lines[line]
			if m == nil {
				m = map[string]bool{}
				lines[line] = m
			}
			m[name] = true
		}
	case "hotpath":
		m := d.hotpaths[pos.Filename]
		if m == nil {
			m = map[int]bool{}
			d.hotpaths[pos.Filename] = m
		}
		m[pos.Line] = true
	default:
		d.problem(pos, "unknown dscslint directive %q (want allow or hotpath)", verb)
	}
}

func (d *Directives) problem(pos token.Position, format string, args ...any) {
	d.Problems = append(d.Problems, Diagnostic{
		Analyzer: DirectiveChecker,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether an allow directive for the analyzer covers pos.
func (d *Directives) Allowed(analyzer string, pos token.Position) bool {
	if d.fileAllows[pos.Filename][analyzer] {
		return true
	}
	return d.lineAllows[pos.Filename][pos.Line][analyzer]
}

// Hotpath reports whether a //dscslint:hotpath directive sits at the
// given file line.
func (d *Directives) Hotpath(filename string, line int) bool {
	return d.hotpaths[filename][line]
}
