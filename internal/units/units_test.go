package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{3500 * KB, "3.50MB"},
		{7 * GB, "7.00GB"},
		{2 * TB, "2.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB at 1 GB/s takes one second.
	if got := GBps.TransferTime(GB); got != time.Second {
		t.Errorf("1GB at 1GB/s = %v, want 1s", got)
	}
	// 100 Gb/s link moves 12.5 GB/s.
	if got := Gbps(100).TransferTime(125 * MB); got != 10*time.Millisecond {
		t.Errorf("125MB at 100Gbps = %v, want 10ms", got)
	}
	if got := Bandwidth(0).TransferTime(GB); got != 0 {
		t.Errorf("zero bandwidth should give 0, got %v", got)
	}
	if got := GBps.TransferTime(-5); got != 0 {
		t.Errorf("negative bytes should give 0, got %v", got)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return GBps.TransferTime(x) <= GBps.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerEnergyRoundTrip(t *testing.T) {
	p := Power(25)
	e := p.Times(2 * time.Second)
	if e != 50 {
		t.Fatalf("25W x 2s = %v, want 50J", e)
	}
	if back := e.Over(2 * time.Second); back != p {
		t.Fatalf("50J / 2s = %v, want 25W", back)
	}
	if Energy(1).Over(0) != 0 {
		t.Fatal("energy over zero duration should be 0 power")
	}
}

func TestCyclesDuration(t *testing.T) {
	// 1 GHz: one cycle is one nanosecond.
	if d := CyclesToDuration(1000, GHz); d != time.Microsecond {
		t.Errorf("1000 cycles @1GHz = %v, want 1us", d)
	}
	if c := DurationToCycles(time.Microsecond, GHz); c != 1000 {
		t.Errorf("1us @1GHz = %d cycles, want 1000", c)
	}
	// 300 MHz FPGA clock.
	if d := CyclesToDuration(300, 300*MHz); d != time.Microsecond {
		t.Errorf("300 cycles @300MHz = %v, want 1us", d)
	}
	if CyclesToDuration(100, 0) != 0 {
		t.Error("zero frequency should give zero duration")
	}
}

func TestCycleRoundTripProperty(t *testing.T) {
	f := func(c uint16) bool {
		d := CyclesToDuration(uint64(c), GHz)
		return DurationToCycles(d, GHz) == uint64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatting(t *testing.T) {
	if s := Gbps(100).String(); s != "12.5GB/s" {
		t.Errorf("100Gbps = %q", s)
	}
	if s := Power(4.2).String(); s != "4.20W" {
		t.Errorf("power format = %q", s)
	}
	if s := Area(30.25).String(); s != "30.25mm2" {
		t.Errorf("area format = %q", s)
	}
	if s := Energy(0.0035).String(); s != "3.500mJ" {
		t.Errorf("energy format = %q", s)
	}
	if s := Frequency(1.5 * 1e9).String(); s != "1.50GHz" {
		t.Errorf("freq format = %q", s)
	}
	if s := Dollars(12.5).String(); s != "$12.50" {
		t.Errorf("dollars format = %q", s)
	}
}
