// Package units defines the physical quantities shared across the
// simulator: data sizes, bandwidths, energy, power, and silicon area.
//
// All simulation latencies use time.Duration on a virtual clock that starts
// at zero. The DSA runs at 1 GHz, so one accelerator cycle equals one
// nanosecond; helpers here convert between cycles and durations for other
// clock frequencies as well.
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is a data size in bytes.
type Bytes int64

// Decimal (storage/network) and binary (memory) size constants.
const (
	KB Bytes = 1000
	MB Bytes = 1000 * KB
	GB Bytes = 1000 * MB
	TB Bytes = 1000 * GB

	KiB Bytes = 1024
	MiB Bytes = 1024 * KiB
	GiB Bytes = 1024 * MiB
)

// String renders the size with a human-friendly unit.
func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// Common bandwidth units.
const (
	BytePerSec Bandwidth = 1
	KBps       Bandwidth = 1e3
	MBps       Bandwidth = 1e6
	GBps       Bandwidth = 1e9
)

// Gbps converts a link rate quoted in gigabits per second.
func Gbps(g float64) Bandwidth { return Bandwidth(g * 1e9 / 8) }

// TransferTime returns how long moving n bytes takes at bandwidth bw.
// A non-positive bandwidth yields zero to keep degenerate configs safe.
func (bw Bandwidth) TransferTime(n Bytes) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	sec := float64(n) / float64(bw)
	return time.Duration(sec * float64(time.Second))
}

// String renders the bandwidth in GB/s or MB/s.
func (bw Bandwidth) String() string {
	switch {
	case bw >= GBps:
		return fmt.Sprintf("%.1fGB/s", float64(bw)/1e9)
	case bw >= MBps:
		return fmt.Sprintf("%.1fMB/s", float64(bw)/1e6)
	}
	return fmt.Sprintf("%.0fB/s", float64(bw))
}

// Energy is an amount of energy in joules.
type Energy float64

// Energy units.
const (
	Joule      Energy = 1
	MilliJoule Energy = 1e-3
	MicroJoule Energy = 1e-6
	NanoJoule  Energy = 1e-9
	PicoJoule  Energy = 1e-12
)

// String renders the energy with an SI prefix.
func (e Energy) String() string {
	switch {
	case e >= 1:
		return fmt.Sprintf("%.3fJ", float64(e))
	case e >= MilliJoule:
		return fmt.Sprintf("%.3fmJ", float64(e)/1e-3)
	case e >= MicroJoule:
		return fmt.Sprintf("%.3fuJ", float64(e)/1e-6)
	}
	return fmt.Sprintf("%.3fnJ", float64(e)/1e-9)
}

// Power is a power draw in watts.
type Power float64

// String renders the power in watts.
func (p Power) String() string { return fmt.Sprintf("%.2fW", float64(p)) }

// Times returns the energy consumed by drawing p for d.
func (p Power) Times(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Over returns the average power implied by spending e over d.
func (e Energy) Over(d time.Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// Area is a silicon area in square millimetres.
type Area float64

// String renders the area in mm^2.
func (a Area) String() string { return fmt.Sprintf("%.2fmm2", float64(a)) }

// Frequency is a clock rate in hertz.
type Frequency float64

// Frequency units.
const (
	Hz  Frequency = 1
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// String renders the frequency in GHz or MHz.
func (f Frequency) String() string {
	if f >= GHz {
		return fmt.Sprintf("%.2fGHz", float64(f)/1e9)
	}
	return fmt.Sprintf("%.0fMHz", float64(f)/1e6)
}

// CyclesToDuration converts a cycle count at frequency f into wall time,
// rounding to the nearest nanosecond.
func CyclesToDuration(cycles uint64, f Frequency) time.Duration {
	if f <= 0 {
		return 0
	}
	sec := float64(cycles) / float64(f)
	return time.Duration(math.Round(sec * float64(time.Second)))
}

// DurationToCycles converts wall time into cycles at frequency f, rounding
// to the nearest cycle.
func DurationToCycles(d time.Duration, f Frequency) uint64 {
	if f <= 0 || d <= 0 {
		return 0
	}
	return uint64(math.Round(d.Seconds() * float64(f)))
}

// Dollars is a cost in US dollars.
type Dollars float64

// String renders the cost with two decimals.
func (d Dollars) String() string { return fmt.Sprintf("$%.2f", float64(d)) }
