package serve

import (
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/workload"
)

// TestForgetEstimateDropsStalePricing is the redeploy regression at the
// engine level: the memoized service estimate is keyed by slug, so before
// the fix a changed chain deployed under the same name kept the old
// pricing forever. The cache now validates the Benchmark object identity
// (so even a request racing the redeploy cannot resurrect stale pricing)
// and the gateway calls ForgetEstimate on redeploy to drop the slug's
// state outright.
func TestForgetEstimateDropsStalePricing(t *testing.T) {
	e, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	original := workload.BySlug("chatbot")
	cpuOld, _, _ := e.ServiceEstimate(original)
	if cpuOld <= 0 {
		t.Fatalf("degenerate original estimate %v", cpuOld)
	}
	// The same object is memoized.
	if again, _, _ := e.ServiceEstimate(original); again != cpuOld {
		t.Fatalf("same-object estimate not memoized: %v vs %v", again, cpuOld)
	}

	// The "redeploy": the same slug now fronts a much heavier model via a
	// different Benchmark object. Pre-fix the slug cache served the old
	// pricing here; it must be re-derived.
	changed := *workload.BySlug("chatbot")
	changed.Model = workload.BySlug("remote-sensing").Model
	if changed.Model.FLOPs() == original.Model.FLOPs() {
		t.Fatal("test fixture models must differ in FLOPs")
	}
	cpuFresh, _, _ := e.ServiceEstimate(&changed)
	if cpuFresh == cpuOld {
		t.Fatalf("changed chain kept the stale pricing %v (pre-fix behavior)", cpuFresh)
	}
	if cpuFresh <= cpuOld {
		t.Fatalf("heavier model must price higher: %v -> %v", cpuOld, cpuFresh)
	}

	// An old-chain request racing the redeploy may re-memoize old pricing
	// momentarily; the next new-chain request must still win it back.
	if back, _, _ := e.ServiceEstimate(original); back != cpuOld {
		t.Fatalf("old-object estimate changed: %v", back)
	}
	if again, _, _ := e.ServiceEstimate(&changed); again != cpuFresh {
		t.Fatalf("new chain lost to a racing old-chain re-memoization: %v vs %v", again, cpuFresh)
	}

	// ForgetEstimate drops the memoized slug state entirely.
	e.ForgetEstimate("chatbot")
	if after, _, _ := e.ServiceEstimate(&changed); after != cpuFresh {
		t.Fatalf("re-derived estimate after ForgetEstimate = %v, want %v", after, cpuFresh)
	}
}

// TestForgetEstimateDropsLatencyHistory: the redeploy invalidation clears
// the slug's digests too — the new chain must not inherit the old chain's
// observed latencies.
func TestForgetEstimateDropsLatencyHistory(t *testing.T) {
	e, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Observatory().Record("chatbot", "DSCS-Serverless", 5*time.Millisecond)
	if e.Observatory().Digest("chatbot", "DSCS-Serverless") == nil {
		t.Fatal("digest missing after record")
	}
	e.ForgetEstimate("chatbot")
	if e.Observatory().Digest("chatbot", "DSCS-Serverless") != nil {
		t.Fatal("latency history survived ForgetEstimate")
	}
}

// TestEngineRecordsLatencyDigests: every completion feeds the observatory
// and refreshes the per-{benchmark, platform} serve_latency_* gauges on
// the shared telemetry.
func TestEngineRecordsLatencyDigests(t *testing.T) {
	e, err := NewEngine(testRunners(t), Options{Workers: 2, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	b := workload.BySlug("chatbot")
	for i := 0; i < 5; i++ {
		if _, err := e.Submit("DSCS-Serverless", b, faas.Options{Quantile: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	dg := e.Observatory().Digest("chatbot", "DSCS-Serverless")
	if dg == nil || dg.Count() != 5 {
		t.Fatalf("digest count = %v, want 5 executions observed", dg)
	}
	for _, g := range []string{"serve_latency_p50", "serve_latency_p95", "serve_latency_p99"} {
		name := g + "{benchmark=chatbot,platform=DSCS-Serverless}"
		if v := e.Telemetry().Gauge(name); v <= 0 {
			t.Errorf("%s = %v, want positive", name, v)
		}
	}
}

// TestAdaptiveBlendsPolicyPricing: with AdaptiveEstimates on, task pricing
// moves toward the observed p50 once a digest exists, and stays on the
// static prior for cold benchmarks.
func TestAdaptiveBlendsPolicyPricing(t *testing.T) {
	e, err := NewEngine(testRunners(t), Options{Workers: 1, AdaptiveEstimates: true, EstimateWarmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	b := workload.BySlug("chatbot")
	static, _, _ := e.ServiceEstimate(b)

	if got := e.observedService(b.Slug, sched.ClassDSCS, static); got != static {
		t.Fatalf("cold benchmark must keep the prior: %v vs %v", got, static)
	}
	observed := 5 * static
	for i := 0; i < 64; i++ {
		e.Observatory().Record(b.Slug, "DSCS-Serverless", observed)
	}
	got := e.observedService(b.Slug, sched.ClassDSCS, static)
	if got <= static || got > observed {
		t.Fatalf("blend %v outside (%v, %v]", got, static, observed)
	}
	// The CPU class has no observations for this slug: prior untouched.
	if cpu := e.observedService(b.Slug, sched.ClassCPU, static); cpu != static {
		t.Fatalf("unobserved class blended: %v", cpu)
	}
}

// TestFormerAdaptiveCrossoverFlipsOnce is the warmup/hysteresis
// acceptance: a benchmark whose observed latency sits 3x away from the
// static estimate must flip the former's slack pricing exactly once at
// the warmup crossover — not per request — and hold the new pricing
// steadily afterwards.
func TestFormerAdaptiveCrossoverFlipsOnce(t *testing.T) {
	const warmup = 8
	obs := metrics.NewObservatory(64, warmup)
	f := NewBatchFormer(8, 500*time.Millisecond, 100*time.Millisecond, sched.ClassCPU)
	f.SetEstimator(func(payload string, static time.Duration) time.Duration {
		return obs.ServiceQuantile(payload, "pool", static, 0.95)
	})

	static := 10 * time.Millisecond
	observed := 30 * time.Millisecond // 3x drift
	var slacks []time.Duration
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * time.Second
		tk := sched.HybridTask{ID: i, Arrived: at, Payload: "bench", CPUService: static}
		due := f.Observe(tk, 1)
		f.Close("bench") // release the group; each iteration prices fresh
		slacks = append(slacks, due-at)
		obs.Record("bench", "pool", observed)
	}

	if want := 100*time.Millisecond - static; slacks[0] != want {
		t.Fatalf("cold slack = %v, want the static pricing %v", slacks[0], want)
	}
	if want := 100*time.Millisecond - observed; slacks[len(slacks)-1] != want {
		t.Fatalf("warmed slack = %v, want the live pricing %v", slacks[len(slacks)-1], want)
	}
	flips := 0
	for i := 1; i < len(slacks); i++ {
		if slacks[i] != slacks[i-1] {
			flips++
		}
	}
	if flips != 1 {
		t.Fatalf("slack pricing changed %d times across the drift, want exactly 1 (no flapping): %v",
			flips, slacks)
	}
	if got := obs.Digest("bench", "pool").Flips(); got != 1 {
		t.Fatalf("adoption latch flipped %d times, want 1", got)
	}
}

// TestEngineAdaptiveGlobalBatchEndToEnd smoke-tests the full adaptive
// path on the live engine: global forming with an SLO budget, adaptive
// estimates on, enough traffic to warm the digest — conservation must
// hold and completions must flow.
func TestEngineAdaptiveGlobalBatchEndToEnd(t *testing.T) {
	e, err := NewEngine(testRunners(t), Options{
		Workers: 2, MaxBatch: 4, GlobalBatch: true,
		BatchLinger: 2 * time.Millisecond, BatchSLO: 20 * time.Millisecond,
		AdaptiveEstimates: true, EstimateWarmup: 4, EstimateWindow: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := workload.BySlug("chatbot")
	for i := 0; i < 24; i++ {
		if _, err := e.Submit("DSCS-Serverless", b, faas.Options{Quantile: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Conservation(); err != nil {
		t.Fatal(err)
	}
	if dg := e.Observatory().Digest("chatbot", "DSCS-Serverless"); dg == nil || dg.Count() < 4 {
		t.Fatal("adaptive run never warmed its digest")
	}
	e.Close()
}
