package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/sched"
	"dscs/internal/workload"
)

// waitFor polls a condition with a hard deadline — used to stage the
// deterministic spillover scenarios.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// dscsBusy reports the DSCS pool's occupied workers.
func dscsBusy(eng *Engine) int {
	p := eng.pools["DSCS-Serverless"]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Busy()
}

func TestSpilloverValidation(t *testing.T) {
	if _, err := NewEngine(testRunners(t), Options{SpilloverThreshold: 4, SpilloverTo: "TPU"}); err == nil {
		t.Error("unknown spillover target must fail")
	}
	if _, err := NewEngine(testRunners(t), Options{SpilloverThreshold: 4, SpilloverTo: "DSCS-Serverless"}); err == nil {
		t.Error("DSCS-class spillover target must fail")
	}
}

func TestSpillTarget(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 1, SpilloverThreshold: 4, SpilloverTo: "Baseline (CPU)"})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.spillTarget(); got == nil || got.name != "Baseline (CPU)" {
		t.Fatalf("explicit spill target not honored: %+v", got)
	}

	eng2, err := NewEngine(testRunners(t), Options{Workers: 1, SpilloverThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	got := eng2.spillTarget()
	if got == nil || got.class != sched.ClassCPU {
		t.Fatalf("default spill target must be a CPU-class pool, got %+v", got)
	}
}

// TestEngineSpillover pins the reroute deterministically: the test holds
// both physical DSCS drives, so the single DSCS worker blocks in drive
// acquisition and the queue provably backs up past the threshold; the next
// submission must then be served by the CPU pool and counted in
// serve_spillover_total{from,to}.
func TestEngineSpillover(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 64, MaxBatch: 1,
		SpilloverThreshold: 1, SpilloverTo: "Baseline (CPU)",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")

	// Hold every physical drive: the DSCS worker can dispatch but not
	// execute, so queued work stays queued.
	var held []int
	for range eng.drives.ids {
		idx, _ := eng.drives.acquire()
		if idx < 0 {
			t.Fatal("could not hold a drive")
		}
		held = append(held, idx)
	}

	// Stage the backlog one step at a time so no setup submission can
	// itself trip the threshold: first a request the worker dispatches
	// (and then stalls on the drives), then one that provably queues.
	var wg sync.WaitGroup
	submitDSCS := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				t.Error(err)
			}
		}()
	}
	submitDSCS()
	waitFor(t, "first request dispatched", func() bool { return dscsBusy(eng) == 1 })
	submitDSCS()
	waitFor(t, "second request queued", func() bool { return eng.QueueLen("DSCS-Serverless") == 1 })

	inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Platform != "Baseline (CPU)" {
		t.Errorf("over-threshold submission served on %q, want the CPU pool", inv.Platform)
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_spillover_total{from=DSCS-Serverless,to=Baseline (CPU)}"); got != 1 {
		t.Errorf("labeled spill counter = %g, want 1", got)
	}
	if got := tel.Counter("serve_spillover_total"); got != 1 {
		t.Errorf("total spill counter = %g, want 1", got)
	}

	for _, idx := range held {
		eng.drives.release(idx)
	}
	wg.Wait()
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSpilloverFallsBackWhenTargetFull: a full spill target must not
// reject a request the DSCS queue could still admit — the submission
// bounces back to the original pool and no spill is counted.
func TestEngineSpilloverFallsBackWhenTargetFull(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 2, MaxBatch: 1,
		SpilloverThreshold: 1, SpilloverTo: "Baseline (CPU)",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")

	// Hold every drive so the DSCS worker blocks after its first dispatch.
	var held []int
	for range eng.drives.ids {
		idx, _ := eng.drives.acquire()
		held = append(held, idx)
	}
	// Pin the CPU queue at its bound without signaling the workers: the
	// requests are real (they get served at Close), but with no signal a
	// parked worker never dispatches them. A worker still mid-startup may
	// drain an early fill, so retry until an unsignaled fill sticks.
	cpu := eng.pools["Baseline (CPU)"]
	waitFor(t, "CPU queue pinned at its bound", func() bool {
		cpu.mu.Lock()
		for cpu.core.QueueLen() < 2 {
			id := int(eng.nextID.Add(1))
			req := &request{bench: bench, opt: faas.Options{Quantile: 0.5},
				enq: time.Now(), done: make(chan outcome, 1)}
			if !cpu.core.Submit(sched.HybridTask{ID: id, Arrived: eng.now(),
				Payload: bench.Slug, Ref: req}) {
				break
			}
		}
		cpu.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		cpu.mu.Lock()
		defer cpu.mu.Unlock()
		return cpu.core.QueueLen() == 2 && cpu.core.Busy() == 0
	})

	var wg sync.WaitGroup
	submitDSCS := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				t.Error(err)
			} else if inv.Platform != "DSCS-Serverless" {
				t.Errorf("pre-threshold request served on %q", inv.Platform)
			}
		}()
	}
	// Stage the backlog: one request dispatched (worker stalls on the
	// drives), one provably queued — depth exactly 1 of bound 2.
	submitDSCS()
	waitFor(t, "first request dispatched", func() bool { return dscsBusy(eng) == 1 })
	submitDSCS()
	waitFor(t, "second request queued", func() bool { return eng.QueueLen("DSCS-Serverless") == 1 })

	// Over threshold, spill target full: the submission must bounce back
	// to the DSCS pool, uncounted, and be served there once the drives
	// free up.
	done := make(chan Invocation, 1)
	go func() {
		inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
		if err != nil {
			t.Errorf("bounced submission failed: %v", err)
		}
		done <- inv
	}()
	waitFor(t, "bounced submission to land on the DSCS queue", func() bool {
		return eng.QueueLen("DSCS-Serverless") == 2
	})
	if spills := eng.Telemetry().Counter("serve_spillover_total"); spills != 0 {
		t.Errorf("spill counter = %g for a bounced spill, want 0", spills)
	}

	for _, idx := range held {
		eng.drives.release(idx)
	}
	wg.Wait()
	if inv := <-done; inv.Platform != "DSCS-Serverless" {
		t.Errorf("bounced submission served on %q, want the DSCS pool", inv.Platform)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineLingerCoalesces drives deadline-aware batching on the wall
// clock: one worker, a generous linger, and a burst of identical requests
// must coalesce into fewer executions than requests.
func TestEngineLingerCoalesces(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 64, MaxBatch: 8,
		BatchLinger: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 8
	bench := workload.BySlug("chatbot")
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_completed_total"); got != n {
		t.Fatalf("served %g of %d", got, n)
	}
	if batches := tel.Counter("serve_batches_total"); batches >= n {
		t.Errorf("linger coalesced nothing: %g executions for %d requests", batches, n)
	}
	if occ := tel.Gauge("serve_batch_occupancy{platform=DSCS-Serverless}"); occ < 2 {
		t.Errorf("per-platform batch occupancy = %g, want >= 2 after a lingered batch", occ)
	}
}

// TestEngineDriveOccupancy checks that DSCS executions acquire the
// physical drives: with more workers than drives and a burst of requests,
// the acquisition counters must account for every execution and contention
// must be visible.
func TestEngineDriveOccupancy(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 4, QueueDepth: 64, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if len(eng.drives.ids) != 2 {
		t.Fatalf("test store should expose 2 DSCS drives, got %v", eng.drives.ids)
	}

	const n = 24
	bench := workload.BySlug("moderation")
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	tel := eng.Telemetry()
	var acquired float64
	for _, id := range eng.drives.ids {
		acquired += tel.Counter("serve_drive_acquired_total{drive=" + id + "}")
		if busy := tel.Gauge("serve_drive_busy{drive=" + id + "}"); busy != 0 {
			t.Errorf("drive %s still marked busy after drain", id)
		}
	}
	if int(acquired) != n {
		t.Errorf("drive acquisitions %g != %d executions", acquired, n)
	}
	// CPU-class pools must not touch the drives.
	if _, err := eng.Submit("Baseline (CPU)", bench, faas.Options{Quantile: 0.5}); err != nil {
		t.Fatal(err)
	}
	var after float64
	for _, id := range eng.drives.ids {
		after += tel.Counter("serve_drive_acquired_total{drive=" + id + "}")
	}
	if after != acquired {
		t.Errorf("CPU execution acquired a DSCS drive (%g -> %g)", acquired, after)
	}
}

// TestEngineSpilloverLingerConservation is the satellite stress test:
// spillover and lingering together, 64-way concurrent load, bookkeeping
// must stay conserved (run under -race in CI).
func TestEngineSpilloverLingerConservation(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 2, QueueDepth: 8, MaxBatch: 8,
		BatchLinger:        2 * time.Millisecond,
		SpilloverThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 64
	bench := workload.BySlug("translation")
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, full := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrQueueFull):
				full++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served+full != n {
		t.Fatalf("lost requests: %d served + %d throttled != %d", served, full, n)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_completed_total"); got != float64(served) {
		t.Errorf("serve_completed_total = %g, want %d", got, served)
	}
	// The per-platform occupancy gauges must carry their platform label
	// (the unlabeled gauge was a cross-pool last-write-wins bug).
	render := tel.Render()
	if strings.Contains(render, "serve_batch_occupancy ") {
		t.Error("unlabeled serve_batch_occupancy gauge resurfaced")
	}
}
