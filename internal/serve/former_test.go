package serve

import (
	"testing"
	"time"

	"dscs/internal/sched"
)

func arrival(id int, at time.Duration, payload string, svcMS int) sched.HybridTask {
	return sched.HybridTask{
		ID: id, Arrived: at, Payload: payload,
		CPUService:  time.Duration(svcMS) * time.Millisecond,
		DSCSService: time.Duration(svcMS) * time.Millisecond / 4,
	}
}

func TestBatchFormerLingerAndTarget(t *testing.T) {
	f := NewBatchFormer(4, 100*time.Millisecond, 0, sched.ClassCPU)
	f.Observe(arrival(1, 0, "a", 10), 1)
	if f.Ready("a", 50*time.Millisecond) {
		t.Fatal("half-lingered singleton must keep forming")
	}
	if !f.Ready("a", 100*time.Millisecond) {
		t.Fatal("group must release once the oldest member lingered out")
	}
	// Filling to target releases regardless of the clock.
	f.Observe(arrival(2, 10*time.Millisecond, "a", 10), 2)
	f.Observe(arrival(3, 20*time.Millisecond, "a", 10), 1)
	if !f.Ready("a", 30*time.Millisecond) {
		t.Fatal("group at target size must release immediately")
	}
	// Unknown payloads (stolen-in work) are never held.
	if !f.Ready("never-seen", 0) {
		t.Fatal("work without a forming group must not be held")
	}
}

func TestBatchFormerSLOBoundsTheHold(t *testing.T) {
	// 100ms linger, but the member's SLO budget is 40ms with a 10ms
	// service estimate: the group must release by 30ms, not 100ms.
	f := NewBatchFormer(8, 100*time.Millisecond, 40*time.Millisecond, sched.ClassCPU)
	due := f.Observe(arrival(1, 0, "a", 10), 1)
	if due != 30*time.Millisecond {
		t.Fatalf("due = %v, want 30ms (SLO 40ms - service 10ms)", due)
	}
	if f.Ready("a", 29*time.Millisecond) {
		t.Fatal("slack remains at 29ms")
	}
	if !f.Ready("a", 30*time.Millisecond) {
		t.Fatal("slack exhausted at 30ms: the batch must go")
	}
	// A member already out of slack clamps due to its arrival: never held.
	f2 := NewBatchFormer(8, 100*time.Millisecond, 5*time.Millisecond, sched.ClassCPU)
	if due := f2.Observe(arrival(2, time.Second, "b", 10), 1); due != time.Second {
		t.Fatalf("due = %v, want the arrival instant for a no-slack member", due)
	}
}

func TestBatchFormerTightestMemberWins(t *testing.T) {
	f := NewBatchFormer(8, 100*time.Millisecond, 0, sched.ClassCPU)
	f.Observe(arrival(1, 0, "a", 10), 1) // due 100ms
	f.Observe(arrival(2, 20*time.Millisecond, "a", 10), 1)
	if !f.Ready("a", 100*time.Millisecond) {
		t.Fatal("oldest member's linger bounds the whole group")
	}
	if wake, ok := f.NextDue(); !ok || wake != 100*time.Millisecond {
		t.Fatalf("NextDue = %v ok=%v, want 100ms", wake, ok)
	}
	// Shed and Drop bookkeeping.
	f.Shed("a", 1)
	if f.Forming() != 1 {
		t.Fatal("partial shed must keep the group")
	}
	f.Shed("a", 1)
	if f.Forming() != 0 {
		t.Fatal("fully shed group must vanish")
	}
	if _, ok := f.NextDue(); ok {
		t.Fatal("no groups, no due instant")
	}
}

func TestDispatchFormedHoldsAndReleases(t *testing.T) {
	core, err := NewPoolCore(2, 16, sched.ClassCPU, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := NewBatchFormer(3, 50*time.Millisecond, 0, sched.ClassCPU)
	core.AttachFormer(f)

	submit := func(tk sched.HybridTask) {
		if !core.Submit(tk) {
			t.Fatalf("task %d rejected", tk.ID)
		}
		f.Observe(tk, 1)
	}
	submit(arrival(1, 0, "a", 10))

	// Below target, before due: the pick is held and the caller learns
	// when to come back.
	if _, ok, wake, wakeOK := core.DispatchFormed(10 * time.Millisecond); ok || !wakeOK || wake != 50*time.Millisecond {
		t.Fatalf("forming singleton dispatched (ok=%v wake=%v wakeOK=%v)", ok, wake, wakeOK)
	}
	if core.QueueLen() != 1 {
		t.Fatalf("held task left the queue: len=%d", core.QueueLen())
	}

	// Filling to target releases the batch at once.
	submit(arrival(2, 10*time.Millisecond, "a", 10))
	submit(arrival(3, 20*time.Millisecond, "a", 10))
	task, ok, _, _ := core.DispatchFormed(20 * time.Millisecond)
	if !ok || task.ID != 1 {
		t.Fatalf("full group must dispatch its oldest member, got %+v ok=%v", task, ok)
	}
	got := core.Coalesce(2, func(x sched.HybridTask) bool { return x.Payload == "a" })
	if len(got) != 2 {
		t.Fatalf("coalesced %d, want 2", len(got))
	}
	core.Complete(3)

	// A lingered-out group releases at its due instant.
	submit(arrival(4, 30*time.Millisecond, "b", 10))
	if _, ok, _, _ := core.DispatchFormed(40 * time.Millisecond); ok {
		t.Fatal("fresh singleton must form")
	}
	task, ok, _, _ = core.DispatchFormed(80 * time.Millisecond)
	if !ok || task.ID != 4 {
		t.Fatalf("lingered-out singleton must dispatch, got %+v ok=%v", task, ok)
	}
	core.Complete(1)
	if err := core.Conservation(); err != nil {
		t.Fatal(err)
	}
	if f.Formed() != 2 {
		t.Fatalf("formed = %d, want 2", f.Formed())
	}
}

// TestDispatchFormedServesDuePayloadOverPolicyPick: when the policy's
// preference is still forming but another payload's group is due, the due
// group's oldest member dispatches instead of nothing.
func TestDispatchFormedServesDuePayloadOverPolicyPick(t *testing.T) {
	core, err := NewPoolCore(1, 16, sched.ClassCPU, sched.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	f := NewBatchFormer(4, 50*time.Millisecond, 0, sched.ClassCPU)
	core.AttachFormer(f)
	submit := func(tk sched.HybridTask) {
		core.Submit(tk)
		f.Observe(tk, 1)
	}
	// "a" is at the head (FCFS pick) but still fresh; "b" arrived earlier
	// on the clock? No — "b" arrives later but with a group already due
	// because "a" keeps re-forming. Stage it directly: an old "b" behind a
	// fresh "a" head cannot happen (arrival order), so instead make "a"
	// fresh and "b" due by observing "b" first.
	submit(arrival(1, 0, "b", 10))
	submit(arrival(2, 45*time.Millisecond, "a", 10))
	// At 50ms: FCFS picks "b" (head) which is due — dispatches. Then at
	// 60ms "a" is not due (due 95ms) and nothing else is ready.
	task, ok, _, _ := core.DispatchFormed(50 * time.Millisecond)
	if !ok || task.Payload != "b" {
		t.Fatalf("due head must dispatch, got %+v ok=%v", task, ok)
	}
	core.Complete(1)
	if _, ok, wake, wakeOK := core.DispatchFormed(60 * time.Millisecond); ok || !wakeOK || wake != 95*time.Millisecond {
		t.Fatalf("fresh group must hold until 95ms (ok=%v wake=%v %v)", ok, wake, wakeOK)
	}
	if err := core.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchFormedDropsStaleGroup: a forming group whose queued members
// all left by another door (an unshed extraction) must be discarded, not
// starve the dispatcher — the next due group still serves.
func TestDispatchFormedDropsStaleGroup(t *testing.T) {
	core, err := NewPoolCore(1, 16, sched.ClassCPU, sched.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	f := NewBatchFormer(4, 50*time.Millisecond, 0, sched.ClassCPU)
	core.AttachFormer(f)
	// "b" forms with no queued member (its task was extracted without a
	// shed) and comes due at 50ms; "a" queues later and is still forming.
	f.Observe(arrival(2, 0, "b", 10), 1)
	a := arrival(1, 40*time.Millisecond, "a", 10)
	core.Submit(a)
	f.Observe(a, 1)
	if f.Forming() != 2 {
		t.Fatalf("forming = %d, want 2", f.Forming())
	}
	// At 60ms the pick ("a") is unready; the due-group scan must discard
	// the stale "b" instead of dispatching nothing forever, and report
	// "a"'s due instant as the wake-up.
	_, ok, wake, wakeOK := core.DispatchFormed(60 * time.Millisecond)
	if ok {
		t.Fatal("nothing dispatchable: \"a\" is forming, \"b\" is stale")
	}
	if !wakeOK || wake != 90*time.Millisecond {
		t.Fatalf("wake = %v ok=%v, want 90ms (\"a\" linger deadline)", wake, wakeOK)
	}
	if f.Forming() != 1 {
		t.Fatalf("stale group survived: forming = %d, want 1", f.Forming())
	}
	if err := core.Conservation(); err != nil {
		t.Fatal(err)
	}
	// Drop is also the public escape hatch ("a" is still forming).
	f.Observe(arrival(3, 0, "c", 10), 1)
	f.Drop("c")
	if f.Forming() != 1 {
		t.Fatal("Drop left the group behind")
	}
}

func TestPoolCoreStealFrom(t *testing.T) {
	donor, err := NewPoolCore(1, 16, sched.ClassDSCS, nil)
	if err != nil {
		t.Fatal(err)
	}
	thief, err := NewPoolCore(2, 4, sched.ClassCPU, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		donor.Submit(arrival(i, time.Duration(i)*time.Millisecond, "a", 10))
	}

	// The pull takes the donor's oldest work, capped at the thief's room.
	moved := thief.StealFrom(donor, 10)
	if len(moved) != 4 {
		t.Fatalf("stole %d, want 4 (thief queue room)", len(moved))
	}
	if moved[0].ID != 0 || moved[3].ID != 3 {
		t.Fatalf("steal must drain oldest-first, got %d..%d", moved[0].ID, moved[3].ID)
	}
	if donor.QueueLen() != 2 || thief.QueueLen() != 4 {
		t.Fatalf("queues after steal: donor %d thief %d", donor.QueueLen(), thief.QueueLen())
	}
	if donor.StolenOut() != 4 || thief.StolenIn() != 4 {
		t.Fatalf("steal counters: out=%d in=%d", donor.StolenOut(), thief.StolenIn())
	}

	// Accounting moved with the tasks: both sides stay conserved after
	// serving what they hold.
	for _, pc := range []*PoolCore{thief, donor} {
		for {
			if _, ok := pc.Dispatch(0); !ok {
				break
			}
			pc.Complete(1)
		}
	}
	if err := donor.Conservation(); err != nil {
		t.Fatalf("donor: %v", err)
	}
	if err := thief.Conservation(); err != nil {
		t.Fatalf("thief: %v", err)
	}
	if thief.Completed() != 4 || donor.Completed() != 2 {
		t.Fatalf("completions: thief %d donor %d", thief.Completed(), donor.Completed())
	}

	// Self-steals and shared-queue steals are no-ops.
	if got := thief.StealFrom(thief, 4); got != nil {
		t.Fatal("self-steal must be a no-op")
	}
}

func TestSplitHybridCoreStealRebalances(t *testing.T) {
	h, err := NewSplitHybridCore(2, 1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Split() {
		t.Fatal("split core must report split")
	}
	// Arrivals land on the DSCS backlog; the CPU side idles beside them.
	for i := 0; i < 5; i++ {
		if !h.Submit(arrival(i, time.Duration(i)*time.Millisecond, "a", 10)) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if cpuQ := h.Class(sched.ClassCPU).QueueLen(); cpuQ != 0 {
		t.Fatalf("CPU backlog = %d before steal, want 0", cpuQ)
	}
	// One DSCS worker dispatches; two CPU workers can only steal.
	if _, class, ok := h.Dispatch(0); !ok || class != sched.ClassDSCS {
		t.Fatalf("first dispatch class=%v ok=%v", class, ok)
	}
	if _, _, ok := h.Dispatch(0); ok {
		t.Fatal("CPU must not dispatch from an empty backlog")
	}
	moved := h.Steal(sched.ClassDSCS, sched.ClassCPU, 2)
	if len(moved) != 2 || moved[0].ID != 1 {
		t.Fatalf("steal moved %+v, want tasks 1,2", moved)
	}
	if h.Stolen() != 2 {
		t.Fatalf("Stolen() = %d, want 2", h.Stolen())
	}
	for i := 0; i < 2; i++ {
		if _, class, ok := h.Dispatch(0); !ok || class != sched.ClassCPU {
			t.Fatalf("stolen work must dispatch on CPU (class=%v ok=%v)", class, ok)
		}
	}
	h.Complete(sched.ClassDSCS, 1)
	h.Complete(sched.ClassCPU, 1)
	h.Complete(sched.ClassCPU, 1)
	if err := h.Conservation(); err != nil {
		t.Fatal(err)
	}
	// The classic shared-queue core has nothing to steal.
	classic, _ := NewHybridCore(1, 1, 8, nil)
	classic.Submit(arrival(9, 0, "a", 10))
	if got := classic.Steal(sched.ClassDSCS, sched.ClassCPU, 4); got != nil {
		t.Fatal("classic core steal must be a no-op")
	}
}
