package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/workload"
)

// TestEngineStealRebalances pins the pull path deterministically: every
// physical drive is held, so the single DSCS worker stalls mid-execution
// and its backlog provably deepens past the threshold while the CPU pool
// idles. The idle CPU worker must pull the queued work and serve it — the
// invocations report the CPU pool as their platform, the steal counters
// account for the move, and the queue-depth gauges follow the extraction.
func TestEngineStealRebalances(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 64, MaxBatch: 2,
		StealThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")

	// Hold every drive: the DSCS worker dispatches its first task and then
	// blocks acquiring a drive, so everything behind it stays queued.
	var held []int
	for range eng.drives.ids {
		idx, _ := eng.drives.acquire()
		if idx < 0 {
			t.Fatal("could not hold a drive")
		}
		held = append(held, idx)
	}

	var wg sync.WaitGroup
	stolen := make(chan Invocation, 2)
	submitDSCS := func(collect bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				t.Error(err)
				return
			}
			if collect {
				stolen <- inv
			}
		}()
	}
	// Stage: one request dispatched (stalled on the drives), then two that
	// provably queue — depth 2 exceeds the steal threshold of 1.
	submitDSCS(false)
	waitFor(t, "first request dispatched", func() bool { return dscsBusy(eng) == 1 })
	submitDSCS(true)
	waitFor(t, "second request queued", func() bool { return eng.QueueLen("DSCS-Serverless") >= 1 })
	submitDSCS(true)

	// The CPU pool pulls both queued requests (MaxBatch caps the pull at
	// 2) and serves them without touching a drive.
	for i := 0; i < 2; i++ {
		select {
		case inv := <-stolen:
			if inv.Platform != "Baseline (CPU)" {
				t.Errorf("stolen request served on %q, want the CPU pool", inv.Platform)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for stolen requests to be served")
		}
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_steal_total{from=DSCS-Serverless,to=Baseline (CPU)}"); got != 2 {
		t.Errorf("labeled steal counter = %g, want 2", got)
	}
	if got := tel.Counter("serve_steal_total"); got != 2 {
		t.Errorf("total steal counter = %g, want 2", got)
	}
	// The satellite fix: a steal extracts queued tasks, so the depth
	// gauges must refresh for both pools, just as Coalesce refreshes them.
	if got := tel.Gauge("serve_queue_depth{platform=DSCS-Serverless}"); got != 0 {
		t.Errorf("donor depth gauge = %g after the steal drained it, want 0", got)
	}
	if got := tel.Gauge("serve_queue_depth{platform=Baseline (CPU)}"); got != 0 {
		t.Errorf("thief depth gauge = %g after serving, want 0", got)
	}

	for _, idx := range held {
		eng.drives.release(idx)
	}
	wg.Wait()
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("serve_completed_total"); got != 3 {
		t.Errorf("serve_completed_total = %g, want 3", got)
	}
}

// TestEngineStealDominatesNoSteal is the acceptance scenario: a deep DSCS
// backlog with an idle CPU pool. With stealing armed, completions within
// the observation window must strictly dominate the no-steal
// configuration, where the backlog waits for the single stalled DSCS
// worker.
func TestEngineStealDominatesNoSteal(t *testing.T) {
	serveBacklog := func(stealThreshold int) (completedEarly float64) {
		eng, err := NewEngine(testRunners(t), Options{
			Workers: 1, QueueDepth: 64, MaxBatch: 4,
			StealThreshold: stealThreshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		bench := workload.BySlug("asset-damage")
		var held []int
		for range eng.drives.ids {
			idx, _ := eng.drives.acquire()
			held = append(held, idx)
		}
		var wg sync.WaitGroup
		for i := 0; i < 9; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
					t.Error(err)
				}
			}()
		}
		// The observation window: the DSCS worker is stalled the whole
		// time, so anything completed was rebalanced.
		waitFor(t, "backlog staged", func() bool {
			return dscsBusy(eng) == 1 || eng.Telemetry().Counter("serve_completed_total") > 0
		})
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			if eng.Telemetry().Counter("serve_completed_total") >= 8 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		completedEarly = eng.Telemetry().Counter("serve_completed_total")
		for _, idx := range held {
			eng.drives.release(idx)
		}
		wg.Wait()
		if err := eng.Conservation(); err != nil {
			t.Fatal(err)
		}
		return completedEarly
	}

	withSteal := serveBacklog(1)
	withoutSteal := serveBacklog(0)
	if withoutSteal != 0 {
		t.Errorf("no-steal run completed %g requests with every drive held, want 0", withoutSteal)
	}
	if withSteal <= withoutSteal {
		t.Errorf("steal completions (%g) must strictly dominate no-steal (%g)", withSteal, withoutSteal)
	}
}

// TestEngineSpilloverLingerStealConservation is the satellite stress test:
// spillover, the global SLO-aware former, and stealing all armed at once
// under 64-way concurrent load with mixed deadlines (two benchmarks, two
// batch shapes). Bookkeeping must stay conserved, every accepted request
// completes exactly once, and the rebalancing counters stay internally
// consistent — a request may spill and later be stolen, but it is never
// double-counted as completed. Run under -race in CI.
func TestEngineSpilloverLingerStealConservation(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 2, QueueDepth: 8, MaxBatch: 4,
		BatchLinger:        2 * time.Millisecond,
		GlobalBatch:        true,
		BatchSLO:           8 * time.Millisecond,
		SpilloverThreshold: 3,
		StealThreshold:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 64
	benches := []*workload.Benchmark{workload.BySlug("translation"), workload.BySlug("chatbot")}
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, full := 0, 0
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			opt := faas.Options{Quantile: 0.5}
			if i%4 == 0 {
				opt.Batch = 2 // a different deadline/batch shape in the mix
			}
			inv, err := eng.Submit("DSCS-Serverless", benches[i%2], opt)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
				if inv.Platform != "DSCS-Serverless" && inv.Platform != "Baseline (CPU)" {
					t.Errorf("served on unknown pool %q", inv.Platform)
				}
			case errors.Is(err, ErrQueueFull):
				full++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served+full != n {
		t.Fatalf("lost requests: %d served + %d throttled != %d", served, full, n)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	tel := eng.Telemetry()
	// Every accepted request completes exactly once, no matter how many
	// times it moved between pools on the way.
	if got := tel.Counter("serve_completed_total"); got != float64(served) {
		t.Errorf("serve_completed_total = %g, want %d", got, served)
	}
	// The rebalancing counters never double-count: each labeled family
	// sums to its total, and neither exceeds the accepted request count
	// (a request spills at most once and is stolen from a queue it
	// actually sat on).
	for _, family := range []string{"serve_spillover_total", "serve_steal_total"} {
		total := tel.Counter(family)
		var labeled float64
		for _, from := range []string{"DSCS-Serverless", "Baseline (CPU)"} {
			for _, to := range []string{"DSCS-Serverless", "Baseline (CPU)"} {
				labeled += tel.Counter(family + "{from=" + from + ",to=" + to + "}")
			}
		}
		if labeled != total {
			t.Errorf("%s labels sum to %g, total is %g", family, labeled, total)
		}
		if total > float64(served) {
			t.Errorf("%s = %g exceeds %d accepted requests", family, total, served)
		}
	}
	// The former ran: executions were released through it.
	if got := tel.Counter("serve_batch_formed_total"); got <= 0 {
		t.Errorf("serve_batch_formed_total = %g with the global former armed", got)
	}
}
