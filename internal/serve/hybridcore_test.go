package serve

import (
	"testing"
	"testing/quick"
	"time"

	"dscs/internal/sched"
)

func hybridTask(id int, cpuMS int, accel int) sched.HybridTask {
	return sched.HybridTask{
		ID: id, Payload: "t",
		CPUService:  time.Duration(cpuMS) * time.Millisecond,
		DSCSService: time.Duration(cpuMS) * time.Millisecond / 4,
		AccelFuncs:  accel,
	}
}

func TestHybridCoreFCFSOrder(t *testing.T) {
	h, err := NewHybridCore(1, 1, 10, sched.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Submit(hybridTask(i, 100, 2))
	}
	// DSCS is preferred and FCFS hands it the head of line.
	got, class, ok := h.Dispatch(0)
	if !ok || got.ID != 0 || class != sched.ClassDSCS {
		t.Fatalf("first dispatch: id=%d class=%v ok=%v", got.ID, class, ok)
	}
	got, class, _ = h.Dispatch(0)
	if got.ID != 1 || class != sched.ClassCPU {
		t.Fatalf("second dispatch: id=%d class=%v", got.ID, class)
	}
	if _, _, ok := h.Dispatch(0); ok {
		t.Fatal("no free instances left")
	}
	if err := h.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridCoreCriticalityRouting(t *testing.T) {
	h, _ := NewHybridCore(1, 1, 10, sched.CriticalityPolicy{})
	h.Submit(hybridTask(0, 10, 2))  // short
	h.Submit(hybridTask(1, 500, 2)) // long
	h.Submit(hybridTask(2, 50, 2))  // medium
	// DSCS takes the longest-running task...
	got, class, _ := h.Dispatch(0)
	if got.ID != 1 || class != sched.ClassDSCS {
		t.Fatalf("DSCS got id=%d", got.ID)
	}
	// ...the CPU the shortest.
	got, class, _ = h.Dispatch(0)
	if got.ID != 0 || class != sched.ClassCPU {
		t.Fatalf("CPU got id=%d class=%v", got.ID, class)
	}
}

func TestHybridCoreDAGAwareRouting(t *testing.T) {
	h, _ := NewHybridCore(1, 1, 10, sched.DAGAwarePolicy{})
	h.Submit(hybridTask(0, 100, 1))
	h.Submit(hybridTask(1, 100, 4)) // deep accelerated chain
	h.Submit(hybridTask(2, 100, 2))
	got, class, _ := h.Dispatch(0)
	if got.ID != 1 || class != sched.ClassDSCS {
		t.Fatalf("DSCS should take the deepest chain, got id=%d", got.ID)
	}
	got, _, _ = h.Dispatch(0)
	if got.ID != 0 {
		t.Fatalf("CPU should take the shallowest chain, got id=%d", got.ID)
	}
}

func TestHybridCoreQueueBound(t *testing.T) {
	h, _ := NewHybridCore(1, 0, 2, sched.FCFSPolicy{})
	for i := 0; i < 2; i++ {
		if !h.Submit(hybridTask(i, 10, 1)) {
			t.Fatalf("submit %d should fit", i)
		}
	}
	if h.Submit(hybridTask(9, 10, 1)) {
		t.Fatal("queue bound ignored")
	}
	if h.Dropped() != 1 {
		t.Fatalf("dropped = %d", h.Dropped())
	}
}

func TestHybridCoreCompleteReleases(t *testing.T) {
	h, _ := NewHybridCore(2, 1, 10, sched.FCFSPolicy{})
	for i := 0; i < 5; i++ {
		h.Submit(hybridTask(i, 10, 1))
	}
	classes := map[sched.InstanceClass]int{}
	for {
		_, class, ok := h.Dispatch(0)
		if !ok {
			break
		}
		classes[class]++
	}
	if classes[sched.ClassDSCS] != 1 || classes[sched.ClassCPU] != 2 {
		t.Fatalf("dispatch mix: %v", classes)
	}
	h.Complete(sched.ClassDSCS, 1)
	if _, class, ok := h.Dispatch(0); !ok || class != sched.ClassDSCS {
		t.Fatal("freed DSCS instance should dispatch next")
	}
	if err := h.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridCoreValidation(t *testing.T) {
	if _, err := NewHybridCore(0, 0, 10, nil); err == nil {
		t.Error("empty pool must fail")
	}
	if _, err := NewHybridCore(1, 1, 0, nil); err == nil {
		t.Error("zero queue depth must fail")
	}
}

func TestHybridCoreConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		h, _ := NewHybridCore(2, 2, 6, sched.CriticalityPolicy{})
		id := 0
		inFlight := map[sched.InstanceClass]int{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				h.Submit(hybridTask(id, int(op)+1, int(op)%4))
				id++
			case 1:
				if _, class, ok := h.Dispatch(0); ok {
					inFlight[class]++
				}
			case 2:
				for _, class := range []sched.InstanceClass{sched.ClassCPU, sched.ClassDSCS} {
					if inFlight[class] > 0 {
						h.Complete(class, 1)
						inFlight[class]--
						break
					}
				}
			}
			if err := h.Conservation(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPoolCoreOverComplete is the regression test for the silent clamp: a
// Complete with no busy worker used to clamp free at total and cancel out
// of the conservation sum; it must now surface as a violation.
func TestPoolCoreOverComplete(t *testing.T) {
	core, err := NewPoolCore(2, 4, sched.ClassCPU, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.Submit(sched.HybridTask{ID: 0, Payload: "w"})
	if _, ok := core.Dispatch(0); !ok {
		t.Fatal("dispatch failed")
	}
	core.Complete(1)
	if err := core.Conservation(); err != nil {
		t.Fatalf("legitimate complete flagged: %v", err)
	}
	core.Complete(1) // caller bug: nothing is running
	if core.OverCompleted() != 1 {
		t.Fatalf("overCompleted = %d, want 1", core.OverCompleted())
	}
	if err := core.Conservation(); err == nil {
		t.Fatal("double-complete must violate conservation")
	}
}

func TestHybridCoreOverComplete(t *testing.T) {
	h, _ := NewHybridCore(1, 1, 10, sched.FCFSPolicy{})
	h.Submit(hybridTask(0, 10, 1))
	if _, _, ok := h.Dispatch(0); !ok {
		t.Fatal("dispatch failed")
	}
	h.Complete(sched.ClassDSCS, 1)
	if err := h.Conservation(); err != nil {
		t.Fatalf("legitimate complete flagged: %v", err)
	}
	h.Complete(sched.ClassDSCS, 1) // double-complete on the DSCS class
	if err := h.Conservation(); err == nil {
		t.Fatal("double-complete must violate hybrid conservation")
	}
}

func TestBatchWindow(t *testing.T) {
	w := NewBatchWindow(100*time.Millisecond, 50*time.Millisecond, 8, 3)
	if !w.Open(120 * time.Millisecond) {
		t.Fatal("window must stay open before the deadline with room left")
	}
	w.Add(5)
	if w.Open(120 * time.Millisecond) {
		t.Fatal("window must close at target")
	}
	w2 := NewBatchWindow(0, 10*time.Millisecond, 8, 1)
	if w2.Open(10 * time.Millisecond) {
		t.Fatal("window must close at the deadline")
	}
	// Zero linger never opens: the deadline is now.
	w3 := NewBatchWindow(time.Second, 0, 8, 1)
	if w3.Open(time.Second) {
		t.Fatal("zero linger must not open a window")
	}
}
