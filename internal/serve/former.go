// former.go is the global batch former: the queue-level generalization of
// the per-dispatch BatchWindow. Instead of a worker dispatching the policy
// pick immediately and then lingering for stragglers, the former groups
// same-benchmark arrivals across the whole queue while they are still
// queued, and releases a batch to a worker only when it is ready: the
// profitable target size was reached, the oldest member has lingered out,
// or the oldest member's deadline slack is exhausted (SLO-aware). Like the
// rest of the scheduling core it is clock-free — the live engine feeds it
// wall time from worker goroutines and the discrete-event simulation feeds
// it virtual time, so both exercise the same forming decision.

package serve

import (
	"time"

	"dscs/internal/sched"
)

// FormingGroup is one payload's batch being gathered across the queue.
type FormingGroup struct {
	Payload string
	// Oldest is the earliest member's arrival instant.
	Oldest time.Duration
	// Due is the instant the group must dispatch regardless of size: the
	// tightest of every member's linger window and deadline slack.
	Due time.Duration
	// Size is the combined model batch gathered so far.
	Size int
}

// ServiceEstimator supplies a live service-time estimate for a payload's
// deadline pricing; static is the task's static prior (its class service
// estimate). Implementations must return a positive duration whenever
// static is positive — fall back to static while un-warmed — or the
// former's slack arithmetic would hold batches past their budget.
type ServiceEstimator func(payload string, static time.Duration) time.Duration

// BatchFormer tracks the forming groups of one pool's queue. Not safe for
// concurrent use on its own; like PoolCore it is driven under the owner's
// lock (engine) or from a single-threaded simulation.
type BatchFormer struct {
	target   int
	linger   time.Duration
	slo      time.Duration
	class    sched.InstanceClass
	groups   map[string]*FormingGroup
	formed   int
	estimate ServiceEstimator
}

// NewBatchFormer builds a former releasing batches at target size, holding
// a group open at most linger past its oldest member's arrival. With slo
// set, each member also bounds the hold by its deadline slack: a group
// dispatches no later than Arrived + slo - Service(class), so a request
// with little slack left is never held for the sake of occupancy.
func NewBatchFormer(target int, linger, slo time.Duration, class sched.InstanceClass) *BatchFormer {
	if target < 1 {
		target = 1
	}
	return &BatchFormer{
		target: target, linger: linger, slo: slo, class: class,
		groups: make(map[string]*FormingGroup),
	}
}

// SetEstimator attaches a live service estimator: memberDue prices
// deadline slack with its result instead of the task's static estimate —
// the adaptive-estimates path, where observed latency digests replace the
// graph-derived pricing once warmed. A non-positive result is ignored in
// favor of the static prior (the digest must never feed a zero or
// degenerate estimate into slack arithmetic).
func (f *BatchFormer) SetEstimator(est ServiceEstimator) { f.estimate = est }

// memberDue is the latest instant a single member tolerates its group
// staying open: its linger window, tightened by its deadline slack.
func (f *BatchFormer) memberDue(t sched.HybridTask) time.Duration {
	due := t.Arrived + f.linger
	if f.slo > 0 {
		svc := t.Service(f.class)
		if f.estimate != nil {
			if live := f.estimate(t.Payload, svc); live > 0 {
				svc = live
			}
		}
		if slack := t.Arrived + f.slo - svc; slack < due {
			due = slack
		}
	}
	if due < t.Arrived {
		due = t.Arrived // already out of slack: dispatch immediately
	}
	return due
}

// Observe folds an admitted arrival into its payload's forming group,
// opening one if needed. batch is the request's model batch (>= 1). It
// returns the group's (possibly tightened) due instant.
//
//dscslint:hotpath
func (f *BatchFormer) Observe(t sched.HybridTask, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	g := f.groups[t.Payload]
	if g == nil {
		g = &FormingGroup{Payload: t.Payload, Oldest: t.Arrived, Due: f.memberDue(t)}
		f.groups[t.Payload] = g
	} else {
		if t.Arrived < g.Oldest {
			g.Oldest = t.Arrived
		}
		if due := f.memberDue(t); due < g.Due {
			g.Due = due
		}
	}
	g.Size += batch
	return g.Due
}

// Ready reports whether the payload's batch should dispatch at now: its
// group reached the target size, or its due instant has passed. Work with
// no forming group (stolen in from another pool, or queued before the
// former was attached) is always ready — the former must never hold what
// it did not see arrive.
func (f *BatchFormer) Ready(payload string, now time.Duration) bool {
	g := f.groups[payload]
	if g == nil {
		return true
	}
	return g.Size >= f.target || now >= g.Due
}

// DuePayload returns some payload whose group must dispatch at now
// (deterministically the one with the earliest due instant, ties broken by
// payload name), and false when nothing is due.
func (f *BatchFormer) DuePayload(now time.Duration) (string, bool) {
	found := false
	var best *FormingGroup
	for _, g := range f.groups {
		if g.Size < f.target && now < g.Due {
			continue
		}
		if !found || g.Due < best.Due || (g.Due == best.Due && g.Payload < best.Payload) {
			best, found = g, true
		}
	}
	if !found {
		return "", false
	}
	return best.Payload, true
}

// NextDue returns the earliest due instant across open groups, and false
// when nothing is forming.
func (f *BatchFormer) NextDue() (time.Duration, bool) {
	found := false
	var min time.Duration
	for _, g := range f.groups {
		if !found || g.Due < min {
			min, found = g.Due, true
		}
	}
	return min, found
}

// Close removes the payload's group when its batch dispatches and counts
// the formed batch. It returns the closed group (nil when none existed).
func (f *BatchFormer) Close(payload string) *FormingGroup {
	g := f.groups[payload]
	if g != nil {
		delete(f.groups, payload)
		f.formed++
	}
	return g
}

// Shed removes batch from the payload's forming group when queued work
// leaves the pool by another door (a steal pulled it away); an emptied
// group is dropped without counting as formed.
func (f *BatchFormer) Shed(payload string, batch int) {
	g := f.groups[payload]
	if g == nil {
		return
	}
	g.Size -= batch
	if g.Size <= 0 {
		delete(f.groups, payload)
	}
}

// Drop discards a payload's group entirely (no queued members remain)
// without counting it as formed.
func (f *BatchFormer) Drop(payload string) { delete(f.groups, payload) }

// Forming reports open group count (diagnostics).
func (f *BatchFormer) Forming() int { return len(f.groups) }

// Formed counts batches released through Close.
func (f *BatchFormer) Formed() int { return f.formed }
