// ingress_property_test.go extends the model-checking harness over the
// sharded submit path: randomized shard-interleaved offer/drain/dispatch/
// steal sequences against N=3 pool cores each fronted by an ingress,
// asserting after every step that Conservation and the AgingMultiple
// starvation bound survive the split, that the staged-plus-queued
// admission bound is exact at every offer, and that a drain reaches the
// core in the same arrival order a single queue would have seen. A separate
// 64-goroutine test drives the real sharded engine path for the -race
// detector.
package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/sched"
	"dscs/internal/workload"
)

// shardedPool is one harness pool: an ingress fronting a PoolCore, plus
// the model counts the invariants are checked against.
type shardedPool struct {
	in      *ingress
	core    *PoolCore
	scratch []ingressEntry
	// model counts, maintained by the harness alongside the real state
	accepted    int // offers the ingress admitted
	coreDropped int // drained entries the core's queue rejected
}

// syncQueued mirrors the engine's bookkeeping: after every core mutation
// the downstream occupancy is stored into the admission bound's mirror.
func (sp *shardedPool) syncQueued() { sp.in.syncQueued(sp.core.QueueLen()) }

// drain empties the ingress into the core in admission order, the way the
// engine's drainLocked does, counting entries the core rejects.
func (sp *shardedPool) drain() ([]ingressEntry, error) {
	entries := sp.in.drainInto(sp.scratch)
	sp.scratch = entries[:0]
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1].task, entries[i].task
		if a.Arrived > b.Arrived || (a.Arrived == b.Arrived && a.ID > b.ID) {
			return nil, fmt.Errorf("drain out of admission order: task %d (arrived %v) before task %d (arrived %v)",
				a.ID, a.Arrived, b.ID, b.Arrived)
		}
	}
	for _, e := range entries {
		if !sp.core.Submit(e.task) {
			sp.coreDropped++
		}
	}
	sp.syncQueued()
	return entries, nil
}

// ingressInvariants checks the sharded pool's accounting after a step:
// staged stays non-negative, the queued mirror is sane, and every
// accepted offer is still accounted for somewhere — staged, queued, or
// handed to the core. The admission bound itself is asserted at offer
// time (steals may legitimately push occupancy past it; the bound gates
// new offers, not rebalancing).
func (sp *shardedPool) ingressInvariants(dispatched int) error {
	staged := int(sp.in.staged.Load())
	if staged < 0 {
		return fmt.Errorf("staged count %d negative", staged)
	}
	if got := staged + sp.core.QueueLen() + dispatched + sp.coreDropped; got != sp.accepted {
		return fmt.Errorf("ingress conservation: accepted %d but staged %d + queued %d + dispatched %d + core-dropped %d = %d",
			sp.accepted, staged, sp.core.QueueLen(), dispatched, sp.coreDropped, got)
	}
	return sp.in.pendingMirrorCheck()
}

// pendingMirrorCheck asserts the queued mirror matches what syncQueued
// last stored — a desync here would skew every later admission decision.
func (in *ingress) pendingMirrorCheck() error {
	if q := in.queued.Load(); q < 0 {
		return fmt.Errorf("queued mirror %d negative", q)
	}
	return nil
}

// TestShardedIngressPropertyHarness model-checks three ingress-fronted
// pools under randomized shard-interleaved schedules: offers land on
// arbitrary shards, drains batch them into the cores, dispatches and
// cross-pool steals mutate the backlogs, and the clock jumps far enough
// to age queue heads past the starvation bound.
func TestShardedIngressPropertyHarness(t *testing.T) {
	const (
		pools  = 3
		shards = 4
		depth  = 8
	)
	run := func(ops []propOp) error {
		ps := make([]*shardedPool, pools)
		for i := range ps {
			core, err := NewPoolCore(2, depth, sched.ClassCPU, sched.CriticalityPolicy{})
			if err != nil {
				return err
			}
			ps[i] = &shardedPool{in: newIngress(shards, depth), core: core}
		}
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		perPool := make([]int, pools) // dispatched count per pool
		execs := make([][]int, pools) // open executions per pool
		stolen := make([]int, pools)  // net tasks moved in by steals
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			pi := op.b % pools
			sp := ps[pi]
			switch op.kind {
			case 0: // offer onto an arbitrary shard
				tk := propTask(nextID, now, op.a)
				nextID++
				bounce := op.a%7 == 0
				before := sp.in.droppedCount()
				pendingBefore := sp.in.pending()
				err := sp.in.offer(op.a%shards, ingressEntry{task: tk}, bounce)
				switch {
				case err == nil:
					if int64(pendingBefore) >= sp.in.bound {
						return fmt.Errorf("offer admitted at pending %d, bound %d", pendingBefore, sp.in.bound)
					}
					sp.accepted++
					if sp.in.droppedCount() != before {
						return fmt.Errorf("admitted offer counted as a drop")
					}
				case err == ErrQueueFull:
					if int64(pendingBefore) < sp.in.bound {
						return fmt.Errorf("offer rejected at pending %d under bound %d", pendingBefore, sp.in.bound)
					}
					want := before
					if !bounce {
						want++
					}
					if sp.in.droppedCount() != want {
						return fmt.Errorf("drop counter %d after bounced=%v rejection, want %d",
							sp.in.droppedCount(), bounce, want)
					}
				default:
					return fmt.Errorf("offer: unexpected error %v", err)
				}
			case 1: // drain the staged backlog into the core
				if _, err := sp.drain(); err != nil {
					return err
				}
			case 2: // drain-then-dispatch, the worker loop's shape
				if _, err := sp.drain(); err != nil {
					return err
				}
				head, hadHead := sp.core.queue.Head()
				got, ok := sp.core.Dispatch(now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if err := agedPassedOver(head, hadHead, got, sched.ClassCPU, now); err != nil {
					return err
				}
				perPool[pi]++
				execs[pi] = append(execs[pi], 1)
				sp.syncQueued()
			case 3: // complete a random open execution
				if len(execs[pi]) == 0 {
					break
				}
				i := op.a % len(execs[pi])
				sp.core.Complete(execs[pi][i])
				execs[pi] = append(execs[pi][:i], execs[pi][i+1:]...)
			case 4: // advance the clock a long way (ages the head)
				now += time.Duration(op.a%2000) * time.Millisecond
			case 5: // steal between pools; both mirrors must resync
				di := (pi + 1 + op.a%(pools-1)) % pools
				donor := ps[di]
				donor.drainFlush() // steals read the donor's queue, so stage first
				moved := sp.core.StealFrom(donor.core, 1+op.a%4)
				for _, tk := range moved {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d stolen after dispatch", tk.ID)
					}
				}
				stolen[pi] += len(moved)
				stolen[di] -= len(moved)
				sp.syncQueued()
				donor.syncQueued()
			}
			for i, p := range ps {
				if err := poolInvariants(p.core); err != nil {
					return fmt.Errorf("pool %d: %w", i, err)
				}
				// A net stolen-in task sits in this queue without a local
				// accept, so it offsets the pool's expected total.
				if err := p.ingressInvariants(perPool[i] - stolen[i]); err != nil {
					return fmt.Errorf("pool %d: %w", i, err)
				}
			}
		}
		return nil
	}
	checkSequences(t, 3000, 6, run)
}

// drainFlush drains the ingress without the order check — used before a
// steal, where only the resulting queue state matters.
func (sp *shardedPool) drainFlush() {
	entries := sp.in.drainInto(sp.scratch)
	sp.scratch = entries[:0]
	for _, e := range entries {
		if !sp.core.Submit(e.task) {
			sp.coreDropped++
		}
	}
	sp.syncQueued()
}

// TestShardedIngressRaceConservation hammers the real sharded engine path
// from 64 goroutines and asserts conservation after quiescing — the
// harness the -race detector runs over the shard staging, drain, and
// parking protocol.
func TestShardedIngressRaceConservation(t *testing.T) {
	bm := workload.BySlug("chatbot")
	if bm == nil {
		t.Fatal("no chatbot benchmark")
	}
	eng, err := NewEngine(testRunners(t), Options{
		Workers:    4,
		QueueDepth: 1024,
		MaxBatch:   8,
		Execute: func(*faas.Runner, *workload.Benchmark, faas.Options) (faas.Result, error) {
			return faas.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const (
		submitters = 64
		perWorker  = 200
	)
	opt := faas.Options{Quantile: 0.5}
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent := 0
			for sent < perWorker {
				if err := eng.SubmitAsync("DSCS-Serverless", bm, opt); err == nil {
					sent++
				}
			}
		}()
	}
	wg.Wait()
	if !eng.Quiesce(time.Minute) {
		t.Fatal("engine did not quiesce after 64-way sharded submit")
	}
	if err := eng.Conservation(); err != nil {
		t.Fatalf("conservation after 64-way sharded submit: %v", err)
	}
}
