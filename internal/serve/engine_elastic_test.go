package serve

import (
	"sync"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/workload"
)

func TestEngineElasticValidation(t *testing.T) {
	bad := []Options{
		{Workers: 2, Prewarm: true},                               // elastic knob without MaxWorkers
		{Workers: 2, MinWorkers: 1},                               // same
		{Workers: 2, ColdStart: time.Second},                      // same
		{Workers: 2, IdleLinger: time.Second},                     // same
		{MaxWorkers: 4, MinWorkers: 5},                            // Min above Max
		{MaxWorkers: 4, MinWorkers: -1},                           // negative Min
		{MaxWorkers: 4, ColdStart: -time.Second},                  // negative penalty
		{MaxWorkers: 4, IdleLinger: -time.Second},                 // negative linger
		{MaxWorkers: -3},                                          // negative Max
		{Workers: 2, MaxWorkers: 4, MinWorkers: 1, Prewarm: true}, // ok: Workers ignored
	}
	for i, opt := range bad[:len(bad)-1] {
		if _, err := NewEngine(testRunners(t), opt); err == nil {
			t.Errorf("options %d (%+v) must be rejected", i, opt)
		}
	}
	eng, err := NewEngine(testRunners(t), bad[len(bad)-1])
	if err != nil {
		t.Fatalf("elastic options rejected: %v", err)
	}
	eng.Close()
}

// TestEngineElasticScalesUpAndDown drives the live lifecycle end to end:
// a burst of concurrent submissions forces cold starts above the
// MinWorkers floor, and once the engine quiesces the idle linger suspends
// capacity back down — all observable through the lifecycle gauges.
func TestEngineElasticScalesUpAndDown(t *testing.T) {
	// ColdStart zero keeps the scale-up deterministic under wall time:
	// the raise promotes in place, so the cold-start tally cannot race
	// the burst draining before a timed warming completes. (The timed
	// path runs under TestEngineElasticPrewarmServes and the sims.)
	// Execution must cost real time — an instantaneous runner drains
	// each request before the next stages, so the queue never backs up
	// and a reactive scaler rightly never grows.
	eng, err := NewEngine(testRunners(t), Options{
		MaxWorkers: 4, MinWorkers: 1,
		IdleLinger: 10 * time.Millisecond,
		QueueDepth: 128,
		MaxBatch:   1,
		Execute: func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error) {
			time.Sleep(2 * time.Millisecond)
			return faas.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 48
	bench := workload.BySlug("asset-damage")
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}

	tel := eng.Telemetry()
	if got := tel.Counter("serve_completed_total"); got != n {
		t.Fatalf("serve_completed_total = %g, want %d", got, n)
	}
	// 48 concurrent requests against a 1-warm pool must have scaled up.
	if got := tel.Counter("serve_cold_starts_total"); got == 0 {
		t.Error("no cold starts recorded under a 48-way burst")
	}
	if got := tel.Counter("serve_cold_starts_total{platform=DSCS-Serverless}"); got == 0 {
		t.Error("per-platform cold-start counter never moved")
	}

	// Drained and idle: the linger must suspend capacity back to the
	// floor, and the gauges must agree with each other when it does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		warm := tel.Gauge("serve_workers_warm{platform=DSCS-Serverless}")
		workers := tel.Gauge("serve_workers{platform=DSCS-Serverless}")
		cold := tel.Gauge("serve_workers_cold{platform=DSCS-Serverless}")
		warming := tel.Gauge("serve_workers_warming{platform=DSCS-Serverless}")
		if warm == 1 && workers == 1 && warm+cold+warming == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never suspended to the floor: warm=%g workers=%g cold=%g warming=%g",
				warm, workers, cold, warming)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineElasticPrewarmServes smoke-tests the predictive mode on the
// live engine: arrivals and completions feed the autoscaler digests and
// everything still completes and conserves.
func TestEngineElasticPrewarmServes(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		MaxWorkers: 3, MinWorkers: 1, Prewarm: true,
		ColdStart: time.Millisecond, IdleLinger: 50 * time.Millisecond,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")
	for i := 0; i < 24; i++ {
		if _, err := eng.Submit("Baseline (CPU)", bench, faas.Options{Quantile: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineQuiesceEdgeCases covers the drain corners: quiescing an
// engine that never served, quiescing twice, and a herd of Quiesce
// callers racing Close.
func TestEngineQuiesceEdgeCases(t *testing.T) {
	t.Run("zero-submissions", func(t *testing.T) {
		eng, err := NewEngine(testRunners(t), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if !eng.Quiesce(10 * time.Millisecond) {
			t.Error("an idle engine must report drained immediately")
		}
	})

	t.Run("double-quiesce", func(t *testing.T) {
		eng, err := NewEngine(testRunners(t), Options{Workers: 2, QueueDepth: 32})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		bench := workload.BySlug("asset-damage")
		for i := 0; i < 8; i++ {
			if err := eng.SubmitAsync("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
		if !eng.Quiesce(10 * time.Second) {
			t.Fatal("first quiesce timed out")
		}
		if !eng.Quiesce(10 * time.Millisecond) {
			t.Error("second quiesce must succeed instantly on a drained engine")
		}
		if eng.InFlight() != 0 {
			t.Errorf("in-flight = %d after quiesce", eng.InFlight())
		}
	})

	t.Run("quiesce-racing-close", func(t *testing.T) {
		eng, err := NewEngine(testRunners(t), Options{
			MaxWorkers: 4, MinWorkers: 0,
			ColdStart: time.Millisecond, IdleLinger: 5 * time.Millisecond,
			QueueDepth: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		bench := workload.BySlug("asset-damage")
		for i := 0; i < 32; i++ {
			if err := eng.SubmitAsync("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
		// 64 quiescers race one Close; every call must return — drained
		// or timed out — with no panic or deadlock, and Close's freeze
		// must keep serving whatever was admitted.
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng.Quiesce(2 * time.Second)
			}()
		}
		eng.Close()
		wg.Wait()
	})
}
