package serve

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// testRunnersTwoCPU is testRunners plus a second CPU-class pool, so the
// spill-target scans have a live/dead choice to make.
func testRunnersTwoCPU(t testing.TB) map[string]*faas.Runner {
	t.Helper()
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*faas.Runner{
		"DSCS-Serverless": faas.NewRunner(store, platform.DSCS()),
		"Baseline (CPU)":  faas.NewRunner(store, platform.BaselineCPU()),
		"Standby (CPU)":   faas.NewRunner(store, platform.BaselineCPU()),
	}
}

// TestDeadPoolNotSpillTarget is the satellite regression for the idle-pool
// fast path: a dead pool looks exactly like an idle one — empty queue,
// free workers, zero-count digest — and before the health gate it priced
// as "idle, free" and won every spill-target scan by name order. The fix
// checks the health bit before the zero-price shortcut and skips dead
// pools in the scans outright.
func TestDeadPoolNotSpillTarget(t *testing.T) {
	eng, err := NewEngine(testRunnersTwoCPU(t), Options{
		Workers: 1, QueueDepth: 16, AdaptiveBalance: true, EstimateWarmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// "Baseline (CPU)" sorts before "Standby (CPU)", so with both priced at
	// zero the scan keeps Baseline. Killing it must hand the choice to the
	// survivor — a dead pool serves nothing, whatever its price.
	if err := eng.FailPool("Baseline (CPU)"); err != nil {
		t.Fatal(err)
	}
	if got := eng.adaptiveSpillTarget(); got == nil || got.name != "Standby (CPU)" {
		t.Fatalf("adaptive spill target with Baseline dead = %v, want Standby (CPU)", got)
	}
	if got := eng.spillTarget(); got == nil || got.name != "Standby (CPU)" {
		t.Fatalf("static spill target with Baseline dead = %v, want Standby (CPU)", got)
	}
	// The wait-gap trigger must never route onto a dead peer either.
	dscs, dead := eng.pools["DSCS-Serverless"], eng.pools["Baseline (CPU)"]
	if eng.waitGapToPool(dscs, dead) {
		t.Fatal("wait gap latched toward a dead pool")
	}
	if err := eng.RecoverPool("Baseline (CPU)"); err != nil {
		t.Fatal(err)
	}
	if got := eng.adaptiveSpillTarget(); got == nil || got.name != "Baseline (CPU)" {
		t.Fatalf("adaptive spill target after recovery = %v, want Baseline (CPU)", got)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRequeueOnPoolDeath drives the tentpole invariant end to end on
// the live engine: a pool killed while a batch is executing must return
// that batch's tasks to its queue (the execution result is void — a killed
// worker delivers nothing), keep the requests in-flight, and deliver each
// exactly once after recovery. Conservation must hold throughout.
func TestEngineRequeueOnPoolDeath(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 16,
		Execute: func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error) {
			if calls.Add(1) == 1 {
				<-release
			}
			return faas.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")
	tel := eng.Telemetry()

	done := make(chan Invocation, 1)
	go func() {
		inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
		if err != nil {
			t.Error(err)
			return
		}
		done <- inv
	}()
	waitFor(t, "first request dispatched", func() bool { return dscsBusy(eng) == 1 })

	// Kill the pool mid-execution, then let the doomed execution finish:
	// its completion must requeue, not deliver.
	if err := eng.FailPool("DSCS-Serverless"); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitFor(t, "batch requeued", func() bool { return tel.Counter("serve_requeues_total") >= 1 })
	if eng.InFlight() != 1 {
		t.Fatalf("in-flight after requeue = %d, want 1 (the request is still owed a delivery)", eng.InFlight())
	}
	if got := eng.QueueLen("DSCS-Serverless"); got != 1 {
		t.Fatalf("dead pool queue after requeue = %d, want 1", got)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("request delivered by a dead pool")
	case <-time.After(20 * time.Millisecond):
	}

	if err := eng.RecoverPool("DSCS-Serverless"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request not delivered after recovery")
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("serve_faults_total"); got != 1 {
		t.Fatalf("serve_faults_total = %v, want 1", got)
	}
}

// TestEngineStealsFromDeadPool: a dead pool's backlog is rescue work — the
// static steal path must pull it regardless of class or threshold, and
// submissions landing on a dead pool must wake the rescuers.
func TestEngineStealsFromDeadPool(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 16, MaxBatch: 1,
		// Far above the backlog below: only the dead-donor bypass can move
		// this work.
		StealThreshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")
	if err := eng.FailPool("DSCS-Serverless"); err != nil {
		t.Fatal(err)
	}

	done := make(chan Invocation, 3)
	for i := 0; i < 3; i++ {
		go func() {
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				t.Error(err)
				return
			}
			done <- inv
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case inv := <-done:
			if inv.Platform != "Baseline (CPU)" {
				t.Fatalf("rescued request served by %q, want Baseline (CPU)", inv.Platform)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d stranded on the dead pool", i)
		}
	}
	if got := eng.Telemetry().Counter("serve_steal_total"); got < 3 {
		t.Fatalf("serve_steal_total = %v, want >= 3", got)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineHedgedDispatch: an execution outliving HedgeFactor x the
// adopted service-p95 forks a second dispatch on a healthy peer; the first
// completion wins and the loser is discarded.
func TestEngineHedgedDispatch(t *testing.T) {
	release := make(chan struct{})
	dscsRunner := make(chan *faas.Runner, 1)
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 16, HedgeFactor: 1,
		Execute: func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error) {
			select {
			case dr := <-dscsRunner:
				if dr == r {
					// The primary execution on the DSCS pool hangs — the
					// straggler the hedge exists to cut off.
					<-release
				} else {
					dscsRunner <- dr
				}
			default:
			}
			return faas.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	defer close(release)
	dscsRunner <- eng.pools["DSCS-Serverless"].runner
	bench := workload.BySlug("asset-damage")

	inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_ = inv
	tel := eng.Telemetry()
	if got := tel.Counter("serve_hedges_fired_total"); got != 1 {
		t.Fatalf("serve_hedges_fired_total = %v, want 1", got)
	}
	if got := tel.Counter("serve_hedges_won_total"); got != 1 {
		t.Fatalf("serve_hedges_won_total = %v, want 1", got)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFaultScriptValidation: a typo'd fault script fails at
// construction, not silently at fire time — and sub-1 hedge factors are
// rejected (they would fork every request).
func TestEngineFaultScriptValidation(t *testing.T) {
	if _, err := NewEngine(testRunners(t), Options{
		Faults: []trace.FaultEvent{{Kind: trace.FaultPoolDown, Target: "TPU"}},
	}); err == nil {
		t.Error("unknown fault-script pool target must fail construction")
	}
	if _, err := NewEngine(testRunners(t), Options{
		Faults: []trace.FaultEvent{{Kind: trace.FaultDriveDown, Target: "nvme-99"}},
	}); err == nil {
		t.Error("unknown fault-script drive target must fail construction")
	}
	if _, err := NewEngine(testRunners(t), Options{HedgeFactor: 0.5}); err == nil {
		t.Error("HedgeFactor below 1 must fail construction")
	}
}

// TestEngineFaultScriptInjection: a scripted pool-down/pool-up pair fires
// on the live clock and the engine keeps serving through it.
func TestEngineFaultScriptInjection(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 16,
		Faults: []trace.FaultEvent{
			{At: 10 * time.Millisecond, Kind: trace.FaultPoolDown, Target: "DSCS-Serverless"},
			{At: 60 * time.Millisecond, Kind: trace.FaultPoolUp, Target: "DSCS-Serverless"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	waitFor(t, "scripted pool-down", func() bool { return !eng.PoolHealthy("DSCS-Serverless") })
	waitFor(t, "scripted pool-up", func() bool { return eng.PoolHealthy("DSCS-Serverless") })
	bench := workload.BySlug("asset-damage")
	if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Telemetry().Counter("serve_faults_total"); got != 1 {
		t.Fatalf("serve_faults_total = %v, want 1", got)
	}
}

// TestEngineFailDrive: a downed drive removes in-storage execution for the
// data it held; the engine serves through it via the runner's conventional
// fallback, and recovery restores the DSCS path.
func TestEngineFailDrive(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, id := range []string{"dscs-0", "dscs-1"} {
		if err := eng.FailDrive(id); err != nil {
			t.Fatal(err)
		}
	}
	bench := workload.BySlug("asset-damage")
	if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
		t.Fatalf("submit with every DSCS drive down: %v", err)
	}
	for _, id := range []string{"dscs-0", "dscs-1"} {
		if err := eng.RecoverDrive(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := eng.FailDrive("nvme-99"); err == nil {
		t.Error("unknown drive must error")
	}
}

// TestEngineFailPoolMidColdStart: an elastic pool killed while slots are
// warming must not let the armed lifecycle timer fire capacity into the
// dead pool — the quench cancels the pending pulls and disarms the timer,
// and a stale time.AfterFunc callback racing the kill is a gated no-op
// (run under -race in CI). Recovery re-warms and serves the queued work.
func TestEngineFailPoolMidColdStart(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		MaxWorkers: 2, MinWorkers: 0, QueueDepth: 16,
		ColdStart: 150 * time.Millisecond, IdleLinger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
			t.Error(err)
		}
	}()
	p := eng.pools["DSCS-Serverless"]
	lifecycle := func() (warm, warming int) {
		p.mu.Lock()
		defer p.mu.Unlock()
		lc := p.core.Lifecycle()
		return lc.Warm(), lc.Warming()
	}
	waitFor(t, "cold start underway", func() bool { _, w := lifecycle(); return w > 0 })
	if err := eng.FailPool("DSCS-Serverless"); err != nil {
		t.Fatal(err)
	}
	// Well past the cancelled pull's readyAt: had the timer survived the
	// kill, the slot would have promoted into the dead pool by now.
	time.Sleep(250 * time.Millisecond)
	if warm, warming := lifecycle(); warm != 0 || warming != 0 {
		t.Fatalf("capacity resurrected into a dead pool: warm=%d warming=%d", warm, warming)
	}
	select {
	case <-done:
		t.Fatal("request served by a dead scaled-to-zero pool")
	default:
	}
	if err := eng.RecoverPool("DSCS-Serverless"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request not served after recovery")
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}
