// engine.go is the goroutine half of the serving core: the concurrent
// invocation engine behind the gateway. Per-platform worker pools over the
// shared scheduling state machines, admission control on a bounded queue
// with the pluggable policies of internal/sched, request batching
// (per-dispatch lingering or the queue-level SLO-aware former), two-way
// queue rebalancing (submit-time spillover, drain-time stealing — static
// depth counts or the wait-keyed AdaptiveBalance latch), per-drive
// occupancy for DSCS executions, and the latency/wait observatories behind
// the serve_latency_* and serve_queue_delay_* gauges. The discrete-event
// at-scale simulation (internal/cluster) drives the same cores, windows,
// and former from its virtual clock, so the simulated rack and the live
// HTTP path share one scheduler implementation.

//dscslint:allow clockcheck this file is the wall-clock half of the core: worker sleeps, quiesce deadlines, and lifecycle timers run on real time (the clock-free state machines live in core.go and lifecycle.go)

package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/scale"
	"dscs/internal/sched"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// Engine errors surfaced to callers (the gateway maps them to HTTP codes).
var (
	// ErrQueueFull is the admission-control rejection: the platform's
	// queue is at its bound.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("serve: engine closed")
)

// DefaultMaxBatch caps request coalescing. Figure 14 shows DSA throughput
// still improving at batch 8 while batch-1 latency stays the common case;
// beyond that the latency cost of waiting outweighs occupancy gains for
// interactive serving.
const DefaultMaxBatch = 8

// Options tune the engine.
type Options struct {
	// Workers is the pool size per platform (default 4). With the elastic
	// lifecycle armed (MaxWorkers > 0) it is ignored: capacity floats
	// between MinWorkers and MaxWorkers instead.
	Workers int
	// MaxWorkers arms the elastic worker lifecycle when positive: each
	// pool's warm capacity floats between MinWorkers and MaxWorkers,
	// driven by a per-pool autoscaler (reactive by default, predictive
	// with Prewarm). The pool spawns MaxWorkers goroutines; how many may
	// dispatch at once is the lifecycle's warm count. Zero keeps the
	// classic fixed pool bit-identical.
	MaxWorkers int
	// MinWorkers is the elastic floor (0 allows scale-to-zero: an idle
	// pool suspends entirely and the next burst pays a cold start).
	MinWorkers int
	// ColdStart is the warming penalty a suspended slot pays before it
	// can dispatch — the container pull plus the CompileCached miss.
	ColdStart time.Duration
	// IdleLinger is how long a warm worker stays idle before it may
	// suspend (only while capacity exceeds the autoscaler's target).
	IdleLinger time.Duration
	// Prewarm upgrades the autoscaler from reactive (size to the live
	// backlog) to predictive: a Little's-law floor from per-benchmark
	// arrival-rate and service digests plus a wait-p95 surge latch warms
	// capacity before the backlog exists.
	Prewarm bool
	// QueueDepth bounds each platform's admission queue (default 256).
	QueueDepth int
	// Policy selects queued work for free workers (default FCFS, the
	// paper's deployed policy).
	Policy sched.Policy
	// PolicyName resolves a policy by name ("fcfs", "criticality",
	// "dag-aware") when Policy is nil — the CLI/API-friendly spelling.
	PolicyName string
	// MaxBatch caps same-benchmark request coalescing per execution
	// (default DefaultMaxBatch; 1 disables batching).
	MaxBatch int
	// BatchLinger lets a dispatching worker wait up to this long for a
	// same-benchmark batch to fill toward MaxBatch instead of coalescing
	// only what already queued (0, the default, disables lingering).
	BatchLinger time.Duration
	// GlobalBatch replaces the per-dispatch linger window with the
	// queue-level BatchFormer: same-benchmark arrivals group across the
	// whole queue before dispatch, and a batch is released once it reaches
	// MaxBatch, its oldest member has waited BatchLinger, or that member's
	// BatchSLO slack is exhausted. Needs MaxBatch > 1 and BatchLinger > 0
	// to hold anything.
	GlobalBatch bool
	// BatchSLO is each request's deadline budget for the global former: a
	// forming batch dispatches no later than its oldest member's arrival +
	// BatchSLO - expected service, so occupancy never costs an SLO (0
	// bounds holds by BatchLinger alone).
	BatchSLO time.Duration
	// StealThreshold arms pull-based queue rebalancing: a worker whose own
	// dispatch comes up empty pulls queued work from the deepest pool of
	// the other class once that backlog exceeds this depth, counted as
	// serve_steal_total{from,to} (0, the default, disables stealing).
	// Ignored when AdaptiveBalance keys the decision on wait delay instead.
	StealThreshold int
	// AdaptiveBalance replaces the static SpilloverThreshold/StealThreshold
	// queue-depth counts with the wait-keyed decision: every dispatch
	// records the served request's queue delay (arrival to dispatch) into
	// per-{platform, class} digests, and work rebalances — DSCS submissions
	// spill to a CPU pool at submit time, an idle worker steals any peer
	// pool's backlog (same class included) at drain time — once the donor's
	// adopted wait-p95 has diverged above the target's past the hysteresis
	// latch (the metrics.Digest.Adopt bands — enter at 1.5x, release
	// within 1.2x, after EstimateWarmup dispatches — over one
	// metrics.Latch per pool pair). Queue delay is what the SLO actually
	// spends while work sits behind a hot pool; depth counts are only a
	// proxy for it.
	AdaptiveBalance bool
	// SpilloverThreshold routes a submission aimed at a DSCS-class pool
	// to a CPU-class pool once the DSCS queue has reached this depth —
	// the scarce accelerated capacity stays for work already committed to
	// it (0, the default, keeps the pools isolated).
	SpilloverThreshold int
	// SpilloverTo names the CPU-class pool spilled work lands on. Empty
	// picks the least-queued CPU-class pool per submission.
	SpilloverTo string
	// AdaptiveEstimates prices scheduling decisions with live latency
	// digests (metrics.Observatory, per {benchmark, platform}) instead of
	// the static graph-derived estimate once a benchmark has enough
	// observations on a pool: the former's BatchSLO slack uses the
	// observed p95 (with warmup and hysteresis, Digest.Adopt) and the
	// policies' service estimates blend toward the observed p50. The
	// static estimate stays as the cold-start prior.
	AdaptiveEstimates bool
	// EstimateWarmup is the per-{benchmark, platform} completion count
	// below which live digests defer to the static prior (default
	// metrics.DefaultWarmup).
	EstimateWarmup int
	// EstimateWindow is each latency digest's sliding window, in
	// observations (default metrics.DefaultWindow).
	EstimateWindow int
	// Telemetry receives the engine's metrics; pass the gateway's
	// registry to surface them on /metrics (default: a fresh registry).
	Telemetry *sched.Telemetry
	// IngressShards sizes each pool's sharded submit ingress: submissions
	// stage on a per-P shard and drain into the pool core in batches, so
	// submitters contend only on their shard (0 defaults to GOMAXPROCS;
	// any negative value disables the ingress and admits directly under
	// the pool lock — the pre-shard path, kept for A/B benchmarking).
	IngressShards int
	// Execute overrides how a worker runs one coalesced batch. The bench
	// harness injects a no-op here to measure the scheduling hot path
	// without the simulated execution cost. Nil runs Runner.Invoke.
	Execute func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error)
	// HedgeFactor arms hedged dispatch when >= 1: an execution that has run
	// longer than HedgeFactor x the adopted service-p95 for its benchmark on
	// its pool gets a second dispatch on a healthy peer. The first completion
	// wins; the loser's result is discarded (counted under
	// serve_hedges_fired_total / serve_hedges_won_total). 0 disables.
	HedgeFactor float64
	// Faults schedules fault injection on the engine's live clock: each
	// event fires At after NewEngine returns, killing or recovering the
	// named pool or drive (trace.ParseFaultScript builds the slice from the
	// -fault-script CLI spelling). Targets are validated at construction.
	Faults []trace.FaultEvent
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Policy == nil {
		o.Policy = sched.FCFSPolicy{}
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.EstimateWarmup <= 0 {
		o.EstimateWarmup = metrics.DefaultWarmup
	}
	if o.EstimateWindow <= 0 {
		o.EstimateWindow = metrics.DefaultWindow
	}
	if o.Telemetry == nil {
		o.Telemetry = sched.NewTelemetry()
	}
	return o
}

// PolicyByName maps a CLI/API policy name to its implementation.
func PolicyByName(name string) (sched.Policy, error) {
	switch name {
	case "", "fcfs":
		return sched.FCFSPolicy{}, nil
	case "criticality":
		return sched.CriticalityPolicy{}, nil
	case "dag-aware", "dag":
		return sched.DAGAwarePolicy{}, nil
	}
	return nil, fmt.Errorf("serve: unknown policy %q (try fcfs, criticality, dag-aware)", name)
}

// PolicyNames lists the accepted PolicyByName inputs.
func PolicyNames() []string { return []string{"fcfs", "criticality", "dag-aware"} }

// Invocation is one served request with its engine-side telemetry.
type Invocation struct {
	Result   faas.Result
	Platform string
	// Queued is the time the request waited for a worker.
	Queued time.Duration
	// BatchRequests counts the requests coalesced into this execution
	// (1 = no batching); BatchSize is the combined model batch executed.
	BatchRequests int
	BatchSize     int
}

// outcome is what a worker delivers back to a blocked submitter. platform
// names the pool that actually executed the request — with stealing a
// request can be served by a different pool than the one that admitted it.
type outcome struct {
	res           faas.Result
	err           error
	platform      string
	queued        time.Duration
	batchRequests int
	batchSize     int
}

// request is one pending submission. fire marks a fire-and-forget
// SubmitAsync request: no submitter blocks on done, so the worker recycles
// the request instead of delivering an outcome.
type request struct {
	bench *workload.Benchmark
	opt   faas.Options
	enq   time.Time
	fire  bool
	done  chan outcome
}

// requestPool recycles request structs (and their reply channels — cap-1,
// drained by exactly one receiver) across submissions, so the steady-state
// submit path allocates nothing per call.
var requestPool = sync.Pool{New: func() any {
	return &request{done: make(chan outcome, 1)}
}}

func getRequest() *request { return requestPool.Get().(*request) }

func putRequest(r *request) {
	r.bench, r.opt, r.enq, r.fire = nil, faas.Options{}, time.Time{}, false
	requestPool.Put(r)
}

// pool is one platform's worker pool: the shared PoolCore plus the
// goroutine machinery the simulator doesn't need.
type pool struct {
	name   string
	runner *faas.Runner
	class  sched.InstanceClass

	mu     sync.Mutex
	cond   *sync.Cond
	core   *PoolCore
	closed bool

	// ingress is the sharded staging front of the submit path (nil when
	// Options.IngressShards is negative); scratch is the drain buffer,
	// reused under p.mu.
	ingress *ingress
	scratch []ingressEntry
	// parked counts workers blocked in cond.Wait. Submitters that fail the
	// opportunistic drain read it to decide whether a wakeup fence is
	// needed: the parked increment and the staged check are both
	// sequentially consistent atomics, so either the parking worker sees
	// the staged entry or the submitter sees the parked worker — an entry
	// can never strand against a sleeping pool.
	parked atomic.Int32

	// deadBit mirrors core.dead for lock-free readers: the submit path's
	// rescue wakeup and the spill/steal scans check health without taking
	// p.mu. Written only under p.mu (FailPool/RecoverPool/Close), so it is
	// always coherent with the core's transitions.
	deadBit atomic.Bool

	// autoscaler produces the pool's desired warm capacity (nil for a
	// classic fixed pool); lifeTimer wakes the pool at the lifecycle's
	// next self-transition (a warming slot coming ready, a linger
	// expiring). timerAt is the armed instant (engine-clock basis,
	// -1 when nothing is armed); scaleAt stamps the last autoscale
	// decision for its rate limit. All three are guarded by p.mu.
	autoscaler *scale.Autoscaler
	lifeTimer  *time.Timer
	timerAt    time.Duration
	scaleAt    time.Duration
	// coldStartsPub tracks how many lifecycle cold starts have been
	// published to the counters (guarded by p.mu).
	coldStartsPub int

	// Pre-resolved telemetry handles: completions and queue mutations touch
	// one atomic store each instead of re-walking the registry map.
	gDepth    sched.GaugeHandle
	gBatchOcc sched.GaugeHandle
	gDelayP50 sched.GaugeHandle
	gDelayP95 sched.GaugeHandle
	gDelayP99 sched.GaugeHandle
	gWorkers  sched.GaugeHandle
	gWarm     sched.GaugeHandle
	gCold     sched.GaugeHandle
	gWarming  sched.GaugeHandle
	cDropped  sched.CounterHandle
	cFormed   sched.CounterHandle
	cColdSt   sched.CounterHandle
	// cSpillTo and cStealFrom hold the directed per-pair flow counters,
	// resolved for every possible peer at construction so the submit and
	// steal paths never build a label string per event (the PR 6 handle
	// discipline; a map read allocates nothing). cSpillTo is keyed by
	// spill target, cStealFrom by donor. A missing key yields the zero
	// handle, whose Inc is a no-op.
	cSpillTo   map[string]sched.CounterHandle
	cStealFrom map[string]sched.CounterHandle
	// delayRefresh is the wall-clock nanos of the last serve_queue_delay_*
	// gauge refresh — the publish rate limit (gaugeRefreshInterval). The
	// digests themselves stay exact; only how often their window quantiles
	// are re-read onto /metrics is bounded.
	delayRefresh atomic.Int64
}

// gaugeRefreshInterval bounds how often a dispatch (or completion)
// re-derives the published quantile gauges from its digest. Every
// observation still lands in the digest, and every decision path (the
// balance latch, adaptive pricing) reads the digest directly — folding
// staged entries on demand — so rate-limiting the gauges changes no
// scheduling behavior, only the /metrics publish cadence. At sub-ms batch
// rates the refresh would otherwise sort-maintain the window once per
// batch just to overwrite the same gauge cells.
const gaugeRefreshInterval = time.Millisecond

// driveSet serializes DSCS-class executions over the physical DSCS-Drives:
// the engine's DSCS pool sizes workers, but the rack has a fixed number of
// drives, each run-to-completion (csd.Drive.Acquire). Holding a drive marks
// it busy, so concurrent conventional storage I/O against it pays the
// ArbitrationPenalty in live latencies — the drive-level contention the
// analytic model charges now shows up in served traffic too.
type driveSet struct {
	mu      sync.Mutex
	cond    *sync.Cond
	drives  []*csd.Drive
	ids     []string
	byDrive map[*csd.Drive]int
	closed  bool
}

// newDriveSet harvests the DSCS-Drives behind the given stores (deduped —
// pools usually share one object store).
func newDriveSet(stores []*objstore.Store) *driveSet {
	ds := &driveSet{byDrive: make(map[*csd.Drive]int)}
	ds.cond = sync.NewCond(&ds.mu)
	for _, store := range stores {
		for _, n := range store.Nodes() {
			if n.CSD == nil {
				continue
			}
			if _, seen := ds.byDrive[n.CSD]; seen {
				continue
			}
			ds.byDrive[n.CSD] = len(ds.drives)
			ds.drives = append(ds.drives, n.CSD)
			ds.ids = append(ds.ids, n.ID)
		}
	}
	return ds
}

// acquireDrive blocks until the given drive's DSA is free and returns its
// index, plus whether the caller had to wait (contention). This targets
// the specific drive the execution will run on — the one holding the input
// replica — so exclusivity and the arbitration penalty attach to the right
// device. It returns -1 for an unknown drive or when the set is closing;
// execution then proceeds unarbitrated.
func (ds *driveSet) acquireDrive(d *csd.Drive) (idx int, waited bool) {
	i, ok := ds.byDrive[d]
	if !ok {
		return -1, false
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for !ds.closed {
		if d.Acquire() {
			return i, waited
		}
		waited = true
		ds.cond.Wait()
	}
	return -1, waited
}

// acquire blocks until any drive's DSA is free (tests use it to stage
// occupancy); same contract as acquireDrive.
func (ds *driveSet) acquire() (idx int, waited bool) {
	if len(ds.drives) == 0 {
		return -1, false
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for !ds.closed {
		for i, d := range ds.drives {
			if d.Acquire() {
				return i, waited
			}
		}
		waited = true
		ds.cond.Wait()
	}
	return -1, waited
}

// release frees a drive and wakes every waiter: waiters target specific
// drives, so a single Signal could wake one waiting on a still-busy device
// and strand the one this release unblocks.
func (ds *driveSet) release(idx int) {
	ds.drives[idx].Release()
	ds.mu.Lock()
	ds.cond.Broadcast()
	ds.mu.Unlock()
}

// close unblocks every waiter; subsequent acquires return -1.
func (ds *driveSet) close() {
	ds.mu.Lock()
	ds.closed = true
	ds.cond.Broadcast()
	ds.mu.Unlock()
}

// Engine is the concurrent serving core. Safe for concurrent use.
type Engine struct {
	opt   Options
	tel   *sched.Telemetry
	pools map[string]*pool
	// spillCPU lists the CPU-class pools eligible as spillover targets,
	// sorted by name for deterministic tie-breaks; dscsPools is the same
	// cached view of the DSCS class (the pool set is immutable after
	// construction, so the submit path never rebuilds these).
	spillCPU  []*pool
	dscsPools []*pool
	// drives arbitrates DSCS-class executions over the physical drives.
	drives *driveSet
	// estimates memoizes service estimates per benchmark slug. It lives
	// on the engine — a package-level cache would leak one run's pricing
	// into another engine's policies (or a test's redefined slug).
	estimates sync.Map // slug -> serviceEstimate
	// obs is the latency observatory: per-{benchmark, platform} digests
	// recorded on every completion. Always recording (it backs the
	// serve_latency_* gauges); consumed by pricing only with
	// Options.AdaptiveEstimates.
	obs *metrics.Observatory
	// waitObs is the queue-delay observatory keyed {platform, class}: every
	// dispatch records each served request's arrival→dispatch wait against
	// the pool that served it (a stolen request charges the thief). Always
	// recording (it backs the serve_queue_delay_* gauges); consumed by the
	// spillover/steal decisions only with Options.AdaptiveBalance.
	waitObs *metrics.Observatory
	// balanceMu guards latches, the per-(donor, peer) adoption latches of
	// the wait-gap decisions — per pair, not per digest, so pairwise
	// comparisons across N pools never share hysteresis state.
	balanceMu sync.Mutex
	latches   map[[2]string]*metrics.Latch
	start     time.Time
	nextID    atomic.Int64
	wg        sync.WaitGroup
	once      sync.Once
	// exec runs one coalesced batch (Options.Execute, or Runner.Invoke).
	exec func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error)
	// inflight counts admitted-but-undelivered requests; Quiesce polls it
	// so fire-and-forget callers can drain the engine.
	inflight atomic.Int64
	// latGauges caches the per-{benchmark, platform} latency gauge handles
	// resolved by observe (invalidated by ForgetEstimate, which Unsets the
	// underlying series).
	latGauges sync.Map // latKey -> *latHandles
	// Pre-resolved engine-wide handles for the per-completion counters.
	cSubmitted   sched.CounterHandle
	cCompleted   sched.CounterHandle
	cBatches     sched.CounterHandle
	cBatchedReqs sched.CounterHandle
	cWaitMS      sched.CounterHandle
	cDroppedAll  sched.CounterHandle
	cFormedAll   sched.CounterHandle
	cStealAll    sched.CounterHandle
	cSpillAll    sched.CounterHandle
	cDriveWait   sched.CounterHandle
	cColdAll     sched.CounterHandle
	// Failure-path counters: injected faults, batches returned to their
	// queue by a mid-execution pool death, hedged dispatches fired and won.
	cFaults      sched.CounterHandle
	cRequeues    sched.CounterHandle
	cHedgesFired sched.CounterHandle
	cHedgesWon   sched.CounterHandle
	// faultTimers are the armed Options.Faults injections; Close stops them
	// so a scripted fault never fires into a drained engine.
	faultTimers []*time.Timer
	// Per-drive occupancy handles, indexed like drives.ids.
	driveBusy []sched.GaugeHandle
	driveAcq  []sched.CounterHandle
	// Workflow driver state (workflow.go): the admitted-workflow counter
	// behind object-key namespacing, the stages-in-flight gauge backing,
	// and the end-to-end makespan digest behind serve_workflow_makespan_*.
	wfID        atomic.Int64
	wfInflight  atomic.Int64
	wfMakespans *metrics.Digest
}

// latKey keys the latency-gauge handle cache without allocating a joined
// string per completion.
type latKey struct{ slug, platform string }

// latHandles carries one {benchmark, platform} series' three quantile
// gauges plus its publish-rate-limit stamp (see gaugeRefreshInterval).
type latHandles struct {
	p50, p95, p99 sched.GaugeHandle
	refresh       atomic.Int64
}

// NewEngine builds one worker pool per runner (the platform.All lineup in
// the default environment) and starts its workers.
func NewEngine(runners map[string]*faas.Runner, opt Options) (*Engine, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("serve: no runners")
	}
	if opt.Policy == nil && opt.PolicyName != "" {
		p, err := PolicyByName(opt.PolicyName)
		if err != nil {
			return nil, err
		}
		opt.Policy = p
	}
	opt = opt.withDefaults()
	elastic := opt.MaxWorkers > 0
	if elastic {
		if opt.MinWorkers < 0 || opt.MinWorkers > opt.MaxWorkers {
			return nil, fmt.Errorf("serve: MinWorkers %d outside [0, MaxWorkers=%d]",
				opt.MinWorkers, opt.MaxWorkers)
		}
		if opt.ColdStart < 0 || opt.IdleLinger < 0 {
			return nil, fmt.Errorf("serve: negative ColdStart/IdleLinger")
		}
	} else if opt.MaxWorkers < 0 {
		return nil, fmt.Errorf("serve: negative MaxWorkers %d", opt.MaxWorkers)
	} else if opt.Prewarm || opt.MinWorkers != 0 || opt.ColdStart != 0 || opt.IdleLinger != 0 {
		return nil, fmt.Errorf("serve: elastic options need MaxWorkers > 0")
	}
	if opt.HedgeFactor != 0 && opt.HedgeFactor < 1 {
		// A sub-1 factor would hedge before the expected service time has
		// even elapsed — every request would fork.
		return nil, fmt.Errorf("serve: HedgeFactor %g must be 0 (disabled) or >= 1", opt.HedgeFactor)
	}
	e := &Engine{
		opt:     opt,
		tel:     opt.Telemetry,
		pools:   make(map[string]*pool, len(runners)),
		obs:     metrics.NewObservatory(opt.EstimateWindow, opt.EstimateWarmup),
		waitObs: metrics.NewObservatory(opt.EstimateWindow, opt.EstimateWarmup),
		latches: make(map[[2]string]*metrics.Latch),
		start:   time.Now(),
	}
	e.wfMakespans = metrics.NewDigest(opt.EstimateWindow)
	var dscsStores []*objstore.Store
	for name, r := range runners {
		class := classFor(r.Platform)
		poolWorkers := opt.Workers
		if elastic {
			poolWorkers = opt.MaxWorkers
		}
		core, err := NewPoolCore(poolWorkers, opt.QueueDepth, class, opt.Policy)
		if err != nil {
			return nil, err
		}
		p := &pool{name: name, runner: r, class: class, core: core, timerAt: -1}
		p.cond = sync.NewCond(&p.mu)
		if elastic {
			lc, err := NewLifecycle(LifecycleConfig{
				Min: opt.MinWorkers, Max: opt.MaxWorkers,
				ColdStart: opt.ColdStart, IdleLinger: opt.IdleLinger,
			}, opt.MinWorkers, e.now())
			if err != nil {
				return nil, err
			}
			if err := core.AttachLifecycle(lc, e.now()); err != nil {
				return nil, err
			}
			mode := scale.ModeReactive
			if opt.Prewarm {
				mode = scale.ModePredictive
			}
			p.autoscaler, err = scale.New(scale.Config{
				Mode: mode, Min: opt.MinWorkers, Max: opt.MaxWorkers,
				ColdStart: opt.ColdStart, IdleLinger: opt.IdleLinger,
				Window: opt.EstimateWindow,
			}, name)
			if err != nil {
				return nil, err
			}
		}
		if shards := ingressShards(opt.IngressShards); shards > 0 {
			p.ingress = newIngress(shards, opt.QueueDepth)
		}
		p.gDepth = e.tel.GaugeHandle("serve_queue_depth{platform=" + name + "}")
		p.gBatchOcc = e.tel.GaugeHandle("serve_batch_occupancy{platform=" + name + "}")
		delay := "{platform=" + name + ",class=" + class.String() + "}"
		p.gDelayP50 = e.tel.GaugeHandle("serve_queue_delay_p50" + delay)
		p.gDelayP95 = e.tel.GaugeHandle("serve_queue_delay_p95" + delay)
		p.gDelayP99 = e.tel.GaugeHandle("serve_queue_delay_p99" + delay)
		p.cDropped = e.tel.CounterHandle("serve_dropped_total{platform=" + name + "}")
		p.cFormed = e.tel.CounterHandle("serve_batch_formed_total{platform=" + name + "}")
		e.pools[name] = p
		if class == sched.ClassDSCS && r.Store != nil {
			dscsStores = append(dscsStores, r.Store)
		}
		// serve_workers tracks live warm capacity through a handle — it
		// refreshes on every lifecycle transition instead of being set
		// once at construction (on a fixed pool it is simply constant).
		p.gWorkers = e.tel.GaugeHandle("serve_workers{platform=" + name + "}")
		p.gWorkers.Set(float64(core.Workers()))
		if lc := core.Lifecycle(); lc != nil {
			p.gWarm = e.tel.GaugeHandle("serve_workers_warm{platform=" + name + "}")
			p.gCold = e.tel.GaugeHandle("serve_workers_cold{platform=" + name + "}")
			p.gWarming = e.tel.GaugeHandle("serve_workers_warming{platform=" + name + "}")
			p.cColdSt = e.tel.CounterHandle("serve_cold_starts_total{platform=" + name + "}")
			p.gWarm.Set(float64(lc.Warm()))
			p.gCold.Set(float64(lc.Cold()))
			p.gWarming.Set(float64(lc.Warming()))
			e.tel.Inc("serve_cold_starts_total", 0)
		}
		// Queue-delay gauges are registered up front so /metrics shows the
		// wait observatory live before the first dispatch.
		for _, q := range []string{"p50", "p95", "p99"} {
			e.tel.Set("serve_queue_delay_"+q+"{platform="+name+",class="+class.String()+"}", 0)
		}
	}
	for _, p := range e.pools {
		if p.class == sched.ClassCPU {
			e.spillCPU = append(e.spillCPU, p)
		} else {
			e.dscsPools = append(e.dscsPools, p)
		}
	}
	sort.Slice(e.spillCPU, func(i, j int) bool { return e.spillCPU[i].name < e.spillCPU[j].name })
	sort.Slice(e.dscsPools, func(i, j int) bool { return e.dscsPools[i].name < e.dscsPools[j].name })
	if opt.SpilloverThreshold > 0 || opt.AdaptiveBalance {
		if opt.SpilloverTo != "" {
			t, ok := e.pools[opt.SpilloverTo]
			if !ok {
				return nil, fmt.Errorf("serve: unknown spillover target %q", opt.SpilloverTo)
			}
			if t.class != sched.ClassCPU {
				return nil, fmt.Errorf("serve: spillover target %q is not a CPU-class pool", opt.SpilloverTo)
			}
		}
		if opt.SpilloverThreshold > 0 && len(e.spillCPU) == 0 {
			// A static threshold with nowhere to spill is a configuration
			// error; adaptive balance simply never spills on such a lineup
			// (it can still steal between same-class pools).
			return nil, fmt.Errorf("serve: spillover enabled with no CPU-class pool")
		}
		// Register the counters up front so /metrics shows the feature is
		// armed even before the first spill, and pre-resolve a handle for
		// every directed (DSCS pool → CPU pool) pair the spill path can
		// take, so enqueue never builds a label per spilled request.
		e.tel.Inc("serve_spillover_total", 0)
		for _, p := range e.dscsPools {
			p.cSpillTo = make(map[string]sched.CounterHandle, len(e.spillCPU))
			for _, q := range e.spillCPU {
				p.cSpillTo[q.name] = e.tel.CounterHandle("serve_spillover_total{from=" + p.name + ",to=" + q.name + "}")
			}
		}
	}
	if opt.GlobalBatch && opt.MaxBatch > 1 {
		for _, p := range e.pools {
			f := NewBatchFormer(opt.MaxBatch, opt.BatchLinger, opt.BatchSLO, p.class)
			if opt.AdaptiveEstimates {
				// The former prices SLO slack with this pool's observed
				// p95 once the digest warms up; the task's static
				// estimate stays the cold-start prior.
				poolName := p.name
				f.SetEstimator(func(payload string, static time.Duration) time.Duration {
					return e.obs.ServiceQuantile(payload, poolName, static, 0.95)
				})
			}
			p.core.AttachFormer(f)
		}
		e.tel.Inc("serve_batch_formed_total", 0)
	}
	if opt.StealThreshold > 0 || opt.AdaptiveBalance {
		// Any pool can steal from any other (dead-pool rescue crosses
		// classes), so every directed pair gets a handle up front.
		e.tel.Inc("serve_steal_total", 0)
		for _, p := range e.pools {
			p.cStealFrom = make(map[string]sched.CounterHandle, len(e.pools)-1)
			for _, d := range e.pools {
				if d == p {
					continue
				}
				p.cStealFrom[d.name] = e.tel.CounterHandle("serve_steal_total{from=" + d.name + ",to=" + p.name + "}")
			}
		}
	}
	e.drives = newDriveSet(dscsStores)
	for _, id := range e.drives.ids {
		e.driveBusy = append(e.driveBusy, e.tel.GaugeHandle("serve_drive_busy{drive="+id+"}"))
		e.driveAcq = append(e.driveAcq, e.tel.CounterHandle("serve_drive_acquired_total{drive="+id+"}"))
		e.tel.Set("serve_drive_busy{drive="+id+"}", 0)
	}
	e.cSubmitted = e.tel.CounterHandle("serve_submitted_total")
	e.cCompleted = e.tel.CounterHandle("serve_completed_total")
	e.cBatches = e.tel.CounterHandle("serve_batches_total")
	e.cBatchedReqs = e.tel.CounterHandle("serve_batched_requests_total")
	e.cWaitMS = e.tel.CounterHandle("serve_wait_ms_total")
	e.cDroppedAll = e.tel.CounterHandle("serve_dropped_total")
	e.cFormedAll = e.tel.CounterHandle("serve_batch_formed_total")
	e.cStealAll = e.tel.CounterHandle("serve_steal_total")
	e.cSpillAll = e.tel.CounterHandle("serve_spillover_total")
	e.cDriveWait = e.tel.CounterHandle("serve_drive_contention_total")
	e.cColdAll = e.tel.CounterHandle("serve_cold_starts_total")
	e.cFaults = e.tel.CounterHandle("serve_faults_total")
	e.cRequeues = e.tel.CounterHandle("serve_requeues_total")
	e.cHedgesFired = e.tel.CounterHandle("serve_hedges_fired_total")
	e.cHedgesWon = e.tel.CounterHandle("serve_hedges_won_total")
	if len(opt.Faults) > 0 || opt.HedgeFactor >= 1 {
		// Register up front so /metrics shows the failure machinery is
		// armed before the first fault fires or hedge forks.
		e.tel.Inc("serve_faults_total", 0)
		e.tel.Inc("serve_requeues_total", 0)
		e.tel.Inc("serve_hedges_fired_total", 0)
		e.tel.Inc("serve_hedges_won_total", 0)
	}
	e.exec = opt.Execute
	if e.exec == nil {
		e.exec = func(r *faas.Runner, b *workload.Benchmark, o faas.Options) (faas.Result, error) {
			return r.Invoke(b, o)
		}
	}
	if err := e.validateFaults(opt.Faults); err != nil {
		return nil, err
	}
	for _, p := range e.pools {
		// With the elastic lifecycle every slot gets a goroutine up front;
		// how many may dispatch at once is the lifecycle's warm count, so
		// suspended capacity is a parked goroutine, not a missing one.
		n := opt.Workers
		if elastic {
			n = opt.MaxWorkers
		}
		for i := 0; i < n; i++ {
			e.wg.Add(1)
			go e.worker(p)
		}
	}
	// Arm the fault script last: an injection must never observe a
	// half-constructed engine.
	for _, ev := range opt.Faults {
		ev := ev
		e.faultTimers = append(e.faultTimers,
			time.AfterFunc(ev.At, func() { e.applyFault(ev) }))
	}
	return e, nil
}

// ingressShards resolves the Options.IngressShards spelling: 0 defaults to
// GOMAXPROCS, negative disables the sharded ingress.
func ingressShards(n int) int {
	if n < 0 {
		return 0
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// classFor maps a platform to its scheduling class: the in-storage DSA pool
// is the scarce accelerated capacity the policies steer work toward.
func classFor(c platform.Compute) sched.InstanceClass {
	if c.Class() == platform.InStorageDSA {
		return sched.ClassDSCS
	}
	return sched.ClassCPU
}

// Telemetry returns the engine's metric registry.
func (e *Engine) Telemetry() *sched.Telemetry { return e.tel }

// now is the engine's clock on the same basis as HybridTask.Arrived; the
// scheduling core and batch windows are clock-free and take it as input.
func (e *Engine) now() time.Duration { return time.Since(e.start) }

// Platforms lists the pools, sorted.
func (e *Engine) Platforms() []string {
	names := make([]string, 0, len(e.pools))
	for n := range e.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Has reports whether a platform pool exists.
func (e *Engine) Has(platformName string) bool {
	_, ok := e.pools[platformName]
	return ok
}

// QueueLen reports one platform's queue occupancy (0 for unknown names).
// Staged ingress entries drain first, so the reader sees the same depth a
// single-queue engine would.
func (e *Engine) QueueLen(platformName string) int {
	p, ok := e.pools[platformName]
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e.drainLocked(p)
	return p.core.QueueLen()
}

// Dropped totals admission rejections across pools: the cores' own counts
// plus offers bounced at the ingress bound.
func (e *Engine) Dropped() int {
	total := 0
	for _, p := range e.pools {
		p.mu.Lock()
		total += p.core.Dropped()
		p.mu.Unlock()
		if p.ingress != nil {
			total += p.ingress.droppedCount()
		}
	}
	return total
}

// Conservation checks every pool's bookkeeping invariant (staged work
// drains first — it is not yet the core's to account).
func (e *Engine) Conservation() error {
	for _, p := range e.pools {
		p.mu.Lock()
		e.drainLocked(p)
		err := p.core.Conservation()
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%s pool: %w", p.name, err)
		}
	}
	return nil
}

// reqBatch is the model batch one request asks for.
func reqBatch(o faas.Options) int {
	if o.Batch < 1 {
		return 1
	}
	return o.Batch
}

// coalescable reports whether two requests may share one execution: same
// cold-start behavior, same network quantile, same chain shape. The
// benchmark match is checked against the queue task's payload.
func coalescable(a, b faas.Options) bool {
	return a.Cold == b.Cold && a.Quantile == b.Quantile &&
		a.ExtraAccelFuncs == b.ExtraAccelFuncs
}

// spillTarget picks the CPU-class pool an over-threshold DSCS submission
// lands on: the configured SpilloverTo pool, or the least-queued CPU pool
// (ties broken by name).
func (e *Engine) spillTarget() *pool {
	if e.opt.SpilloverTo != "" {
		if t := e.pools[e.opt.SpilloverTo]; e.poolHealthy(t) {
			return t
		}
		// The named target is down; fall through to the least-queued scan
		// rather than spill into a pool that cannot dispatch.
	}
	var best *pool
	bestDepth := 0
	for _, c := range e.spillCPU {
		if !e.poolHealthy(c) {
			continue
		}
		depth := e.poolDepth(c)
		if best == nil || depth < bestDepth {
			best, bestDepth = c, depth
		}
	}
	return best
}

// syncDepth refreshes a pool's queue-depth gauge and, with the sharded
// ingress, the queued mirror its admission bound reads. Callers hold p.mu;
// every core mutation routes through here so the two views cannot drift.
func (e *Engine) syncDepth(p *pool) {
	n := p.core.QueueLen()
	if p.ingress != nil {
		p.ingress.syncQueued(n)
	}
	p.gDepth.Set(float64(n))
}

// scaleDecideInterval rate-limits autoscale decisions per pool: the
// digest quantile reads behind Desired are not per-dispatch work. A
// starved pool (backlog with zero free capacity) bypasses the limit —
// that is the one state where waiting a millisecond to scale costs
// latency for certain.
const scaleDecideInterval = time.Millisecond

// advanceElasticLocked drives a pool's lifecycle to the present: warming
// slots come ready, expired lingers suspend, and (rate-limited) the
// autoscaler's desired capacity is recomputed and applied. It refreshes
// the worker gauges and re-arms the lifecycle timer, and reports whether
// warm capacity changed — the caller broadcasts then, so parked workers
// re-try dispatch against the new capacity. Callers hold p.mu; a fixed
// pool is a no-op.
func (e *Engine) advanceElasticLocked(p *pool) bool {
	lc := p.core.Lifecycle()
	if lc == nil {
		return false
	}
	now := e.now()
	changed := p.core.AdvanceLifecycle(now)
	if a := p.autoscaler; a != nil && !p.closed && p.core.Healthy() {
		starved := p.core.QueueLen() > 0 && p.core.Busy() >= p.core.Workers()
		if starved || now-p.scaleAt >= scaleDecideInterval {
			p.scaleAt = now
			var waitP95 time.Duration
			if dg := e.waitDigestOf(p); dg != nil && dg.Count() >= e.waitObs.Warmup() {
				waitP95 = dg.Quantile(WaitQuantile)
			}
			desired := a.Desired(now, p.core.Busy(), p.core.QueueLen(), waitP95)
			if desired != lc.Desired() && p.core.ScaleTo(desired, now) {
				changed = true
			}
		}
	}
	e.syncWorkersLocked(p)
	return changed
}

// syncWorkersLocked publishes a pool's live capacity — serve_workers is
// the warm count, never the construction-time constant — plus the
// warm/cold/warming breakdown and any newly paid cold starts, then
// re-arms the lifecycle timer. Callers hold p.mu; fixed pools are a
// no-op (their construction-time gauge stays exact).
func (e *Engine) syncWorkersLocked(p *pool) {
	lc := p.core.Lifecycle()
	if lc == nil {
		return
	}
	p.gWorkers.Set(float64(lc.Warm()))
	p.gWarm.Set(float64(lc.Warm()))
	p.gCold.Set(float64(lc.Cold()))
	p.gWarming.Set(float64(lc.Warming()))
	if cs := lc.ColdStarts(); cs > p.coldStartsPub {
		d := float64(cs - p.coldStartsPub)
		p.coldStartsPub = cs
		p.cColdSt.Inc(d)
		e.cColdAll.Inc(d)
	}
	e.armLifecycleLocked(p)
}

// armLifecycleLocked points the pool's timer at the lifecycle's next
// self-transition. The state machine is clock-free; this timer is the
// live engine's half of the bargain — the sims schedule virtual events
// at the same instants. Callers hold p.mu.
func (e *Engine) armLifecycleLocked(p *pool) {
	evt, ok := p.core.Lifecycle().NextEvent()
	if !ok || p.closed {
		if p.lifeTimer != nil {
			p.lifeTimer.Stop()
		}
		p.timerAt = -1
		return
	}
	if evt == p.timerAt {
		return
	}
	p.timerAt = evt
	d := evt - e.now()
	if d < 0 {
		d = 0
	}
	if p.lifeTimer == nil {
		p.lifeTimer = time.AfterFunc(d, func() { e.lifecycleTick(p) })
	} else {
		p.lifeTimer.Reset(d)
	}
}

// lifecycleTick is the timer callback behind armLifecycleLocked: a
// warming slot just came ready or a linger just expired. Capacity
// changes wake every parked worker — freshly warmed slots have a
// backlog to drain.
func (e *Engine) lifecycleTick(p *pool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.timerAt = -1
	e.drainLocked(p)
	changed := e.advanceElasticLocked(p)
	p.mu.Unlock()
	if changed {
		p.cond.Broadcast()
	}
}

// poolDepth reads a pool's total backlog — staged plus queued with the
// sharded ingress (two atomic loads, no lock), or the locked core length on
// the direct path. The spill and steal scans use it so rebalancing
// decisions never serialize on the pool mutexes they are routing around.
func (e *Engine) poolDepth(p *pool) int {
	if p.ingress != nil {
		return p.ingress.pending()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.QueueLen()
}

// deliver resolves one admitted request: hands the outcome to the blocked
// submitter, or — fire-and-forget — recycles the request directly. The
// inflight count drops here and only here, so Quiesce sees every admitted
// request exactly once.
func (e *Engine) deliver(r *request, out outcome) {
	fire := r.fire
	e.inflight.Add(-1)
	if fire {
		putRequest(r)
		return
	}
	r.done <- out
}

// drainLocked moves every staged ingress entry into the pool core, in
// admission order. Callers hold p.mu. A core that fills mid-drain (stolen-in
// work can race the staging queue) rejects the overflow late, with the same
// ErrQueueFull the bound would have given at offer time.
//
//dscslint:hotpath
func (e *Engine) drainLocked(p *pool) {
	if p.ingress == nil || p.ingress.staged.Load() == 0 {
		return
	}
	entries := p.ingress.drainInto(p.scratch)
	for i := range entries {
		en := &entries[i]
		if !p.core.Submit(en.task) {
			p.ingress.dropped.Add(1)
			e.cDroppedAll.Inc(1)
			p.cDropped.Inc(1)
			e.deliver(en.req, outcome{err: ErrQueueFull})
			continue
		}
		if f := p.core.Former(); f != nil {
			f.Observe(en.task, reqBatch(en.req.opt))
		}
	}
	clear(entries)
	p.scratch = entries[:0]
	e.syncDepth(p)
}

// admit submits the task (carrying its request in Ref) to one pool's
// queue: ErrClosed after shutdown, ErrQueueFull at the admission bound.
// bounceIfFull marks a spill attempt: a full target then reports
// ErrQueueFull without counting a drop against its queue — the request is
// not lost, it falls back to the original pool.
//
// With the sharded ingress the task stages on the caller's shard and the
// pool lock is only tried, never waited on: an uncontended admit drains
// synchronously (sequential callers observe exactly the direct path's
// behavior), a contended one leaves the entry for whoever holds the lock —
// the submit path's whole win is that waiting submitters queue on their
// shard, not on the pool mutex.
func (e *Engine) admit(p *pool, task sched.HybridTask, req *request, bounceIfFull bool) error {
	if p.ingress == nil || bounceIfFull {
		// Spill attempts take the locked path: the bounce contract needs a
		// synchronous answer from the real queue (a late ingress reject
		// would lose the fallback to the original pool), and spills are off
		// the common path by construction.
		return e.admitDirect(p, task, req, bounceIfFull)
	}
	if err := p.ingress.offer(metrics.ShardIndex(len(p.ingress.shards)),
		ingressEntry{task: task, req: req}, bounceIfFull); err != nil {
		return err
	}
	// Only reach for the pool lock when a worker is parked and needs the
	// backlog handed over. Active workers drain the shards at the top of
	// their loop, so the common case — workers busy, submitters streaming —
	// is a shard append plus two atomics, no pool-lock traffic at all.
	// The parked/staged handshake is store-buffer safe: offer bumped
	// staged before this load, the parking worker bumps parked before
	// re-checking staged, and Go atomics are sequentially consistent, so
	// at least one side sees the other.
	if p.parked.Load() > 0 {
		if p.mu.TryLock() {
			e.drainLocked(p)
			p.mu.Unlock()
		} else {
			// The lock holder may already be past its pre-park backlog
			// check. An empty lock/unlock fences against that window: it
			// returns only once the parking worker has released the mutex
			// inside cond.Wait, where the Signal is guaranteed to land.
			p.mu.Lock()
			//lint:ignore SA2001 empty critical section is the wakeup fence
			p.mu.Unlock()
		}
		p.cond.Signal()
	}
	e.wakePeers(p, p.ingress.pending())
	return nil
}

// admitDirect is the pre-shard admit: everything under the pool lock.
// Earlier-staged ingress entries drain first so admission order holds.
func (e *Engine) admitDirect(p *pool, task sched.HybridTask, req *request, bounceIfFull bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	e.drainLocked(p)
	if bounceIfFull && p.core.QueueFull() {
		return ErrQueueFull
	}
	if !p.core.Submit(task) {
		e.syncDepth(p)
		return ErrQueueFull
	}
	if f := p.core.Former(); f != nil {
		f.Observe(task, reqBatch(req.opt))
	}
	e.syncDepth(p)
	p.cond.Signal()
	e.wakePeers(p, p.core.QueueLen())
	return nil
}

// wakePeers is the cross-pool half of the admit-time wakeups. Pull-based
// rebalancing is driven by the thief, so a worker parked on its own empty
// queue must hear the peer backlog deepen. (Signaling a Cond without its
// lock is explicitly allowed.) The static threshold wakes the other class
// past the depth count; adaptive balance wakes every peer via the shared
// latch-precondition gate.
func (e *Engine) wakePeers(p *pool, depth int) {
	if depth > 0 && p.deadBit.Load() {
		// Work admitted to a dead pool drains only by rescue: neither the
		// static depth gate nor the warmed-digest gate below can fire for
		// it (its digest was invalidated at death), so wake every peer
		// directly — a parked worker elsewhere is this backlog's only exit.
		for _, d := range e.pools {
			if d != p {
				d.cond.Signal()
			}
		}
		return
	}
	if e.opt.AdaptiveBalance {
		e.signalPeersForBalance(p, depth > 0)
	} else if e.opt.StealThreshold > 0 && depth > e.opt.StealThreshold {
		for _, d := range e.pools {
			if d.class != p.class {
				d.cond.Signal()
			}
		}
	}
}

// signalPeersForBalance wakes every parked peer worker to re-check the
// wait-gap latch against p — the adaptive analogue of the static
// threshold's cross-class signal, shared by the submit-time (admit) and
// dispatch-time (recordWaits) call sites so the two wakeup policies
// cannot drift apart. The gate is exactly the latch's own arming
// precondition: p has a backlog, its wait digest is warmed, and the
// recent window actually holds waits — a zero windowed p95 can never arm
// Latch.Above, so waking workers to lock-scan every pool then would be
// pure overhead on the request path.
func (e *Engine) signalPeersForBalance(p *pool, backlog bool) {
	if !backlog || !e.waitWarmed(p) {
		return
	}
	if e.waitDigestOf(p).Quantile(WaitQuantile) <= 0 {
		return
	}
	for _, d := range e.pools {
		if d != p {
			d.cond.Signal()
		}
	}
}

// Submit enqueues one invocation and blocks until a worker serves it (or
// admission control rejects it with ErrQueueFull). Safe for concurrent use
// from any number of goroutines — the request path has no global lock.
//
// With SpilloverThreshold set, a submission aimed at a DSCS-class pool
// whose queue has reached the threshold is rerouted to a CPU-class pool
// (recorded as serve_spillover_total{from,to}); the returned
// Invocation.Platform names the pool that actually served it. A full spill
// target falls back to the original pool, which may still have room — the
// threshold sits well below the admission bound.
//
//dscslint:hotpath
func (e *Engine) Submit(platformName string, b *workload.Benchmark, opt faas.Options) (Invocation, error) {
	req, target, err := e.enqueue(platformName, b, opt, false)
	if err != nil {
		return Invocation{}, err
	}
	out := <-req.done
	putRequest(req)
	if out.err != nil {
		return Invocation{}, out.err
	}
	served := target
	if out.platform != "" {
		// A steal can move the request after admission; report the pool
		// that actually served it.
		served = out.platform
	}
	return Invocation{
		Result:        out.res,
		Platform:      served,
		Queued:        out.queued,
		BatchRequests: out.batchRequests,
		BatchSize:     out.batchSize,
	}, nil
}

// SubmitAsync enqueues one invocation fire-and-forget: it returns as soon
// as admission control accepts (ErrQueueFull / ErrClosed reject
// synchronously, exactly like Submit) and the execution's outcome is
// dropped on completion. Quiesce waits for the in-flight count to drain.
// This is the throughput spelling of the submit path — callers measuring
// or driving sustained load pay the admission cost only, not a reply
// channel round-trip per request.
//
//dscslint:hotpath
func (e *Engine) SubmitAsync(platformName string, b *workload.Benchmark, opt faas.Options) error {
	_, _, err := e.enqueue(platformName, b, opt, true)
	return err
}

// InFlight counts admitted requests whose outcome has not yet been
// delivered.
func (e *Engine) InFlight() int { return int(e.inflight.Load()) }

// Quiesce blocks until every admitted invocation has been delivered or the
// timeout elapses, reporting whether the engine drained. Fire-and-forget
// callers use it as their completion barrier.
func (e *Engine) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for e.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Microsecond)
	}
	return true
}

// enqueue is the shared admission path behind Submit and SubmitAsync:
// spill decision, policy pricing, task construction, admit with spill
// fallback, submit-side telemetry. It returns the admitted request and the
// pool that accepted it.
func (e *Engine) enqueue(platformName string, b *workload.Benchmark, opt faas.Options, fire bool) (*request, string, error) {
	p, ok := e.pools[platformName]
	if !ok {
		//dscslint:allow hotpathcheck cold branch: caller error, never taken by well-formed traffic
		return nil, "", fmt.Errorf("serve: unknown platform %q", platformName)
	}
	if b == nil {
		//dscslint:allow hotpathcheck cold branch: caller error, never taken by well-formed traffic
		return nil, "", fmt.Errorf("serve: nil benchmark")
	}
	target, spilled := p, false
	if p.class == sched.ClassDSCS {
		switch {
		case !e.poolHealthy(p) && (e.opt.AdaptiveBalance || e.opt.SpilloverThreshold > 0):
			// The home pool is dead: with rebalancing armed, reroute
			// unconditionally — no depth or wait gap needed, anything
			// admitted here waits for recovery or rescue. (Without
			// rebalancing the submission queues on the dead pool, the
			// degraded mode an operator chose by running isolated pools.)
			if t := e.spillTarget(); t != nil && t != p {
				target, spilled = t, true
			}
		case e.opt.AdaptiveBalance:
			// Wait-keyed spillover: reroute once this pool's adopted
			// wait-p95 has latched above the spill target's — queue delay,
			// not queue depth, is what the submission is about to pay. An
			// empty queue never spills: there is no backlog to route
			// around, and noise-level warmed waits beside an idle peer
			// must not reroute work that would dispatch immediately.
			if e.poolDepth(p) > 0 {
				if t := e.adaptiveSpillTarget(); t != nil && t != p && e.waitGapToPool(p, t) {
					target, spilled = t, true
				}
			}
		case e.opt.SpilloverThreshold > 0:
			if e.poolDepth(p) >= e.opt.SpilloverThreshold {
				if t := e.spillTarget(); t != nil && t != p {
					target, spilled = t, true
				}
			}
		}
	}
	cpuSvc, dscsSvc, accel := e.estimate(b)
	if e.opt.AdaptiveEstimates {
		// Policy pricing blends the static prior toward the observed p50
		// of each class's best-observed pool, so SJF/criticality/DAG picks
		// order work by real service times instead of the offline model.
		cpuSvc = e.observedService(b.Slug, sched.ClassCPU, cpuSvc)
		dscsSvc = e.observedService(b.Slug, sched.ClassDSCS, dscsSvc)
	}
	now := time.Now() // one clock read serves both stamps below
	req := getRequest()
	req.bench, req.opt, req.enq, req.fire = b, opt, now, fire
	task := sched.HybridTask{
		ID:          int(e.nextID.Add(1)),
		Arrived:     now.Sub(e.start),
		Payload:     b.Slug,
		CPUService:  cpuSvc,
		DSCSService: dscsSvc,
		AccelFuncs:  accel,
		Ref:         req,
	}

	e.inflight.Add(1)
	err := e.admit(target, task, req, spilled)
	if spilled && errors.Is(err, ErrQueueFull) {
		// The spill target is full; the original DSCS queue may still
		// have room (its bound is deeper than the spill threshold).
		target, spilled = p, false
		err = e.admit(target, task, req, false)
	}
	if err != nil {
		e.inflight.Add(-1)
		putRequest(req)
		if errors.Is(err, ErrQueueFull) {
			e.cDroppedAll.Inc(1)
			target.cDropped.Inc(1)
		}
		return nil, "", err
	}
	if spilled {
		e.cSpillAll.Inc(1)
		p.cSpillTo[target.name].Inc(1)
	}
	if target.autoscaler != nil {
		// Arrival-rate digests feed the predictive pre-warm floor; the
		// autoscaler serializes internally, off the pool lock.
		target.autoscaler.ObserveArrival(b.Slug, task.Arrived)
	}
	e.cSubmitted.Inc(1)
	return req, target.name, nil
}

// batchState is one execution's gathered requests: the dispatched lead
// plus every compatible same-benchmark request coalesced so far, with the
// remaining MaxBatch budget for further gathering during a linger window.
type batchState struct {
	lead    *request
	reqs    []*request
	payload string
	batch   int // combined model batch
	budget  int // remaining model-batch budget toward MaxBatch
	// tasks mirrors reqs with the dispatched queue tasks themselves: the
	// requeue path needs the original HybridTasks (arrival stamps, pricing)
	// to return in-flight work to the queue when the pool dies mid-batch.
	tasks []sched.HybridTask
	// waits holds the batch's clamped queue delays, computed once at
	// dispatch (recordWaits) and reused by the delivery loop — the digest
	// staging and the per-request outcomes read the same values.
	waits []time.Duration
}

// batchPool recycles batchState structs and their request slices across
// executions; putBatch clears the request pointers so a recycled batch
// never pins served requests for the GC.
var batchPool = sync.Pool{New: func() any {
	return &batchState{reqs: make([]*request, 0, DefaultMaxBatch)}
}}

func putBatch(bs *batchState) {
	clear(bs.reqs)
	bs.reqs = bs.reqs[:0]
	clear(bs.tasks)
	bs.tasks = bs.tasks[:0]
	bs.waits = bs.waits[:0]
	bs.lead, bs.payload, bs.batch, bs.budget = nil, "", 0, 0
	batchPool.Put(bs)
}

// newBatch resolves a dispatched task to its request (carried in the
// task's Ref — no side-table lookup) and does the initial coalescing pass
// over what already queued. Callers hold p.mu.
//
//dscslint:hotpath
func (e *Engine) newBatch(p *pool, task sched.HybridTask) *batchState {
	lead := task.Ref.(*request)
	bs := batchPool.Get().(*batchState)
	bs.lead, bs.payload = lead, task.Payload
	bs.reqs = append(bs.reqs[:0], lead)
	bs.tasks = append(bs.tasks[:0], task)
	bs.batch = reqBatch(lead.opt)
	bs.budget = e.opt.MaxBatch - bs.batch
	e.gather(p, bs)
	return bs
}

// gather coalesces compatible same-benchmark queued requests into the
// batch, up to the remaining budget, and refreshes the queue-depth gauge
// (Coalesce removes queued tasks just like Dispatch does). It returns how
// many requests were taken. Callers hold p.mu.
//
//dscslint:hotpath
func (e *Engine) gather(p *pool, bs *batchState) int {
	if bs.budget <= 0 {
		return 0
	}
	budget := bs.budget
	taken := p.core.Coalesce(budget, func(t sched.HybridTask) bool {
		if t.Payload != bs.payload {
			return false
		}
		r := t.Ref.(*request)
		if !coalescable(r.opt, bs.lead.opt) {
			return false
		}
		if reqBatch(r.opt) > budget {
			return false
		}
		budget -= reqBatch(r.opt)
		return true
	})
	for _, t := range taken {
		r := t.Ref.(*request)
		bs.reqs = append(bs.reqs, r)
		bs.tasks = append(bs.tasks, t)
		bs.batch += reqBatch(r.opt)
	}
	bs.budget = budget
	if len(taken) > 0 {
		e.syncDepth(p)
	}
	return len(taken)
}

// collectBatch is newBatch flattened to (requests, combined batch) — kept
// as the deterministic entry point the batching tests drive.
func (e *Engine) collectBatch(p *pool, task sched.HybridTask) ([]*request, int) {
	bs := e.newBatch(p, task)
	return bs.reqs, bs.batch
}

// lingerSlice is the wall-clock granularity of the engine's linger loop:
// the worker re-checks the queue for late same-benchmark arrivals at this
// period until the BatchWindow closes.
func lingerSlice(linger time.Duration) time.Duration {
	slice := linger / 8
	if slice < 100*time.Microsecond {
		slice = 100 * time.Microsecond
	}
	if slice > 2*time.Millisecond {
		slice = 2 * time.Millisecond
	}
	return slice
}

// waitDigestOf reads a pool's queue-delay digest (nil before its first
// dispatch).
func (e *Engine) waitDigestOf(p *pool) *metrics.Digest {
	return e.waitObs.Digest(p.name, p.class.String())
}

// pricedWait is what moved work would wait on a pool right now: its
// recorded wait-p95 — except that an idle pool (empty backlog, free
// worker) serves new work immediately and prices at zero, whatever its
// digest holds (its recorded waits may be history it imported rescuing
// the very donor asking). The MultiCore peerWait pricing, on engine pools.
//
// The health bit is checked before the idle fast path: a dead pool is the
// textbook "idle" — empty-looking queue, free workers — but work priced
// onto it waits for its recovery, not zero. Callers skip dead pools
// outright; the gate here keeps the zero-price shortcut from ever
// answering for one.
func (e *Engine) pricedWait(p *pool) time.Duration {
	p.mu.Lock()
	healthy := p.core.Healthy()
	staged := p.ingress != nil && p.ingress.staged.Load() > 0
	idle := healthy && !staged && p.core.QueueLen() == 0 && p.core.Busy() < p.core.Workers()
	p.mu.Unlock()
	if idle {
		return 0
	}
	if dg := e.waitDigestOf(p); dg != nil {
		return dg.Quantile(WaitQuantile)
	}
	return 0
}

// poolHealthy reads a pool's health bit — the engine-side spelling of
// MultiCore.Healthy for the spill/steal/hedge scans. It reads the lock-free
// mirror: rebalancing decisions must not serialize on the pool mutexes
// they are routing around (decision paths holding p.mu read the core
// directly).
func (e *Engine) poolHealthy(p *pool) bool {
	return !p.deadBit.Load()
}

// adaptiveSpillTarget picks the CPU-class pool a wait-keyed spill lands
// on: the configured SpilloverTo pool, or the peer with the lowest priced
// wait — mirroring MultiCore.BalanceTarget, where ranking by queue depth
// or raw digest p95 would let a shallow-but-slow (or rescue-contaminated)
// pool shadow a genuinely cheap one. Ties break by name: spillCPU is
// name-sorted and the strict < keeps the first.
func (e *Engine) adaptiveSpillTarget() *pool {
	if e.opt.SpilloverTo != "" {
		if t := e.pools[e.opt.SpilloverTo]; e.poolHealthy(t) {
			return t
		}
		// The named target is down; fall through to the scan rather than
		// spill into a pool that cannot dispatch.
	}
	var best *pool
	var bestWait time.Duration
	for _, c := range e.spillCPU {
		if !e.poolHealthy(c) {
			continue
		}
		if w := e.pricedWait(c); best == nil || w < bestWait {
			best, bestWait = c, w
		}
	}
	return best
}

// waitGapToPool is the engine's adaptive-balance trigger: whether donor's
// adopted wait-p95 has latched above what moved work would wait on peer
// (see waitGapLatched — the same decision MultiCore applies in the
// simulations). The balanceMu critical section is a map lookup plus one
// ratio comparison — nanoseconds, far below the pool mutexes already on
// this path.
func (e *Engine) waitGapToPool(donor, peer *pool) bool {
	if !e.poolHealthy(peer) {
		// Work never rebalances onto a dead pool, whatever the gap says.
		return false
	}
	peerWait := e.pricedWait(peer)
	e.balanceMu.Lock()
	defer e.balanceMu.Unlock()
	k := [2]string{donor.name, peer.name}
	latch := e.latches[k]
	if latch == nil {
		latch = &metrics.Latch{}
		e.latches[k] = latch
	}
	return waitGapLatched(e.waitDigestOf(donor), latch, peerWait, e.waitObs.Warmup())
}

// waitWarmed reports whether a pool's wait digest has enough observations
// for the balance latch to possibly trip — the cheap gate that keeps the
// adaptive wakeup signals from firing while no steal can trigger anyway.
func (e *Engine) waitWarmed(p *pool) bool {
	dg := e.waitDigestOf(p)
	return dg != nil && dg.Count() >= e.waitObs.Warmup()
}

// stealInto pulls queued work from a donor pool into p — the drain-time
// half of rebalancing, complementing submit-time spillover. With the
// static StealThreshold the donor is the deepest pool of the other class
// whose backlog exceeds the count; with AdaptiveBalance it is the deepest
// pool of any class (same-class platforms rebalance too) whose adopted
// wait-p95 gap over p has latched. The caller holds p.mu; stealInto
// releases it and retakes both pool locks in name order (the engine-wide
// lock order), so two pools stealing from each other cannot deadlock. It
// returns how many requests moved; p.mu is held again on return.
//
//dscslint:hotpath
func (e *Engine) stealInto(p *pool) int {
	if !p.core.Healthy() {
		// A dead thief cannot dispatch what it steals; rescued work would
		// just be buried in a second dead queue.
		return 0
	}
	p.mu.Unlock()
	var donor *pool
	if e.opt.AdaptiveBalance {
		deepest := 0
		for _, d := range e.pools {
			if d == p {
				continue
			}
			depth := e.poolDepth(d)
			if depth == 0 {
				continue
			}
			// A dead donor's backlog drains only by rescue — no latch or
			// wait gap required; its digest was invalidated at death and
			// could never trip one anyway.
			if e.poolHealthy(d) && !e.waitGapToPool(d, p) {
				continue
			}
			if depth > deepest || (depth == deepest && donor != nil && d.name < donor.name) {
				donor, deepest = d, depth
			}
		}
	} else {
		deepest := 0
		for _, d := range e.pools {
			if d == p {
				continue
			}
			alive := e.poolHealthy(d)
			if alive && d.class == p.class {
				// Live same-class pools rebalance only adaptively; a dead
				// pool's backlog is rescued regardless of class.
				continue
			}
			depth := e.poolDepth(d)
			if depth == 0 || (alive && depth <= e.opt.StealThreshold) {
				continue
			}
			if depth > deepest || (depth == deepest && donor != nil && d.name < donor.name) {
				donor, deepest = d, depth
			}
		}
	}
	if donor == nil {
		p.mu.Lock()
		return 0
	}
	first, second := p, donor
	if second.name < first.name {
		first, second = second, first
	}
	first.mu.Lock()
	second.mu.Lock()
	moved := 0
	// The donor's staged backlog is stealable too — it just hasn't crossed
	// into the core yet. Drain it (under both locks, safely ordered) so the
	// steal sees the donor's full depth.
	e.drainLocked(donor)
	// Re-check under both locks: the backlog may have drained, or the
	// engine may be closing, since the unlocked scan. (The adaptive latch
	// itself is not re-checked — it just tripped, and hysteresis means a
	// single completion cannot have released it.)
	floor := e.opt.StealThreshold
	if e.opt.AdaptiveBalance || !donor.core.Healthy() {
		floor = 0
	}
	if !p.closed && !donor.closed && p.core.Healthy() && donor.core.QueueLen() > floor {
		tasks := p.core.StealFrom(donor.core, e.opt.MaxBatch)
		for _, t := range tasks {
			// The request rides the task's Ref across the move; only the
			// donor's forming group needs fixing up.
			r := t.Ref.(*request)
			if f := donor.core.Former(); f != nil && reqBatch(r.opt) > 1 {
				// StealFrom shed one unit per task; shed the rest of
				// this request's model batch from the forming group.
				f.Shed(t.Payload, reqBatch(r.opt)-1)
			}
		}
		moved = len(tasks)
		if moved > 0 {
			// Sibling workers of the thief pool may be parked; the stolen
			// backlog is work for them too.
			p.cond.Broadcast()
			e.cStealAll.Inc(float64(moved))
			p.cStealFrom[donor.name].Inc(float64(moved))
			// A steal extracts queued tasks just like Coalesce does: both
			// pools' depth gauges (and ingress mirrors) must follow.
			e.syncDepth(donor)
			e.syncDepth(p)
		}
	}
	donor.mu.Unlock()
	return moved
}

// dispatch selects p's next task at now, honoring an attached batch
// former. Callers hold p.mu. When nothing dispatches, wait (valid when
// waitOK) is how long the worker should sleep before re-driving the core —
// a forming batch is filling and will come due. formed reports whether
// this dispatch released a formed group (as opposed to group-less work:
// post-close leftovers, stolen-in tasks, or the shutdown drain), so the
// serve_batch_formed_total counter matches BatchFormer.Formed and the
// simulation's Stats.Formed.
//
//dscslint:hotpath
func (e *Engine) dispatch(p *pool, now time.Duration) (task sched.HybridTask, ok bool, wait time.Duration, waitOK, formed bool) {
	f := p.core.Former()
	if f == nil || p.closed {
		// No former, or draining at shutdown: serve immediately, holding
		// nothing back.
		task, ok = p.core.Dispatch(now)
		return task, ok, 0, false, false
	}
	before := f.Formed()
	task, ok, wake, wakeOK := p.core.DispatchFormed(now)
	if ok || !wakeOK {
		return task, ok, 0, false, ok && f.Formed() > before
	}
	return sched.HybridTask{}, false, wake - now, true, false
}

// worker is one pool goroutine: dispatch via the shared core, coalesce a
// batch (lingering up to BatchLinger for it to fill toward MaxBatch, or
// waiting on the global former's queue-level batch), stealing from the
// other class's backlog when its own queue is empty, execute
// run-to-completion, deliver outcomes.
func (e *Engine) worker(p *pool) {
	defer e.wg.Done()
	p.mu.Lock()
	for {
		e.drainLocked(p)
		e.advanceElasticLocked(p)
		now := e.now()
		task, ok, wait, waitOK, formed := e.dispatch(p, now)
		if !ok {
			if waitOK {
				// A batch is forming; wake when it fills or comes due.
				p.mu.Unlock()
				if slice := lingerSlice(e.opt.BatchLinger); wait > slice {
					wait = slice
				}
				if wait < 50*time.Microsecond {
					wait = 50 * time.Microsecond
				}
				time.Sleep(wait)
				p.mu.Lock()
				continue
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			// A dead pool's worker parks straight away: its dispatch can
			// never succeed, stealing into it would bury rescued work, and
			// re-checking its (undrainable) backlog would spin this loop
			// without ever releasing p.mu — starving the very peers trying
			// to lock the pool and rescue that backlog. FailPool/RecoverPool
			// broadcast, so the park always wakes on a health transition.
			if p.core.Healthy() && (e.opt.StealThreshold > 0 || e.opt.AdaptiveBalance) {
				stole := e.stealInto(p)
				// Re-check before parking: stealInto dropped p.mu, so a
				// submission may have signaled into the gap and its wakeup
				// would otherwise be lost.
				if stole > 0 || p.core.QueueLen() > 0 || p.closed {
					continue
				}
			}
			// Park. The parked count is incremented before the staged
			// re-check: a submitter that just staged an entry either sees
			// parked > 0 (and fences a Signal through the mutex) or this
			// load sees its entry — the Dekker pairing that makes the
			// lock-free offer path wakeup-safe.
			p.parked.Add(1)
			if p.ingress != nil && p.ingress.staged.Load() > 0 {
				p.parked.Add(-1)
				continue
			}
			p.cond.Wait()
			p.parked.Add(-1)
			continue
		}
		bs := e.newBatch(p, task)
		// Queue delay ends at this dispatch: the linger window below holds
		// an already-assigned batch open (worker-side batching, not
		// queueing), and waiting for a physical drive further down is
		// execution contention. Recording either as wait would let a lone
		// lingered request read as linger-length queue delay — on a quiet
		// pool the gauges would converge on BatchLinger and the balance
		// latch would see congestion that is not there. (The simulation
		// records at core dispatch the same way.)
		dispatched := time.Now()
		if e.opt.BatchLinger > 0 && e.opt.MaxBatch > 1 && p.core.Former() == nil {
			// Deadline-aware batching: the same BatchWindow decision the
			// discrete-event simulation drives from its virtual clock,
			// here fed wall time and slept in slices.
			w := NewBatchWindow(now, e.opt.BatchLinger, e.opt.MaxBatch, bs.batch)
			for w.Open(e.now()) && !p.closed {
				p.mu.Unlock()
				time.Sleep(lingerSlice(e.opt.BatchLinger))
				p.mu.Lock()
				e.drainLocked(p)
				e.gather(p, bs)
				w.Size = bs.batch
			}
		}
		e.syncDepth(p)
		p.mu.Unlock()

		e.recordWaits(p, bs, dispatched)
		if e.opt.AdaptiveBalance {
			// This dispatch just updated the pool's wait digest — the
			// signal the balance latch reads. If a backlog remains, parked
			// peers must re-check it: with no further arrivals to signal
			// them, a freshly tripped latch would otherwise go unheard.
			p.mu.Lock()
			backlog := p.core.QueueLen() > 0
			p.mu.Unlock()
			e.signalPeersForBalance(p, backlog)
		}

		// DSCS-class executions occupy the physical drive holding their
		// input replica for the duration (run-to-completion, Section 5.3);
		// conventional I/O against a held drive pays the arbitration
		// penalty, and waiting here is drive contention. A request whose
		// input has no healthy DSCS replica falls back to conventional
		// execution inside the runner and occupies no drive.
		lead := bs.lead
		drive := -1
		if p.class == sched.ClassDSCS {
			if d, ok := p.runner.DriveFor(lead.bench, bs.batch); ok {
				var waited bool
				drive, waited = e.drives.acquireDrive(d)
				if waited {
					e.cDriveWait.Inc(1)
				}
				if drive >= 0 {
					e.driveBusy[drive].Set(1)
					e.driveAcq[drive].Inc(1)
				}
			}
		}

		opt := lead.opt
		opt.Batch = bs.batch
		res, err := e.execHedged(p, lead.bench, opt, bs.payload)

		if drive >= 0 {
			e.driveBusy[drive].Set(0)
			e.drives.release(drive)
		}

		p.mu.Lock()
		if !p.core.Healthy() && !p.closed {
			// The pool died while this batch was executing. The execution's
			// result is void — a killed worker delivers nothing — but the
			// requests are still owed exactly one delivery each, so the
			// batch's tasks return to the queue (in arrival order, ahead of
			// younger work) and stay in-flight until a surviving pool steals
			// them or this one recovers. Requeue frees the one worker slot
			// this batch held; the submission ledger never moves, so
			// Conservation still accounts each request exactly once.
			p.core.Requeue(bs.tasks)
			if f := p.core.Former(); f != nil {
				for i, t := range bs.tasks {
					f.Observe(t, reqBatch(bs.reqs[i].opt))
				}
			}
			e.syncDepth(p)
			p.mu.Unlock()
			e.cRequeues.Inc(float64(len(bs.tasks)))
			// The requeued backlog is rescue work: wake peers to steal it.
			for _, d := range e.pools {
				if d != p {
					d.cond.Signal()
				}
			}
			putBatch(bs)
			p.mu.Lock()
			continue
		}
		p.core.Complete(len(bs.reqs))
		p.mu.Unlock()
		if err == nil {
			e.observe(bs.payload, p.name, res.Total(), dispatched)
			if p.autoscaler != nil {
				// The predictive floor prices demand with observed
				// service times; completions are where they exist.
				p.autoscaler.ObserveService(bs.payload, res.Total())
			}
		}
		e.cBatches.Inc(1)
		e.cBatchedReqs.Inc(float64(len(bs.reqs)))
		p.gBatchOcc.Set(float64(bs.batch))
		e.cCompleted.Inc(float64(len(bs.reqs)))
		if formed {
			e.cFormedAll.Inc(1)
			p.cFormed.Inc(1)
		}
		// The waits were computed (and negative linger-window waits
		// clamped) at dispatch time in recordWaits; charge the counter
		// once for the whole batch and hand each request its own value.
		var waitMS float64
		for i, r := range bs.reqs {
			wait := bs.waits[i]
			waitMS += float64(wait) / float64(time.Millisecond)
			e.deliver(r, outcome{res: res, err: err, platform: p.name, queued: wait,
				batchRequests: len(bs.reqs), batchSize: bs.batch})
		}
		e.cWaitMS.Inc(waitMS)
		putBatch(bs)
		p.mu.Lock()
	}
}

// Close drains every queue, stops the workers, and fails any submission
// racing the shutdown. Idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		// Disarm the fault script first: a scripted kill must not race the
		// drain below (a timer mid-fire holds no pool lock yet, so the
		// closed checks in the fault path make any straggler a no-op).
		for _, t := range e.faultTimers {
			t.Stop()
		}
		for _, p := range e.pools {
			p.mu.Lock()
			p.closed = true
			if !p.core.Healthy() {
				// A drain outranks a fault: a dead pool's queue must still be
				// served (its tasks carry blocked submitters), so revive the
				// core — like Freeze below, shutdown wins every race.
				p.core.Recover(e.now())
				p.deadBit.Store(false)
			}
			if lc := p.core.Lifecycle(); lc != nil {
				// Drain semantics: queued work must still be served, so
				// suspension stops and warming finishes instantly — a
				// scaled-to-zero pool gets one slot back to empty its
				// queue rather than stranding requests behind cold
				// capacity.
				if p.lifeTimer != nil {
					p.lifeTimer.Stop()
				}
				p.timerAt = -1
				lc.Freeze(e.now())
				p.core.AdvanceLifecycle(e.now())
			}
			var flushed []ingressEntry
			if p.ingress != nil {
				// Closing the shards (under p.mu, which every drain also
				// holds) leaves no window for a staged entry to strand:
				// offers racing this section either landed in the flush or
				// fail with ErrClosed at their shard.
				flushed = p.ingress.close(p.scratch)
				p.scratch = flushed[:0:0]
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			for i := range flushed {
				e.deliver(flushed[i].req, outcome{err: ErrClosed})
			}
		}
		// Unblock workers waiting for a physical drive; their in-flight
		// executions finish unarbitrated.
		e.drives.close()
		e.wg.Wait()
		// Workers exit only with empty queues, and every queued task carries
		// its request in Ref — once the queues are drained, no request can
		// be left behind, so there is no side table to sweep.
	})
}

// serviceEstimate is a benchmark's fixed pricing for the scheduling
// policies. bench records which Benchmark object it was derived from: a
// redeploy under the same slug hands the engine a different object, and a
// cache hit must not price the new chain with the old chain's estimate
// (nor let a racing in-flight request of the old chain re-memoize stale
// pricing after the redeploy's ForgetEstimate ran).
type serviceEstimate struct {
	bench      *workload.Benchmark
	cpu, dscs  time.Duration
	accelFuncs int
}

// estimate prices a benchmark for the scheduling policies: expected service
// time on the CPU baseline and on the in-storage DSA (effective-throughput
// rooflines; only the relative order matters to the policies), plus the
// acceleratable-function count of its chain for DAG-aware scheduling.
// Deriving an estimate walks the model graphs and rebuilds the application
// chain — pure per-benchmark work memoized in the engine's cache (per
// engine, not per process: another engine, or a test redefining a slug,
// must not read this run's pricing).
func (e *Engine) estimate(b *workload.Benchmark) (cpu, dscs time.Duration, accelFuncs int) {
	if v, ok := e.estimates.Load(b.Slug); ok {
		// A hit only counts for the same Benchmark object: a different
		// object under the same slug is a changed chain (redeploy), and
		// its pricing must be re-derived, not inherited.
		if est := v.(serviceEstimate); est.bench == b {
			return est.cpu, est.dscs, est.accelFuncs
		}
	}
	const (
		cpuFLOPS  = 200e9 // Baseline (CPU) effective throughput
		dscsFLOPS = 26e12 // 128x128 DSA at 1 GHz, utilization-derated
	)
	flops := float64(b.Preproc.FLOPs() + b.Model.FLOPs())
	est := serviceEstimate{
		bench: b,
		cpu:   time.Duration(flops / cpuFLOPS * float64(time.Second)),
		dscs:  time.Duration(flops / dscsFLOPS * float64(time.Second)),
	}
	if app, err := faas.AppFor(b); err == nil {
		est.accelFuncs = len(app.AcceleratedPrefix())
	}
	e.estimates.Store(b.Slug, est)
	return est.cpu, est.dscs, est.accelFuncs
}

// ServiceEstimate exposes the engine's (memoized) static pricing for a
// benchmark — diagnostics and the redeploy regression tests.
func (e *Engine) ServiceEstimate(b *workload.Benchmark) (cpu, dscs time.Duration, accelFuncs int) {
	return e.estimate(b)
}

// ForgetEstimate drops the memoized static pricing, the live latency
// digests, and the published latency gauges for a slug. The gateway calls
// it on redeploy: a changed chain must not keep the old chain's pricing
// (the memoized estimate would otherwise survive forever), its stale
// latency history, or old quantiles on /metrics.
func (e *Engine) ForgetEstimate(slug string) {
	e.estimates.Delete(slug)
	e.obs.Forget(slug)
	for name := range e.pools {
		// Drop the cached handles first: a completion racing this sees
		// either the old series (about to be unset) or re-resolves fresh
		// cells — never a handle writing to an unset series forever.
		e.latGauges.Delete(latKey{slug: slug, platform: name})
		labels := "{benchmark=" + slug + ",platform=" + name + "}"
		e.tel.Unset("serve_latency_p50" + labels)
		e.tel.Unset("serve_latency_p95" + labels)
		e.tel.Unset("serve_latency_p99" + labels)
	}
}

// Observatory exposes the engine's latency digests (diagnostics, tests).
func (e *Engine) Observatory() *metrics.Observatory { return e.obs }

// observe folds one execution's service time into the latency observatory
// and refreshes the per-{benchmark, platform} quantile gauges (rate-
// limited; the digest itself ingests every observation). The gauges read
// the O(1) P² stream estimates, so the completion path never sorts.
func (e *Engine) observe(slug, platformName string, service time.Duration, at time.Time) {
	dg := e.obs.Record(slug, platformName, service)
	k := latKey{slug: slug, platform: platformName}
	v, ok := e.latGauges.Load(k)
	if !ok {
		labels := "{benchmark=" + slug + ",platform=" + platformName + "}"
		v, _ = e.latGauges.LoadOrStore(k, &latHandles{
			p50: e.tel.GaugeHandle("serve_latency_p50" + labels),
			p95: e.tel.GaugeHandle("serve_latency_p95" + labels),
			p99: e.tel.GaugeHandle("serve_latency_p99" + labels),
		})
	}
	h := v.(*latHandles)
	nowNS := at.UnixNano()
	last := h.refresh.Load()
	if nowNS-last < int64(gaugeRefreshInterval) || !h.refresh.CompareAndSwap(last, nowNS) {
		return
	}
	ps := [3]float64{0.50, 0.95, 0.99}
	var qs [3]time.Duration
	dg.StreamQuantilesInto(ps[:], qs[:])
	h.p50.SetDuration(qs[0])
	h.p95.SetDuration(qs[1])
	h.p99.SetDuration(qs[2])
}

// recordWaits folds one dispatched batch's queue delays — each request's
// arrival→dispatch wait — into the wait observatory under the serving
// pool's {platform, class} key and refreshes the serve_queue_delay_*
// gauges. A stolen request charges its wait to the pool that served it,
// while its enqueue instant survives the move — so a hot pool's digest
// reflects what its own backlog cost, not what it exported. (A request
// gathered during the linger window can postdate the dispatch instant;
// the negative wait clamps to zero here, and the delivery loop hands the
// same clamped values to the per-request outcomes.)
//
//dscslint:hotpath
func (e *Engine) recordWaits(p *pool, bs *batchState, dispatched time.Time) {
	bs.waits = bs.waits[:0]
	for _, r := range bs.reqs {
		w := dispatched.Sub(r.enq)
		if w < 0 {
			w = 0
		}
		bs.waits = append(bs.waits, w)
	}
	dg := e.waitObs.RecordBatch(p.name, p.class.String(), bs.waits)
	if dg == nil {
		return
	}
	// Publish rate limit: the first dispatch refreshes immediately (the
	// stamp starts at zero), later ones at most once per interval. The CAS
	// keeps concurrent workers from folding the window twice for one slot.
	nowNS := dispatched.UnixNano()
	last := p.delayRefresh.Load()
	if nowNS-last < int64(gaugeRefreshInterval) || !p.delayRefresh.CompareAndSwap(last, nowNS) {
		return
	}
	// Unlike the cumulative serve_latency_* gauges, these publish the
	// sliding-window quantiles — the very values the balance latch reads —
	// so an operator alerting on serve_queue_delay_p95 watches the same
	// signal that trips rebalancing, and the gauge falls back once a
	// congested window drains instead of staying inflated by history.
	// Windowed reads are O(1) off the sorted ring, all three under one
	// staged-merge fold.
	ps := [3]float64{0.50, WaitQuantile, 0.99}
	var qs [3]time.Duration
	dg.QuantilesInto(ps[:], qs[:])
	p.gDelayP50.SetDuration(qs[0])
	p.gDelayP95.SetDuration(qs[1])
	p.gDelayP99.SetDuration(qs[2])
}

// WaitObservatory exposes the engine's queue-delay digests (diagnostics,
// tests).
func (e *Engine) WaitObservatory() *metrics.Observatory { return e.waitObs }

// observedService blends one class's static service prior toward the
// observed p50 of that class's best-observed pool (the cached class lists
// are name-sorted, so ties break deterministically). Un-observed
// benchmarks keep the prior untouched.
func (e *Engine) observedService(slug string, class sched.InstanceClass, static time.Duration) time.Duration {
	pools := e.spillCPU
	if class == sched.ClassDSCS {
		pools = e.dscsPools
	}
	var best *metrics.Digest
	for _, p := range pools {
		if dg := e.obs.Digest(slug, p.name); dg != nil && (best == nil || dg.Count() > best.Count()) {
			best = dg
		}
	}
	if best == nil {
		return static
	}
	return best.Blend(static, e.obs.Warmup())
}
