// Package serve is the concurrent invocation engine behind the gateway:
// per-platform worker pools over the shared scheduling core (PoolCore),
// admission control on a bounded queue with the pluggable policies of
// internal/sched (FCFS / criticality-aware / DAG-aware), and request
// batching that coalesces same-benchmark invocations into one DSA execution
// up to the profitable batch size (Figure 14's regime). The discrete-event
// at-scale simulation (internal/cluster) drives the same PoolCore, so the
// simulated rack and the live HTTP path share one scheduler implementation.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dscs/internal/faas"
	"dscs/internal/platform"
	"dscs/internal/sched"
	"dscs/internal/workload"
)

// Engine errors surfaced to callers (the gateway maps them to HTTP codes).
var (
	// ErrQueueFull is the admission-control rejection: the platform's
	// queue is at its bound.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("serve: engine closed")
)

// DefaultMaxBatch caps request coalescing. Figure 14 shows DSA throughput
// still improving at batch 8 while batch-1 latency stays the common case;
// beyond that the latency cost of waiting outweighs occupancy gains for
// interactive serving.
const DefaultMaxBatch = 8

// Options tune the engine.
type Options struct {
	// Workers is the pool size per platform (default 4).
	Workers int
	// QueueDepth bounds each platform's admission queue (default 256).
	QueueDepth int
	// Policy selects queued work for free workers (default FCFS, the
	// paper's deployed policy).
	Policy sched.Policy
	// PolicyName resolves a policy by name ("fcfs", "criticality",
	// "dag-aware") when Policy is nil — the CLI/API-friendly spelling.
	PolicyName string
	// MaxBatch caps same-benchmark request coalescing per execution
	// (default DefaultMaxBatch; 1 disables batching).
	MaxBatch int
	// Telemetry receives the engine's metrics; pass the gateway's
	// registry to surface them on /metrics (default: a fresh registry).
	Telemetry *sched.Telemetry
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Policy == nil {
		o.Policy = sched.FCFSPolicy{}
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Telemetry == nil {
		o.Telemetry = sched.NewTelemetry()
	}
	return o
}

// PolicyByName maps a CLI/API policy name to its implementation.
func PolicyByName(name string) (sched.Policy, error) {
	switch name {
	case "", "fcfs":
		return sched.FCFSPolicy{}, nil
	case "criticality":
		return sched.CriticalityPolicy{}, nil
	case "dag-aware", "dag":
		return sched.DAGAwarePolicy{}, nil
	}
	return nil, fmt.Errorf("serve: unknown policy %q (try fcfs, criticality, dag-aware)", name)
}

// PolicyNames lists the accepted PolicyByName inputs.
func PolicyNames() []string { return []string{"fcfs", "criticality", "dag-aware"} }

// Invocation is one served request with its engine-side telemetry.
type Invocation struct {
	Result   faas.Result
	Platform string
	// Queued is the time the request waited for a worker.
	Queued time.Duration
	// BatchRequests counts the requests coalesced into this execution
	// (1 = no batching); BatchSize is the combined model batch executed.
	BatchRequests int
	BatchSize     int
}

// outcome is what a worker delivers back to a blocked submitter.
type outcome struct {
	res           faas.Result
	err           error
	queued        time.Duration
	batchRequests int
	batchSize     int
}

// request is one pending submission.
type request struct {
	bench *workload.Benchmark
	opt   faas.Options
	enq   time.Time
	done  chan outcome
}

// pool is one platform's worker pool: the shared PoolCore plus the
// goroutine machinery the simulator doesn't need.
type pool struct {
	name   string
	runner *faas.Runner

	mu      sync.Mutex
	cond    *sync.Cond
	core    *PoolCore
	pending map[int]*request
	closed  bool
}

// Engine is the concurrent serving core. Safe for concurrent use.
type Engine struct {
	opt    Options
	tel    *sched.Telemetry
	pools  map[string]*pool
	start  time.Time
	nextID atomic.Int64
	wg     sync.WaitGroup
	once   sync.Once
}

// NewEngine builds one worker pool per runner (the platform.All lineup in
// the default environment) and starts its workers.
func NewEngine(runners map[string]*faas.Runner, opt Options) (*Engine, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("serve: no runners")
	}
	if opt.Policy == nil && opt.PolicyName != "" {
		p, err := PolicyByName(opt.PolicyName)
		if err != nil {
			return nil, err
		}
		opt.Policy = p
	}
	opt = opt.withDefaults()
	e := &Engine{
		opt:   opt,
		tel:   opt.Telemetry,
		pools: make(map[string]*pool, len(runners)),
		start: time.Now(),
	}
	for name, r := range runners {
		core, err := NewPoolCore(opt.Workers, opt.QueueDepth, classFor(r.Platform), opt.Policy)
		if err != nil {
			return nil, err
		}
		p := &pool{name: name, runner: r, core: core, pending: make(map[int]*request)}
		p.cond = sync.NewCond(&p.mu)
		e.pools[name] = p
		e.tel.Set("serve_workers{platform="+name+"}", float64(opt.Workers))
		for i := 0; i < opt.Workers; i++ {
			e.wg.Add(1)
			go e.worker(p)
		}
	}
	return e, nil
}

// classFor maps a platform to its scheduling class: the in-storage DSA pool
// is the scarce accelerated capacity the policies steer work toward.
func classFor(c platform.Compute) sched.InstanceClass {
	if c.Class() == platform.InStorageDSA {
		return sched.ClassDSCS
	}
	return sched.ClassCPU
}

// Telemetry returns the engine's metric registry.
func (e *Engine) Telemetry() *sched.Telemetry { return e.tel }

// Platforms lists the pools, sorted.
func (e *Engine) Platforms() []string {
	names := make([]string, 0, len(e.pools))
	for n := range e.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Has reports whether a platform pool exists.
func (e *Engine) Has(platformName string) bool {
	_, ok := e.pools[platformName]
	return ok
}

// QueueLen reports one platform's queue occupancy (0 for unknown names).
func (e *Engine) QueueLen(platformName string) int {
	p, ok := e.pools[platformName]
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.QueueLen()
}

// Dropped totals admission rejections across pools.
func (e *Engine) Dropped() int {
	total := 0
	for _, p := range e.pools {
		p.mu.Lock()
		total += p.core.Dropped()
		p.mu.Unlock()
	}
	return total
}

// Conservation checks every pool's bookkeeping invariant.
func (e *Engine) Conservation() error {
	for _, p := range e.pools {
		p.mu.Lock()
		err := p.core.Conservation()
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%s pool: %w", p.name, err)
		}
	}
	return nil
}

// reqBatch is the model batch one request asks for.
func reqBatch(o faas.Options) int {
	if o.Batch < 1 {
		return 1
	}
	return o.Batch
}

// coalescable reports whether two requests may share one execution: same
// cold-start behavior, same network quantile, same chain shape. The
// benchmark match is checked against the queue task's payload.
func coalescable(a, b faas.Options) bool {
	return a.Cold == b.Cold && a.Quantile == b.Quantile &&
		a.ExtraAccelFuncs == b.ExtraAccelFuncs
}

// Submit enqueues one invocation and blocks until a worker serves it (or
// admission control rejects it with ErrQueueFull). Safe for concurrent use
// from any number of goroutines — the request path has no global lock.
func (e *Engine) Submit(platformName string, b *workload.Benchmark, opt faas.Options) (Invocation, error) {
	p, ok := e.pools[platformName]
	if !ok {
		return Invocation{}, fmt.Errorf("serve: unknown platform %q", platformName)
	}
	if b == nil {
		return Invocation{}, fmt.Errorf("serve: nil benchmark")
	}
	cpuSvc, dscsSvc, accel := estimate(b)
	task := sched.HybridTask{
		ID:          int(e.nextID.Add(1)),
		Arrived:     time.Since(e.start),
		Payload:     b.Slug,
		CPUService:  cpuSvc,
		DSCSService: dscsSvc,
		AccelFuncs:  accel,
	}
	req := &request{bench: b, opt: opt, enq: time.Now(), done: make(chan outcome, 1)}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Invocation{}, ErrClosed
	}
	if !p.core.Submit(task) {
		depth := p.core.QueueLen()
		p.mu.Unlock()
		e.tel.Inc("serve_dropped_total", 1)
		e.tel.Inc("serve_dropped_total{platform="+platformName+"}", 1)
		e.tel.Set("serve_queue_depth{platform="+platformName+"}", float64(depth))
		return Invocation{}, ErrQueueFull
	}
	p.pending[task.ID] = req
	e.tel.Inc("serve_submitted_total", 1)
	e.tel.Set("serve_queue_depth{platform="+platformName+"}", float64(p.core.QueueLen()))
	p.cond.Signal()
	p.mu.Unlock()

	out := <-req.done
	if out.err != nil {
		return Invocation{}, out.err
	}
	return Invocation{
		Result:        out.res,
		Platform:      platformName,
		Queued:        out.queued,
		BatchRequests: out.batchRequests,
		BatchSize:     out.batchSize,
	}, nil
}

// collectBatch resolves a dispatched task to its request and coalesces
// compatible same-benchmark queued requests into the execution, up to
// MaxBatch combined model batch. It returns the requests (lead first) and
// the combined batch. Callers hold p.mu.
func (e *Engine) collectBatch(p *pool, task sched.HybridTask) ([]*request, int) {
	lead := p.pending[task.ID]
	delete(p.pending, task.ID)
	reqs := []*request{lead}
	if budget := e.opt.MaxBatch - reqBatch(lead.opt); budget > 0 {
		taken := p.core.Coalesce(budget, func(t sched.HybridTask) bool {
			r := p.pending[t.ID]
			if r == nil || t.Payload != task.Payload || !coalescable(r.opt, lead.opt) {
				return false
			}
			if reqBatch(r.opt) > budget {
				return false
			}
			budget -= reqBatch(r.opt)
			return true
		})
		for _, t := range taken {
			reqs = append(reqs, p.pending[t.ID])
			delete(p.pending, t.ID)
		}
	}
	batch := 0
	for _, r := range reqs {
		batch += reqBatch(r.opt)
	}
	return reqs, batch
}

// worker is one pool goroutine: dispatch via the shared core, coalesce a
// batch, execute run-to-completion, deliver outcomes.
func (e *Engine) worker(p *pool) {
	defer e.wg.Done()
	p.mu.Lock()
	for {
		task, ok := p.core.Dispatch()
		if !ok {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		reqs, batch := e.collectBatch(p, task)
		e.tel.Set("serve_queue_depth{platform="+p.name+"}", float64(p.core.QueueLen()))
		p.mu.Unlock()

		dispatched := time.Now()
		lead := reqs[0]
		opt := lead.opt
		opt.Batch = batch
		res, err := p.runner.Invoke(lead.bench, opt)

		p.mu.Lock()
		p.core.Complete(len(reqs))
		p.mu.Unlock()
		e.tel.Inc("serve_batches_total", 1)
		e.tel.Inc("serve_batched_requests_total", float64(len(reqs)))
		e.tel.Set("serve_batch_occupancy", float64(batch))
		e.tel.Inc("serve_completed_total", float64(len(reqs)))
		for _, r := range reqs {
			wait := dispatched.Sub(r.enq)
			e.tel.Inc("serve_wait_ms_total", float64(wait)/float64(time.Millisecond))
			r.done <- outcome{res: res, err: err, queued: wait,
				batchRequests: len(reqs), batchSize: batch}
		}
		p.mu.Lock()
	}
}

// Close drains every queue, stops the workers, and fails any submission
// racing the shutdown. Idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		for _, p := range e.pools {
			p.mu.Lock()
			p.closed = true
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		e.wg.Wait()
		// Workers exit only with empty queues, so nothing pends here
		// unless a submit raced the close; fail those explicitly.
		for _, p := range e.pools {
			p.mu.Lock()
			for id, r := range p.pending {
				delete(p.pending, id)
				r.done <- outcome{err: ErrClosed}
			}
			p.mu.Unlock()
		}
	})
}

// serviceEstimate is a benchmark's fixed pricing for the scheduling
// policies.
type serviceEstimate struct {
	cpu, dscs  time.Duration
	accelFuncs int
}

// estimateCache memoizes estimates per benchmark slug: deriving them walks
// the model graphs and rebuilds the application chain, which is pure
// per-benchmark work that must not repeat on every Submit.
var estimateCache sync.Map // slug -> serviceEstimate

// estimate prices a benchmark for the scheduling policies: expected service
// time on the CPU baseline and on the in-storage DSA (effective-throughput
// rooflines; only the relative order matters to the policies), plus the
// acceleratable-function count of its chain for DAG-aware scheduling.
func estimate(b *workload.Benchmark) (cpu, dscs time.Duration, accelFuncs int) {
	if v, ok := estimateCache.Load(b.Slug); ok {
		e := v.(serviceEstimate)
		return e.cpu, e.dscs, e.accelFuncs
	}
	const (
		cpuFLOPS  = 200e9 // Baseline (CPU) effective throughput
		dscsFLOPS = 26e12 // 128x128 DSA at 1 GHz, utilization-derated
	)
	flops := float64(b.Preproc.FLOPs() + b.Model.FLOPs())
	e := serviceEstimate{
		cpu:  time.Duration(flops / cpuFLOPS * float64(time.Second)),
		dscs: time.Duration(flops / dscsFLOPS * float64(time.Second)),
	}
	if app, err := faas.AppFor(b); err == nil {
		e.accelFuncs = len(app.AcceleratedPrefix())
	}
	estimateCache.Store(b.Slug, e)
	return e.cpu, e.dscs, e.accelFuncs
}
