// lifecycle.go is the worker lifecycle state machine: the clock-free
// accounting of how much of a pool's capacity is actually warm. A fixed
// pool is the degenerate case (Min == Max, nothing ever warms or
// suspends); an elastic pool moves slots between cold, warming, warm,
// lingering, and suspended as an autoscaler (internal/scale) raises and
// lowers the desired capacity. Like the rest of the serve core it owns
// no goroutines and no clock: the live Engine drives it with wall time
// and arms timers at NextEvent, while the discrete-event simulations
// drive the identical code from their virtual clocks — the one-scheduler
// rule extends to the one-lifecycle rule.
//
// States and transitions:
//
//	cold/suspended --SetDesired raise--> warming --ColdStart elapses--> warm
//	warm (idle)    --IdleLinger elapses with surplus--> suspended
//	warming        --SetDesired drop--> cold (cancelled, no cold start paid)
//
// "Lingering" is not a separate pool: it is a warm slot that has been
// idle since some instant and carries a suspend deadline. A slot only
// suspends when three things hold at its deadline: the pool has surplus
// (warm+warming > desired), the slot is genuinely idle (warm > busy),
// and the floor stays intact (warm > Min). Warming pays the configured
// cold-start penalty — the container pull plus the CompileCached miss —
// charged through the caller's clock, so the sims and the live engine
// price it identically.

package serve

import (
	"fmt"
	"time"
)

// LifecycleConfig bounds one pool's elastic capacity.
type LifecycleConfig struct {
	// Min and Max bound the warm capacity the autoscaler may choose.
	// Min == 0 allows scale-to-zero; Max is also the number of worker
	// loops the live engine parks over the pool.
	Min, Max int
	// ColdStart is the warming penalty: the delay between a slot being
	// asked for and it becoming dispatchable.
	ColdStart time.Duration
	// IdleLinger is how long a warm slot stays idle before it is
	// eligible to suspend. Zero suspends surplus idle slots at the next
	// advance; the surplus condition (not the linger) is what prevents
	// warm/suspend thrash.
	IdleLinger time.Duration
}

// Validate rejects impossible bounds.
func (c LifecycleConfig) Validate() error {
	if c.Max <= 0 {
		return fmt.Errorf("serve: lifecycle Max must be positive, got %d", c.Max)
	}
	if c.Min < 0 || c.Min > c.Max {
		return fmt.Errorf("serve: lifecycle Min %d outside [0, Max=%d]", c.Min, c.Max)
	}
	if c.ColdStart < 0 || c.IdleLinger < 0 {
		return fmt.Errorf("serve: negative lifecycle durations")
	}
	return nil
}

// Lifecycle is the state machine for one pool's capacity. Slots are
// fungible — it tracks counts and deadlines, not worker identities.
// Like PoolCore it is not safe for concurrent use; whatever serializes
// the core serializes its lifecycle.
type Lifecycle struct {
	cfg     LifecycleConfig
	warm    int             // dispatchable slots (includes lingering idle)
	warming []time.Duration // readyAt instants, ascending (appends use a monotone clock)
	desired int             // autoscaler target for warm+warming, clamped to [Min, Max]

	// idle holds the suspend deadlines of currently idle warm slots,
	// ascending. Reconciliation is LIFO: when slots become busy the
	// newest deadlines pop first, so the longest-idle slot keeps aging
	// toward suspension.
	idle []time.Duration

	// busy is the occupancy reported by the last advance; the idle
	// integral charges each interval with the state that held during it.
	busy    int
	lastAt  time.Duration
	started bool

	coldStarts int
	suspends   int
	// idleCost integrates (warm - busy) dt: the worker-time the pool
	// kept warm but unused — the cost axis the elastic goldens compare.
	idleCost float64 // worker-seconds
	// frozen disables suspension: the engine's Close drain must not
	// park capacity while queues still hold work.
	frozen bool
	// quenched pins the machine while its pool is browned out: warming
	// was cancelled, and no new warming or suspension may start until
	// Unquench. The opposite of frozen (which promotes warming and
	// guarantees capacity so a drain can finish): a dead pool must not
	// have a pending cold-start timer resurrect capacity into it.
	quenched bool
}

// NewLifecycle builds the state machine with initialWarm slots already
// warm at now (no cold start charged for them) and the rest cold.
func NewLifecycle(cfg LifecycleConfig, initialWarm int, now time.Duration) (*Lifecycle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if initialWarm < cfg.Min {
		initialWarm = cfg.Min
	}
	if initialWarm > cfg.Max {
		initialWarm = cfg.Max
	}
	lc := &Lifecycle{
		cfg: cfg, warm: initialWarm, desired: initialWarm,
		lastAt: now, started: true,
	}
	lc.reconcileIdle(now, 0)
	return lc, nil
}

// Config returns the bounds the lifecycle was built with.
func (lc *Lifecycle) Config() LifecycleConfig { return lc.cfg }

// Warm reports dispatchable slots (busy + lingering idle).
func (lc *Lifecycle) Warm() int { return lc.warm }

// Warming reports slots paying their cold-start penalty.
func (lc *Lifecycle) Warming() int { return len(lc.warming) }

// Cold reports slots that are neither warm nor warming (cold or
// suspended — indistinguishable once parked).
func (lc *Lifecycle) Cold() int { return lc.cfg.Max - lc.warm - len(lc.warming) }

// Lingering reports warm slots currently idle with an armed suspend
// deadline.
func (lc *Lifecycle) Lingering() int { return len(lc.idle) }

// Desired reports the autoscaler's current target.
func (lc *Lifecycle) Desired() int { return lc.desired }

// ColdStarts counts completed warming transitions — each paid the full
// penalty.
func (lc *Lifecycle) ColdStarts() int { return lc.coldStarts }

// Suspends counts warm slots parked by linger expiry.
func (lc *Lifecycle) Suspends() int { return lc.suspends }

// IdleCost reports the integral of (warm - busy) over time: warm
// worker-time bought but not used.
func (lc *Lifecycle) IdleCost() time.Duration {
	return time.Duration(lc.idleCost * float64(time.Second))
}

// SetDesired moves the autoscaler target to n (clamped to [Min, Max]) at
// now. Growth starts warming slots, each ready at now+ColdStart (ready
// immediately when the penalty is zero); shrink cancels not-yet-ready
// warming slots first — an aborted pull pays nothing — and then lets
// the idle linger drain the surplus warm slots. It returns the new warm
// capacity, which changes immediately only when ColdStart is zero.
func (lc *Lifecycle) SetDesired(n int, now time.Duration) int {
	lc.advance(now, lc.busy)
	if n < lc.cfg.Min {
		n = lc.cfg.Min
	}
	if n > lc.cfg.Max {
		n = lc.cfg.Max
	}
	lc.desired = n
	// Cancel warming overshoot, newest first (latest readyAt).
	for len(lc.warming) > 0 && lc.warm+len(lc.warming) > n {
		lc.warming = lc.warming[:len(lc.warming)-1]
	}
	// Start warming the shortfall out of cold capacity — unless the pool
	// is quenched: a browned-out pool must not schedule cold starts that
	// would come ready inside a grave.
	for !lc.quenched && lc.warm+len(lc.warming) < n {
		lc.warming = append(lc.warming, now+lc.cfg.ColdStart)
	}
	// Re-advance under the new target: zero-penalty warming promotes in
	// place, and a shrink lets slots whose linger already elapsed
	// suspend immediately — the linger measures idleness, not how long
	// the surplus existed.
	lc.advance(now, lc.busy)
	return lc.warm
}

// Freeze disables suspension permanently and promotes all warming slots
// immediately — the engine's Close drain semantics: remaining queued
// work must be served, never stranded behind a suspended pool. It
// guarantees at least one warm slot.
func (lc *Lifecycle) Freeze(now time.Duration) {
	lc.advance(now, lc.busy)
	lc.frozen = true
	lc.quenched = false // a drain outranks a brown-out: queued work must leave
	for range lc.warming {
		lc.warm++
		lc.coldStarts++
	}
	lc.warming = lc.warming[:0]
	if lc.warm == 0 {
		lc.warm = 1
	}
	if lc.desired < lc.warm {
		lc.desired = lc.warm
	}
	lc.idle = lc.idle[:0]
}

// Quench pins the state machine while its pool is browned out: pending
// warming slots are cancelled (an aborted pull pays no cold start — and,
// critically, no timer armed at their readyAt may later resurrect
// capacity into a dead pool), idle lingers are disarmed, and no new
// warming or suspension starts until Unquench. Warm capacity itself is
// untouched so recovery resumes at the pre-fault size.
func (lc *Lifecycle) Quench(now time.Duration) {
	lc.advance(now, lc.busy)
	lc.quenched = true
	lc.warming = lc.warming[:0]
	lc.idle = lc.idle[:0]
}

// Unquench lifts the brown-out pin at now and re-warms toward the
// desired capacity, paying cold starts for whatever the quench cancelled.
func (lc *Lifecycle) Unquench(now time.Duration) {
	if !lc.quenched {
		return
	}
	lc.quenched = false
	lc.SetDesired(lc.desired, now)
}

// Quenched reports whether the machine is pinned by a brown-out.
func (lc *Lifecycle) Quenched() bool { return lc.quenched }

// NextEvent returns the earliest instant the state machine changes on
// its own — a warming slot coming ready or a lingering slot's suspend
// deadline (only when the suspend would actually fire: surplus exists,
// the floor holds, and a slot is genuinely idle — the same guards
// fireAt applies, so advance never spins on an unactionable deadline).
// The caller arms a timer (live engine) or schedules an event (sims)
// at it; a deadline blocked by occupancy is re-armed by the advance
// that reports the next completion.
func (lc *Lifecycle) NextEvent() (time.Duration, bool) {
	var at time.Duration
	ok := false
	if len(lc.warming) > 0 {
		at, ok = lc.warming[0], true
	}
	if !lc.frozen && !lc.quenched && len(lc.idle) > 0 && lc.warm+len(lc.warming) > lc.desired &&
		lc.warm > lc.busy && lc.warm > lc.cfg.Min {
		if !ok || lc.idle[0] < at {
			at, ok = lc.idle[0], true
		}
	}
	return at, ok
}

// advance folds elapsed time into the state machine: it accrues the
// idle-cost integral segment-wise, promotes warming slots whose readyAt
// passed, suspends lingering slots whose deadlines passed while surplus
// holds, and reconciles the idle ledger against the caller-reported
// occupancy. Callers drive it through PoolCore.AdvanceLifecycle at
// every scheduling event; a late advance only smears the idle integral,
// never the slot counts.
func (lc *Lifecycle) advance(now time.Duration, busy int) int {
	if now < lc.lastAt {
		now = lc.lastAt // a stale caller clock must not rewind the integral
	}
	// The integral charges the elapsed interval with the occupancy that
	// held during it; the suspend guard must see the occupancy reported
	// now, so a slot that became busy since the last advance is never
	// suspended retroactively.
	wasBusy := lc.busy
	lc.busy = busy
	for {
		evt, ok := lc.NextEvent()
		if !ok || evt > now {
			break
		}
		lc.accrueTo(evt, wasBusy)
		lc.fireAt(evt)
	}
	lc.accrueTo(now, wasBusy)
	lc.reconcileIdle(now, busy)
	return lc.warm
}

// accrueTo charges the idle integral for [lastAt, at] with the given
// interval occupancy.
func (lc *Lifecycle) accrueTo(at time.Duration, busy int) {
	if at <= lc.lastAt {
		return
	}
	if idle := lc.warm - busy; idle > 0 {
		lc.idleCost += float64(idle) * (at - lc.lastAt).Seconds()
	}
	lc.lastAt = at
}

// fireAt applies every transition due at exactly evt.
func (lc *Lifecycle) fireAt(evt time.Duration) {
	for len(lc.warming) > 0 && lc.warming[0] <= evt {
		lc.warming = lc.warming[1:]
		lc.warm++
		lc.coldStarts++
		// A freshly warmed slot is idle; it starts its own linger.
		lc.idle = append(lc.idle, evt+lc.cfg.IdleLinger)
	}
	for !lc.frozen && !lc.quenched && len(lc.idle) > 0 && lc.idle[0] <= evt &&
		lc.warm+len(lc.warming) > lc.desired && lc.warm > lc.busy && lc.warm > lc.cfg.Min {
		lc.idle = lc.idle[1:]
		lc.warm--
		lc.suspends++
	}
}

// reconcileIdle resyncs the idle ledger with the reported occupancy:
// newly idle slots arm deadlines at now+IdleLinger, newly busy slots
// release the newest deadlines first (LIFO), so the longest-idle slot
// keeps aging toward suspension.
func (lc *Lifecycle) reconcileIdle(now time.Duration, busy int) {
	want := lc.warm - busy
	if want < 0 {
		want = 0
	}
	if lc.frozen || lc.quenched {
		lc.idle = lc.idle[:0]
		return
	}
	for len(lc.idle) > want {
		lc.idle = lc.idle[:len(lc.idle)-1]
	}
	for len(lc.idle) < want {
		lc.idle = append(lc.idle, now+lc.cfg.IdleLinger)
	}
}

// checkInvariants verifies slot conservation; the property harness calls
// it after every operation.
func (lc *Lifecycle) checkInvariants() error {
	if lc.warm < 0 || len(lc.warming) < 0 || lc.Cold() < 0 {
		return fmt.Errorf("serve: lifecycle slot counts negative (warm=%d warming=%d cold=%d)",
			lc.warm, len(lc.warming), lc.Cold())
	}
	if lc.warm+len(lc.warming)+lc.Cold() != lc.cfg.Max {
		return fmt.Errorf("serve: lifecycle slots not conserved (warm=%d warming=%d cold=%d max=%d)",
			lc.warm, len(lc.warming), lc.Cold(), lc.cfg.Max)
	}
	if len(lc.idle) > lc.warm {
		return fmt.Errorf("serve: %d lingering slots exceed %d warm", len(lc.idle), lc.warm)
	}
	if lc.desired < lc.cfg.Min || lc.desired > lc.cfg.Max {
		return fmt.Errorf("serve: desired %d outside [%d, %d]", lc.desired, lc.cfg.Min, lc.cfg.Max)
	}
	return nil
}
