// property_test.go is the scheduling core's model-checking harness: it
// drives randomized Submit/Dispatch/Coalesce/Steal/Complete sequences
// against PoolCore (plain and former-gated) and the split HybridCore, and
// after every single step asserts the invariants future refactors must
// preserve — Conservation, worker counts inside [0, Workers], no task
// dispatched twice, and the sched.AgingMultiple starvation bound (an aged
// queue head is never passed over by a dispatch that could serve it).
// Sequences are seeded and a failure is shrunk greedily to a minimal op
// trace before being dumped, so a red run prints a replayable recipe.
package serve

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sched"
)

// propSeed anchors every randomized sequence; change it only on purpose.
const propSeed = 0x5eed

// propOp is one step of a random schedule.
type propOp struct {
	kind int
	a, b int
}

func (o propOp) String() string {
	names := []string{"submit", "dispatch", "coalesce", "complete", "advance", "steal"}
	return fmt.Sprintf("%s(%d,%d)", names[o.kind%len(names)], o.a, o.b)
}

// genOps draws one op sequence from the given stream.
func genOps(rng *rand.Rand, kinds int) []propOp {
	n := 30 + rng.Intn(90)
	ops := make([]propOp, n)
	for i := range ops {
		ops[i] = propOp{kind: rng.Intn(kinds), a: rng.Intn(1 << 16), b: rng.Intn(1 << 16)}
	}
	return ops
}

// shrink greedily removes ops while the sequence still fails, returning a
// (locally) minimal failing trace and its error.
func shrink(ops []propOp, run func([]propOp) error) ([]propOp, error) {
	err := run(ops)
	if err == nil {
		return ops, nil
	}
	for removed := true; removed; {
		removed = false
		for i := 0; i < len(ops); i++ {
			candidate := append(append([]propOp(nil), ops[:i]...), ops[i+1:]...)
			if e := run(candidate); e != nil {
				ops, err, removed = candidate, e, true
				break
			}
		}
	}
	return ops, err
}

// checkSequences runs count seeded sequences through run, shrinking and
// dumping the first failure.
func checkSequences(t *testing.T, count, kinds int, run func([]propOp) error) {
	t.Helper()
	for i := 0; i < count; i++ {
		rng := rand.New(rand.NewSource(propSeed + int64(i)))
		ops := genOps(rng, kinds)
		if err := run(ops); err != nil {
			minimal, merr := shrink(ops, run)
			t.Fatalf("sequence %d (seed %#x) violated an invariant: %v\nminimal trace (%d ops): %v",
				i, propSeed+int64(i), merr, len(minimal), minimal)
		}
	}
}

// propTask derives a task from op arguments: three payload classes, a
// spread of service estimates, arrivals on the harness clock.
func propTask(id int, now time.Duration, arg int) sched.HybridTask {
	return sched.HybridTask{
		ID: id, Arrived: now,
		Payload:     string(rune('a' + arg%3)),
		CPUService:  time.Duration(1+arg%9) * 10 * time.Millisecond,
		DSCSService: time.Duration(1+arg%9) * 2 * time.Millisecond,
		AccelFuncs:  arg % 4,
	}
}

// agedPassedOver is the starvation-bound assertion: head was the queue's
// oldest task before a successful dispatch on class; if its wait exceeded
// the aging bound, the dispatch must have taken it.
func agedPassedOver(head sched.HybridTask, hadHead bool, got sched.HybridTask,
	class sched.InstanceClass, now time.Duration) error {
	if !hadHead {
		return nil
	}
	if now-head.Arrived > sched.AgingMultiple*head.Service(class) && got.ID != head.ID {
		return fmt.Errorf("starvation bound: head %d aged %v (service %v on %s) passed over for %d",
			head.ID, now-head.Arrived, head.Service(class), class, got.ID)
	}
	return nil
}

// poolInvariants are the step assertions shared by the PoolCore harnesses.
func poolInvariants(c *PoolCore) error {
	if err := c.Conservation(); err != nil {
		return err
	}
	if c.Busy() < 0 || c.Busy() > c.Workers() {
		return fmt.Errorf("busy workers %d outside [0, %d]", c.Busy(), c.Workers())
	}
	if c.Running() < 0 {
		return fmt.Errorf("running %d negative", c.Running())
	}
	return nil
}

// TestPoolCorePropertyHarness model-checks the single-pool core under the
// criticality policy (the starvation-prone one) with randomized schedules.
func TestPoolCorePropertyHarness(t *testing.T) {
	run := func(ops []propOp) error {
		core, err := NewPoolCore(3, 12, sched.ClassCPU, sched.CriticalityPolicy{})
		if err != nil {
			return err
		}
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		var execs []int // open executions' request counts
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit
				core.Submit(propTask(nextID, now, op.a))
				nextID++
			case 1: // dispatch
				head, hadHead := core.queue.Head()
				got, ok := core.Dispatch(now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if err := agedPassedOver(head, hadHead, got, sched.ClassCPU, now); err != nil {
					return err
				}
				execs = append(execs, 1)
			case 2: // coalesce onto the latest execution
				if len(execs) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := core.Coalesce(1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
				}
				execs[len(execs)-1] += len(taken)
			case 3: // complete a random open execution
				if len(execs) == 0 {
					break
				}
				i := op.a % len(execs)
				core.Complete(execs[i])
				execs = append(execs[:i], execs[i+1:]...)
			case 4: // advance the clock a long way (ages the head)
				now += time.Duration(op.a%2000) * time.Millisecond
			}
			if err := poolInvariants(core); err != nil {
				return err
			}
		}
		return nil
	}
	checkSequences(t, 4000, 5, run)
}

// TestFormerPropertyHarness model-checks the former-gated pool: the same
// invariants, plus the former's own contract — a held pick never leaves
// the queue, and an aged head whose group is ready is never passed over.
func TestFormerPropertyHarness(t *testing.T) {
	run := func(ops []propOp) error {
		core, err := NewPoolCore(2, 10, sched.ClassCPU, sched.CriticalityPolicy{})
		if err != nil {
			return err
		}
		former := NewBatchFormer(4, 40*time.Millisecond, 200*time.Millisecond, sched.ClassCPU)
		core.AttachFormer(former)
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		var execs []int
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit + observe
				tk := propTask(nextID, now, op.a)
				nextID++
				if core.Submit(tk) {
					former.Observe(tk, 1)
				}
			case 1: // formed dispatch
				head, hadHead := core.queue.Head()
				before := core.QueueLen()
				got, ok, wake, wakeOK := core.DispatchFormed(now)
				if !ok {
					if core.QueueLen() != before {
						return fmt.Errorf("held dispatch changed the queue (%d -> %d)", before, core.QueueLen())
					}
					if wakeOK && wake <= now && core.Busy() < core.Workers() {
						return fmt.Errorf("former reported a due instant %v in the past (now %v) without dispatching", wake, now)
					}
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if hadHead && former.Ready(head.Payload, now) {
					if err := agedPassedOver(head, hadHead, got, sched.ClassCPU, now); err != nil {
						return err
					}
				}
				execs = append(execs, 1)
			case 2: // coalesce onto the latest execution
				if len(execs) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := core.Coalesce(1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
					former.Shed(tk.Payload, 1)
				}
				execs[len(execs)-1] += len(taken)
			case 3: // complete
				if len(execs) == 0 {
					break
				}
				i := op.a % len(execs)
				core.Complete(execs[i])
				execs = append(execs[:i], execs[i+1:]...)
			case 4: // advance
				now += time.Duration(op.a%500) * time.Millisecond
			}
			if err := poolInvariants(core); err != nil {
				return err
			}
		}
		return nil
	}
	checkSequences(t, 3000, 5, run)
}

// TestAdaptiveFormerPropertyHarness model-checks the former-gated pool
// with a digest-backed live estimator in the loop, feeding the digest
// adversarial observations (zeros, the maximum duration, negatives,
// collapsing magnitudes) between scheduling ops. On top of the usual pool
// invariants it asserts the adaptive-estimation contract: the digest never
// feeds a NaN, zero, or negative service estimate into the former's slack
// arithmetic, and group due instants never precede their oldest arrival.
func TestAdaptiveFormerPropertyHarness(t *testing.T) {
	run := func(ops []propOp) error {
		core, err := NewPoolCore(2, 10, sched.ClassCPU, sched.CriticalityPolicy{})
		if err != nil {
			return err
		}
		obs := metrics.NewObservatory(16, 6)
		former := NewBatchFormer(4, 40*time.Millisecond, 200*time.Millisecond, sched.ClassCPU)
		var estErr error
		former.SetEstimator(func(payload string, static time.Duration) time.Duration {
			got := obs.ServiceQuantile(payload, "pool", static, 0.95)
			if static > 0 && got <= 0 && estErr == nil {
				estErr = fmt.Errorf("digest fed a non-positive estimate %v into the former (static %v)", got, static)
			}
			return got
		})
		core.AttachFormer(former)
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		var execs []int
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit + observe
				tk := propTask(nextID, now, op.a)
				nextID++
				if core.Submit(tk) {
					former.Observe(tk, 1)
					if g := former.groups[tk.Payload]; g != nil && g.Due < g.Oldest {
						return fmt.Errorf("group %q due %v precedes its oldest arrival %v",
							tk.Payload, g.Due, g.Oldest)
					}
				}
			case 1: // formed dispatch
				before := core.QueueLen()
				got, ok, _, _ := core.DispatchFormed(now)
				if !ok {
					if core.QueueLen() != before {
						return fmt.Errorf("held dispatch changed the queue (%d -> %d)", before, core.QueueLen())
					}
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				execs = append(execs, 1)
			case 2: // complete
				if len(execs) == 0 {
					break
				}
				i := op.a % len(execs)
				core.Complete(execs[i])
				execs = append(execs[:i], execs[i+1:]...)
			case 3: // advance
				now += time.Duration(op.a%500) * time.Millisecond
			case 4: // record an adversarial observation
				payload := string(rune('a' + op.a%3))
				var v time.Duration
				switch op.a % 5 {
				case 0:
					v = 0
				case 1:
					v = time.Duration(1<<63 - 1) // max duration
				case 2:
					v = time.Duration(1<<40) >> uint(op.b%40) // collapsing magnitude
				case 3:
					v = -time.Duration(1 + op.a) // negative (clamped by Record)
				default:
					v = time.Duration(op.a) * time.Microsecond
				}
				obs.Record(payload, "pool", v)
			}
			if estErr != nil {
				return estErr
			}
			if err := poolInvariants(core); err != nil {
				return err
			}
		}
		return nil
	}
	checkSequences(t, 3000, 5, run)
}

// TestHybridStealPropertyHarness model-checks the split two-class core
// with rebalancing steals mixed into the schedule: conservation across the
// class pair, per-class worker bounds, no duplicated dispatch even when
// tasks migrate between backlogs, and the starvation bound on whichever
// backlog served the dispatch.
func TestHybridStealPropertyHarness(t *testing.T) {
	classes := []sched.InstanceClass{sched.ClassCPU, sched.ClassDSCS}
	run := func(ops []propOp) error {
		h, err := NewSplitHybridCore(2, 2, 8, sched.CriticalityPolicy{})
		if err != nil {
			return err
		}
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		execs := map[sched.InstanceClass][]int{}
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit, biased toward the DSCS backlog
				class := sched.ClassDSCS
				if op.a%4 == 0 {
					class = sched.ClassCPU
				}
				h.SubmitTo(class, propTask(nextID, now, op.a))
				nextID++
			case 1: // dispatch (DSCS preferred, like the sim pump)
				dscsHead, hadDSCS := h.Class(sched.ClassDSCS).queue.Head()
				cpuHead, hadCPU := h.Class(sched.ClassCPU).queue.Head()
				got, class, ok := h.Dispatch(now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				head, hadHead := cpuHead, hadCPU
				if class == sched.ClassDSCS {
					head, hadHead = dscsHead, hadDSCS
				}
				if err := agedPassedOver(head, hadHead, got, class, now); err != nil {
					return err
				}
				execs[class] = append(execs[class], 1)
			case 2: // coalesce onto the class's latest execution
				class := classes[op.b%2]
				if len(execs[class]) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := h.Class(class).Coalesce(1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
				}
				execs[class][len(execs[class])-1] += len(taken)
			case 3: // complete a random execution of a random class
				class := classes[op.b%2]
				if len(execs[class]) == 0 {
					break
				}
				i := op.a % len(execs[class])
				h.Complete(class, execs[class][i])
				execs[class] = append(execs[class][:i], execs[class][i+1:]...)
			case 4: // advance
				now += time.Duration(op.a%2000) * time.Millisecond
			case 5: // steal in a random direction
				from := classes[op.b%2]
				to := classes[(op.b+1)%2]
				moved := h.Steal(from, to, 1+op.a%4)
				for _, tk := range moved {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d stolen after dispatch", tk.ID)
					}
				}
			}
			if err := h.Conservation(); err != nil {
				return err
			}
			for _, class := range classes {
				pc := h.Class(class)
				if pc.Busy() < 0 || pc.Busy() > pc.Workers() {
					return fmt.Errorf("%s busy %d outside [0, %d]", class, pc.Busy(), pc.Workers())
				}
				if pc.Running() < 0 {
					return fmt.Errorf("%s running negative", class)
				}
			}
		}
		return nil
	}
	checkSequences(t, 4000, 6, run)
}

// TestShrinkerFindsMinimalTrace pins the harness's own machinery: a
// planted violation must shrink to the ops that matter, so a real failure
// dumps a short recipe instead of a 100-op haystack.
func TestShrinkerFindsMinimalTrace(t *testing.T) {
	// A "core" that breaks when it has seen 2 submits and then a dispatch.
	run := func(ops []propOp) error {
		submits := 0
		for _, op := range ops {
			switch op.kind {
			case 0:
				submits++
			case 1:
				if submits >= 2 {
					return fmt.Errorf("planted violation")
				}
			}
		}
		return nil
	}
	ops := []propOp{{kind: 4}, {kind: 0}, {kind: 2}, {kind: 0}, {kind: 3}, {kind: 1}, {kind: 4}}
	minimal, err := shrink(ops, run)
	if err == nil {
		t.Fatal("shrinker lost the failure")
	}
	if len(minimal) != 3 {
		t.Fatalf("minimal trace has %d ops, want 3: %v", len(minimal), minimal)
	}
}
