// workflow.go is the live half of the workflow subsystem: it drives one
// trace.WorkflowSpec through the engine's pools, stage by stage, as the
// graph unlocks. The clock-free DAG bookkeeping lives in
// internal/workflow (the sims drive the same Run from virtual time); this
// file owns only the goroutine fan-out, the objstore I/O between stages,
// and the serve_workflow_* telemetry.
//
// Placement follows the data: a stage whose dominant input has a healthy
// replica on a DSCS drive runs on a DSCS-class pool — the in-storage
// platform computes beside the replica, so the input never crosses the
// fabric — falling back to the least-priced-wait healthy pool of any
// class when the local side is busier than a peer or dead. Remote inputs
// pay the store's failover read before the stage submits, and the bytes
// are billed to serve_workflow_fabric_bytes_total either way.

//dscslint:allow clockcheck wall-clock half by design: stage offsets sleep real time and fetch latencies are slept against real executions (the clock-free graph state lives in internal/workflow)

package serve

import (
	"fmt"
	"sync"
	"time"

	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/trace"
	"dscs/internal/units"
	"dscs/internal/workflow"
	"dscs/internal/workload"
)

// WorkflowStageOutcome reports how one stage settled: the pool that served
// it (empty if it never dispatched), whether placement was local to the
// input's replica, its terminal state, and the error that dropped or
// stranded it.
type WorkflowStageOutcome struct {
	ID       string
	Platform string
	Local    bool
	State    workflow.State
	Err      string
}

// WorkflowResult is one workflow's settled ledger. Completed + Dropped +
// Stranded always equals the stage count — the engine refuses to return a
// workflow that has not fully settled.
type WorkflowResult struct {
	ID        int
	Makespan  time.Duration
	Succeeded bool
	Completed int
	Dropped   int
	Stranded  int
	// LocalStages ran beside a healthy DSCS replica of their dominant
	// input; RemoteStages paid a fabric read. LocalBytes/FabricBytes split
	// the input traffic the same way.
	LocalStages  int
	RemoteStages int
	LocalBytes   units.Bytes
	FabricBytes  units.Bytes
	Stages       []WorkflowStageOutcome
}

// wfDriver is one workflow's in-flight state: the shared Run behind a
// mutex (it is not concurrency-safe), the per-stage outcomes, and the
// byte ledger the result reports.
type wfDriver struct {
	e     *Engine
	run   *workflow.Run
	store *objstore.Store
	bench []*workload.Benchmark
	opt   faas.Options

	mu       sync.Mutex
	wg       sync.WaitGroup
	outcomes []WorkflowStageOutcome

	localStages, remoteStages int
	localBytes, fabricBytes   units.Bytes
}

// SubmitWorkflow admits one invocation graph and drives it to settlement:
// root stages submit immediately (each root's input object is seeded into
// the store first), every completion writes its output object and unlocks
// the dependents waiting on it, and a refused or failed stage strands its
// downstream closure rather than leak it. The call blocks until every
// stage has settled and returns the full ledger; per-stage scheduler age
// is measured from unlock time, because stages submit only when they
// unlock.
func (e *Engine) SubmitWorkflow(spec *trace.WorkflowSpec, opt faas.Options) (WorkflowResult, error) {
	if spec == nil {
		return WorkflowResult{}, fmt.Errorf("serve: nil workflow spec")
	}
	benches := make([]*workload.Benchmark, len(spec.Stages))
	for i, st := range spec.Stages {
		if benches[i] = workload.BySlug(st.Benchmark); benches[i] == nil {
			return WorkflowResult{}, fmt.Errorf("serve: workflow stage %q names unknown benchmark %q", st.ID, st.Benchmark)
		}
	}
	store := e.workflowStore()
	if store == nil {
		return WorkflowResult{}, fmt.Errorf("serve: no pool has an object store")
	}
	run, err := workflow.NewRun(int(e.wfID.Add(1)), e.now(), spec)
	if err != nil {
		return WorkflowResult{}, err
	}
	d := &wfDriver{
		e: e, run: run, store: store, bench: benches, opt: opt,
		outcomes: make([]WorkflowStageOutcome, len(spec.Stages)),
	}
	for i, st := range spec.Stages {
		d.outcomes[i] = WorkflowStageOutcome{ID: st.ID, State: workflow.Blocked}
	}
	e.tel.Inc("serve_workflows_total", 1)
	e.tel.Inc("serve_workflow_stages_total", float64(len(spec.Stages)))

	// Seed each root's input object before anything unlocks: the harness
	// invariant is that no stage dispatches before all its input objects
	// exist in the store.
	for _, i := range spec.Roots() {
		if _, _, err := store.PutAt(workflow.InputKey(run.ID(), spec.Stages[i].ID),
			benches[i].InputBytes, true, opt.Quantile); err != nil {
			return WorkflowResult{}, fmt.Errorf("serve: seeding workflow input for stage %q: %w", spec.Stages[i].ID, err)
		}
	}

	d.mu.Lock()
	d.launchLocked(run.Start(e.now()))
	d.mu.Unlock()
	d.wg.Wait()

	if err := run.Conservation(); err != nil {
		return WorkflowResult{}, err
	}
	makespan, settled := run.Makespan()
	if !settled {
		return WorkflowResult{}, fmt.Errorf("serve: workflow %d finished its stages without settling", run.ID())
	}
	e.tel.Inc("serve_workflows_settled_total", 1)
	if run.Succeeded() {
		e.tel.Inc("serve_workflows_completed_total", 1)
	}
	e.wfMakespans.Record(makespan)
	e.tel.SetDuration("serve_workflow_makespan_p50", e.wfMakespans.Quantile(0.50))
	e.tel.SetDuration("serve_workflow_makespan_p95", e.wfMakespans.Quantile(0.95))
	return WorkflowResult{
		ID: run.ID(), Makespan: makespan, Succeeded: run.Succeeded(),
		Completed: run.Completed(), Dropped: run.DroppedCount(), Stranded: run.StrandedCount(),
		LocalStages: d.localStages, RemoteStages: d.remoteStages,
		LocalBytes: d.localBytes, FabricBytes: d.fabricBytes,
		Stages: d.outcomes,
	}, nil
}

// workflowStore picks the object store workflow data lives in — the DSCS
// platform's store when one exists (that is the replica map locality
// consults), any pool's otherwise. In the default environment every
// runner shares one store, so the choice only matters for bespoke tests.
func (e *Engine) workflowStore() *objstore.Store {
	for _, p := range e.dscsPools {
		if p.runner.Store != nil {
			return p.runner.Store
		}
	}
	for _, p := range e.spillCPU {
		if p.runner.Store != nil {
			return p.runner.Store
		}
	}
	return nil
}

// launchLocked starts one goroutine per newly unlocked stage. Callers
// hold d.mu; the unlocked slice is the Run's reusable buffer, so indices
// are captured before the lock is released.
func (d *wfDriver) launchLocked(unlocked []int) {
	for _, i := range unlocked {
		d.outcomes[i].State = workflow.Ready
		d.wg.Add(1)
		go d.stage(i, d.run.UnlockedAt(i))
	}
}

// placeStage picks the pool one unlocked stage runs on.
//
// The home side is the DSCS pool set, eligible only while the stage's
// dominant input has a healthy replica on a DSCS drive. Home wins ties —
// moving compute beside the data is free, moving data beside idle compute
// is not — and loses only to a strictly cheaper peer, mirroring
// workflow.Placer's tie-break. With no healthy pool at all the stage
// cannot dispatch and the caller strands it.
//
//dscslint:hotpath
func (e *Engine) placeStage(store *objstore.Store, domKey string) (p *pool, local bool) {
	var home *pool
	var homeWait time.Duration
	if _, _, ok := store.DSCSReplicaHealthy(domKey); ok {
		for _, c := range e.dscsPools {
			if !e.poolHealthy(c) {
				continue
			}
			if w := e.pricedWait(c); home == nil || w < homeWait {
				home, homeWait = c, w
			}
		}
	}
	if home != nil && homeWait == 0 {
		return home, true
	}
	var best *pool
	var bestWait time.Duration
	scan := func(cands []*pool) {
		for _, c := range cands {
			if !e.poolHealthy(c) {
				continue
			}
			if w := e.pricedWait(c); best == nil || w < bestWait {
				best, bestWait = c, w
			}
		}
	}
	scan(e.dscsPools)
	scan(e.spillCPU)
	if home != nil && homeWait <= bestWait {
		return home, true
	}
	return best, false
}

// dominantInput returns the largest input object's key — the read worth
// placing against. Sizes come from the store catalog; an input that is
// somehow missing weighs zero (the fetch below will surface the error).
func (d *wfDriver) dominantInput(keys []string) string {
	dom, domSize := keys[0], units.Bytes(-1)
	for _, k := range keys {
		if obj, ok := d.store.Lookup(k); ok && obj.Size > domSize {
			dom, domSize = k, obj.Size
		}
	}
	return dom
}

// stage drives one unlocked stage end to end: wait out the offset floor,
// place against the dominant input's replica, pay the fabric for remote
// inputs, submit, write the output object, unlock dependents.
func (d *wfDriver) stage(i int, unlockAt time.Duration) {
	defer d.wg.Done()
	e := d.e
	if delay := unlockAt - e.now(); delay > 0 {
		time.Sleep(delay)
	}
	keys := d.run.InputKeys(i)
	pl, local := e.placeStage(d.store, d.dominantInput(keys))
	if pl == nil {
		d.settle(i, "", false, fmt.Errorf("no healthy pool"), true)
		return
	}

	// Bill every input: a healthy DSCS replica read by a locally placed
	// stage is served in place, anything else crosses the fabric via the
	// store's failover path before the stage may run.
	var localBytes, fabricBytes units.Bytes
	var fetch time.Duration
	for _, k := range keys {
		size := units.Bytes(0)
		if obj, ok := d.store.Lookup(k); ok {
			size = obj.Size
		}
		if _, _, ok := d.store.DSCSReplicaHealthy(k); ok && local {
			localBytes += size
			continue
		}
		fd, _, err := d.store.GetWithFailover(k, d.opt.Quantile)
		if err != nil {
			d.settle(i, pl.name, local, fmt.Errorf("input %s unreadable: %w", k, err), true)
			return
		}
		fetch += fd
		fabricBytes += size
	}
	if fetch > 0 {
		time.Sleep(fetch)
	}

	inflight := e.wfInflight.Add(1)
	e.tel.Set("serve_workflow_stages_inflight", float64(inflight))
	_, err := e.Submit(pl.name, d.bench[i], d.opt)
	inflight = e.wfInflight.Add(-1)
	e.tel.Set("serve_workflow_stages_inflight", float64(inflight))
	if err != nil {
		d.settle(i, pl.name, local, err, false)
		return
	}
	if _, _, err := d.store.PutAt(d.run.OutputKey(i), d.bench[i].IntermediateBytes, true, d.opt.Quantile); err != nil {
		d.settle(i, pl.name, local, fmt.Errorf("writing output: %w", err), true)
		return
	}

	d.mu.Lock()
	if local {
		d.localStages++
		d.localBytes += localBytes
	} else {
		d.remoteStages++
	}
	d.fabricBytes += fabricBytes
	d.outcomes[i].Platform, d.outcomes[i].Local = pl.name, local
	d.outcomes[i].State = workflow.Done
	d.launchLocked(d.run.Complete(i, e.now()))
	d.mu.Unlock()
	if local {
		e.tel.Inc("serve_workflow_stages_local_total", 1)
		e.tel.Inc("serve_workflow_local_bytes_total", float64(localBytes))
	} else {
		e.tel.Inc("serve_workflow_stages_remote_total", 1)
	}
	e.tel.Inc("serve_workflow_fabric_bytes_total", float64(fabricBytes))
	e.tel.Inc("serve_workflow_stages_completed_total", 1)
}

// settle records a stage that did not complete. Stranding (an unreadable
// input, no healthy pool) and dropping (admission refused the submit)
// both cascade: the downstream closure can never assemble its inputs, so
// it settles now instead of leaking.
func (d *wfDriver) settle(i int, platform string, local bool, cause error, strand bool) {
	e := d.e
	d.mu.Lock()
	d.outcomes[i].Platform, d.outcomes[i].Local = platform, local
	d.outcomes[i].Err = cause.Error()
	var n int
	if strand {
		n = d.run.Strand(i, e.now())
		d.outcomes[i].State = workflow.Stranded
		e.tel.Inc("serve_workflow_stages_stranded_total", float64(n))
	} else {
		n = d.run.Drop(i, e.now())
		d.outcomes[i].State = workflow.Dropped
		e.tel.Inc("serve_workflow_stages_dropped_total", 1)
		e.tel.Inc("serve_workflow_stages_stranded_total", float64(n))
	}
	// Mark the cascaded closure in the outcome table so callers see which
	// stages went down with this one.
	if n > 0 {
		for j := range d.outcomes {
			if d.outcomes[j].State != workflow.Stranded && d.run.State(j) == workflow.Stranded {
				d.outcomes[j].State = workflow.Stranded
				d.outcomes[j].Err = "stranded by " + d.run.Stage(i).ID
			}
		}
	}
	d.mu.Unlock()
}

// WorkflowMakespanQuantile reads the engine-wide end-to-end makespan
// digest behind the serve_workflow_makespan_* gauges.
func (e *Engine) WorkflowMakespanQuantile(p float64) time.Duration {
	return e.wfMakespans.Quantile(p)
}
