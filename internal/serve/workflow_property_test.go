// workflow_property_test.go is the workflow arm of the model-checking
// harness: randomized DAG admission over a MultiCore pool set and a real
// object store, with the placement policy picking pools exactly as the
// sims and the live driver do. After every step the harness asserts the
// workflow-grade invariants on top of the PR 3 core ones:
//
//   - no stage dispatches before all of its input objects exist in the
//     store (outputs are written before dependents unlock);
//   - every workflow's ledger conserves — completed + dropped + stranded
//     equals admitted — at every step and after the end-of-sequence
//     close-out;
//   - a stage task's scheduler age is measured from its unlock time, not
//     from workflow arrival (Arrived == UnlockedAt, and the starvation
//     bound is checked against that arrival).
//
// The chaos arm mixes pool kills (with drive failure and inflight
// requeue, PR 8's fault model) into the same schedule.
package serve

import (
	"fmt"
	"testing"
	"time"

	"dscs/internal/csd"
	"dscs/internal/objstore"
	"dscs/internal/sched"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/trace"
	"dscs/internal/units"
	"dscs/internal/workflow"
)

// wfPropShapes are the graph shapes admissions draw from: a chain, a
// diamond fan-in, and a scatter fan-out.
var wfPropShapes = []string{
	"0s:a=x:;0s:b=x:a;0s:c=x:b",
	"0s:a=x:;0s:b=x:a;0s:c=x:a;0s:d=x:b,c",
	"0s:r=x:;0s:f0=x:r;0s:f1=x:r;0s:f2=x:r",
}

// wfPropRef ties a queued task back to its stage.
type wfPropRef struct {
	run *workflow.Run
	idx int
}

func wfPropStore(t testing.TB, drives int) *objstore.Store {
	t.Helper()
	var nodes []*objstore.Node
	for i := 0; i < drives; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("drive%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	s, err := ssd.New(ssd.SmartSSDClass())
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, &objstore.Node{ID: "ssd-0", Kind: objstore.PlainSSD, SSD: s})
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(propSeed))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// workflowPropertyRun executes one op sequence against fresh state; the
// caller's kinds argument to checkSequences selects whether chaos ops
// (kind 5) appear in the schedule.
func workflowPropertyRun(t *testing.T, specs []*trace.WorkflowSpec) func([]propOp) error {
	return func(ops []propOp) error {
		const pools = 3
		store := wfPropStore(t, pools)
		mc, err := NewMultiCore([]PoolSpec{
			{Name: "drive0", Class: sched.ClassDSCS, Workers: 1, QueueDepth: 4, Policy: sched.CriticalityPolicy{}},
			{Name: "drive1", Class: sched.ClassDSCS, Workers: 1, QueueDepth: 4, Policy: sched.CriticalityPolicy{}},
			{Name: "drive2", Class: sched.ClassDSCS, Workers: 1, QueueDepth: 4, Policy: sched.CriticalityPolicy{}},
		})
		if err != nil {
			return err
		}
		mc.SetWaitTuning(16, 4)
		poolOf := map[string]int{"drive0": 0, "drive1": 1, "drive2": 2}
		placer := &workflow.Placer{
			Pools: pools,
			Home: func(key string) int {
				node, _, ok := store.DSCSReplicaHealthy(key)
				if !ok {
					return -1
				}
				if p, ok := poolOf[node.ID]; ok {
					return p
				}
				return -1
			},
			Healthy: mc.Healthy, Idle: mc.Idle, Wait: mc.PricedWait,
		}

		now := time.Duration(0)
		nextTask, nextWF := 0, 0
		var runs []*workflow.Run
		dispatched := map[int]bool{}
		execs := make([][]sched.HybridTask, pools)

		conserve := func() error {
			if err := mc.Conservation(); err != nil {
				return err
			}
			for _, r := range runs {
				if err := r.Conservation(); err != nil {
					return err
				}
			}
			return nil
		}

		// submitStage places one unlocked stage and submits it; admission
		// refusal drops it (cascading), no healthy pool strands it.
		submitStage := func(r *workflow.Run, idx int) error {
			keys := r.InputKeys(idx)
			dom, domSize := keys[0], units.Bytes(-1)
			for _, k := range keys {
				if obj, ok := store.Lookup(k); ok && obj.Size > domSize {
					dom, domSize = k, obj.Size
				}
			}
			pl := placer.Place(dom)
			if pl.Pool < 0 {
				r.Strand(idx, now)
				return nil
			}
			task := sched.HybridTask{
				ID: nextTask, Arrived: r.UnlockedAt(idx), Payload: "x",
				CPUService: 40 * time.Millisecond, DSCSService: 8 * time.Millisecond,
				AccelFuncs: 1, Ref: wfPropRef{run: r, idx: idx},
			}
			nextTask++
			if !mc.SubmitTo(pl.Pool, task) {
				r.Drop(idx, now)
			}
			return nil
		}

		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // admit a workflow, seed its root inputs, submit roots
				spec := specs[op.a%len(specs)]
				r, err := workflow.NewRun(nextWF, now, spec)
				if err != nil {
					return err
				}
				nextWF++
				runs = append(runs, r)
				for _, i := range spec.Roots() {
					if _, _, err := store.PutAt(workflow.InputKey(r.ID(), spec.Stages[i].ID),
						1<<20, true, 0.5); err != nil {
						return err
					}
				}
				for _, i := range append([]int(nil), r.Start(now)...) {
					if err := submitStage(r, i); err != nil {
						return err
					}
				}
			case 1: // dispatch: inputs must exist, age runs from unlock
				pool := op.a % pools
				head, hadHead := mc.Pool(pool).queue.Head()
				got, ok := mc.Dispatch(pool, now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				ref := got.Ref.(wfPropRef)
				for _, k := range ref.run.InputKeys(ref.idx) {
					if _, ok := store.Lookup(k); !ok {
						return fmt.Errorf("stage %s of workflow %d dispatched before input %s exists",
							ref.run.Stage(ref.idx).ID, ref.run.ID(), k)
					}
				}
				if got.Arrived != ref.run.UnlockedAt(ref.idx) {
					return fmt.Errorf("stage %s aged from %v, want unlock time %v",
						ref.run.Stage(ref.idx).ID, got.Arrived, ref.run.UnlockedAt(ref.idx))
				}
				if err := agedPassedOver(head, hadHead, got, sched.ClassDSCS, now); err != nil {
					return err
				}
				execs[pool] = append(execs[pool], got)
			case 2: // complete: write the output, then unlock dependents
				pool := op.b % pools
				if len(execs[pool]) == 0 {
					break
				}
				i := op.a % len(execs[pool])
				task := execs[pool][i]
				execs[pool] = append(execs[pool][:i], execs[pool][i+1:]...)
				mc.Complete(pool, 1)
				ref := task.Ref.(wfPropRef)
				if _, _, err := store.PutAt(ref.run.OutputKey(ref.idx), 256<<10, true, 0.5); err != nil {
					return err
				}
				for _, j := range append([]int(nil), ref.run.Complete(ref.idx, now)...) {
					if err := submitStage(ref.run, j); err != nil {
						return err
					}
				}
			case 3: // advance the clock a long way (ages queue heads)
				now += time.Duration(op.a%2000) * time.Millisecond
			case 4: // steal toward a random pool
				moved := mc.Steal(op.a%pools, op.b%pools, 1+op.a%3)
				for _, tk := range moved {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d stolen after dispatch", tk.ID)
					}
				}
			case 5: // chaos: toggle a pool and its drive; requeue inflight
				pool := op.a % pools
				drive := fmt.Sprintf("drive%d", pool)
				if mc.Healthy(pool) {
					mc.FailPool(pool, now)
					if err := store.FailNode(drive); err != nil {
						return err
					}
					// Mid-flight executions return to the durable queue;
					// their re-dispatch is legitimate, not a double.
					for _, tk := range execs[pool] {
						delete(dispatched, tk.ID)
					}
					mc.Requeue(pool, execs[pool])
					execs[pool] = nil
				} else {
					mc.RecoverPool(pool, now)
					if err := store.RecoverNode(drive); err != nil {
						return err
					}
				}
			}
			if err := conserve(); err != nil {
				return err
			}
		}

		// Close-out: whatever is still open strands, and every workflow
		// must settle with a balanced ledger.
		for _, r := range runs {
			r.StrandRemaining(now)
			if !r.Settled() {
				return fmt.Errorf("workflow %d never settled", r.ID())
			}
			if r.Completed()+r.DroppedCount()+r.StrandedCount() != r.Len() {
				return fmt.Errorf("workflow %d ledger: %d+%d+%d != %d", r.ID(),
					r.Completed(), r.DroppedCount(), r.StrandedCount(), r.Len())
			}
		}
		return conserve()
	}
}

func wfPropSpecs(t *testing.T) []*trace.WorkflowSpec {
	t.Helper()
	specs := make([]*trace.WorkflowSpec, len(wfPropShapes))
	for i, s := range wfPropShapes {
		spec, err := trace.ParseWorkflowSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = spec
	}
	return specs
}

// TestWorkflowPropertyHarness model-checks randomized DAG submission over
// the three-drive pool set with locality placement live.
func TestWorkflowPropertyHarness(t *testing.T) {
	checkSequences(t, 60, 5, workflowPropertyRun(t, wfPropSpecs(t)))
}

// TestWorkflowChaosPropertyHarness mixes pool/drive kills and recoveries
// into the same schedules: the ledgers must balance through requeues,
// dead-home fallback placement, and end-of-sequence close-out.
func TestWorkflowChaosPropertyHarness(t *testing.T) {
	checkSequences(t, 60, 6, workflowPropertyRun(t, wfPropSpecs(t)))
}
