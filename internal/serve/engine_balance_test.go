package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/workload"
)

// TestEngineQueueDelayGaugesLive pins the wait observatory's telemetry
// contract: the serve_queue_delay_{p50,p95,p99}{platform,class} gauges are
// registered at construction (so /metrics shows the observatory before any
// traffic) and carry real quantiles once requests have been served.
func TestEngineQueueDelayGaugesLive(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rendered := eng.Telemetry().Render()
	for _, name := range []string{
		"serve_queue_delay_p50{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p95{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p99{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p95{platform=Baseline (CPU),class=cpu}",
	} {
		if !strings.Contains(rendered, name) {
			t.Errorf("gauge %q not registered at construction", name)
		}
	}
	bench := workload.BySlug("asset-damage")
	if _, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5}); err != nil {
		t.Fatal(err)
	}
	dg := eng.WaitObservatory().Digest("DSCS-Serverless", "dscs")
	if dg == nil || dg.Count() != 1 {
		t.Fatalf("wait digest after one request = %v, want one observation", dg)
	}
}

// TestEngineAdaptiveBalanceRebalances is the deterministic wait-keyed
// rebalancing scenario, mirroring TestEngineStealRebalances with no static
// threshold at all: every drive is held so the single DSCS worker stalls
// mid-execution, its first dispatch warms the wait digest (warmup 1), and
// queued work behind it must then migrate to the idle CPU pool purely on
// the adopted wait-p95 gap — the CPU pool has never waited, so any warmed
// DSCS wait latches the gap. Whether a given request moves by drain-time
// steal or submit-time spill depends on which the scheduler reaches first;
// the test asserts the rebalance happened and the books stayed straight.
func TestEngineAdaptiveBalanceRebalances(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 1, QueueDepth: 64, MaxBatch: 2,
		AdaptiveBalance: true, EstimateWarmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bench := workload.BySlug("asset-damage")
	tel := eng.Telemetry()
	rebalanced := func() float64 {
		return tel.Counter("serve_steal_total") + tel.Counter("serve_spillover_total")
	}

	var held []int
	for range eng.drives.ids {
		idx, _ := eng.drives.acquire()
		if idx < 0 {
			t.Fatal("could not hold a drive")
		}
		held = append(held, idx)
	}

	var wg sync.WaitGroup
	results := make(chan Invocation, 2)
	submitDSCS := func(collect bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				t.Error(err)
				return
			}
			if collect {
				results <- inv
			}
		}()
	}
	// Stage: one request dispatched (stalled on the drives), then two more
	// behind it. The stall means the DSCS pool records exactly one wait —
	// enough, at warmup 1, to latch the gap against the never-waited CPU
	// pool and move queued work over without any depth threshold.
	submitDSCS(false)
	waitFor(t, "first request dispatched", func() bool { return dscsBusy(eng) == 1 })
	submitDSCS(true)
	submitDSCS(true)
	waitFor(t, "wait-keyed rebalance", func() bool { return rebalanced() >= 1 })

	for _, idx := range held {
		eng.drives.release(idx)
	}
	onCPU := 0
	for i := 0; i < 2; i++ {
		select {
		case inv := <-results:
			if inv.Platform == "Baseline (CPU)" {
				onCPU++
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for the staged requests")
		}
	}
	wg.Wait()
	if onCPU < 1 {
		t.Errorf("no staged request was served by the CPU pool (%g rebalanced)", rebalanced())
	}
	if got := rebalanced(); got < 1 || got > 2 {
		t.Errorf("rebalanced %g requests, want 1 or 2", got)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("serve_completed_total"); got != 3 {
		t.Errorf("serve_completed_total = %g, want 3", got)
	}
	// The depth gauges must refresh as rebalanced work leaves and enters
	// queues: with everything served, both read empty.
	if got := tel.Gauge("serve_queue_depth{platform=DSCS-Serverless}"); got != 0 {
		t.Errorf("donor depth gauge = %g after the drain, want 0", got)
	}
	if got := tel.Gauge("serve_queue_depth{platform=Baseline (CPU)}"); got != 0 {
		t.Errorf("thief depth gauge = %g after the drain, want 0", got)
	}
}

// TestEngineAdaptiveBalance64WayConservation is the satellite race test:
// adaptive balance (no static thresholds), the global SLO-aware former, and
// adaptive estimates all armed at once under 64-way concurrent load with
// mixed shapes. Bookkeeping must stay conserved, every accepted request
// completes exactly once even when it spills and is then stolen, and the
// rebalancing counters stay internally consistent. Run under -race in CI.
func TestEngineAdaptiveBalance64WayConservation(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 2, QueueDepth: 8, MaxBatch: 4,
		BatchLinger:       2 * time.Millisecond,
		GlobalBatch:       true,
		BatchSLO:          8 * time.Millisecond,
		AdaptiveBalance:   true,
		AdaptiveEstimates: true,
		EstimateWarmup:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 64
	benches := []*workload.Benchmark{workload.BySlug("translation"), workload.BySlug("chatbot")}
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, full := 0, 0
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			opt := faas.Options{Quantile: 0.5}
			if i%4 == 0 {
				opt.Batch = 2
			}
			inv, err := eng.Submit("DSCS-Serverless", benches[i%2], opt)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
				if inv.Platform != "DSCS-Serverless" && inv.Platform != "Baseline (CPU)" {
					t.Errorf("served on unknown pool %q", inv.Platform)
				}
			case errors.Is(err, ErrQueueFull):
				full++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served+full != n {
		t.Fatalf("lost requests: %d served + %d throttled != %d", served, full, n)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_completed_total"); got != float64(served) {
		t.Errorf("serve_completed_total = %g, want %d", got, served)
	}
	for _, family := range []string{"serve_spillover_total", "serve_steal_total"} {
		total := tel.Counter(family)
		var labeled float64
		for _, from := range []string{"DSCS-Serverless", "Baseline (CPU)"} {
			for _, to := range []string{"DSCS-Serverless", "Baseline (CPU)"} {
				labeled += tel.Counter(family + "{from=" + from + ",to=" + to + "}")
			}
		}
		if labeled != total {
			t.Errorf("%s labels sum to %g, total is %g", family, labeled, total)
		}
		if total > float64(served) {
			t.Errorf("%s = %g exceeds %d accepted requests", family, total, served)
		}
	}
	// Every served request recorded its queue delay against exactly one
	// pool: the wait observatory's counts must sum to the completions.
	var waits int64
	for _, platform := range []string{"DSCS-Serverless", "Baseline (CPU)"} {
		for _, class := range []string{"dscs", "cpu"} {
			if dg := eng.WaitObservatory().Digest(platform, class); dg != nil {
				waits += dg.Count()
			}
		}
	}
	if waits != int64(served) {
		t.Errorf("wait observatory recorded %d delays for %d served requests", waits, served)
	}
}
