// fault.go is the live engine's failure model: kill and recover pools and
// drives (directly, or on a schedule via Options.Faults), and hedge
// executions that outlive their adopted service-p95. The discrete-event
// simulations drive the same PoolCore/MultiCore failure state from their
// virtual clocks; this file is the wall-clock half — time.AfterFunc
// injection timers and a real second dispatch racing the first.

//dscslint:allow clockcheck wall-clock half by design: fault-injection timers and hedge deadlines race real executions

package serve

import (
	"fmt"
	"time"

	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/sched"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// FailPool kills a platform pool: its workers stop dispatching, in-flight
// batches requeue at completion instead of delivering, and its queue keeps
// admitting (durable) until peers steal the backlog or RecoverPool brings
// the pool back. The wait digest and every balance latch touching the pool
// are invalidated — a dead pool's recorded waits price nothing, and stale
// hysteresis must not survive into its next life. Idempotent.
func (e *Engine) FailPool(platformName string) error {
	p, ok := e.pools[platformName]
	if !ok {
		return fmt.Errorf("serve: unknown platform %q", platformName)
	}
	p.mu.Lock()
	if p.closed || !p.core.Healthy() {
		p.mu.Unlock()
		return nil
	}
	p.core.Fail(e.now())
	p.deadBit.Store(true)
	if p.core.Lifecycle() != nil {
		// Quench emptied the warming/idle ledgers; republish the gauges and
		// let armLifecycleLocked see there is no next event to arm.
		if p.lifeTimer != nil {
			p.lifeTimer.Stop()
		}
		p.timerAt = -1
		e.syncWorkersLocked(p)
	}
	p.mu.Unlock()
	e.cFaults.Inc(1)
	e.waitObs.Forget(platformName)
	e.balanceMu.Lock()
	for k, l := range e.latches {
		if k[0] == platformName || k[1] == platformName {
			l.Reset()
		}
	}
	e.balanceMu.Unlock()
	// Wake everything: the dead pool's own workers must observe the death
	// (and park), and peers have a backlog to rescue.
	for _, d := range e.pools {
		d.cond.Broadcast()
	}
	return nil
}

// RecoverPool brings a failed pool back: capacity accounting never moved
// (the durable half of the split), so the pool resumes at its pre-fault
// size — an elastic pool re-warms through cold starts, a fixed pool
// dispatches immediately. Idempotent.
func (e *Engine) RecoverPool(platformName string) error {
	p, ok := e.pools[platformName]
	if !ok {
		return fmt.Errorf("serve: unknown platform %q", platformName)
	}
	p.mu.Lock()
	if p.closed || p.core.Healthy() {
		p.mu.Unlock()
		return nil
	}
	p.core.Recover(e.now())
	p.deadBit.Store(false)
	if p.core.Lifecycle() != nil {
		// Unquench restarted warming; arm the timer at its ready instant.
		e.syncWorkersLocked(p)
	}
	p.mu.Unlock()
	for _, d := range e.pools {
		d.cond.Broadcast()
	}
	return nil
}

// PoolHealthy reports a pool's health bit (false for unknown names).
func (e *Engine) PoolHealthy(platformName string) bool {
	p, ok := e.pools[platformName]
	if !ok {
		return false
	}
	return e.poolHealthy(p)
}

// FailDrive marks a storage node down in every store that knows it: reads
// fail over to surviving replicas, and DSCS executions whose input lived
// there fall back to conventional execution inside the runner.
func (e *Engine) FailDrive(id string) error {
	found := false
	for _, s := range e.stores() {
		if err := s.FailNode(id); err == nil {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("serve: unknown drive %q", id)
	}
	e.cFaults.Inc(1)
	return nil
}

// RecoverDrive marks a storage node healthy again.
func (e *Engine) RecoverDrive(id string) error {
	found := false
	for _, s := range e.stores() {
		if err := s.RecoverNode(id); err == nil {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("serve: unknown drive %q", id)
	}
	return nil
}

// stores lists the distinct object stores behind the pools' runners.
func (e *Engine) stores() []*objstore.Store {
	seen := make(map[*objstore.Store]bool, len(e.pools))
	var out []*objstore.Store
	for _, p := range e.pools {
		if s := p.runner.Store; s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// hasDrive reports whether any store knows the node.
func (e *Engine) hasDrive(id string) bool {
	for _, s := range e.stores() {
		for _, n := range s.Nodes() {
			if n.ID == id {
				return true
			}
		}
	}
	return false
}

// validateFaults rejects a fault script naming targets the engine does not
// have — a typo'd script must fail at construction, not silently no-op at
// its fire time.
func (e *Engine) validateFaults(evs []trace.FaultEvent) error {
	for _, ev := range evs {
		if ev.Kind.Pool() {
			if _, ok := e.pools[ev.Target]; !ok {
				return fmt.Errorf("serve: fault script targets unknown platform %q", ev.Target)
			}
			continue
		}
		if !e.hasDrive(ev.Target) {
			return fmt.Errorf("serve: fault script targets unknown drive %q", ev.Target)
		}
	}
	return nil
}

// applyFault is the injection-timer callback. Targets were validated at
// construction and the fail/recover paths are idempotent and closed-safe,
// so errors here are impossible by construction.
func (e *Engine) applyFault(ev trace.FaultEvent) {
	switch ev.Kind {
	case trace.FaultPoolDown:
		_ = e.FailPool(ev.Target)
	case trace.FaultPoolUp:
		_ = e.RecoverPool(ev.Target)
	case trace.FaultDriveDown:
		_ = e.FailDrive(ev.Target)
	case trace.FaultDriveUp:
		_ = e.RecoverDrive(ev.Target)
	}
}

// execHedged runs one coalesced batch with tail-latency hedging: if the
// primary execution outlives HedgeFactor x the adopted service-p95 for
// this benchmark on this pool (static estimate until the digest warms —
// Digest.Adopt hysteresis, the same pricing the batch former uses), a
// second dispatch races it on a healthy peer's runner. First completion
// wins; the loser finishes into a buffered channel and is discarded. The
// hedge borrows the peer's runner only — queue accounting stays on the
// primary pool, which still owes exactly one Complete for this batch.
func (e *Engine) execHedged(p *pool, b *workload.Benchmark, opt faas.Options, payload string) (faas.Result, error) {
	if e.opt.HedgeFactor < 1 {
		return e.exec(p.runner, b, opt)
	}
	cpuSvc, dscsSvc, _ := e.estimate(b)
	static := cpuSvc
	if p.class == sched.ClassDSCS {
		static = dscsSvc
	}
	threshold := time.Duration(float64(e.obs.ServiceQuantile(payload, p.name, static, 0.95)) * e.opt.HedgeFactor)
	if threshold <= 0 {
		return e.exec(p.runner, b, opt)
	}
	type hedgeResult struct {
		res   faas.Result
		err   error
		hedge bool
	}
	// Buffered to both goroutines' capacity: the loser sends and exits, no
	// receiver required.
	ch := make(chan hedgeResult, 2)
	go func() {
		res, err := e.exec(p.runner, b, opt)
		ch <- hedgeResult{res, err, false}
	}()
	timer := time.NewTimer(threshold)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.res, r.err
	case <-timer.C:
	}
	peer := e.hedgePeer(p)
	if peer == nil {
		r := <-ch
		return r.res, r.err
	}
	e.cHedgesFired.Inc(1)
	go func() {
		res, err := e.exec(peer.runner, b, opt)
		ch <- hedgeResult{res, err, true}
	}()
	r := <-ch
	if r.hedge {
		e.cHedgesWon.Inc(1)
	}
	return r.res, r.err
}

// hedgePeer picks the pool a hedge runs on: the first healthy CPU-class
// pool other than the primary (name order — CPU capacity needs no drive
// arbitration, so a hedge there never contends with committed DSCS work),
// falling back to a healthy DSCS pool whose execution runs unarbitrated.
func (e *Engine) hedgePeer(p *pool) *pool {
	for _, c := range e.spillCPU {
		if c != p && e.poolHealthy(c) {
			return c
		}
	}
	for _, c := range e.dscsPools {
		if c != p && e.poolHealthy(c) {
			return c
		}
	}
	return nil
}
