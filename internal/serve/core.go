// core.go is the clock-free half of the serving engine: a pure
// admission/dispatch state machine over the bounded queue and pluggable
// scheduling policies of internal/sched. It owns no goroutines and no
// clocks, which is the point — the live Engine drives it from worker
// goroutines under a lock, and the at-scale discrete-event simulation
// (internal/cluster) drives the very same implementation from its virtual
// clock, so the simulated rack and the real HTTP path share one scheduler.
package serve

import (
	"fmt"

	"dscs/internal/sched"
)

// PoolCore is the scheduling state machine for one worker pool: a bounded
// HybridQueue drained by a pluggable policy into a fixed set of
// run-to-completion workers. Not safe for concurrent use on its own; the
// Engine serializes access, and the simulator is single-threaded.
type PoolCore struct {
	queue  *sched.HybridQueue
	policy sched.Policy
	class  sched.InstanceClass

	free, total int
	// running counts tasks currently executing. With batching it can
	// exceed busy workers: one worker serves every coalesced task.
	running   int
	submitted int
	completed int
}

// NewPoolCore builds a pool of the given worker count and admission bound.
// A nil policy defaults to the paper's deployed FCFS.
func NewPoolCore(workers, queueDepth int, class sched.InstanceClass, policy sched.Policy) (*PoolCore, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("serve: non-positive worker count")
	}
	q, err := sched.NewHybridQueue(queueDepth)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = sched.FCFSPolicy{}
	}
	return &PoolCore{
		queue: q, policy: policy, class: class,
		free: workers, total: workers,
	}, nil
}

// Policy returns the pool's scheduling policy.
func (c *PoolCore) Policy() sched.Policy { return c.policy }

// Submit admits a task; it reports false (drop) at the queue bound.
func (c *PoolCore) Submit(t sched.HybridTask) bool {
	if !c.queue.Submit(t) {
		return false
	}
	c.submitted++
	return true
}

// Dispatch hands the policy-selected task to a free worker, if both exist.
func (c *PoolCore) Dispatch() (sched.HybridTask, bool) {
	if c.free == 0 {
		return sched.HybridTask{}, false
	}
	t, ok := c.policy.Pick(c.queue, c.class)
	if !ok {
		return sched.HybridTask{}, false
	}
	c.free--
	c.running++
	return t, true
}

// Coalesce removes up to max additional queued tasks matching the
// predicate and assigns them to the worker that just dispatched — the
// request-batching step. It must follow a successful Dispatch.
func (c *PoolCore) Coalesce(max int, match func(sched.HybridTask) bool) []sched.HybridTask {
	taken := c.queue.TakeWhere(max, match)
	c.running += len(taken)
	return taken
}

// Complete retires n tasks (one execution, n coalesced requests) and frees
// their worker.
func (c *PoolCore) Complete(n int) {
	if c.free < c.total {
		c.free++
	}
	c.running -= n
	c.completed += n
}

// QueueLen reports queue occupancy.
func (c *PoolCore) QueueLen() int { return c.queue.Len() }

// Dropped counts admission rejections.
func (c *PoolCore) Dropped() int { return c.queue.Dropped() }

// Busy reports occupied workers.
func (c *PoolCore) Busy() int { return c.total - c.free }

// Workers reports the pool size.
func (c *PoolCore) Workers() int { return c.total }

// Running reports tasks currently executing (>= Busy with batching).
func (c *PoolCore) Running() int { return c.running }

// Completed reports retired tasks.
func (c *PoolCore) Completed() int { return c.completed }

// Conservation checks the bookkeeping invariant: every admitted task is
// queued, executing, or completed.
func (c *PoolCore) Conservation() error {
	accounted := c.queue.Len() + c.running + c.completed
	if c.submitted != accounted {
		return fmt.Errorf("serve: conservation violated: %d submitted != %d queued + %d running + %d completed",
			c.submitted, c.queue.Len(), c.running, c.completed)
	}
	return nil
}
