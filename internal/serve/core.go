// core.go is the clock-free half of the serving engine: a pure
// admission/dispatch state machine over the bounded queue and pluggable
// scheduling policies of internal/sched. It owns no goroutines and no
// clocks, which is the point — the live Engine drives it from worker
// goroutines under a lock, and the at-scale discrete-event simulation
// (internal/cluster) drives the very same implementation from its virtual
// clock, so the simulated rack and the real HTTP path share one scheduler.

package serve

import (
	"fmt"
	"time"

	"dscs/internal/sched"
)

// PoolCore is the scheduling state machine for one worker pool: a bounded
// HybridQueue drained by a pluggable policy into a fixed set of
// run-to-completion workers. Not safe for concurrent use on its own; the
// Engine serializes access, and the simulator is single-threaded.
type PoolCore struct {
	queue  *sched.HybridQueue
	policy sched.Policy
	class  sched.InstanceClass

	free, total int
	// running counts tasks currently executing. With batching it can
	// exceed busy workers: one worker serves every coalesced task.
	running   int
	submitted int
	completed int
	// overCompleted counts Complete calls that arrived with every worker
	// already free — a caller bug (double-complete) that would otherwise
	// cancel out of the conservation sum and hide silently.
	overCompleted int
	// sharedQueue marks a core whose queue (and submission accounting) is
	// owned by a HybridCore; its per-core Conservation skips the
	// submission balance, which only holds across the class pair.
	sharedQueue bool
	// former, when attached, gates DispatchFormed: the queue-level batch
	// former that groups arrivals ahead of dispatch.
	former *BatchFormer
	// stolenIn/stolenOut count tasks moved by the rebalancing pull path.
	stolenIn, stolenOut int
	// scratch is the reused extraction buffer behind Coalesce and
	// DispatchFormed's due-group pull, so the batching hot path never
	// allocates. Serialized by whatever serializes the core.
	scratch []sched.HybridTask
	// lc, when attached, makes the pool's capacity elastic: total/free
	// track the lifecycle's warm count instead of staying fixed at
	// construction. Nil keeps the fixed-pool behavior bit-identical.
	lc *Lifecycle
	// dead marks a browned-out pool. The queue is the durable half (it
	// keeps admitting and holding work, like a safekeeper's log); the
	// workers are the ephemeral half — dispatch is gated off and in-flight
	// work is expected back via Requeue. Capacity accounting (total/free)
	// is untouched so recovery resumes at the pre-fault size.
	dead bool
	// faults counts Fail transitions; requeued counts tasks returned to
	// the queue by Requeue.
	faults, requeued int
	// overRequeued counts Requeue calls that arrived with every worker
	// already free — a caller bug (double-requeue of one execution) that
	// Conservation surfaces instead of clamping away, mirroring
	// overCompleted.
	overRequeued int
	// hedging counts workers currently occupied by hedged duplicate
	// dispatches. A hedge borrows a free worker without touching the
	// submission ledger: the original pool stays the accounting owner of
	// the request, so Conservation sums are unaffected. overHedged counts
	// HedgeDone calls with no hedge outstanding.
	hedging, hedges, overHedged int
}

// NewPoolCore builds a pool of the given worker count and admission bound.
// A nil policy defaults to the paper's deployed FCFS.
func NewPoolCore(workers, queueDepth int, class sched.InstanceClass, policy sched.Policy) (*PoolCore, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("serve: non-positive worker count")
	}
	q, err := sched.NewHybridQueue(queueDepth)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = sched.FCFSPolicy{}
	}
	return &PoolCore{
		queue: q, policy: policy, class: class,
		free: workers, total: workers,
	}, nil
}

// Policy returns the pool's scheduling policy.
func (c *PoolCore) Policy() sched.Policy { return c.policy }

// AttachLifecycle makes the pool's capacity elastic: from now on total
// and free track the lifecycle's warm slot count. The pool must be idle
// (nothing dispatched yet) — capacity changes hand busy workers over
// only through AdvanceLifecycle, which never suspends an occupied slot.
func (c *PoolCore) AttachLifecycle(lc *Lifecycle, now time.Duration) error {
	if lc == nil {
		return fmt.Errorf("serve: nil lifecycle")
	}
	if c.Busy() != 0 {
		return fmt.Errorf("serve: lifecycle attached to a busy pool (%d busy)", c.Busy())
	}
	c.lc = lc
	c.total = lc.advance(now, 0)
	c.free = c.total
	return nil
}

// Lifecycle returns the attached lifecycle (nil for a fixed pool).
func (c *PoolCore) Lifecycle() *Lifecycle { return c.lc }

// AdvanceLifecycle folds elapsed time into the attached lifecycle —
// warming slots come ready, lingering slots suspend — and resizes the
// pool to the resulting warm capacity, preserving busy workers. It
// reports whether capacity changed (the caller re-drives dispatch and
// refreshes gauges when it did). A fixed pool is a no-op. Callers drive
// it at every scheduling event on the same clock they pass Dispatch.
func (c *PoolCore) AdvanceLifecycle(now time.Duration) bool {
	if c.lc == nil {
		return false
	}
	warm := c.lc.advance(now, c.Busy())
	if warm == c.total {
		return false
	}
	c.free += warm - c.total
	c.total = warm
	return true
}

// ScaleTo forwards a new desired capacity to the attached lifecycle at
// now and applies any immediate resize (zero cold start, or a shrink
// whose linger already expired). A fixed pool ignores it.
func (c *PoolCore) ScaleTo(desired int, now time.Duration) bool {
	if c.lc == nil {
		return false
	}
	c.lc.advance(now, c.Busy())
	c.lc.SetDesired(desired, now)
	return c.AdvanceLifecycle(now)
}

// Fail browns the pool out at now: dispatch (and hedging, and stealing
// into it) stops, the queue keeps admitting and holding work, and an
// attached lifecycle is quenched — pending warming slots are cancelled so
// no timer resurrects capacity into a dead pool, and idle slots stop
// lingering toward suspension. Idempotent while dead.
func (c *PoolCore) Fail(now time.Duration) {
	if c.dead {
		return
	}
	c.dead = true
	c.faults++
	if c.lc != nil {
		c.AdvanceLifecycle(now)
		c.lc.Quench(now)
		c.AdvanceLifecycle(now)
	}
}

// Recover ends a brown-out at now. An attached lifecycle is unquenched:
// capacity lost to the quench re-warms toward the desired size, paying
// cold starts. Idempotent while healthy.
func (c *PoolCore) Recover(now time.Duration) {
	if !c.dead {
		return
	}
	c.dead = false
	if c.lc != nil {
		c.lc.Unquench(now)
		c.AdvanceLifecycle(now)
	}
}

// Healthy reports whether the pool is dispatching (not browned out).
func (c *PoolCore) Healthy() bool { return !c.dead }

// Faults counts Fail transitions.
func (c *PoolCore) Faults() int { return c.faults }

// Requeued counts tasks returned to the queue by Requeue.
func (c *PoolCore) Requeued() int { return c.requeued }

// Requeue returns one execution's in-flight tasks to the queue — the
// at-most-once completion path for work orphaned by a killed worker. The
// execution's worker is freed (guarded exactly like Complete: a second
// Requeue of the same execution is counted, not clamped) and the tasks
// re-enter by (Arrived, ID), bypassing the admission bound — a fault must
// never turn into a drop. The submission ledger is untouched: the tasks
// were admitted once and are still owed exactly one completion.
// A batch former attached to the pool is NOT re-observed here; callers
// that form batches re-Observe the tasks themselves (weights differ by
// caller).
func (c *PoolCore) Requeue(tasks []sched.HybridTask) {
	if len(tasks) == 0 {
		return
	}
	if c.free < c.total {
		c.free++
	} else {
		c.overRequeued++
	}
	c.running -= len(tasks)
	c.requeued += len(tasks)
	c.queue.RestoreAll(tasks)
}

// Hedge borrows a free worker for a hedged duplicate dispatch. It fails
// on a dead pool or with no worker free. The borrow is outside the
// submission ledger — the original pool remains the accounting owner of
// the hedged request — so Conservation's sums never see it; only the
// worker occupancy does, released by HedgeDone whether the hedge won or
// lost.
func (c *PoolCore) Hedge() bool {
	if c.dead || c.free == 0 {
		return false
	}
	c.free--
	c.hedging++
	c.hedges++
	return true
}

// HedgeDone releases a worker borrowed by Hedge. A release with no hedge
// outstanding is a caller bug surfaced by Conservation.
func (c *PoolCore) HedgeDone() {
	if c.hedging <= 0 {
		c.overHedged++
		return
	}
	c.hedging--
	c.free++
}

// Hedges counts Hedge borrows granted.
func (c *PoolCore) Hedges() int { return c.hedges }

// AttachFormer gives the pool a queue-level batch former; DispatchFormed
// consults it. Callers must then Observe every admitted task on it.
func (c *PoolCore) AttachFormer(f *BatchFormer) { c.former = f }

// Former returns the attached batch former (nil when none).
func (c *PoolCore) Former() *BatchFormer { return c.former }

// Submit admits a task; it reports false (drop) at the queue bound.
//
//dscslint:hotpath
func (c *PoolCore) Submit(t sched.HybridTask) bool {
	if !c.queue.Submit(t) {
		return false
	}
	c.submitted++
	return true
}

// Dispatch hands the policy-selected task to a free worker, if both exist.
// now is the caller's clock (wall time on the live engine, virtual time in
// the simulator) on the same basis as HybridTask.Arrived; the policies use
// it for starvation aging.
//
//dscslint:hotpath
func (c *PoolCore) Dispatch(now time.Duration) (sched.HybridTask, bool) {
	if c.free == 0 || c.dead {
		return sched.HybridTask{}, false
	}
	t, ok := c.policy.Pick(c.queue, c.class, now)
	if !ok {
		return sched.HybridTask{}, false
	}
	c.free--
	c.running++
	return t, true
}

// DispatchFormed is Dispatch gated by the attached BatchFormer: the
// policy's pick dispatches only when its forming group is ready at now (it
// reached the target size, lingered out, or ran out of deadline slack).
// An unready pick is restored to the queue; if another payload's group is
// due, its oldest member dispatches instead. When nothing dispatches, wake
// (valid when wakeOK) is the earliest instant a forming group comes due,
// so the caller knows when to drive the core again — a timed wait on the
// engine, a scheduled event in the simulation. Without an attached former
// it behaves exactly like Dispatch.
//
//dscslint:hotpath
func (c *PoolCore) DispatchFormed(now time.Duration) (t sched.HybridTask, ok bool, wake time.Duration, wakeOK bool) {
	if c.former == nil {
		t, ok = c.Dispatch(now)
		return t, ok, 0, false
	}
	if c.free == 0 || c.dead {
		return sched.HybridTask{}, false, 0, false
	}
	pick, ok := c.policy.Pick(c.queue, c.class, now)
	if !ok {
		return sched.HybridTask{}, false, 0, false
	}
	if c.former.Ready(pick.Payload, now) {
		c.former.Close(pick.Payload)
		c.free--
		c.running++
		return pick, true, 0, false
	}
	c.queue.Restore(pick)
	// The policy's preference is still forming; serve a group that is due
	// instead, oldest member first. A group whose members all left the
	// queue by another door is stale — drop it and look again.
	for {
		payload, due := c.former.DuePayload(now)
		if !due {
			break
		}
		taken := c.queue.TakeWhereInto(c.scratch[:0], 1, func(x sched.HybridTask) bool { return x.Payload == payload })
		c.scratch = taken
		if len(taken) == 0 {
			c.former.Drop(payload) // stale group: no queued member left
			continue
		}
		c.former.Close(payload)
		c.free--
		c.running++
		return taken[0], true, 0, false
	}
	wake, wakeOK = c.former.NextDue()
	return sched.HybridTask{}, false, wake, wakeOK
}

// StealFrom moves up to max of donor's oldest queued tasks onto c's queue
// — the pull half of queue rebalancing, complementing submit-time
// spillover with drain-time balance. Tasks keep their Arrived instants, so
// the starvation aging bound (sched.AgingMultiple) follows them across
// classes, and they merge into c's queue by arrival order so the thief's
// oldest-first invariant holds too. Submission accounting moves with the
// tasks: the donor no longer counts them, the thief does, and a donor-side
// batch former sheds them. The move is capped at the thief's queue room —
// a rebalance must never turn into a drop. It returns the moved tasks.
//
//dscslint:hotpath
func (c *PoolCore) StealFrom(donor *PoolCore, max int) []sched.HybridTask {
	if donor == nil || donor == c || donor.queue == c.queue || c.dead {
		// A dead thief must not import work into a grave; a dead donor is
		// fine — stealing from it is how its backlog gets rescued.
		return nil
	}
	if room := c.queue.Room(); max > room {
		max = room
	}
	moved := donor.queue.TakePrefix(max, nil)
	for _, t := range moved {
		c.queue.Restore(t)
		if donor.former != nil {
			donor.former.Shed(t.Payload, 1)
		}
	}
	donor.submitted -= len(moved)
	donor.stolenOut += len(moved)
	c.submitted += len(moved)
	c.stolenIn += len(moved)
	return moved
}

// StolenIn and StolenOut count tasks moved by the rebalancing pull path.
func (c *PoolCore) StolenIn() int  { return c.stolenIn }
func (c *PoolCore) StolenOut() int { return c.stolenOut }

// Coalesce removes up to max additional queued tasks matching the
// predicate and assigns them to the worker that just dispatched — the
// request-batching step. It must follow a successful Dispatch. The
// returned slice is the core's reused scratch: it stays valid until the
// next Coalesce or DispatchFormed on this core, so callers consume it
// before driving the core again (every call site does — they run under
// the same lock that serializes the core).
//
//dscslint:hotpath
func (c *PoolCore) Coalesce(max int, match func(sched.HybridTask) bool) []sched.HybridTask {
	taken := c.queue.TakeWhereInto(c.scratch[:0], max, match)
	c.scratch = taken
	c.running += len(taken)
	return taken
}

// Complete retires n tasks (one execution, n coalesced requests) and frees
// their worker. A Complete with no worker busy is a caller bug: it is
// counted as an over-completion and surfaced by Conservation instead of
// being silently clamped away.
func (c *PoolCore) Complete(n int) {
	if c.free < c.total {
		c.free++
	} else {
		c.overCompleted++
	}
	c.running -= n
	c.completed += n
}

// QueueLen reports queue occupancy.
func (c *PoolCore) QueueLen() int { return c.queue.Len() }

// QueueFull reports whether the next Submit would drop.
func (c *PoolCore) QueueFull() bool { return c.queue.Full() }

// Dropped counts admission rejections.
func (c *PoolCore) Dropped() int { return c.queue.Dropped() }

// Busy reports occupied workers.
func (c *PoolCore) Busy() int { return c.total - c.free }

// Workers reports the pool size.
func (c *PoolCore) Workers() int { return c.total }

// Running reports tasks currently executing (>= Busy with batching).
func (c *PoolCore) Running() int { return c.running }

// Completed reports retired tasks.
func (c *PoolCore) Completed() int { return c.completed }

// OverCompleted counts Complete calls that found every worker already free.
func (c *PoolCore) OverCompleted() int { return c.overCompleted }

// Conservation checks the bookkeeping invariant: every admitted task is
// queued, executing, completed, or requeued-then-owed-a-completion —
// exactly once. No Complete arrived without a matching Dispatch, no
// execution retired more tasks than were assigned to it, no execution was
// requeued twice, and hedge borrows all went back.
func (c *PoolCore) Conservation() error {
	if c.overCompleted > 0 {
		return fmt.Errorf("serve: conservation violated: %d completions with no busy worker (double-complete)",
			c.overCompleted)
	}
	if c.overRequeued > 0 {
		return fmt.Errorf("serve: conservation violated: %d requeues with no busy worker (double-requeue)",
			c.overRequeued)
	}
	if c.overHedged > 0 {
		return fmt.Errorf("serve: conservation violated: %d hedge releases with no hedge outstanding", c.overHedged)
	}
	if c.running < 0 {
		return fmt.Errorf("serve: conservation violated: %d tasks running (over-complete)", c.running)
	}
	if c.free > c.total {
		return fmt.Errorf("serve: conservation violated: %d workers free of %d total", c.free, c.total)
	}
	if c.sharedQueue {
		return nil // the submission balance is checked by the HybridCore
	}
	accounted := c.queue.Len() + c.running + c.completed
	if c.submitted != accounted {
		return fmt.Errorf("serve: conservation violated: %d submitted != %d queued + %d running + %d completed",
			c.submitted, c.queue.Len(), c.running, c.completed)
	}
	return nil
}

// HybridCore is the two-class scheduling state machine of the paper's
// Section 5.3 heterogeneous pool. It replaces the retired
// sched.HybridScheduler, so the discrete-event hybrid simulation
// (cluster.RunHybrid) and the live engine's single-class pools share the
// same pool-accounting code. Like PoolCore it owns no goroutines and no
// clock; callers inject now into Dispatch.
//
// It runs in one of two layouts. The classic layout (NewHybridCore) is one
// bounded queue drained by a pluggable policy into a CPU-class and a
// DSCS-class PoolCore — both classes see every queued task, so neither can
// idle while work waits. The split layout (NewSplitHybridCore) gives each
// class its own backlog, the shape of a real deployment where requests
// target the accelerated tier: SubmitTo lands work on one class's queue,
// Dispatch drains only a class's own backlog, and Steal is the pull-based
// rebalancing that lets an idle class drain the other's backlog instead of
// starving beside it.
type HybridCore struct {
	// queue is the shared admission queue in the classic layout; nil when
	// split, where each class PoolCore owns its own queue.
	queue *sched.HybridQueue
	split bool
	// multi backs the split layout: the two class pools are a two-member
	// MultiCore (cpu = pool 0, dscs = pool 1), so the N-pool generalization
	// and the classic hybrid pair share one implementation — including the
	// queue-delay digests every dispatch records.
	multi     *MultiCore
	cpu, dscs *PoolCore
	submitted int
}

// Split-layout pool indices within the backing MultiCore.
const (
	hybridCPUPool  = 0
	hybridDSCSPool = 1
)

// poolIndex maps a class to its MultiCore index in the split layout.
func poolIndex(class sched.InstanceClass) int {
	if class == sched.ClassDSCS {
		return hybridDSCSPool
	}
	return hybridCPUPool
}

// newPoolCoreOver builds a class pool over an externally owned queue. Zero
// workers is allowed here (a hybrid pool may have one empty class); the
// class simply never dispatches.
func newPoolCoreOver(q *sched.HybridQueue, workers int, class sched.InstanceClass, policy sched.Policy) *PoolCore {
	return &PoolCore{
		queue: q, policy: policy, class: class,
		free: workers, total: workers, sharedQueue: true,
	}
}

// NewHybridCore builds the heterogeneous pool. A nil policy defaults to the
// paper's deployed FCFS.
func NewHybridCore(cpuWorkers, dscsWorkers, queueDepth int, policy sched.Policy) (*HybridCore, error) {
	if cpuWorkers < 0 || dscsWorkers < 0 || cpuWorkers+dscsWorkers == 0 {
		return nil, fmt.Errorf("serve: empty hybrid pool")
	}
	q, err := sched.NewHybridQueue(queueDepth)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = sched.FCFSPolicy{}
	}
	return &HybridCore{
		queue: q,
		cpu:   newPoolCoreOver(q, cpuWorkers, sched.ClassCPU, policy),
		dscs:  newPoolCoreOver(q, dscsWorkers, sched.ClassDSCS, policy),
	}, nil
}

// NewSplitHybridCore builds the heterogeneous pool with per-class
// backlogs, each bounded at queueDepth. A nil policy defaults to FCFS. The
// split layout is a two-member MultiCore underneath, so the hybrid pair
// records queue-delay digests and supports wait-keyed rebalancing exactly
// like an N-pool core.
func NewSplitHybridCore(cpuWorkers, dscsWorkers, queueDepth int, policy sched.Policy) (*HybridCore, error) {
	if cpuWorkers < 0 || dscsWorkers < 0 || cpuWorkers+dscsWorkers == 0 {
		return nil, fmt.Errorf("serve: empty hybrid pool")
	}
	multi, err := NewMultiCore([]PoolSpec{
		{Name: sched.ClassCPU.String(), Class: sched.ClassCPU, Workers: cpuWorkers, QueueDepth: queueDepth, Policy: policy},
		{Name: sched.ClassDSCS.String(), Class: sched.ClassDSCS, Workers: dscsWorkers, QueueDepth: queueDepth, Policy: policy},
	})
	if err != nil {
		return nil, err
	}
	return &HybridCore{
		split: true,
		multi: multi,
		cpu:   multi.Pool(hybridCPUPool),
		dscs:  multi.Pool(hybridDSCSPool),
	}, nil
}

// Split reports whether the core runs per-class backlogs.
func (h *HybridCore) Split() bool { return h.split }

// Multi exposes the backing N-pool core of the split layout (wait digests,
// adaptive-balance decisions); nil for the classic shared-queue layout.
func (h *HybridCore) Multi() *MultiCore { return h.multi }

// Submit admits a task; it reports false (drop) at the queue bound. On a
// split core it lands on the DSCS backlog (the accelerated tier requests
// target); use SubmitTo to route explicitly.
//
//dscslint:hotpath
func (h *HybridCore) Submit(t sched.HybridTask) bool {
	if h.split {
		return h.SubmitTo(sched.ClassDSCS, t)
	}
	if !h.queue.Submit(t) {
		return false
	}
	h.submitted++
	return true
}

// SubmitTo admits a task onto one class's backlog (split layout; on a
// classic core the shared queue ignores the class). It reports false
// (drop) at that backlog's bound.
//
//dscslint:hotpath
func (h *HybridCore) SubmitTo(class sched.InstanceClass, t sched.HybridTask) bool {
	if !h.split {
		return h.Submit(t)
	}
	return h.multi.SubmitTo(poolIndex(class), t)
}

// Steal moves up to max of the from class's oldest queued tasks onto the
// to class's backlog — the pull half of rebalancing on a split core. The
// tasks keep their arrival instants, so the aging bound follows them. A
// classic core has one shared queue and nothing to steal; it returns nil.
//
//dscslint:hotpath
func (h *HybridCore) Steal(from, to sched.InstanceClass, max int) []sched.HybridTask {
	if !h.split || from == to {
		return nil
	}
	return h.multi.Steal(poolIndex(from), poolIndex(to), max)
}

// Dispatch assigns work to a free worker, preferring DSCS capacity (it
// serves faster). It returns the task, the class it runs on, and whether
// anything was dispatched. On a split core each dispatch records the
// task's queue delay against the serving class's wait digest.
//
//dscslint:hotpath
func (h *HybridCore) Dispatch(now time.Duration) (sched.HybridTask, sched.InstanceClass, bool) {
	if h.split {
		if t, ok := h.multi.Dispatch(hybridDSCSPool, now); ok {
			return t, sched.ClassDSCS, true
		}
		if t, ok := h.multi.Dispatch(hybridCPUPool, now); ok {
			return t, sched.ClassCPU, true
		}
		return sched.HybridTask{}, sched.ClassCPU, false
	}
	if t, ok := h.dscs.Dispatch(now); ok {
		return t, sched.ClassDSCS, true
	}
	if t, ok := h.cpu.Dispatch(now); ok {
		return t, sched.ClassCPU, true
	}
	return sched.HybridTask{}, sched.ClassCPU, false
}

// Class exposes one class's pool (batch coalescing, diagnostics).
func (h *HybridCore) Class(class sched.InstanceClass) *PoolCore {
	if class == sched.ClassDSCS {
		return h.dscs
	}
	return h.cpu
}

// Complete retires n tasks from the given class and frees their worker.
func (h *HybridCore) Complete(class sched.InstanceClass, n int) {
	h.Class(class).Complete(n)
}

// QueueLen reports queue occupancy (both backlogs on a split core).
func (h *HybridCore) QueueLen() int {
	if h.split {
		return h.cpu.QueueLen() + h.dscs.QueueLen()
	}
	return h.queue.Len()
}

// Dropped counts admission rejections (both backlogs on a split core).
func (h *HybridCore) Dropped() int {
	if h.split {
		return h.cpu.Dropped() + h.dscs.Dropped()
	}
	return h.queue.Dropped()
}

// Stolen counts tasks rebalanced between the class backlogs.
func (h *HybridCore) Stolen() int { return h.cpu.stolenIn + h.dscs.stolenIn }

// Busy reports occupied workers per class.
func (h *HybridCore) Busy() (cpu, dscs int) {
	return h.cpu.Busy(), h.dscs.Busy()
}

// Completed reports retired tasks across both classes.
func (h *HybridCore) Completed() int { return h.cpu.completed + h.dscs.completed }

// Conservation checks the bookkeeping invariant across both classes: every
// admitted task is queued, executing, or completed, and neither class saw
// a completion without a matching dispatch.
func (h *HybridCore) Conservation() error {
	if h.split {
		return h.multi.Conservation()
	}
	for _, c := range []*PoolCore{h.cpu, h.dscs} {
		if err := c.Conservation(); err != nil {
			return fmt.Errorf("%s class: %w", c.class, err)
		}
	}
	accounted := h.QueueLen() + h.cpu.running + h.dscs.running + h.Completed()
	if h.submitted != accounted {
		return fmt.Errorf("serve: hybrid conservation violated: %d submitted != %d queued + %d+%d running + %d completed",
			h.submitted, h.QueueLen(), h.cpu.running, h.dscs.running, h.Completed())
	}
	return nil
}

// BatchWindow is the deadline-aware half of request batching: when a
// dispatched lead task's batch is below the profitable size, the dispatcher
// may linger until the deadline to let same-benchmark arrivals fill it,
// instead of coalescing only what already queued. It is clock-free — the
// live engine feeds it wall time while the discrete-event simulation feeds
// it virtual time, so both exercise the same linger decision.
type BatchWindow struct {
	// Deadline is the instant the dispatcher stops waiting.
	Deadline time.Duration
	// Target is the profitable batch size; Size is gathered so far.
	Target, Size int
}

// NewBatchWindow opens a linger window at now for a batch that currently
// holds size of target.
func NewBatchWindow(now, linger time.Duration, target, size int) BatchWindow {
	return BatchWindow{Deadline: now + linger, Target: target, Size: size}
}

// Open reports whether the dispatcher should keep lingering at now: the
// batch is below target and the deadline has not passed.
func (w BatchWindow) Open(now time.Duration) bool {
	return w.Size < w.Target && now < w.Deadline
}

// Add records n more gathered requests.
func (w *BatchWindow) Add(n int) { w.Size += n }
