package serve

import (
	"strings"
	"testing"
	"time"

	"dscs/internal/faas"
	"dscs/internal/trace"
	"dscs/internal/workflow"
	"dscs/internal/workload"
)

// wfTestEngine builds a small two-platform engine with a stubbed, fast
// execution so workflow tests exercise placement and graph plumbing, not
// the simulated service times.
func wfTestEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(testRunners(t), Options{
		Workers: 2, QueueDepth: 64,
		Execute: func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error) {
			time.Sleep(200 * time.Microsecond)
			return faas.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSubmitWorkflowChain drives an ETL scatter-gather graph end to end:
// every stage completes, the ledger balances, locality accounting covers
// every stage, and the serve_workflow_* surfaces move.
func TestSubmitWorkflowChain(t *testing.T) {
	eng := wfTestEngine(t)
	defer eng.Close()
	spec, err := trace.ParseWorkflowSpec(
		"0s:extract=credit-risk:;0s:s0=asset-damage:extract;0s:s1=asset-damage:extract;0s:s2=asset-damage:extract;0s:gather=credit-risk:s0,s1,s2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SubmitWorkflow(spec, faas.Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || res.Completed != 5 || res.Dropped != 0 || res.Stranded != 0 {
		t.Fatalf("ledger: %+v", res)
	}
	if res.Makespan <= 0 {
		t.Fatalf("non-positive makespan %v", res.Makespan)
	}
	if res.LocalStages+res.RemoteStages != 5 {
		t.Fatalf("locality split %d+%d does not cover 5 stages", res.LocalStages, res.RemoteStages)
	}
	// Workflow objects are acceleratable, so the store homes a DSCS
	// replica for each; with both pools idle the home side must win at
	// least once, moving bytes off the fabric.
	if res.LocalStages == 0 || res.LocalBytes == 0 {
		t.Fatalf("no stage ran beside its input: %+v", res)
	}
	for _, st := range res.Stages {
		if st.State != workflow.Done || st.Platform == "" || st.Err != "" {
			t.Fatalf("stage %+v did not settle Done on a platform", st)
		}
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_workflow_stages_completed_total"); got != 5 {
		t.Fatalf("serve_workflow_stages_completed_total = %v", got)
	}
	if got := tel.Counter("serve_workflows_completed_total"); got != 1 {
		t.Fatalf("serve_workflows_completed_total = %v", got)
	}
	if tel.Gauge("serve_workflow_makespan_p50") <= 0 {
		t.Fatal("makespan gauge never published")
	}
	if eng.WorkflowMakespanQuantile(0.5) != res.Makespan {
		t.Fatalf("digest p50 %v != sole makespan %v", eng.WorkflowMakespanQuantile(0.5), res.Makespan)
	}
	if tel.Gauge("serve_workflow_stages_inflight") != 0 {
		t.Fatal("stages still in flight after settlement")
	}
}

// TestSubmitWorkflowOffsetFloor pins the offset semantics on the live
// path: a stage may not dispatch before arrival+Offset even when its
// dependencies finish instantly.
func TestSubmitWorkflowOffsetFloor(t *testing.T) {
	eng := wfTestEngine(t)
	defer eng.Close()
	spec, err := trace.ParseWorkflowSpec("0s:a=credit-risk:;120ms:b=credit-risk:a")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := eng.SubmitWorkflow(spec, faas.Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("workflow settled in %v, before stage b's 120ms floor", elapsed)
	}
	if !res.Succeeded {
		t.Fatalf("ledger: %+v", res)
	}
}

// TestSubmitWorkflowRejects pins the guard rails: nil specs, invalid
// graphs, and unknown benchmarks are refused before anything dispatches.
func TestSubmitWorkflowRejects(t *testing.T) {
	eng := wfTestEngine(t)
	defer eng.Close()
	if _, err := eng.SubmitWorkflow(nil, faas.Options{}); err == nil {
		t.Fatal("accepted a nil spec")
	}
	cyc := &trace.WorkflowSpec{Stages: []trace.WorkflowStage{
		{ID: "a", Benchmark: "credit-risk", Deps: []string{"b"}},
		{ID: "b", Benchmark: "credit-risk", Deps: []string{"a"}},
	}}
	if _, err := eng.SubmitWorkflow(cyc, faas.Options{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle accepted: %v", err)
	}
	bad := &trace.WorkflowSpec{Stages: []trace.WorkflowStage{{ID: "a", Benchmark: "nonesuch"}}}
	if _, err := eng.SubmitWorkflow(bad, faas.Options{}); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown benchmark accepted: %v", err)
	}
	if got := eng.Telemetry().Counter("serve_workflows_total"); got != 0 {
		t.Fatalf("rejected workflows were counted: %v", got)
	}
}

// TestSubmitWorkflowDropCascade submits against a closed engine: the
// roots' admission is refused (ErrClosed behaves exactly like a full
// queue at the drop site), and everything downstream strands rather than
// leak — the result still settles with a balanced ledger.
func TestSubmitWorkflowDropCascade(t *testing.T) {
	eng := wfTestEngine(t)
	eng.Close()
	spec, err := trace.ParseWorkflowSpec(
		"0s:a=credit-risk:;0s:b=asset-damage:a;0s:c=asset-damage:a;0s:d=credit-risk:b,c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SubmitWorkflow(spec, faas.Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.Dropped != 1 || res.Stranded != 3 || res.Completed != 0 {
		t.Fatalf("ledger after closed-engine submit: %+v", res)
	}
	if res.Stages[0].State != workflow.Dropped || res.Stages[0].Err == "" {
		t.Fatalf("root outcome %+v", res.Stages[0])
	}
	for _, st := range res.Stages[1:] {
		if st.State != workflow.Stranded {
			t.Fatalf("downstream outcome %+v", st)
		}
	}
}
