package serve

import (
	"fmt"
	"testing"
	"time"

	"dscs/internal/sched"
)

// multiTask is a minimal task arriving at the given instant.
func multiTask(id int, arrived time.Duration) sched.HybridTask {
	return sched.HybridTask{
		ID: id, Arrived: arrived, Payload: "w",
		CPUService: 10 * time.Millisecond, DSCSService: 2 * time.Millisecond,
	}
}

func threePools(t *testing.T, depth int) *MultiCore {
	t.Helper()
	mc, err := NewMultiCore([]PoolSpec{
		{Name: "cpu0", Class: sched.ClassCPU, Workers: 2, QueueDepth: depth},
		{Name: "cpu1", Class: sched.ClassCPU, Workers: 2, QueueDepth: depth},
		{Name: "dscs", Class: sched.ClassDSCS, Workers: 2, QueueDepth: depth},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestMultiCoreValidation(t *testing.T) {
	if _, err := NewMultiCore(nil); err == nil {
		t.Error("empty pool set must fail")
	}
	if _, err := NewMultiCore([]PoolSpec{
		{Name: "a", Workers: 1, QueueDepth: 4},
		{Name: "a", Workers: 1, QueueDepth: 4},
	}); err == nil {
		t.Error("duplicate pool names must fail")
	}
	if _, err := NewMultiCore([]PoolSpec{{Name: "a", Workers: 0, QueueDepth: 4}}); err == nil {
		t.Error("a core with no workers at all must fail")
	}
	// A zero-worker pool is fine as long as a peer can drain it.
	mc, err := NewMultiCore([]PoolSpec{
		{Name: "backlog", Workers: 0, QueueDepth: 4},
		{Name: "drain", Workers: 1, QueueDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Index("drain") != 1 || mc.Index("nope") != -1 {
		t.Error("Index lookup broken")
	}
}

// TestMultiCoreWaitChargedToServingPool pins the wait-digest contract: a
// task's arrival instant survives a steal, and its queue delay — arrival to
// dispatch — is charged to the pool that actually served it, not the pool
// that admitted it.
func TestMultiCoreWaitChargedToServingPool(t *testing.T) {
	mc := threePools(t, 8)
	mc.SetWaitTuning(16, 1)

	if !mc.SubmitTo(2, multiTask(1, 0)) { // lands on the dscs backlog at t=0
		t.Fatal("submit dropped")
	}
	if moved := mc.Steal(2, 0, 4); len(moved) != 1 {
		t.Fatalf("stole %d tasks, want 1", len(moved))
	}
	task, ok := mc.Dispatch(0, 10*time.Millisecond)
	if !ok || task.ID != 1 {
		t.Fatalf("dispatch = %+v ok=%v, want task 1", task, ok)
	}
	if dg := mc.WaitDigest(2); dg != nil {
		t.Errorf("donor pool recorded a wait for work it never served (count %d)", dg.Count())
	}
	dg := mc.WaitDigest(0)
	if dg == nil {
		t.Fatal("serving pool recorded no wait")
	}
	if got := dg.Quantile(0.95); got != 10*time.Millisecond {
		t.Errorf("serving pool wait p95 = %v, want 10ms (arrival instant must survive the steal)", got)
	}
	mc.Complete(0, 1)
	if err := mc.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCoreWaitSurvivesBatchForming: a task held by the queue-level
// batch former still measures its wait from the original arrival — the
// forming hold is queue delay — and coalesced batch members record their
// waits too.
func TestMultiCoreWaitSurvivesBatchForming(t *testing.T) {
	mc, err := NewMultiCore([]PoolSpec{
		{Name: "a", Class: sched.ClassCPU, Workers: 1, QueueDepth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc.SetWaitTuning(16, 1)
	former := NewBatchFormer(4, 40*time.Millisecond, 0, sched.ClassCPU)
	mc.Pool(0).AttachFormer(former)

	t1 := multiTask(1, 0)
	t2 := multiTask(2, 2*time.Millisecond)
	for _, tk := range []sched.HybridTask{t1, t2} {
		if !mc.SubmitTo(0, tk) {
			t.Fatal("submit dropped")
		}
		former.Observe(tk, 1)
	}
	// Below target and before the linger deadline: the pick is held.
	if _, ok, _, wakeOK := mc.DispatchFormed(0, 5*time.Millisecond); ok || !wakeOK {
		t.Fatalf("former released a batch early (ok=%v wakeOK=%v)", ok, wakeOK)
	}
	if dg := mc.WaitDigest(0); dg != nil {
		t.Fatalf("held dispatch recorded a wait (count %d)", dg.Count())
	}
	// Past the linger deadline the group releases; the lead's wait spans
	// the whole hold, and the coalesced member's does too.
	now := 50 * time.Millisecond
	task, ok, _, _ := mc.DispatchFormed(0, now)
	if !ok {
		t.Fatal("former held past its deadline")
	}
	taken := mc.Coalesce(0, now, 3, func(x sched.HybridTask) bool { return x.Payload == task.Payload })
	if len(taken) != 1 {
		t.Fatalf("coalesced %d, want 1", len(taken))
	}
	dg := mc.WaitDigest(0)
	if dg == nil || dg.Count() != 2 {
		t.Fatalf("wait digest count = %v, want 2", dg)
	}
	if min, max := dg.Quantile(0), dg.Quantile(1); min != 48*time.Millisecond || max != 50*time.Millisecond {
		t.Errorf("recorded waits span [%v, %v], want [48ms, 50ms]", min, max)
	}
	mc.Complete(0, 2)
	if err := mc.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCoreDoubleMoveCountedOnce is the bookkeeping regression test: a
// task that moves twice — spilled onto one pool at submit, then stolen by
// another at drain — must count exactly once in the core-level conservation
// sum. If a move ever double-counted a submission (or dropped one), the
// Conservation check after each step fails.
func TestMultiCoreDoubleMoveCountedOnce(t *testing.T) {
	mc := threePools(t, 8)
	const n = 5
	for i := 0; i < n; i++ {
		// "Spill": the submission targets dscs but lands on cpu0.
		if !mc.SubmitTo(0, multiTask(i, time.Duration(i)*time.Millisecond)) {
			t.Fatal("submit dropped")
		}
		if err := mc.Conservation(); err != nil {
			t.Fatalf("after spill-submit %d: %v", i, err)
		}
	}
	// Second move: cpu1 steals the spilled backlog.
	if moved := mc.Steal(0, 1, n); len(moved) != n {
		t.Fatalf("stole %d, want %d", len(moved), n)
	}
	if err := mc.Conservation(); err != nil {
		t.Fatalf("after steal: %v", err)
	}
	served := 0
	for {
		task, ok := mc.Dispatch(1, 20*time.Millisecond)
		if !ok {
			break
		}
		_ = task
		mc.Complete(1, 1)
		served++
		if err := mc.Conservation(); err != nil {
			t.Fatalf("after serve %d: %v", served, err)
		}
	}
	// Two workers drain the five-task backlog in waves.
	for served < n {
		task, ok := mc.Dispatch(1, 30*time.Millisecond)
		if !ok {
			t.Fatalf("backlog stuck with %d/%d served", served, n)
		}
		_ = task
		mc.Complete(1, 1)
		served++
	}
	if got := mc.Completed(); got != n {
		t.Fatalf("completed %d, want %d — double-moved work must complete exactly once", got, n)
	}
	if mc.Stolen() != n {
		t.Fatalf("stolen = %d, want %d", mc.Stolen(), n)
	}
	if err := mc.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCoreOverloadedHysteresis drives the wait-gap latch through a
// full cycle: quiet pools do not trip it, a warmed diverged donor trips it
// once, and it releases only when the peer's waits catch back up within the
// exit ratio.
func TestMultiCoreOverloadedHysteresis(t *testing.T) {
	mc, err := NewMultiCore([]PoolSpec{
		{Name: "hot", Class: sched.ClassCPU, Workers: 4, QueueDepth: 64},
		{Name: "cold", Class: sched.ClassCPU, Workers: 4, QueueDepth: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc.SetWaitTuning(32, 3)

	if mc.Overloaded(0, 1) {
		t.Fatal("un-warmed pools must not trip the latch")
	}
	// Serve three requests on the hot pool, each having queued 80ms; the
	// cold pool has never waited, so any warmed wait diverges above it.
	id := 0
	serveWithWait := func(pool int, wait time.Duration, now time.Duration) {
		t.Helper()
		id++
		if !mc.SubmitTo(pool, multiTask(id, now-wait)) {
			t.Fatal("submit dropped")
		}
		if _, ok := mc.Dispatch(pool, now); !ok {
			t.Fatal("dispatch failed")
		}
		mc.Complete(pool, 1)
	}
	for i := 0; i < 2; i++ {
		serveWithWait(0, 80*time.Millisecond, time.Duration(i+1)*100*time.Millisecond)
		if mc.Overloaded(0, 1) {
			t.Fatalf("latch tripped below warmup (%d observations)", i+1)
		}
	}
	serveWithWait(0, 80*time.Millisecond, 300*time.Millisecond)
	if !mc.Overloaded(0, 1) {
		t.Fatal("warmed 80ms-vs-idle gap must trip the latch")
	}
	if mc.Overloaded(1, 0) {
		t.Fatal("the cold pool must never read as overloaded")
	}
	// The cold pool starts serving comparable waits. While it keeps going
	// idle between requests, it still prices at zero — an idle pool serves
	// moved work immediately, whatever its digest says.
	for i := 0; i < 4; i++ {
		serveWithWait(1, 75*time.Millisecond, time.Duration(i+4)*100*time.Millisecond)
	}
	if !mc.Overloaded(0, 1) {
		t.Fatal("an idle peer prices at zero: the latch must hold while pool 0 still waits")
	}
	// With the peer genuinely loaded (a queued backlog), its recorded
	// waits are what moved work would pay: 80ms vs 75ms is inside the
	// exit band, so the latch releases.
	id++
	if !mc.SubmitTo(1, multiTask(id, time.Second)) {
		t.Fatal("submit dropped")
	}
	if mc.Overloaded(0, 1) {
		t.Fatal("latch must release once the loaded peer's waits converge")
	}
	// The hysteresis state lives in the directed pair's latch (not the
	// digest): exactly one enter and one release across the whole cycle,
	// and the reverse direction's latch never moved.
	if flips := mc.latch(0, 1).Flips(); flips != 2 {
		t.Fatalf("latch flipped %d times, want exactly 2 (on, then off)", flips)
	}
	if flips := mc.latch(1, 0).Flips(); flips != 0 {
		t.Fatalf("reverse-direction latch flipped %d times, want 0", flips)
	}
}

// TestMultiCorePairwiseLatchIndependence pins the N-way fix: one donor
// compared against several peers must not share hysteresis state between
// the comparisons. An idle peer adopting the donor's wait outright must
// not arm the latch that a busy peer's comparison reads — before the
// per-pair latches, evaluation order decided whether a 1.3x gap (inside
// the 1.5x entry band) stole.
func TestMultiCorePairwiseLatchIndependence(t *testing.T) {
	mc, err := NewMultiCore([]PoolSpec{
		{Name: "donor", Class: sched.ClassCPU, Workers: 4, QueueDepth: 64},
		{Name: "idle", Class: sched.ClassCPU, Workers: 4, QueueDepth: 64},
		{Name: "busy", Class: sched.ClassCPU, Workers: 1, QueueDepth: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc.SetWaitTuning(32, 1)
	id := 0
	serveWithWait := func(pool int, wait, now time.Duration) {
		t.Helper()
		id++
		if !mc.SubmitTo(pool, multiTask(id, now-wait)) {
			t.Fatal("submit dropped")
		}
		if _, ok := mc.Dispatch(pool, now); !ok {
			t.Fatal("dispatch failed")
		}
		mc.Complete(pool, 1)
	}
	// Donor waits 130ms; the busy pool waits 100ms and is left genuinely
	// busy (queued backlog behind its one busy worker) so it prices by
	// its digest: a 1.3x gap, inside the entry band.
	serveWithWait(0, 130*time.Millisecond, 200*time.Millisecond)
	serveWithWait(2, 100*time.Millisecond, 200*time.Millisecond)
	id++
	if !mc.SubmitTo(2, multiTask(id, 200*time.Millisecond)) {
		t.Fatal("submit dropped")
	}
	if _, ok := mc.Dispatch(2, 210*time.Millisecond); !ok {
		t.Fatal("dispatch failed")
	}
	id++
	if !mc.SubmitTo(2, multiTask(id, 220*time.Millisecond)) {
		t.Fatal("submit dropped")
	}

	// Evaluating the idle pair first arms that pair's latch...
	if !mc.Overloaded(0, 1) {
		t.Fatal("donor-vs-idle must latch (any warmed wait beats an idle peer)")
	}
	// ...and the busy pair's comparison must still apply the 1.5x entry
	// band, not the idle pair's armed latch with its 1.2x exit band.
	if mc.Overloaded(0, 2) {
		t.Fatal("a 1.3x gap inside the entry band stole because another pair's latch leaked")
	}
}

// TestMultiCorePropertyHarness extends the PR 3 model-checking harness to
// an N=3 pool set (two same-class CPU pools plus a DSCS pool) with steals
// in every direction — including the wait-keyed StealDonor path — mixed
// into the schedule. After every step: conservation across the pool set,
// per-pool worker bounds, no task dispatched twice even after multiple
// moves, and the sched.AgingMultiple starvation bound on whichever pool
// served the dispatch.
func TestMultiCorePropertyHarness(t *testing.T) {
	const pools = 3
	classes := []sched.InstanceClass{sched.ClassCPU, sched.ClassCPU, sched.ClassDSCS}
	run := func(ops []propOp) error {
		mc, err := NewMultiCore([]PoolSpec{
			{Name: "cpu0", Class: classes[0], Workers: 2, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
			{Name: "cpu1", Class: classes[1], Workers: 1, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
			{Name: "dscs", Class: classes[2], Workers: 2, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
		})
		if err != nil {
			return err
		}
		mc.SetWaitTuning(16, 4)
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		execs := make([][]int, pools)
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit, biased toward the DSCS backlog
				pool := 2
				if op.a%4 == 0 {
					pool = op.a % pools
				}
				mc.SubmitTo(pool, propTask(nextID, now, op.a))
				nextID++
			case 1: // dispatch from a random pool
				pool := op.a % pools
				head, hadHead := mc.Pool(pool).queue.Head()
				got, ok := mc.Dispatch(pool, now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if err := agedPassedOver(head, hadHead, got, classes[pool], now); err != nil {
					return err
				}
				if w := now - got.Arrived; w < 0 {
					return fmt.Errorf("task %d dispatched before it arrived (wait %v)", got.ID, w)
				}
				execs[pool] = append(execs[pool], 1)
			case 2: // coalesce onto the pool's latest execution
				pool := op.b % pools
				if len(execs[pool]) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := mc.Coalesce(pool, now, 1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
				}
				execs[pool][len(execs[pool])-1] += len(taken)
			case 3: // complete a random execution of a random pool
				pool := op.b % pools
				if len(execs[pool]) == 0 {
					break
				}
				i := op.a % len(execs[pool])
				mc.Complete(pool, execs[pool][i])
				execs[pool] = append(execs[pool][:i], execs[pool][i+1:]...)
			case 4: // advance the clock a long way (ages heads, warms latches)
				now += time.Duration(op.a%2000) * time.Millisecond
			case 5: // steal in a random direction (N-way: same class included)
				from := op.a % pools
				to := op.b % pools
				moved := mc.Steal(from, to, 1+op.a%4)
				for _, tk := range moved {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d stolen after dispatch", tk.ID)
					}
				}
			case 6: // wait-keyed steal: whatever the latch picks must hold up
				to := op.b % pools
				if from, ok := mc.StealDonor(to, nil); ok {
					moved := mc.Steal(from, to, 1+op.a%4)
					for _, tk := range moved {
						if dispatched[tk.ID] {
							return fmt.Errorf("task %d balance-stolen after dispatch", tk.ID)
						}
					}
				}
			}
			if err := mc.Conservation(); err != nil {
				return err
			}
			for i := 0; i < pools; i++ {
				pc := mc.Pool(i)
				if pc.Busy() < 0 || pc.Busy() > pc.Workers() {
					return fmt.Errorf("pool %d busy %d outside [0, %d]", i, pc.Busy(), pc.Workers())
				}
				if pc.Running() < 0 {
					return fmt.Errorf("pool %d running negative", i)
				}
			}
		}
		return nil
	}
	checkSequences(t, 4000, 7, run)
}

// TestMultiCoreChaosPropertyHarness is the failure-model extension of the
// harness above: the same N=3 pool set with randomized kill/recover
// interleavings mixed into the schedule. A kill requeues every open
// execution of the dying pool (the in-flight work its workers were
// holding), so the harness checks the at-most-once accounting the requeue
// path promises: Conservation across the pool set, per-pool worker bounds,
// no task dispatched twice within one life, and the aged-head starvation
// bound — after every single step, dead pools included.
func TestMultiCoreChaosPropertyHarness(t *testing.T) {
	const pools = 3
	classes := []sched.InstanceClass{sched.ClassCPU, sched.ClassCPU, sched.ClassDSCS}
	run := func(ops []propOp) error {
		mc, err := NewMultiCore([]PoolSpec{
			{Name: "cpu0", Class: classes[0], Workers: 2, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
			{Name: "cpu1", Class: classes[1], Workers: 1, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
			{Name: "dscs", Class: classes[2], Workers: 2, QueueDepth: 8, Policy: sched.CriticalityPolicy{}},
		})
		if err != nil {
			return err
		}
		mc.SetWaitTuning(16, 4)
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		// Open executions carry their task slices: a kill must hand the
		// exact in-flight tasks back to the queue, one worker per exec.
		execs := make([][][]sched.HybridTask, pools)
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			switch op.kind {
			case 0: // submit, biased toward the DSCS backlog
				pool := 2
				if op.a%4 == 0 {
					pool = op.a % pools
				}
				mc.SubmitTo(pool, propTask(nextID, now, op.a))
				nextID++
			case 1: // dispatch from a random pool (a no-op on a dead one)
				pool := op.a % pools
				head, hadHead := mc.Pool(pool).queue.Head()
				got, ok := mc.Dispatch(pool, now)
				if !ok {
					if !mc.Healthy(pool) && mc.Pool(pool).QueueLen() > 0 {
						break // a dead pool must refuse, backlog or not
					}
					break
				}
				if !mc.Healthy(pool) {
					return fmt.Errorf("dead pool %d dispatched task %d", pool, got.ID)
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if err := agedPassedOver(head, hadHead, got, classes[pool], now); err != nil {
					return err
				}
				execs[pool] = append(execs[pool], []sched.HybridTask{got})
			case 2: // coalesce onto the pool's latest execution
				pool := op.b % pools
				if len(execs[pool]) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := mc.Coalesce(pool, now, 1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
				}
				last := len(execs[pool]) - 1
				execs[pool][last] = append(execs[pool][last], taken...)
			case 3: // complete a random execution of a random pool
				pool := op.b % pools
				if len(execs[pool]) == 0 {
					break
				}
				i := op.a % len(execs[pool])
				mc.Complete(pool, len(execs[pool][i]))
				execs[pool] = append(execs[pool][:i], execs[pool][i+1:]...)
			case 4: // advance the clock a long way (ages heads, warms latches)
				now += time.Duration(op.a%2000) * time.Millisecond
			case 5: // steal in a random direction (dead donors are fair game)
				from := op.a % pools
				to := op.b % pools
				moved := mc.Steal(from, to, 1+op.a%4)
				if len(moved) > 0 && !mc.Healthy(to) {
					return fmt.Errorf("dead pool %d stole %d tasks", to, len(moved))
				}
				for _, tk := range moved {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d stolen after dispatch", tk.ID)
					}
				}
			case 6: // kill a pool: every open execution requeues exactly once
				pool := op.a % pools
				if !mc.Healthy(pool) {
					break
				}
				mc.FailPool(pool, now)
				for _, tasks := range execs[pool] {
					mc.Requeue(pool, tasks)
					for _, tk := range tasks {
						// Requeued work gets a second dispatch in its next
						// life; the at-most-once check tracks per life.
						delete(dispatched, tk.ID)
					}
				}
				execs[pool] = execs[pool][:0]
			case 7: // recover a pool
				pool := op.a % pools
				mc.RecoverPool(pool, now)
			}
			if err := mc.Conservation(); err != nil {
				return err
			}
			for i := 0; i < pools; i++ {
				pc := mc.Pool(i)
				if pc.Busy() < 0 || pc.Busy() > pc.Workers() {
					return fmt.Errorf("pool %d busy %d outside [0, %d]", i, pc.Busy(), pc.Workers())
				}
				if pc.Running() < 0 {
					return fmt.Errorf("pool %d running negative", i)
				}
			}
		}
		return nil
	}
	checkSequences(t, 4000, 8, run)
}
