// Package serve is the concurrent serving core shared by the live HTTP
// gateway and the discrete-event simulations: worker pools over a
// clock-free scheduling state machine, so the simulated rack and the real
// request path exercise the same scheduler.
//
// The package splits along the clock boundary:
//
//   - The state machines (PoolCore, HybridCore, MultiCore) own no
//     goroutines and no clocks. Callers inject `now` into every dispatch —
//     wall time on the live engine, virtual time in internal/cluster — and
//     drive admission (Submit), policy-ordered dispatch (Dispatch /
//     DispatchFormed), request coalescing (Coalesce), rebalancing
//     (StealFrom / Steal), and retirement (Complete) as plain calls.
//   - The Engine is the goroutine half: one worker pool per platform over
//     a PoolCore each, bounded-queue admission control (ErrQueueFull maps
//     to HTTP 429 at the gateway), run-to-completion execution against the
//     faas runners, and per-drive occupancy for DSCS-class executions.
//
// Batching has two clock-free decision types: BatchWindow (a dispatched
// lead lingers for same-benchmark stragglers) and BatchFormer (the
// queue-level, SLO-aware generalization — arrivals group across the whole
// queue before any worker dispatches, releasing at the target size, the
// linger bound, or the deadline-slack bound).
//
// Queued work rebalances in both directions across pools. Submit-time
// spillover pushes DSCS-class submissions to a CPU pool; drain-time
// stealing lets an idle pool pull a peer's oldest backlog (StealFrom keeps
// arrival instants and order, so the sched.AgingMultiple starvation bound
// follows tasks across queues). The triggers are either static queue-depth
// counts (Options.SpilloverThreshold / StealThreshold) or, behind
// Options.AdaptiveBalance, the wait-keyed latch: every dispatch records
// the served request's queue delay — arrival to dispatch — into
// per-{platform, class} digests (the wait observatory, surfaced as
// serve_queue_delay_{p50,p95,p99} gauges), and work moves once the donor
// pool's adopted wait-p95 has diverged above the target's past the
// metrics adoption hysteresis (Digest.Adopt's bands over one
// metrics.Latch per pool pair). MultiCore generalizes the
// two-class HybridCore to N pools so multiple same-class platforms
// rebalance with the same logic.
//
// Scheduling decisions are priced by per-benchmark service estimates:
// static graph-derived priors by default, blended toward live latency
// digests behind Options.AdaptiveEstimates.
//
// The invariants every state machine preserves — conservation, worker
// bounds, no double dispatch, the aged-head starvation bound — are pinned
// by the property harness in property_test.go and documented in
// ARCHITECTURE.md at the repository root.
package serve
