package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/sched"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/workload"
)

func testRunners(t testing.TB) map[string]*faas.Runner {
	t.Helper()
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*faas.Runner{
		"DSCS-Serverless": faas.NewRunner(store, platform.DSCS()),
		"Baseline (CPU)":  faas.NewRunner(store, platform.BaselineCPU()),
	}
}

func TestPoolCoreLifecycle(t *testing.T) {
	core, err := NewPoolCore(2, 4, sched.ClassCPU, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ok := core.Submit(sched.HybridTask{ID: i, Payload: "w"})
		if want := i < 4; ok != want {
			t.Fatalf("submit %d admitted=%v, want %v", i, ok, want)
		}
	}
	if core.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", core.Dropped())
	}
	t1, ok := core.Dispatch(0)
	if !ok || t1.ID != 0 {
		t.Fatalf("first dispatch = %+v ok=%v, want task 0", t1, ok)
	}
	// Coalesce grabs matching queued work for the same worker.
	extra := core.Coalesce(10, func(t sched.HybridTask) bool { return t.Payload == "w" })
	if len(extra) != 3 {
		t.Fatalf("coalesced %d tasks, want 3", len(extra))
	}
	if _, ok := core.Dispatch(0); ok {
		t.Fatal("dispatch from empty queue succeeded")
	}
	if core.Busy() != 1 || core.Running() != 4 {
		t.Fatalf("busy=%d running=%d, want 1/4", core.Busy(), core.Running())
	}
	core.Complete(4)
	if err := core.Conservation(); err != nil {
		t.Fatal(err)
	}
	if core.Completed() != 4 || core.Busy() != 0 {
		t.Fatalf("completed=%d busy=%d after retire", core.Completed(), core.Busy())
	}
}

func TestPoolCoreValidation(t *testing.T) {
	if _, err := NewPoolCore(0, 4, sched.ClassCPU, nil); err == nil {
		t.Error("zero workers must fail")
	}
	if _, err := NewPoolCore(2, 0, sched.ClassCPU, nil); err == nil {
		t.Error("zero queue depth must fail")
	}
}

func TestEngineServesConcurrently(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 4, QueueDepth: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 64
	bench := workload.BySlug("asset-damage")
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				errs <- err
				return
			}
			if inv.Result.Total() <= 0 || inv.BatchRequests < 1 || inv.BatchSize < inv.BatchRequests {
				errs <- fmt.Errorf("degenerate invocation: %+v", inv)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
	tel := eng.Telemetry()
	if got := tel.Counter("serve_completed_total"); got != n {
		t.Fatalf("serve_completed_total = %g, want %d", got, n)
	}
	if eng.Dropped() != 0 {
		t.Fatalf("dropped = %d below queue depth", eng.Dropped())
	}
}

// TestCollectBatchCoalesces drives the batching step deterministically,
// with no goroutine scheduling involved: a queue holding a mix of
// benchmarks and options must coalesce only compatible same-benchmark
// requests up to the MaxBatch budget, in arrival order.
func TestCollectBatchCoalesces(t *testing.T) {
	runners := testRunners(t)
	eng, err := NewEngine(runners, Options{Workers: 1, QueueDepth: 64, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	core, err := NewPoolCore(1, 64, sched.ClassDSCS, sched.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// A detached pool the engine's workers never see.
	p := &pool{name: "test", runner: runners["DSCS-Serverless"], core: core}

	chatbot := workload.BySlug("chatbot")
	moderation := workload.BySlug("moderation")
	enqueue := func(id int, b *workload.Benchmark, opt faas.Options) {
		req := &request{bench: b, opt: opt, done: make(chan outcome, 1)}
		if !core.Submit(sched.HybridTask{ID: id, Payload: b.Slug, Ref: req}) {
			t.Fatalf("task %d rejected", id)
		}
	}
	warm := faas.Options{Quantile: 0.5}
	enqueue(1, chatbot, warm)                                    // lead
	enqueue(2, chatbot, warm)                                    // coalesces
	enqueue(3, moderation, warm)                                 // different benchmark: stays queued
	enqueue(4, chatbot, faas.Options{Quantile: 0.5, Cold: true}) // incompatible
	enqueue(5, chatbot, faas.Options{Quantile: 0.5, Batch: 4})   // coalesces (batch 4)
	enqueue(6, chatbot, faas.Options{Quantile: 0.5, Batch: 4})   // over budget: stays
	enqueue(7, chatbot, warm)                                    // coalesces (fills the last slot)

	task, ok := core.Dispatch(0)
	if !ok || task.ID != 1 {
		t.Fatalf("dispatch = %+v ok=%v, want task 1", task, ok)
	}
	reqs, batch := eng.collectBatch(p, task)
	if len(reqs) != 4 || batch != 7 {
		t.Fatalf("collectBatch = %d reqs, batch %d; want 4 reqs, batch 7", len(reqs), batch)
	}
	if core.QueueLen() != 3 {
		t.Fatalf("queue kept %d tasks, want 3 (moderation, cold, over-budget)", core.QueueLen())
	}
	if core.Running() != 4 {
		t.Fatalf("running = %d, want 4", core.Running())
	}
	core.Complete(len(reqs))
	if err := core.Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBatchBounds floods a single-worker engine and checks every
// batching invariant that holds regardless of goroutine scheduling (on a
// single-P runtime the queue may drain request-by-request, so whether
// coalescing triggers is timing-dependent; its mechanics are covered
// deterministically above).
func TestEngineBatchBounds(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 1, QueueDepth: 64, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 24
	bench := workload.BySlug("chatbot")
	var wg sync.WaitGroup
	invs := make(chan Invocation, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			if err != nil {
				t.Error(err)
				return
			}
			invs <- inv
		}()
	}
	wg.Wait()
	close(invs)
	served := 0
	for inv := range invs {
		served++
		if inv.BatchRequests < 1 || inv.BatchRequests > 8 {
			t.Fatalf("batch of %d outside [1, MaxBatch]", inv.BatchRequests)
		}
		if inv.BatchSize < inv.BatchRequests {
			t.Fatalf("combined batch %d < %d coalesced requests", inv.BatchSize, inv.BatchRequests)
		}
	}
	if served != n {
		t.Fatalf("served %d, want %d", served, n)
	}
	if got := eng.Telemetry().Counter("serve_completed_total"); got != n {
		t.Fatalf("serve_completed_total = %g, want %d", got, n)
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAdmissionControl(t *testing.T) {
	// Tiny queue + one worker: a burst must see ErrQueueFull, and
	// accepted + dropped must account for every submission.
	eng, err := NewEngine(testRunners(t), Options{Workers: 1, QueueDepth: 2, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 32
	bench := workload.BySlug("translation")
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Submit("DSCS-Serverless", bench, faas.Options{Quantile: 0.5})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				counts["ok"]++
			case errors.Is(err, ErrQueueFull):
				counts["full"]++
			default:
				counts["err"]++
			}
		}()
	}
	wg.Wait()
	if counts["err"] != 0 {
		t.Fatalf("unexpected errors: %+v", counts)
	}
	if counts["ok"]+counts["full"] != n {
		t.Fatalf("lost requests: %+v", counts)
	}
	if counts["full"] != eng.Dropped() {
		t.Fatalf("dropped mismatch: %d callers saw full, engine counted %d",
			counts["full"], eng.Dropped())
	}
	if err := eng.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineUnknownPlatformAndClose(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit("TPU", workload.Chatbot(), faas.Options{}); err == nil {
		t.Error("unknown platform must fail")
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Submit("DSCS-Serverless", workload.Chatbot(), faas.Options{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p == nil {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := PolicyByName(""); err != nil || p.Name() != "fcfs" {
		t.Errorf("empty name must default to fcfs, got %v, %v", p, err)
	}
	if _, err := PolicyByName("lifo"); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestEnginePoliciesServeEverything(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			policy, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(testRunners(t), Options{Workers: 2, QueueDepth: 64, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				b := workload.Suite()[i%len(workload.Suite())]
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := eng.Submit("Baseline (CPU)", b, faas.Options{Quantile: 0.5}); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			if err := eng.Conservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEstimateOrdersBenchmarks(t *testing.T) {
	eng, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cpu, dscs, accel := eng.estimate(workload.BySlug("chatbot"))
	if cpu <= 0 || dscs <= 0 || cpu <= dscs {
		t.Errorf("estimate(chatbot) cpu=%v dscs=%v: CPU service must dominate", cpu, dscs)
	}
	if accel < 1 {
		t.Errorf("chatbot accel funcs = %d, want >= 1", accel)
	}
}

// TestEstimateCachePerEngine is the regression test for the shared
// estimate cache: a second engine (or a test redefining a benchmark slug)
// must not read another engine's cached pricing for that slug.
func TestEstimateCachePerEngine(t *testing.T) {
	e1, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e2, err := NewEngine(testRunners(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	cpu1, _, _ := e1.estimate(workload.BySlug("chatbot"))
	// A "redefined" chatbot: the credit-risk models under the chatbot
	// slug. With the old package-level cache e2 would return e1's BERT
	// pricing for it.
	fake := *workload.BySlug("credit-risk")
	fake.Slug = "chatbot"
	cpu2, _, _ := e2.estimate(&fake)
	if cpu2 == cpu1 {
		t.Fatalf("engine 2 served engine 1's cached estimate (%v) for a redefined slug", cpu2)
	}
	// And e1's own cache is undisturbed.
	if again, _, _ := e1.estimate(workload.BySlug("chatbot")); again != cpu1 {
		t.Fatalf("engine 1 estimate changed: %v != %v", again, cpu1)
	}
}
