// ingress.go is the sharded front half of the engine's submit path. Every
// admit used to cross the single per-pool mutex; now a submission lands on
// a per-shard bounded staging queue (shards sized to GOMAXPROCS, picked
// per-P) and the staged backlog drains into the pool's PoolCore/BatchFormer
// under the pool lock in batches — submitters contend only on their shard,
// and the pool lock pays one acquisition per drained batch instead of one
// per request. The same per-class split PR 3 proved out for queues, applied
// one level up, at the mouth of the engine.
//
// The ingress is deterministic on its own (offer/drain/close are plain
// state transitions), so the property harness can model-check shard
// interleavings single-threaded, while the engine drives it from many
// submitter goroutines.

package serve

import (
	"slices"
	"sync"
	"sync/atomic"

	"dscs/internal/metrics"
	"dscs/internal/sched"
)

// ingressEntry is one staged submission: the scheduling task plus the
// pending request it resolves to (nil in core-level harnesses).
type ingressEntry struct {
	task sched.HybridTask
	req  *request
}

// ingressShard is one staging queue. Writers touch only their shard's
// lock; with per-P shard selection that lock is effectively uncontended.
// The backing array is retained across drains, so steady-state offers do
// not allocate.
type ingressShard struct {
	mu     sync.Mutex
	closed bool
	items  []ingressEntry
}

// ingress fronts one pool's core with per-shard bounded staging queues.
// The admission bound covers staged plus queued work, so the engine's
// ErrQueueFull semantics survive the split: staged counts entries offered
// but not yet drained, queued mirrors the downstream core's occupancy
// (stored by the engine under the pool lock after every core mutation).
type ingress struct {
	shards  []ingressShard
	staged  atomic.Int64
	queued  atomic.Int64
	dropped atomic.Int64
	bound   int64
}

// newIngress builds an ingress of the given shard count (floored at one)
// in front of a queue bounded at bound.
func newIngress(shards, bound int) *ingress {
	if shards < 1 {
		shards = 1
	}
	in := &ingress{shards: make([]ingressShard, shards), bound: int64(bound)}
	for i := range in.shards {
		in.shards[i].items = make([]ingressEntry, 0, 32)
	}
	return in
}

// offer stages one entry on the given shard (modulo the shard count). It
// rejects with ErrQueueFull once staged plus queued work reaches the
// bound — without counting a drop when bounce marks a spill attempt that
// will fall back to its original pool — and with ErrClosed after close.
// The bound check reads two atomics; under concurrent offers it is exact
// to within the in-flight racers, and a sequential caller sees exactly
// the old single-queue admission behavior.
//
//dscslint:hotpath
func (in *ingress) offer(shard int, e ingressEntry, bounce bool) error {
	if in.staged.Load()+in.queued.Load() >= in.bound {
		if !bounce {
			in.dropped.Add(1)
		}
		return ErrQueueFull
	}
	s := &in.shards[shard%len(in.shards)]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.items = append(s.items, e)
	s.mu.Unlock()
	in.staged.Add(1)
	return nil
}

// offerLocal is offer on the calling P's shard.
func (in *ingress) offerLocal(e ingressEntry, bounce bool) error {
	return in.offer(metrics.ShardIndex(len(in.shards)), e, bounce)
}

// pending reports staged plus queued work — the depth the admission bound
// compares against, and what the spill/steal scans read in place of a
// locked core QueueLen.
func (in *ingress) pending() int {
	return int(in.staged.Load() + in.queued.Load())
}

// drainInto empties every shard into scratch (reusing its backing array)
// and returns the entries merged into admission order — by arrival
// instant, task ID breaking ties — so cross-shard interleavings reach the
// core in the same order a single queue would have seen. The caller holds
// the pool lock and must account every returned entry.
//
//dscslint:hotpath
func (in *ingress) drainInto(scratch []ingressEntry) []ingressEntry {
	out := scratch[:0]
	if in.staged.Load() == 0 {
		return out
	}
	for i := range in.shards {
		s := &in.shards[i]
		s.mu.Lock()
		out = append(out, s.items...)
		s.items = s.items[:0]
		s.mu.Unlock()
	}
	in.staged.Add(-int64(len(out)))
	if len(out) > 1 {
		slices.SortFunc(out, func(a, b ingressEntry) int {
			if a.task.Arrived != b.task.Arrived {
				if a.task.Arrived < b.task.Arrived {
					return -1
				}
				return 1
			}
			return a.task.ID - b.task.ID
		})
	}
	return out
}

// syncQueued stores the downstream core's occupancy into the admission
// bound's mirror. Called under the pool lock after every core mutation.
func (in *ingress) syncQueued(n int) { in.queued.Store(int64(n)) }

// droppedCount reports offers rejected at the bound.
func (in *ingress) droppedCount() int { return int(in.dropped.Load()) }

// close marks every shard closed — subsequent offers fail with ErrClosed,
// with no window for an entry to strand unobserved — and returns the
// flushed backlog for the caller to fail.
func (in *ingress) close(scratch []ingressEntry) []ingressEntry {
	out := scratch[:0]
	n := 0
	for i := range in.shards {
		s := &in.shards[i]
		s.mu.Lock()
		s.closed = true
		out = append(out, s.items...)
		n += len(s.items)
		s.items = nil
		s.mu.Unlock()
	}
	in.staged.Add(-int64(n))
	return out
}
