package serve

import (
	"fmt"
	"testing"
	"time"

	"dscs/internal/sched"
)

func newTestLifecycle(t *testing.T, cfg LifecycleConfig, initial int) *Lifecycle {
	t.Helper()
	lc, err := NewLifecycle(cfg, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestLifecycleValidation(t *testing.T) {
	bad := []LifecycleConfig{
		{Min: 0, Max: 0},
		{Min: -1, Max: 4},
		{Min: 5, Max: 4},
		{Min: 0, Max: 4, ColdStart: -time.Second},
		{Min: 0, Max: 4, IdleLinger: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := NewLifecycle(cfg, 1, 0); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
	// initialWarm clamps into [Min, Max].
	lc := newTestLifecycle(t, LifecycleConfig{Min: 2, Max: 4}, 0)
	if lc.Warm() != 2 {
		t.Errorf("initial warm clamped to %d, want Min=2", lc.Warm())
	}
	lc = newTestLifecycle(t, LifecycleConfig{Min: 0, Max: 4}, 9)
	if lc.Warm() != 4 {
		t.Errorf("initial warm clamped to %d, want Max=4", lc.Warm())
	}
}

// TestLifecycleColdStartThenLinger walks one slot through the full state
// cycle: cold -> warming (paying the penalty) -> warm -> lingering ->
// suspended once the surplus linger expires.
func TestLifecycleColdStartThenLinger(t *testing.T) {
	cfg := LifecycleConfig{Min: 1, Max: 4, ColdStart: 100 * time.Millisecond, IdleLinger: 50 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 1)

	if got := lc.SetDesired(3, 0); got != 1 {
		t.Fatalf("warm immediately after raise = %d, want 1 (cold start pending)", got)
	}
	if lc.Warming() != 2 || lc.Cold() != 1 {
		t.Fatalf("warming/cold = %d/%d, want 2/1", lc.Warming(), lc.Cold())
	}
	evt, ok := lc.NextEvent()
	if !ok || evt != 100*time.Millisecond {
		t.Fatalf("next event = %v/%v, want warming ready at 100ms", evt, ok)
	}
	// Just before the penalty elapses nothing is ready.
	if lc.advance(99*time.Millisecond, 0); lc.Warm() != 1 {
		t.Fatalf("warm before penalty = %d, want 1", lc.Warm())
	}
	if lc.advance(100*time.Millisecond, 0); lc.Warm() != 3 || lc.ColdStarts() != 2 {
		t.Fatalf("warm/coldStarts after penalty = %d/%d, want 3/2", lc.Warm(), lc.ColdStarts())
	}

	// Shrink back to 1. The slot idle since t=0 already outlived its
	// linger, so it suspends in place; the two freshly warmed slots
	// (idle since 100ms) only suspend when their own lingers expire.
	lc.SetDesired(1, 100*time.Millisecond)
	if lc.Warm() != 2 || lc.Suspends() != 1 {
		t.Fatalf("after shrink: warm=%d suspends=%d, want 2/1", lc.Warm(), lc.Suspends())
	}
	evt, ok = lc.NextEvent()
	if !ok || evt != 150*time.Millisecond {
		t.Fatalf("next event = %v/%v, want linger expiry at 150ms", evt, ok)
	}
	lc.advance(200*time.Millisecond, 0)
	if lc.Warm() != 1 || lc.Suspends() != 2 {
		t.Fatalf("warm/suspends after linger = %d/%d, want 1/2", lc.Warm(), lc.Suspends())
	}
	// The floor holds: desired == Min, so the last slot never suspends.
	if _, ok := lc.NextEvent(); ok {
		t.Error("no event should be pending at the Min floor")
	}
}

// TestLifecycleBusySlotNeverSuspends: a slot reported busy is not idle;
// suspension only parks genuinely idle surplus.
func TestLifecycleBusySlotNeverSuspends(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 2, IdleLinger: 10 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 2)
	lc.SetDesired(0, 0)
	// Both slots busy: deadlines pass but nothing suspends.
	lc.advance(time.Second, 2)
	if lc.Warm() != 2 || lc.Suspends() != 0 {
		t.Fatalf("busy slots suspended: warm=%d suspends=%d", lc.Warm(), lc.Suspends())
	}
	// One frees up: it lingers from now, then suspends.
	lc.advance(time.Second, 1)
	if lc.Lingering() != 1 {
		t.Fatalf("lingering = %d, want 1", lc.Lingering())
	}
	lc.advance(time.Second+10*time.Millisecond, 1)
	if lc.Warm() != 1 || lc.Suspends() != 1 {
		t.Fatalf("warm/suspends = %d/%d, want 1/1", lc.Warm(), lc.Suspends())
	}
}

// TestLifecycleCancelWarming: a shrink cancels not-yet-ready warming slots
// without charging their cold start.
func TestLifecycleCancelWarming(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 8, ColdStart: 100 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 0)
	lc.SetDesired(6, 0)
	if lc.Warming() != 6 {
		t.Fatalf("warming = %d, want 6", lc.Warming())
	}
	lc.SetDesired(2, 50*time.Millisecond)
	if lc.Warming() != 2 || lc.Cold() != 6 {
		t.Fatalf("warming/cold after cancel = %d/%d, want 2/6", lc.Warming(), lc.Cold())
	}
	lc.advance(150*time.Millisecond, 0)
	if lc.ColdStarts() != 2 {
		t.Fatalf("cold starts = %d, want 2 (cancelled pulls pay nothing)", lc.ColdStarts())
	}
}

// TestLifecycleLIFOReconcile: when slots become busy, the newest idle
// deadlines release first, so the longest-idle slot keeps aging and
// suspends at its original deadline.
func TestLifecycleLIFOReconcile(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 2, IdleLinger: 100 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 2)
	lc.SetDesired(1, 0) // surplus of one: deadlines at 100ms armed for both idles
	// At 40ms one slot goes busy: the NEWEST deadline pops; the oldest
	// (armed at t=0, due 100ms) keeps aging.
	lc.advance(40*time.Millisecond, 1)
	if lc.Lingering() != 1 {
		t.Fatalf("lingering = %d, want 1", lc.Lingering())
	}
	evt, ok := lc.NextEvent()
	if !ok || evt != 100*time.Millisecond {
		t.Fatalf("surviving deadline = %v/%v, want the original 100ms", evt, ok)
	}
	lc.advance(100*time.Millisecond, 1)
	if lc.Warm() != 1 || lc.Suspends() != 1 {
		t.Fatalf("warm/suspends = %d/%d, want 1/1", lc.Warm(), lc.Suspends())
	}
}

// TestLifecycleFreeze: Close drain semantics — warming promotes instantly,
// at least one slot stays warm, and nothing ever suspends again.
func TestLifecycleFreeze(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 4, ColdStart: time.Hour, IdleLinger: time.Millisecond}
	lc := newTestLifecycle(t, cfg, 0)
	lc.SetDesired(2, 0)
	lc.Freeze(time.Millisecond)
	if lc.Warm() != 2 || lc.Warming() != 0 || lc.ColdStarts() != 2 {
		t.Fatalf("freeze must promote warming: warm=%d warming=%d coldStarts=%d",
			lc.Warm(), lc.Warming(), lc.ColdStarts())
	}
	lc.SetDesired(0, time.Millisecond)
	lc.advance(time.Hour, 0)
	if lc.Warm() != 2 || lc.Suspends() != 0 {
		t.Fatalf("frozen lifecycle suspended: warm=%d suspends=%d", lc.Warm(), lc.Suspends())
	}

	// Scale-to-zero pool: Freeze resurrects one slot to drain the queue.
	lc2 := newTestLifecycle(t, cfg, 0)
	lc2.Freeze(0)
	if lc2.Warm() != 1 {
		t.Fatalf("frozen empty pool warm = %d, want 1", lc2.Warm())
	}
	if err := lc2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleIdleCost pins the integral: warm-but-idle worker-time,
// charged segment-wise with the occupancy that held during each interval.
func TestLifecycleIdleCost(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 4}
	lc := newTestLifecycle(t, cfg, 2)
	// [0, 1s]: 2 warm, 0 busy -> 2 slot-seconds.
	lc.advance(time.Second, 1)
	// [1s, 3s]: 2 warm, 1 busy -> 2 slot-seconds.
	lc.advance(3*time.Second, 2)
	// [3s, 4s]: 2 warm, 2 busy -> 0.
	lc.advance(4*time.Second, 2)
	if got, want := lc.IdleCost(), 4*time.Second; got != want {
		t.Fatalf("idle cost = %v, want %v", got, want)
	}
	// A stale caller clock never rewinds the integral.
	lc.advance(2*time.Second, 0)
	if got := lc.IdleCost(); got != 4*time.Second {
		t.Fatalf("stale advance changed the integral: %v", got)
	}
}

// TestLifecycleZeroColdStart: with no penalty, raises take effect in place.
func TestLifecycleZeroColdStart(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 8}
	lc := newTestLifecycle(t, cfg, 0)
	if got := lc.SetDesired(5, 0); got != 5 {
		t.Fatalf("warm after zero-penalty raise = %d, want 5", got)
	}
	if lc.ColdStarts() != 5 || lc.Warming() != 0 {
		t.Fatalf("coldStarts/warming = %d/%d, want 5/0", lc.ColdStarts(), lc.Warming())
	}
}

// TestElasticPoolPropertyHarness model-checks PoolCore with an attached
// lifecycle under randomized schedules that mix scheduling ops with
// suspend/resume traffic (ScaleTo raises and drops, long clock advances
// that expire lingers and finish warmings). After every step: queue/worker
// conservation, slot conservation inside the lifecycle, the pool's worker
// count tracking warm capacity exactly, and the aging bound on dispatches.
func TestElasticPoolPropertyHarness(t *testing.T) {
	run := func(ops []propOp) error {
		core, err := NewPoolCore(8, 16, sched.ClassCPU, sched.CriticalityPolicy{})
		if err != nil {
			return err
		}
		lc, err := NewLifecycle(LifecycleConfig{
			Min: 1, Max: 8,
			ColdStart: 40 * time.Millisecond, IdleLinger: 60 * time.Millisecond,
		}, 3, 0)
		if err != nil {
			return err
		}
		if err := core.AttachLifecycle(lc, 0); err != nil {
			return err
		}
		now := time.Duration(0)
		nextID := 0
		dispatched := map[int]bool{}
		var execs []int
		for _, op := range ops {
			now += time.Duration(1+op.b%8) * time.Millisecond
			core.AdvanceLifecycle(now)
			switch op.kind {
			case 0: // submit
				core.Submit(propTask(nextID, now, op.a))
				nextID++
			case 1: // dispatch
				head, hadHead := core.queue.Head()
				got, ok := core.Dispatch(now)
				if !ok {
					break
				}
				if dispatched[got.ID] {
					return fmt.Errorf("task %d dispatched twice", got.ID)
				}
				dispatched[got.ID] = true
				if err := agedPassedOver(head, hadHead, got, sched.ClassCPU, now); err != nil {
					return err
				}
				execs = append(execs, 1)
			case 2: // coalesce onto the latest execution
				if len(execs) == 0 {
					break
				}
				payload := string(rune('a' + op.a%3))
				taken := core.Coalesce(1+op.a%4, func(x sched.HybridTask) bool { return x.Payload == payload })
				for _, tk := range taken {
					if dispatched[tk.ID] {
						return fmt.Errorf("task %d coalesced after dispatch", tk.ID)
					}
					dispatched[tk.ID] = true
				}
				execs[len(execs)-1] += len(taken)
			case 3: // complete a random open execution
				if len(execs) == 0 {
					break
				}
				i := op.a % len(execs)
				core.Complete(execs[i])
				execs = append(execs[:i], execs[i+1:]...)
			case 4: // advance far: lingers expire, warmings finish
				now += time.Duration(op.a%200) * time.Millisecond
				core.AdvanceLifecycle(now)
			case 5: // autoscaler decision: raise or drop desired capacity
				core.ScaleTo(op.a%10, now) // clamped into [Min, Max]
			case 6: // drive the lifecycle alone (a timer tick)
				core.AdvanceLifecycle(now)
			}
			if err := poolInvariants(core); err != nil {
				return err
			}
			if err := lc.checkInvariants(); err != nil {
				return err
			}
			if core.Workers() != lc.Warm() {
				return fmt.Errorf("pool capacity %d diverged from warm %d", core.Workers(), lc.Warm())
			}
			if lc.Warm() < core.Busy() {
				return fmt.Errorf("warm %d below busy %d: a suspended slot was still running",
					lc.Warm(), core.Busy())
			}
		}
		return nil
	}
	checkSequences(t, 4000, 7, run)
}

// TestLifecycleQuenchCancelsWarming is the regression for a pool dying
// mid-ColdStart: the quench must cancel pending warming slots uncharged —
// before the fix, a timer armed at their readyAt would later fire
// NextEvent into the dead pool and resurrect capacity into a grave — and
// must pin SetDesired so no new cold starts are scheduled while dead.
func TestLifecycleQuenchCancelsWarming(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 4, ColdStart: 100 * time.Millisecond, IdleLinger: 50 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 0)
	lc.SetDesired(2, 0)
	if lc.Warming() != 2 {
		t.Fatalf("warming = %d, want 2", lc.Warming())
	}
	lc.Quench(50 * time.Millisecond)
	if lc.Warming() != 0 || !lc.Quenched() {
		t.Fatalf("after quench: warming=%d quenched=%v, want 0/true", lc.Warming(), lc.Quenched())
	}
	if at, ok := lc.NextEvent(); ok {
		t.Fatalf("quenched pool armed an event at %v; a dead pool has no self-transitions", at)
	}
	// Past the cancelled pulls' readyAt: nothing may promote, and the
	// aborted pulls pay no cold start.
	lc.advance(200*time.Millisecond, 0)
	if lc.Warm() != 0 || lc.ColdStarts() != 0 {
		t.Fatalf("capacity resurrected into a quenched pool: warm=%d coldStarts=%d", lc.Warm(), lc.ColdStarts())
	}
	// Raising desired while quenched records the target but schedules
	// nothing.
	lc.SetDesired(3, 210*time.Millisecond)
	if lc.Warming() != 0 || lc.Desired() != 3 {
		t.Fatalf("quenched SetDesired: warming=%d desired=%d, want 0/3", lc.Warming(), lc.Desired())
	}
	// Unquench re-warms toward the recorded target, paying the cold
	// starts the fault deferred.
	lc.Unquench(300 * time.Millisecond)
	if lc.Warming() != 3 {
		t.Fatalf("warming after unquench = %d, want 3", lc.Warming())
	}
	lc.advance(400*time.Millisecond, 0)
	if lc.Warm() != 3 || lc.ColdStarts() != 3 {
		t.Fatalf("after recovery warm=%d coldStarts=%d, want 3/3", lc.Warm(), lc.ColdStarts())
	}
	if err := lc.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleQuenchKeepsWarmCapacity: warm slots are the durable half —
// a brown-out disarms their lingers (no suspension fires into a dead
// pool) but never releases them, so recovery resumes at pre-fault size.
func TestLifecycleQuenchKeepsWarmCapacity(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 4, ColdStart: 100 * time.Millisecond, IdleLinger: 50 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 2)
	lc.advance(0, 0) // both slots idle, lingers armed
	lc.Quench(10 * time.Millisecond)
	if lc.Warm() != 2 || lc.Lingering() != 0 {
		t.Fatalf("after quench: warm=%d lingering=%d, want 2/0", lc.Warm(), lc.Lingering())
	}
	// Far past both linger deadlines: no suspend may fire while quenched.
	lc.advance(500*time.Millisecond, 0)
	if lc.Warm() != 2 || lc.Suspends() != 0 {
		t.Fatalf("quenched pool suspended capacity: warm=%d suspends=%d", lc.Warm(), lc.Suspends())
	}
	lc.Unquench(600 * time.Millisecond)
	if lc.Warm() != 2 {
		t.Fatalf("warm after unquench = %d, want the pre-fault 2", lc.Warm())
	}
}

// TestLifecycleFreezeOutranksQuench: Close drains a dead pool too — the
// freeze clears the quench pin and guarantees a warm slot, so queued work
// leaves instead of stranding behind the fault.
func TestLifecycleFreezeOutranksQuench(t *testing.T) {
	cfg := LifecycleConfig{Min: 0, Max: 4, ColdStart: 100 * time.Millisecond}
	lc := newTestLifecycle(t, cfg, 0)
	lc.SetDesired(2, 0)
	lc.Quench(10 * time.Millisecond)
	lc.Freeze(20 * time.Millisecond)
	if lc.Quenched() {
		t.Fatal("freeze must clear the quench pin: a drain outranks a brown-out")
	}
	if lc.Warm() < 1 {
		t.Fatalf("frozen pool warm = %d, want >= 1 to drain its queue", lc.Warm())
	}
	if at, ok := lc.NextEvent(); ok {
		t.Fatalf("frozen pool armed an event at %v", at)
	}
	if err := lc.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
