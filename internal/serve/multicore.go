// multicore.go generalizes HybridCore's split two-pool layout to N pools
// and closes the load-balancing loop on *queue delay*: every pool owns its
// backlog and workers (a PoolCore), and the core records each task's wait
// time — arrival to dispatch — into a per-pool digest keyed {platform,
// class} (metrics.Observatory). Those wait digests are what the adaptive
// spillover/steal machinery consumes: instead of static queue-depth counts,
// a pool is rebalanced away from when its adopted wait-p95 has diverged
// above a peer's past the metrics hysteresis bands (Digest.Adopt's ratios
// over one metrics.Latch per pool pair), and rebalanced toward while its
// waits stay flat. Like the rest of the
// scheduling core it owns no goroutines and no clock — the discrete-event
// simulations drive it from virtual time, and the live engine applies the
// same wait-gap decision (waitGapLatched) to its own goroutine-backed
// pools.

package serve

import (
	"fmt"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sched"
)

// WaitQuantile is the queue-delay quantile the balance decisions key on:
// the paper's load-balancing results hinge on tail wait, not mean depth.
const WaitQuantile = 0.95

// PoolSpec describes one MultiCore member pool. Zero workers is allowed (a
// pool may exist purely as a backlog another class drains), but at least
// one worker must exist across the core.
type PoolSpec struct {
	// Name labels the pool (the platform label on wait digests and
	// telemetry). Must be unique within the core.
	Name string
	// Class is the pool's instance class; policies and service estimates
	// are class-keyed, and rebalancing may cross or stay within a class.
	Class sched.InstanceClass
	// Workers is the pool size; QueueDepth bounds its admission queue.
	Workers, QueueDepth int
	// Policy selects queued work for free workers (nil = FCFS).
	Policy sched.Policy
}

// MultiCore is the N-pool scheduling state machine: per-pool backlogs and
// workers with submit-time spillover and drain-time stealing between any
// pair of pools — the generalization of the two-class HybridCore that lets
// multiple same-class pools (several CPU platforms, say) rebalance with the
// same wait-keyed logic. Not safe for concurrent use on its own; callers
// serialize access (the simulations are single-threaded).
type MultiCore struct {
	pools []*PoolCore
	specs []PoolSpec
	// waits is the queue-delay observatory keyed {platform, class}: each
	// successful dispatch (and coalesce) records the served task's
	// arrival→dispatch wait against the pool that served it — a stolen
	// task charges its wait to the thief, not the queue it first landed on.
	waits  *metrics.Observatory
	warmup int64
	// latches holds one adoption latch per directed (donor, peer) pair:
	// Digest.Adopt keeps a single latch per digest, which is right for one
	// stable prior but would make N-way pairwise comparisons share state
	// and depend on evaluation order.
	latches map[[2]int]*metrics.Latch
	// submitted counts admissions at the core level exactly once, however
	// many times a task later moves between pools (spill, then steal): the
	// per-pool counters transfer on a steal, this one never does.
	submitted int
	stolen    int
	// faults counts FailPool transitions; requeued counts tasks returned
	// to their queue by Requeue across the pool set.
	faults, requeued int
}

// NewMultiCore builds the N-pool core. Wait digests use the default
// window/warmup; SetWaitTuning retunes them before traffic.
func NewMultiCore(specs []PoolSpec) (*MultiCore, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: empty multi-pool core")
	}
	total := 0
	seen := make(map[string]bool, len(specs))
	m := &MultiCore{
		specs:   append([]PoolSpec(nil), specs...),
		waits:   metrics.NewObservatory(0, 0),
		warmup:  metrics.DefaultWarmup,
		latches: make(map[[2]int]*metrics.Latch),
	}
	for _, s := range m.specs {
		if s.Name == "" || seen[s.Name] {
			return nil, fmt.Errorf("serve: multi-pool names must be unique and non-empty (%q)", s.Name)
		}
		seen[s.Name] = true
		if s.Workers < 0 {
			return nil, fmt.Errorf("serve: pool %q has negative workers", s.Name)
		}
		total += s.Workers
		q, err := sched.NewHybridQueue(s.QueueDepth)
		if err != nil {
			return nil, err
		}
		policy := s.Policy
		if policy == nil {
			policy = sched.FCFSPolicy{}
		}
		m.pools = append(m.pools, &PoolCore{
			queue: q, policy: policy, class: s.Class,
			free: s.Workers, total: s.Workers,
		})
	}
	if total == 0 {
		return nil, fmt.Errorf("serve: multi-pool core has no workers")
	}
	return m, nil
}

// SetWaitTuning retunes the wait digests' window and warmup (defaults
// metrics.DefaultWindow/DefaultWarmup when non-positive). It must be called
// before any dispatch: retuning replaces the observatory, dropping history.
func (m *MultiCore) SetWaitTuning(window, warmup int) {
	m.waits = metrics.NewObservatory(window, warmup)
	m.warmup = m.waits.Warmup()
	m.latches = make(map[[2]int]*metrics.Latch)
}

// Pools reports the pool count.
func (m *MultiCore) Pools() int { return len(m.pools) }

// Pool exposes one member pool (diagnostics, coexisting HybridCore views).
func (m *MultiCore) Pool(i int) *PoolCore { return m.pools[i] }

// Spec returns one pool's descriptor.
func (m *MultiCore) Spec(i int) PoolSpec { return m.specs[i] }

// Index resolves a pool name to its index (-1 when unknown).
func (m *MultiCore) Index(name string) int {
	for i, s := range m.specs {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// SubmitTo admits a task onto pool i's backlog; it reports false (drop) at
// that backlog's bound.
//
//dscslint:hotpath
func (m *MultiCore) SubmitTo(i int, t sched.HybridTask) bool {
	if !m.pools[i].Submit(t) {
		return false
	}
	m.submitted++
	return true
}

// recordWait charges a served task's queue delay — arrival to dispatch at
// now — to the pool that served it. A task stolen across pools therefore
// charges the thief (the pool that actually freed it), while its Arrived
// instant survives every move.
func (m *MultiCore) recordWait(i int, now time.Duration, t sched.HybridTask) {
	m.waits.Record(m.specs[i].Name, m.specs[i].Class.String(), now-t.Arrived)
}

// Dispatch hands pool i's policy pick to one of its free workers and
// records the task's queue delay against the pool.
//
//dscslint:hotpath
func (m *MultiCore) Dispatch(i int, now time.Duration) (sched.HybridTask, bool) {
	t, ok := m.pools[i].Dispatch(now)
	if ok {
		m.recordWait(i, now, t)
	}
	return t, ok
}

// DispatchFormed is Dispatch gated by pool i's attached BatchFormer (see
// PoolCore.DispatchFormed); a released task records its queue delay —
// including the forming hold — against the pool.
//
//dscslint:hotpath
func (m *MultiCore) DispatchFormed(i int, now time.Duration) (t sched.HybridTask, ok bool, wake time.Duration, wakeOK bool) {
	t, ok, wake, wakeOK = m.pools[i].DispatchFormed(now)
	if ok {
		m.recordWait(i, now, t)
	}
	return t, ok, wake, wakeOK
}

// Coalesce batches up to max matching queued tasks of pool i onto its just
// dispatched worker, recording each coalesced task's queue delay at now
// (coalescing ends a task's wait exactly as a dispatch does).
//
//dscslint:hotpath
func (m *MultiCore) Coalesce(i int, now time.Duration, max int, match func(sched.HybridTask) bool) []sched.HybridTask {
	taken := m.pools[i].Coalesce(max, match)
	for _, t := range taken {
		m.recordWait(i, now, t)
	}
	return taken
}

// Complete retires n tasks from pool i and frees their worker.
func (m *MultiCore) Complete(i, n int) { m.pools[i].Complete(n) }

// FailPool browns pool i out at now (see PoolCore.Fail) and invalidates
// the balance state its history armed: the pool's wait digest is dropped
// — a dead pool's recorded waits price a world that no longer exists —
// and every hysteresis latch involving it is released without counting a
// flip, so spill/steal decisions re-derive from live evidence instead of
// the grave's history. Idempotent while dead.
func (m *MultiCore) FailPool(i int, now time.Duration) {
	p := m.pools[i]
	if !p.Healthy() {
		return
	}
	p.Fail(now)
	m.faults++
	m.waits.Forget(m.specs[i].Name)
	for k, l := range m.latches {
		if k[0] == i || k[1] == i {
			l.Reset()
		}
	}
}

// RecoverPool ends pool i's brown-out at now (see PoolCore.Recover). The
// wait digest stays forgotten: the recovered pool re-warms its balance
// evidence from scratch.
func (m *MultiCore) RecoverPool(i int, now time.Duration) {
	m.pools[i].Recover(now)
}

// Healthy reports whether pool i is dispatching.
func (m *MultiCore) Healthy(i int) bool { return m.pools[i].Healthy() }

// Requeue returns one execution's in-flight tasks to pool i's queue (see
// PoolCore.Requeue — at-most-once accounting, arrival order preserved).
func (m *MultiCore) Requeue(i int, tasks []sched.HybridTask) {
	m.pools[i].Requeue(tasks)
	m.requeued += len(tasks)
}

// Faults counts FailPool transitions; Requeued counts tasks returned to
// their queue across the pool set.
func (m *MultiCore) Faults() int   { return m.faults }
func (m *MultiCore) Requeued() int { return m.requeued }

// Steal moves up to max of pool from's oldest queued tasks onto pool to's
// backlog (see PoolCore.StealFrom: arrival instants and submission
// accounting move with the tasks, capped at the thief's queue room).
//
//dscslint:hotpath
func (m *MultiCore) Steal(from, to, max int) []sched.HybridTask {
	if from == to {
		return nil
	}
	moved := m.pools[to].StealFrom(m.pools[from], max)
	m.stolen += len(moved)
	return moved
}

// AdvanceLifecycles drives every attached pool lifecycle to now (see
// PoolCore.AdvanceLifecycle) and reports whether any pool's capacity
// changed — the sims re-drive dispatch when it did. Pools without a
// lifecycle are untouched, so a fixed MultiCore behaves bit-identically.
// Capacity changes move total/free in lockstep, which the balance
// machinery sees immediately: peerWait's idle fast path needs free > 0,
// so a suspended (zero-warm) pool prices at its digest, never at zero.
func (m *MultiCore) AdvanceLifecycles(now time.Duration) bool {
	changed := false
	for _, p := range m.pools {
		if p.AdvanceLifecycle(now) {
			changed = true
		}
	}
	return changed
}

// NextLifecycleEvent reports the earliest pending lifecycle event across
// the pool set — the instant a sim should schedule its next lifecycle
// drive at.
func (m *MultiCore) NextLifecycleEvent() (time.Duration, bool) {
	var at time.Duration
	ok := false
	for _, p := range m.pools {
		lc := p.Lifecycle()
		if lc == nil {
			continue
		}
		if evt, has := lc.NextEvent(); has && (!ok || evt < at) {
			at, ok = evt, true
		}
	}
	return at, ok
}

// WaitDigest exposes pool i's queue-delay digest (nil until its first
// dispatch).
func (m *MultiCore) WaitDigest(i int) *metrics.Digest {
	return m.waits.Digest(m.specs[i].Name, m.specs[i].Class.String())
}

// WaitQuantileOf reads pool i's windowed queue-delay quantile (0 until the
// pool has dispatched).
func (m *MultiCore) WaitQuantileOf(i int, q float64) time.Duration {
	if dg := m.WaitDigest(i); dg != nil {
		return dg.Quantile(q)
	}
	return 0
}

// Overloaded is the adaptive-balance trigger: it reports whether pool
// from's adopted wait-p95 has diverged above pool to's past the hysteresis
// latch (warmup, then enter at 1.5x, release within 1.2x), so the decision
// flips once per genuine imbalance instead of flapping around the
// boundary. Each directed pool pair owns its latch.
//
// Health short-circuits the wait evidence in both directions. Toward a
// dead peer the answer is always no — however overloaded the donor, work
// must not route into a grave. Out of a dead donor the answer is yes the
// moment it holds a backlog: its orphaned and requeued work has no
// workers coming back for it, so it escapes without the latch, the
// warmup, or any digest evidence (a dead pool's digest was forgotten
// anyway).
func (m *MultiCore) Overloaded(from, to int) bool {
	if !m.Healthy(to) {
		return false
	}
	if !m.Healthy(from) {
		return m.pools[from].QueueLen() > 0
	}
	return waitGapLatched(m.WaitDigest(from), m.latch(from, to), m.peerWait(to), m.warmup)
}

// latch returns the directed (from, to) pair's adoption latch, created on
// first use.
func (m *MultiCore) latch(from, to int) *metrics.Latch {
	k := [2]int{from, to}
	l := m.latches[k]
	if l == nil {
		l = &metrics.Latch{}
		m.latches[k] = l
	}
	return l
}

// peerWait prices what moved work would wait on pool i right now: its
// recorded wait-p95 — except that an idle pool (empty backlog, free
// worker) serves new work immediately, so it prices at zero no matter what
// its digest holds. Without the idle fast path a thief's digest poisons
// the gap signal: stolen tasks charge their whole arrival→dispatch wait to
// the pool that served them (the attribution the observability wants), so
// one rescue inflates the rescuer's p95 to the donor's level and the latch
// never re-enters while the backlog regrows.
//
// The health bit is checked before the idle fast path: a dead pool's
// empty backlog and freed workers look exactly like idleness ("idle →
// 0 wait") and would make it the most attractive target in every
// ranking, so it prices at its digest instead — and since FailPool
// forgot that digest, selection must additionally skip dead pools
// (BalanceTarget does; Overloaded refuses dead peers outright).
func (m *MultiCore) peerWait(i int) time.Duration {
	p := m.pools[i]
	if p.Healthy() && p.QueueLen() == 0 && p.free > 0 {
		return 0
	}
	return m.WaitQuantileOf(i, WaitQuantile)
}

// PricedWait exposes peerWait's pricing to external placement policies —
// the workflow locality placer ranks fallback pools with the same signal
// the balance machinery uses, so "least-priced wait" means one thing
// everywhere.
func (m *MultiCore) PricedWait(i int) time.Duration { return m.peerWait(i) }

// Idle reports whether pool i could serve new work immediately: healthy,
// empty backlog, free worker — the locality placer's keep-it-local fast
// path.
func (m *MultiCore) Idle(i int) bool {
	p := m.pools[i]
	return p.Healthy() && p.QueueLen() == 0 && p.free > 0
}

// BalanceTarget picks the pool a submission aimed at from should spill to:
// the eligible peer with the lowest priced wait (peerWait — an idle pool
// prices at zero however contaminated its digest; ties to the lowest
// index), but only when from's adopted wait-p95 gap over that peer has
// latched. A spill routes around a backlog, so a from pool with an empty
// queue never spills — without work queued ahead of it the submission
// dispatches immediately anyway, and microscopic warmed waits beside a
// never-waited peer must not reroute it. A nil eligible accepts every
// other pool.
func (m *MultiCore) BalanceTarget(from int, eligible func(int) bool) (int, bool) {
	if m.pools[from].QueueLen() == 0 {
		return 0, false
	}
	best, found := 0, false
	var bestWait time.Duration
	for i := range m.pools {
		if i == from || (eligible != nil && !eligible(i)) || !m.Healthy(i) {
			continue
		}
		// Rank by the same pricing the Overloaded gate applies: ranking by
		// raw digest p95 would let a rescue-contaminated idle pool sort
		// last and never be selected.
		w := m.peerWait(i)
		if !found || w < bestWait {
			best, bestWait, found = i, w, true
		}
	}
	if !found || !m.Overloaded(from, best) {
		return 0, false
	}
	return best, true
}

// StealDonor picks the pool an idle thief should pull queued work from: the
// eligible peer with the deepest backlog whose adopted wait-p95 gap over
// the thief has latched. A nil eligible accepts every other pool. A dead
// thief never steals; a dead donor with a backlog always qualifies
// (Overloaded's dead-donor fast path) — stealing is how its orphans get
// rescued.
func (m *MultiCore) StealDonor(to int, eligible func(int) bool) (int, bool) {
	if !m.Healthy(to) {
		return 0, false
	}
	donor, found := 0, false
	deepest := 0
	for i, p := range m.pools {
		if i == to || (eligible != nil && !eligible(i)) || p.QueueLen() == 0 {
			continue
		}
		if !m.Overloaded(i, to) {
			continue
		}
		if !found || p.QueueLen() > deepest {
			donor, deepest, found = i, p.QueueLen(), true
		}
	}
	return donor, found
}

// QueueLen totals queue occupancy across pools.
func (m *MultiCore) QueueLen() int {
	n := 0
	for _, p := range m.pools {
		n += p.QueueLen()
	}
	return n
}

// Dropped totals admission rejections across pools.
func (m *MultiCore) Dropped() int {
	n := 0
	for _, p := range m.pools {
		n += p.Dropped()
	}
	return n
}

// Completed totals retired tasks across pools.
func (m *MultiCore) Completed() int {
	n := 0
	for _, p := range m.pools {
		n += p.Completed()
	}
	return n
}

// Stolen counts tasks moved between pools by Steal.
func (m *MultiCore) Stolen() int { return m.stolen }

// Conservation checks the bookkeeping invariant across the pool set: every
// admitted task is queued, executing, or completed on exactly one pool, and
// a task that moved twice (spilled at submit, then stolen at drain) still
// counts exactly once — the core-level submission counter never follows
// moves, so a double-moved task that was double-counted would surface here
// as a sum mismatch.
func (m *MultiCore) Conservation() error {
	poolSubmitted := 0
	for i, p := range m.pools {
		if err := p.Conservation(); err != nil {
			return fmt.Errorf("pool %s: %w", m.specs[i].Name, err)
		}
		poolSubmitted += p.submitted
	}
	if poolSubmitted != m.submitted {
		return fmt.Errorf("serve: multi conservation violated: pools account %d submissions, core admitted %d",
			poolSubmitted, m.submitted)
	}
	accounted := m.QueueLen() + m.running() + m.Completed()
	if m.submitted != accounted {
		return fmt.Errorf("serve: multi conservation violated: %d submitted != %d queued + %d running + %d completed",
			m.submitted, m.QueueLen(), m.running(), m.Completed())
	}
	return nil
}

// running totals tasks currently executing across pools.
func (m *MultiCore) running() int {
	n := 0
	for _, p := range m.pools {
		n += p.Running()
	}
	return n
}

// waitGapLatched is the shared wait-keyed balance decision: whether donor's
// adopted wait-p95 has diverged above the peer's priced wait past the
// hysteresis latch. It applies the Digest.Adopt bands one-sidedly
// (metrics.Latch.Above) over a latch owned by the (donor, peer) pair:
// below warmup nothing moves, and once warmed the latch enters at
// AdoptEnterRatio and releases within AdoptExitRatio — only upward
// divergence ever arms it. A peer priced at zero (idle, or never waited)
// adopts any warmed positive donor wait outright: queueing beside an idle
// pool is the clearest imbalance there is. A donor whose recent window
// holds no waits (p95 zero — work dispatches on arrival) never trips the
// latch, which is exactly the wait-keyed sensitivity the static depth
// counts lack.
func waitGapLatched(donor *metrics.Digest, latch *metrics.Latch, peerWait time.Duration, warmup int64) bool {
	if donor == nil || donor.Count() < warmup {
		return false
	}
	return latch.Above(donor.Quantile(WaitQuantile), peerWait)
}
