// Package dsa implements the cycle-level simulator of the in-storage
// domain-specific accelerator: a weight-stationary systolic Matrix
// Processing Unit (MPU) coupled to a SIMD Vector Processing Unit (VPU)
// through a shared multi-bank output buffer, with a DMA engine that double
// buffers tile transfers against compute.
//
// The simulator executes compiled loop descriptors (internal/isa) and
// reports cycles, utilization, and the activity counters the power model
// (internal/power) converts to energy. The same simulator, configured at a
// lower clock, models the FPGA implementations of the DSA.
package dsa

import (
	"fmt"
	"time"

	"dscs/internal/isa"
	"dscs/internal/power"
	"dscs/internal/units"
)

// Config describes one DSA design point.
type Config struct {
	Name string

	// Rows x Cols systolic array of 8-bit PEs.
	Rows, Cols int

	// On-chip buffer capacities. The weight buffer feeds the array; the
	// input buffer streams activations; the output buffer holds 32-bit
	// accumulators and is shared with the VPU.
	InputBuf, WeightBuf, OutputBuf units.Bytes

	// VPULanes is the SIMD width of the vector unit.
	VPULanes int

	Freq units.Frequency
	DRAM power.DRAMKind

	// DoubleBuffered overlaps tile DMA with compute (the default design);
	// disabling it is the ablation knob.
	DoubleBuffered bool
}

// TotalBuf returns the combined on-chip buffer capacity.
func (c Config) TotalBuf() units.Bytes { return c.InputBuf + c.WeightBuf + c.OutputBuf }

// PEs returns the PE count.
func (c Config) PEs() int { return c.Rows * c.Cols }

// String summarizes the design point the way the paper labels them
// (e.g. "Dim128-4MB-DDR5").
func (c Config) String() string {
	return fmt.Sprintf("Dim%d-%v-%v", c.Rows, c.TotalBuf(), c.DRAM)
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("dsa: non-positive array dims %dx%d", c.Rows, c.Cols)
	}
	if c.InputBuf <= 0 || c.WeightBuf <= 0 || c.OutputBuf <= 0 {
		return fmt.Errorf("dsa: non-positive buffer sizes")
	}
	if c.VPULanes <= 0 {
		return fmt.Errorf("dsa: non-positive VPU lanes")
	}
	if c.Freq <= 0 {
		return fmt.Errorf("dsa: non-positive frequency")
	}
	if c.DRAM.Bandwidth() <= 0 {
		return fmt.Errorf("dsa: unknown DRAM kind")
	}
	return nil
}

// WithBuffers splits a total buffer budget into the default 2:1:1
// weight:input:output partition.
func (c Config) WithBuffers(total units.Bytes) Config {
	c.WeightBuf = total / 2
	c.InputBuf = total / 4
	c.OutputBuf = total - c.WeightBuf - c.InputBuf
	return c
}

// PaperOptimal is the configuration the paper's design-space exploration
// selects: a 128x128 systolic array, 4 MB of on-chip scratchpad, DDR5
// memory, at 1 GHz.
func PaperOptimal() Config {
	c := Config{
		Name: "dscs-dsa",
		Rows: 128, Cols: 128,
		VPULanes:       128,
		Freq:           units.GHz,
		DRAM:           power.DDR5,
		DoubleBuffered: true,
	}
	return c.WithBuffers(4 * units.MiB)
}

// Stats aggregates an execution.
type Stats struct {
	Cycles        uint64
	ComputeCycles uint64 // MPU busy cycles
	VectorCycles  uint64 // VPU busy cycles
	MemCycles     uint64 // DMA busy cycles
	MACs          int64
	VectorOps     int64
	DRAMBytes     units.Bytes
	SRAMBytes     units.Bytes

	// PerLayer records per-instruction latency for breakdown analysis.
	PerLayer []LayerStat
}

// LayerStat is the per-instruction slice of an execution.
type LayerStat struct {
	Layer  string
	Op     isa.Opcode
	Cycles uint64
}

// Latency converts the cycle count to wall time at the configured clock.
func (s Stats) Latency(f units.Frequency) time.Duration {
	return units.CyclesToDuration(s.Cycles, f)
}

// Utilization is the fraction of peak MAC throughput achieved.
func (s Stats) Utilization(c Config) float64 {
	if s.Cycles == 0 {
		return 0
	}
	peak := float64(s.Cycles) * float64(c.PEs())
	return float64(s.MACs) / peak
}

// Simulator executes programs on one design point.
type Simulator struct {
	cfg          Config
	bytesPerCyc  float64
	keepPerLayer bool
}

// New returns a simulator for the design point.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:         cfg,
		bytesPerCyc: float64(cfg.DRAM.Bandwidth()) / float64(cfg.Freq),
	}, nil
}

// Config returns the simulated design point.
func (s *Simulator) Config() Config { return s.cfg }

// KeepPerLayer enables per-instruction stats collection.
func (s *Simulator) KeepPerLayer(on bool) { s.keepPerLayer = on }

// memCycles converts a DRAM byte count to DMA cycles.
func (s *Simulator) memCycles(b units.Bytes) uint64 {
	if b <= 0 {
		return 0
	}
	return uint64(float64(b)/s.bytesPerCyc) + 1
}

// Run executes a program and returns its statistics.
func (s *Simulator) Run(p *isa.Program) (Stats, error) {
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	var st Stats
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var cycles uint64
		switch in.Op {
		case isa.OpGEMMLoop:
			cycles = s.runGEMM(in, &st)
		case isa.OpVectorLoop:
			cycles = s.runVector(in, &st)
		case isa.OpLoad, isa.OpStore:
			cycles = s.memCycles(in.Bytes)
			st.MemCycles += cycles
			st.DRAMBytes += in.Bytes
		case isa.OpSync:
			cycles = 1
		}
		st.Cycles += cycles
		if s.keepPerLayer {
			st.PerLayer = append(st.PerLayer, LayerStat{Layer: in.Layer, Op: in.Op, Cycles: cycles})
		}
	}
	return st, nil
}

// runGEMM models a tiled GEMM loop. Per-tile compute follows the systolic
// pipeline (fill the array with the K-dim, stream M rows, drain N columns);
// with double buffering the loop runs at max(compute, DMA) plus the pipeline
// edges, otherwise compute and DMA serialize.
func (s *Simulator) runGEMM(in *isa.Instr, st *Stats) uint64 {
	nM, nK, nN := in.Tiles()
	if nM == 0 {
		return 0
	}
	// Sum over the tile grid of (tileM + tileK + tileN), accounting for
	// remainder tiles exactly: sums of tile extents along each dim equal
	// the full dims.
	perCount := uint64(nK)*uint64(nN)*uint64(in.M) +
		uint64(nM)*uint64(nN)*uint64(in.K) +
		uint64(nM)*uint64(nK)*uint64(in.N)
	compute := perCount * uint64(in.Count)

	dramBytes := in.WeightBytes + in.InputBytes + in.OutputBytes
	mem := s.memCycles(dramBytes)

	var total uint64
	if s.cfg.DoubleBuffered {
		total = maxU64(compute, mem)
		// Pipeline edges: the first tile's fill DMA and the last tile's
		// drain are not overlapped.
		firstTile := units.Bytes(in.TileK*in.TileN + in.TileM*in.TileK)
		total += s.memCycles(firstTile)
		total += uint64(in.TileM + in.TileK + in.TileN)
	} else {
		total = compute + mem
	}

	// Fused epilogue activations ride the output stream: they add VPU
	// energy but no extra cycles (the output path applies them in flight).
	outElems := int64(in.M) * int64(in.N) * int64(in.Count)
	if in.FusedVec != isa.VecNone {
		st.VectorOps += outElems * int64(in.FusedVec.VectorCost())
	}

	st.ComputeCycles += compute
	st.MemCycles += mem
	st.MACs += in.MACs()
	st.DRAMBytes += dramBytes
	// SRAM traffic: DMA fills plus operand streaming. Each activation byte
	// is read once per (k,n) tile pass and broadcast across a PE row; each
	// weight byte is read once per resident pass; outputs accumulate in the
	// output buffer across the K loop.
	st.SRAMBytes += dramBytes +
		units.Bytes(in.MACs()/int64(minInt(s.cfg.Rows, s.cfg.Cols))) +
		units.Bytes(outElems*4)
	return total
}

// runVector models a SIMD loop: elems spread over the lanes at the op's
// per-element cost, with DMA for operands unless the chain is on-chip.
func (s *Simulator) runVector(in *isa.Instr, st *Stats) uint64 {
	ops := in.Elems * int64(in.Vec.VectorCost())
	compute := uint64(ops/int64(s.cfg.VPULanes)) + 1
	var mem uint64
	dram := in.DRAMBytes()
	if dram > 0 {
		mem = s.memCycles(dram)
	}
	var total uint64
	if s.cfg.DoubleBuffered {
		total = maxU64(compute, mem)
	} else {
		total = compute + mem
	}
	st.VectorCycles += compute
	st.MemCycles += mem
	st.VectorOps += ops
	st.DRAMBytes += dram
	st.SRAMBytes += units.Bytes(2 * in.Elems)
	return total
}

// Activity converts execution stats to the power model's activity record.
func (s *Simulator) Activity(st Stats) power.Activity {
	return power.Activity{
		MACs:        st.MACs,
		VectorOps:   st.VectorOps,
		SRAMBytes:   st.SRAMBytes,
		DRAMBytes:   st.DRAMBytes,
		BufferBytes: s.cfg.TotalBuf(),
		Runtime:     st.Latency(s.cfg.Freq),
		DRAM:        s.cfg.DRAM,
		Area:        power.DieArea(power.Node45nm, s.cfg.PEs(), s.cfg.TotalBuf()),
	}
}

// Energy estimates the execution's energy and average power on node t, with
// the die area evaluated on the same node.
func (s *Simulator) Energy(st Stats, t power.TechNode) (units.Energy, units.Power) {
	a := s.Activity(st)
	a.Area = power.DieArea(t, s.cfg.PEs(), s.cfg.TotalBuf())
	return power.Estimate(t, a)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
