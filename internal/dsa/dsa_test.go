package dsa_test

import (
	"testing"
	"time"

	"dscs/internal/compiler"
	"dscs/internal/dsa"
	"dscs/internal/isa"
	"dscs/internal/model"
	"dscs/internal/power"
	"dscs/internal/units"
)

func mustSim(t *testing.T, cfg dsa.Config) *dsa.Simulator {
	t.Helper()
	s, err := dsa.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, s *dsa.Simulator, g *model.Graph, batch int) dsa.Stats {
	t.Helper()
	p, err := compiler.Compile(g, batch, s.Config(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPaperOptimalConfig(t *testing.T) {
	cfg := dsa.PaperOptimal()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Rows != 128 || cfg.Cols != 128 {
		t.Errorf("array = %dx%d, want 128x128", cfg.Rows, cfg.Cols)
	}
	if cfg.TotalBuf() != 4*units.MiB {
		t.Errorf("buffers = %v, want 4MiB", cfg.TotalBuf())
	}
	if cfg.DRAM != power.DDR5 {
		t.Errorf("memory = %v, want DDR5", cfg.DRAM)
	}
	if cfg.String() != "Dim128-4.19MB-DDR5" {
		t.Errorf("label = %q", cfg.String())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []dsa.Config{
		{},
		func() dsa.Config { c := dsa.PaperOptimal(); c.Rows = 0; return c }(),
		func() dsa.Config { c := dsa.PaperOptimal(); c.InputBuf = 0; return c }(),
		func() dsa.Config { c := dsa.PaperOptimal(); c.VPULanes = 0; return c }(),
		func() dsa.Config { c := dsa.PaperOptimal(); c.Freq = 0; return c }(),
	}
	for i, c := range bad {
		if _, err := dsa.New(c); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestResNet50Throughput(t *testing.T) {
	// The 128x128 @1GHz design should run ResNet-50 batch-1 in roughly
	// 0.5-4 ms (hundreds to thousands of fps, the range in Figure 7).
	s := mustSim(t, dsa.PaperOptimal())
	st := mustRun(t, s, model.ResNet50(), 1)
	lat := st.Latency(s.Config().Freq)
	if lat < 300*time.Microsecond || lat > 6*time.Millisecond {
		t.Errorf("resnet-50 latency = %v, want 0.3-6ms", lat)
	}
	util := st.Utilization(s.Config())
	if util < 0.05 || util > 1 {
		t.Errorf("utilization = %.3f", util)
	}
}

func TestBatchAmortizesWeights(t *testing.T) {
	// Weight-bound models (BERT) gain large per-item speedups from
	// batching; per-item latency at batch 64 must be well under batch-1
	// latency (Figure 14's mechanism).
	s := mustSim(t, dsa.PaperOptimal())
	g := model.BERTBaseChatbot()
	l1 := mustRun(t, s, g, 1).Latency(s.Config().Freq)
	l64 := mustRun(t, s, g, 64).Latency(s.Config().Freq)
	perItem := l64 / 64
	if perItem >= l1 {
		t.Errorf("batching must help: batch-1 %v vs per-item %v", l1, perItem)
	}
	if float64(l1)/float64(perItem) < 2 {
		t.Errorf("weight-bound model should gain >2x from batch 64, got %.2fx",
			float64(l1)/float64(perItem))
	}
}

func TestBigArrayWorseAtBatchOne(t *testing.T) {
	// The paper's key DSE finding: at batch 1 a 1024x1024 array is slower
	// than 128x128 because fill/drain and tile DMA dominate.
	small := dsa.PaperOptimal()
	big := dsa.PaperOptimal()
	big.Rows, big.Cols = 1024, 1024
	big = big.WithBuffers(32 * units.MiB)
	sSmall := mustSim(t, small)
	sBig := mustSim(t, big)
	suite := []*model.Graph{model.ResNet50(), model.BERTBaseChatbot(), model.ViTRemoteSensing()}
	var smallTotal, bigTotal time.Duration
	for _, g := range suite {
		smallTotal += mustRun(t, sSmall, g, 1).Latency(small.Freq)
		bigTotal += mustRun(t, sBig, g, 1).Latency(big.Freq)
	}
	if bigTotal <= smallTotal {
		t.Errorf("1024x1024 (%v) should be slower than 128x128 (%v) at batch 1",
			bigTotal, smallTotal)
	}
}

func TestDoubleBufferingHelps(t *testing.T) {
	on := dsa.PaperOptimal()
	off := dsa.PaperOptimal()
	off.DoubleBuffered = false
	sOn := mustSim(t, on)
	sOff := mustSim(t, off)
	g := model.ResNet50()
	lOn := mustRun(t, sOn, g, 1).Latency(on.Freq)
	lOff := mustRun(t, sOff, g, 1).Latency(off.Freq)
	if lOn >= lOff {
		t.Errorf("double buffering must help: on=%v off=%v", lOn, lOff)
	}
}

func TestMemoryBandwidthMatters(t *testing.T) {
	ddr4 := dsa.PaperOptimal()
	ddr4.DRAM = power.DDR4
	hbm := dsa.PaperOptimal()
	hbm.DRAM = power.HBM2
	sD := mustSim(t, ddr4)
	sH := mustSim(t, hbm)
	// A memory-bound model (BERT batch-1 streams 110M weights).
	g := model.BERTBaseChatbot()
	lD := mustRun(t, sD, g, 1).Latency(ddr4.Freq)
	lH := mustRun(t, sH, g, 1).Latency(hbm.Freq)
	if lH >= lD {
		t.Errorf("HBM2 must beat DDR4 on weight streaming: %v vs %v", lH, lD)
	}
}

func TestStatsConsistency(t *testing.T) {
	s := mustSim(t, dsa.PaperOptimal())
	g := model.InceptionV3Clinical()
	st := mustRun(t, s, g, 1)
	if st.MACs != g.MACs() {
		t.Errorf("sim MACs %d != graph MACs %d", st.MACs, g.MACs())
	}
	if st.Cycles == 0 || st.DRAMBytes <= 0 || st.SRAMBytes < st.DRAMBytes {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.ComputeCycles == 0 || st.MemCycles == 0 {
		t.Error("compute and memory cycles must both be non-zero")
	}
}

func TestEnergyPositiveAndScalesWithNode(t *testing.T) {
	s := mustSim(t, dsa.PaperOptimal())
	st := mustRun(t, s, model.ResNet50(), 1)
	e45, p45 := s.Energy(st, power.Node45nm)
	e14, p14 := s.Energy(st, power.Node14nm)
	if e45 <= 0 || e14 <= 0 {
		t.Fatal("energy must be positive")
	}
	if e14 >= e45 || p14 >= p45 {
		t.Errorf("14nm must be more efficient: e %v vs %v", e14, e45)
	}
	// The paper quotes ~4.2 W for the running DSA at 14 nm.
	if p14 < 1 || p14 > 10 {
		t.Errorf("14nm average power = %v, want 1-10W", p14)
	}
}

func TestPerLayerCollection(t *testing.T) {
	s := mustSim(t, dsa.PaperOptimal())
	s.KeepPerLayer(true)
	p, err := compiler.Compile(model.ResNet18Moderation(), 1, s.Config(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerLayer) != len(p.Instrs) {
		t.Fatalf("per-layer stats %d != instrs %d", len(st.PerLayer), len(p.Instrs))
	}
	var sum uint64
	for _, ls := range st.PerLayer {
		sum += ls.Cycles
	}
	if sum != st.Cycles {
		t.Errorf("per-layer cycles %d != total %d", sum, st.Cycles)
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	s := mustSim(t, dsa.PaperOptimal())
	bad := &isa.Program{Instrs: []isa.Instr{{Op: isa.OpGEMMLoop}}}
	if _, err := s.Run(bad); err == nil {
		t.Error("invalid program must be rejected")
	}
}

func TestSyncAndLoadCycles(t *testing.T) {
	s := mustSim(t, dsa.PaperOptimal())
	p := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpLoad, Layer: "in", Bytes: 38 * units.MB}, // 1ms at DDR5
		{Op: isa.OpSync},
	}}
	st, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	lat := st.Latency(s.Config().Freq)
	if lat < 900*time.Microsecond || lat > 1100*time.Microsecond {
		t.Errorf("38MB load at DDR5 = %v, want ~1ms", lat)
	}
}
