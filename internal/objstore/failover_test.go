package objstore

import (
	"testing"

	"dscs/internal/units"
)

func TestFailoverRead(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Put("k", 4*units.MB, false); err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Lookup("k")
	primary := obj.Chunks[0].Replicas[0].NodeID

	// Healthy read works.
	healthyLat, _, err := s.GetWithFailover("k", 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Kill one replica holder: reads still succeed, slightly slower when
	// the dead node was first in rotation.
	if err := s.FailNode(primary); err != nil {
		t.Fatal(err)
	}
	lat, _, err := s.GetWithFailover("k", 0.5)
	if err != nil {
		t.Fatalf("read must fail over: %v", err)
	}
	if lat <= 0 || healthyLat <= 0 {
		t.Fatal("degenerate latencies")
	}

	// Kill every replica holder: the read fails.
	for _, rep := range obj.Chunks[0].Replicas {
		s.FailNode(rep.NodeID)
	}
	if _, _, err := s.GetWithFailover("k", 0.5); err == nil {
		t.Fatal("read with all replicas down must fail")
	}

	// Recovery restores service.
	for _, rep := range obj.Chunks[0].Replicas {
		if err := s.RecoverNode(rep.NodeID); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.GetWithFailover("k", 0.5); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestFailNodeUnknown(t *testing.T) {
	s := testStore(t, 3, 0)
	if err := s.FailNode("ghost"); err == nil {
		t.Fatal("unknown node must error")
	}
	if err := s.RecoverNode("ghost"); err == nil {
		t.Fatal("unknown node must error")
	}
}

func TestDSCSFailoverToConventional(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Put("accel", 2*units.MB, true); err != nil {
		t.Fatal(err)
	}
	node, _, ok := s.DSCSReplicaHealthy("accel")
	if !ok {
		t.Fatal("healthy DSCS replica expected")
	}
	// The drive dies: in-storage execution becomes unavailable...
	s.FailNode(node.ID)
	if _, _, ok := s.DSCSReplicaHealthy("accel"); ok {
		t.Fatal("dead DSCS node still offered")
	}
	// ...but the data is still readable from the surviving replicas.
	if _, _, err := s.GetWithFailover("accel", 0.5); err != nil {
		t.Fatalf("conventional fallback read failed: %v", err)
	}
}

func TestReReplication(t *testing.T) {
	s := testStore(t, 4, 2)
	for _, key := range []string{"a", "b", "c"} {
		if _, err := s.Put(key, 3*units.MB, true); err != nil {
			t.Fatal(err)
		}
	}
	node, _, _ := s.DSCSReplica("a")
	s.FailNode(node.ID)

	chunks, moved, err := s.ReReplicate(node.ID)
	if err != nil {
		t.Fatal(err)
	}
	if chunks == 0 || moved == 0 {
		t.Fatal("nothing repaired despite lost replicas")
	}

	// Every object is back at full replication on healthy nodes, and
	// acceleratable objects regained a DSCS replica if one survives.
	for _, key := range []string{"a", "b", "c"} {
		obj, _ := s.Lookup(key)
		for _, chunk := range obj.Chunks {
			if len(chunk.Replicas) != 3 {
				t.Fatalf("%q: replica count %d", key, len(chunk.Replicas))
			}
			for _, rep := range chunk.Replicas {
				n, _ := s.Node(rep.NodeID)
				if !n.healthy() {
					t.Fatalf("%q still has a replica on the dead node", key)
				}
			}
		}
		if _, _, ok := s.DSCSReplicaHealthy(key); !ok {
			t.Errorf("%q lost DSCS coverage after repair", key)
		}
	}
	if s.HealthyNodes() != 5 {
		t.Fatalf("healthy nodes = %d, want 5", s.HealthyNodes())
	}
}

func TestReReplicateUnknownNode(t *testing.T) {
	s := testStore(t, 3, 0)
	if _, _, err := s.ReReplicate("ghost"); err == nil {
		t.Fatal("unknown node must error")
	}
}

// TestRepairOverFailRecoverSequences drives ReReplicate after interleaved
// FailNode/RecoverNode sequences and pins the repair-target contract:
// the chosen target is healthy and not already a holder, and a chunk
// whose every surviving replica is down is an error — not a "repair"
// fabricated from nothing (the latent bug this table caught: nothing
// checked a healthy *source* existed before copying).
func TestRepairOverFailRecoverSequences(t *testing.T) {
	type step struct {
		holder  int  // index into the chunk's replica holders; -1 = a healthy spare
		recover bool // false = fail
	}
	cases := []struct {
		name    string
		steps   []step
		repair  int // holder index handed to ReReplicate
		wantErr bool
	}{
		{"single holder lost", []step{{0, false}}, 0, false},
		{"recovered peer is a valid source", []step{{0, false}, {1, false}, {1, true}}, 0, false},
		{"dead spare never selected", []step{{0, false}, {-1, false}}, 0, false},
		{"all holders down: no source to copy from", []step{{0, false}, {1, false}, {2, false}}, 0, true},
		{"source recovered after total loss", []step{{0, false}, {1, false}, {2, false}, {1, true}}, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := testStore(t, 4, 2)
			if _, err := s.Put("k", units.MB, true); err != nil {
				t.Fatal(err)
			}
			obj, _ := s.Lookup("k")
			var holders []string
			holderSet := map[string]bool{}
			for _, rep := range obj.Chunks[0].Replicas {
				holders = append(holders, rep.NodeID)
				holderSet[rep.NodeID] = true
			}
			spare := ""
			for _, id := range []string{"ssd-a", "ssd-b", "ssd-c", "ssd-d", "dscs-a", "dscs-b"} {
				if !holderSet[id] {
					spare = id
					break
				}
			}
			downSpare := false
			for _, st := range c.steps {
				id := spare
				if st.holder >= 0 {
					id = holders[st.holder]
				} else {
					downSpare = !st.recover
				}
				var err error
				if st.recover {
					err = s.RecoverNode(id)
				} else {
					err = s.FailNode(id)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			_, _, err := s.ReReplicate(holders[c.repair])
			if c.wantErr {
				if err == nil {
					t.Fatal("repair with every source replica down must error")
				}
				return
			}
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			obj, _ = s.Lookup("k")
			for _, chunk := range obj.Chunks {
				seen := map[string]bool{}
				for _, rep := range chunk.Replicas {
					if seen[rep.NodeID] {
						t.Fatalf("chunk %d repaired onto a node already holding it (%s)", chunk.Index, rep.NodeID)
					}
					seen[rep.NodeID] = true
					if rep.NodeID == holders[c.repair] {
						t.Fatalf("chunk %d still replicated on the failed node", chunk.Index)
					}
					if downSpare && rep.NodeID == spare {
						t.Fatalf("chunk %d repaired onto the dead spare %s", chunk.Index, spare)
					}
				}
			}
		})
	}
}
