// failover.go implements the fault-tolerance side of the store (the paper's
// Section 5.2/5.3: replication for reliability, Kubernetes-style fail-over
// when nodes disappear): node health state, replica fail-over on reads, and
// re-replication accounting after a failure.
package objstore

import (
	"fmt"
	"time"

	"dscs/internal/units"
)

// Health is one storage node's availability state.
type Health int

// Node health states.
const (
	Healthy Health = iota
	Down
)

// FailNode marks a node unavailable; reads fail over to the surviving
// replicas and DSCSReplica stops offering the node.
func (s *Store) FailNode(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("objstore: no such node %q", id)
	}
	n.health = Down
	return nil
}

// RecoverNode marks a node healthy again.
func (s *Store) RecoverNode(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("objstore: no such node %q", id)
	}
	n.health = Healthy
	return nil
}

// healthy reports whether the node serves traffic.
func (n *Node) healthy() bool { return n.health == Healthy }

// GetWithFailover reads an object, skipping failed replicas: the client
// retries the next replica after a timeout-scale penalty per dead node.
// It fails only when every replica of some chunk is down.
func (s *Store) GetWithFailover(key string, q float64) (time.Duration, units.Energy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return 0, 0, fmt.Errorf("objstore: no such key %q", key)
	}
	rng := s.stream(q)
	const retryPenalty = 2 * time.Millisecond // health-probe + retry cost
	var total time.Duration
	var energy units.Energy
	for _, chunk := range obj.Chunks {
		served := false
		start := int(hashKey(key, chunk.Index) % uint64(len(chunk.Replicas)))
		for attempt := 0; attempt < len(chunk.Replicas); attempt++ {
			rep := chunk.Replicas[(start+attempt)%len(chunk.Replicas)]
			n := s.byID[rep.NodeID]
			if !n.healthy() {
				total += retryPenalty
				continue
			}
			devLat, devEnergy := n.hostRead(rep.Offset, chunk.Size)
			energy += devEnergy
			total += requestPathCost(s.cfg, chunk.Size) +
				s.fabricLatency(chunk.Size, q, rng) + devLat
			served = true
			break
		}
		if !served {
			return total, energy, fmt.Errorf(
				"objstore: all %d replicas of %q chunk %d are down",
				len(chunk.Replicas), key, chunk.Index)
		}
	}
	return total, energy, nil
}

// DSCSReplicaHealthy is DSCSReplica restricted to healthy nodes: when the
// DSCS drive holding the data is down, in-storage execution is impossible
// and the caller falls back to conventional execution (Section 5.3).
func (s *Store) DSCSReplicaHealthy(key string) (node *Node, offset int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, off, found := s.dscsReplica(key)
	if !found || !n.healthy() {
		return nil, 0, false
	}
	return n, off, true
}

// ReReplicate restores the replication factor of every object that lost a
// replica on the failed node: each affected chunk is copied from a healthy
// replica to a healthy node not already holding it. It returns the number
// of chunks moved and the total bytes copied (the background repair
// traffic a real store would schedule).
func (s *Store) ReReplicate(failedID string) (chunks int, moved units.Bytes, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	failed, ok := s.byID[failedID]
	if !ok {
		return 0, 0, fmt.Errorf("objstore: no such node %q", failedID)
	}
	for _, obj := range s.objects {
		for ci := range obj.Chunks {
			chunk := &obj.Chunks[ci]
			idx := -1
			holders := map[string]bool{}
			for ri, rep := range chunk.Replicas {
				holders[rep.NodeID] = true
				if rep.NodeID == failed.ID {
					idx = ri
				}
			}
			if idx < 0 {
				continue
			}
			// A repair is a copy, and a copy needs a healthy source: with
			// every surviving replica of this chunk also down there is
			// nothing to read from, and "repairing" anyway would fabricate
			// a replica out of thin air.
			source := false
			for id := range holders {
				if id != failed.ID && s.byID[id].healthy() {
					source = true
					break
				}
			}
			if !source {
				return chunks, moved, fmt.Errorf(
					"objstore: no healthy source replica of %q chunk %d to repair from", obj.Key, chunk.Index)
			}
			target := s.pickRepairTarget(obj, holders)
			if target == nil {
				return chunks, moved, fmt.Errorf(
					"objstore: no healthy target to repair %q chunk %d", obj.Key, chunk.Index)
			}
			off := target.nextOffset
			target.nextOffset += int64(s.cfg.ChunkSize)
			// The arbitration-aware path: a repair write against a
			// DSCS-Drive whose DSA is mid-execution pays the same penalty
			// as any other conventional I/O.
			target.hostWrite(off, chunk.Size)
			chunk.Replicas[idx] = Replica{NodeID: target.ID, Offset: off}
			chunks++
			moved += chunk.Size
		}
	}
	return chunks, moved, nil
}

// pickRepairTarget chooses a healthy node that does not already hold the
// chunk, preferring a DSCS node for acceleratable objects that lost their
// DSCS replica.
func (s *Store) pickRepairTarget(obj *Object, holders map[string]bool) *Node {
	needDSCS := obj.Acceleratable
	if needDSCS {
		for id := range holders {
			if n := s.byID[id]; n.Kind == DSCSDrive && n.healthy() {
				needDSCS = false // still covered by a healthy DSCS replica
			}
		}
	}
	var fallback *Node
	for _, n := range s.nodes {
		if !n.healthy() || holders[n.ID] {
			continue
		}
		if needDSCS && n.Kind == DSCSDrive {
			return n
		}
		if fallback == nil {
			fallback = n
		}
	}
	return fallback
}

// HealthyNodes counts nodes currently serving.
func (s *Store) HealthyNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := 0
	for _, n := range s.nodes {
		if n.healthy() {
			c++
		}
	}
	return c
}
