package objstore

import (
	"testing"
	"time"

	"dscs/internal/csd"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/units"
)

func testStore(t *testing.T, plain, dscsN int) *Store {
	t.Helper()
	var nodes []*Node
	for i := 0; i < plain; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &Node{ID: "ssd-" + string(rune('a'+i)), Kind: PlainSSD, SSD: d})
	}
	for i := 0; i < dscsN; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &Node{ID: "dscs-" + string(rune('a'+i)), Kind: DSCSDrive, CSD: d})
	}
	s, err := New(Default(), nodes, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t, 4, 2)
	putLat, err := s.Put("img", 3*units.MB, false)
	if err != nil {
		t.Fatal(err)
	}
	if putLat <= 0 {
		t.Fatal("put must take time")
	}
	getLat, err := s.Get("img")
	if err != nil {
		t.Fatal(err)
	}
	if getLat <= 0 {
		t.Fatal("get must take time")
	}
	obj, ok := s.Lookup("img")
	if !ok || obj.Size != 3*units.MB || len(obj.Chunks) != 1 {
		t.Fatalf("lookup: %+v ok=%v", obj, ok)
	}
	if len(obj.Chunks[0].Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(obj.Chunks[0].Replicas))
	}
}

func TestGetMissing(t *testing.T) {
	s := testStore(t, 3, 0)
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("missing key must error")
	}
}

func TestChunking(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Put("big", 70*units.MB, false); err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Lookup("big")
	if len(obj.Chunks) != 3 { // 32 + 32 + 6
		t.Fatalf("chunks = %d, want 3", len(obj.Chunks))
	}
	var total units.Bytes
	for _, c := range obj.Chunks {
		total += c.Size
	}
	if total != 70*units.MB {
		t.Fatalf("chunk sizes sum to %v", total)
	}
}

func TestDSCSAwarePlacement(t *testing.T) {
	s := testStore(t, 4, 2)
	// Acceleratable objects always land one replica on a DSCS node.
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if _, err := s.Put(key, 2*units.MB, true); err != nil {
			t.Fatal(err)
		}
		node, _, ok := s.DSCSReplica(key)
		if !ok {
			t.Fatalf("key %q has no DSCS replica", key)
		}
		if node.Kind != DSCSDrive {
			t.Fatalf("key %q mapped to %q", key, node.ID)
		}
	}
	// Non-acceleratable objects are not forced onto DSCS nodes... but may
	// land there by hash; what matters is the accelerated ones always do.
}

func TestMultiChunkStaysOnOneDSCSDrive(t *testing.T) {
	s := testStore(t, 4, 2)
	// A batched request larger than one chunk must still be device-local.
	if _, err := s.Put("batch", 90*units.MB, true); err != nil {
		t.Fatal(err)
	}
	node, _, ok := s.DSCSReplica("batch")
	if !ok {
		t.Fatal("multi-chunk acceleratable object should stay on one drive")
	}
	obj, _ := s.Lookup("batch")
	for _, chunk := range obj.Chunks {
		found := false
		for _, rep := range chunk.Replicas {
			if rep.NodeID == node.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("chunk %d missing from %q", chunk.Index, node.ID)
		}
	}
}

func TestNonAcceleratableNoDSCSGuarantee(t *testing.T) {
	s := testStore(t, 4, 0) // no DSCS nodes at all
	if _, err := s.Put("x", units.MB, true); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.DSCSReplica("x"); ok {
		t.Fatal("no DSCS nodes exist; replica lookup must fail")
	}
}

func TestOverwriteReusesOffsets(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Put("k", 2*units.MB, true); err != nil {
		t.Fatal(err)
	}
	first, _ := s.Lookup("k")
	firstReps := append([]Replica(nil), first.Chunks[0].Replicas...)
	// Re-put of same size overwrites in place.
	if _, err := s.Put("k", 2*units.MB, true); err != nil {
		t.Fatal(err)
	}
	second, _ := s.Lookup("k")
	for i, rep := range second.Chunks[0].Replicas {
		if rep != firstReps[i] {
			t.Fatal("overwrite must reuse replica offsets")
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := testStore(t, 4, 2)
	if _, err := s.Put("q", 4*units.MB, false); err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for _, q := range []float64{0.5, 0.9, 0.99} {
		lat, _, err := s.GetAt("q", q)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Fatalf("latency not increasing with quantile at %v", q)
		}
		prev = lat
	}
}

func TestLargerPayloadSlowerRead(t *testing.T) {
	s := testStore(t, 4, 2)
	s.Put("small", 64*units.KB, false)
	s.Put("large", 16*units.MB, false)
	smallLat, _, _ := s.GetAt("small", 0.5)
	largeLat, _, _ := s.GetAt("large", 0.5)
	if largeLat <= smallLat {
		t.Errorf("16MB read (%v) should exceed 64KB read (%v)", largeLat, smallLat)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(Default(), nil, sim.NewRNG(1)); err == nil {
		t.Error("no nodes must fail")
	}
	bad := Default()
	bad.ChunkSize = 100 * units.MB
	if err := bad.Validate(); err == nil {
		t.Error("oversized chunk must fail")
	}
	bad2 := Default()
	bad2.Replicas = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero replicas must fail")
	}
	s := testStore(t, 3, 0)
	if _, err := s.Put("z", 0, false); err == nil {
		t.Error("zero-size put must fail")
	}
}

func TestDelete(t *testing.T) {
	s := testStore(t, 3, 0)
	s.Put("gone", units.MB, false)
	s.Delete("gone")
	if _, ok := s.Lookup("gone"); ok {
		t.Fatal("deleted object still visible")
	}
}
