// Package objstore implements the disaggregated S3-class object store the
// serverless functions exchange data through: a set of storage nodes with
// real drive models, chunked and replicated objects, hash placement with
// DSCS-aware replica mapping (Section 5.2), and GET/PUT latencies composed
// from the RPC stack, the network fabric, and the device.
package objstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dscs/internal/csd"
	"dscs/internal/network"
	"dscs/internal/rpc"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/units"
)

// NodeKind distinguishes conventional storage nodes from DSCS-capable ones.
type NodeKind int

// Node kinds.
const (
	PlainSSD NodeKind = iota
	DSCSDrive
)

// Node is one storage server.
type Node struct {
	ID   string
	Kind NodeKind

	// Exactly one of the two is set, matching Kind.
	SSD *ssd.Drive
	CSD *csd.Drive

	nextOffset int64
	health     Health
}

// Drive returns the conventional-storage personality of the node. A
// DSCS-Drive serves standard reads/writes through its embedded SSD.
func (n *Node) Drive() *ssd.Drive {
	if n.Kind == DSCSDrive {
		return n.CSD.SSD()
	}
	return n.SSD
}

// hostRead serves a conventional host read. On a DSCS-Drive it takes the
// arbitration-aware path: while the in-storage DSA is held (the serving
// engine acquires it for the execution), the shared flash channels derate
// the read by csd.ArbitrationPenalty (Section 5.2).
func (n *Node) hostRead(offset int64, size units.Bytes) (time.Duration, units.Energy) {
	if n.Kind == DSCSDrive {
		return n.CSD.HostReadConcurrent(offset, size)
	}
	return n.SSD.HostRead(offset, size)
}

// hostWrite is the write-side analogue of hostRead.
func (n *Node) hostWrite(offset int64, size units.Bytes) (time.Duration, units.Energy) {
	if n.Kind == DSCSDrive {
		return n.CSD.HostWriteConcurrent(offset, size)
	}
	return n.SSD.HostWrite(offset, size)
}

// Replica locates one copy of a chunk.
type Replica struct {
	NodeID string
	Offset int64
}

// Chunk is a fixed-size piece of an object.
type Chunk struct {
	Index    int
	Size     units.Bytes
	Replicas []Replica
}

// Object is a stored value.
type Object struct {
	Key    string
	Size   units.Bytes
	Chunks []Chunk
	// Acceleratable marks objects whose consumers are DSA functions; one
	// replica is mapped to a DSCS-Drive at placement time.
	Acceleratable bool
}

// Config parameterizes the store.
type Config struct {
	Replicas  int
	ChunkSize units.Bytes // 1-64 MB per the GFS-style chunking discussion
	Fabric    network.Fabric
	Codec     rpc.Codec
	Stack     rpc.Stack
}

// Default returns the paper's baseline setup: 3-way replication, 32 MB
// chunks (serverless requests stay <=20 MB and therefore on one drive,
// Section 5.2), intra-datacenter fabric, protobuf RPCs.
func Default() Config {
	return Config{
		Replicas:  3,
		ChunkSize: 32 * units.MB,
		Fabric:    network.IntraDC(),
		Codec:     rpc.Protobuf(),
		Stack:     rpc.DefaultStack(),
	}
}

// Validate rejects inconsistent configs.
func (c Config) Validate() error {
	if c.Replicas <= 0 {
		return fmt.Errorf("objstore: non-positive replica count")
	}
	if c.ChunkSize < units.MB || c.ChunkSize > 64*units.MB {
		return fmt.Errorf("objstore: chunk size %v outside 1-64MB", c.ChunkSize)
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if err := c.Codec.Validate(); err != nil {
		return err
	}
	return nil
}

// Store is the object store. It is safe for concurrent use: one lock
// serializes metadata, placement cursors, and drive access — the
// metadata-service bottleneck a real disaggregated store also has — while
// stochastic network sampling draws from a per-operation stream split off
// the seed RNG, so concurrent invocations never share a generator.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	nodes   []*Node
	byID    map[string]*Node
	objects map[string]*Object
	rng     *sim.RNG
}

// New assembles a store over the given nodes.
func New(cfg Config, nodes []*Node, rng *sim.RNG) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) < cfg.Replicas {
		return nil, fmt.Errorf("objstore: %d nodes cannot hold %d replicas",
			len(nodes), cfg.Replicas)
	}
	byID := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("objstore: node with empty ID")
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("objstore: duplicate node %q", n.ID)
		}
		if n.Kind == DSCSDrive && n.CSD == nil || n.Kind == PlainSSD && n.SSD == nil {
			return nil, fmt.Errorf("objstore: node %q missing its drive", n.ID)
		}
		byID[n.ID] = n
	}
	return &Store{
		cfg:     cfg,
		nodes:   nodes,
		byID:    byID,
		objects: make(map[string]*Object),
		rng:     rng,
	}, nil
}

// Nodes returns the storage nodes.
func (s *Store) Nodes() []*Node { return s.nodes }

// Node returns a node by ID.
func (s *Store) Node(id string) (*Node, bool) {
	n, ok := s.byID[id]
	return n, ok
}

// hashKey maps a key to a stable placement seed.
func hashKey(key string, salt int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, salt)
	return h.Sum64()
}

// dscsNodeFor deterministically selects the DSCS-capable node for a key
// (chunk-independent, so every chunk of an acceleratable object lands on
// the same drive and the whole request stays device-local).
func (s *Store) dscsNodeFor(key string) *Node {
	var best *Node
	var bestScore uint64
	for _, n := range s.nodes {
		if n.Kind != DSCSDrive {
			continue
		}
		if score := hashKey(key+n.ID, 0); best == nil || score > bestScore {
			best, bestScore = n, score
		}
	}
	return best
}

// placement returns the replica node set for a chunk: rendezvous hashing
// over all nodes, then — for acceleratable objects — the key's DSCS node
// swapped into the set (the Section 5.2 replica-mapping rule).
func (s *Store) placement(key string, chunk int, acceleratable bool) []*Node {
	type scored struct {
		n     *Node
		score uint64
	}
	all := make([]scored, len(s.nodes))
	for i, n := range s.nodes {
		all[i] = scored{n, hashKey(key+n.ID, chunk)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	picked := make([]*Node, 0, s.cfg.Replicas)
	for _, sc := range all[:s.cfg.Replicas] {
		picked = append(picked, sc.n)
	}
	if !acceleratable {
		return picked
	}
	target := s.dscsNodeFor(key)
	if target == nil {
		return picked // no DSCS nodes exist
	}
	for _, n := range picked {
		if n == target {
			return picked // already covered
		}
	}
	picked[len(picked)-1] = target
	return picked
}

// requestPathCost is the RPC software cost of one storage request.
func requestPathCost(cfg Config, payload units.Bytes) time.Duration {
	return rpc.RequestPath(cfg.Codec, cfg.Stack, payload)
}

// stream derives an independent per-operation RNG stream. Callers must hold
// s.mu; the returned stream is then private to the operation, so sampling
// never races even when many invocations overlap.
func (s *Store) stream(q float64) *sim.RNG {
	if q > 0 {
		return nil // analytic quantile path draws nothing
	}
	return s.rng.Split()
}

// fabricLatency evaluates the network component: a positive quantile gives
// the analytic value (the tail sweeps of Figure 15); zero or negative
// samples stochastically from the operation's split stream.
func (s *Store) fabricLatency(payload units.Bytes, q float64, rng *sim.RNG) time.Duration {
	if q <= 0 {
		return s.cfg.Fabric.RequestLatency(payload, rng)
	}
	return s.cfg.Fabric.QuantileLatency(payload, q)
}

// PutAt stores an object and returns the client-visible latency and the
// device energy: chunks stream sequentially; replicas of one chunk write in
// parallel (latency is the slowest replica). Re-putting an existing key of
// the same size overwrites in place, reusing its replica offsets.
func (s *Store) PutAt(key string, size units.Bytes, acceleratable bool, q float64) (time.Duration, units.Energy, error) {
	if size <= 0 {
		return 0, 0, fmt.Errorf("objstore: non-positive object size")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := s.stream(q)
	if old, ok := s.objects[key]; ok && old.Size == size && old.Acceleratable == acceleratable {
		return s.overwrite(old, q, rng)
	}
	obj := &Object{Key: key, Size: size, Acceleratable: acceleratable}
	var total time.Duration
	var energy units.Energy
	for idx, remaining := 0, size; remaining > 0; idx++ {
		cs := s.cfg.ChunkSize
		if remaining < cs {
			cs = remaining
		}
		remaining -= cs
		nodes := s.placement(key, idx, acceleratable)
		chunk := Chunk{Index: idx, Size: cs}
		var slowest time.Duration
		for _, n := range nodes {
			off := n.nextOffset
			n.nextOffset += int64(s.cfg.ChunkSize)
			chunk.Replicas = append(chunk.Replicas, Replica{NodeID: n.ID, Offset: off})
			devLat, devEnergy := n.hostWrite(off, cs)
			energy += devEnergy
			lat := rpc.RequestPath(s.cfg.Codec, s.cfg.Stack, cs) +
				s.fabricLatency(cs, q, rng) + devLat
			if lat > slowest {
				slowest = lat
			}
		}
		total += slowest
		obj.Chunks = append(obj.Chunks, chunk)
	}
	s.objects[key] = obj
	return total, energy, nil
}

// overwrite re-writes an object in place. Callers hold s.mu.
func (s *Store) overwrite(obj *Object, q float64, rng *sim.RNG) (time.Duration, units.Energy, error) {
	var total time.Duration
	var energy units.Energy
	for _, chunk := range obj.Chunks {
		var slowest time.Duration
		for _, rep := range chunk.Replicas {
			n := s.byID[rep.NodeID]
			devLat, devEnergy := n.hostWrite(rep.Offset, chunk.Size)
			energy += devEnergy
			lat := rpc.RequestPath(s.cfg.Codec, s.cfg.Stack, chunk.Size) +
				s.fabricLatency(chunk.Size, q, rng) + devLat
			if lat > slowest {
				slowest = lat
			}
		}
		total += slowest
	}
	return total, energy, nil
}

// Put stores an object with sampled network latency.
func (s *Store) Put(key string, size units.Bytes, acceleratable bool) (time.Duration, error) {
	lat, _, err := s.PutAt(key, size, acceleratable, -1)
	return lat, err
}

// GetAt reads an object back to a remote client, returning latency and
// device energy; a positive q selects the network quantile (else sampled).
func (s *Store) GetAt(key string, q float64) (time.Duration, units.Energy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return 0, 0, fmt.Errorf("objstore: no such key %q", key)
	}
	rng := s.stream(q)
	var total time.Duration
	var energy units.Energy
	for _, chunk := range obj.Chunks {
		rep := chunk.Replicas[int(hashKey(key, chunk.Index)%uint64(len(chunk.Replicas)))]
		n := s.byID[rep.NodeID]
		devLat, devEnergy := n.hostRead(rep.Offset, chunk.Size)
		energy += devEnergy
		total += rpc.RequestPath(s.cfg.Codec, s.cfg.Stack, chunk.Size) +
			s.fabricLatency(chunk.Size, q, rng) + devLat
	}
	return total, energy, nil
}

// Get reads an object with sampled network latency.
func (s *Store) Get(key string) (time.Duration, error) {
	lat, _, err := s.GetAt(key, -1)
	return lat, err
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Lookup returns the stored object metadata.
func (s *Store) Lookup(key string) (*Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	return obj, ok
}

// DSCSReplica returns the DSCS-capable node and drive offset holding the
// object, for in-storage execution. Every chunk must reside on the same
// DSCS drive (the placement rule pins acceleratable keys); objects spread
// across drives fall back to conventional execution per Section 5.2,
// reported as ok=false.
func (s *Store) DSCSReplica(key string) (node *Node, offset int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dscsReplica(key)
}

// dscsReplica is DSCSReplica without the lock; callers hold s.mu.
func (s *Store) dscsReplica(key string) (node *Node, offset int64, ok bool) {
	obj, exists := s.objects[key]
	if !exists || len(obj.Chunks) == 0 {
		return nil, 0, false
	}
	var target *Node
	var firstOffset int64
	for _, chunk := range obj.Chunks {
		found := false
		for _, rep := range chunk.Replicas {
			n := s.byID[rep.NodeID]
			if n.Kind != DSCSDrive {
				continue
			}
			if target == nil {
				target = n
				firstOffset = rep.Offset
			}
			if n == target {
				found = true
				break
			}
		}
		if !found {
			return nil, 0, false
		}
	}
	return target, firstOffset, true
}

// Delete removes an object's metadata (space reclamation is the FTL's
// concern and modeled there).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
}
