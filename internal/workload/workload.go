// Package workload defines the paper's Table 1 benchmark suite: eight
// real-world serverless applications, each a three-function chain
// (data pre-processing, ML/DNN inference, notification) with its model,
// request payload, intermediate tensor, and result sizes.
package workload

import (
	"dscs/internal/model"
	"dscs/internal/units"
)

// Benchmark is one Table 1 application.
type Benchmark struct {
	Name string // figure label, e.g. "PPE Detection"
	Slug string // machine name, e.g. "ppe-detection"
	// Description summarizes the AWS case study the pipeline mirrors.
	Description string

	// Preproc is Function 1's computation (parse/resize/normalize/
	// tokenize), expressed as a graph of vector ops so every platform —
	// including the DSA's VPU — executes it through the same path.
	Preproc *model.Graph
	// Model is Function 2's inference network.
	Model *model.Graph

	// Request payload sizes through the chain (per invocation, batch 1).
	InputBytes        units.Bytes // raw request landing in the object store
	IntermediateBytes units.Bytes // f1 output / f2 input tensor
	OutputBytes       units.Bytes // f2 result read by f3
	NotifyBytes       units.Bytes // f3 egress payload
}

// prepGraph builds a Function-1 graph: a parse/decode stage over the raw
// payload and a transform stage over the produced tensor.
func prepGraph(name string, rawElems, tensorElems int64) *model.Graph {
	g := model.NewFeatureGraph(name, int(rawElems))
	g.Prep("decode", rawElems)
	g.Prep("transform", tensorElems)
	return g
}

// Suite returns the eight benchmarks in the paper's Table 1 order.
func Suite() []*Benchmark {
	return []*Benchmark{
		CreditRisk(), AssetDamage(), PPEDetection(), Chatbot(),
		Translation(), Clinical(), Moderation(), RemoteSensing(),
	}
}

// BySlug returns the named benchmark, or nil.
func BySlug(slug string) *Benchmark {
	for _, b := range Suite() {
		if b.Slug == slug {
			return b
		}
	}
	return nil
}

// CreditRisk is the IBM SPSS-style loan scoring pipeline: a batch of 4096
// records scored by binary logistic regression. Communication-dominated
// (>=70% in Figure 4) with near-zero compute — the paper's lowest-speedup
// benchmark.
func CreditRisk() *Benchmark {
	const records = 4096
	raw := units.Bytes(records * 64) // 64B per record CSV row
	return &Benchmark{
		Name:        "Credit Risk Assessment",
		Slug:        "credit-risk",
		Description: "Binary logistic regression over loan applications (IBM SPSS case study)",
		Preproc:     prepGraph("credit-prep", int64(raw), records*64),
		Model:       model.LogisticRegressionCredit(records),
		InputBytes:  raw,
		// 64 fp32 features per record.
		IntermediateBytes: records * 64 * 4,
		OutputBytes:       records * 8, // score + decision per record
		NotifyBytes:       16 * units.KB,
	}
}

// AssetDamage is the Lookout-for-Vision style defect detector: a 1080p
// inspection photo classified by ResNet-50.
func AssetDamage() *Benchmark {
	raw := units.Bytes(3 * units.MB) // 1080p photo
	tensorElems := int64(224 * 224 * 3)
	return &Benchmark{
		Name:              "Asset Damage Detection",
		Slug:              "asset-damage",
		Description:       "Industrial damage classification (AWS Lookout for Vision case study)",
		Preproc:           prepGraph("asset-prep", int64(raw)/4, tensorElems*12),
		Model:             model.ResNet50(),
		InputBytes:        raw,
		IntermediateBytes: units.Bytes(tensorElems) * 4,
		OutputBytes:       4 * units.KB,
		NotifyBytes:       8 * units.KB,
	}
}

// PPEDetection is the Rekognition PPE pipeline: a burst of three site-camera
// frames pushed through an SSD detector at 640x640. The largest payloads in
// the suite — the paper's highest-gain benchmark because the in-storage path
// eliminates the most data movement.
func PPEDetection() *Benchmark {
	const frames = 3
	raw := units.Bytes(frames) * units.Bytes(6200*units.KB) // 1080p raw frames
	tensorElems := int64(frames) * 640 * 640 * 3
	return &Benchmark{
		Name:              "PPE Detection",
		Slug:              "ppe-detection",
		Description:       "Personal protective equipment detection on site cameras (Amazon Rekognition)",
		Preproc:           prepGraph("ppe-prep", int64(raw)/4, tensorElems*10),
		Model:             model.SSDMobileNetPPE(),
		InputBytes:        raw,
		IntermediateBytes: units.Bytes(tensorElems) * 4,
		OutputBytes:       96 * units.KB, // boxes + classes per frame
		NotifyBytes:       32 * units.KB,
	}
}

// Chatbot is the serverless-bot-framework conversational pipeline: a BERT
// intent encoder over a short utterance. Tiny payloads, heavy model.
func Chatbot() *Benchmark {
	raw := units.Bytes(4 * units.KB)
	return &Benchmark{
		Name:              "Conversational Chatbot",
		Slug:              "chatbot",
		Description:       "Intent understanding for a serverless bot (AWS serverless-bot-framework)",
		Preproc:           prepGraph("chat-prep", int64(raw), 128*32),
		Model:             model.BERTBaseChatbot(),
		InputBytes:        raw,
		IntermediateBytes: 128 * 4, // token ids
		OutputBytes:       2 * units.KB,
		NotifyBytes:       4 * units.KB,
	}
}

// Translation is the AWS Translate style document pipeline: a Marian
// encoder-decoder over a 256-token document.
func Translation() *Benchmark {
	raw := units.Bytes(100 * units.KB)
	return &Benchmark{
		Name:              "Document Translation",
		Slug:              "translation",
		Description:       "Neural machine translation of documents (AWS Translate)",
		Preproc:           prepGraph("translate-prep", int64(raw), 256*64),
		Model:             model.MarianTranslation(),
		InputBytes:        raw,
		IntermediateBytes: 256 * 4,
		OutputBytes:       120 * units.KB, // translated document
		NotifyBytes:       8 * units.KB,
	}
}

// Clinical is the acute leukemia classification pipeline: microscopy images
// through Inception-v3 (the Intel/IBM clinical case study).
func Clinical() *Benchmark {
	raw := units.Bytes(2 * units.MB)
	tensorElems := int64(299 * 299 * 3)
	return &Benchmark{
		Name:              "Clinical Analysis",
		Slug:              "clinical",
		Description:       "Acute myeloid/lymphoblastic leukemia classification (Inception-v3)",
		Preproc:           prepGraph("clinical-prep", int64(raw)/4, tensorElems*10),
		Model:             model.InceptionV3Clinical(),
		InputBytes:        raw,
		IntermediateBytes: units.Bytes(tensorElems) * 4,
		OutputBytes:       4 * units.KB,
		NotifyBytes:       8 * units.KB,
	}
}

// Moderation is the Rekognition content-moderation pipeline: social-media
// images through a compact CNN. Communication-dominated (Figure 4).
func Moderation() *Benchmark {
	raw := units.Bytes(2 * units.MB)
	tensorElems := int64(224 * 224 * 3)
	return &Benchmark{
		Name:              "Content Moderation",
		Slug:              "moderation",
		Description:       "Unsafe-content detection for social media (Amazon Rekognition moderation)",
		Preproc:           prepGraph("moderation-prep", int64(raw)/4, tensorElems*10),
		Model:             model.ResNet18Moderation(),
		InputBytes:        raw,
		IntermediateBytes: units.Bytes(tensorElems) * 4,
		OutputBytes:       4 * units.KB,
		NotifyBytes:       8 * units.KB,
	}
}

// RemoteSensing is the SDG&E wildfire-detection pipeline from the paper's
// introduction: drone imagery through a vision transformer.
func RemoteSensing() *Benchmark {
	raw := units.Bytes(4 * units.MB) // drone survey tile
	tensorElems := int64(224 * 224 * 3)
	return &Benchmark{
		Name:              "Remote Sensing",
		Slug:              "remote-sensing",
		Description:       "Wildfire detection from drone imagery (SDG&E / ViT case study)",
		Preproc:           prepGraph("remote-prep", int64(raw)/4, tensorElems*12),
		Model:             model.ViTRemoteSensing(),
		InputBytes:        raw,
		IntermediateBytes: units.Bytes(tensorElems) * 4,
		OutputBytes:       4 * units.KB,
		NotifyBytes:       16 * units.KB,
	}
}
