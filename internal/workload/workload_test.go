package workload

import (
	"testing"

	"dscs/internal/units"
)

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8 (Table 1)", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if b.Name == "" || b.Slug == "" || b.Description == "" {
			t.Errorf("%q: incomplete metadata", b.Slug)
		}
		if seen[b.Slug] {
			t.Errorf("duplicate slug %q", b.Slug)
		}
		seen[b.Slug] = true
		if b.Model == nil || b.Preproc == nil {
			t.Fatalf("%q: missing graphs", b.Slug)
		}
		if err := b.Model.Validate(); err != nil {
			t.Errorf("%q model: %v", b.Slug, err)
		}
		if err := b.Preproc.Validate(); err != nil {
			t.Errorf("%q preproc: %v", b.Slug, err)
		}
		if b.InputBytes <= 0 || b.IntermediateBytes <= 0 || b.OutputBytes <= 0 {
			t.Errorf("%q: non-positive payload sizes", b.Slug)
		}
	}
}

func TestBySlug(t *testing.T) {
	if b := BySlug("ppe-detection"); b == nil || b.Name != "PPE Detection" {
		t.Errorf("BySlug(ppe-detection) = %+v", b)
	}
	if BySlug("nope") != nil {
		t.Error("unknown slug should return nil")
	}
}

func TestRequestsWithinLambdaCap(t *testing.T) {
	// The paper bounds requests by the AWS payload cap (~20MB).
	for _, b := range Suite() {
		if b.InputBytes > 20*units.MB {
			t.Errorf("%q input %v exceeds the 20MB request cap", b.Slug, b.InputBytes)
		}
	}
}

func TestDataMovementProfiles(t *testing.T) {
	// PPE moves the most data (the paper's highest-gain benchmark);
	// the chatbot the least.
	ppe := BySlug("ppe-detection")
	chat := BySlug("chatbot")
	credit := BySlug("credit-risk")
	for _, b := range Suite() {
		total := b.InputBytes + b.IntermediateBytes
		if total > ppe.InputBytes+ppe.IntermediateBytes {
			t.Errorf("%q moves more data than PPE", b.Slug)
		}
	}
	if chat.InputBytes > 100*units.KB {
		t.Error("chatbot input should be tiny")
	}
	// Credit risk: near-zero compute (the paper's lowest-speedup case).
	if credit.Model.FLOPs() > 10e6 {
		t.Errorf("credit-risk FLOPs = %d, want ~1M", credit.Model.FLOPs())
	}
}

func TestIntermediateMatchesModelInput(t *testing.T) {
	// For the vision benchmarks, the intermediate tensor is the model's
	// input image in fp32.
	for _, slug := range []string{"asset-damage", "clinical", "moderation", "remote-sensing"} {
		b := BySlug(slug)
		want := b.Model.InputShape.Elems() * 4
		if int64(b.IntermediateBytes) != want {
			t.Errorf("%q intermediate = %v, want %v (model input fp32)",
				slug, b.IntermediateBytes, units.Bytes(want))
		}
	}
}

func TestPreprocScalesWithPayload(t *testing.T) {
	// Preprocessing work tracks the raw payload: PPE's is the largest.
	ppe := BySlug("ppe-detection").Preproc.FLOPs()
	chat := BySlug("chatbot").Preproc.FLOPs()
	if ppe < 100*chat {
		t.Errorf("PPE preproc (%d) should dwarf chatbot preproc (%d)", ppe, chat)
	}
}
