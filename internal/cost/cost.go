// Package cost implements the paper's cost-efficiency methodology
// (Section 6.1): an ASIC-Clouds style die-cost model for the DSA, market
// prices for off-the-shelf components, CAPEX for the whole serving system,
// OPEX as energy over a three-year, 30%-utilization deployment at the 2023
// U.S. industrial electricity rate, and
//
//	CostEfficiency = Throughput x T / (CAPEX + OPEX).
package cost

import (
	"math"
	"time"

	"dscs/internal/platform"
	"dscs/internal/units"
)

// DieCostModel prices an ASIC die following ASIC Clouds: wafer price,
// geometric dies-per-wafer, negative-binomial yield, packaging/test, and
// amortized NRE.
type DieCostModel struct {
	WaferPrice     units.Dollars
	WaferDiameter  float64 // mm
	EdgeLoss       float64 // mm of unusable edge ring
	DefectDensity  float64 // defects per mm^2
	ClusterAlpha   float64 // defect clustering parameter
	PackageAndTest units.Dollars
	NRE            units.Dollars
	Volume         float64 // units over which NRE amortizes
}

// Default14nm returns a 14 nm-class production model.
func Default14nm() DieCostModel {
	return DieCostModel{
		WaferPrice:     6000,
		WaferDiameter:  300,
		EdgeLoss:       3,
		DefectDensity:  0.001, // 0.1 per cm^2
		ClusterAlpha:   3,
		PackageAndTest: 8,
		NRE:            4e6,
		Volume:         100000,
	}
}

// DiesPerWafer returns the geometric die count for a die area.
func (m DieCostModel) DiesPerWafer(die units.Area) float64 {
	if die <= 0 {
		return 0
	}
	r := m.WaferDiameter/2 - m.EdgeLoss
	a := float64(die)
	return math.Pi*r*r/a - math.Pi*2*r/math.Sqrt(2*a)
}

// Yield returns the fraction of good dies (negative binomial).
func (m DieCostModel) Yield(die units.Area) float64 {
	a := float64(die)
	return math.Pow(1+a*m.DefectDensity/m.ClusterAlpha, -m.ClusterAlpha)
}

// DieCost returns the per-unit cost of a die of the given area.
func (m DieCostModel) DieCost(die units.Area) units.Dollars {
	good := m.DiesPerWafer(die) * m.Yield(die)
	if good <= 0 {
		return 0
	}
	return m.WaferPrice/units.Dollars(good) + m.PackageAndTest +
		m.NRE/units.Dollars(m.Volume)
}

// Deployment describes the ownership horizon the paper evaluates.
type Deployment struct {
	Years           float64
	Utilization     float64       // duty cycle
	ElectricityRate units.Dollars // $/kWh
	PUE             float64       // cooling overhead multiplier
}

// PaperDeployment is the paper's 3-year, 30%-utilization setting at the
// 2023 U.S. average industrial rate.
func PaperDeployment() Deployment {
	return Deployment{Years: 3, Utilization: 0.30, ElectricityRate: 0.0975, PUE: 1.5}
}

// ActiveTime is T: the powered, serving time over the deployment.
func (d Deployment) ActiveTime() time.Duration {
	hours := d.Years * 365 * 24 * d.Utilization
	return time.Duration(hours * float64(time.Hour))
}

// OPEX prices a constant draw over the deployment (power, cooling).
func (d Deployment) OPEX(avg units.Power) units.Dollars {
	kwh := float64(avg) / 1000 * d.ActiveTime().Hours() * d.PUE
	return units.Dollars(kwh) * d.ElectricityRate
}

// SystemCost is one platform's full serving-system bill of materials.
type SystemCost struct {
	Platform string
	// Server is the compute-server share (traditional platforms) or the
	// storage-server share (near-storage platforms).
	Server units.Dollars
	// Accelerator is the device itself (card, drive, SoC).
	Accelerator units.Dollars
	// StorageFleet is the disaggregated-storage share for traditional
	// platforms (near-storage systems carry it in the accelerator drive).
	StorageFleet units.Dollars
	// Network is the fabric share.
	Network units.Dollars
	// ComputeNodeShare covers the compute-node slice near-storage systems
	// still need for the non-accelerated functions (f3).
	ComputeNodeShare units.Dollars
	// AvgPower is the average draw while serving.
	AvgPower units.Power
}

// CAPEX totals the capital expense.
func (s SystemCost) CAPEX() units.Dollars {
	return s.Server + s.Accelerator + s.StorageFleet + s.Network + s.ComputeNodeShare
}

// Total returns CAPEX plus OPEX for a deployment.
func (s SystemCost) Total(d Deployment) units.Dollars {
	return s.CAPEX() + d.OPEX(s.AvgPower)
}

// SystemFor builds the bill of materials for a Table 2 platform, with the
// DSCS ASIC priced by the die-cost model.
func SystemFor(p platform.Compute, dieCost units.Dollars) SystemCost {
	const (
		computeServer = 2600 // c5.4xlarge-class slice
		storageServer = 2400 // storage node with accelerated drives
		storageFleet  = 1200 // plain disaggregated storage share
		networkShare  = 400
		f3Share       = 1040 // 40% of a compute slice for f3
		plainDrive    = 700
	)
	name := p.Name()
	switch p.Class() {
	case platform.Traditional:
		acc := p.Price() - computeServer // platform prices bundle the host
		if acc < 0 {
			acc = 0
		}
		return SystemCost{
			Platform: name, Server: computeServer, Accelerator: acc,
			StorageFleet: storageFleet, Network: networkShare,
			AvgPower: avgPower(p),
		}
	case platform.InStorageDSA:
		return SystemCost{
			Platform: name, Server: storageServer,
			Accelerator:      plainDrive + dieCost,
			Network:          networkShare,
			ComputeNodeShare: f3Share,
			AvgPower:         avgPower(p),
		}
	default: // near-storage
		return SystemCost{
			Platform: name, Server: storageServer, Accelerator: p.Price(),
			Network: networkShare, ComputeNodeShare: f3Share,
			AvgPower: avgPower(p),
		}
	}
}

// avgPower estimates the serving-time average draw of the platform system.
func avgPower(p platform.Compute) units.Power {
	switch p.Class() {
	case platform.Traditional:
		// Host draw plus the accelerator at a serving duty cycle.
		return 95 + p.TDP()*0.35
	case platform.InStorageDSA:
		// Drive + DSA + storage-node and f3 shares.
		return 9 + p.TDP() + 30
	default:
		return 9 + p.TDP()*0.7 + 30
	}
}

// Efficiency computes the paper's metric for a platform serving at the
// given sustained request rate.
func Efficiency(throughputRPS float64, s SystemCost, d Deployment) float64 {
	total := float64(s.Total(d))
	if total <= 0 {
		return 0
	}
	return throughputRPS * d.ActiveTime().Seconds() / total
}
