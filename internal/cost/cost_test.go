package cost

import (
	"math"
	"testing"

	"dscs/internal/platform"
	"dscs/internal/power"
	"dscs/internal/units"
)

func TestDieCostModel(t *testing.T) {
	m := Default14nm()
	// The DSCS DSA die: 128x128 PEs + 4 MiB at 14 nm is ~20-35 mm^2.
	area := power.DieArea(power.Node14nm, 128*128, 4*units.MiB)
	if area < 15 || area > 45 {
		t.Fatalf("14nm die area = %v, want 15-45mm2", area)
	}
	dies := m.DiesPerWafer(area)
	if dies < 1500 || dies > 4000 {
		t.Errorf("dies per wafer = %.0f, want 1500-4000", dies)
	}
	y := m.Yield(area)
	if y < 0.9 || y > 1 {
		t.Errorf("yield = %.3f, want >0.9 for a small die", y)
	}
	c := m.DieCost(area)
	// Paper-era small-ASIC pricing: tens of dollars dominated by NRE.
	if c < 30 || c > 90 {
		t.Errorf("die cost = %v, want $30-90", c)
	}
}

func TestYieldDecreasesWithArea(t *testing.T) {
	m := Default14nm()
	prev := 1.0
	for _, a := range []units.Area{10, 100, 400, 800} {
		y := m.Yield(a)
		if y >= prev {
			t.Fatalf("yield must fall with area: %v at %v", y, a)
		}
		prev = y
	}
}

func TestBigDieCostsMore(t *testing.T) {
	m := Default14nm()
	small := m.DieCost(30)
	big := m.DieCost(600) // GPU-class die
	if big <= small {
		t.Errorf("600mm2 die (%v) should cost more than 30mm2 (%v)", big, small)
	}
	if m.DieCost(0) != 0 {
		t.Error("zero-area die should cost nothing")
	}
}

func TestDeploymentMath(t *testing.T) {
	d := PaperDeployment()
	// 3 years at 30%: 7884 hours.
	hours := d.ActiveTime().Hours()
	if math.Abs(hours-7884) > 1 {
		t.Fatalf("active hours = %.0f, want 7884", hours)
	}
	// 100 W for that time at $0.0975/kWh and PUE 1.5: ~$115.
	opex := d.OPEX(100)
	if opex < 100 || opex < 110 || opex > 125 {
		t.Errorf("OPEX(100W) = %v, want ~$115", opex)
	}
	if d.OPEX(0) != 0 {
		t.Error("zero power should cost nothing")
	}
}

func TestSystemCosts(t *testing.T) {
	die := Default14nm().DieCost(power.DieArea(power.Node14nm, 128*128, 4*units.MiB))
	base := SystemFor(platform.BaselineCPU(), die)
	gpu := SystemFor(platform.GPU(), die)
	dscs := SystemFor(platform.DSCS(), die)
	nsfpga := SystemFor(platform.NSFPGA(), die)

	if base.CAPEX() <= 0 || gpu.CAPEX() <= base.CAPEX() {
		t.Errorf("GPU system (%v) must cost more than baseline (%v)",
			gpu.CAPEX(), base.CAPEX())
	}
	// The DSCS system replaces the GPU-class accelerator with a cheap die;
	// its CAPEX sits near the baseline's.
	ratio := float64(dscs.CAPEX()) / float64(base.CAPEX())
	if ratio < 0.8 || ratio > 1.4 {
		t.Errorf("DSCS/baseline CAPEX ratio = %.2f, want ~1", ratio)
	}
	// The SmartSSD premium makes NS-FPGA pricier than DSCS.
	if nsfpga.CAPEX() <= dscs.CAPEX() {
		t.Errorf("NS-FPGA CAPEX (%v) should exceed DSCS (%v)",
			nsfpga.CAPEX(), dscs.CAPEX())
	}
	// Traditional platforms burn far more power than the DSCS system.
	if gpu.AvgPower <= dscs.AvgPower {
		t.Errorf("GPU avg power (%v) should exceed DSCS (%v)",
			gpu.AvgPower, dscs.AvgPower)
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	d := PaperDeployment()
	die := Default14nm().DieCost(30)
	base := SystemFor(platform.BaselineCPU(), die)
	dscs := SystemFor(platform.DSCS(), die)
	// With ~3.8x the throughput at similar cost, DSCS's efficiency is a
	// multiple of the baseline's.
	eBase := Efficiency(3.3, base, d)
	eDSCS := Efficiency(12.6, dscs, d)
	if eDSCS <= 2.5*eBase {
		t.Errorf("DSCS efficiency %.1f should be >2.5x baseline %.1f", eDSCS, eBase)
	}
	if Efficiency(1, SystemCost{}, d) != 0 {
		t.Error("zero-cost system should yield zero efficiency (guard)")
	}
}
