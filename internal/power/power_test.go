package power

import (
	"testing"
	"time"

	"dscs/internal/units"
)

func TestScaling45To14(t *testing.T) {
	n14 := Node45nm.Scaled("14nm", Scale45To14)
	if n14.MACEnergy >= Node45nm.MACEnergy {
		t.Error("14nm MAC energy must shrink")
	}
	ratio := float64(n14.MACEnergy) / float64(Node45nm.MACEnergy)
	if ratio < 0.19 || ratio > 0.23 {
		t.Errorf("power scale = %.3f, want ~0.21", ratio)
	}
	aRatio := float64(n14.PEArea) / float64(Node45nm.PEArea)
	if aRatio < 0.10 || aRatio > 0.12 {
		t.Errorf("area scale = %.3f, want ~0.11", aRatio)
	}
}

func TestSRAMEnergyGrowsWithCapacity(t *testing.T) {
	small := Node45nm.SRAMAccessEnergy(128 * units.KiB)
	big := Node45nm.SRAMAccessEnergy(32 * units.MiB)
	if big <= small {
		t.Errorf("SRAM energy must grow with capacity: %v vs %v", small, big)
	}
	if small <= 0 {
		t.Error("SRAM energy must be positive")
	}
}

func TestDRAMKinds(t *testing.T) {
	// The paper's search space bandwidths.
	if DDR4.Bandwidth() != 19.2*units.GBps {
		t.Errorf("DDR4 bw = %v", DDR4.Bandwidth())
	}
	if DDR5.Bandwidth() != 38*units.GBps {
		t.Errorf("DDR5 bw = %v", DDR5.Bandwidth())
	}
	if HBM2.Bandwidth() != 460*units.GBps {
		t.Errorf("HBM2 bw = %v", HBM2.Bandwidth())
	}
	// HBM is the most efficient per byte, DDR4 the least.
	if !(HBM2.AccessEnergyPerByte() < DDR5.AccessEnergyPerByte() &&
		DDR5.AccessEnergyPerByte() < DDR4.AccessEnergyPerByte()) {
		t.Error("DRAM energy ordering violated")
	}
	for _, d := range []DRAMKind{DDR4, DDR5, HBM2} {
		if d.String() == "unknown" || d.IdlePower() <= 0 {
			t.Errorf("%v incomplete", d)
		}
	}
}

func TestDieArea(t *testing.T) {
	// 128x128 PEs + 4 MiB at 45 nm: on the order of 200-300 mm2.
	a := DieArea(Node45nm, 128*128, 4*units.MiB)
	if a < 150 || a > 400 {
		t.Errorf("45nm Dim128-4MB area = %v, want 150-400mm2", a)
	}
	// Same design at 14 nm shrinks by ~9x.
	a14 := DieArea(Node14nm, 128*128, 4*units.MiB)
	if ratio := float64(a14) / float64(a); ratio < 0.09 || ratio > 0.13 {
		t.Errorf("area shrink = %.3f, want ~0.11", ratio)
	}
	// 1024x1024 at 45 nm is enormous (the paper's Figure 8 tops at ~8000mm2).
	big := DieArea(Node45nm, 1024*1024, 32*units.MiB)
	if big < 5000 || big > 12000 {
		t.Errorf("45nm Dim1024-32MB area = %v, want 5000-12000mm2", big)
	}
}

func TestPeakPowerPaperBudget(t *testing.T) {
	// The selected design (128x128, 4 MiB, DDR5) must fit within the
	// SmartSSD-class power budget at 14 nm: the paper quotes 4.2 W for the
	// DSA against the drive's 25 W TDP.
	p := PeakPower(Node14nm, 128*128, 4*units.MiB, units.GHz, DDR5)
	if p < 3 || p > 9 {
		t.Errorf("14nm Dim128 peak power = %v, want 3-9W", p)
	}
	if p >= 25 {
		t.Errorf("DSA alone exceeds the 25W drive budget: %v", p)
	}
	// The same design at 45 nm consumes nearly the whole 25 W drive budget
	// (logic scales with the node; the DRAM interface does not).
	p45 := PeakPower(Node45nm, 128*128, 4*units.MiB, units.GHz, DDR5)
	if p45 <= 2*p || p45 < 18 {
		t.Errorf("45nm power %v should far exceed 14nm %v", p45, p)
	}
}

func TestPeakPowerMonotonicInPEs(t *testing.T) {
	prev := units.Power(0)
	for _, dim := range []int{4, 16, 64, 128, 512, 1024} {
		p := PeakPower(Node45nm, dim*dim, 4*units.MiB, units.GHz, DDR4)
		if p <= prev {
			t.Errorf("peak power not increasing at dim %d: %v <= %v", dim, p, prev)
		}
		prev = p
	}
}

func TestEstimateComposition(t *testing.T) {
	a := Activity{
		MACs:        1e9,
		VectorOps:   1e7,
		SRAMBytes:   units.Bytes(1e9),
		DRAMBytes:   units.Bytes(1e8),
		BufferBytes: 4 * units.MiB,
		Runtime:     time.Millisecond,
		DRAM:        DDR5,
		Area:        30,
	}
	e, p := Estimate(Node14nm, a)
	if e <= 0 || p <= 0 {
		t.Fatalf("degenerate estimate e=%v p=%v", e, p)
	}
	// Doubling the MACs increases energy.
	a2 := a
	a2.MACs *= 2
	e2, _ := Estimate(Node14nm, a2)
	if e2 <= e {
		t.Error("more MACs must cost more energy")
	}
	// Energy and power are consistent.
	if got := e.Over(a.Runtime); got != p {
		t.Errorf("power inconsistency: %v vs %v", got, p)
	}
	// Longer runtime at fixed work adds leakage energy.
	a3 := a
	a3.Runtime = 10 * time.Millisecond
	e3, p3 := Estimate(Node14nm, a3)
	if e3 <= e {
		t.Error("leakage must grow with runtime")
	}
	if p3 >= p {
		t.Error("average power must drop when the same work stretches out")
	}
}

func TestPCIeEnergy(t *testing.T) {
	if PCIeEnergyPerByte <= 0 {
		t.Fatal("PCIe energy must be positive")
	}
	// ~5 pJ/bit => 40 pJ/B.
	if PCIeEnergyPerByte != 40*units.PicoJoule {
		t.Errorf("PCIe energy = %v", PCIeEnergyPerByte)
	}
}
