// Package power provides the energy and area models used for the DSA's ASIC
// estimates: per-MAC and SRAM access energies at the 45 nm FreePDK node
// (following Horowitz-style energy tables and a CACTI-style capacity scaling
// law), DRAM and PCIe interface energies, leakage, and DeepScaleTool-style
// scaling factors from 45 nm to 14 nm — the methodology the paper uses to
// project its SmartSSD-class design.
package power

import (
	"math"
	"time"

	"dscs/internal/units"
)

// TechNode holds the per-operation energy and area parameters of a process.
type TechNode struct {
	Name string

	// MACEnergy is the energy of one 8-bit MAC including local registers.
	MACEnergy units.Energy
	// VectorOpEnergy is the energy of one VPU lane-op (ALU + registers).
	VectorOpEnergy units.Energy
	// SRAMBase and SRAMSlope define the per-byte access energy of an
	// on-chip buffer of capacity c: base + slope*sqrt(c in MB).
	SRAMBase, SRAMSlope units.Energy
	// LeakagePerMM2 is static power per unit area.
	LeakagePerMM2 units.Power

	// PEArea is the area of one 8-bit PE (MAC + registers + control).
	PEArea units.Area
	// SRAMAreaPerByte is buffer density.
	SRAMAreaPerByte units.Area
	// MiscAreaFactor inflates the core area for NoC/control/IO.
	MiscAreaFactor float64
}

// Node45nm is the FreePDK 45 nm baseline used by the design-space
// exploration, with energies in the range published for this node.
var Node45nm = TechNode{
	Name:            "45nm",
	MACEnergy:       0.9 * units.PicoJoule,
	VectorOpEnergy:  1.2 * units.PicoJoule,
	SRAMBase:        0.4 * units.PicoJoule,
	SRAMSlope:       0.45 * units.PicoJoule,
	LeakagePerMM2:   0.020,   // W/mm2
	PEArea:          6.0e-3,  // mm2 per PE
	SRAMAreaPerByte: 2.66e-5, // mm2/byte (~0.38 Mb/mm2 density at 45 nm)
	MiscAreaFactor:  1.15,
}

// ScaleFactors captures DeepScaleTool-style scaling between nodes.
type ScaleFactors struct {
	Power float64 // dynamic energy scale
	Area  float64
}

// Scale45To14 are the 45 nm -> 14 nm factors (the SmartSSD-class node).
var Scale45To14 = ScaleFactors{Power: 0.21, Area: 0.11}

// Scaled returns the node with energies and areas scaled by f.
func (t TechNode) Scaled(name string, f ScaleFactors) TechNode {
	out := t
	out.Name = name
	out.MACEnergy = t.MACEnergy * units.Energy(f.Power)
	out.VectorOpEnergy = t.VectorOpEnergy * units.Energy(f.Power)
	out.SRAMBase = t.SRAMBase * units.Energy(f.Power)
	out.SRAMSlope = t.SRAMSlope * units.Energy(f.Power)
	out.LeakagePerMM2 = t.LeakagePerMM2 * units.Power(f.Power/f.Area)
	out.PEArea = t.PEArea * units.Area(f.Area)
	out.SRAMAreaPerByte = t.SRAMAreaPerByte * units.Area(f.Area)
	return out
}

// Node14nm is the projected 14 nm node.
var Node14nm = Node45nm.Scaled("14nm", Scale45To14)

// Scale45To7 projects to a 7 nm-class node (the paper's Section 4 calls
// for projecting the design to more recent technology nodes).
var Scale45To7 = ScaleFactors{Power: 0.11, Area: 0.042}

// Node7nm is the projected 7 nm node.
var Node7nm = Node45nm.Scaled("7nm", Scale45To7)

// Nodes lists the modeled process nodes, oldest first.
func Nodes() []TechNode { return []TechNode{Node45nm, Node14nm, Node7nm} }

// SRAMAccessEnergy returns the per-byte access energy of a buffer with the
// given capacity (CACTI-style sqrt growth with capacity).
func (t TechNode) SRAMAccessEnergy(capacity units.Bytes) units.Energy {
	mb := float64(capacity) / float64(units.MB)
	if mb < 0 {
		mb = 0
	}
	return t.SRAMBase + t.SRAMSlope*units.Energy(math.Sqrt(mb))
}

// DRAMKind identifies the accelerator-attached memory technology.
type DRAMKind int

// Memory technologies explored in the paper's search space.
const (
	DDR4 DRAMKind = iota
	DDR5
	HBM2
)

// String names the memory kind.
func (d DRAMKind) String() string {
	switch d {
	case DDR4:
		return "DDR4"
	case DDR5:
		return "DDR5"
	case HBM2:
		return "HBM2"
	}
	return "unknown"
}

// Bandwidth returns the memory bandwidth used in the search space.
func (d DRAMKind) Bandwidth() units.Bandwidth {
	switch d {
	case DDR4:
		return 19.2 * units.GBps
	case DDR5:
		return 38 * units.GBps
	case HBM2:
		return 460 * units.GBps
	}
	return 0
}

// AccessEnergyPerByte returns the interface + array energy per byte moved.
func (d DRAMKind) AccessEnergyPerByte() units.Energy {
	switch d {
	case DDR4:
		return 120 * units.PicoJoule
	case DDR5:
		return 100 * units.PicoJoule
	case HBM2:
		return 32 * units.PicoJoule
	}
	return 0
}

// IdlePower returns the standing power of the memory device/PHY.
func (d DRAMKind) IdlePower() units.Power {
	switch d {
	case DDR4:
		return 0.35
	case DDR5:
		return 0.40
	case HBM2:
		return 1.6
	}
	return 0
}

// PCIeEnergyPerByte is the link energy per byte (per-bit figures from
// multi-chip SoC literature: ~5 pJ/bit).
const PCIeEnergyPerByte units.Energy = 40 * units.PicoJoule

// Activity summarizes the dynamic work of a DSA execution; the DSA simulator
// produces it and Estimate turns it into energy and average power.
type Activity struct {
	MACs        int64
	VectorOps   int64
	SRAMBytes   units.Bytes
	DRAMBytes   units.Bytes
	BufferBytes units.Bytes // total on-chip buffer capacity, for access cost
	Runtime     time.Duration
	DRAM        DRAMKind
	Area        units.Area
}

// Estimate returns the energy and average power of the activity on node t.
func Estimate(t TechNode, a Activity) (units.Energy, units.Power) {
	e := units.Energy(float64(a.MACs)) * t.MACEnergy
	e += units.Energy(float64(a.VectorOps)) * t.VectorOpEnergy
	e += units.Energy(float64(a.SRAMBytes)) * t.SRAMAccessEnergy(a.BufferBytes)
	e += units.Energy(float64(a.DRAMBytes)) * a.DRAM.AccessEnergyPerByte()
	leak := t.LeakagePerMM2 * units.Power(float64(a.Area))
	e += (leak + a.DRAM.IdlePower()).Times(a.Runtime)
	return e, e.Over(a.Runtime)
}

// DieArea returns the DSA die area on node t for a PE array and buffers.
func DieArea(t TechNode, pes int, bufferBytes units.Bytes) units.Area {
	core := t.PEArea*units.Area(float64(pes)) +
		t.SRAMAreaPerByte*units.Area(float64(bufferBytes))
	return core * units.Area(t.MiscAreaFactor)
}

// PeakPower returns the worst-case dynamic + static power of a DSA config:
// every PE issuing a MAC per cycle plus buffer traffic to feed the array,
// the figure checked against the drive's PCIe budget.
func PeakPower(t TechNode, pes int, bufferBytes units.Bytes, freq units.Frequency, dram DRAMKind) units.Power {
	macPower := units.Power(float64(pes) * float64(freq) * float64(t.MACEnergy))
	// The array consumes roughly sqrt(pes) operand bytes per cycle per edge.
	feedBytesPerSec := 2 * math.Sqrt(float64(pes)) * float64(freq)
	sramPower := units.Power(feedBytesPerSec * float64(t.SRAMAccessEnergy(bufferBytes)))
	dramPower := units.Power(float64(dram.Bandwidth()) * float64(dram.AccessEnergyPerByte()))
	leak := t.LeakagePerMM2 * units.Power(float64(DieArea(t, pes, bufferBytes)))
	return macPower + sramPower + dramPower + leak + dram.IdlePower()
}
