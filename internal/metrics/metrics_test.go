package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	s := NewSample(10)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	p50 := s.Percentile(0.5)
	if p50 < 50*time.Millisecond || p50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if mean := s.Mean(); mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", mean)
	}
}

func TestPercentileEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(0.95) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should return zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

// TestPercentileBoundaries pins the exact-boundary behavior the digest and
// the sample must share: a 1-element sample answers every p with its only
// value, and a p that lands exactly on an index (the lo==hi path) returns
// that element with no interpolation. The digest is run over the same
// inputs so the two implementations cannot drift apart.
func TestPercentileBoundaries(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		values []time.Duration
		p      float64
		want   time.Duration
	}{
		{"one-element-p0", []time.Duration{ms(7)}, 0, ms(7)},
		{"one-element-p50", []time.Duration{ms(7)}, 0.5, ms(7)},
		{"one-element-p100", []time.Duration{ms(7)}, 1, ms(7)},
		// Five elements: pos = p*4 hits integer indices at multiples of
		// 0.25 — the lo==hi path, exact element, no interpolation.
		{"five-p25-exact-index", []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}, 0.25, ms(20)},
		{"five-p50-exact-index", []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}, 0.5, ms(30)},
		{"five-p75-exact-index", []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}, 0.75, ms(40)},
		// Between indices it interpolates: pos = 0.1*4 = 0.4 -> 10 + 0.4*10.
		{"five-p10-interpolated", []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}, 0.1, ms(14)},
		// Out-of-range p clamps to the extremes.
		{"clamp-low", []time.Duration{ms(10), ms(20)}, -0.5, ms(10)},
		{"clamp-high", []time.Duration{ms(10), ms(20)}, 1.5, ms(20)},
	}
	for _, tc := range cases {
		s := NewSample(len(tc.values))
		d := NewDigest(len(tc.values))
		for _, v := range tc.values {
			s.Add(v)
			d.Record(v)
		}
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Sample.Percentile = %v, want %v", tc.name, got, tc.want)
		}
		if got := d.Quantile(tc.p); got != tc.want {
			t.Errorf("%s: Digest.Quantile = %v, want %v (disagrees with Sample)", tc.name, got, tc.want)
		}
	}
}

// TestSampleConcurrentUse locks in the Sample concurrency fix under -race:
// sortValues used to mutate the backing slice with no synchronization, so
// a reporting Percentile racing a worker's Add corrupted the sample.
func TestSampleConcurrentUse(t *testing.T) {
	s := NewSample(1024)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(time.Duration(base*1000+i) * time.Microsecond)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if s.Percentile(0.95) < 0 || s.Mean() < 0 || s.Min() < 0 || s.Max() < 0 {
					t.Error("negative statistic under concurrency")
					return
				}
				s.CDF(10)
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4000 {
		t.Fatalf("len = %d, want 4000", s.Len())
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	s := NewSample(100)
	rng := uint64(12345)
	next := func() uint64 { rng = rng*6364136223846793005 + 1; return rng >> 33 }
	for i := 0; i < 500; i++ {
		s.Add(time.Duration(next()%1e6) * time.Microsecond)
	}
	f := func(a, b uint8) bool {
		p1, p2 := float64(a)/255, float64(b)/255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF has %d points, want 10", len(cdf))
	}
	if cdf[len(cdf)-1].Frac != 1.0 {
		t.Errorf("last CDF frac = %v, want 1", cdf[len(cdf)-1].Frac)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Frac <= cdf[i-1].Frac {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{3, 3, 3}); math.Abs(g-3) > 1e-9 {
		t.Errorf("geomean(3,3,3) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{-1, 0, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean skipping non-positive = %v", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
}

func TestSeriesBucketed(t *testing.T) {
	s := &Series{Name: "load"}
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	b := s.Bucketed(10 * time.Second)
	if len(b.Points) != 10 {
		t.Fatalf("bucketed to %d points, want 10", len(b.Points))
	}
	// First bucket averages 0..9 = 4.5.
	if b.Points[0].Value != 4.5 {
		t.Errorf("first bucket = %v, want 4.5", b.Points[0].Value)
	}
	if s.MaxValue() != 99 {
		t.Errorf("max = %v", s.MaxValue())
	}
	if s.MeanValue() != 49.5 {
		t.Errorf("mean = %v", s.MeanValue())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 100)
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Total != 100 {
		t.Fatalf("total = %d", h.Total)
	}
	if f := h.FracBelow(50 * time.Millisecond); f != 0.5 {
		t.Errorf("FracBelow(50ms) = %v, want 0.5", f)
	}
	h.Observe(24 * time.Hour) // beyond the cap
	if h.Overmax != 1 {
		t.Errorf("overflow count = %d", h.Overmax)
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 - 3x + 0.5x^2 fitted exactly from samples.
	want := []float64{2, -3, 0.5}
	var xs, ys []float64
	for x := -5.0; x <= 5; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, PolyEval(want, x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Errorf("coeff %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyFitCubic(t *testing.T) {
	// The paper's Figure 7 fit is cubic; verify recovery with noise-free data.
	want := []float64{-2.1969, 0.0329, -9e-05, 9e-08}
	var xs, ys []float64
	for x := 50.0; x <= 2500; x += 50 {
		xs = append(xs, x)
		ys = append(ys, PolyEval(want, x))
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		rel := math.Abs(got[i] - want[i])
		if want[i] != 0 {
			rel /= math.Abs(want[i])
		}
		if rel > 1e-3 {
			t.Errorf("coeff %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("underdetermined fit should error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	// Duplicate x values make the quadratic system singular.
	if _, err := PolyFit([]float64{1, 1, 1}, []float64{1, 2, 3}, 2); err == nil {
		t.Error("singular system should error")
	}
}

func TestPolyString(t *testing.T) {
	s := PolyString("P", []float64{-2.2, 0.033, 0, 9e-08})
	if !strings.Contains(s, "P(c) = ") || !strings.Contains(s, "c^3") {
		t.Errorf("unexpected poly string %q", s)
	}
	if PolyString("A", []float64{0}) != "A(c) = 0" {
		t.Errorf("zero poly: %q", PolyString("A", []float64{0}))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 9", "Benchmark", "Speedup")
	tb.AddRow("ppe-detection", 7.9)
	tb.AddRow("credit-risk", 1.8)
	out := tb.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "ppe-detection") ||
		!strings.Contains(out, "7.90") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	if s := FormatDuration(1500 * time.Microsecond); s != "1.500ms" {
		t.Errorf("FormatDuration = %q", s)
	}
}
