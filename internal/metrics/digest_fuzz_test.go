package metrics

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// FuzzDigestRecord feeds adversarial duration sequences into the digest
// and cross-checks it against the exact Sample on every prefix: quantiles
// must stay inside [min, max] of the window, monotone in p, never
// negative, and — while the window has not wrapped — bit-identical to
// Sample.Percentile. The seed corpus covers the adversarial shapes named
// in the scheduler's threat model: all-zero durations, the maximum
// duration, and a monotone-decreasing ramp.
func FuzzDigestRecord(f *testing.F) {
	seq := func(vs ...int64) []byte {
		b := make([]byte, 8*len(vs))
		for i, v := range vs {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
		}
		return b
	}
	f.Add(seq(0, 0, 0, 0, 0, 0, 0, 0))
	f.Add(seq(math.MaxInt64, math.MaxInt64, math.MaxInt64))
	f.Add(seq(1<<50, 1<<40, 1<<30, 1<<20, 1<<10, 1, 0))
	f.Add(seq(-1, math.MinInt64, 5, -5))

	f.Fuzz(func(t *testing.T, data []byte) {
		const window = 32
		d := NewDigest(window)
		s := NewSample(window)
		n := len(data) / 8
		if n > 256 {
			n = 256
		}
		for i := 0; i < n; i++ {
			v := time.Duration(binary.LittleEndian.Uint64(data[8*i:]))
			d.Record(v)
			if v < 0 {
				v = 0 // Record clamps; mirror it for the exact reference
			}
			s.Add(v)

			prev := time.Duration(-1)
			for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
				got := d.Quantile(q)
				if got < 0 {
					t.Fatalf("obs %d: Quantile(%v) = %v negative", i, q, got)
				}
				if got < prev {
					t.Fatalf("obs %d: quantiles not monotone at q=%v", i, q)
				}
				prev = got
				if i < window {
					if want := s.Percentile(q); got != want {
						t.Fatalf("obs %d q=%v: digest %v != exact %v", i, q, got, want)
					}
				}
			}
			if sq := d.StreamQuantile(0.95); sq < 0 {
				t.Fatalf("obs %d: stream quantile negative: %v", i, sq)
			}
			// Neither pricing path may ever emit a non-positive estimate
			// for a positive static prior — Adopt feeds the former's slack
			// arithmetic, Blend feeds the policies' service ordering (and
			// its weighted sum must saturate, not wrap, near MaxInt64).
			if est, _ := d.Adopt(time.Millisecond, 0.95, 4); est <= 0 {
				t.Fatalf("obs %d: Adopt returned %v for a positive prior", i, est)
			}
			if bl := d.Blend(time.Millisecond, 4); bl <= 0 {
				t.Fatalf("obs %d: Blend returned %v for a positive prior", i, bl)
			}
		}
	})
}
