// stats.go provides the statistics used by the evaluation: percentile
// summaries, cumulative distribution functions, time series, and
// histograms.

package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Sample accumulates latency observations. Safe for concurrent use: the
// serving engine's worker goroutines Add while reporting reads percentiles
// (sortValues mutates the backing slice, so unsynchronized mixed calls
// were a data race).
type Sample struct {
	mu     sync.Mutex
	values []time.Duration
	sorted bool
}

// NewSample returns an empty sample with room for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]time.Duration, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.mu.Lock()
	s.values = append(s.values, d)
	s.sorted = false
	s.mu.Unlock()
}

// Len reports the number of observations.
func (s *Sample) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// sortValues orders the observations; callers hold s.mu.
func (s *Sample) sortValues() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Percentile returns the p-quantile (p in [0,1]) by linear interpolation.
func (s *Sample) Percentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := p * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// Mean returns the arithmetic mean of the observations.
func (s *Sample) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.values)))
}

// Min returns the smallest observation.
func (s *Sample) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	return s.values[0]
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.sortValues()
	return s.values[len(s.values)-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value time.Duration
	Frac  float64
}

// CDF returns the empirical CDF down-sampled to at most points entries.
func (s *Sample) CDF(points int) []CDFPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 || points <= 0 {
		return nil
	}
	s.sortValues()
	if points > len(s.values) {
		points = len(s.values)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(s.values) / points
		if idx > len(s.values) {
			idx = len(s.values)
		}
		out = append(out, CDFPoint{
			Value: s.values[idx-1],
			Frac:  float64(idx) / float64(len(s.values)),
		})
	}
	return out
}

// Geomean returns the geometric mean of a slice of positive ratios.
// Non-positive entries are skipped.
func Geomean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of a float slice (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TimePoint is one observation of a time series in virtual time.
type TimePoint struct {
	At    time.Duration
	Value float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []TimePoint
}

// Add appends an observation.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, TimePoint{At: at, Value: v})
}

// MaxValue returns the largest value in the series (0 when empty).
func (s *Series) MaxValue() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// MeanValue returns the average value of the series (0 when empty).
func (s *Series) MeanValue() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Bucketed down-samples the series into fixed-width time buckets by
// averaging, which is how the at-scale figures are rendered.
func (s *Series) Bucketed(width time.Duration) *Series {
	if width <= 0 || len(s.Points) == 0 {
		return s
	}
	out := &Series{Name: s.Name}
	var bucketStart time.Duration
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out.Add(bucketStart, sum/float64(n))
		}
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		for p.At >= bucketStart+width {
			flush()
			bucketStart += width
		}
		sum += p.Value
		n++
	}
	flush()
	return out
}

// Histogram counts observations in fixed-width buckets.
type Histogram struct {
	Width   time.Duration
	Counts  map[int]int
	Total   int
	Overmax int
	MaxBkt  int
}

// NewHistogram returns a histogram with the given bucket width and a cap of
// maxBuckets; observations beyond the cap land in an overflow count.
func NewHistogram(width time.Duration, maxBuckets int) *Histogram {
	return &Histogram{Width: width, Counts: make(map[int]int), MaxBkt: maxBuckets}
}

// Observe records one value.
func (h *Histogram) Observe(d time.Duration) {
	h.Total++
	if h.Width <= 0 {
		return
	}
	b := int(d / h.Width)
	if h.MaxBkt > 0 && b >= h.MaxBkt {
		h.Overmax++
		return
	}
	h.Counts[b]++
}

// FracBelow reports the fraction of observations below d.
func (h *Histogram) FracBelow(d time.Duration) float64 {
	if h.Total == 0 || h.Width <= 0 {
		return 0
	}
	limit := int(d / h.Width)
	n := 0
	for b, c := range h.Counts {
		if b < limit {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}

// FormatDuration renders a duration in ms with three decimals, the unit used
// in the paper's latency figures.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}
