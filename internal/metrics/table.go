package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple text table used by the experiment runners to print the
// same rows the paper's tables and figures report.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
