package metrics

import (
	"fmt"
	"math"
	"strings"
)

// PolyFit computes the least-squares polynomial of the given degree through
// the (x, y) points, returning coefficients lowest-order first. It solves
// the normal equations with Gaussian elimination and partial pivoting, which
// is plenty for the cubic fits in the Pareto-frontier figures.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("metrics: polyfit length mismatch %d vs %d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("metrics: polyfit negative degree %d", degree)
	}
	n := degree + 1
	if len(xs) < n {
		return nil, fmt.Errorf("metrics: polyfit needs >= %d points, have %d", n, len(xs))
	}

	// Build normal equations A c = b where A[i][j] = sum x^(i+j).
	powerSums := make([]float64, 2*degree+1)
	for _, x := range xs {
		p := 1.0
		for k := range powerSums {
			powerSums[k] += p
			p *= x
		}
	}
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = powerSums[i+j]
		}
	}
	for k, x := range xs {
		p := 1.0
		for i := 0; i < n; i++ {
			b[i] += ys[k] * p
			p *= x
		}
	}
	return solveLinear(a, b)
}

// solveLinear solves a dense linear system in place with partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot on the largest magnitude entry in this column.
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("metrics: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			for j := col; j < n; j++ {
				a[row][j] -= f * a[col][j]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for j := row + 1; j < n; j++ {
			sum -= a[row][j] * x[j]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}

// PolyEval evaluates a polynomial with coefficients lowest-order first.
func PolyEval(coeffs []float64, x float64) float64 {
	var y float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
	}
	return y
}

// PolyString renders the polynomial in the paper's figure-caption style,
// e.g. "P(c) = 9.0e-08c^3 - 9.0e-05c^2 + 3.3e-02c - 2.2".
func PolyString(name string, coeffs []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(c) = ", name)
	first := true
	for i := len(coeffs) - 1; i >= 0; i-- {
		c := coeffs[i]
		if c == 0 {
			continue
		}
		if !first {
			if c >= 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
				c = -c
			}
		}
		switch i {
		case 0:
			fmt.Fprintf(&sb, "%.4g", c)
		case 1:
			fmt.Fprintf(&sb, "%.4gc", c)
		default:
			fmt.Fprintf(&sb, "%.4gc^%d", c, i)
		}
		first = false
	}
	if first {
		sb.WriteString("0")
	}
	return sb.String()
}
