// Package metrics provides the statistics behind both the paper's
// evaluation figures and the serving core's live adaptive decisions.
//
// The offline half serves the experiment runners: exact percentile
// summaries (Sample), cumulative distributions, time series, histograms,
// text tables, and a least-squares polynomial fitter for the
// Pareto-frontier figures.
//
// The online half is the observatory the scheduler closes its loops with:
//
//   - Digest is a concurrent quantile digest — a fixed-window ring whose
//     sorted view gives windowed quantiles that react to drift, plus
//     constant-memory P² streaming estimators (Jain & Chlamtac, 1985) for
//     the cumulative p50/p95/p99 surfaced as gauges. Record is O(log
//     window) and quantile reads never sort under the lock.
//   - Digest.Adopt is the static-vs-live switching decision: below a
//     warmup count the prior holds; once warmed, the live quantile is
//     adopted when it diverges beyond AdoptEnterRatio (1.5x, either
//     direction) and released only on re-convergence within
//     AdoptExitRatio (1.2x) — a hysteresis latch, so pricing flips once at
//     a genuine regime change instead of flapping per request.
//     Digest.Blend is the smooth alternative: a pseudo-observation
//     weighted pull from the prior toward the observed p50.
//   - Observatory keys digests by a two-part string key and applies the
//     package defaults (DefaultWindow, DefaultWarmup). The serving engine
//     and the discrete-event simulations run two of them: service
//     latencies keyed {benchmark, platform} (adaptive estimation,
//     serve_latency_* gauges) and queue delays keyed {platform, class}
//     (adaptive spillover/steal, serve_queue_delay_* gauges).
//
// The digest's agreement with the exact Sample quantiles, its behavior on
// adversarial inputs, and the no-flapping latch are pinned by the package
// tests and FuzzDigestRecord.
package metrics
