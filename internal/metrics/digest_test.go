package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// lcg is the deterministic value stream the digest tests share.
func lcg(seed uint64) func() uint64 {
	s := seed
	return func() uint64 { s = s*6364136223846793005 + 1442695040888963407; return s >> 33 }
}

// TestDigestMatchesExactQuantiles is the digest-vs-exact differential: as
// long as the window has not wrapped, the digest's windowed quantile must
// equal Sample.Percentile bit for bit on the same inputs — same
// interpolation, same boundary handling. Runs under -race in CI's
// scheduler step.
func TestDigestMatchesExactQuantiles(t *testing.T) {
	next := lcg(7)
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	d := NewDigest(512)
	s := NewSample(512)
	for i := 0; i < 512; i++ {
		v := time.Duration(next()%1e9) * time.Nanosecond
		d.Record(v)
		s.Add(v)
		if i%37 != 0 && i != 511 {
			continue
		}
		for _, q := range quantiles {
			if got, want := d.Quantile(q), s.Percentile(q); got != want {
				t.Fatalf("n=%d q=%v: digest %v != exact %v", i+1, q, got, want)
			}
		}
	}
}

// TestDigestWindowSlides: once the ring wraps, quantiles reflect only the
// most recent window — the property that makes the estimates react to
// drift where a cumulative sample cannot.
func TestDigestWindowSlides(t *testing.T) {
	d := NewDigest(64)
	for i := 0; i < 64; i++ {
		d.Record(10 * time.Millisecond)
	}
	if got := d.Quantile(0.5); got != 10*time.Millisecond {
		t.Fatalf("pre-drift p50 = %v", got)
	}
	for i := 0; i < 64; i++ {
		d.Record(30 * time.Millisecond)
	}
	if got := d.Quantile(0.5); got != 30*time.Millisecond {
		t.Fatalf("post-drift p50 = %v, old observations leaked", got)
	}
	if d.Count() != 128 {
		t.Fatalf("count = %d, want 128", d.Count())
	}
}

// TestP2StreamQuantiles checks the constant-memory estimators against the
// exact quantiles of a 20k-value stream: P² is approximate, so the pin is
// a relative tolerance, not equality.
func TestP2StreamQuantiles(t *testing.T) {
	next := lcg(99)
	d := NewDigest(128) // window much smaller than the stream
	s := NewSample(20000)
	for i := 0; i < 20000; i++ {
		// Skewed distribution (squared uniform) so the tails matter.
		u := float64(next()%1e6) / 1e6
		v := time.Duration(u * u * float64(time.Second))
		d.Record(v)
		s.Add(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := float64(d.StreamQuantile(q))
		want := float64(s.Percentile(q))
		if want == 0 {
			t.Fatalf("degenerate exact q%v", q)
		}
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q%v: stream %v vs exact %v (rel err %.3f)", q,
				time.Duration(got), time.Duration(want), rel)
		}
	}
}

// TestStreamQuantileSmallN: below five observations P² falls back to the
// exact stored values.
func TestStreamQuantileSmallN(t *testing.T) {
	d := NewDigest(16)
	if d.StreamQuantile(0.5) != 0 {
		t.Fatal("empty stream quantile must be 0")
	}
	d.Record(40 * time.Millisecond)
	if got := d.StreamQuantile(0.5); got != 40*time.Millisecond {
		t.Fatalf("1-obs p50 = %v", got)
	}
	d.Record(20 * time.Millisecond)
	d.Record(60 * time.Millisecond)
	if got := d.StreamQuantile(0.5); got != 40*time.Millisecond {
		t.Fatalf("3-obs p50 = %v, want the middle value", got)
	}
}

// TestDigestAdversarialNeverNaNZero drives Record with the adversarial
// sequences the fuzz seeds use — zero, the maximum duration, monotone
// decreasing — and asserts the digest can never emit a negative estimate,
// and Adopt never replaces a positive static prior with a non-positive
// live value.
func TestDigestAdversarialNeverNaNZero(t *testing.T) {
	static := 10 * time.Millisecond
	sequences := [][]time.Duration{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{1 << 40, 1 << 30, 1 << 20, 1 << 10, 1, 0},
		{-time.Second, -time.Millisecond, 0, time.Millisecond},
	}
	for si, seq := range sequences {
		d := NewDigest(8)
		for _, v := range seq {
			d.Record(v)
			for _, q := range []float64{0, 0.5, 0.95, 0.99, 1, math.NaN(), -1, 2} {
				if got := d.Quantile(q); got < 0 {
					t.Fatalf("seq %d: Quantile(%v) = %v negative", si, q, got)
				}
			}
			if got := d.StreamQuantile(0.95); got < 0 {
				t.Fatalf("seq %d: StreamQuantile negative: %v", si, got)
			}
			if est, _ := d.Adopt(static, 0.95, 4); est <= 0 {
				t.Fatalf("seq %d: Adopt fed a non-positive estimate %v into pricing", si, est)
			}
		}
	}
	// The all-zero digest must never adopt, no matter how warmed: a zero
	// service estimate would let the former hold a batch for the whole SLO.
	d := NewDigest(8)
	for i := 0; i < 100; i++ {
		d.Record(0)
	}
	if est, live := d.Adopt(static, 0.95, 4); live || est != static {
		t.Fatalf("all-zero digest adopted: est=%v live=%v", est, live)
	}
}

// TestAdoptWarmupAndHysteresis pins the static-vs-live switching contract:
// static below warmup, a single latch flip at the crossover when the
// observed latency has drifted 3x, no flapping while it hovers inside the
// hysteresis band, and a release flip when it genuinely re-converges.
func TestAdoptWarmupAndHysteresis(t *testing.T) {
	const warmup = 16
	static := 10 * time.Millisecond
	d := NewDigest(32)

	// Below warmup the static prior holds even though the observations
	// already sit at 3x.
	for i := 0; i < warmup-1; i++ {
		d.Record(30 * time.Millisecond)
		if est, live := d.Adopt(static, 0.95, warmup); live || est != static {
			t.Fatalf("obs %d (pre-warmup): est=%v live=%v", i+1, est, live)
		}
	}
	if d.Flips() != 0 {
		t.Fatalf("pre-warmup flips = %d", d.Flips())
	}

	// The warmup-crossing observation flips pricing to live — once.
	d.Record(30 * time.Millisecond)
	for i := 0; i < 50; i++ {
		est, live := d.Adopt(static, 0.95, warmup)
		if !live || est != 30*time.Millisecond {
			t.Fatalf("post-warmup call %d: est=%v live=%v", i, est, live)
		}
	}
	if d.Flips() != 1 {
		t.Fatalf("post-warmup flips = %d, want exactly 1 (no per-request flapping)", d.Flips())
	}

	// Drift back to 1.3x: inside the band (above the 1.2x exit, below the
	// 1.5x entry) the latch must hold, not flap.
	for i := 0; i < 64; i++ {
		d.Record(13 * time.Millisecond)
		if _, live := d.Adopt(static, 0.95, warmup); !live {
			t.Fatalf("obs %d at 1.3x: latch released inside the hysteresis band", i)
		}
	}
	if d.Flips() != 1 {
		t.Fatalf("hysteresis-band flips = %d, want still 1", d.Flips())
	}

	// Genuine re-convergence to 1.0x releases the latch exactly once.
	for i := 0; i < 64; i++ {
		d.Record(static)
		d.Adopt(static, 0.95, warmup)
	}
	if est, live := d.Adopt(static, 0.95, warmup); live || est != static {
		t.Fatalf("re-converged: est=%v live=%v", est, live)
	}
	if d.Flips() != 2 {
		t.Fatalf("re-convergence flips = %d, want 2", d.Flips())
	}

	// And a fresh 1.3x drift from static must NOT re-adopt (below entry).
	for i := 0; i < 64; i++ {
		d.Record(13 * time.Millisecond)
		if _, live := d.Adopt(static, 0.95, warmup); live {
			t.Fatal("re-adopted below the entry ratio")
		}
	}
}

// TestAdoptZeroStatic: with no prior to diverge from, a warmed digest is
// adopted outright.
func TestAdoptZeroStatic(t *testing.T) {
	d := NewDigest(16)
	for i := 0; i < 8; i++ {
		d.Record(5 * time.Millisecond)
	}
	if est, live := d.Adopt(0, 0.95, 4); !live || est != 5*time.Millisecond {
		t.Fatalf("zero-static adopt: est=%v live=%v", est, live)
	}
}

// TestDigestConcurrentRecord exercises the concurrent contract under
// -race: worker goroutines Record while readers pull quantiles, counts,
// and adoption decisions.
func TestDigestConcurrentRecord(t *testing.T) {
	d := NewDigest(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			next := lcg(seed)
			for i := 0; i < 2000; i++ {
				d.Record(time.Duration(next() % 1e9))
			}
		}(uint64(w + 1))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if d.Quantile(0.95) < 0 || d.StreamQuantile(0.5) < 0 {
					t.Error("negative quantile under concurrency")
					return
				}
				d.Adopt(time.Millisecond, 0.95, 32)
				d.Blend(time.Millisecond, 32)
				d.Count()
			}
		}()
	}
	wg.Wait()
	if d.Count() != 16000 {
		t.Fatalf("count = %d, want 16000", d.Count())
	}
}

// TestObservatoryKeysAndForget covers the per-{benchmark, platform} keying
// and the redeploy invalidation path.
func TestObservatoryKeysAndForget(t *testing.T) {
	o := NewObservatory(0, 0)
	if o.Warmup() != DefaultWarmup {
		t.Fatalf("default warmup = %d", o.Warmup())
	}
	o.Record("chatbot", "dscs", 10*time.Millisecond)
	o.Record("chatbot", "cpu", 90*time.Millisecond)
	o.Record("clinical", "dscs", 50*time.Millisecond)
	if o.Digest("chatbot", "dscs") == o.Digest("chatbot", "cpu") {
		t.Fatal("platforms must not share a digest")
	}
	if o.Digest("nope", "dscs") != nil {
		t.Fatal("unknown key must be nil")
	}
	if got := o.Blend("nope", "dscs", time.Second); got != time.Second {
		t.Fatalf("blend with no digest = %v, want the prior", got)
	}
	if got := o.ServiceQuantile("nope", "dscs", time.Second, 0.95); got != time.Second {
		t.Fatalf("quantile with no digest = %v, want the prior", got)
	}
	o.Forget("chatbot")
	if o.Digest("chatbot", "dscs") != nil || o.Digest("chatbot", "cpu") != nil {
		t.Fatal("Forget must drop every platform's digest for the benchmark")
	}
	if o.Digest("clinical", "dscs") == nil {
		t.Fatal("Forget dropped an unrelated benchmark")
	}
}

// TestBlendPullsTowardObservation: the blend weights the prior as warmup
// pseudo-observations, so it starts at the prior and converges on the
// observed p50 as evidence accumulates.
func TestBlendPullsTowardObservation(t *testing.T) {
	static := 10 * time.Millisecond
	observed := 40 * time.Millisecond
	d := NewDigest(64)
	if got := d.Blend(static, 16); got != static {
		t.Fatalf("empty blend = %v", got)
	}
	d.Record(observed)
	one := d.Blend(static, 16)
	if one <= static || one >= observed {
		t.Fatalf("1-obs blend %v outside (%v, %v)", one, static, observed)
	}
	for i := 0; i < 63; i++ {
		d.Record(observed)
	}
	many := d.Blend(static, 16)
	if many <= one {
		t.Fatalf("blend must move toward observation: %v then %v", one, many)
	}
	// 64 observations vs 16 pseudo-counts: (10*16 + 40*64)/80 = 34ms.
	if want := 34 * time.Millisecond; many != want {
		t.Fatalf("64-obs blend = %v, want %v", many, want)
	}
}

// TestLatchReset: releasing a latch on pool death is forgetting, not a
// hysteresis transition — the flip counter must not move, and the next
// arming pays the full AdoptEnterRatio again.
func TestLatchReset(t *testing.T) {
	var l Latch
	if !l.Above(30*time.Millisecond, 10*time.Millisecond) {
		t.Fatal("3x gap must arm the latch")
	}
	flips := l.Flips()
	l.Reset()
	if l.Flips() != flips {
		t.Fatalf("Reset counted a flip: %d -> %d", flips, l.Flips())
	}
	// 1.3x is above AdoptExitRatio (would have held an armed latch) but
	// below AdoptEnterRatio: after Reset it must NOT re-arm.
	if l.Above(13*time.Millisecond, 10*time.Millisecond) {
		t.Fatal("reset latch re-armed below the entry ratio")
	}
}
