// shard.go picks a staging shard for the calling goroutine without
// runtime internals: a sync.Pool of small shard-id tokens. Pool Get/Put
// hits the per-P private slot on the fast path, so goroutines running on
// the same P keep reusing the same token — per-P shard affinity with zero
// allocation at steady state — while a cold or stolen slot just mints the
// next id round-robin. Correctness never depends on the affinity: any
// shard works, affinity only keeps the shard locks uncontended.

package metrics

import (
	"sync"
	"sync/atomic"
)

var (
	shardSeq    atomic.Uint64
	shardTokens = sync.Pool{New: func() any {
		id := int(shardSeq.Add(1) - 1)
		return &id
	}}
)

// ShardIndex returns a shard index in [0, n) biased to the calling P. The
// digest staging rings and the serve engine's submit ingress share it so
// both layers get the same affinity behavior from one mechanism.
func ShardIndex(n int) int {
	if n <= 1 {
		return 0
	}
	tok := shardTokens.Get().(*int)
	id := *tok
	shardTokens.Put(tok)
	return id % n
}
