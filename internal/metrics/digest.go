// digest.go is the latency observatory's data structure: an online
// quantile digest safe for concurrent Record from serving-engine worker
// goroutines. Each digest combines a fixed-size ring of the most recent
// observations (windowed quantiles that react to drift — what adaptive
// scheduling estimates price with) and constant-memory P² streaming
// estimators (Jain & Chlamtac, CACM 1985) for the cumulative p50/p95/p99
// surfaced as gauges on /metrics. The Observatory keys digests per
// {benchmark, platform}, so the scheduler's live pricing and the telemetry
// both see per-pool service behavior rather than one blurred aggregate.
// The serving engine runs a second observatory over queue delays keyed
// {platform, class}, which the wait-keyed spillover/steal decisions read
// through the same Adopt latch.

package metrics

import (
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Digest tuning defaults shared by the serving engine and the
// discrete-event simulations.
const (
	// DefaultWindow is the sliding-window size of a digest, in
	// observations.
	DefaultWindow = 512
	// DefaultWarmup is the observation count below which a digest defers
	// to the static prior (the cold-start estimate).
	DefaultWarmup = 32
)

// Adoption hysteresis bands: a live estimate replaces the static prior
// only once it diverges beyond AdoptEnterRatio (in either direction), and
// drops back only when it re-converges within the tighter AdoptExitRatio —
// so pricing cannot flap when the observed latency hovers at a boundary.
const (
	AdoptEnterRatio = 1.5
	AdoptExitRatio  = 1.2
)

// streamQuantiles are the cumulative P² targets every digest maintains.
var streamQuantiles = [...]float64{0.50, 0.95, 0.99}

// Staging geometry: Record stages observations in per-shard fixed rings
// (contention-free for writers) that fold into the merged window and P²
// state only when a shard fills or a reader asks — readers pay the merge,
// writers never do.
const (
	// stageCap is one staging shard's capacity, in observations.
	stageCap = 16
	// maxStageShards bounds the per-digest shard count (shards default to
	// GOMAXPROCS, capped here so a digest's footprint stays small).
	maxStageShards = 8
)

// stageEntry is one staged observation with its global sequence number:
// the read-time merge folds entries in sequence order, so a deterministic
// (single-goroutine) Record stream folds exactly as the pre-sharding
// digest ingested it — quantiles, P² state, and adoption flips stay
// bit-identical — no matter which shard each observation landed on.
type stageEntry struct {
	seq uint64
	v   time.Duration
}

// digestShard is one staging ring. Writers touch only their shard's lock,
// which with per-P shard selection is effectively uncontended.
type digestShard struct {
	mu  sync.Mutex
	n   int
	buf [stageCap]stageEntry
}

// Digest is one {benchmark, platform} latency record: a sliding window of
// the last Window observations plus P² streaming estimators over the whole
// stream. Safe for concurrent use, and built for write-heavy use: Record
// appends to a per-P staging shard (no allocation, no shared lock), and
// the merged state — the window ring and the P² markers — is folded
// forward at read time under the digest lock. The sorted window view is
// lazier still: folds only mark it stale, and the next windowed read
// rebuilds it from the ring in one sort — so a write-heavy stretch pays
// O(1) per observation no matter how large the window.
type Digest struct {
	mu     sync.Mutex
	ring   []time.Duration // eviction order (circular)
	next   int
	sorted []time.Duration // the same window, kept sorted
	p2s    [len(streamQuantiles)]p2

	// total counts every Record ever made (staged included) — warmup
	// thresholds read it without touching any lock. It doubles as the
	// sequence source for the staging merge order.
	total atomic.Int64
	// shards are the staging rings.
	shards []digestShard

	// dirty marks the sorted view stale relative to the ring: folds only
	// rotate the ring, and the next windowed read re-sorts (see
	// ensureSortedLocked).
	dirty bool

	// live is the adoption latch (see Adopt); flips counts its toggles.
	live  bool
	flips int64
}

// NewDigest returns an empty digest over a window of the given size
// (DefaultWindow when non-positive).
func NewDigest(window int) *Digest {
	if window <= 0 {
		window = DefaultWindow
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > maxStageShards {
		shards = maxStageShards
	}
	if shards < 1 {
		shards = 1
	}
	d := &Digest{
		ring:   make([]time.Duration, 0, window),
		sorted: make([]time.Duration, 0, window),
		shards: make([]digestShard, shards),
	}
	for i, q := range streamQuantiles {
		d.p2s[i].init(q)
	}
	return d
}

// Record stages one observation: an atomic sequence fetch plus an
// uncontended shard append — no allocation, no shared lock. Negative
// durations (a clock anomaly upstream) clamp to zero so no quantile can
// ever go negative. When the caller's shard fills, Record folds the
// staged backlog forward (amortized: once per stageCap observations).
//
//dscslint:hotpath
func (d *Digest) Record(v time.Duration) {
	if v < 0 {
		v = 0
	}
	seq := uint64(d.total.Add(1))
	s := &d.shards[ShardIndex(len(d.shards))]
	for {
		s.mu.Lock()
		if s.n < stageCap {
			s.buf[s.n] = stageEntry{seq: seq, v: v}
			s.n++
			full := s.n == stageCap
			s.mu.Unlock()
			if full {
				d.mu.Lock()
				d.foldStagedLocked()
				d.mu.Unlock()
			}
			return
		}
		// The shard filled and its folder hasn't drained it yet (the fold
		// happens outside the shard lock). Fold it forward ourselves and
		// retry — the fold empties every shard, so this makes progress.
		s.mu.Unlock()
		d.mu.Lock()
		d.foldStagedLocked()
		d.mu.Unlock()
	}
}

// RecordBatch stages a run of observations exactly as consecutive Record
// calls would — same values, same order, same sequence numbers — but pays
// the sequence fetch, shard selection, and shard lock once per run instead
// of once per value. The serving engine records one dispatched batch's
// queue delays through this. Folds fire on the same shard-full edges as
// the one-at-a-time path.
//
//dscslint:hotpath
func (d *Digest) RecordBatch(vs []time.Duration) {
	if len(vs) == 0 {
		return
	}
	seq := uint64(d.total.Add(int64(len(vs)))) - uint64(len(vs)) + 1
	s := &d.shards[ShardIndex(len(d.shards))]
	i := 0
	for i < len(vs) {
		s.mu.Lock()
		for i < len(vs) && s.n < stageCap {
			v := vs[i]
			if v < 0 {
				v = 0
			}
			s.buf[s.n] = stageEntry{seq: seq, v: v}
			s.n++
			seq++
			i++
		}
		full := s.n == stageCap
		s.mu.Unlock()
		if full {
			d.mu.Lock()
			d.foldStagedLocked()
			d.mu.Unlock()
		}
	}
}

// foldStagedLocked drains every staging shard and folds the entries into
// the merged window and P² state in sequence order. Callers hold d.mu.
func (d *Digest) foldStagedLocked() {
	var tmp [maxStageShards * stageCap]stageEntry
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += copy(tmp[n:], s.buf[:s.n])
		s.n = 0
		s.mu.Unlock()
	}
	staged := tmp[:n]
	// Insertion sort by sequence: single-writer streams arrive already
	// ordered (one pass), and the concurrent case is at most a few
	// stage-rings' worth of nearly sorted entries.
	for i := 1; i < len(staged); i++ {
		for j := i; j > 0 && staged[j].seq < staged[j-1].seq; j-- {
			staged[j], staged[j-1] = staged[j-1], staged[j]
		}
	}
	// The fold pays only what must happen in stream order: the ring
	// rotation and the P² marker updates, both O(1) per entry. The sorted
	// window view goes stale instead of being repaired per entry — the
	// next windowed read rebuilds it from the ring in one sort
	// (ensureSortedLocked). Same multiset either way, so quantiles are
	// bit-identical; the write path just stops paying O(window) sorted
	// maintenance for reads nobody has asked for yet.
	for _, e := range staged {
		if len(d.ring) < cap(d.ring) {
			d.ring = append(d.ring, e.v)
		} else {
			d.ring[d.next] = e.v
			d.next = (d.next + 1) % len(d.ring)
		}
		for i := range d.p2s {
			d.p2s[i].observe(float64(e.v))
		}
	}
	if len(staged) > 0 {
		d.dirty = true
	}
}

// ensureSortedLocked rebuilds the sorted window view from the ring if
// folds have outdated it. Callers hold d.mu and have already folded the
// staging shards forward.
func (d *Digest) ensureSortedLocked() {
	if !d.dirty {
		return
	}
	d.sorted = append(d.sorted[:0], d.ring...)
	slices.Sort(d.sorted)
	d.dirty = false
}

// Count reports the total observations ever recorded (not capped at the
// window) — the warmup thresholds compare against it. Lock-free: the hot
// warmth checks on the submit path never contend with writers.
func (d *Digest) Count() int64 {
	return d.total.Load()
}

// quantileLocked is Quantile under d.mu: the p-quantile of the window by
// the same linear interpolation as Sample.Percentile, so the digest and
// the exact sample agree on identical inputs. Out-of-range or NaN p clamps
// into [0, 1]; an empty digest reports 0.
func (d *Digest) quantileLocked(p float64) time.Duration {
	d.ensureSortedLocked()
	vs := d.sorted
	if len(vs) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		return vs[0]
	}
	if p >= 1 {
		return vs[len(vs)-1]
	}
	pos := p * float64(len(vs)-1)
	lo := int(pos)
	hi := lo + 1
	frac := pos - float64(lo)
	if hi >= len(vs) || frac == 0 {
		return vs[lo]
	}
	return vs[lo] + time.Duration(frac*float64(vs[hi]-vs[lo]))
}

// Quantile returns the p-quantile over the sliding window — the reactive
// estimate adaptive scheduling prices with. Never negative, never NaN; 0
// only when nothing was recorded. The read folds any staged observations
// forward first (readers pay the merge, writers don't).
func (d *Digest) Quantile(p float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	return d.quantileLocked(p)
}

// QuantilesInto fills out[i] with the ps[i]-quantile over the sliding
// window under a single staged-merge fold — value-identical to calling
// Quantile once per p, minus the repeated lock/fold round-trips. The
// per-batch gauge refresh on the serving hot path reads through this.
// out and ps must have equal length.
func (d *Digest) QuantilesInto(ps []float64, out []time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	for i, p := range ps {
		out[i] = d.quantileLocked(p)
	}
}

// StreamQuantile returns the constant-memory P² estimate over the whole
// stream for the nearest maintained target (p50/p95/p99) — the cheap
// read backing the /metrics gauges.
func (d *Digest) StreamQuantile(p float64) time.Duration {
	best := 0
	for i, q := range streamQuantiles {
		if math.Abs(q-p) < math.Abs(streamQuantiles[best]-p) {
			best = i
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	return clampP2(d.p2s[best].quantile())
}

// StreamQuantilesInto fills out[i] with the P² estimate for the
// maintained target nearest ps[i], all under a single staged-merge fold —
// value-identical to calling StreamQuantile once per p. out and ps must
// have equal length.
func (d *Digest) StreamQuantilesInto(ps []float64, out []time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	for i, p := range ps {
		best := 0
		for j, q := range streamQuantiles {
			if math.Abs(q-p) < math.Abs(streamQuantiles[best]-p) {
				best = j
			}
		}
		out[i] = clampP2(d.p2s[best].quantile())
	}
}

// clampP2 converts a raw P² estimate to a duration: never negative, never
// NaN, and saturating at the maximum duration (float64(MaxInt64) rounds up
// past MaxInt64; an unguarded conversion would wrap negative).
func clampP2(v float64) time.Duration {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if v >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v)
}

// adoptStep is the hysteresis decision shared by Digest.Adopt and Latch:
// given the current latch state, the live estimate, and the static prior,
// it returns the estimate to use, whether it is live, and whether the
// latch state flipped. The caller has already handled warmup and a
// degenerate (non-positive) live value; a non-positive static prior
// adopts any live estimate outright.
func adoptStep(latched bool, live, static time.Duration) (est time.Duration, adopted, flipped bool) {
	if static <= 0 {
		return live, true, !latched
	}
	ratio := float64(live) / float64(static)
	if latched {
		if ratio < AdoptExitRatio && ratio > 1/AdoptExitRatio {
			return static, false, true
		}
		return live, true, false
	}
	if ratio >= AdoptEnterRatio || ratio <= 1/AdoptEnterRatio {
		return live, true, true
	}
	return static, false, false
}

// Adopt is the static-vs-live switching decision with warmup and
// hysteresis: below warmup observations (or while the live q-quantile is
// degenerate, i.e. non-positive) the static prior holds. Once warmed, the
// live estimate is adopted when it diverges from the prior beyond
// AdoptEnterRatio and dropped again only when it re-converges within
// AdoptExitRatio, so the decision latches instead of flapping per request.
// A non-positive static prior adopts any warmed live estimate outright.
// It returns the estimate pricing should use and whether it is live.
//
// The latch lives in the digest, which assumes one stable prior per
// digest (the service-estimate regime). A caller comparing one digest
// against several different peers must keep a Latch per pair instead —
// otherwise the pairwise decisions would share state and depend on
// evaluation order.
func (d *Digest) Adopt(static time.Duration, q float64, warmup int64) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	live := d.quantileLocked(q)
	if d.total.Load() < warmup || live <= 0 {
		return static, false
	}
	est, adopted, flipped := adoptStep(d.live, live, static)
	if flipped {
		d.live = adopted
		d.flips++
	}
	return est, adopted
}

// Latch is a standalone one-sided adoption latch over the same hysteresis
// bands as Digest.Adopt, for decisions that compare one digest against
// multiple peers (the wait-gap balance triggers): each (donor, peer) pair
// owns its own Latch, so one pair's divergence cannot arm or release
// another's. Not safe for concurrent use; callers serialize access.
type Latch struct {
	live  bool
	flips int64
}

// Above evaluates the one-sided gap trigger: it latches when live
// diverges above static beyond AdoptEnterRatio and releases once live
// falls back within AdoptExitRatio of static — or anywhere below it.
// Divergence *below* static never arms it (unlike Digest.Adopt's
// two-sided bands, where a latch armed by the donor being the idle side
// would silently lower the entry threshold for a later upward swing from
// AdoptEnterRatio to AdoptExitRatio). A non-positive live releases; a
// non-positive static adopts any positive live outright — diverging
// above "nothing to wait for" at any ratio. Warmup is the caller's
// concern.
func (l *Latch) Above(live, static time.Duration) bool {
	on := l.live
	switch {
	case live <= 0:
		on = false
	case static <= 0:
		on = true
	default:
		ratio := float64(live) / float64(static)
		if l.live {
			on = ratio >= AdoptExitRatio
		} else {
			on = ratio >= AdoptEnterRatio
		}
	}
	if on != l.live {
		l.live = on
		l.flips++
	}
	return on
}

// Flips counts the latch's state toggles — the no-flapping tests pin it.
func (l *Latch) Flips() int64 { return l.flips }

// Reset releases the latch without counting a flip. Pool-death
// invalidation uses it: a latch armed by a now-dead pool's wait history
// prices a world that no longer exists, and releasing it is forgetting,
// not a hysteresis transition the flapping tests should see.
func (l *Latch) Reset() { l.live = false }

// Flips counts adoption-latch toggles — the no-flapping tests pin it.
func (d *Digest) Flips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flips
}

// Blend mixes the static prior with the observed windowed p50, weighting
// the prior as warmup pseudo-observations against the (window-capped)
// observation count — a smooth pull from cold-start pricing toward
// measurement, with no threshold to flap across. A degenerate observed p50
// keeps the prior. The result is never negative: the weighted mean is
// computed in float64 (durations near MaxInt64 would wrap an int64
// product) and saturates at the maximum duration.
func (d *Digest) Blend(static time.Duration, warmup int64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.foldStagedLocked()
	n := d.total.Load()
	if w := int64(cap(d.ring)); n > w {
		n = w
	}
	if n == 0 || warmup <= 0 {
		return static
	}
	p50 := d.quantileLocked(0.5)
	if p50 <= 0 {
		return static
	}
	if static <= 0 {
		return p50
	}
	blend := (float64(static)*float64(warmup) + float64(p50)*float64(n)) / float64(warmup+n)
	if blend >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(blend)
}

// p2 is one P² streaming quantile estimator: five markers tracking the
// running min, q/2, q, (1+q)/2, and max quantiles with parabolic height
// adjustment — O(1) per observation, O(1) memory, no stored samples.
type p2 struct {
	q    float64
	n    int
	pos  [5]float64 // actual marker positions (1-based observation ranks)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increment per observation
	h    [5]float64 // marker heights (the estimates)
}

func (e *p2) init(q float64) {
	e.q = q
	e.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

func (e *p2) observe(x float64) {
	if e.n < 5 {
		e.h[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.h[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.q, 1 + 4*e.q, 3 + 2*e.q, 5}
		}
		return
	}
	// Locate the marker cell the observation falls into, stretching the
	// extremes when it lands outside them.
	var k int
	switch {
	case x < e.h[0]:
		e.h[0] = x
		k = 0
	case x >= e.h[4]:
		e.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}
	e.n++
	// Nudge interior markers toward their desired positions, adjusting
	// heights parabolically (linearly when the parabola overshoots a
	// neighbor).
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if hp := e.parabolic(i, s); e.h[i-1] < hp && hp < e.h[i+1] {
				e.h[i] = hp
			} else {
				e.h[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *p2) parabolic(i int, s float64) float64 {
	return e.h[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.h[i+1]-e.h[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.h[i]-e.h[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.h[i] + s*(e.h[j]-e.h[i])/(e.pos[j]-e.pos[i])
}

// quantile reads the current estimate; below five observations it falls
// back to the exact quantile over what was stored.
func (e *p2) quantile() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		var tmp [5]float64
		copy(tmp[:], e.h[:e.n])
		vs := tmp[:e.n]
		sort.Float64s(vs)
		pos := e.q * float64(len(vs)-1)
		lo := int(pos)
		if lo >= len(vs)-1 {
			return vs[len(vs)-1]
		}
		return vs[lo] + (pos-float64(lo))*(vs[lo+1]-vs[lo])
	}
	return e.h[2]
}

// obsKey addresses one digest in the observatory.
type obsKey struct{ bench, platform string }

// Observatory holds the latency digests of a serving run, keyed per
// {benchmark, platform}. Safe for concurrent use; lookups on the record
// path are a lock-free sync.Map read.
type Observatory struct {
	window int
	warmup int64
	m      sync.Map // obsKey -> *Digest
}

// NewObservatory builds an observatory whose digests use the given window
// and warmup (defaults DefaultWindow/DefaultWarmup when non-positive).
func NewObservatory(window, warmup int) *Observatory {
	if window <= 0 {
		window = DefaultWindow
	}
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	return &Observatory{window: window, warmup: int64(warmup)}
}

// Warmup reports the observation count below which digests defer to the
// static prior.
func (o *Observatory) Warmup() int64 { return o.warmup }

// Record folds one completion latency into the keyed digest (created on
// first use) and returns the digest so the caller can read gauges off it.
//
//dscslint:hotpath
func (o *Observatory) Record(bench, platform string, v time.Duration) *Digest {
	k := obsKey{bench, platform}
	if d, ok := o.m.Load(k); ok {
		dg := d.(*Digest)
		dg.Record(v)
		return dg
	}
	d, _ := o.m.LoadOrStore(k, NewDigest(o.window))
	dg := d.(*Digest)
	dg.Record(v)
	return dg
}

// RecordBatch folds a run of observations into the keyed digest (created
// on first use) under one key lookup and one staging pass — see
// Digest.RecordBatch. A nil digest comes back only for an empty run.
//
//dscslint:hotpath
func (o *Observatory) RecordBatch(bench, platform string, vs []time.Duration) *Digest {
	if len(vs) == 0 {
		return o.Digest(bench, platform)
	}
	k := obsKey{bench, platform}
	d, ok := o.m.Load(k)
	if !ok {
		d, _ = o.m.LoadOrStore(k, NewDigest(o.window))
	}
	dg := d.(*Digest)
	dg.RecordBatch(vs)
	return dg
}

// Digest returns the keyed digest, or nil when nothing was recorded for it.
func (o *Observatory) Digest(bench, platform string) *Digest {
	if d, ok := o.m.Load(obsKey{bench, platform}); ok {
		return d.(*Digest)
	}
	return nil
}

// ServiceQuantile prices one scheduling decision: the live q-quantile for
// the key once its digest is warmed and diverged (Digest.Adopt — warmup,
// hysteresis), the static prior otherwise. The result is positive whenever
// static is.
func (o *Observatory) ServiceQuantile(bench, platform string, static time.Duration, q float64) time.Duration {
	dg := o.Digest(bench, platform)
	if dg == nil {
		return static
	}
	est, _ := dg.Adopt(static, q, o.warmup)
	return est
}

// Blend mixes the static prior with the key's observed p50 (see
// Digest.Blend); the prior passes through untouched when nothing was
// recorded.
func (o *Observatory) Blend(bench, platform string, static time.Duration) time.Duration {
	dg := o.Digest(bench, platform)
	if dg == nil {
		return static
	}
	return dg.Blend(static, o.warmup)
}

// Forget drops every digest of one benchmark across all platforms — the
// redeploy invalidation: a changed chain must not inherit the old chain's
// latency history any more than its static pricing.
func (o *Observatory) Forget(bench string) {
	o.m.Range(func(k, _ interface{}) bool {
		if k.(obsKey).bench == bench {
			o.m.Delete(k)
		}
		return true
	})
}
