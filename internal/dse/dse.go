// Package dse implements the paper's design-space exploration (Section 4.2):
// enumerating more than 650 DSA configurations (PE array dimensions from
// 4x4 to 1024x1024, buffer capacities up to 32 MB, and three memory
// technologies), evaluating each on the benchmark suite with the
// cycle-level simulator, and computing the power-performance and
// area-performance Pareto frontiers with the cubic fits of Figures 7 and 8.
package dse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dscs/internal/compiler"
	"dscs/internal/dsa"
	"dscs/internal/metrics"
	"dscs/internal/model"
	"dscs/internal/power"
	"dscs/internal/units"
)

// Point is one evaluated design.
type Point struct {
	Config dsa.Config

	// Throughput is the average frames/requests per second across the
	// suite at batch 1 (the paper's performance metric).
	Throughput float64
	// DynPower is the average dynamic power while running, on the DSE's
	// 45 nm baseline node (Figure 7's y-axis).
	DynPower units.Power
	// Area is the 45 nm die area (Figure 8's y-axis).
	Area units.Area
	// Feasible marks configs within the drive power budget after 14 nm
	// scaling.
	Feasible bool
}

// Label renders the paper's design-point naming (e.g. "Dim128-4MB").
func (p Point) Label() string {
	return fmt.Sprintf("Dim%d-%v-%v", p.Config.Rows, p.Config.TotalBuf(), p.Config.DRAM)
}

// Space describes the search space.
type Space struct {
	// Dims are the square PE-array dimensions.
	Dims []int
	// BufferSteps are the per-dimension buffer capacities to try.
	BufferSteps []units.Bytes
	// Memories are the DRAM technologies.
	Memories []power.DRAMKind
	// MaxBuffer caps total buffer capacity (32 MB in the paper).
	MaxBuffer units.Bytes
	// Budget is the drive's power envelope for feasibility (25 W).
	Budget units.Power
}

// PaperSpace returns the search space of Section 4.2: array dims 4..1024 in
// powers of two, buffers proportional to the array capped at 32 MB, and
// DDR4/DDR5/HBM2 — more than 650 configurations.
func PaperSpace() Space {
	var bufs []units.Bytes
	for b := 128 * units.KiB; b <= 32*units.MiB; b *= 2 {
		// Power-of-two steps plus quarter-points between them.
		bufs = append(bufs, b, b+b/4, b+b/2, b+3*b/4)
	}
	return Space{
		Dims:        []int{4, 8, 16, 32, 64, 128, 256, 512, 1024},
		BufferSteps: bufs,
		Memories:    []power.DRAMKind{power.DDR4, power.DDR5, power.HBM2},
		MaxBuffer:   32 * units.MiB,
		Budget:      25,
	}
}

// Enumerate lists every configuration in the space.
func (s Space) Enumerate() []dsa.Config {
	var out []dsa.Config
	for _, dim := range s.Dims {
		for _, buf := range s.BufferSteps {
			if buf > s.MaxBuffer {
				continue
			}
			// Buffers must at least hold a double-buffered weight tile.
			if int64(buf)/2 < 2*int64(dim)*int64(dim) {
				continue
			}
			for _, mem := range s.Memories {
				cfg := dsa.Config{
					Name: "dse", Rows: dim, Cols: dim, VPULanes: dim,
					Freq: units.GHz, DRAM: mem, DoubleBuffered: true,
				}.WithBuffers(buf)
				out = append(out, cfg)
			}
		}
	}
	return out
}

// SuiteModels returns the evaluation models used to score design points.
// The DSE scores at batch 1, the serverless operating point.
func SuiteModels() []*model.Graph {
	return []*model.Graph{
		model.LogisticRegressionCredit(4096),
		model.ResNet50(),
		model.SSDMobileNetPPE(),
		model.BERTBaseChatbot(),
		model.InceptionV3Clinical(),
		model.ResNet18Moderation(),
		model.ViTRemoteSensing(),
	}
}

// Evaluate scores one configuration across the models: throughput is the
// harmonic composition (requests per second of the average latency), power
// is energy over busy time at 45 nm.
func Evaluate(cfg dsa.Config, models []*model.Graph, node power.TechNode, budget units.Power) (Point, error) {
	sim, err := dsa.New(cfg)
	if err != nil {
		return Point{}, err
	}
	var totalLatency float64
	var totalEnergy units.Energy
	for _, g := range models {
		prog, err := compiler.Compile(g, 1, cfg, compiler.Options{})
		if err != nil {
			return Point{}, err
		}
		st, err := sim.Run(prog)
		if err != nil {
			return Point{}, err
		}
		lat := st.Latency(cfg.Freq)
		totalLatency += lat.Seconds()
		e, _ := sim.Energy(st, node)
		totalEnergy += e
	}
	avgLatency := totalLatency / float64(len(models))
	p := Point{
		Config:     cfg,
		Throughput: 1 / avgLatency,
		DynPower:   units.Power(float64(totalEnergy) / totalLatency),
		Area:       power.DieArea(node, cfg.PEs(), cfg.TotalBuf()),
	}
	peak14 := power.PeakPower(power.Node14nm, cfg.PEs(), cfg.TotalBuf(), cfg.Freq, cfg.DRAM)
	p.Feasible = peak14+9 <= budget // flash subsystem share per ssd.SmartSSDClass
	return p, nil
}

// Explore evaluates the whole space in parallel and returns the points.
func Explore(s Space, node power.TechNode) ([]Point, error) {
	configs := s.Enumerate()
	models := SuiteModels()
	points := make([]Point, len(configs))
	errs := make([]error, len(configs))

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				points[i], errs[i] = Evaluate(configs[i], models, node, s.Budget)
			}
		}()
	}
	for i := range configs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// ParetoPower returns the power-performance frontier: points where no other
// point has both higher throughput and lower power.
func ParetoPower(points []Point) []Point {
	return pareto(points, func(p Point) (x, y float64) {
		return p.Throughput, float64(p.DynPower)
	})
}

// ParetoArea returns the area-performance frontier.
func ParetoArea(points []Point) []Point {
	return pareto(points, func(p Point) (x, y float64) {
		return p.Throughput, float64(p.Area)
	})
}

// pareto extracts the maximal-x / minimal-y frontier, sorted by x.
func pareto(points []Point, axes func(Point) (float64, float64)) []Point {
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		xi, yi := axes(sorted[i])
		xj, yj := axes(sorted[j])
		if xi != xj {
			return xi > xj
		}
		return yi < yj
	})
	var out []Point
	best := -1.0
	for _, p := range sorted {
		_, y := axes(p)
		if best < 0 || y < best {
			out = append(out, p)
			best = y
		}
	}
	// Return in ascending throughput order like the figures.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FitCubic fits the frontier's y = f(throughput) cubic, as annotated in
// Figures 7 and 8.
func FitCubic(frontier []Point, axes func(Point) (float64, float64)) ([]float64, error) {
	if len(frontier) < 4 {
		return nil, fmt.Errorf("dse: frontier too small for a cubic fit (%d points)", len(frontier))
	}
	xs := make([]float64, len(frontier))
	ys := make([]float64, len(frontier))
	for i, p := range frontier {
		xs[i], ys[i] = axes(p)
	}
	return metrics.PolyFit(xs, ys, 3)
}

// PowerAxes are the Figure 7 axes.
func PowerAxes(p Point) (float64, float64) { return p.Throughput, float64(p.DynPower) }

// AreaAxes are the Figure 8 axes.
func AreaAxes(p Point) (float64, float64) { return p.Throughput, float64(p.Area) }

// Optimal returns the paper's selection rule (Section 4.2): the highest-
// throughput design that is feasible within the power budget AND lies on
// both the power-performance and area-performance Pareto frontiers. The
// paper's answer is the 128x128 array with 4 MB of buffers on DDR5.
func Optimal(points []Point) (Point, bool) {
	onPower := map[string]bool{}
	for _, p := range ParetoPower(points) {
		onPower[p.Label()] = true
	}
	onArea := map[string]bool{}
	for _, p := range ParetoArea(points) {
		onArea[p.Label()] = true
	}
	var best Point
	found := false
	for _, p := range points {
		if !p.Feasible || !onPower[p.Label()] || !onArea[p.Label()] {
			continue
		}
		if !found || p.Throughput > best.Throughput ||
			(p.Throughput == best.Throughput && p.Area < best.Area) {
			best = p
			found = true
		}
	}
	if found {
		return best, true
	}
	// Degenerate spaces (tests with few points) fall back to the feasible
	// throughput maximum.
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if !found || p.Throughput > best.Throughput {
			best = p
			found = true
		}
	}
	return best, found
}
