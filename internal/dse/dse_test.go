package dse

import (
	"testing"

	"dscs/internal/dsa"
	"dscs/internal/power"
	"dscs/internal/units"
)

func TestPaperSpaceSize(t *testing.T) {
	// The paper examines more than 650 accelerator configurations.
	configs := PaperSpace().Enumerate()
	if len(configs) < 650 {
		t.Fatalf("search space has %d configs, paper requires >650", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %v invalid: %v", c, err)
		}
		if c.TotalBuf() > 32*units.MiB {
			t.Fatalf("config %v exceeds the 32MB buffer cap", c)
		}
		key := c.String()
		if seen[key] {
			t.Fatalf("duplicate config %s", key)
		}
		seen[key] = true
	}
}

func TestEvaluateProducesSanePoint(t *testing.T) {
	p, err := Evaluate(dsa.PaperOptimal(), SuiteModels(), power.Node45nm, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 || p.DynPower <= 0 || p.Area <= 0 {
		t.Fatalf("degenerate point: %+v", p)
	}
	// The selected design is feasible at 14 nm.
	if !p.Feasible {
		t.Error("the paper's chosen design must be feasible")
	}
	// Hundreds to thousands of requests/s on the suite average (Figure 7's
	// x-axis reaches ~2500 fps).
	if p.Throughput < 100 || p.Throughput > 10000 {
		t.Errorf("throughput = %.0f, want 100-10000", p.Throughput)
	}
}

func TestParetoProperties(t *testing.T) {
	space := Space{
		Dims:        []int{8, 32, 128},
		BufferSteps: []units.Bytes{512 * units.KiB, 4 * units.MiB},
		Memories:    []power.DRAMKind{power.DDR4, power.DDR5},
		MaxBuffer:   32 * units.MiB,
		Budget:      25,
	}
	points, err := Explore(space, power.Node45nm)
	if err != nil {
		t.Fatal(err)
	}
	frontier := ParetoPower(points)
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// Frontier is sorted by throughput and strictly improving in power.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Throughput <= frontier[i-1].Throughput {
			t.Fatal("frontier not ascending in throughput")
		}
		if frontier[i].DynPower <= frontier[i-1].DynPower {
			t.Fatal("frontier should trade power for throughput")
		}
	}
	// No point dominates a frontier point.
	for _, f := range frontier {
		for _, p := range points {
			if p.Throughput > f.Throughput && p.DynPower < f.DynPower {
				t.Fatalf("%s dominates frontier point %s", p.Label(), f.Label())
			}
		}
	}
	area := ParetoArea(points)
	for i := 1; i < len(area); i++ {
		if area[i].Area <= area[i-1].Area {
			t.Fatal("area frontier should trade area for throughput")
		}
	}
}

func TestBigArraysInfeasible(t *testing.T) {
	cfg := dsa.Config{
		Name: "big", Rows: 1024, Cols: 1024, VPULanes: 1024,
		Freq: units.GHz, DRAM: power.DDR5, DoubleBuffered: true,
	}.WithBuffers(32 * units.MiB)
	p, err := Evaluate(cfg, SuiteModels(), power.Node45nm, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Error("a 1024x1024 array cannot fit the 25W drive budget")
	}
}

func TestFitCubicOnFrontier(t *testing.T) {
	space := Space{
		Dims:        []int{4, 8, 16, 32, 64, 128},
		BufferSteps: []units.Bytes{256 * units.KiB, 1 * units.MiB, 4 * units.MiB},
		Memories:    []power.DRAMKind{power.DDR4, power.DDR5},
		MaxBuffer:   32 * units.MiB,
		Budget:      25,
	}
	points, err := Explore(space, power.Node45nm)
	if err != nil {
		t.Fatal(err)
	}
	frontier := ParetoPower(points)
	if len(frontier) < 4 {
		t.Skipf("frontier too small for fit: %d points", len(frontier))
	}
	coeffs, err := FitCubic(frontier, PowerAxes)
	if err != nil {
		t.Fatal(err)
	}
	if len(coeffs) != 4 {
		t.Fatalf("cubic fit has %d coefficients", len(coeffs))
	}
}

func TestOptimal(t *testing.T) {
	points := []Point{
		{Config: dsa.Config{Rows: 64, Cols: 64}, Throughput: 500, Area: 50, Feasible: true},
		{Config: dsa.Config{Rows: 128, Cols: 128}, Throughput: 900, Area: 100, Feasible: true},
		{Config: dsa.Config{Rows: 1024, Cols: 1024}, Throughput: 700, Area: 5000, Feasible: false},
	}
	best, ok := Optimal(points)
	if !ok || best.Config.Rows != 128 {
		t.Fatalf("optimal = %+v, want the feasible 128x128", best)
	}
	if _, ok := Optimal(nil); ok {
		t.Error("no points should yield no optimum")
	}
}
