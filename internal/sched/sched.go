// sched.go implements the original serverless scheduler of Section 5.3 —
// a centralized FCFS queue over a pool of run-to-completion instances —
// and the Prometheus-style telemetry registry used for busy tracking,
// fail-over decisions, and the at-scale measurements.

package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one metric's storage: a float64 carried as atomic bits, so every
// Inc/Set on the serving hot path is a handful of atomic instructions with
// no lock and no allocation. Counters add via a CAS loop (float addition
// is not a single atomic op); gauges are a plain atomic store.
type cell struct{ bits atomic.Uint64 }

func (c *cell) add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *cell) set(v float64) { c.bits.Store(math.Float64bits(v)) }
func (c *cell) load() float64 { return math.Float64frombits(c.bits.Load()) }

// Telemetry is a minimal Prometheus-style metric registry. Writes are
// lock-free: names resolve through a sync.Map to atomic cells, and callers
// on a hot path can pre-resolve a name once into a CounterHandle or
// GaugeHandle so each update is a single atomic add/store with no map
// traffic at all.
type Telemetry struct {
	counters sync.Map // name -> *cell
	gauges   sync.Map // name -> *cell
}

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry {
	return &Telemetry{}
}

// counterCell resolves (or creates) a counter's cell.
func (t *Telemetry) counterCell(name string) *cell {
	if c, ok := t.counters.Load(name); ok {
		return c.(*cell)
	}
	c, _ := t.counters.LoadOrStore(name, new(cell))
	return c.(*cell)
}

// gaugeCell resolves (or creates) a gauge's cell.
func (t *Telemetry) gaugeCell(name string) *cell {
	if c, ok := t.gauges.Load(name); ok {
		return c.(*cell)
	}
	c, _ := t.gauges.LoadOrStore(name, new(cell))
	return c.(*cell)
}

// Inc adds delta to a counter.
func (t *Telemetry) Inc(name string, delta float64) {
	t.counterCell(name).add(delta)
}

// Set records a gauge value.
func (t *Telemetry) Set(name string, v float64) {
	t.gaugeCell(name).set(v)
}

// SetDuration records a gauge in milliseconds — the unit the latency
// gauges (serve_latency_p50/p95/p99 and friends) share with the paper's
// figures.
func (t *Telemetry) SetDuration(name string, d time.Duration) {
	t.Set(name, float64(d)/float64(time.Millisecond))
}

// Unset removes a gauge from the registry — invalidation, not zeroing:
// a dropped series disappears from /metrics instead of reporting a stale
// or misleading zero. A handle resolved before the Unset keeps writing to
// the orphaned cell; re-resolve after invalidating.
func (t *Telemetry) Unset(name string) {
	t.gauges.Delete(name)
}

// Counter reads a counter.
func (t *Telemetry) Counter(name string) float64 {
	if c, ok := t.counters.Load(name); ok {
		return c.(*cell).load()
	}
	return 0
}

// Gauge reads a gauge.
func (t *Telemetry) Gauge(name string) float64 {
	if c, ok := t.gauges.Load(name); ok {
		return c.(*cell).load()
	}
	return 0
}

// CounterHandle pre-resolves a counter for hot-path use: the name lookup
// happens once, and every Inc after that is one atomic CAS add. The zero
// handle is a valid no-op (harness code builds bare pools without a
// registry).
type CounterHandle struct{ c *cell }

// Inc adds delta to the counter.
func (h CounterHandle) Inc(delta float64) {
	if h.c != nil {
		h.c.add(delta)
	}
}

// Value reads the counter.
func (h CounterHandle) Value() float64 {
	if h.c == nil {
		return 0
	}
	return h.c.load()
}

// CounterHandle resolves (or registers) a counter once; the returned
// handle updates it without further map lookups.
func (t *Telemetry) CounterHandle(name string) CounterHandle {
	return CounterHandle{c: t.counterCell(name)}
}

// GaugeHandle pre-resolves a gauge for hot-path use: the name lookup
// happens once, and every Set after that is one atomic store. The zero
// handle is a valid no-op.
type GaugeHandle struct{ c *cell }

// Set records the gauge value.
func (h GaugeHandle) Set(v float64) {
	if h.c != nil {
		h.c.set(v)
	}
}

// SetDuration records the gauge in milliseconds (see Telemetry.SetDuration).
func (h GaugeHandle) SetDuration(d time.Duration) {
	if h.c != nil {
		h.c.set(float64(d) / float64(time.Millisecond))
	}
}

// Value reads the gauge.
func (h GaugeHandle) Value() float64 {
	if h.c == nil {
		return 0
	}
	return h.c.load()
}

// GaugeHandle resolves (or registers) a gauge once; the returned handle
// updates it without further map lookups.
func (t *Telemetry) GaugeHandle(name string) GaugeHandle {
	return GaugeHandle{c: t.gaugeCell(name)}
}

// Render dumps the registry in exposition-format-like lines, sorted.
func (t *Telemetry) Render() string {
	var names []string
	t.counters.Range(func(k, v any) bool {
		names = append(names, fmt.Sprintf("%s %g", k.(string), v.(*cell).load()))
		return true
	})
	t.gauges.Range(func(k, v any) bool {
		names = append(names, fmt.Sprintf("%s %g", k.(string), v.(*cell).load()))
		return true
	})
	sort.Strings(names)
	out := ""
	for _, l := range names {
		out += l + "\n"
	}
	return out
}

// Task is one queued unit of work.
type Task struct {
	ID      int
	Arrived time.Duration
	Payload string // benchmark slug
}

// FCFS is the paper's scheduling policy: first-come-first-serve over a
// bounded queue; instances are marked busy until completion (no
// preemption).
type FCFS struct {
	queue    []Task
	depth    int
	free     int // idle instance count
	total    int
	tel      *Telemetry
	dropped  int
	enqueued int
}

// NewFCFS returns a scheduler over n instances with the given queue bound.
func NewFCFS(instances, queueDepth int, tel *Telemetry) (*FCFS, error) {
	if instances <= 0 || queueDepth <= 0 {
		return nil, fmt.Errorf("sched: non-positive pool or queue")
	}
	if tel == nil {
		tel = NewTelemetry()
	}
	return &FCFS{depth: queueDepth, free: instances, total: instances, tel: tel}, nil
}

// Telemetry returns the scheduler's registry.
func (s *FCFS) Telemetry() *Telemetry { return s.tel }

// QueueLen reports the number of waiting tasks.
func (s *FCFS) QueueLen() int { return len(s.queue) }

// Busy reports the number of occupied instances.
func (s *FCFS) Busy() int { return s.total - s.free }

// Dropped reports tasks rejected on a full queue.
func (s *FCFS) Dropped() int { return s.dropped }

// Submit enqueues a task; it reports false (and drops) when the queue is
// at its bound and no instance is free.
func (s *FCFS) Submit(t Task) bool {
	if s.free == 0 && len(s.queue) >= s.depth {
		s.dropped++
		s.tel.Inc("sched_dropped_total", 1)
		return false
	}
	s.queue = append(s.queue, t)
	s.enqueued++
	s.tel.Inc("sched_submitted_total", 1)
	s.tel.Set("sched_queue_depth", float64(len(s.queue)))
	return true
}

// Dispatch hands the head task to a free instance, if both exist.
func (s *FCFS) Dispatch() (Task, bool) {
	if s.free == 0 || len(s.queue) == 0 {
		return Task{}, false
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	s.free--
	s.tel.Set("sched_queue_depth", float64(len(s.queue)))
	s.tel.Set("sched_busy_instances", float64(s.total-s.free))
	return t, true
}

// Complete releases an instance after run-to-completion.
func (s *FCFS) Complete() {
	if s.free < s.total {
		s.free++
	}
	s.tel.Inc("sched_completed_total", 1)
	s.tel.Set("sched_busy_instances", float64(s.total-s.free))
}

// Conservation checks the bookkeeping invariant: everything submitted is
// either waiting, running, completed, or dropped.
func (s *FCFS) Conservation() error {
	completed := int(s.tel.Counter("sched_completed_total"))
	accounted := len(s.queue) + s.Busy() + completed
	if s.enqueued != accounted {
		return fmt.Errorf("sched: conservation violated: enqueued %d != queued %d + busy %d + done %d",
			s.enqueued, len(s.queue), s.Busy(), completed)
	}
	return nil
}
