// sched.go implements the original serverless scheduler of Section 5.3 —
// a centralized FCFS queue over a pool of run-to-completion instances —
// and the Prometheus-style telemetry registry used for busy tracking,
// fail-over decisions, and the at-scale measurements.

package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Telemetry is a minimal Prometheus-style metric registry.
type Telemetry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
}

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry {
	return &Telemetry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
}

// Inc adds delta to a counter.
func (t *Telemetry) Inc(name string, delta float64) {
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Set records a gauge value.
func (t *Telemetry) Set(name string, v float64) {
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// SetDuration records a gauge in milliseconds — the unit the latency
// gauges (serve_latency_p50/p95/p99 and friends) share with the paper's
// figures.
func (t *Telemetry) SetDuration(name string, d time.Duration) {
	t.Set(name, float64(d)/float64(time.Millisecond))
}

// Unset removes a gauge from the registry — invalidation, not zeroing:
// a dropped series disappears from /metrics instead of reporting a stale
// or misleading zero.
func (t *Telemetry) Unset(name string) {
	t.mu.Lock()
	delete(t.gauges, name)
	t.mu.Unlock()
}

// Counter reads a counter.
func (t *Telemetry) Counter(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Gauge reads a gauge.
func (t *Telemetry) Gauge(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gauges[name]
}

// Render dumps the registry in exposition-format-like lines, sorted.
func (t *Telemetry) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.counters)+len(t.gauges))
	for n := range t.counters {
		names = append(names, fmt.Sprintf("%s %g", n, t.counters[n]))
	}
	for n := range t.gauges {
		names = append(names, fmt.Sprintf("%s %g", n, t.gauges[n]))
	}
	sort.Strings(names)
	out := ""
	for _, l := range names {
		out += l + "\n"
	}
	return out
}

// Task is one queued unit of work.
type Task struct {
	ID      int
	Arrived time.Duration
	Payload string // benchmark slug
}

// FCFS is the paper's scheduling policy: first-come-first-serve over a
// bounded queue; instances are marked busy until completion (no
// preemption).
type FCFS struct {
	queue    []Task
	depth    int
	free     int // idle instance count
	total    int
	tel      *Telemetry
	dropped  int
	enqueued int
}

// NewFCFS returns a scheduler over n instances with the given queue bound.
func NewFCFS(instances, queueDepth int, tel *Telemetry) (*FCFS, error) {
	if instances <= 0 || queueDepth <= 0 {
		return nil, fmt.Errorf("sched: non-positive pool or queue")
	}
	if tel == nil {
		tel = NewTelemetry()
	}
	return &FCFS{depth: queueDepth, free: instances, total: instances, tel: tel}, nil
}

// Telemetry returns the scheduler's registry.
func (s *FCFS) Telemetry() *Telemetry { return s.tel }

// QueueLen reports the number of waiting tasks.
func (s *FCFS) QueueLen() int { return len(s.queue) }

// Busy reports the number of occupied instances.
func (s *FCFS) Busy() int { return s.total - s.free }

// Dropped reports tasks rejected on a full queue.
func (s *FCFS) Dropped() int { return s.dropped }

// Submit enqueues a task; it reports false (and drops) when the queue is
// at its bound and no instance is free.
func (s *FCFS) Submit(t Task) bool {
	if s.free == 0 && len(s.queue) >= s.depth {
		s.dropped++
		s.tel.Inc("sched_dropped_total", 1)
		return false
	}
	s.queue = append(s.queue, t)
	s.enqueued++
	s.tel.Inc("sched_submitted_total", 1)
	s.tel.Set("sched_queue_depth", float64(len(s.queue)))
	return true
}

// Dispatch hands the head task to a free instance, if both exist.
func (s *FCFS) Dispatch() (Task, bool) {
	if s.free == 0 || len(s.queue) == 0 {
		return Task{}, false
	}
	t := s.queue[0]
	s.queue = s.queue[1:]
	s.free--
	s.tel.Set("sched_queue_depth", float64(len(s.queue)))
	s.tel.Set("sched_busy_instances", float64(s.total-s.free))
	return t, true
}

// Complete releases an instance after run-to-completion.
func (s *FCFS) Complete() {
	if s.free < s.total {
		s.free++
	}
	s.tel.Inc("sched_completed_total", 1)
	s.tel.Set("sched_busy_instances", float64(s.total-s.free))
}

// Conservation checks the bookkeeping invariant: everything submitted is
// either waiting, running, completed, or dropped.
func (s *FCFS) Conservation() error {
	completed := int(s.tel.Counter("sched_completed_total"))
	accounted := len(s.queue) + s.Busy() + completed
	if s.enqueued != accounted {
		return fmt.Errorf("sched: conservation violated: enqueued %d != queued %d + busy %d + done %d",
			s.enqueued, len(s.queue), s.Busy(), completed)
	}
	return nil
}
