package sched

import (
	"testing"
	"time"
)

func TestHeadAndRoom(t *testing.T) {
	q, _ := NewHybridQueue(3)
	if _, ok := q.Head(); ok {
		t.Fatal("empty queue has no head")
	}
	if q.Room() != 3 {
		t.Fatalf("room = %d, want 3", q.Room())
	}
	mustSubmit(t, q, task(0, 10, 1), task(1, 20, 1))
	if h, ok := q.Head(); !ok || h.ID != 0 {
		t.Fatalf("head = %+v ok=%v, want task 0", h, ok)
	}
	if q.Room() != 1 {
		t.Fatalf("room = %d, want 1", q.Room())
	}
	mustSubmit(t, q, task(2, 30, 1))
	if q.Room() != 0 {
		t.Fatalf("room = %d at the bound, want 0", q.Room())
	}
}

func TestTakePrefix(t *testing.T) {
	q, _ := NewHybridQueue(10)
	mk := func(id int, payload string) HybridTask {
		return HybridTask{ID: id, Arrived: time.Duration(id) * time.Millisecond, Payload: payload}
	}
	mustSubmit(t, q, mk(0, "a"), mk(1, "a"), mk(2, "b"), mk(3, "a"))

	// The predicate stops the prefix at the first rejection: task 3
	// matches but sits behind the "b" task, so it must stay queued.
	taken := q.TakePrefix(10, func(x HybridTask) bool { return x.Payload == "a" })
	if len(taken) != 2 || taken[0].ID != 0 || taken[1].ID != 1 {
		t.Fatalf("TakePrefix took %+v, want tasks 0,1", taken)
	}
	if h, _ := q.Head(); h.ID != 2 {
		t.Fatalf("head after prefix = %d, want 2", h.ID)
	}

	// max caps the pull; a nil predicate accepts everything.
	if taken := q.TakePrefix(1, nil); len(taken) != 1 || taken[0].ID != 2 {
		t.Fatalf("capped TakePrefix took %+v, want task 2", taken)
	}
	if q.Len() != 1 {
		t.Fatalf("queue kept %d, want 1", q.Len())
	}
	if taken := q.TakePrefix(0, nil); taken != nil {
		t.Fatalf("zero max must take nothing, got %+v", taken)
	}
}

func TestRestoreKeepsArrivalOrder(t *testing.T) {
	q, _ := NewHybridQueue(10)
	mk := func(id int, at time.Duration) HybridTask {
		return HybridTask{ID: id, Arrived: at, Payload: "t"}
	}
	mustSubmit(t, q, mk(0, 0), mk(1, 10*time.Millisecond), mk(3, 30*time.Millisecond))

	// A policy removed the middle-aged task and decided not to run it;
	// Restore must put it back between its neighbors, not at the tail.
	q.Restore(mk(2, 20*time.Millisecond))
	for want := 0; want < 4; want++ {
		got, ok := FCFSPolicy{}.Pick(q, ClassCPU, 0)
		if !ok || got.ID != want {
			t.Fatalf("pick %d: id=%d ok=%v", want, got.ID, ok)
		}
	}

	// Equal arrivals order by ID.
	q.Restore(mk(7, time.Second))
	q.Restore(mk(5, time.Second))
	a, _ := FCFSPolicy{}.Pick(q, ClassCPU, 0)
	b, _ := FCFSPolicy{}.Pick(q, ClassCPU, 0)
	if a.ID != 5 || b.ID != 7 {
		t.Fatalf("equal-arrival restore order: %d, %d, want 5, 7", a.ID, b.ID)
	}
}

// TestRestoreAllRequeue pins the requeue op: an in-flight batch returned
// by a killed worker re-enters by (Arrived, ID) even when younger work
// arrived behind it, the admission bound never drops a requeue, and a
// batch larger than the dead prefix still lands fully ordered.
func TestRestoreAllRequeue(t *testing.T) {
	q, _ := NewHybridQueue(4)
	mk := func(id int, at time.Duration) HybridTask {
		return HybridTask{ID: id, Arrived: at, Payload: "t"}
	}
	mustSubmit(t, q, mk(0, 0), mk(1, 10*time.Millisecond))

	// Tasks 0 and 1 were dispatched together and their worker was killed;
	// meanwhile tasks 2–4 arrived. The requeued batch must slot ahead of
	// everything younger.
	batch := []HybridTask{q.removeAt(0), q.removeAt(0)}
	mustSubmit(t, q, mk(2, 20*time.Millisecond), mk(3, 30*time.Millisecond), mk(4, 40*time.Millisecond))
	q.RestoreAll(batch)

	// 5 tasks now live in a queue bounded at 4: requeues bypass admission.
	if q.Len() != 5 {
		t.Fatalf("len = %d after requeue, want 5", q.Len())
	}
	for want := 0; want < 5; want++ {
		got, ok := FCFSPolicy{}.Pick(q, ClassCPU, 0)
		if !ok || got.ID != want {
			t.Fatalf("pick %d: id=%d ok=%v", want, got.ID, ok)
		}
	}
	if q.RestoreAll(nil); q.Len() != 0 {
		t.Fatal("empty requeue must be a no-op")
	}
}

// TestRestoredHeadStillAges pins the steal/restore contract that matters
// for starvation: a task moved between queues keeps its arrival instant,
// so the aging bound fires on the destination exactly as it would have on
// the source.
func TestRestoredHeadStillAges(t *testing.T) {
	q, _ := NewHybridQueue(10)
	old := HybridTask{ID: 0, Arrived: 0, Payload: "old",
		CPUService: 10 * time.Millisecond, DSCSService: 2 * time.Millisecond}
	q.Restore(old) // arrives via a steal, not Submit
	mustSubmit(t, q, HybridTask{ID: 1, Arrived: time.Second, Payload: "short",
		CPUService: time.Millisecond, DSCSService: time.Millisecond})

	now := time.Second // old has waited 1s >> AgingMultiple * 10ms
	got, ok := CriticalityPolicy{}.Pick(q, ClassCPU, now)
	if !ok || got.ID != 0 {
		t.Fatalf("aged restored head must be picked, got id=%d ok=%v", got.ID, ok)
	}
}
