package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFCFSOrdering(t *testing.T) {
	s, err := NewFCFS(1, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !s.Submit(Task{ID: i}) {
			t.Fatalf("submit %d failed", i)
		}
	}
	// One instance: dispatch yields tasks in arrival order.
	for i := 0; i < 5; i++ {
		task, ok := s.Dispatch()
		if !ok || task.ID != i {
			t.Fatalf("dispatch %d: got %v ok=%v", i, task.ID, ok)
		}
		if _, again := s.Dispatch(); again {
			t.Fatal("second dispatch must fail while instance busy")
		}
		s.Complete()
	}
}

func TestQueueBound(t *testing.T) {
	s, _ := NewFCFS(1, 3, nil)
	s.Dispatch() // nothing to run yet
	// Occupy the instance.
	s.Submit(Task{ID: 0})
	s.Dispatch()
	// Fill the queue.
	for i := 1; i <= 3; i++ {
		if !s.Submit(Task{ID: i}) {
			t.Fatalf("submit %d should fit", i)
		}
	}
	if s.Submit(Task{ID: 4}) {
		t.Fatal("queue over bound accepted")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
	if err := s.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestBusyAccounting(t *testing.T) {
	s, _ := NewFCFS(3, 10, nil)
	for i := 0; i < 5; i++ {
		s.Submit(Task{ID: i})
	}
	ran := 0
	for {
		if _, ok := s.Dispatch(); !ok {
			break
		}
		ran++
	}
	if ran != 3 || s.Busy() != 3 || s.QueueLen() != 2 {
		t.Fatalf("ran=%d busy=%d queued=%d", ran, s.Busy(), s.QueueLen())
	}
	s.Complete()
	if s.Busy() != 2 {
		t.Fatalf("busy after complete = %d", s.Busy())
	}
	if err := s.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _ := NewFCFS(4, 8, nil)
		id := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				s.Submit(Task{ID: id})
				id++
			case 1:
				s.Dispatch()
			case 2:
				if s.Busy() > 0 {
					s.Complete()
				}
			}
			if err := s.Conservation(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTelemetry(t *testing.T) {
	tel := NewTelemetry()
	tel.Inc("requests_total", 1)
	tel.Inc("requests_total", 2)
	tel.Set("queue_depth", 7)
	if tel.Counter("requests_total") != 3 {
		t.Errorf("counter = %v", tel.Counter("requests_total"))
	}
	if tel.Gauge("queue_depth") != 7 {
		t.Errorf("gauge = %v", tel.Gauge("queue_depth"))
	}
	out := tel.Render()
	if !strings.Contains(out, "requests_total 3") || !strings.Contains(out, "queue_depth 7") {
		t.Errorf("render missing metrics:\n%s", out)
	}
}

func TestSchedulerTelemetryWiring(t *testing.T) {
	tel := NewTelemetry()
	s, _ := NewFCFS(1, 2, tel)
	s.Submit(Task{ID: 0})
	s.Dispatch()
	s.Complete()
	if tel.Counter("sched_submitted_total") != 1 ||
		tel.Counter("sched_completed_total") != 1 {
		t.Error("telemetry counters not wired")
	}
}

func TestNewFCFSValidation(t *testing.T) {
	if _, err := NewFCFS(0, 10, nil); err == nil {
		t.Error("zero instances should fail")
	}
	if _, err := NewFCFS(10, 0, nil); err == nil {
		t.Error("zero queue depth should fail")
	}
}
