// Package sched is the scheduling substrate of the serving core: the
// bounded arrival-ordered queue, the task model, the pluggable placement
// policies of the paper's Section 5.3, and the minimal Prometheus-style
// telemetry registry the rest of the system records into.
//
// HybridQueue is a bounded FIFO over HybridTask (a request with its
// per-class service expectations and acceleratable-function count). Beyond
// Submit, its surgical removal operations are what the serving core's
// batching and rebalancing are built from: TakeWhere (coalesce matching
// work anywhere in the queue), TakePrefix (drain the oldest backlog
// contiguously — the steal path), Head (inspect the oldest task), and
// Restore (reinsert by arrival order, bypassing the bound — an admitted
// task must never re-drop). Every operation preserves arrival order, so
// "the head is the oldest" stays true under any interleaving.
//
// Policies order dispatch: FCFSPolicy (the paper's deployed policy),
// CriticalityPolicy (longest-running work to the accelerated class), and
// DAGAwarePolicy (most acceleratable chains to the accelerated class).
// The estimate-ordered policies are bounded by AgingMultiple: once the
// queue head has waited longer than AgingMultiple times its own expected
// service on the picking class, it dispatches next regardless of
// preference — without this bound the CPU side of either policy
// degenerates to shortest-job-first and a stream of short requests starves
// a long one forever. Tasks keep their Arrived instants across steals and
// restores, so the bound follows them between queues.
//
// Telemetry is a threadsafe counter/gauge registry rendered in exposition
// format by the gateway's /metrics. FCFS is the original single-class
// scheduler kept for the early experiments.
//
// The queue operations and policies are pinned by FuzzHybridQueueOps and
// the property harness in internal/serve; the invariants are documented in
// ARCHITECTURE.md at the repository root.
package sched
