package sched

import (
	"fmt"
	"testing"
	"time"
)

// FuzzHybridQueueOps decodes a byte stream into queue operations and
// checks the HybridQueue's structural invariants after every step: no task
// is lost or duplicated, the queue stays sorted by (Arrived, ID) so the
// head is always the oldest task, the admission bound only ever drops (it
// never truncates admitted work), and the estimate-ordered policies never
// pass over a head that has aged beyond the sched.AgingMultiple starvation
// bound. Each byte is one op; its high bits parameterize the op.
func FuzzHybridQueueOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 2, 3})
	f.Add([]byte("submit-pick-steal-restore"))
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i * 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := runQueueOps(data); err != nil {
			t.Fatal(err)
		}
	})
}

// runQueueOps is the fuzz body, shared with the corpus regression test.
func runQueueOps(data []byte) error {
	const depth = 16
	q, err := NewHybridQueue(depth)
	if err != nil {
		return err
	}
	policies := []Policy{FCFSPolicy{}, CriticalityPolicy{}, DAGAwarePolicy{}}

	present := make(map[int]HybridTask) // queued tasks by ID
	var removed []HybridTask            // picked/taken tasks eligible for Restore
	nextID := 0
	now := time.Duration(0)
	lastDropped := 0

	mkTask := func(b byte) HybridTask {
		t := HybridTask{
			ID:          nextID,
			Arrived:     now,
			Payload:     string(rune('a' + int(b)%3)),
			CPUService:  time.Duration(1+int(b)%7) * 10 * time.Millisecond,
			AccelFuncs:  int(b) % 5,
			DSCSService: time.Duration(1+int(b)%7) * 2 * time.Millisecond,
		}
		nextID++
		return t
	}

	check := func(op string) error {
		if q.Len() != len(present) {
			return fmt.Errorf("%s: queue holds %d tasks, model holds %d", op, q.Len(), len(present))
		}
		if q.Dropped() < lastDropped {
			return fmt.Errorf("%s: dropped count went backwards (%d -> %d)", op, lastDropped, q.Dropped())
		}
		lastDropped = q.Dropped()
		for i, tk := range q.live() {
			model, ok := present[tk.ID]
			if !ok {
				return fmt.Errorf("%s: queue holds unknown task %d", op, tk.ID)
			}
			if model.Arrived != tk.Arrived {
				return fmt.Errorf("%s: task %d arrival mutated", op, tk.ID)
			}
			if i == 0 {
				continue
			}
			prev := q.live()[i-1]
			if prev.Arrived > tk.Arrived || (prev.Arrived == tk.Arrived && prev.ID > tk.ID) {
				return fmt.Errorf("%s: arrival order broken at %d: (%v,%d) before (%v,%d)",
					op, i, prev.Arrived, prev.ID, tk.Arrived, tk.ID)
			}
		}
		return nil
	}

	for _, b := range data {
		now += time.Duration(1+int(b)/16) * 5 * time.Millisecond
		switch b % 6 {
		case 0: // Submit
			tk := mkTask(b)
			wasFull := q.Full()
			if q.Submit(tk) {
				if wasFull {
					return fmt.Errorf("submit: admitted past the bound")
				}
				present[tk.ID] = tk
			} else if !wasFull {
				return fmt.Errorf("submit: dropped below the bound")
			}
		case 1, 2: // policy Pick
			p := policies[int(b/8)%len(policies)]
			class := InstanceClass(int(b/4) % 2)
			head, hadHead := q.Head()
			got, ok := p.Pick(q, class, now)
			if !ok {
				if hadHead {
					return fmt.Errorf("pick(%s): nothing from a non-empty queue", p.Name())
				}
				break
			}
			if _, known := present[got.ID]; !known {
				return fmt.Errorf("pick(%s): returned unknown task %d", p.Name(), got.ID)
			}
			// The starvation bound: an aged head is never passed over.
			if hadHead && now-head.Arrived > AgingMultiple*head.Service(class) && got.ID != head.ID {
				return fmt.Errorf("pick(%s/%s): head %d aged %v (service %v) passed over for %d",
					p.Name(), class, head.ID, now-head.Arrived, head.Service(class), got.ID)
			}
			delete(present, got.ID)
			removed = append(removed, got)
		case 3: // TakeWhere (the coalescing extraction)
			payload := string(rune('a' + int(b/8)%3))
			taken := q.TakeWhere(int(b/32)+1, func(x HybridTask) bool { return x.Payload == payload })
			for _, tk := range taken {
				if tk.Payload != payload {
					return fmt.Errorf("takewhere: predicate violated for task %d", tk.ID)
				}
				if _, known := present[tk.ID]; !known {
					return fmt.Errorf("takewhere: unknown task %d", tk.ID)
				}
				delete(present, tk.ID)
				removed = append(removed, tk)
			}
		case 4: // TakePrefix (the steal extraction)
			head, hadHead := q.Head()
			taken := q.TakePrefix(int(b/32)+1, nil)
			if hadHead && len(taken) > 0 && taken[0].ID != head.ID {
				return fmt.Errorf("takeprefix: first stolen task %d is not the head %d", taken[0].ID, head.ID)
			}
			for _, tk := range taken {
				if _, known := present[tk.ID]; !known {
					return fmt.Errorf("takeprefix: unknown task %d", tk.ID)
				}
				delete(present, tk.ID)
				removed = append(removed, tk)
			}
		case 5: // Restore (an undone pick or an incoming steal)
			if len(removed) == 0 {
				break
			}
			i := int(b/8) % len(removed)
			tk := removed[i]
			removed = append(removed[:i], removed[i+1:]...)
			q.Restore(tk)
			present[tk.ID] = tk
		}
		if err := check(fmt.Sprintf("op %d", b)); err != nil {
			return err
		}
	}
	return nil
}

// TestQueueOpsCorpus replays a deterministic op stream through the fuzz
// body so the invariants run on every plain `go test`, not only under
// -fuzz.
func TestQueueOpsCorpus(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte((i*7 + i/13) % 251)
	}
	if err := runQueueOps(data); err != nil {
		t.Fatal(err)
	}
}
