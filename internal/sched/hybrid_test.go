package sched

import (
	"testing"
	"testing/quick"
	"time"
)

func task(id int, cpuMS int, accel int) HybridTask {
	return HybridTask{
		ID: id, Payload: "t",
		CPUService:  time.Duration(cpuMS) * time.Millisecond,
		DSCSService: time.Duration(cpuMS) * time.Millisecond / 4,
		AccelFuncs:  accel,
	}
}

func TestHybridFCFSOrder(t *testing.T) {
	s, err := NewHybrid(1, 1, 10, FCFSPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Submit(task(i, 100, 2))
	}
	// DSCS is preferred and FCFS hands it the head of line.
	got, class, ok := s.Dispatch()
	if !ok || got.ID != 0 || class != ClassDSCS {
		t.Fatalf("first dispatch: id=%d class=%v ok=%v", got.ID, class, ok)
	}
	got, class, _ = s.Dispatch()
	if got.ID != 1 || class != ClassCPU {
		t.Fatalf("second dispatch: id=%d class=%v", got.ID, class)
	}
	if _, _, ok := s.Dispatch(); ok {
		t.Fatal("no free instances left")
	}
	if err := s.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalityRouting(t *testing.T) {
	s, _ := NewHybrid(1, 1, 10, CriticalityPolicy{}, nil)
	s.Submit(task(0, 10, 2))  // short
	s.Submit(task(1, 500, 2)) // long
	s.Submit(task(2, 50, 2))  // medium
	// DSCS takes the longest-running task...
	got, class, _ := s.Dispatch()
	if got.ID != 1 || class != ClassDSCS {
		t.Fatalf("DSCS got id=%d", got.ID)
	}
	// ...the CPU the shortest.
	got, class, _ = s.Dispatch()
	if got.ID != 0 || class != ClassCPU {
		t.Fatalf("CPU got id=%d class=%v", got.ID, class)
	}
}

func TestDAGAwareRouting(t *testing.T) {
	s, _ := NewHybrid(1, 1, 10, DAGAwarePolicy{}, nil)
	s.Submit(task(0, 100, 1))
	s.Submit(task(1, 100, 4)) // deep accelerated chain
	s.Submit(task(2, 100, 2))
	got, class, _ := s.Dispatch()
	if got.ID != 1 || class != ClassDSCS {
		t.Fatalf("DSCS should take the deepest chain, got id=%d", got.ID)
	}
	got, _, _ = s.Dispatch()
	if got.ID != 0 {
		t.Fatalf("CPU should take the shallowest chain, got id=%d", got.ID)
	}
}

func TestHybridQueueBound(t *testing.T) {
	s, _ := NewHybrid(1, 0, 2, FCFSPolicy{}, nil)
	for i := 0; i < 2; i++ {
		if !s.Submit(task(i, 10, 1)) {
			t.Fatalf("submit %d should fit", i)
		}
	}
	if s.Submit(task(9, 10, 1)) {
		t.Fatal("queue bound ignored")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestHybridCompleteReleases(t *testing.T) {
	s, _ := NewHybrid(2, 1, 10, FCFSPolicy{}, nil)
	for i := 0; i < 5; i++ {
		s.Submit(task(i, 10, 1))
	}
	classes := map[InstanceClass]int{}
	for {
		_, class, ok := s.Dispatch()
		if !ok {
			break
		}
		classes[class]++
	}
	if classes[ClassDSCS] != 1 || classes[ClassCPU] != 2 {
		t.Fatalf("dispatch mix: %v", classes)
	}
	s.Complete(ClassDSCS)
	if _, class, ok := s.Dispatch(); !ok || class != ClassDSCS {
		t.Fatal("freed DSCS instance should dispatch next")
	}
	if err := s.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridValidation(t *testing.T) {
	if _, err := NewHybrid(0, 0, 10, nil, nil); err == nil {
		t.Error("empty pool must fail")
	}
	if _, err := NewHybrid(1, 1, 0, nil, nil); err == nil {
		t.Error("zero queue depth must fail")
	}
	if _, err := NewHybridQueue(0); err == nil {
		t.Error("zero queue must fail")
	}
}

func TestHybridConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _ := NewHybrid(2, 2, 6, CriticalityPolicy{}, nil)
		id := 0
		inFlight := map[InstanceClass]int{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				s.Submit(task(id, int(op)+1, int(op)%4))
				id++
			case 1:
				if _, class, ok := s.Dispatch(); ok {
					inFlight[class]++
				}
			case 2:
				for _, class := range []InstanceClass{ClassCPU, ClassDSCS} {
					if inFlight[class] > 0 {
						s.Complete(class)
						inFlight[class]--
						break
					}
				}
			}
			if err := s.Conservation(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{FCFSPolicy{}, CriticalityPolicy{}, DAGAwarePolicy{}} {
		if p.Name() == "" || names[p.Name()] {
			t.Errorf("bad policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
	if ClassCPU.String() == ClassDSCS.String() {
		t.Error("classes must render differently")
	}
}
