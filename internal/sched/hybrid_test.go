package sched

import (
	"testing"
	"time"
)

func task(id int, cpuMS int, accel int) HybridTask {
	return HybridTask{
		ID: id, Payload: "t",
		CPUService:  time.Duration(cpuMS) * time.Millisecond,
		DSCSService: time.Duration(cpuMS) * time.Millisecond / 4,
		AccelFuncs:  accel,
	}
}

func mustSubmit(t *testing.T, q *HybridQueue, tasks ...HybridTask) {
	t.Helper()
	for _, tk := range tasks {
		if !q.Submit(tk) {
			t.Fatalf("task %d rejected", tk.ID)
		}
	}
}

func TestFCFSPickOrder(t *testing.T) {
	q, err := NewHybridQueue(10)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, task(0, 100, 2), task(1, 10, 1), task(2, 500, 3))
	for want := 0; want < 3; want++ {
		got, ok := FCFSPolicy{}.Pick(q, ClassDSCS, 0)
		if !ok || got.ID != want {
			t.Fatalf("pick %d: id=%d ok=%v", want, got.ID, ok)
		}
	}
	if _, ok := (FCFSPolicy{}).Pick(q, ClassCPU, 0); ok {
		t.Fatal("pick from empty queue succeeded")
	}
}

func TestCriticalityRouting(t *testing.T) {
	q, _ := NewHybridQueue(10)
	mustSubmit(t, q, task(0, 10, 2), task(1, 500, 2), task(2, 50, 2))
	// DSCS takes the longest-running task...
	got, _ := CriticalityPolicy{}.Pick(q, ClassDSCS, 0)
	if got.ID != 1 {
		t.Fatalf("DSCS got id=%d", got.ID)
	}
	// ...the CPU the shortest.
	got, _ = CriticalityPolicy{}.Pick(q, ClassCPU, 0)
	if got.ID != 0 {
		t.Fatalf("CPU got id=%d", got.ID)
	}
}

func TestDAGAwareRouting(t *testing.T) {
	q, _ := NewHybridQueue(10)
	mustSubmit(t, q, task(0, 100, 1), task(1, 100, 4), task(2, 100, 2))
	got, _ := DAGAwarePolicy{}.Pick(q, ClassDSCS, 0)
	if got.ID != 1 {
		t.Fatalf("DSCS should take the deepest chain, got id=%d", got.ID)
	}
	got, _ = DAGAwarePolicy{}.Pick(q, ClassCPU, 0)
	if got.ID != 0 {
		t.Fatalf("CPU should take the shallowest chain, got id=%d", got.ID)
	}
}

// TestCPUAgingPreventsStarvation is the regression test for the policy
// starvation bug: on a single-class CPU pool (the live engine's layout),
// CriticalityPolicy and DAGAwarePolicy degenerate to pure
// shortest-job-first, so a steady stream of short requests starves a long
// one forever. With the arrival-age bound, the long task must be picked
// once its wait exceeds AgingMultiple times its own service estimate.
// Against the pre-fix policies (no agedHead call in Pick) the long task is
// never selected and this test fails.
func TestCPUAgingPreventsStarvation(t *testing.T) {
	for _, p := range []Policy{CriticalityPolicy{}, DAGAwarePolicy{}} {
		t.Run(p.Name(), func(t *testing.T) {
			q, err := NewHybridQueue(1000)
			if err != nil {
				t.Fatal(err)
			}
			long := HybridTask{
				ID: 0, Arrived: 0, Payload: "long",
				CPUService: time.Second, DSCSService: 250 * time.Millisecond,
				AccelFuncs: 4,
			}
			mustSubmit(t, q, long)
			bound := time.Duration(AgingMultiple) * long.CPUService

			// One short arrival per 100ms tick, one CPU pick per tick —
			// there is always a fresher, shorter task to prefer.
			pickedLongAt := time.Duration(-1)
			for i := 1; i <= 200; i++ {
				now := time.Duration(i) * 100 * time.Millisecond
				mustSubmit(t, q, HybridTask{
					ID: i, Arrived: now, Payload: "short",
					CPUService: 10 * time.Millisecond, DSCSService: 3 * time.Millisecond,
					AccelFuncs: 1,
				})
				got, ok := p.Pick(q, ClassCPU, now)
				if !ok {
					t.Fatalf("tick %d: nothing picked from a non-empty queue", i)
				}
				if got.ID == 0 {
					pickedLongAt = now
					break
				}
			}
			if pickedLongAt < 0 {
				t.Fatalf("%s: long task starved across 20s of short arrivals", p.Name())
			}
			if pickedLongAt <= bound {
				t.Errorf("%s: long task picked at %v, before its aging bound %v — SJF should still prefer shorts",
					p.Name(), pickedLongAt, bound)
			}
			if limit := bound + time.Second; pickedLongAt > limit {
				t.Errorf("%s: long task picked only at %v, bound was %v", p.Name(), pickedLongAt, bound)
			}
		})
	}
}

// TestDSCSAgingPreventsStarvation is the mirrored case: on the DSCS class
// the estimate-ordered policies prefer the longest task, so short requests
// can starve; the same age bound rescues them.
func TestDSCSAgingPreventsStarvation(t *testing.T) {
	q, _ := NewHybridQueue(1000)
	short := HybridTask{
		ID: 0, Arrived: 0, Payload: "short",
		CPUService: 40 * time.Millisecond, DSCSService: 10 * time.Millisecond,
		AccelFuncs: 1,
	}
	mustSubmit(t, q, short)
	picked := false
	for i := 1; i <= 100; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		mustSubmit(t, q, HybridTask{
			ID: i, Arrived: now, Payload: "long",
			CPUService: time.Second, DSCSService: 250 * time.Millisecond,
			AccelFuncs: 4,
		})
		got, ok := CriticalityPolicy{}.Pick(q, ClassDSCS, now)
		if !ok {
			t.Fatal("nothing picked")
		}
		if got.ID == 0 {
			picked = true
			break
		}
	}
	if !picked {
		t.Fatal("short task starved on the DSCS class")
	}
}

func TestAgingUsesClassEstimate(t *testing.T) {
	// The bound is per-class: a task whose DSCS estimate is tiny ages out
	// on the DSCS class long before it would on the CPU class.
	tk := HybridTask{ID: 0, CPUService: time.Second, DSCSService: time.Millisecond}
	now := 10 * AgingMultiple * time.Millisecond // >> 8*DSCS, << 8*CPU
	q, _ := NewHybridQueue(4)
	mustSubmit(t, q, tk, task(1, 2000, 1))
	if got, _ := (CriticalityPolicy{}).Pick(q, ClassDSCS, now); got.ID != 0 {
		t.Errorf("DSCS class should age out the head, got id=%d", got.ID)
	}
	q2, _ := NewHybridQueue(4)
	mustSubmit(t, q2, tk, HybridTask{ID: 1, CPUService: time.Millisecond})
	if got, _ := (CriticalityPolicy{}).Pick(q2, ClassCPU, now); got.ID != 1 {
		t.Errorf("CPU class must not age yet, got id=%d", got.ID)
	}
}

func TestHybridQueueBound(t *testing.T) {
	q, _ := NewHybridQueue(2)
	for i := 0; i < 2; i++ {
		if !q.Submit(task(i, 10, 1)) {
			t.Fatalf("submit %d should fit", i)
		}
	}
	if q.Submit(task(9, 10, 1)) {
		t.Fatal("queue bound ignored")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d", q.Dropped())
	}
	if _, err := NewHybridQueue(0); err == nil {
		t.Error("zero queue must fail")
	}
}

func TestTaskServicePerClass(t *testing.T) {
	tk := task(0, 100, 2)
	if tk.Service(ClassCPU) != 100*time.Millisecond || tk.Service(ClassDSCS) != 25*time.Millisecond {
		t.Errorf("Service() = %v/%v", tk.Service(ClassCPU), tk.Service(ClassDSCS))
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{FCFSPolicy{}, CriticalityPolicy{}, DAGAwarePolicy{}} {
		if p.Name() == "" || names[p.Name()] {
			t.Errorf("bad policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
	if ClassCPU.String() == ClassDSCS.String() {
		t.Error("classes must render differently")
	}
}
