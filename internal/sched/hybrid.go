// hybrid.go implements the paper's "future directions for optimized
// scheduling" (Section 5.3) over a heterogeneous pool of CPU and
// DSCS-capable instances:
//
//   - FCFS: the paper's deployed policy, class-blind.
//   - Criticality-aware: long-running functions go to DSCS instances, where
//     acceleration buys the most; short functions stay on CPUs.
//   - DAG-aware: applications with more acceleratable functions in their
//     chain get DSCS priority.
//
// The at-scale simulation (internal/cluster) replays traces against each
// policy; the paper hypothesizes and our reproduction confirms that both
// refinements beat plain FCFS when DSCS capacity is scarce.

package sched

import (
	"fmt"
	"sort"
	"time"
)

// InstanceClass is a pool partition.
type InstanceClass int

// Instance classes.
const (
	ClassCPU InstanceClass = iota
	ClassDSCS
)

// String names the class.
func (c InstanceClass) String() string {
	if c == ClassDSCS {
		return "dscs"
	}
	return "cpu"
}

// HybridTask is one request with its class-specific expectations.
type HybridTask struct {
	ID      int
	Arrived time.Duration
	Payload string

	// CPUService and DSCSService are the expected service times per class.
	CPUService, DSCSService time.Duration
	// AccelFuncs counts acceleratable functions in the application's DAG.
	AccelFuncs int
}

// Service is the expected service time on the given instance class.
func (t HybridTask) Service(class InstanceClass) time.Duration {
	if class == ClassDSCS {
		return t.DSCSService
	}
	return t.CPUService
}

// Policy selects which queued task a freed instance should run.
type Policy interface {
	Name() string
	// Pick removes and returns the task the given instance class should
	// run next; ok is false when the queue has nothing for it. now is the
	// caller's clock (wall time on the live engine, virtual time in the
	// discrete-event simulation) on the same basis as HybridTask.Arrived;
	// policies use it to bound how long a task may be passed over.
	Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool)
}

// AgingMultiple bounds starvation under the estimate-ordered policies: once
// the oldest queued task has waited longer than AgingMultiple times its own
// expected service time on the picking class, it is scheduled next
// regardless of the policy's preference. Without this bound the ClassCPU
// side of CriticalityPolicy/DAGAwarePolicy degenerates to pure
// shortest-job-first, and a steady stream of short requests starves a long
// one forever.
const AgingMultiple = 8

// agedHead returns the oldest queued task when its wait has exceeded the
// aging bound for the given class. The queue preserves arrival order, so
// the head is always the oldest.
func agedHead(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	head := q.tasks[0]
	if now-head.Arrived > AgingMultiple*head.Service(class) {
		return q.removeAt(0), true
	}
	return HybridTask{}, false
}

// HybridQueue is the bounded shared queue.
type HybridQueue struct {
	tasks   []HybridTask
	depth   int
	dropped int
}

// NewHybridQueue bounds the queue.
func NewHybridQueue(depth int) (*HybridQueue, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("sched: non-positive queue depth")
	}
	return &HybridQueue{depth: depth}, nil
}

// Submit enqueues; it reports false (drop) at the bound.
func (q *HybridQueue) Submit(t HybridTask) bool {
	if len(q.tasks) >= q.depth {
		q.dropped++
		return false
	}
	q.tasks = append(q.tasks, t)
	return true
}

// Len is the queue occupancy.
func (q *HybridQueue) Len() int { return len(q.tasks) }

// Full reports whether the next Submit would drop.
func (q *HybridQueue) Full() bool { return len(q.tasks) >= q.depth }

// Room is the number of Submits the bound still admits.
func (q *HybridQueue) Room() int {
	if len(q.tasks) >= q.depth {
		return 0
	}
	return q.depth - len(q.tasks)
}

// Dropped counts rejected tasks.
func (q *HybridQueue) Dropped() int { return q.dropped }

// Head returns the oldest queued task without removing it. The queue
// preserves arrival order, so the head is what the starvation aging bound
// (AgingMultiple) is measured against.
func (q *HybridQueue) Head() (HybridTask, bool) {
	if len(q.tasks) == 0 {
		return HybridTask{}, false
	}
	return q.tasks[0], true
}

// removeAt extracts index i preserving arrival order of the rest.
func (q *HybridQueue) removeAt(i int) HybridTask {
	t := q.tasks[i]
	q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
	return t
}

// TakeWhere removes and returns up to max queued tasks matching the
// predicate, preserving arrival order. The serving engine uses it to
// coalesce same-benchmark invocations into one batched execution.
func (q *HybridQueue) TakeWhere(max int, match func(HybridTask) bool) []HybridTask {
	if max <= 0 {
		return nil
	}
	var taken []HybridTask
	kept := q.tasks[:0]
	for _, t := range q.tasks {
		if len(taken) < max && match(t) {
			taken = append(taken, t)
			continue
		}
		kept = append(kept, t)
	}
	q.tasks = kept
	return taken
}

// TakePrefix removes and returns up to max tasks from the head of the
// queue, stopping at the first task the predicate rejects. This is the
// steal path's extraction: a rebalancing pull drains the oldest backlog
// contiguously, so the donor queue keeps its arrival order and the aging
// bound stays measured against a genuine oldest task. A nil predicate
// accepts everything.
func (q *HybridQueue) TakePrefix(max int, match func(HybridTask) bool) []HybridTask {
	if max <= 0 {
		return nil
	}
	n := 0
	for n < max && n < len(q.tasks) {
		if match != nil && !match(q.tasks[n]) {
			break
		}
		n++
	}
	if n == 0 {
		return nil
	}
	taken := append([]HybridTask(nil), q.tasks[:n]...)
	q.tasks = append(q.tasks[:0], q.tasks[n:]...)
	return taken
}

// Restore reinserts a task that was removed (a policy pick the caller
// decided not to dispatch, or a task arriving via a steal), placing it by
// (Arrived, ID) so the queue's oldest-first invariant holds. It bypasses
// the admission bound: the task was already admitted somewhere, and a
// rebalance must never turn into a drop.
func (q *HybridQueue) Restore(t HybridTask) {
	i := sort.Search(len(q.tasks), func(i int) bool {
		if q.tasks[i].Arrived != t.Arrived {
			return q.tasks[i].Arrived > t.Arrived
		}
		return q.tasks[i].ID > t.ID
	})
	q.tasks = append(q.tasks, HybridTask{})
	copy(q.tasks[i+1:], q.tasks[i:])
	q.tasks[i] = t
}

// FCFSPolicy is the deployed policy: head of line, any class.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFSPolicy) Pick(q *HybridQueue, _ InstanceClass, _ time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	return q.removeAt(0), true
}

// CriticalityPolicy sends the longest-running work (by CPU-time
// expectation) to DSCS instances and the shortest to CPUs, with an
// arrival-age bound (AgingMultiple) so neither extreme starves.
type CriticalityPolicy struct{}

// Name implements Policy.
func (CriticalityPolicy) Name() string { return "criticality" }

// Pick implements Policy.
func (CriticalityPolicy) Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	if t, ok := agedHead(q, class, now); ok {
		return t, true
	}
	best := 0
	for i := 1; i < q.Len(); i++ {
		if class == ClassDSCS {
			if q.tasks[i].CPUService > q.tasks[best].CPUService {
				best = i
			}
		} else {
			if q.tasks[i].CPUService < q.tasks[best].CPUService {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// DAGAwarePolicy prioritizes applications with many acceleratable
// functions for DSCS instances (they amortize the in-storage chain best),
// with the same arrival-age bound as CriticalityPolicy.
type DAGAwarePolicy struct{}

// Name implements Policy.
func (DAGAwarePolicy) Name() string { return "dag-aware" }

// Pick implements Policy.
func (DAGAwarePolicy) Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	if t, ok := agedHead(q, class, now); ok {
		return t, true
	}
	best := 0
	for i := 1; i < q.Len(); i++ {
		ti, tb := q.tasks[i], q.tasks[best]
		if class == ClassDSCS {
			if ti.AccelFuncs > tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService > tb.CPUService) {
				best = i
			}
		} else {
			if ti.AccelFuncs < tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService < tb.CPUService) {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// The two-pool scheduler that used to live here (HybridScheduler) was
// retired in favor of serve.HybridCore, which shares its pool-accounting
// code with the live engine's single-class PoolCore. This package keeps the
// queue, the tasks, and the policies.
