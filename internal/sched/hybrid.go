// hybrid.go implements the paper's "future directions for optimized
// scheduling" (Section 5.3) over a heterogeneous pool of CPU and
// DSCS-capable instances:
//
//   - FCFS: the paper's deployed policy, class-blind.
//   - Criticality-aware: long-running functions go to DSCS instances, where
//     acceleration buys the most; short functions stay on CPUs.
//   - DAG-aware: applications with more acceleratable functions in their
//     chain get DSCS priority.
//
// The at-scale simulation (internal/cluster) replays traces against each
// policy; the paper hypothesizes and our reproduction confirms that both
// refinements beat plain FCFS when DSCS capacity is scarce.

package sched

import (
	"fmt"
	"sort"
	"time"
)

// InstanceClass is a pool partition.
type InstanceClass int

// Instance classes.
const (
	ClassCPU InstanceClass = iota
	ClassDSCS
)

// String names the class.
func (c InstanceClass) String() string {
	if c == ClassDSCS {
		return "dscs"
	}
	return "cpu"
}

// HybridTask is one request with its class-specific expectations.
type HybridTask struct {
	ID      int
	Arrived time.Duration
	Payload string

	// CPUService and DSCSService are the expected service times per class.
	CPUService, DSCSService time.Duration
	// AccelFuncs counts acceleratable functions in the application's DAG.
	AccelFuncs int

	// Ref is an opaque caller attachment that rides the task through
	// queues, steals, and coalescing. The serving engine hangs its
	// per-request record here so dispatch resolves the request with a
	// field read instead of a side-table lookup; queues and policies
	// ignore it, and the simulations leave it nil.
	Ref any
}

// Service is the expected service time on the given instance class.
func (t HybridTask) Service(class InstanceClass) time.Duration {
	if class == ClassDSCS {
		return t.DSCSService
	}
	return t.CPUService
}

// Policy selects which queued task a freed instance should run.
type Policy interface {
	Name() string
	// Pick removes and returns the task the given instance class should
	// run next; ok is false when the queue has nothing for it. now is the
	// caller's clock (wall time on the live engine, virtual time in the
	// discrete-event simulation) on the same basis as HybridTask.Arrived;
	// policies use it to bound how long a task may be passed over.
	Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool)
}

// AgingMultiple bounds starvation under the estimate-ordered policies: once
// the oldest queued task has waited longer than AgingMultiple times its own
// expected service time on the picking class, it is scheduled next
// regardless of the policy's preference. Without this bound the ClassCPU
// side of CriticalityPolicy/DAGAwarePolicy degenerates to pure
// shortest-job-first, and a steady stream of short requests starves a long
// one forever.
const AgingMultiple = 8

// agedHead returns the oldest queued task when its wait has exceeded the
// aging bound for the given class. The queue preserves arrival order, so
// the head is always the oldest.
func agedHead(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	head := q.live()[0]
	if now-head.Arrived > AgingMultiple*head.Service(class) {
		return q.removeAt(0), true
	}
	return HybridTask{}, false
}

// HybridQueue is the bounded shared queue. The live window is
// tasks[head:]: a head dequeue — the FCFS fast path every dispatch takes —
// advances the index instead of sliding the whole backlog down, and the
// backlog compacts once the dead prefix reaches the queue bound. That
// keeps head removal amortized O(1) where the previous slide was O(n) per
// dispatch — at depth 4096 the slide was the single largest cost on the
// serve hot path, dwarfing the scheduler itself — while the backing array
// stays bounded at twice the queue depth.
type HybridQueue struct {
	tasks   []HybridTask // live window is tasks[head:]
	head    int
	depth   int
	dropped int
}

// NewHybridQueue bounds the queue.
func NewHybridQueue(depth int) (*HybridQueue, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("sched: non-positive queue depth")
	}
	return &HybridQueue{depth: depth}, nil
}

// live is the queued window in arrival order. Index i here is the caller's
// queue position i (removeAt shares the convention).
func (q *HybridQueue) live() []HybridTask { return q.tasks[q.head:] }

// Submit enqueues; it reports false (drop) at the bound.
//
//dscslint:hotpath
func (q *HybridQueue) Submit(t HybridTask) bool {
	if q.Len() >= q.depth {
		q.dropped++
		return false
	}
	q.tasks = append(q.tasks, t)
	return true
}

// Len is the queue occupancy.
func (q *HybridQueue) Len() int { return len(q.tasks) - q.head }

// Full reports whether the next Submit would drop.
func (q *HybridQueue) Full() bool { return q.Len() >= q.depth }

// Room is the number of Submits the bound still admits.
//
//dscslint:hotpath
func (q *HybridQueue) Room() int {
	if n := q.Len(); n < q.depth {
		return q.depth - n
	}
	return 0
}

// Dropped counts rejected tasks.
func (q *HybridQueue) Dropped() int { return q.dropped }

// Head returns the oldest queued task without removing it. The queue
// preserves arrival order, so the head is what the starvation aging bound
// (AgingMultiple) is measured against.
//
//dscslint:hotpath
func (q *HybridQueue) Head() (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	return q.live()[0], true
}

// compact reclaims the dead prefix once it reaches the queue bound (or the
// queue empties). Amortized O(1): a compaction of depth elements is paid
// for by the depth head-dequeues that preceded it.
func (q *HybridQueue) compact() {
	if q.head == len(q.tasks) {
		q.tasks = q.tasks[:0]
		q.head = 0
	} else if q.head >= q.depth {
		n := copy(q.tasks, q.tasks[q.head:])
		q.tasks = q.tasks[:n]
		q.head = 0
	}
}

// removeAt extracts queue position i (0 = head) preserving arrival order
// of the rest. Head removal advances the window; interior removal (the
// estimate-ordered policies' picks) slides only the tasks behind i.
func (q *HybridQueue) removeAt(i int) HybridTask {
	if i == 0 {
		t := q.tasks[q.head]
		q.tasks[q.head] = HybridTask{} // release the payload for the GC
		q.head++
		q.compact()
		return t
	}
	at := q.head + i
	t := q.tasks[at]
	q.tasks = append(q.tasks[:at], q.tasks[at+1:]...)
	return t
}

// TakeWhere removes and returns up to max queued tasks matching the
// predicate, preserving arrival order. The serving engine uses it to
// coalesce same-benchmark invocations into one batched execution. Once max
// matches are taken the remainder is kept wholesale — one memmove instead
// of a per-task scan.
func (q *HybridQueue) TakeWhere(max int, match func(HybridTask) bool) []HybridTask {
	return q.TakeWhereInto(nil, max, match)
}

// TakeWhereInto is TakeWhere appending into dst — the batching hot path
// hands a reused scratch buffer here so coalescing never allocates.
//
//dscslint:hotpath
func (q *HybridQueue) TakeWhereInto(dst []HybridTask, max int, match func(HybridTask) bool) []HybridTask {
	if max <= 0 {
		return dst
	}
	taken := dst
	base := len(dst)
	liveView := q.live()
	kept := liveView[:0]
	i := 0
	for ; i < len(liveView); i++ {
		if len(taken)-base == max {
			break
		}
		if match(liveView[i]) {
			taken = append(taken, liveView[i])
		} else {
			kept = append(kept, liveView[i])
		}
	}
	if len(kept) == 0 {
		// Everything scanned was taken — a contiguous head prefix, the
		// shape every same-benchmark burst produces. Advance the window
		// instead of sliding the untouched remainder down: at depth 4096
		// that slide (with per-element write barriers) was half the serve
		// pipeline's CPU.
		clear(q.tasks[q.head : q.head+i])
		q.head += i
		q.compact()
		return taken
	}
	if i < len(liveView) {
		kept = append(kept, liveView[i:]...)
	}
	q.tasks = q.tasks[:q.head+len(kept)]
	return taken
}

// TakePrefix removes and returns up to max tasks from the head of the
// queue, stopping at the first task the predicate rejects. This is the
// steal path's extraction: a rebalancing pull drains the oldest backlog
// contiguously, so the donor queue keeps its arrival order and the aging
// bound stays measured against a genuine oldest task. A nil predicate
// accepts everything.
//
//dscslint:hotpath
func (q *HybridQueue) TakePrefix(max int, match func(HybridTask) bool) []HybridTask {
	if max <= 0 {
		return nil
	}
	liveView := q.live()
	n := 0
	for n < max && n < len(liveView) {
		if match != nil && !match(liveView[n]) {
			break
		}
		n++
	}
	if n == 0 {
		return nil
	}
	taken := append([]HybridTask(nil), liveView[:n]...)
	clear(q.tasks[q.head : q.head+n])
	q.head += n
	q.compact()
	return taken
}

// Restore reinserts a task that was removed (a policy pick the caller
// decided not to dispatch, or a task arriving via a steal), placing it by
// (Arrived, ID) so the queue's oldest-first invariant holds. It bypasses
// the admission bound: the task was already admitted somewhere, and a
// rebalance must never turn into a drop. A task older than the whole
// backlog reoccupies the dead prefix in O(1) when there is one.
//
//dscslint:hotpath
func (q *HybridQueue) Restore(t HybridTask) {
	liveView := q.live()
	i := sort.Search(len(liveView), func(i int) bool {
		if liveView[i].Arrived != t.Arrived {
			return liveView[i].Arrived > t.Arrived
		}
		return liveView[i].ID > t.ID
	})
	if i == 0 && q.head > 0 {
		q.head--
		q.tasks[q.head] = t
		return
	}
	at := q.head + i
	q.tasks = append(q.tasks, HybridTask{})
	copy(q.tasks[at+1:], q.tasks[at:])
	q.tasks[at] = t
}

// RestoreAll reinserts a batch of removed tasks — the requeue op for
// in-flight work orphaned by a killed worker. Each task lands by
// (Arrived, ID), so arrival order and the AgingMultiple starvation bound
// survive a requeue regardless of how the batch was grouped. Batches
// arrive oldest-first (dispatch order); inserting back-to-front lets the
// older tasks take Restore's O(1) dead-prefix fast path.
//
//dscslint:hotpath
func (q *HybridQueue) RestoreAll(tasks []HybridTask) {
	for i := len(tasks) - 1; i >= 0; i-- {
		q.Restore(tasks[i])
	}
}

// FCFSPolicy is the deployed policy: head of line, any class.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Pick implements Policy.
//
//dscslint:hotpath
func (FCFSPolicy) Pick(q *HybridQueue, _ InstanceClass, _ time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	return q.removeAt(0), true
}

// CriticalityPolicy sends the longest-running work (by CPU-time
// expectation) to DSCS instances and the shortest to CPUs, with an
// arrival-age bound (AgingMultiple) so neither extreme starves.
type CriticalityPolicy struct{}

// Name implements Policy.
func (CriticalityPolicy) Name() string { return "criticality" }

// Pick implements Policy.
//
//dscslint:hotpath
func (CriticalityPolicy) Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	if t, ok := agedHead(q, class, now); ok {
		return t, true
	}
	liveView := q.live()
	best := 0
	for i := 1; i < len(liveView); i++ {
		if class == ClassDSCS {
			if liveView[i].CPUService > liveView[best].CPUService {
				best = i
			}
		} else {
			if liveView[i].CPUService < liveView[best].CPUService {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// DAGAwarePolicy prioritizes applications with many acceleratable
// functions for DSCS instances (they amortize the in-storage chain best),
// with the same arrival-age bound as CriticalityPolicy.
type DAGAwarePolicy struct{}

// Name implements Policy.
func (DAGAwarePolicy) Name() string { return "dag-aware" }

// Pick implements Policy.
//
//dscslint:hotpath
func (DAGAwarePolicy) Pick(q *HybridQueue, class InstanceClass, now time.Duration) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	if t, ok := agedHead(q, class, now); ok {
		return t, true
	}
	liveView := q.live()
	best := 0
	for i := 1; i < len(liveView); i++ {
		ti, tb := liveView[i], liveView[best]
		if class == ClassDSCS {
			if ti.AccelFuncs > tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService > tb.CPUService) {
				best = i
			}
		} else {
			if ti.AccelFuncs < tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService < tb.CPUService) {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// The two-pool scheduler that used to live here (HybridScheduler) was
// retired in favor of serve.HybridCore, which shares its pool-accounting
// code with the live engine's single-class PoolCore. This package keeps the
// queue, the tasks, and the policies.
