// hybrid.go implements the paper's "future directions for optimized
// scheduling" (Section 5.3) over a heterogeneous pool of CPU and
// DSCS-capable instances:
//
//   - FCFS: the paper's deployed policy, class-blind.
//   - Criticality-aware: long-running functions go to DSCS instances, where
//     acceleration buys the most; short functions stay on CPUs.
//   - DAG-aware: applications with more acceleratable functions in their
//     chain get DSCS priority.
//
// The at-scale simulation (internal/cluster) replays traces against each
// policy; the paper hypothesizes and our reproduction confirms that both
// refinements beat plain FCFS when DSCS capacity is scarce.
package sched

import (
	"fmt"
	"time"
)

// InstanceClass is a pool partition.
type InstanceClass int

// Instance classes.
const (
	ClassCPU InstanceClass = iota
	ClassDSCS
)

// String names the class.
func (c InstanceClass) String() string {
	if c == ClassDSCS {
		return "dscs"
	}
	return "cpu"
}

// HybridTask is one request with its class-specific expectations.
type HybridTask struct {
	ID      int
	Arrived time.Duration
	Payload string

	// CPUService and DSCSService are the expected service times per class.
	CPUService, DSCSService time.Duration
	// AccelFuncs counts acceleratable functions in the application's DAG.
	AccelFuncs int
}

// Policy selects which queued task a freed instance should run.
type Policy interface {
	Name() string
	// Pick removes and returns the task the given instance class should
	// run next; ok is false when the queue has nothing for it.
	Pick(q *HybridQueue, class InstanceClass) (HybridTask, bool)
}

// HybridQueue is the bounded shared queue.
type HybridQueue struct {
	tasks   []HybridTask
	depth   int
	dropped int
}

// NewHybridQueue bounds the queue.
func NewHybridQueue(depth int) (*HybridQueue, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("sched: non-positive queue depth")
	}
	return &HybridQueue{depth: depth}, nil
}

// Submit enqueues; it reports false (drop) at the bound.
func (q *HybridQueue) Submit(t HybridTask) bool {
	if len(q.tasks) >= q.depth {
		q.dropped++
		return false
	}
	q.tasks = append(q.tasks, t)
	return true
}

// Len is the queue occupancy.
func (q *HybridQueue) Len() int { return len(q.tasks) }

// Dropped counts rejected tasks.
func (q *HybridQueue) Dropped() int { return q.dropped }

// removeAt extracts index i preserving arrival order of the rest.
func (q *HybridQueue) removeAt(i int) HybridTask {
	t := q.tasks[i]
	q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
	return t
}

// TakeWhere removes and returns up to max queued tasks matching the
// predicate, preserving arrival order. The serving engine uses it to
// coalesce same-benchmark invocations into one batched execution.
func (q *HybridQueue) TakeWhere(max int, match func(HybridTask) bool) []HybridTask {
	if max <= 0 {
		return nil
	}
	var taken []HybridTask
	kept := q.tasks[:0]
	for _, t := range q.tasks {
		if len(taken) < max && match(t) {
			taken = append(taken, t)
			continue
		}
		kept = append(kept, t)
	}
	q.tasks = kept
	return taken
}

// FCFSPolicy is the deployed policy: head of line, any class.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFSPolicy) Pick(q *HybridQueue, _ InstanceClass) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	return q.removeAt(0), true
}

// CriticalityPolicy sends the longest-running work (by CPU-time
// expectation) to DSCS instances and the shortest to CPUs.
type CriticalityPolicy struct{}

// Name implements Policy.
func (CriticalityPolicy) Name() string { return "criticality" }

// Pick implements Policy.
func (CriticalityPolicy) Pick(q *HybridQueue, class InstanceClass) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	best := 0
	for i := 1; i < q.Len(); i++ {
		if class == ClassDSCS {
			if q.tasks[i].CPUService > q.tasks[best].CPUService {
				best = i
			}
		} else {
			if q.tasks[i].CPUService < q.tasks[best].CPUService {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// DAGAwarePolicy prioritizes applications with many acceleratable
// functions for DSCS instances (they amortize the in-storage chain best).
type DAGAwarePolicy struct{}

// Name implements Policy.
func (DAGAwarePolicy) Name() string { return "dag-aware" }

// Pick implements Policy.
func (DAGAwarePolicy) Pick(q *HybridQueue, class InstanceClass) (HybridTask, bool) {
	if q.Len() == 0 {
		return HybridTask{}, false
	}
	best := 0
	for i := 1; i < q.Len(); i++ {
		ti, tb := q.tasks[i], q.tasks[best]
		if class == ClassDSCS {
			if ti.AccelFuncs > tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService > tb.CPUService) {
				best = i
			}
		} else {
			if ti.AccelFuncs < tb.AccelFuncs ||
				(ti.AccelFuncs == tb.AccelFuncs && ti.CPUService < tb.CPUService) {
				best = i
			}
		}
	}
	return q.removeAt(best), true
}

// HybridScheduler manages the two instance pools over one queue.
type HybridScheduler struct {
	queue  *HybridQueue
	policy Policy
	tel    *Telemetry

	freeCPU, freeDSCS   int
	totalCPU, totalDSCS int
	completed           int
	submitted           int
}

// NewHybrid builds a scheduler over the two pools.
func NewHybrid(cpuInstances, dscsInstances, queueDepth int, policy Policy, tel *Telemetry) (*HybridScheduler, error) {
	if cpuInstances < 0 || dscsInstances < 0 || cpuInstances+dscsInstances == 0 {
		return nil, fmt.Errorf("sched: empty hybrid pool")
	}
	if policy == nil {
		policy = FCFSPolicy{}
	}
	q, err := NewHybridQueue(queueDepth)
	if err != nil {
		return nil, err
	}
	if tel == nil {
		tel = NewTelemetry()
	}
	return &HybridScheduler{
		queue: q, policy: policy, tel: tel,
		freeCPU: cpuInstances, freeDSCS: dscsInstances,
		totalCPU: cpuInstances, totalDSCS: dscsInstances,
	}, nil
}

// Submit enqueues a task.
func (s *HybridScheduler) Submit(t HybridTask) bool {
	ok := s.queue.Submit(t)
	if ok {
		s.submitted++
		s.tel.Inc("sched_submitted_total", 1)
	} else {
		s.tel.Inc("sched_dropped_total", 1)
	}
	s.tel.Set("sched_queue_depth", float64(s.queue.Len()))
	return ok
}

// Dispatch assigns work to a free instance, preferring DSCS capacity (it
// serves faster). It returns the task, the class it runs on, and whether
// anything was dispatched.
func (s *HybridScheduler) Dispatch() (HybridTask, InstanceClass, bool) {
	if s.freeDSCS > 0 {
		if t, ok := s.policy.Pick(s.queue, ClassDSCS); ok {
			s.freeDSCS--
			s.tel.Set("sched_queue_depth", float64(s.queue.Len()))
			return t, ClassDSCS, true
		}
	}
	if s.freeCPU > 0 {
		if t, ok := s.policy.Pick(s.queue, ClassCPU); ok {
			s.freeCPU--
			s.tel.Set("sched_queue_depth", float64(s.queue.Len()))
			return t, ClassCPU, true
		}
	}
	return HybridTask{}, ClassCPU, false
}

// Complete releases an instance of the given class.
func (s *HybridScheduler) Complete(class InstanceClass) {
	switch class {
	case ClassDSCS:
		if s.freeDSCS < s.totalDSCS {
			s.freeDSCS++
		}
	default:
		if s.freeCPU < s.totalCPU {
			s.freeCPU++
		}
	}
	s.completed++
	s.tel.Inc("sched_completed_total", 1)
}

// QueueLen reports queue occupancy.
func (s *HybridScheduler) QueueLen() int { return s.queue.Len() }

// Dropped counts rejections.
func (s *HybridScheduler) Dropped() int { return s.queue.Dropped() }

// Busy reports occupied instances per class.
func (s *HybridScheduler) Busy() (cpu, dscs int) {
	return s.totalCPU - s.freeCPU, s.totalDSCS - s.freeDSCS
}

// Conservation checks the bookkeeping invariant.
func (s *HybridScheduler) Conservation() error {
	busyCPU, busyDSCS := s.Busy()
	accounted := s.queue.Len() + busyCPU + busyDSCS + s.completed
	if s.submitted != accounted {
		return fmt.Errorf("sched: hybrid conservation violated: %d submitted != %d accounted",
			s.submitted, accounted)
	}
	return nil
}
