package workflow

import (
	"testing"
	"time"

	"dscs/internal/trace"
)

// diamond is the four-stage test graph: a fans out to b and c, d joins.
func diamond(t *testing.T) *trace.WorkflowSpec {
	t.Helper()
	spec, err := trace.ParseWorkflowSpec(
		"0s:a=x:;0s:b=y:a;0s:c=y:a;0s:d=z:b,c")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRunUnlockOrder(t *testing.T) {
	r, err := NewRun(7, time.Second, diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	roots := r.Start(time.Second)
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}
	if got := r.State(0); got != Ready {
		t.Fatalf("root state %v", got)
	}
	if got := r.State(3); got != Blocked {
		t.Fatalf("join state %v before deps", got)
	}
	un := r.Complete(0, 2*time.Second)
	if len(un) != 2 || un[0] != 1 || un[1] != 2 {
		t.Fatalf("completing the root unlocked %v, want [1 2]", un)
	}
	if got := r.UnlockedAt(1); got != 2*time.Second {
		t.Fatalf("stage b unlocked at %v, want 2s (age measures from unlock)", got)
	}
	if un := r.Complete(1, 3*time.Second); len(un) != 0 {
		t.Fatalf("half-done join unlocked %v", un)
	}
	un = r.Complete(2, 4*time.Second)
	if len(un) != 1 || un[0] != 3 {
		t.Fatalf("join unlock = %v, want [3]", un)
	}
	if r.Settled() {
		t.Fatal("settled with the join still open")
	}
	r.Complete(3, 5*time.Second)
	if !r.Settled() || !r.Succeeded() {
		t.Fatal("all stages done must settle and succeed")
	}
	if ms, ok := r.Makespan(); !ok || ms != 4*time.Second {
		t.Fatalf("makespan = %v/%v, want 4s", ms, ok)
	}
	if err := r.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRunOffsetFloor(t *testing.T) {
	spec, err := trace.ParseWorkflowSpec("0s:a=x:;10s:b=y:a")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRun(0, time.Minute, spec)
	if err != nil {
		t.Fatal(err)
	}
	r.Start(time.Minute)
	r.Complete(0, time.Minute+time.Second)
	// b's dependencies finished at 1m1s, but its own offset keeps it from
	// starting before arrival+10s.
	if got := r.UnlockedAt(1); got != time.Minute+10*time.Second {
		t.Fatalf("offset floor ignored: unlocked at %v", got)
	}
}

func TestRunDoubleCompleteIsInert(t *testing.T) {
	r, err := NewRun(0, 0, diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	r.Start(0)
	r.Complete(0, time.Second)
	before := r.Completed()
	if un := r.Complete(0, 2*time.Second); len(un) != 0 {
		t.Fatalf("double completion unlocked %v", un)
	}
	if r.Completed() != before {
		t.Fatal("double completion moved the ledger")
	}
	if err := r.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDropStrandsDownstream(t *testing.T) {
	r, err := NewRun(0, 0, diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	r.Start(0)
	un := r.Complete(0, time.Second)
	if len(un) != 2 {
		t.Fatalf("unlocked %v", un)
	}
	// One branch is refused admission: the join can never assemble its
	// inputs, so it strands now instead of leaking.
	if n := r.Drop(1, 2*time.Second); n != 1 {
		t.Fatalf("drop stranded %d, want 1 (the join)", n)
	}
	if got := r.State(3); got != Stranded {
		t.Fatalf("join state %v, want stranded", got)
	}
	// The live branch still completes; the run settles as a partial.
	r.Complete(2, 3*time.Second)
	if !r.Settled() || r.Succeeded() {
		t.Fatalf("settled=%v succeeded=%v, want settled partial", r.Settled(), r.Succeeded())
	}
	if c, d, s := r.Completed(), r.DroppedCount(), r.StrandedCount(); c != 2 || d != 1 || s != 1 {
		t.Fatalf("ledger %d/%d/%d, want 2 completed, 1 dropped, 1 stranded", c, d, s)
	}
	if err := r.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestStrandRemainingClosesOut(t *testing.T) {
	r, err := NewRun(0, 0, diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	r.Start(0)
	r.Complete(0, time.Second)
	if n := r.StrandRemaining(5 * time.Second); n != 3 {
		t.Fatalf("stranded %d at horizon, want 3", n)
	}
	if !r.Settled() {
		t.Fatal("close-out must settle the run")
	}
	if err := r.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectKeys(t *testing.T) {
	r, err := NewRun(42, 0, diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.OutputKey(0); got != "wf/42/a" {
		t.Fatalf("output key %q", got)
	}
	if got := r.InputKeys(0); len(got) != 1 || got[0] != InputKey(42, "a") {
		t.Fatalf("root input keys %v", got)
	}
	// The join reads both branch outputs.
	join := r.InputKeys(3)
	if len(join) != 2 || join[0] != "wf/42/b" || join[1] != "wf/42/c" {
		t.Fatalf("join input keys %v", join)
	}
}

func TestPlacerPrefersLocalAndFallsBack(t *testing.T) {
	waits := []time.Duration{50 * time.Millisecond, 10 * time.Millisecond, 0}
	healthy := []bool{true, true, true}
	idle := []bool{false, false, false}
	p := &Placer{
		Pools:   3,
		Home:    func(key string) int { return 0 },
		Healthy: func(i int) bool { return healthy[i] },
		Idle:    func(i int) bool { return idle[i] },
		Wait:    func(i int) time.Duration { return waits[i] },
	}
	// A busy home loses to a strictly cheaper peer.
	if got := p.Place("k"); got.Pool != 2 || got.Local {
		t.Fatalf("busy home kept the stage: %+v", got)
	}
	// An idle home short-circuits the pricing sweep.
	idle[0] = true
	if got := p.Place("k"); got.Pool != 0 || !got.Local {
		t.Fatalf("idle home skipped: %+v", got)
	}
	idle[0] = false
	// Equal waits stay local: moving pays the fabric.
	waits[0], waits[1], waits[2] = 20*time.Millisecond, 20*time.Millisecond, 20*time.Millisecond
	if got := p.Place("k"); got.Pool != 0 || !got.Local {
		t.Fatalf("tie moved off the data: %+v", got)
	}
	// A dead home falls back to the cheapest healthy peer.
	healthy[0] = false
	waits[1] = 5 * time.Millisecond
	if got := p.Place("k"); got.Pool != 1 || got.Local {
		t.Fatalf("dead home placement: %+v", got)
	}
	// No replica anywhere: pure least-priced-wait.
	p.Home = func(string) int { return -1 }
	healthy[0] = true
	waits[0] = time.Millisecond
	if got := p.Place("k"); got.Pool != 0 || got.Local {
		t.Fatalf("cold object placement: %+v", got)
	}
	// Nothing healthy: the placer says so rather than guessing.
	healthy[0], healthy[1], healthy[2] = false, false, false
	if got := p.Place("k"); got.Pool != -1 {
		t.Fatalf("placement with no healthy pool: %+v", got)
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	healthy := []bool{true, false, true}
	rr := &RoundRobin{Pools: 3, Healthy: func(i int) bool { return healthy[i] }}
	got := []int{rr.Place().Pool, rr.Place().Pool, rr.Place().Pool}
	want := []int{0, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
	healthy[0], healthy[2] = false, false
	if got := rr.Place(); got.Pool != -1 {
		t.Fatalf("all-dead rotation placed on %d", got.Pool)
	}
}
