// place.go is the locality-aware stage placement policy: run each stage on
// the pool whose drive already holds its input replica, and pay the fabric
// only when that drive is busy or dead. The Placer is adapter-shaped —
// callers wire the replica map (objstore.DSCSReplicaHealthy), pool health,
// and priced wait (serve.MultiCore.PricedWait / the engine's pricedWait)
// through closures — so the identical decision runs in the live engine and
// in both simulations.
package workflow

import "time"

// Placement is one stage's placement decision.
type Placement struct {
	// Pool is the chosen pool index, or -1 when no healthy pool exists.
	Pool int
	// Local reports that the pool's drive holds the stage's input
	// replica — the stage reads through the drive's internal path instead
	// of the fabric.
	Local bool
}

// Placer prices stage placement against the replica map. All fields are
// required except Idle (nil means never idle-fast-path).
type Placer struct {
	// Pools is the candidate pool count; pools are indexed [0, Pools).
	Pools int
	// Home maps an input object key to the pool fronting the drive that
	// holds its healthy DSCS replica, or -1 when no healthy replica
	// exists (the object is cold, SSD-only, or its drive is down).
	Home func(key string) int
	// Healthy reports whether a pool is dispatching (serve's pool health,
	// not the drive's).
	Healthy func(pool int) bool
	// Idle reports whether a pool has a free worker and an empty queue —
	// the fast path that keeps a local placement local without pricing
	// every peer.
	Idle func(pool int) bool
	// Wait prices what newly placed work would wait on a pool right now
	// (idle healthy pools price zero).
	Wait func(pool int) time.Duration
}

// Place decides where the stage whose input lives at key runs: its home
// pool when that pool is healthy and no cheaper healthy peer exists (ties
// keep the data local), otherwise the healthy pool with the least priced
// wait. A busy home loses only to a strictly cheaper peer — moving the
// stage pays the fabric, so equal waits stay local.
//
//dscslint:hotpath
func (p *Placer) Place(key string) Placement {
	home := -1
	if p.Home != nil {
		home = p.Home(key)
	}
	if home >= 0 && (home >= p.Pools || !p.Healthy(home)) {
		home = -1
	}
	if home >= 0 && p.Idle != nil && p.Idle(home) {
		return Placement{Pool: home, Local: true}
	}
	best, bestWait := -1, time.Duration(0)
	for i := 0; i < p.Pools; i++ {
		if !p.Healthy(i) {
			continue
		}
		w := p.Wait(i)
		if best < 0 || w < bestWait || (w == bestWait && i == home) {
			best, bestWait = i, w
		}
	}
	if home >= 0 {
		// The home pool is healthy; it loses only to a strictly cheaper
		// peer.
		if best < 0 || p.Wait(home) <= bestWait {
			return Placement{Pool: home, Local: true}
		}
	}
	return Placement{Pool: best, Local: false}
}

// RoundRobin is the locality-blind baseline the goldens compare against: a
// stateful cursor spreading stages across pools without consulting the
// replica map. Unhealthy pools are skipped; a full cycle with no healthy
// pool places on -1.
type RoundRobin struct {
	Pools   int
	Healthy func(pool int) bool
	next    int
}

// Place returns the next healthy pool in rotation.
func (rr *RoundRobin) Place() Placement {
	for tries := 0; tries < rr.Pools; tries++ {
		i := rr.next % rr.Pools
		rr.next++
		if rr.Healthy == nil || rr.Healthy(i) {
			return Placement{Pool: i}
		}
	}
	return Placement{Pool: -1}
}
