// Package workflow tracks invocation graphs through the serve core: each
// trace.WorkflowSpec becomes a Run — per-stage dependency counts, unlock
// times, and object keys — that the live engine and the simulations drive
// from their own clocks. The package owns no goroutines, no clock, and no
// randomness: callers tell it when a stage completed or dropped and it
// answers which stages that unlocks or strands. Stage data moves as
// objstore objects (a completed stage writes its output object; a
// dependent reads it), so placement can consult the replica map and run
// each stage where its input already lives (see Placer).
//
// The accounting invariant the harnesses pin: every admitted stage settles
// exactly once — completed, dropped (admission refused the unlocked
// stage), or stranded (an upstream stage failed, or the run ended first) —
// and a stage's scheduler age is measured from its unlock time, not from
// workflow arrival.
package workflow

import (
	"fmt"
	"time"

	"dscs/internal/trace"
)

// State is one stage's lifecycle position.
type State int

// Stage states. Blocked stages wait on dependencies; Ready stages have
// unlocked into a scheduler queue; Done, Dropped, and Stranded are the
// three settled ends — exactly one of them per admitted stage.
const (
	Blocked State = iota
	Ready
	Done
	Dropped
	Stranded
)

// String names the state.
func (s State) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Ready:
		return "ready"
	case Done:
		return "done"
	case Dropped:
		return "dropped"
	case Stranded:
		return "stranded"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Run is one workflow's live graph state. It is not safe for concurrent
// use; the live engine serializes access behind its own lock and the sims
// are single-threaded.
type Run struct {
	id      int
	arrived time.Duration
	spec    *trace.WorkflowSpec

	state      []State
	pending    []int   // unmet dependency count per stage
	dependents [][]int // stages waiting on this one
	unlockedAt []time.Duration
	settledAt  time.Duration

	// Object keys are precomputed at construction so the unlock hot path
	// never builds strings: outKeys[i] is stage i's output object,
	// inKeys[i] its input objects (dependency outputs; roots read the
	// workflow's seeded input object).
	outKeys []string
	inKeys  [][]string

	started                      bool
	completed, dropped, stranded int

	// unlocked is the reusable buffer Complete returns newly unlocked
	// stage indices in; it is overwritten by the next Complete/Start.
	unlocked []int
}

// NewRun validates the spec and builds the graph state for one workflow
// admitted at arrived.
func NewRun(id int, arrived time.Duration, spec *trace.WorkflowSpec) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := len(spec.Stages)
	r := &Run{
		id: id, arrived: arrived, spec: spec,
		state:      make([]State, n),
		pending:    make([]int, n),
		dependents: make([][]int, n),
		unlockedAt: make([]time.Duration, n),
		outKeys:    make([]string, n),
		inKeys:     make([][]string, n),
		unlocked:   make([]int, 0, n),
	}
	idx := make(map[string]int, n)
	for i, st := range spec.Stages {
		idx[st.ID] = i
		r.outKeys[i] = fmt.Sprintf("wf/%d/%s", id, st.ID)
	}
	for i, st := range spec.Stages {
		if len(st.Deps) == 0 {
			r.inKeys[i] = []string{InputKey(id, st.ID)}
			continue
		}
		r.pending[i] = len(st.Deps)
		keys := make([]string, 0, len(st.Deps))
		for _, dep := range st.Deps {
			j := idx[dep]
			r.dependents[j] = append(r.dependents[j], i)
			keys = append(keys, r.outKeys[j])
		}
		r.inKeys[i] = keys
	}
	return r, nil
}

// InputKey names the seeded input object of a root stage: the object the
// workflow's caller puts before the roots unlock.
func InputKey(workflowID int, stageID string) string {
	return fmt.Sprintf("wf/%d/in/%s", workflowID, stageID)
}

// ID returns the workflow's trace ID.
func (r *Run) ID() int { return r.id }

// Spec returns the workflow's graph spec.
func (r *Run) Spec() *trace.WorkflowSpec { return r.spec }

// Arrived returns the workflow's admission time.
func (r *Run) Arrived() time.Duration { return r.arrived }

// Len returns the stage count.
func (r *Run) Len() int { return len(r.spec.Stages) }

// Stage returns stage i's spec.
func (r *Run) Stage(i int) trace.WorkflowStage { return r.spec.Stages[i] }

// State returns stage i's lifecycle position.
func (r *Run) State(i int) State { return r.state[i] }

// OutputKey returns stage i's output object key.
func (r *Run) OutputKey(i int) string { return r.outKeys[i] }

// InputKeys returns stage i's input object keys: its dependencies' outputs,
// or the seeded input object for a root. The slice is owned by the Run.
func (r *Run) InputKeys(i int) []string { return r.inKeys[i] }

// UnlockedAt returns when stage i unlocked — the instant its scheduler age
// is measured from. Zero until the stage leaves Blocked.
func (r *Run) UnlockedAt(i int) time.Duration { return r.unlockedAt[i] }

// unlockAt applies the stage's own offset floor: a stage may not start
// before arrival+Offset even if its dependencies finish earlier.
func (r *Run) unlockAt(i int, now time.Duration) time.Duration {
	if floor := r.arrived + r.spec.Stages[i].Offset; floor > now {
		return floor
	}
	return now
}

// Start unlocks the root stages at now and returns their indices. The
// returned slice is reused by the next Start/Complete call.
func (r *Run) Start(now time.Duration) []int {
	if r.started {
		return nil
	}
	r.started = true
	r.unlocked = r.unlocked[:0]
	for i := range r.state {
		if r.pending[i] == 0 {
			r.state[i] = Ready
			r.unlockedAt[i] = r.unlockAt(i, now)
			r.unlocked = append(r.unlocked, i)
		}
	}
	return r.unlocked
}

// Complete retires stage i at now and returns the stages that unlocks:
// each dependent whose last unmet dependency this was moves Blocked→Ready
// with its age clock starting at now (never before its own offset floor).
// The returned slice is reused by the next Start/Complete call.
//
//dscslint:hotpath
func (r *Run) Complete(i int, now time.Duration) []int {
	r.unlocked = r.unlocked[:0]
	if r.state[i] != Ready {
		// Double completion (a hedge losing the race after a requeue, or a
		// caller bug) must not unlock dependents twice.
		return r.unlocked
	}
	r.state[i] = Done
	r.completed++
	for _, j := range r.dependents[i] {
		if r.pending[j]--; r.pending[j] == 0 && r.state[j] == Blocked {
			r.state[j] = Ready
			r.unlockedAt[j] = r.unlockAt(j, now)
			r.unlocked = append(r.unlocked, j)
		}
	}
	r.noteSettled(now)
	return r.unlocked
}

// Drop settles stage i as refused admission and strands everything
// downstream of it: a stage that will never produce its output object can
// never unlock its dependents, so they settle now rather than leak. It
// returns the number of stages stranded by the cascade.
func (r *Run) Drop(i int, now time.Duration) int {
	if r.state[i] != Ready {
		return 0
	}
	r.state[i] = Dropped
	r.dropped++
	n := r.strandDownstream(i)
	r.noteSettled(now)
	return n
}

// Strand settles stage i as stranded (its pool died with the stage queued,
// or the run is being closed out) and cascades downstream. It accepts
// Blocked and Ready stages and returns the total stranded including i.
func (r *Run) Strand(i int, now time.Duration) int {
	if r.state[i] != Ready && r.state[i] != Blocked {
		return 0
	}
	r.state[i] = Stranded
	r.stranded++
	n := 1 + r.strandDownstream(i)
	r.noteSettled(now)
	return n
}

// strandDownstream walks the dependent closure of a failed stage with an
// iterative worklist, settling every still-open stage it reaches.
func (r *Run) strandDownstream(i int) int {
	n := 0
	work := append([]int(nil), r.dependents[i]...)
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		if r.state[j] != Blocked && r.state[j] != Ready {
			continue
		}
		r.state[j] = Stranded
		r.stranded++
		n++
		work = append(work, r.dependents[j]...)
	}
	return n
}

// StrandRemaining settles every still-open stage as stranded — the
// end-of-run close-out for workflows the horizon cut off. Returns the
// number stranded.
func (r *Run) StrandRemaining(now time.Duration) int {
	n := 0
	for i := range r.state {
		if r.state[i] == Blocked || r.state[i] == Ready {
			r.state[i] = Stranded
			r.stranded++
			n++
		}
	}
	if n > 0 {
		r.noteSettled(now)
	}
	return n
}

// noteSettled records the settle instant once every stage has settled.
func (r *Run) noteSettled(now time.Duration) {
	if r.settledAt == 0 && r.Settled() {
		r.settledAt = now
	}
}

// Settled reports whether every stage has reached a terminal state.
func (r *Run) Settled() bool {
	return r.completed+r.dropped+r.stranded == len(r.state)
}

// Succeeded reports whether every stage completed.
func (r *Run) Succeeded() bool { return r.completed == len(r.state) }

// Completed, DroppedCount, and StrandedCount report the settled tallies.
func (r *Run) Completed() int     { return r.completed }
func (r *Run) DroppedCount() int  { return r.dropped }
func (r *Run) StrandedCount() int { return r.stranded }

// Makespan returns the workflow's end-to-end span — admission to the last
// stage settling — and whether the run has settled.
func (r *Run) Makespan() (time.Duration, bool) {
	if !r.Settled() {
		return 0, false
	}
	return r.settledAt - r.arrived, true
}

// Conservation checks the per-workflow ledger: stages settle at most once,
// and a settled run accounts for every admitted stage as exactly one of
// completed, dropped, or stranded.
func (r *Run) Conservation() error {
	var done, dropped, stranded, open int
	for _, s := range r.state {
		switch s {
		case Done:
			done++
		case Dropped:
			dropped++
		case Stranded:
			stranded++
		default:
			open++
		}
	}
	if done != r.completed || dropped != r.dropped || stranded != r.stranded {
		return fmt.Errorf("workflow %d: tallies diverge from states: %d/%d completed, %d/%d dropped, %d/%d stranded",
			r.id, r.completed, done, r.dropped, dropped, r.stranded, stranded)
	}
	if r.completed+r.dropped+r.stranded+open != len(r.state) {
		return fmt.Errorf("workflow %d: %d completed + %d dropped + %d stranded + %d open != %d admitted",
			r.id, r.completed, r.dropped, r.stranded, open, len(r.state))
	}
	if r.Settled() && open != 0 {
		return fmt.Errorf("workflow %d: settled with %d open stages", r.id, open)
	}
	return nil
}
