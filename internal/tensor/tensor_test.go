package tensor

import (
	"testing"
	"testing/quick"

	"dscs/internal/units"
)

func TestShapeElems(t *testing.T) {
	if e := (Shape{224, 224, 3}).Elems(); e != 150528 {
		t.Errorf("elems = %d", e)
	}
	if e := (Shape{}).Elems(); e != 1 {
		t.Errorf("scalar elems = %d", e)
	}
	if e := (Shape{3, 0, 5}).Elems(); e != 0 {
		t.Errorf("zero-dim elems = %d", e)
	}
}

func TestShapeBytes(t *testing.T) {
	s := Shape{224, 224, 3}
	if b := s.Bytes(Float32); b != units.Bytes(150528*4) {
		t.Errorf("fp32 bytes = %v", b)
	}
	if b := s.Bytes(Int8); b != 150528 {
		t.Errorf("int8 bytes = %v", b)
	}
	if b := s.Bytes(Float16); b != units.Bytes(150528*2) {
		t.Errorf("fp16 bytes = %v", b)
	}
}

func TestWithBatch(t *testing.T) {
	s := Shape{224, 224, 3}
	b := s.WithBatch(8)
	if !b.Equal(Shape{8, 224, 224, 3}) {
		t.Errorf("WithBatch = %v", b)
	}
	if b.Elems() != 8*s.Elems() {
		t.Errorf("batched elems = %d", b.Elems())
	}
	// The original must be untouched.
	if !s.Equal(Shape{224, 224, 3}) {
		t.Errorf("original mutated: %v", s)
	}
}

func TestBatchScalesElemsProperty(t *testing.T) {
	f := func(a, b, c uint8, batch uint8) bool {
		s := Shape{int(a%16) + 1, int(b%16) + 1, int(c%16) + 1}
		n := int(batch%8) + 1
		return s.WithBatch(n).Elems() == int64(n)*s.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]units.Bytes{Int8: 1, Float16: 2, Int32: 4, Float32: 4}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v size = %d, want %d", d, d.Size(), want)
		}
	}
}

func TestShapeString(t *testing.T) {
	if s := (Shape{8, 224, 224, 3}).String(); s != "[8x224x224x3]" {
		t.Errorf("shape string = %q", s)
	}
}

func TestDTypeString(t *testing.T) {
	names := map[DType]string{Int8: "int8", Int32: "int32", Float16: "fp16", Float32: "fp32"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d name = %q, want %q", d, d.String(), want)
		}
	}
}

func TestShapeEqual(t *testing.T) {
	if !(Shape{1, 2}).Equal(Shape{1, 2}) {
		t.Error("equal shapes reported unequal")
	}
	if (Shape{1, 2}).Equal(Shape{1, 2, 3}) {
		t.Error("different ranks reported equal")
	}
	if (Shape{1, 2}).Equal(Shape{2, 1}) {
		t.Error("different dims reported equal")
	}
}
