// Package tensor provides shape and dtype accounting for the model IR and
// the compiler. No tensor data is materialized: the simulator only needs
// element counts and byte sizes.
package tensor

import (
	"fmt"
	"strings"

	"dscs/internal/units"
)

// DType identifies an element type.
type DType int

// Supported element types. The DSA computes in INT8 with INT32 accumulation
// (as in the paper's PE design); host platforms use FP32/FP16.
const (
	Int8 DType = iota
	Int32
	Float16
	Float32
)

// Size returns the element size in bytes.
func (d DType) Size() units.Bytes {
	switch d {
	case Int8:
		return 1
	case Float16:
		return 2
	case Int32, Float32:
		return 4
	}
	return 4
}

// String names the dtype.
func (d DType) String() string {
	switch d {
	case Int8:
		return "int8"
	case Int32:
		return "int32"
	case Float16:
		return "fp16"
	case Float32:
		return "fp32"
	}
	return "unknown"
}

// Shape is a tensor shape; dimension order is documented by each producer.
type Shape []int

// Elems returns the number of elements (1 for a scalar / empty shape).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		if d <= 0 {
			return 0
		}
		n *= int64(d)
	}
	return n
}

// Bytes returns the storage size of the shape at the given dtype.
func (s Shape) Bytes(d DType) units.Bytes {
	return units.Bytes(s.Elems()) * d.Size()
}

// WithBatch returns the shape prefixed with a batch dimension.
func (s Shape) WithBatch(b int) Shape {
	out := make(Shape, 0, len(s)+1)
	out = append(out, b)
	out = append(out, s...)
	return out
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the shape as [a b c].
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}
