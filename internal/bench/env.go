// env.go builds the harness's serving environment: the same 4-SSD +
// 2-DSCS-drive object store and platform lineup the serve package's tests
// run against, constructed here without a testing.T so the dscsbench
// binary can drive it.
package bench

import (
	"fmt"

	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/sim"
	"dscs/internal/ssd"
)

// Runners builds the benchmark environment's platform runners.
func Runners() (map[string]*faas.Runner, error) {
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(23))
	if err != nil {
		return nil, err
	}
	return map[string]*faas.Runner{
		"DSCS-Serverless": faas.NewRunner(store, platform.DSCS()),
		"Baseline (CPU)":  faas.NewRunner(store, platform.BaselineCPU()),
	}, nil
}
