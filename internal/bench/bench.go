// Package bench is the raw-speed harness behind `dscsbench -hotpath`: it
// times every hot-path stage of the serve core — PoolCore Submit, Dispatch,
// DispatchFormed, StealFrom, digest Record, and the full engine round-trip
// — at 1, 8, and 64 workers, and emits the committed BENCH_<n>.json
// trajectory point each PR appends to. The engine round-trip runs twice per
// worker count: the blocking arm (direct admit under the pool lock, one
// reply-channel round-trip per call) and the sharded arm (per-P ingress,
// fire-and-forget SubmitAsync). Both arms share this binary's internals,
// so their ratio isolates the ingress design; the campaign's headline
// ratio instead divides sharded_w64 by the recorded pre-shard baseline —
// the parent commit's blocking throughput, measured once with the same
// shape and pinned in the report (Report.PreShard) so the comparison
// never flatters itself by running the old path atop new internals.
//
// The harness measures with fixed-duration loops rather than testing.B so
// a plain binary can run it; allocation rates come from runtime.MemStats
// deltas (process-global, so per-op numbers are upper bounds when the
// engine's own workers run concurrently with the timed loop).
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/workload"
)

// Workers are the concurrency levels every stage runs at.
var Workers = []int{1, 8, 64}

// Result is one (stage, workers) measurement.
type Result struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is one PR's trajectory point: the full suite plus the sustained
// submit-rate summary the regression gate compares.
type Report struct {
	Schema     string `json:"schema"`
	PR         int    `json:"pr"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Results holds every (stage, workers) point.
	Results []Result `json:"results"`
	// SubmitsPerSec summarizes the engine round-trip arms, keyed
	// "baseline_w<N>" / "sharded_w<N>" — sustained admitted-and-served
	// invocations per second.
	SubmitsPerSec map[string]float64 `json:"submits_per_sec"`
	// Speedup64 is sharded_w64 / baseline_w64 — both arms measured in this
	// binary, so the ratio isolates what the sharded ingress buys over the
	// blocking path atop otherwise identical internals.
	Speedup64 float64 `json:"speedup_64"`
	// PreShard pins the true pre-shard baseline: the blocking path as it
	// performed at the parent commit, measured once with this same
	// methodology and recorded here so the headline comparison never
	// flatters itself by measuring the old path atop new internals.
	PreShard *PreShard `json:"pre_shard,omitempty"`
	// Speedup64PreShard is sharded_w64 over the pre-shard baseline — the
	// raw-speed campaign's headline ratio.
	Speedup64PreShard float64 `json:"speedup_64_pre_shard,omitempty"`
}

// PreShard is the parent-commit measurement backing Speedup64PreShard:
// 64 submitters driving the blocking Submit loop with execution stubbed,
// exactly the engine_blocking arm's shape, run at the recorded commit.
// ARCHITECTURE.md's perf-methodology section gives the reproduction
// recipe.
type PreShard struct {
	SubmitsPerSec float64 `json:"submits_per_sec"`
	Commit        string  `json:"commit"`
	Note          string  `json:"note,omitempty"`
}

// Schema identifies the BENCH_*.json layout.
const Schema = "dscs-bench/v1"

// Options tune a harness run.
type Options struct {
	// PerStage is how long each (stage, workers) point runs (default
	// 100ms; CI smoke uses less, the committed file more).
	PerStage time.Duration
	// PR stamps the report (BENCH_<PR>.json).
	PR int
	// PreShard, when set, is copied into the report (see Report.PreShard).
	PreShard *PreShard
}

// Run executes the full suite and returns the report.
func Run(opt Options) (*Report, error) {
	if opt.PerStage <= 0 {
		opt.PerStage = 100 * time.Millisecond
	}
	rep := &Report{
		Schema:        Schema,
		PR:            opt.PR,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		SubmitsPerSec: make(map[string]float64),
	}
	for _, w := range Workers {
		stages := []struct {
			name string
			fn   func(workers int, d time.Duration) (int64, time.Duration, error)
		}{
			{"core_submit", stageSubmit},
			{"core_dispatch", stageDispatch},
			{"core_dispatch_formed", stageDispatchFormed},
			{"core_steal_from", stageStealFrom},
			{"digest_record", stageDigestRecord},
		}
		for _, s := range stages {
			r, err := measure(s.name, w, opt.PerStage, s.fn)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, r)
		}
		for _, arm := range []struct {
			name    string
			sharded bool
		}{{"engine_blocking", false}, {"engine_sharded", true}} {
			r, err := measure(arm.name, w, opt.PerStage,
				func(workers int, d time.Duration) (int64, time.Duration, error) {
					return stageEngine(workers, d, arm.sharded)
				})
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, r)
			key := "baseline"
			if arm.sharded {
				key = "sharded"
			}
			rep.SubmitsPerSec[fmt.Sprintf("%s_w%d", key, w)] = r.OpsPerSec
		}
	}
	if base := rep.SubmitsPerSec["baseline_w64"]; base > 0 {
		rep.Speedup64 = rep.SubmitsPerSec["sharded_w64"] / base
	}
	if opt.PreShard != nil && opt.PreShard.SubmitsPerSec > 0 {
		ps := *opt.PreShard
		rep.PreShard = &ps
		rep.Speedup64PreShard = rep.SubmitsPerSec["sharded_w64"] / ps.SubmitsPerSec
	}
	return rep, nil
}

// measure wraps one stage run with the MemStats bracket and rate math.
func measure(name string, workers int, d time.Duration,
	fn func(workers int, d time.Duration) (int64, time.Duration, error)) (Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ops, elapsed, err := fn(workers, d)
	if err != nil {
		return Result{}, fmt.Errorf("bench %s/w%d: %w", name, workers, err)
	}
	runtime.ReadMemStats(&after)
	if ops <= 0 {
		return Result{}, fmt.Errorf("bench %s/w%d: no ops completed", name, workers)
	}
	return Result{
		Name:        name,
		Workers:     workers,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
	}, nil
}

// runTimed fans body out over workers goroutines until the deadline; body
// returns how many ops one call performed. The deadline is a timer-set
// flag, not a per-iteration clock read — at ~100ns/op a time.Now per
// iteration would be a quarter of the measurement.
func runTimed(workers int, d time.Duration, body func() int64) (int64, time.Duration) {
	var (
		ops  atomic.Int64
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	start := time.Now()
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for !stop.Load() {
				local += body()
			}
			ops.Add(local)
		}()
	}
	wg.Wait()
	return ops.Load(), time.Since(start)
}

const coreQueueDepth = 4096

// lockedCore is a PoolCore behind a mutex — exactly how the engine
// serializes core access, so the core stages measure the state machine
// plus the serialization cost the sharded ingress amortizes.
type lockedCore struct {
	mu   sync.Mutex
	core *serve.PoolCore
}

func newLockedCore(former bool) (*lockedCore, error) {
	core, err := serve.NewPoolCore(8, coreQueueDepth, sched.ClassCPU, sched.FCFSPolicy{})
	if err != nil {
		return nil, err
	}
	if former {
		core.AttachFormer(serve.NewBatchFormer(8, 0, 0, sched.ClassCPU))
	}
	return &lockedCore{core: core}, nil
}

// stageSubmit measures PoolCore.Submit under the pool-style lock; a full
// queue drains inline (Dispatch+Complete, uncounted) so the loop sustains.
func stageSubmit(workers int, d time.Duration) (int64, time.Duration, error) {
	lc, err := newLockedCore(false)
	if err != nil {
		return 0, 0, err
	}
	var seq atomic.Int64
	ops, elapsed := runTimed(workers, d, func() int64 {
		id := int(seq.Add(1))
		lc.mu.Lock()
		if !lc.core.Submit(sched.HybridTask{ID: id, Payload: "bench"}) {
			for {
				if _, ok := lc.core.Dispatch(0); !ok {
					break
				}
				lc.core.Complete(1)
			}
			lc.core.Submit(sched.HybridTask{ID: id, Payload: "bench"})
		}
		lc.mu.Unlock()
		return 1
	})
	return ops, elapsed, nil
}

// stageDispatch measures PoolCore.Dispatch; an empty queue refills inline
// (uncounted).
func stageDispatch(workers int, d time.Duration) (int64, time.Duration, error) {
	lc, err := newLockedCore(false)
	if err != nil {
		return 0, 0, err
	}
	var seq atomic.Int64
	ops, elapsed := runTimed(workers, d, func() int64 {
		lc.mu.Lock()
		if _, ok := lc.core.Dispatch(0); ok {
			lc.core.Complete(1)
			lc.mu.Unlock()
			return 1
		}
		for lc.core.Submit(sched.HybridTask{ID: int(seq.Add(1)), Payload: "bench"}) {
		}
		lc.mu.Unlock()
		return 0
	})
	return ops, elapsed, nil
}

// stageDispatchFormed measures DispatchFormed through an attached
// zero-linger former: every refill passes Observe, every drain releases
// formed groups.
func stageDispatchFormed(workers int, d time.Duration) (int64, time.Duration, error) {
	lc, err := newLockedCore(true)
	if err != nil {
		return 0, 0, err
	}
	var seq atomic.Int64
	ops, elapsed := runTimed(workers, d, func() int64 {
		lc.mu.Lock()
		if _, ok, _, _ := lc.core.DispatchFormed(0); ok {
			lc.core.Complete(1)
			lc.mu.Unlock()
			return 1
		}
		f := lc.core.Former()
		for {
			task := sched.HybridTask{ID: int(seq.Add(1)), Payload: "bench"}
			if !lc.core.Submit(task) {
				break
			}
			f.Observe(task, 1)
		}
		lc.mu.Unlock()
		return 0
	})
	return ops, elapsed, nil
}

// stageStealFrom measures StealFrom between two cores: the thief pulls up
// to MaxBatch-sized chunks from a donor the loop keeps refilled. Ops count
// moved tasks.
func stageStealFrom(workers int, d time.Duration) (int64, time.Duration, error) {
	donor, err := newLockedCore(false)
	if err != nil {
		return 0, 0, err
	}
	thief, err := serve.NewPoolCore(8, coreQueueDepth, sched.ClassDSCS, sched.FCFSPolicy{})
	if err != nil {
		return 0, 0, err
	}
	var (
		thiefMu sync.Mutex
		seq     atomic.Int64
	)
	ops, elapsed := runTimed(workers, d, func() int64 {
		donor.mu.Lock()
		thiefMu.Lock()
		moved := thief.StealFrom(donor.core, 8)
		for range moved {
			if _, ok := thief.Dispatch(0); ok {
				thief.Complete(1)
			}
		}
		thiefMu.Unlock()
		if len(moved) == 0 {
			for donor.core.Submit(sched.HybridTask{ID: int(seq.Add(1)), Payload: "bench"}) {
			}
		}
		donor.mu.Unlock()
		return int64(len(moved))
	})
	return ops, elapsed, nil
}

// stageDigestRecord measures metrics.Digest.Record — the lock-free per-P
// staging path every completion takes.
func stageDigestRecord(workers int, d time.Duration) (int64, time.Duration, error) {
	dg := metrics.NewDigest(0)
	ops, elapsed := runTimed(workers, d, func() int64 {
		dg.Record(time.Millisecond)
		return 1
	})
	return ops, elapsed, nil
}

// stageEngine measures the full engine round-trip with execution stubbed
// to a no-op, so the number is the scheduling path itself: admission,
// batching, dispatch, completion bookkeeping, telemetry. The sharded arm
// drives SubmitAsync over the per-P ingress; the baseline arm is the
// pre-shard path — direct admit under the pool lock, one blocking reply
// channel round-trip per call.
func stageEngine(workers int, d time.Duration, sharded bool) (int64, time.Duration, error) {
	return stageEngineOpts(workers, d, sharded, false)
}

// stageEngineOpts additionally arms the elastic worker lifecycle: every
// dispatch then crosses the lifecycle accounting and the autoscaler's
// rate-limited decisions, so the elastic smoke proves elasticity does not
// poison the submit hot path.
func stageEngineOpts(workers int, d time.Duration, sharded, elastic bool) (int64, time.Duration, error) {
	runners, err := Runners()
	if err != nil {
		return 0, 0, err
	}
	opt := serve.Options{
		Workers:    8,
		QueueDepth: coreQueueDepth,
		MaxBatch:   8,
		Execute: func(*faas.Runner, *workload.Benchmark, faas.Options) (faas.Result, error) {
			return faas.Result{}, nil
		},
	}
	if elastic {
		opt.Workers = 0
		opt.MinWorkers, opt.MaxWorkers = 1, 8
		opt.IdleLinger = 10 * time.Millisecond
	}
	if !sharded {
		opt.IngressShards = -1
	}
	eng, err := serve.NewEngine(runners, opt)
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	b := workload.BySlug("chatbot")
	if b == nil {
		return 0, 0, fmt.Errorf("unknown benchmark slug chatbot")
	}
	fopt := faas.Options{Quantile: 0.5}
	var ops int64
	var elapsed time.Duration
	if sharded {
		start := time.Now()
		n, _ := runTimed(workers, d, func() int64 {
			if err := eng.SubmitAsync("Baseline (CPU)", b, fopt); err != nil {
				// Admission bound reached: the workers are behind; yield
				// and retry rather than spinning on the full queue.
				runtime.Gosched()
				return 0
			}
			return 1
		})
		// Sustained means served: the arm's clock runs until the admitted
		// backlog drains, not just until the last successful admit.
		if !eng.Quiesce(30 * time.Second) {
			return 0, 0, fmt.Errorf("engine did not quiesce")
		}
		ops, elapsed = n, time.Since(start)
	} else {
		ops, elapsed = runTimed(workers, d, func() int64 {
			if _, err := eng.Submit("Baseline (CPU)", b, fopt); err != nil {
				runtime.Gosched()
				return 0
			}
			return 1
		})
	}
	if err := eng.Conservation(); err != nil {
		return 0, 0, err
	}
	return ops, elapsed, nil
}
