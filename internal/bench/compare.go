// compare.go is the trajectory gate: it loads a committed BENCH_*.json and
// fails when the current run's sustained submit rates have regressed past
// tolerance. CI runs it against the newest committed report, so a PR that
// slows the submit path down by more than the gate fails before merge.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// DefaultTolerance is the accepted fractional regression in submits/sec
// before Compare fails (20%, per the raw-speed campaign's gate).
const DefaultTolerance = 0.20

// Load reads a report from disk.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// Write stores a report, indented for review-friendly diffs.
func (r *Report) Write(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Compare checks current against committed: every submits/sec key present
// in both must be within tolerance of the committed rate. It returns the
// per-key deltas (for logging) and an error when any key regressed.
func Compare(committed, current *Report, tolerance float64) ([]string, error) {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	keys := make([]string, 0, len(committed.SubmitsPerSec))
	for k := range committed.SubmitsPerSec {
		if _, ok := current.SubmitsPerSec[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return nil, fmt.Errorf("bench: no comparable submits/sec keys between reports")
	}
	var lines []string
	var failed []string
	for _, k := range keys {
		was, now := committed.SubmitsPerSec[k], current.SubmitsPerSec[k]
		delta := 0.0
		if was > 0 {
			delta = (now - was) / was
		}
		lines = append(lines, fmt.Sprintf("%-16s %12.0f -> %12.0f  (%+.1f%%)", k, was, now, delta*100))
		if was > 0 && now < was*(1-tolerance) {
			failed = append(failed, k)
		}
	}
	if len(failed) > 0 {
		return lines, fmt.Errorf("bench: submits/sec regressed past %.0f%% on %v", tolerance*100, failed)
	}
	return lines, nil
}
