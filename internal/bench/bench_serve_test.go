// bench_serve_test.go exposes the hot-path suite to `go test -bench`: the
// same stage bodies dscsbench -hotpath times with fixed-duration loops run
// here under testing.B's iteration control, so `go test -bench=ServeHotPath
// -benchmem` gives per-stage ns/op, B/op, and allocs/op at 1, 8, and 64
// workers, and CI's bench-smoke (`-benchtime=1x`) proves every stage still
// runs. Profiles come free: `go test -bench=ServeHotPathEngine/sharded_w64
// -cpuprofile cpu.out ./internal/bench`.
package bench

import (
	"fmt"
	"testing"
	"time"
)

// benchStage adapts a fixed-duration stage to testing.B: each b.N batch
// runs the stage body for a duration proportional to b.N so short smoke
// runs (-benchtime=1x) stay fast while real runs measure steadily.
func benchStage(b *testing.B, workers int,
	fn func(workers int, d time.Duration) (int64, time.Duration, error)) {
	b.Helper()
	b.ReportAllocs()
	// One iteration of the testing.B loop = one fixed-duration stage run;
	// report per-op figures from the stage's own op count.
	var ops int64
	var elapsed time.Duration
	d := 2 * time.Millisecond
	if b.N > 1 {
		d = 20 * time.Millisecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, e, err := fn(workers, d)
		if err != nil {
			b.Fatal(err)
		}
		ops += n
		elapsed += e
	}
	b.StopTimer()
	if ops > 0 {
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(ops), "ns/req")
		b.ReportMetric(float64(ops)/elapsed.Seconds(), "req/s")
	}
}

func forWorkers(b *testing.B, fn func(workers int, d time.Duration) (int64, time.Duration, error)) {
	b.Helper()
	for _, w := range Workers {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchStage(b, w, fn) })
	}
}

func BenchmarkServeHotPathSubmit(b *testing.B)         { forWorkers(b, stageSubmit) }
func BenchmarkServeHotPathDispatch(b *testing.B)       { forWorkers(b, stageDispatch) }
func BenchmarkServeHotPathDispatchFormed(b *testing.B) { forWorkers(b, stageDispatchFormed) }
func BenchmarkServeHotPathStealFrom(b *testing.B)      { forWorkers(b, stageStealFrom) }
func BenchmarkServeHotPathDigestRecord(b *testing.B)   { forWorkers(b, stageDigestRecord) }

func BenchmarkServeHotPathEngine(b *testing.B) {
	for _, arm := range []struct {
		name    string
		sharded bool
	}{{"baseline", false}, {"sharded", true}} {
		for _, w := range Workers {
			b.Run(fmt.Sprintf("%s_w%d", arm.name, w), func(b *testing.B) {
				benchStage(b, w, func(workers int, d time.Duration) (int64, time.Duration, error) {
					return stageEngine(workers, d, arm.sharded)
				})
			})
		}
	}
}

// BenchmarkServeHotPathElastic runs the sharded engine arm with the worker
// lifecycle armed (1..8 warm slots, reactive autoscaler): CI's
// `-bench=ServeHotPath -benchtime=1x` smoke proves elastic capacity keeps
// serving on the same hot path, and real runs price the lifecycle tax.
func BenchmarkServeHotPathElastic(b *testing.B) {
	for _, w := range Workers {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			benchStage(b, w, func(workers int, d time.Duration) (int64, time.Duration, error) {
				return stageEngineOpts(workers, d, true, true)
			})
		})
	}
}
