// encode.go serializes compiled programs to a compact line-oriented text
// format and parses them back. The deployment flow needs this: the compiler
// runs at function-packaging time and the executable ships inside the
// function's container (Section 5.1), so programs must survive a round trip
// through the image.
package isa

import (
	"bufio"
	"fmt"
	"strings"

	"dscs/internal/units"
)

// formatVersion guards the serialized layout.
const formatVersion = 1

// Marshal renders a program in the container-image format.
func Marshal(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dscs-program v%d name=%s batch=%d instrs=%d\n",
		formatVersion, p.Name, p.Batch, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpGEMMLoop:
			fmt.Fprintf(&sb, "G %s %d %d %d %d %d %d %d %d %d %d %d %d\n",
				quote(in.Layer), in.M, in.K, in.N, in.Count,
				in.TileM, in.TileK, in.TileN, int(in.Order),
				int64(in.WeightBytes), int64(in.InputBytes), int64(in.OutputBytes),
				int(in.FusedVec))
		case OpVectorLoop:
			onChip := 0
			if in.OnChip {
				onChip = 1
			}
			fmt.Fprintf(&sb, "V %s %d %d %d\n", quote(in.Layer), int(in.Vec), in.Elems, onChip)
		case OpLoad:
			fmt.Fprintf(&sb, "L %s %d\n", quote(in.Layer), int64(in.Bytes))
		case OpStore:
			fmt.Fprintf(&sb, "S %s %d\n", quote(in.Layer), int64(in.Bytes))
		case OpSync:
			fmt.Fprintf(&sb, "Y\n")
		}
	}
	return sb.String()
}

// quote makes layer names single-token (names use [-_./a-z0-9]).
func quote(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ReplaceAll(s, " ", "~")
}

func unquote2(s string) string {
	if s == "_" {
		return ""
	}
	return strings.ReplaceAll(s, "~", " ")
}

// Unmarshal parses the container-image format back into a program and
// validates it.
func Unmarshal(src string) (*Program, error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("isa: empty program text")
	}
	header := sc.Text()
	var version, batch, count int
	var name string
	if _, err := fmt.Sscanf(header, "dscs-program v%d name=%s batch=%d instrs=%d",
		&version, &name, &batch, &count); err != nil {
		return nil, fmt.Errorf("isa: bad header %q: %v", header, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("isa: unsupported format version %d", version)
	}
	p := &Program{Name: name, Batch: batch, Instrs: make([]Instr, 0, count)}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		in, err := parseInstr(text)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", line, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if len(p.Instrs) != count {
		return nil, fmt.Errorf("isa: header promised %d instrs, found %d", count, len(p.Instrs))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInstr(text string) (Instr, error) {
	fields := strings.Fields(text)
	switch fields[0] {
	case "G":
		if len(fields) != 14 {
			return Instr{}, fmt.Errorf("gemm needs 14 fields, have %d", len(fields))
		}
		var v [12]int64
		for i := range v {
			if _, err := fmt.Sscanf(fields[i+2], "%d", &v[i]); err != nil {
				return Instr{}, fmt.Errorf("bad gemm field %d: %v", i, err)
			}
		}
		return Instr{
			Op: OpGEMMLoop, Layer: unquote2(fields[1]),
			M: int(v[0]), K: int(v[1]), N: int(v[2]), Count: int(v[3]),
			TileM: int(v[4]), TileK: int(v[5]), TileN: int(v[6]),
			Order:       LoopOrder(v[7]),
			WeightBytes: units.Bytes(v[8]), InputBytes: units.Bytes(v[9]),
			OutputBytes: units.Bytes(v[10]),
			FusedVec:    VectorKind(v[11]),
		}, nil
	case "V":
		if len(fields) != 5 {
			return Instr{}, fmt.Errorf("vector needs 5 fields, have %d", len(fields))
		}
		var kind, onChip int
		var elems int64
		if _, err := fmt.Sscanf(fields[2]+" "+fields[3]+" "+fields[4], "%d %d %d",
			&kind, &elems, &onChip); err != nil {
			return Instr{}, err
		}
		return Instr{
			Op: OpVectorLoop, Layer: unquote2(fields[1]),
			Vec: VectorKind(kind), Elems: elems, OnChip: onChip == 1,
		}, nil
	case "L", "S":
		if len(fields) != 3 {
			return Instr{}, fmt.Errorf("load/store needs 3 fields, have %d", len(fields))
		}
		var b int64
		if _, err := fmt.Sscanf(fields[2], "%d", &b); err != nil {
			return Instr{}, err
		}
		op := OpLoad
		if fields[0] == "S" {
			op = OpStore
		}
		return Instr{Op: op, Layer: unquote2(fields[1]), Bytes: units.Bytes(b)}, nil
	case "Y":
		return Instr{Op: OpSync}, nil
	}
	return Instr{}, fmt.Errorf("unknown opcode %q", fields[0])
}
