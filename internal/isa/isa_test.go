package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"dscs/internal/units"
)

func gemm(m, k, n, tm, tk, tn int) Instr {
	return Instr{
		Op: OpGEMMLoop, Layer: "l", M: m, K: k, N: n, Count: 1,
		TileM: tm, TileK: tk, TileN: tn,
		WeightBytes: units.Bytes(k * n), InputBytes: units.Bytes(m * k),
		OutputBytes: units.Bytes(m * n),
	}
}

func TestMACs(t *testing.T) {
	in := gemm(128, 768, 768, 128, 128, 128)
	if got := in.MACs(); got != 128*768*768 {
		t.Fatalf("MACs = %d", got)
	}
	in.Count = 12
	if got := in.MACs(); got != 12*128*768*768 {
		t.Fatalf("MACs with count = %d", got)
	}
	v := Instr{Op: OpVectorLoop, Elems: 100}
	if v.MACs() != 0 {
		t.Fatal("vector op must have 0 MACs")
	}
}

func TestTiles(t *testing.T) {
	in := gemm(100, 300, 128, 32, 128, 128)
	nM, nK, nN := in.Tiles()
	if nM != 4 || nK != 3 || nN != 1 {
		t.Fatalf("tiles = %d,%d,%d", nM, nK, nN)
	}
	bad := Instr{Op: OpGEMMLoop}
	if a, b, c := bad.Tiles(); a != 0 || b != 0 || c != 0 {
		t.Fatal("zero tiles for unset dims")
	}
}

func TestDRAMBytes(t *testing.T) {
	in := gemm(10, 20, 30, 10, 20, 30)
	want := units.Bytes(20*30 + 10*20 + 10*30)
	if in.DRAMBytes() != want {
		t.Fatalf("gemm dram = %v, want %v", in.DRAMBytes(), want)
	}
	v := Instr{Op: OpVectorLoop, Elems: 50}
	if v.DRAMBytes() != 100 {
		t.Fatalf("vector dram = %v, want 100", v.DRAMBytes())
	}
	v.OnChip = true
	if v.DRAMBytes() != 0 {
		t.Fatal("on-chip vector op must not touch DRAM")
	}
	ld := Instr{Op: OpLoad, Bytes: 4096}
	if ld.DRAMBytes() != 4096 {
		t.Fatal("load dram mismatch")
	}
	if (&Instr{Op: OpSync}).DRAMBytes() != 0 {
		t.Fatal("sync moves no data")
	}
}

func TestProgramAggregates(t *testing.T) {
	p := &Program{Name: "t", Batch: 1, Instrs: []Instr{
		{Op: OpLoad, Layer: "in", Bytes: 1000},
		gemm(10, 20, 30, 10, 20, 30),
		{Op: OpVectorLoop, Layer: "act", Vec: VecReLU, Elems: 300},
		{Op: OpStore, Layer: "out", Bytes: 300},
	}}
	if p.MACs() != 10*20*30 {
		t.Fatalf("program MACs = %d", p.MACs())
	}
	if p.VectorElems() != 300 {
		t.Fatalf("program vector elems = %d", p.VectorElems())
	}
	// load 1000 + gemm (weights 600, inputs 200, outputs 300)
	// + vector 2*300 + store 300.
	want := units.Bytes(1000 + 600 + 200 + 300 + 600 + 300)
	if p.DRAMBytes() != want {
		t.Fatalf("program dram = %v, want %v", p.DRAMBytes(), want)
	}
}

func TestValidate(t *testing.T) {
	good := &Program{Instrs: []Instr{gemm(10, 20, 30, 10, 20, 30)}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Instr{
		{Op: OpGEMMLoop, M: 0, K: 1, N: 1, Count: 1, TileM: 1, TileK: 1, TileN: 1},
		{Op: OpGEMMLoop, M: 4, K: 4, N: 4, Count: 1, TileM: 0, TileK: 1, TileN: 1},
		{Op: OpGEMMLoop, M: 4, K: 4, N: 4, Count: 1, TileM: 8, TileK: 4, TileN: 4},
		{Op: OpVectorLoop, Elems: 0},
		{Op: OpLoad, Bytes: -1},
	}
	for i, in := range cases {
		p := &Program{Instrs: []Instr{in}}
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := &Program{Name: "resnet", Batch: 2, Instrs: []Instr{
		{Op: OpLoad, Layer: "input", Bytes: 1024},
		func() Instr { in := gemm(64, 64, 64, 32, 64, 64); in.FusedVec = VecReLU; return in }(),
		{Op: OpVectorLoop, Layer: "softmax", Vec: VecSoftmax, Elems: 1000, OnChip: true},
		{Op: OpSync},
	}}
	text := p.Disassemble()
	for _, want := range []string{"program resnet batch=2", "gemm.loop+relu",
		"vec.loop.softmax", "onchip", "load", "sync"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestVectorCosts(t *testing.T) {
	if VecReLU.VectorCost() != 1 {
		t.Error("relu should be single-cycle")
	}
	if VecGeLU.VectorCost() <= VecReLU.VectorCost() {
		t.Error("gelu must cost more than relu")
	}
	if VecNorm.VectorCost() <= VecSoftmax.VectorCost()-3 {
		t.Error("norm should be the most expensive reduction")
	}
	if VecNone.VectorCost() != 0 {
		t.Error("nop must be free")
	}
}

func TestOpcodeAndKindNames(t *testing.T) {
	ops := map[Opcode]string{OpGEMMLoop: "gemm.loop", OpVectorLoop: "vec.loop",
		OpLoad: "load", OpStore: "store", OpSync: "sync"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d name = %q", op, op.String())
		}
	}
	if WeightStationary.String() == InputStationary.String() {
		t.Error("loop orders must render differently")
	}
	for v := VecNone; v <= VecPreprocess; v++ {
		if v.String() == "unknown" {
			t.Errorf("vector kind %d has no name", v)
		}
	}
}

func TestTileSumsProperty(t *testing.T) {
	// ceil-div grid covers dims exactly: nX*tileX >= X > (nX-1)*tileX.
	f := func(m, tm uint8) bool {
		M, TM := int(m)+1, int(tm%32)+1
		if TM > M {
			TM = M
		}
		in := gemm(M, 8, 8, TM, 8, 8)
		nM, _, _ := in.Tiles()
		return nM*TM >= M && (nM-1)*TM < M
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
