package isa

import (
	"strings"
	"testing"

	"dscs/internal/units"
)

func sampleProgram() *Program {
	return &Program{Name: "resnet-50", Batch: 2, Instrs: []Instr{
		{Op: OpLoad, Layer: "input", Bytes: units.Bytes(2 * 224 * 224 * 3)},
		{
			Op: OpGEMMLoop, Layer: "conv1",
			M: 12544, K: 147, N: 64, Count: 1,
			TileM: 1024, TileK: 128, TileN: 64,
			Order:       InputStationary,
			WeightBytes: 9408, InputBytes: units.Bytes(12544 * 147),
			OutputBytes: units.Bytes(12544 * 64), FusedVec: VecReLU,
		},
		{Op: OpVectorLoop, Layer: "pool1", Vec: VecPool, Elems: 802816, OnChip: true},
		{Op: OpSync},
		{Op: OpStore, Layer: "output", Bytes: 2000},
	}}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := sampleProgram()
	text := Marshal(p)
	back, err := Unmarshal(text)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, text)
	}
	if back.Name != p.Name || back.Batch != p.Batch || len(back.Instrs) != len(p.Instrs) {
		t.Fatalf("header mismatch: %+v", back)
	}
	for i := range p.Instrs {
		if p.Instrs[i] != back.Instrs[i] {
			t.Errorf("instr %d mismatch:\n  want %+v\n  got  %+v",
				i, p.Instrs[i], back.Instrs[i])
		}
	}
	// Derived aggregates survive the trip.
	if back.MACs() != p.MACs() || back.DRAMBytes() != p.DRAMBytes() {
		t.Error("aggregates changed across the round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header",
		"dscs-program v99 name=x batch=1 instrs=0",
		"dscs-program v1 name=x batch=1 instrs=2\nY",       // count mismatch
		"dscs-program v1 name=x batch=1 instrs=1\nQ what",  // unknown opcode
		"dscs-program v1 name=x batch=1 instrs=1\nG a 1 2", // truncated gemm
		"dscs-program v1 name=x batch=1 instrs=1\nL in notanumber",
		// Structurally invalid program (tile exceeds dims).
		"dscs-program v1 name=x batch=1 instrs=1\nG l 4 4 4 1 8 4 4 0 16 16 16 0",
	}
	for i, src := range cases {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}

func TestQuotingLayerNames(t *testing.T) {
	p := &Program{Name: "t", Batch: 1, Instrs: []Instr{
		{Op: OpLoad, Layer: "name with spaces", Bytes: 10},
		{Op: OpStore, Layer: "", Bytes: 10},
	}}
	back, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.Instrs[0].Layer != "name with spaces" {
		t.Errorf("spaced name = %q", back.Instrs[0].Layer)
	}
	if back.Instrs[1].Layer != "" {
		t.Errorf("empty name = %q", back.Instrs[1].Layer)
	}
}

func TestMarshalIsLineOriented(t *testing.T) {
	text := Marshal(sampleProgram())
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 6 { // header + 5 instructions
		t.Fatalf("marshal produced %d lines, want 6:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "dscs-program v1") {
		t.Errorf("bad header %q", lines[0])
	}
}
