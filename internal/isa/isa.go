// Package isa defines the instruction set of the in-storage domain-specific
// accelerator. Programs are sequences of loop descriptors — one GEMM loop or
// vector loop per fused operator — mirroring how tensor accelerators encode
// work as tiled tensor descriptors rather than scalar instruction streams.
//
// The compiler (internal/compiler) emits programs; the cycle-level simulator
// (internal/dsa) executes them.
package isa

import (
	"fmt"
	"strings"

	"dscs/internal/units"
)

// Opcode identifies an instruction kind.
type Opcode int

// Instruction kinds.
const (
	OpGEMMLoop   Opcode = iota // tiled matrix multiply on the MPU
	OpVectorLoop               // elementwise/reduction work on the VPU
	OpLoad                     // stage function input from drive DRAM
	OpStore                    // store function output to drive DRAM
	OpSync                     // barrier between MPU and VPU streams
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpGEMMLoop:
		return "gemm.loop"
	case OpVectorLoop:
		return "vec.loop"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// VectorKind identifies a VPU operation.
type VectorKind int

// VPU operations, with per-element cost factors defined in VectorCost.
const (
	VecNone VectorKind = iota
	VecReLU
	VecLeakyReLU
	VecGeLU
	VecTanh
	VecSigmoid
	VecAdd
	VecMul
	VecSoftmax
	VecNorm
	VecPool
	VecCast
	VecTranspose
	VecEmbed
	VecPreprocess
	// VecDWConv is a depthwise convolution executed on the VPU: per-channel
	// kernels are array-hostile on the systolic MPU (they fill one column),
	// so the compiler maps them to the vector lanes instead.
	VecDWConv
)

// String names the vector op.
func (v VectorKind) String() string {
	names := map[VectorKind]string{
		VecNone: "nop", VecReLU: "relu", VecLeakyReLU: "lrelu",
		VecGeLU: "gelu", VecTanh: "tanh", VecSigmoid: "sigmoid",
		VecAdd: "add", VecMul: "mul", VecSoftmax: "softmax",
		VecNorm: "norm", VecPool: "pool", VecCast: "cast",
		VecTranspose: "transpose", VecEmbed: "embed", VecPreprocess: "prep",
		VecDWConv: "dwconv",
	}
	if s, ok := names[v]; ok {
		return s
	}
	return "unknown"
}

// VectorCost returns the per-element cycle cost of the op on one VPU lane.
// Transcendentals run on the VPU's non-linear unit in a few cycles; simple
// arithmetic is single-cycle.
func (v VectorKind) VectorCost() int {
	switch v {
	case VecGeLU, VecTanh, VecSigmoid:
		return 4
	case VecSoftmax:
		return 6
	case VecNorm:
		return 8
	case VecPreprocess:
		return 2
	case VecNone:
		return 0
	default:
		return 1
	}
}

// LoopOrder selects the GEMM dataflow the compiler chose for a layer.
type LoopOrder int

// Dataflows: which operand stays resident while the other streams.
const (
	WeightStationary LoopOrder = iota // (k,n) outer, m inner: weights amortized
	InputStationary                   // m outer: input panel amortized
)

// String names the loop order.
func (l LoopOrder) String() string {
	if l == InputStationary {
		return "input-stationary"
	}
	return "weight-stationary"
}

// Instr is one loop descriptor. Field groups are used according to Op.
type Instr struct {
	Op    Opcode
	Layer string // source layer name, for attribution and debugging

	// GEMM loop: Count independent (M x K) * (K x N) products tiled as
	// TileM/TileK/TileN under the chosen loop order.
	M, K, N, Count      int
	TileM, TileK, TileN int
	Order               LoopOrder

	// DRAM traffic the loop performs, computed by the compiler from the
	// dataflow (includes re-reads forced by tiling).
	WeightBytes units.Bytes
	InputBytes  units.Bytes
	OutputBytes units.Bytes

	// FusedVec is the activation the MPU epilogue applies in-flight.
	FusedVec VectorKind

	// Vector loop.
	Vec    VectorKind
	Elems  int64
	OnChip bool // operands resident in the shared output buffer (fused chain)

	// Load/Store payload.
	Bytes units.Bytes
}

// MACs returns the multiply-accumulate count of a GEMM loop (0 otherwise).
func (in *Instr) MACs() int64 {
	if in.Op != OpGEMMLoop {
		return 0
	}
	return int64(in.M) * int64(in.K) * int64(in.N) * int64(in.Count)
}

// Tiles returns the tile grid dimensions of a GEMM loop.
func (in *Instr) Tiles() (nM, nK, nN int) {
	if in.TileM <= 0 || in.TileK <= 0 || in.TileN <= 0 {
		return 0, 0, 0
	}
	return ceilDiv(in.M, in.TileM), ceilDiv(in.K, in.TileK), ceilDiv(in.N, in.TileN)
}

// DRAMBytes returns the loop's total DRAM traffic.
func (in *Instr) DRAMBytes() units.Bytes {
	switch in.Op {
	case OpGEMMLoop:
		return in.WeightBytes + in.InputBytes + in.OutputBytes
	case OpVectorLoop:
		if in.OnChip {
			return 0
		}
		return units.Bytes(2 * in.Elems)
	case OpLoad, OpStore:
		return in.Bytes
	}
	return 0
}

// String disassembles the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpGEMMLoop:
		nM, nK, nN := in.Tiles()
		fused := ""
		if in.FusedVec != VecNone {
			fused = "+" + in.FusedVec.String()
		}
		return fmt.Sprintf("gemm.loop%-9s %-24s M=%d K=%d N=%d x%d tile=(%d,%d,%d) grid=(%d,%d,%d) %s dram=%v",
			fused, in.Layer, in.M, in.K, in.N, in.Count,
			in.TileM, in.TileK, in.TileN, nM, nK, nN, in.Order, in.DRAMBytes())
	case OpVectorLoop:
		loc := "dram"
		if in.OnChip {
			loc = "onchip"
		}
		return fmt.Sprintf("vec.loop.%-8s %-24s elems=%d %s", in.Vec, in.Layer, in.Elems, loc)
	case OpLoad:
		return fmt.Sprintf("load              %-24s bytes=%v", in.Layer, in.Bytes)
	case OpStore:
		return fmt.Sprintf("store             %-24s bytes=%v", in.Layer, in.Bytes)
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// Program is a compiled executable for one function at one batch size.
type Program struct {
	Name   string
	Batch  int
	Instrs []Instr
}

// MACs totals the program's multiply-accumulates.
func (p *Program) MACs() int64 {
	var n int64
	for i := range p.Instrs {
		n += p.Instrs[i].MACs()
	}
	return n
}

// DRAMBytes totals the program's DRAM traffic.
func (p *Program) DRAMBytes() units.Bytes {
	var n units.Bytes
	for i := range p.Instrs {
		n += p.Instrs[i].DRAMBytes()
	}
	return n
}

// VectorElems totals the VPU element work (including fused epilogues, which
// run on the MPU's output path and are excluded here).
func (p *Program) VectorElems() int64 {
	var n int64
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpVectorLoop {
			n += p.Instrs[i].Elems
		}
	}
	return n
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s batch=%d (%d instrs, %d MACs, %v DRAM)\n",
		p.Name, p.Batch, len(p.Instrs), p.MACs(), p.DRAMBytes())
	for i := range p.Instrs {
		sb.WriteString(p.Instrs[i].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Validate checks structural invariants: tiles within dims, positive sizes.
func (p *Program) Validate() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpGEMMLoop:
			if in.M <= 0 || in.K <= 0 || in.N <= 0 || in.Count <= 0 {
				return fmt.Errorf("isa: instr %d (%s): non-positive GEMM dims", i, in.Layer)
			}
			if in.TileM <= 0 || in.TileK <= 0 || in.TileN <= 0 {
				return fmt.Errorf("isa: instr %d (%s): non-positive tile dims", i, in.Layer)
			}
			if in.TileM > in.M || in.TileK > in.K || in.TileN > in.N {
				return fmt.Errorf("isa: instr %d (%s): tile exceeds GEMM dims", i, in.Layer)
			}
		case OpVectorLoop:
			if in.Elems <= 0 {
				return fmt.Errorf("isa: instr %d (%s): non-positive vector elems", i, in.Layer)
			}
		case OpLoad, OpStore:
			if in.Bytes < 0 {
				return fmt.Errorf("isa: instr %d (%s): negative payload", i, in.Layer)
			}
		}
	}
	return nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
