// Package ssd models the SSD controller: the NVMe host command path, ECC,
// the DRAM staging buffer, and the composition of flash-array timing with
// the host PCIe link. The DSCS-Drive (internal/csd) embeds this controller
// and adds the accelerator and P2P path.
package ssd

import (
	"fmt"
	"sync"
	"time"

	"dscs/internal/flash"
	"dscs/internal/pcie"
	"dscs/internal/units"
)

// Config parameterizes the controller.
type Config struct {
	Geometry flash.Geometry
	HostLink pcie.Link

	// NVMeSubmission is the command path cost (doorbell, fetch, parse).
	NVMeSubmission time.Duration
	// ECCPerPage is the decode/encode cost per flash page.
	ECCPerPage time.Duration
	// StagingDRAMBW is the controller DRAM buffer bandwidth.
	StagingDRAMBW units.Bandwidth

	// IdlePower and ActivePower bound the drive's electrical envelope
	// (flash + controller, excluding any accelerator).
	IdlePower   units.Power
	ActivePower units.Power
}

// SmartSSDClass returns a controller in the Samsung SmartSSD's class:
// PCIe Gen3 x4 host link, 25 W drive TDP shared with the accelerator.
func SmartSSDClass() Config {
	return Config{
		Geometry:       flash.SmartSSDClass(),
		HostLink:       pcie.Gen3x4(),
		NVMeSubmission: 5 * time.Microsecond,
		ECCPerPage:     2 * time.Microsecond,
		StagingDRAMBW:  12 * units.GBps,
		IdlePower:      2.0,
		ActivePower:    9.0,
	}
}

// Validate rejects incomplete configs.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.HostLink.Validate(); err != nil {
		return err
	}
	if c.NVMeSubmission <= 0 || c.ECCPerPage < 0 || c.StagingDRAMBW <= 0 {
		return fmt.Errorf("ssd: non-positive controller timing")
	}
	if c.ActivePower <= 0 || c.IdlePower < 0 || c.IdlePower > c.ActivePower {
		return fmt.Errorf("ssd: inconsistent power envelope")
	}
	return nil
}

// Drive is one SSD instance. It is safe for concurrent use: one lock
// serializes command processing, as a real controller does per queue pair
// (the flash array's FTL state is only reachable through it).
type Drive struct {
	cfg   Config
	array *flash.Array

	mu                  sync.Mutex
	reads, writes       int64
	bytesRead, bytesOut units.Bytes
}

// New returns a drive with an empty flash array.
func New(cfg Config) (*Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arr, err := flash.NewArray(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	return &Drive{cfg: cfg, array: arr}, nil
}

// Config returns the drive configuration.
func (d *Drive) Config() Config { return d.cfg }

// Array exposes the flash array (the CSD's P2P path reads it directly).
func (d *Drive) Array() *flash.Array { return d.array }

// pages returns the page count spanning n bytes.
func (d *Drive) pages(n units.Bytes) int64 {
	ps := d.cfg.Geometry.PageSize
	if n <= 0 {
		return 0
	}
	return int64((n + ps - 1) / ps)
}

// ecc returns the ECC pipeline cost for n bytes. The decoder is pipelined
// with the channel transfer, so only a per-command fixed depth plus a
// throughput bound shows up.
func (d *Drive) ecc(n units.Bytes) time.Duration {
	pages := d.pages(n)
	if pages == 0 {
		return 0
	}
	// Pipeline depth: one page's decode; the rest overlaps.
	return d.cfg.ECCPerPage + time.Duration(pages/8)*d.cfg.ECCPerPage
}

// HostRead returns the end-to-end latency and device energy of a host NVMe
// read of n bytes at a logical offset: command path + flash + ECC + staging
// + host PCIe transfer.
func (d *Drive) HostRead(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	flashLat, flashEnergy := d.array.ReadBytes(offset, n)
	lat := d.cfg.NVMeSubmission + flashLat + d.ecc(n) +
		d.cfg.StagingDRAMBW.TransferTime(n) + d.cfg.HostLink.TransferTime(n)
	energy := flashEnergy + d.cfg.HostLink.TransferEnergy(n) +
		d.cfg.ActivePower.Times(lat)
	d.reads++
	d.bytesRead += n
	return lat, energy
}

// HostWrite returns the latency and energy of a host NVMe write. Writes
// acknowledge once staged in controller DRAM; flash programming continues
// in the background, so only a fraction of tPROG shows on the host path
// unless the device is saturated — we charge the staging path plus one
// program wave for durability, matching datacenter fsync'd writes.
func (d *Drive) HostWrite(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	progLat, progEnergy := d.array.WriteBytes(offset, n)
	lat := d.cfg.NVMeSubmission + d.cfg.HostLink.TransferTime(n) +
		d.cfg.StagingDRAMBW.TransferTime(n) + d.ecc(n) + progLat
	energy := progEnergy + d.cfg.HostLink.TransferEnergy(n) +
		d.cfg.ActivePower.Times(lat)
	d.writes++
	d.bytesOut += n
	return lat, energy
}

// InternalRead is the device-side read (no host link): flash + ECC +
// staging into drive DRAM. The CSD's P2P path is built on this.
func (d *Drive) InternalRead(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	flashLat, flashEnergy := d.array.ReadBytes(offset, n)
	lat := flashLat + d.ecc(n) + d.cfg.StagingDRAMBW.TransferTime(n)
	d.reads++
	d.bytesRead += n
	return lat, flashEnergy + d.cfg.ActivePower.Times(lat)
}

// InternalWrite is the device-side write used by the P2P result path.
func (d *Drive) InternalWrite(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	progLat, progEnergy := d.array.WriteBytes(offset, n)
	lat := d.cfg.StagingDRAMBW.TransferTime(n) + d.ecc(n) + progLat
	d.writes++
	d.bytesOut += n
	return lat, progEnergy + d.cfg.ActivePower.Times(lat)
}

// Counters reports operation counts and byte totals.
func (d *Drive) Counters() (reads, writes int64, bytesRead, bytesWritten units.Bytes) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.bytesRead, d.bytesOut
}
