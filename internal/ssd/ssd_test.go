package ssd

import (
	"testing"
	"time"

	"dscs/internal/units"
)

func newDrive(t *testing.T) *Drive {
	t.Helper()
	d, err := New(SmartSSDClass())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := SmartSSDClass().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := SmartSSDClass()
	bad.NVMeSubmission = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero submission cost should fail")
	}
	bad2 := SmartSSDClass()
	bad2.IdlePower = 20
	if err := bad2.Validate(); err == nil {
		t.Error("idle above active should fail")
	}
	bad3 := SmartSSDClass()
	bad3.HostLink.Lanes = 3
	if err := bad3.Validate(); err == nil {
		t.Error("invalid link should fail")
	}
}

func TestHostReadLatencyComposition(t *testing.T) {
	d := newDrive(t)
	d.HostWrite(0, 4*units.MiB)
	lat, energy := d.HostRead(0, 4*units.MiB)
	if energy <= 0 {
		t.Fatal("read energy must be positive")
	}
	// Must exceed the bare PCIe transfer (flash + ECC + staging add up)...
	pcieOnly := d.Config().HostLink.TransferTime(4 * units.MiB)
	if lat <= pcieOnly {
		t.Errorf("host read %v should exceed PCIe-only %v", lat, pcieOnly)
	}
	// ...but stay within single-digit milliseconds for 4 MiB.
	if lat > 10*time.Millisecond {
		t.Errorf("host read of 4MiB = %v, implausibly slow", lat)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	d := newDrive(t)
	wLat, _ := d.HostWrite(0, 2*units.MiB)
	rLat, _ := d.HostRead(0, 2*units.MiB)
	if wLat <= rLat {
		t.Errorf("program %v should exceed read %v", wLat, rLat)
	}
}

func TestInternalBypassesHostLink(t *testing.T) {
	d := newDrive(t)
	d.HostWrite(0, 8*units.MiB)
	hostLat, _ := d.HostRead(0, 8*units.MiB)
	internalLat, _ := d.InternalRead(0, 8*units.MiB)
	if internalLat >= hostLat {
		t.Errorf("internal read %v should beat host read %v", internalLat, hostLat)
	}
	// The saving should be at least the NVMe submission cost.
	if hostLat-internalLat < d.Config().NVMeSubmission {
		t.Errorf("internal path saves too little: %v", hostLat-internalLat)
	}
}

func TestInternalWrite(t *testing.T) {
	d := newDrive(t)
	lat, energy := d.InternalWrite(0, units.MiB)
	if lat <= 0 || energy <= 0 {
		t.Fatalf("internal write lat=%v energy=%v", lat, energy)
	}
}

func TestCounters(t *testing.T) {
	d := newDrive(t)
	d.HostWrite(0, units.MiB)
	d.HostRead(0, units.MiB)
	d.InternalRead(0, 2*units.MiB)
	reads, writes, br, bw := d.Counters()
	if reads != 2 || writes != 1 {
		t.Errorf("counters reads=%d writes=%d", reads, writes)
	}
	if br != 3*units.MiB || bw != units.MiB {
		t.Errorf("byte counters read=%v written=%v", br, bw)
	}
}

func TestECCPipelined(t *testing.T) {
	d := newDrive(t)
	// ECC for one page is its fixed depth; for many pages it grows slowly
	// (pipelined with the channel transfer).
	one := d.ecc(16 * units.KiB)
	many := d.ecc(16 * 64 * units.KiB)
	if one != d.Config().ECCPerPage {
		t.Errorf("single-page ECC = %v", one)
	}
	if many >= 64*one {
		t.Errorf("ECC must be pipelined: %v for 64 pages vs %v for one", many, one)
	}
}

func TestLargeReadApproachesLinkBandwidth(t *testing.T) {
	d := newDrive(t)
	const size = 64 * units.MiB
	d.HostWrite(0, size)
	lat, _ := d.HostRead(0, size)
	// Host link ~3.5 GB/s is the bottleneck: 64 MiB ~ 19 ms; the full path
	// should land within 3x of that.
	floor := d.Config().HostLink.TransferTime(size)
	if lat < floor {
		t.Errorf("read %v beats the link floor %v", lat, floor)
	}
	if lat > 3*floor {
		t.Errorf("read %v more than 3x the link floor %v", lat, floor)
	}
}
