package platform

import (
	"testing"
	"time"

	"dscs/internal/model"
)

func TestAllPlatformsComplete(t *testing.T) {
	ps := All()
	if len(ps) != 7 {
		t.Fatalf("lineup has %d platforms, want 7 (Table 2)", len(ps))
	}
	seen := map[string]bool{}
	g := model.ResNet18Moderation()
	for _, p := range ps {
		if seen[p.Name()] {
			t.Errorf("duplicate platform %q", p.Name())
		}
		seen[p.Name()] = true
		if p.TDP() <= 0 || p.Price() <= 0 {
			t.Errorf("%s: degenerate TDP/price", p.Name())
		}
		lat, energy, err := p.Infer(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if lat <= 0 || energy <= 0 {
			t.Errorf("%s: degenerate inference %v/%v", p.Name(), lat, energy)
		}
	}
}

func TestClassPartitioning(t *testing.T) {
	classes := map[string]Class{
		"Baseline (CPU)":     Traditional,
		"GPU (2080 Ti)":      Traditional,
		"FPGA (U280)":        Traditional,
		"NS-ARM":             NearStorage,
		"NS-Mobile-GPU":      NearStorage,
		"NS-FPGA (SmartSSD)": NearStorage,
		"DSCS-Serverless":    InStorageDSA,
	}
	for _, p := range All() {
		want, ok := classes[p.Name()]
		if !ok {
			t.Fatalf("unexpected platform %q", p.Name())
		}
		if p.Class() != want {
			t.Errorf("%s class = %v, want %v", p.Name(), p.Class(), want)
		}
		if p.NearStorage() != (want != Traditional) {
			t.Errorf("%s NearStorage inconsistent with class", p.Name())
		}
	}
}

func TestComputeOrdering(t *testing.T) {
	// Raw inference latency ordering on a CNN: DSA < GPU < CPU < ARM.
	g := model.ResNet50()
	lat := func(p Compute) time.Duration {
		l, _, err := p.Infer(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	dsa := lat(DSCS())
	gpu := lat(GPU())
	cpu := lat(BaselineCPU())
	arm := lat(NSARM())
	if !(dsa < gpu && gpu < cpu && cpu < arm) {
		t.Errorf("compute ordering violated: dsa=%v gpu=%v cpu=%v arm=%v",
			dsa, gpu, cpu, arm)
	}
}

func TestGPUBatchUtilization(t *testing.T) {
	// GPUs are underutilized at batch 1 (the paper's observation): per-item
	// latency at batch 16 must be far below batch 1.
	g := model.ResNet50()
	gpu := GPU()
	l1, _, _ := gpu.Infer(g, 1)
	l16, _, _ := gpu.Infer(g, 16)
	perItem := l16 / 16
	if float64(l1)/float64(perItem) < 2 {
		t.Errorf("GPU batching gain too small: %v vs %v/item", l1, perItem)
	}
}

func TestDeviceCopyLinks(t *testing.T) {
	if _, ok := BaselineCPU().DeviceCopy(); ok {
		t.Error("CPU needs no device copies")
	}
	link, ok := GPU().DeviceCopy()
	if !ok || link.Lanes != 16 {
		t.Errorf("GPU should sit on x16: %v ok=%v", link, ok)
	}
}

func TestDSAPlatformMemoization(t *testing.T) {
	p := DSCS().(*DSAPlatform)
	g := model.InceptionV3Clinical()
	l1, e1, err := p.Infer(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, e2, err := p.Infer(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 || e1 != e2 {
		t.Error("memoized inference must be deterministic")
	}
}

// TestDSAPlatformCacheKeyedByGraphAndBatch guards the composite runKey:
// the same graph at different batch sizes must memoize independently
// (batching changes both latency and energy), and re-querying either
// entry must hit its own memo.
func TestDSAPlatformCacheKeyedByGraphAndBatch(t *testing.T) {
	p := DSCS().(*DSAPlatform)
	g := model.InceptionV3Clinical()
	l1, _, err := p.Infer(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	l8, _, err := p.Infer(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l1 == l8 {
		t.Error("batch 1 and batch 8 returned identical latency: cache entries conflated")
	}
	if len(p.cache) != 2 {
		t.Errorf("cache holds %d entries after two distinct (graph, batch) queries, want 2", len(p.cache))
	}
	if again, _, _ := p.Infer(g, 1); again != l1 {
		t.Error("re-query of batch 1 missed its memo")
	}
}

// TestDSAPlatformWarmInferDoesNotAllocate pins the hot-path fix dscslint
// surfaced: the warm Infer path formatted a "name/batch" string key per
// call. With the composite key it must not allocate at all.
func TestDSAPlatformWarmInferDoesNotAllocate(t *testing.T) {
	p := DSCS().(*DSAPlatform)
	g := model.InceptionV3Clinical()
	if _, _, err := p.Infer(g, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := p.Infer(g, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Infer allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFPGAEnergyAboveASIC(t *testing.T) {
	// Same architecture class, but FPGA fabric burns far more per op.
	g := model.ResNet18Moderation()
	_, eASIC, _ := DSCS().Infer(g, 1)
	_, eFPGA, _ := NSFPGA().Infer(g, 1)
	if eFPGA <= eASIC {
		t.Errorf("FPGA energy (%v) should exceed ASIC (%v)", eFPGA, eASIC)
	}
}

func TestRooflineErrors(t *testing.T) {
	if _, _, err := BaselineCPU().Infer(model.ResNet50(), 0); err == nil {
		t.Error("batch 0 must fail")
	}
}

func TestInStorageDSAIsLowPower(t *testing.T) {
	// The headline contrast: 4.2W in-storage vs 250W GPU.
	if DSCS().TDP() > 5 {
		t.Errorf("DSCS TDP = %v, want <=5W", DSCS().TDP())
	}
	if GPU().TDP() != 250 {
		t.Errorf("GPU TDP = %v, want 250W", GPU().TDP())
	}
}
