// Package platform models the compute platforms of the paper's Table 2:
// the traditional remote-storage platforms (Xeon CPU, RTX 2080 Ti GPU,
// Alveo U280 FPGA) and the near-storage platforms (quad ARM A57, Jetson TX2
// mobile GPU, SmartSSD FPGA), plus the in-storage ASIC DSA. CPU/GPU-class
// devices use roofline latency models with batch-dependent utilization;
// FPGA/ASIC platforms execute compiled programs on the cycle-level DSA
// simulator at their clock and energy points.
package platform

import (
	"fmt"
	"sync"
	"time"

	"dscs/internal/compiler"
	"dscs/internal/dsa"
	"dscs/internal/model"
	"dscs/internal/pcie"
	"dscs/internal/power"
	"dscs/internal/tensor"
	"dscs/internal/units"
)

// Class partitions the platforms into the paper's three system categories.
type Class int

// Platform classes.
const (
	// Traditional platforms sit in compute nodes behind remote storage.
	Traditional Class = iota
	// NearStorage platforms compute inside the storage node (NS-*).
	NearStorage
	// InStorageDSA is the DSCS-Serverless drive-resident accelerator.
	InStorageDSA
)

// Compute is one platform's execution model.
type Compute interface {
	// Name labels the platform as the figures do.
	Name() string
	// Infer returns the latency and compute energy of running graph g at
	// the given batch size with weights already resident.
	Infer(g *model.Graph, batch int) (time.Duration, units.Energy, error)
	// Class reports the platform's system category.
	Class() Class
	// NearStorage reports whether the platform sits inside the storage
	// node (no remote-storage data movement for its functions).
	NearStorage() bool
	// DeviceCopy returns the host-device link for discrete accelerators;
	// ok is false for platforms that read host memory directly.
	DeviceCopy() (pcie.Link, bool)
	// TDP is the platform's thermal design power.
	TDP() units.Power
	// Price is the platform's CAPEX contribution.
	Price() units.Dollars
}

// Roofline is an analytic platform model: peak throughput derated by a
// batch-dependent utilization, against a memory roofline.
type Roofline struct {
	Label string
	// PeakFLOPS is the marketed peak of the device's native precision.
	PeakFLOPS float64
	// Batch1Util and MaxUtil bound the achieved fraction of peak: small
	// batches underutilize wide devices (the paper's GPU observation).
	Batch1Util, MaxUtil float64
	MemBW               units.Bandwidth
	DType               tensor.DType
	// Launch is the per-invocation runtime overhead (framework, kernel
	// launches, driver).
	Launch time.Duration
	// CopyLink, when set, is the host-device transfer path.
	CopyLink *pcie.Link

	Power     units.Power // device TDP
	BusyFrac  float64     // fraction of TDP drawn while computing
	HostShare units.Power // host CPU share drawn while the device computes
	Cost      units.Dollars

	Kind Class
}

// Name implements Compute.
func (r Roofline) Name() string { return r.Label }

// Class implements Compute.
func (r Roofline) Class() Class { return r.Kind }

// NearStorage implements Compute.
func (r Roofline) NearStorage() bool { return r.Kind != Traditional }

// DeviceCopy implements Compute.
func (r Roofline) DeviceCopy() (pcie.Link, bool) {
	if r.CopyLink == nil {
		return pcie.Link{}, false
	}
	return *r.CopyLink, true
}

// TDP implements Compute.
func (r Roofline) TDP() units.Power { return r.Power }

// Price implements Compute.
func (r Roofline) Price() units.Dollars { return r.Cost }

// util interpolates achieved utilization between batch 1 and saturation.
func (r Roofline) util(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	return r.MaxUtil - (r.MaxUtil-r.Batch1Util)/float64(batch)
}

// activationBytes approximates a graph's activation DRAM traffic.
func activationBytes(g *model.Graph, d tensor.DType) units.Bytes {
	var elems int64
	for _, l := range g.Layers {
		elems += l.OutputElems()
	}
	return units.Bytes(elems) * d.Size()
}

// Infer implements Compute via the roofline.
func (r Roofline) Infer(g *model.Graph, batch int) (time.Duration, units.Energy, error) {
	if batch < 1 {
		return 0, 0, fmt.Errorf("platform: non-positive batch")
	}
	flops := float64(g.FLOPs()) * float64(batch)
	compute := flops / (r.PeakFLOPS * r.util(batch))
	bytes := units.Bytes(g.WeightBytes(r.DType)) +
		activationBytes(g, r.DType)*units.Bytes(batch)
	mem := r.MemBW.TransferTime(bytes).Seconds()
	sec := compute
	if mem > sec {
		sec = mem
	}
	lat := r.Launch + time.Duration(sec*float64(time.Second))
	energy := (r.Power*units.Power(r.BusyFrac) + r.HostShare).Times(lat)
	return lat, energy, nil
}

// DSAPlatform executes compiled programs on the cycle-level simulator —
// the FPGA implementations of the DSA and the in-storage ASIC.
type DSAPlatform struct {
	Label  string
	Config dsa.Config
	// Node prices the dynamic energy; DynScale derates it for FPGA fabric
	// overhead (LUT routing burns ~an order of magnitude more per op).
	Node     power.TechNode
	DynScale float64
	// Static is the fabric/board standing power while the function runs.
	Static units.Power
	// Launch is the runtime overhead per invocation (XRT/OpenCL enqueue
	// for FPGAs; the thin driver for the ASIC is modeled in csd instead).
	Launch   time.Duration
	CopyLink *pcie.Link

	Power units.Power
	Cost  units.Dollars
	Kind  Class

	mu    sync.Mutex
	cache map[runKey]*cachedRun
}

// runKey memoizes executions by (graph, batch) as a composite key:
// comparing struct fields costs nothing per call, where formatting a
// "name/batch" string allocated on every inference.
type runKey struct {
	name  string
	batch int
}

// cachedRun is one memoized execution. The once gives singleflight
// semantics: concurrent cold invocations of the same (graph, batch) key
// wait for a single compile+simulate instead of each redoing it.
type cachedRun struct {
	once   sync.Once
	lat    time.Duration
	energy units.Energy
	err    error
}

// Name implements Compute.
func (d *DSAPlatform) Name() string { return d.Label }

// Class implements Compute.
func (d *DSAPlatform) Class() Class { return d.Kind }

// NearStorage implements Compute.
func (d *DSAPlatform) NearStorage() bool { return d.Kind != Traditional }

// DeviceCopy implements Compute.
func (d *DSAPlatform) DeviceCopy() (pcie.Link, bool) {
	if d.CopyLink == nil {
		return pcie.Link{}, false
	}
	return *d.CopyLink, true
}

// TDP implements Compute.
func (d *DSAPlatform) TDP() units.Power { return d.Power }

// Price implements Compute.
func (d *DSAPlatform) Price() units.Dollars { return d.Cost }

// Infer implements Compute by compiling and simulating, with memoization
// and singleflight (compilation is deterministic for a graph/batch/config
// triple, and the compiled program itself is shared process-wide through
// the compiler's program cache). Safe for concurrent use.
//
//dscslint:hotpath
func (d *DSAPlatform) Infer(g *model.Graph, batch int) (time.Duration, units.Energy, error) {
	key := runKey{name: g.Name, batch: batch}
	d.mu.Lock()
	if d.cache == nil {
		//dscslint:allow hotpathcheck runs once per platform, on the first inference's miss branch
		d.cache = make(map[runKey]*cachedRun)
	}
	c, ok := d.cache[key]
	if !ok {
		c = &cachedRun{}
		d.cache[key] = c
	}
	d.mu.Unlock()

	c.once.Do(func() {
		prog, err := compiler.CompileCached(g, batch, d.Config, compiler.Options{})
		if err != nil {
			c.err = err
			return
		}
		sim, err := dsa.New(d.Config)
		if err != nil {
			c.err = err
			return
		}
		st, err := sim.Run(prog)
		if err != nil {
			c.err = err
			return
		}
		c.lat = st.Latency(d.Config.Freq)
		dynE, _ := sim.Energy(st, d.Node)
		c.energy = dynE*units.Energy(d.DynScale) + d.Static.Times(c.lat)
	})
	if c.err != nil {
		return 0, 0, c.err
	}
	return d.Launch + c.lat, c.energy, nil
}

var gen3x16 = pcie.Gen3x16()
var gen3x4 = pcie.Gen3x4()

// BaselineCPU returns the paper's baseline: the c5.4xlarge slice of an
// Intel Xeon Platinum 8275CL (16 vCPUs) running containerized inference.
func BaselineCPU() Compute {
	return Roofline{
		Label:      "Baseline (CPU)",
		PeakFLOPS:  200e9, // effective fp32 inference throughput of the slice
		Batch1Util: 0.85, MaxUtil: 0.95,
		MemBW:  60 * units.GBps,
		DType:  tensor.Float32,
		Launch: 2 * time.Millisecond,
		Power:  95, BusyFrac: 0.75,
		Cost: 2600,
	}
}

// GPU returns the traditional-platform NVIDIA RTX 2080 Ti.
func GPU() Compute {
	return Roofline{
		Label:      "GPU (2080 Ti)",
		PeakFLOPS:  13.45e12,
		Batch1Util: 0.055, MaxUtil: 0.60,
		MemBW:    616 * units.GBps,
		DType:    tensor.Float32,
		Launch:   1200 * time.Microsecond,
		CopyLink: &gen3x16,
		Power:    250, BusyFrac: 0.70, HostShare: 60,
		Cost: 1199 + 2600, // card + host share
	}
}

// FPGA returns the traditional-platform Alveo U280 carrying a 64x64 DSA at
// 300 MHz with HBM2 — resource- and frequency-bound relative to the ASIC.
func FPGA() Compute {
	cfg := dsa.Config{
		Name: "u280-dsa", Rows: 64, Cols: 64, VPULanes: 64,
		Freq: 300 * units.MHz, DRAM: power.HBM2, DoubleBuffered: true,
	}.WithBuffers(8 * units.MiB)
	return &DSAPlatform{
		Label:  "FPGA (U280)",
		Config: cfg,
		Node:   power.Node14nm, DynScale: 9,
		Static:   38,
		Launch:   38 * time.Millisecond, // XRT enqueue/sync + buffer migration
		CopyLink: &gen3x16,
		Power:    100, Cost: 7395 + 2600,
	}
}

// NSARM returns the conventional computational-storage microprocessor: a
// quad-core ARM Cortex-A57 inside the drive enclosure.
func NSARM() Compute {
	return Roofline{
		Label:      "NS-ARM",
		PeakFLOPS:  62e9, // quad A57 NEON peak; ~50 GFLOPS effective
		Batch1Util: 0.80, MaxUtil: 0.90,
		MemBW:  25 * units.GBps,
		DType:  tensor.Float32,
		Launch: 2 * time.Millisecond,
		Power:  7, BusyFrac: 0.85,
		Cost: 280 + 700, // SoC + drive
		Kind: NearStorage,
	}
}

// NSMobileGPU returns the near-storage Jetson TX2 (256-core Pascal).
func NSMobileGPU() Compute {
	return Roofline{
		Label:      "NS-Mobile-GPU",
		PeakFLOPS:  1.33e12, // fp16
		Batch1Util: 0.075, MaxUtil: 0.50,
		MemBW:  58 * units.GBps,
		DType:  tensor.Float16,
		Launch: 1800 * time.Microsecond,
		Power:  15, BusyFrac: 0.80,
		Cost: 399 + 700,
		Kind: NearStorage,
	}
}

// NSFPGA returns the Samsung SmartSSD: a KU15P-class FPGA in the drive,
// fitting a 32x32 DSA at 200 MHz on DDR4 within the shared 25 W budget.
func NSFPGA() Compute {
	cfg := dsa.Config{
		Name: "smartssd-dsa", Rows: 32, Cols: 32, VPULanes: 32,
		Freq: 200 * units.MHz, DRAM: power.DDR4, DoubleBuffered: true,
	}.WithBuffers(2 * units.MiB)
	return &DSAPlatform{
		Label:  "NS-FPGA (SmartSSD)",
		Config: cfg,
		Node:   power.Node14nm, DynScale: 9,
		Static: 9,
		Launch: 4 * time.Millisecond, // XRT on the storage node
		Power:  10,
		Cost:   1950,
		Kind:   NearStorage,
	}
}

// DSCS returns the in-storage ASIC DSA (the paper's design): the
// DSE-selected 128x128 array at 1 GHz/14 nm. Invocation overhead is the
// thin csd driver, modeled there rather than in Launch.
func DSCS() Compute {
	return &DSAPlatform{
		Label:    "DSCS-Serverless",
		Config:   dsa.PaperOptimal(),
		Node:     power.Node14nm,
		DynScale: 1,
		Static:   0.8, // controller share while the DSA runs
		Power:    4.2,
		Cost:     52 + 700, // ASIC die (cost model) + drive
		Kind:     InStorageDSA,
	}
}

// All returns the full Table 2 lineup in the figures' order.
func All() []Compute {
	return []Compute{
		BaselineCPU(), GPU(), FPGA(), NSARM(), NSMobileGPU(), NSFPGA(), DSCS(),
	}
}
