// Package experiments wires the full system together and implements one
// runner per table/figure of the paper's evaluation, producing the same
// rows and series the paper reports.
package experiments

import (
	"fmt"

	"dscs/internal/csd"
	"dscs/internal/dse"
	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/workload"
)

// Environment is a fully wired single-rack setup: an object store spanning
// conventional and DSCS-capable storage nodes, and one invocation runner
// per Table 2 platform.
type Environment struct {
	Seed      uint64
	RNG       *sim.RNG
	Store     *objstore.Store
	Platforms []platform.Compute
	Runners   map[string]*faas.Runner
	Suite     []*workload.Benchmark

	// dsePoints caches the (expensive) design-space exploration shared by
	// Figures 7 and 8.
	dsePoints []dse.Point
	// suiteRes caches the per-platform suite invocations shared by
	// Figures 9-12.
	suiteRes map[string]map[string]faas.Result
}

// NewEnvironment builds the default environment: six storage nodes, two of
// them DSCS-Drives, three-way replication.
func NewEnvironment(seed uint64) (*Environment, error) {
	rng := sim.NewRNG(seed)
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		drive, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: drive,
		})
	}
	for i := 0; i < 2; i++ {
		drive, err := csd.New(csd.Default())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: drive,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, rng.Split())
	if err != nil {
		return nil, err
	}
	platforms := platform.All()
	runners := make(map[string]*faas.Runner, len(platforms))
	for _, p := range platforms {
		runners[p.Name()] = faas.NewRunner(store, p)
	}
	return &Environment{
		Seed:      seed,
		RNG:       rng,
		Store:     store,
		Platforms: platforms,
		Runners:   runners,
		Suite:     workload.Suite(),
	}, nil
}

// Runner returns the runner for a platform name.
func (e *Environment) Runner(name string) (*faas.Runner, error) {
	r, ok := e.Runners[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown platform %q", name)
	}
	return r, nil
}

// Baseline returns the Baseline (CPU) runner.
func (e *Environment) Baseline() *faas.Runner {
	return e.Runners[platform.BaselineCPU().Name()]
}

// DSCS returns the DSCS-Serverless runner.
func (e *Environment) DSCS() *faas.Runner {
	return e.Runners[platform.DSCS().Name()]
}
