package experiments

import (
	"fmt"
	"sort"

	"dscs/internal/metrics"
)

// Result is one experiment's reproduction output: the printable table (the
// rows/series the paper's figure reports), named scalar findings used by
// the regression tests and EXPERIMENTS.md, and any time series.
type Result struct {
	ID     string
	Title  string
	Table  *metrics.Table
	Values map[string]float64
	Series []*metrics.Series
}

// Value returns a named finding (0 when missing).
func (r *Result) Value(name string) float64 { return r.Values[name] }

// String renders the result for the CLI.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		out += r.Table.String()
	}
	if len(r.Values) > 0 {
		names := make([]string, 0, len(r.Values))
		for k := range r.Values {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			out += fmt.Sprintf("%-40s %.3f\n", k, r.Values[k])
		}
	}
	return out
}

// Spec registers one reproducible experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(env *Environment) (*Result, error)
}

// All returns every experiment in the paper's order.
func All() []Spec {
	return []Spec{
		{"table1", "Benchmark suite (models, parameters, payload sizes)", Table1},
		{"table2", "Evaluated platform specifications", Table2},
		{"fig3", "CDF of reading inputs from disaggregated storage", Fig3},
		{"fig4", "Baseline runtime breakdown (communication dominates)", Fig4},
		{"fig7", "Power-performance Pareto frontier, 45nm", Fig7},
		{"fig8", "Area-performance Pareto frontier, 45nm", Fig8},
		{"fig9", "Normalized end-to-end speedup across platforms", Fig9},
		{"fig10", "Normalized runtime breakdown across platforms", Fig10},
		{"fig11", "Normalized system energy reduction", Fig11},
		{"fig12", "Normalized cost efficiency", Fig12},
		{"fig13", "At-scale wall-clock latency and queueing", Fig13},
		{"fig14", "Sensitivity to batch size", Fig14},
		{"fig15", "Sensitivity to storage access tail latency", Fig15},
		{"fig16", "Sensitivity to the number of accelerated functions", Fig16},
		{"fig17", "Sensitivity to cold vs. warm containers", Fig17},
		{"ext-sched", "Extension: Section 5.3 scheduling policies", ExtScheduling},
		{"ext-batchform", "Extension: global SLO-aware batch forming (Fig 14 regime)", ExtBatchFormer},
		{"ext-memcache", "Extension: keep-warm DSA memory with P2P reloads", ExtMemcache},
		{"ext-scatter", "Extension: parallel execution across CSDs", ExtScatter},
		{"ext-failover", "Extension: drive failure, fallback, re-replication", ExtFailover},
		{"ext-scaling", "Extension: technology-scaling projection (Section 4)", ExtScaling},
	}
}

// ByID finds an experiment spec.
func ByID(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
