package experiments

import (
	"fmt"

	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/platform"
)

// Table1 reproduces the benchmark-suite table: application, functions,
// model, parameter count, and payload sizes through the chain.
func Table1(env *Environment) (*Result, error) {
	t := metrics.NewTable("Table 1: Benchmarks",
		"Benchmark", "Functions", "Model", "Params(M)", "GFLOPs", "Input", "Intermediate", "Output")
	values := map[string]float64{}
	for _, b := range env.Suite {
		app, err := faas.AppFor(b)
		if err != nil {
			return nil, err
		}
		chain := fmt.Sprintf("%d-function chain", len(app.Chain))
		t.AddRow(b.Name, chain, b.Model.Name,
			float64(b.Model.Params())/1e6,
			float64(b.Model.FLOPs())/1e9,
			b.InputBytes.String(), b.IntermediateBytes.String(), b.OutputBytes.String())
		values["params_m/"+b.Slug] = float64(b.Model.Params()) / 1e6
	}
	values["benchmarks"] = float64(len(env.Suite))
	return &Result{ID: "table1", Title: "Benchmark suite", Table: t, Values: values}, nil
}

// Table2 reproduces the platform-specification table.
func Table2(env *Environment) (*Result, error) {
	t := metrics.NewTable("Table 2: Platforms",
		"Platform", "Class", "TDP", "Price", "Location")
	values := map[string]float64{}
	for _, p := range env.Platforms {
		class := "traditional + remote storage"
		loc := "compute node"
		switch p.Class() {
		case platform.NearStorage:
			class = "conventional near-storage"
			loc = "storage node"
		case platform.InStorageDSA:
			class = "DSCS-Serverless"
			loc = "inside the drive"
		}
		t.AddRow(p.Name(), class, p.TDP().String(), p.Price().String(), loc)
		values["tdp_w/"+p.Name()] = float64(p.TDP())
	}
	values["platforms"] = float64(len(env.Platforms))
	return &Result{ID: "table2", Title: "Platform specifications", Table: t, Values: values}, nil
}
