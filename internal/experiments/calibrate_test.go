package experiments

import (
	"testing"

	"dscs/internal/faas"
	"dscs/internal/metrics"
)

// TestCalibrationProbe prints the per-benchmark end-to-end latencies and
// speedups across platforms at the median network quantile. Run with -v to
// inspect; assertions live in the figure tests.
func TestCalibrationProbe(t *testing.T) {
	env, err := NewEnvironment(1)
	if err != nil {
		t.Fatal(err)
	}
	opt := faas.Options{Quantile: 0.5}
	base := map[string]float64{}
	for _, b := range env.Suite {
		res, err := env.Baseline().Invoke(b, opt)
		if err != nil {
			t.Fatalf("%s baseline: %v", b.Slug, err)
		}
		base[b.Slug] = res.Total().Seconds()
		t.Logf("%-16s baseline total=%.0fms stack=%.0f read=%.0f compute=%.0f write=%.0f notify=%.0f",
			b.Slug, res.Total().Seconds()*1e3,
			res.Breakdown.Stack.Seconds()*1e3,
			res.Breakdown.RemoteRead.Seconds()*1e3,
			res.Breakdown.Compute.Seconds()*1e3,
			res.Breakdown.RemoteWrite.Seconds()*1e3,
			res.Breakdown.Notify.Seconds()*1e3)
	}
	for _, p := range env.Platforms {
		if p.Name() == "Baseline (CPU)" {
			continue
		}
		r := env.Runners[p.Name()]
		var speedups []float64
		line := ""
		for _, b := range env.Suite {
			res, err := r.Invoke(b, opt)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name(), b.Slug, err)
			}
			s := base[b.Slug] / res.Total().Seconds()
			speedups = append(speedups, s)
			line += " " + b.Slug[:4] + "=" + fmtF(s)
		}
		t.Logf("%-20s geomean=%.2f %s", p.Name(), metrics.Geomean(speedups), line)
	}
}

func fmtF(f float64) string {
	return string(rune('0'+int(f))) + "." + string(rune('0'+(int(f*10)%10)))
}
