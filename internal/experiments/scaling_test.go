package experiments

import "testing"

func TestExtScaling(t *testing.T) {
	res := runExt(t, "ext-scaling")
	// Power and area shrink monotonically across nodes.
	if res.Value("peak_w/14nm") >= res.Value("peak_w/45nm") ||
		res.Value("peak_w/7nm") >= res.Value("peak_w/14nm") {
		t.Error("peak power must shrink with the node")
	}
	if res.Value("area_mm2/7nm") >= res.Value("area_mm2/14nm") {
		t.Error("area must shrink with the node")
	}
	// The paper's argument: the selected 128x128 design does not fit the
	// shared 25W budget at 45nm, fits at 14nm, and 7nm leaves headroom.
	if res.Value("fits/45nm") != 0 {
		t.Error("45nm should be infeasible for the selected design")
	}
	if res.Value("fits/14nm") != 1 {
		t.Error("14nm (the SmartSSD-class node) must fit")
	}
	if res.Value("largest_dim/7nm") < res.Value("largest_dim/14nm") {
		t.Error("newer nodes must afford at least as large an array")
	}
	if res.Value("largest_dim/14nm") < 128 {
		t.Errorf("14nm largest dim = %.0f, want >= 128",
			res.Value("largest_dim/14nm"))
	}
}
