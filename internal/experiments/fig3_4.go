package experiments

import (
	"time"

	"dscs/internal/faas"
	"dscs/internal/metrics"
)

// Fig3Samples is the per-benchmark read count (the paper issues 10,000
// requests per application).
const Fig3Samples = 10000

// Fig3 reproduces the storage-read CDF: for each benchmark, the
// distribution of reading its input from the disaggregated store, with the
// paper's headline statistic — p99 about 110% above the median on average.
func Fig3(env *Environment) (*Result, error) {
	t := metrics.NewTable("Figure 3: read-latency distribution",
		"Benchmark", "p50(ms)", "p95(ms)", "p99(ms)", "p99/p50")
	values := map[string]float64{}
	var series []*metrics.Series
	var ratios []float64

	base := env.Baseline()
	for _, b := range env.Suite {
		// Deploy the input object once (request arrival is out of band).
		if _, err := base.Invoke(b, faas.Options{Quantile: 0.5}); err != nil {
			return nil, err
		}
		sample := metrics.NewSample(Fig3Samples)
		for i := 0; i < Fig3Samples; i++ {
			lat, _, err := env.Store.GetAt(b.Slug+"/input", -1)
			if err != nil {
				return nil, err
			}
			sample.Add(lat)
		}
		p50 := sample.Percentile(0.5)
		p99 := sample.Percentile(0.99)
		ratio := float64(p99) / float64(p50)
		ratios = append(ratios, ratio)
		t.AddRow(b.Name,
			float64(p50)/float64(time.Millisecond),
			float64(sample.Percentile(0.95))/float64(time.Millisecond),
			float64(p99)/float64(time.Millisecond),
			ratio)
		values["p50_ms/"+b.Slug] = p50.Seconds() * 1e3
		values["p99_over_p50/"+b.Slug] = ratio

		s := &metrics.Series{Name: b.Slug}
		for _, pt := range sample.CDF(50) {
			s.Add(pt.Value, pt.Frac)
		}
		series = append(series, s)
	}
	values["mean_p99_over_p50"] = metrics.Mean(ratios)
	return &Result{
		ID: "fig3", Title: "CDF of reading inputs from disaggregated storage",
		Table: t, Values: values, Series: series,
	}, nil
}

// Fig4 reproduces the baseline runtime breakdown: communication (network +
// I/O) dominates (>55% on average, >=70% for three benchmarks), and the
// Amdahl bound on compute-only acceleration sits near 1.5x.
func Fig4(env *Environment) (*Result, error) {
	t := metrics.NewTable("Figure 4: baseline runtime breakdown",
		"Benchmark", "Compute%", "Communication%", "Stack%", "Total(ms)")
	values := map[string]float64{}
	var commFracs, computeFracs []float64

	base := env.Baseline()
	for _, b := range env.Suite {
		res, err := base.Invoke(b, faas.Options{Quantile: 0.5})
		if err != nil {
			return nil, err
		}
		total := res.Total().Seconds()
		comm := (res.Breakdown.RemoteRead + res.Breakdown.RemoteWrite +
			res.Breakdown.Notify + res.Breakdown.DeviceIO).Seconds()
		compute := res.Breakdown.Compute.Seconds()
		stack := res.Breakdown.Stack.Seconds()
		commFrac := comm / total
		computeFrac := compute / total
		commFracs = append(commFracs, commFrac)
		computeFracs = append(computeFracs, computeFrac)
		t.AddRow(b.Name, computeFrac*100, commFrac*100, stack/total*100, total*1e3)
		values["comm_frac/"+b.Slug] = commFrac
		values["compute_frac/"+b.Slug] = computeFrac
	}
	meanComm := metrics.Mean(commFracs)
	meanCompute := metrics.Mean(computeFracs)
	values["mean_comm_frac"] = meanComm
	values["mean_compute_frac"] = meanCompute
	// Amdahl: accelerating only the compute caps the speedup.
	values["amdahl_compute_cap"] = 1 / (1 - meanCompute)
	return &Result{
		ID: "fig4", Title: "Baseline runtime breakdown",
		Table: t, Values: values,
	}, nil
}
