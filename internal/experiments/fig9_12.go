package experiments

import (
	"dscs/internal/cost"
	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/power"
	"dscs/internal/units"
	"dscs/internal/workload"
)

// suiteResults invokes every benchmark on every platform at the median
// network quantile, cached per environment (Figures 9-12 share it).
func (e *Environment) suiteResults() (map[string]map[string]faas.Result, error) {
	if e.suiteRes != nil {
		return e.suiteRes, nil
	}
	out := make(map[string]map[string]faas.Result, len(e.Platforms))
	opt := faas.Options{Quantile: 0.5}
	for _, p := range e.Platforms {
		r := e.Runners[p.Name()]
		per := make(map[string]faas.Result, len(e.Suite))
		for _, b := range e.Suite {
			res, err := r.Invoke(b, opt)
			if err != nil {
				return nil, err
			}
			per[b.Slug] = res
		}
		out[p.Name()] = per
	}
	e.suiteRes = out
	return out, nil
}

// speedups computes per-benchmark ratios of baseline metric over platform
// metric, via the extract function.
func speedups(base, plat map[string]faas.Result, suite []*workload.Benchmark,
	extract func(faas.Result) float64) (per map[string]float64, geomean float64) {
	per = make(map[string]float64, len(suite))
	var ratios []float64
	for _, b := range suite {
		r := extract(base[b.Slug]) / extract(plat[b.Slug])
		per[b.Slug] = r
		ratios = append(ratios, r)
	}
	return per, metrics.Geomean(ratios)
}

// Fig9 reproduces the end-to-end speedup figure: every platform normalized
// to the CPU baseline across the suite.
func Fig9(env *Environment) (*Result, error) {
	all, err := env.suiteResults()
	if err != nil {
		return nil, err
	}
	baseName := env.Platforms[0].Name()
	headers := []string{"Platform"}
	for _, b := range env.Suite {
		headers = append(headers, b.Slug)
	}
	headers = append(headers, "geomean")
	t := metrics.NewTable("Figure 9: normalized speedup over Baseline (CPU)", headers...)
	values := map[string]float64{}
	for _, p := range env.Platforms {
		per, gm := speedups(all[baseName], all[p.Name()], env.Suite,
			func(r faas.Result) float64 { return r.Total().Seconds() })
		row := []interface{}{p.Name()}
		for _, b := range env.Suite {
			row = append(row, per[b.Slug])
			values["speedup/"+p.Name()+"/"+b.Slug] = per[b.Slug]
		}
		row = append(row, gm)
		t.AddRow(row...)
		values["geomean/"+p.Name()] = gm
	}
	dscs := values["geomean/DSCS-Serverless"]
	values["dscs_over_gpu"] = dscs / values["geomean/GPU (2080 Ti)"]
	values["dscs_over_ns_arm"] = dscs / values["geomean/NS-ARM"]
	values["dscs_over_ns_fpga"] = dscs / values["geomean/NS-FPGA (SmartSSD)"]
	return &Result{ID: "fig9", Title: "Normalized end-to-end speedup", Table: t, Values: values}, nil
}

// Fig10 reproduces the runtime-breakdown figure: per platform and
// benchmark, the share of each latency component.
func Fig10(env *Environment) (*Result, error) {
	all, err := env.suiteResults()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Figure 10: runtime breakdown (fraction of total)",
		"Platform", "Benchmark", "Stack", "RemoteIO", "Compute", "DeviceIO", "Driver", "Notify")
	values := map[string]float64{}
	for _, p := range env.Platforms {
		for _, b := range env.Suite {
			r := all[p.Name()][b.Slug]
			total := r.Total().Seconds()
			bd := r.Breakdown
			remote := (bd.RemoteRead + bd.RemoteWrite).Seconds() / total
			t.AddRow(p.Name(), b.Slug,
				bd.Stack.Seconds()/total, remote,
				bd.Compute.Seconds()/total,
				bd.DeviceIO.Seconds()/total,
				bd.Driver.Seconds()/total,
				bd.Notify.Seconds()/total)
			values["remote_frac/"+p.Name()+"/"+b.Slug] = remote
			values["compute_frac/"+p.Name()+"/"+b.Slug] = bd.Compute.Seconds() / total
		}
	}
	return &Result{ID: "fig10", Title: "Normalized runtime breakdown", Table: t, Values: values}, nil
}

// Fig11 reproduces the system-energy-reduction figure, plus the paper's
// compute-only comparison (the DSA's inference energy versus the CPU's).
func Fig11(env *Environment) (*Result, error) {
	all, err := env.suiteResults()
	if err != nil {
		return nil, err
	}
	baseName := env.Platforms[0].Name()
	headers := []string{"Platform"}
	for _, b := range env.Suite {
		headers = append(headers, b.Slug)
	}
	headers = append(headers, "geomean")
	t := metrics.NewTable("Figure 11: normalized system energy reduction", headers...)
	values := map[string]float64{}
	for _, p := range env.Platforms {
		per, gm := speedups(all[baseName], all[p.Name()], env.Suite,
			func(r faas.Result) float64 { return float64(r.Energy) })
		row := []interface{}{p.Name()}
		for _, b := range env.Suite {
			row = append(row, per[b.Slug])
			values["energy_reduction/"+p.Name()+"/"+b.Slug] = per[b.Slug]
		}
		row = append(row, gm)
		t.AddRow(row...)
		values["geomean/"+p.Name()] = gm
	}
	// Compute-only ratio: CPU inference energy over DSA inference energy.
	_, computeRatio := speedups(all[baseName], all["DSCS-Serverless"], env.Suite,
		func(r faas.Result) float64 { return float64(r.ComputeEnergy) })
	values["dsa_compute_energy_ratio"] = computeRatio
	return &Result{ID: "fig11", Title: "Normalized system energy reduction", Table: t, Values: values}, nil
}

// Fig12 reproduces the cost-efficiency figure using the E3-style model:
// throughput x T over CAPEX + OPEX, normalized to the baseline.
func Fig12(env *Environment) (*Result, error) {
	all, err := env.suiteResults()
	if err != nil {
		return nil, err
	}
	die := cost.Default14nm().DieCost(power.DieArea(power.Node14nm, 128*128, 4*units.MiB))
	dep := cost.PaperDeployment()
	t := metrics.NewTable("Figure 12: normalized cost efficiency",
		"Platform", "Throughput(req/s)", "CAPEX($)", "OPEX($)", "CostEff(norm)")
	values := map[string]float64{}
	var baseEff float64
	for i, p := range env.Platforms {
		// Sustained per-instance throughput: the reciprocal of the mean
		// end-to-end latency across the suite (run-to-completion serving).
		var totalLat float64
		for _, b := range env.Suite {
			totalLat += all[p.Name()][b.Slug].Total().Seconds()
		}
		thr := float64(len(env.Suite)) / totalLat
		sys := cost.SystemFor(p, die)
		eff := cost.Efficiency(thr, sys, dep)
		if i == 0 {
			baseEff = eff
		}
		norm := eff / baseEff
		t.AddRow(p.Name(), thr, float64(sys.CAPEX()), float64(dep.OPEX(sys.AvgPower)), norm)
		values["cost_eff/"+p.Name()] = norm
	}
	values["asic_die_cost"] = float64(die)
	return &Result{ID: "fig12", Title: "Normalized cost efficiency", Table: t, Values: values}, nil
}
