package experiments

import (
	"sync"
	"testing"
)

// Extension experiments intentionally damage and repair their cluster
// (node failures, re-replication, scatter partitions), so they run on a
// dedicated environment rather than the figure tests' pristine one.
var (
	extOnce sync.Once
	extEnv  *Environment
	extErr  error
)

func runExt(t *testing.T, id string) *Result {
	t.Helper()
	extOnce.Do(func() {
		extEnv, extErr = NewEnvironment(1042)
	})
	if extErr != nil {
		t.Fatal(extErr)
	}
	spec, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	res, err := spec.Run(extEnv)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func TestExtScheduling(t *testing.T) {
	res := runExt(t, "ext-sched")
	// The Section 5.3 hypothesis holds: both refinements beat FCFS under
	// contention.
	if res.Value("criticality_gain") <= 1.0 {
		t.Errorf("criticality gain = %.3f, want >1", res.Value("criticality_gain"))
	}
	if res.Value("dag_gain") <= 0.95 {
		t.Errorf("dag-aware gain = %.3f, want ~>=1", res.Value("dag_gain"))
	}
	if res.Value("mean_ms/fcfs") <= 0 {
		t.Error("degenerate FCFS latency")
	}
}

func TestExtBatchFormer(t *testing.T) {
	res := runExt(t, "ext-batchform")
	// Batching is what makes the bursty load servable: amortization buys
	// an order of magnitude of mean latency.
	if g := res.Value("batching_gain"); g < 5 {
		t.Errorf("batching gain = %.2fx, want >= 5x", g)
	}
	// The queue-level former beats the per-dispatch window: it groups the
	// same arrivals without holding a worker hostage for the linger.
	if g := res.Value("former_latency_gain"); g <= 1.0 {
		t.Errorf("former latency gain = %.3fx over the per-dispatch window, want > 1", g)
	}
	// The SLO cap cuts the tail sharply relative to the uncapped window.
	if g := res.Value("slo_p99_gain"); g < 1.5 {
		t.Errorf("SLO p99 gain = %.2fx, want >= 1.5x", g)
	}
	// Forming actually happened, and every mode served everything.
	if res.Value("formed/former") <= 0 {
		t.Error("the former formed no batches")
	}
	for _, k := range []string{"none", "linger", "former", "former_slo"} {
		if res.Value("per_exec/"+k) < 1 {
			t.Errorf("mode %s: requests per execution below 1", k)
		}
	}
	// The amortization ordering: batching modes coalesce, no-batching
	// serves one request per execution.
	if res.Value("per_exec/linger") <= 2 || res.Value("per_exec/former") <= 2 {
		t.Error("batching modes should coalesce well above 2 requests/execution")
	}
}

func TestExtMemcache(t *testing.T) {
	res := runExt(t, "ext-memcache")
	// The skewed mix keeps hot functions resident...
	within(t, res, "hit_rate", 0.25, 0.92)
	// ...and once evictions start, reloads come from flash, not the
	// registry (each image is pulled over the network at most once).
	if v := res.Value("registry_loads"); v < 5 || v > 8 {
		t.Errorf("registry pulls = %.0f, want at most one per touched function", v)
	}
	if res.Value("evictions") > 0 && res.Value("flash_loads") == 0 {
		t.Error("evictions occurred but nothing reloaded from flash")
	}
	if v := res.Value("p2p_vs_registry"); v != 0 && v < 1.2 {
		t.Errorf("P2P reload advantage = %.2fx, want >1.2x", v)
	}
}

func TestExtScatter(t *testing.T) {
	res := runExt(t, "ext-scatter")
	for _, slug := range []string{"ppe-detection", "clinical", "remote-sensing"} {
		if g := res.Value("gain/" + slug); g <= 1.0 {
			t.Errorf("scatter gain for %s = %.2f, want >1", slug, g)
		}
	}
}

func TestExtFailover(t *testing.T) {
	res := runExt(t, "ext-failover")
	// Fallback is slower than in-storage execution but still serves.
	if res.Value("fallback_penalty") <= 1.2 {
		t.Errorf("fallback penalty = %.2f, want a clear slowdown", res.Value("fallback_penalty"))
	}
	// Repair moved data and restored the accelerated path.
	if res.Value("repaired_chunks") <= 0 || res.Value("repaired_mb") <= 0 {
		t.Error("re-replication did nothing")
	}
	healthy, repaired := res.Value("healthy_ms"), res.Value("repaired_ms")
	if diff := repaired / healthy; diff < 0.8 || diff > 1.3 {
		t.Errorf("repaired latency (%.1fms) should match healthy (%.1fms)", repaired, healthy)
	}
}
