package experiments

import (
	"fmt"

	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/workload"
)

// dscsSpeedup invokes one benchmark on the baseline and DSCS with the same
// options and returns the ratio.
func (e *Environment) dscsSpeedup(slug string, opt faas.Options) (float64, error) {
	b := suiteBySlug(e, slug)
	base, err := e.Baseline().Invoke(b, opt)
	if err != nil {
		return 0, err
	}
	dscs, err := e.DSCS().Invoke(b, opt)
	if err != nil {
		return 0, err
	}
	return base.Total().Seconds() / dscs.Total().Seconds(), nil
}

func suiteBySlug(e *Environment, slug string) *workload.Benchmark {
	for _, b := range e.Suite {
		if b.Slug == slug {
			return b
		}
	}
	return nil
}

// geomeanAcrossSuite computes the suite geomean of DSCS speedup at options.
func (e *Environment) geomeanAcrossSuite(opt faas.Options) (float64, map[string]float64, error) {
	per := make(map[string]float64, len(e.Suite))
	var ratios []float64
	for _, b := range e.Suite {
		s, err := e.dscsSpeedup(b.Slug, opt)
		if err != nil {
			return 0, nil, err
		}
		per[b.Slug] = s
		ratios = append(ratios, s)
	}
	return metrics.Geomean(ratios), per, nil
}

// Fig14 reproduces the batch-size sensitivity: DSCS speedup over the
// baseline at the same batch, from 1 to 64 (the AWS payload cap bounds the
// batch). The paper reports 3.6x growing to 15.8x, driven by DSA weight
// reuse across the batch — strongest for the language models.
func Fig14(env *Environment) (*Result, error) {
	batches := []int{1, 2, 4, 8, 16, 32, 64}
	t := metrics.NewTable("Figure 14: sensitivity to batch size",
		"Batch", "Geomean speedup", "chatbot", "translation", "ppe-detection")
	values := map[string]float64{}
	for _, batch := range batches {
		gm, per, err := env.geomeanAcrossSuite(faas.Options{Batch: batch, Quantile: 0.5})
		if err != nil {
			return nil, err
		}
		t.AddRow(batch, gm, per["chatbot"], per["translation"], per["ppe-detection"])
		values[fmt.Sprintf("geomean/batch%d", batch)] = gm
		values[fmt.Sprintf("chatbot/batch%d", batch)] = per["chatbot"]
		values[fmt.Sprintf("translation/batch%d", batch)] = per["translation"]
	}
	values["growth_1_to_64"] = values["geomean/batch64"] / values["geomean/batch1"]
	return &Result{ID: "fig14", Title: "Sensitivity to batch size", Table: t, Values: values}, nil
}

// Fig15 reproduces the tail-latency sensitivity: both systems evaluated at
// the same network quantile; DSCS's advantage grows toward the tail because
// it removed the network from f1/f2 (paper: 3.1x at p50, 5.0x at p99).
func Fig15(env *Environment) (*Result, error) {
	quantiles := []float64{0.50, 0.75, 0.90, 0.95, 0.99}
	t := metrics.NewTable("Figure 15: sensitivity to storage access tail latency",
		"Percentile", "Geomean speedup")
	values := map[string]float64{}
	for _, q := range quantiles {
		gm, _, err := env.geomeanAcrossSuite(faas.Options{Quantile: q})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("p%.0f", q*100), gm)
		values[fmt.Sprintf("speedup/p%.0f", q*100)] = gm
	}
	values["tail_amplification"] = values["speedup/p99"] / values["speedup/p50"]
	return &Result{ID: "fig15", Title: "Sensitivity to tail latency", Table: t, Values: values}, nil
}

// Fig16 reproduces the accelerated-function-count sensitivity: duplicates
// of f2 appended to the chain (paper: 3.6x at +0 escalating to 8.1x at +3,
// because each extra traditional function pays another storage round-trip
// while DSCS keeps the chain on-drive).
func Fig16(env *Environment) (*Result, error) {
	t := metrics.NewTable("Figure 16: sensitivity to the number of accelerated functions",
		"Extra accelerated functions", "Geomean speedup")
	values := map[string]float64{}
	for extra := 0; extra <= 3; extra++ {
		gm, _, err := env.geomeanAcrossSuite(faas.Options{ExtraAccelFuncs: extra, Quantile: 0.5})
		if err != nil {
			return nil, err
		}
		t.AddRow(extra, gm)
		values[fmt.Sprintf("speedup/extra%d", extra)] = gm
	}
	values["escalation"] = values["speedup/extra3"] / values["speedup/extra0"]
	return &Result{ID: "fig16", Title: "Sensitivity to accelerated functions", Table: t, Values: values}, nil
}

// Fig17 reproduces the cold-start sensitivity: both systems pull container
// images (including weights) before serving (paper: warm 3.6x falls to
// cold 2.6x).
func Fig17(env *Environment) (*Result, error) {
	t := metrics.NewTable("Figure 17: cold vs. warm containers",
		"Container state", "Geomean speedup")
	values := map[string]float64{}
	warm, _, err := env.geomeanAcrossSuite(faas.Options{Quantile: 0.5})
	if err != nil {
		return nil, err
	}
	cold, _, err := env.geomeanAcrossSuite(faas.Options{Cold: true, Quantile: 0.5})
	if err != nil {
		return nil, err
	}
	t.AddRow("warm", warm)
	t.AddRow("cold", cold)
	values["speedup/warm"] = warm
	values["speedup/cold"] = cold
	values["cold_penalty"] = warm / cold
	return &Result{ID: "fig17", Title: "Cold vs. warm containers", Table: t, Values: values}, nil
}
