package experiments

import (
	"dscs/internal/dsa"
	"dscs/internal/metrics"
	"dscs/internal/power"
	"dscs/internal/units"
)

// ExtScaling reproduces the Section 4 technology-scaling analysis: the
// selected DSA projected across process nodes, and the largest array that
// fits the drive's 25 W budget at each node. The argument the paper makes:
// the design is infeasible at the 45 nm evaluation node, fits at the
// SmartSSD-class 14 nm node, and newer nodes leave headroom for bigger
// arrays.
func ExtScaling(env *Environment) (*Result, error) {
	const flashShare = units.Power(9) // the drive's flash subsystem draw
	budget := units.Power(25)
	selected := dsa.PaperOptimal()

	t := metrics.NewTable("Extension: technology scaling of the selected DSA (Section 4)",
		"Node", "Peak power (W)", "Die area (mm2)", "Fits 25W drive?", "Largest feasible dim")
	values := map[string]float64{}
	for _, node := range power.Nodes() {
		peak := power.PeakPower(node, selected.PEs(), selected.TotalBuf(),
			selected.Freq, selected.DRAM)
		area := power.DieArea(node, selected.PEs(), selected.TotalBuf())
		fits := peak+flashShare <= budget

		// Sweep array dims for the largest feasible design at this node,
		// with buffers scaled proportionally (capped at 32 MB).
		largest := 0
		for _, dim := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024} {
			buf := units.Bytes(dim) * units.Bytes(dim) * 256
			if buf < 128*units.KiB {
				buf = 128 * units.KiB
			}
			if buf > 32*units.MiB {
				buf = 32 * units.MiB
			}
			p := power.PeakPower(node, dim*dim, buf, selected.Freq, selected.DRAM)
			if p+flashShare <= budget {
				largest = dim
			}
		}
		t.AddRow(node.Name, float64(peak), float64(area), fits, largest)
		values["peak_w/"+node.Name] = float64(peak)
		values["area_mm2/"+node.Name] = float64(area)
		values["fits/"+node.Name] = boolTo01(fits)
		values["largest_dim/"+node.Name] = float64(largest)
	}
	return &Result{
		ID: "ext-scaling", Title: "Technology-scaling projection (Section 4)",
		Table: t, Values: values,
	}, nil
}
