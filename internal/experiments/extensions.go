package experiments

import (
	"fmt"
	"sort"
	"time"

	"dscs/internal/cluster"
	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/trace"
	"dscs/internal/units"
)

// The extension experiments implement what the paper leaves as future work
// or describes without evaluating: Section 5.3's optimized scheduling
// policies, the keep-warm DSA memory manager with P2P reloads, and
// Section 5.2's parallel execution across multiple CSDs.

// ExtScheduling evaluates the Section 5.3 scheduling hypothesis: over a
// scarce heterogeneous pool, criticality-aware and DAG-aware placement
// beat the deployed FCFS policy.
func ExtScheduling(env *Environment) (*Result, error) {
	// Expected service times per class come from the calibrated runners.
	baseService, err := env.serviceModel(env.Platforms[0].Name())
	if err != nil {
		return nil, err
	}
	dscsService, err := env.serviceModel("DSCS-Serverless")
	if err != nil {
		return nil, err
	}
	rng := env.RNG.Split()
	service := func(slug string) (cpu, dscs time.Duration, accel int) {
		return baseService(slug, rng), dscsService(slug, rng), 2
	}

	cfg := trace.BurstyConfig{
		Duration: 5 * time.Minute, BaseRate: 170, BurstRate: 260,
		BurstEvery: 90 * time.Second, BurstLength: 25 * time.Second,
	}
	tr, err := trace.Generate(cfg, env.Suite, env.RNG.Split())
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: scheduling policies over a 28 CPU + 6 DSCS pool",
		"Policy", "Mean latency (ms)", "p99 (ms)", "Served on DSCS")
	values := map[string]float64{}
	for _, policy := range []sched.Policy{
		sched.FCFSPolicy{}, sched.CriticalityPolicy{}, sched.DAGAwarePolicy{},
	} {
		st, err := cluster.RunHybrid(tr, cluster.HybridConfig{
			CPUInstances: 28, DSCSInstances: 6, QueueDepth: 100000,
			Policy: policy, Jitter: 0.15,
			Service: service,
		}, env.Seed+7)
		if err != nil {
			return nil, err
		}
		mean := float64(st.Latency.Mean()) / float64(time.Millisecond)
		t.AddRow(policy.Name(), mean,
			float64(st.Latency.Percentile(0.99))/float64(time.Millisecond),
			st.OnDSCS)
		values["mean_ms/"+policy.Name()] = mean
	}
	values["criticality_gain"] = values["mean_ms/fcfs"] / values["mean_ms/criticality"]
	values["dag_gain"] = values["mean_ms/fcfs"] / values["mean_ms/dag-aware"]
	return &Result{
		ID: "ext-sched", Title: "Scheduling-policy future work (Section 5.3)",
		Table: t, Values: values,
	}, nil
}

// ExtBatchFormer evaluates the global SLO-aware batch former in the
// Figure 14 regime: under bursty mixed traffic, batching is what lets the
// DSA amortize weight reuse, but the per-dispatch linger window only sees
// stragglers that arrive while one worker waits. The queue-level former
// groups same-benchmark arrivals across the whole queue before dispatch,
// so the same trace executes in fewer, fuller batches at a bounded latency
// cost — the serving-layer half of the Fig 14 batch-size sensitivity.
func ExtBatchFormer(env *Environment) (*Result, error) {
	dscsService, err := env.serviceModel("DSCS-Serverless")
	if err != nil {
		return nil, err
	}
	cfg := trace.BurstyConfig{
		Duration: 4 * time.Minute, BaseRate: 25, BurstRate: 140,
		BurstEvery: time.Minute, BurstLength: 20 * time.Second,
	}
	tr, err := trace.Generate(cfg, env.Suite, env.RNG.Split())
	if err != nil {
		return nil, err
	}

	// Few instances and a sparse base rate: the regime where holding a
	// worker (the per-dispatch window) and holding queued work (the
	// former) genuinely differ, with bursts to exercise full batches.
	base := cluster.Config{
		Instances: 6, QueueDepth: 10000,
		Service: dscsService, SampleEvery: 5 * time.Second,
		MaxBatch: 8, BatchLinger: 400 * time.Millisecond,
	}
	modes := []struct {
		name   string
		mutate func(*cluster.Config)
	}{
		{"no batching", func(c *cluster.Config) { c.MaxBatch = 1; c.BatchLinger = 0 }},
		{"per-dispatch linger", func(c *cluster.Config) {}},
		{"global former", func(c *cluster.Config) { c.GlobalBatch = true }},
		{"global former + SLO", func(c *cluster.Config) {
			c.GlobalBatch = true
			c.BatchSLO = 150 * time.Millisecond
		}},
	}

	t := metrics.NewTable("Extension: global batch former under the Fig 14 regime (6 instances, bursty trace)",
		"Mode", "Executions", "Req/execution", "Mean latency (ms)", "p99 (ms)", "Dropped")
	values := map[string]float64{}
	key := func(name string) string {
		switch name {
		case "no batching":
			return "none"
		case "per-dispatch linger":
			return "linger"
		case "global former":
			return "former"
		default:
			return "former_slo"
		}
	}
	for _, m := range modes {
		cfg := base
		m.mutate(&cfg)
		st, err := cluster.Run(tr, cfg, env.Seed+31)
		if err != nil {
			return nil, err
		}
		perExec := float64(st.Completed) / float64(st.Batches)
		meanMS := float64(st.LatencySample.Mean()) / float64(time.Millisecond)
		t.AddRow(m.name, st.Batches, perExec, meanMS,
			float64(st.LatencySample.Percentile(0.99))/float64(time.Millisecond),
			st.Dropped)
		k := key(m.name)
		values["executions/"+k] = float64(st.Batches)
		values["per_exec/"+k] = perExec
		values["mean_ms/"+k] = meanMS
		values["p99_ms/"+k] = float64(st.LatencySample.Percentile(0.99)) / float64(time.Millisecond)
		values["formed/"+k] = float64(st.Formed)
	}
	// Batching is what makes this load servable at all; the former then
	// beats the per-dispatch window on latency (it holds queued work, not
	// workers), and the SLO cap trades amortization for tail latency.
	values["batching_gain"] = values["mean_ms/none"] / values["mean_ms/linger"]
	values["former_latency_gain"] = values["mean_ms/linger"] / values["mean_ms/former"]
	values["slo_p99_gain"] = values["p99_ms/linger"] / values["p99_ms/former_slo"]
	return &Result{
		ID: "ext-batchform", Title: "Global SLO-aware batch forming (Fig 14 regime)",
		Table: t, Values: values,
	}, nil
}

// ExtMemcache studies the keep-warm memory manager: a function mix cycling
// through the DSA's DRAM, with P2P flash reloads replacing registry pulls
// (Section 5.3's cold-start mitigation).
func ExtMemcache(env *Environment) (*Result, error) {
	drive, err := csd.New(csd.Default())
	if err != nil {
		return nil, err
	}
	mgr, err := csd.NewMemoryManager(drive, 160*units.MB, nil)
	if err != nil {
		return nil, err
	}
	// Zipf-ish access pattern over the suite's int8 model images, with the
	// largest models the most popular so the DRAM genuinely thrashes.
	images := make([]csd.FunctionImage, 0, len(env.Suite))
	for _, b := range env.Suite {
		images = append(images, csd.FunctionImage{
			Name:  b.Slug,
			Bytes: units.Bytes(b.Model.Params()), // int8: one byte per weight
		})
	}
	sort.Slice(images, func(i, j int) bool { return images[i].Bytes > images[j].Bytes })
	rng := env.RNG.Split()
	var registryTime, flashTime time.Duration
	const accesses = 400
	for i := 0; i < accesses; i++ {
		// Skewed popularity: low indices dominate.
		idx := 0
		for idx < len(images)-1 && rng.Float64() < 0.45 {
			idx++
		}
		lat, _, src, err := mgr.Ensure(images[idx])
		if err != nil {
			return nil, err
		}
		switch src {
		case csd.FromRegistry:
			registryTime += lat
		case csd.FromFlash:
			flashTime += lat
		}
	}
	hits, flashLoads, registryLoads, evictions := mgr.Stats()

	t := metrics.NewTable("Extension: DSA keep-warm memory manager (160 MB DRAM)",
		"Metric", "Value")
	t.AddRow("accesses", accesses)
	t.AddRow("warm hits", hits)
	t.AddRow("P2P flash reloads", flashLoads)
	t.AddRow("registry pulls", registryLoads)
	t.AddRow("evictions", evictions)
	values := map[string]float64{
		"hit_rate":       float64(hits) / accesses,
		"flash_loads":    float64(flashLoads),
		"registry_loads": float64(registryLoads),
		"evictions":      float64(evictions),
	}
	if flashLoads > 0 && registryLoads > 0 {
		avgFlash := flashTime / time.Duration(flashLoads)
		avgRegistry := registryTime / time.Duration(registryLoads)
		t.AddRow("avg P2P reload (ms)", float64(avgFlash)/float64(time.Millisecond))
		t.AddRow("avg registry pull (ms)", float64(avgRegistry)/float64(time.Millisecond))
		values["p2p_vs_registry"] = float64(avgRegistry) / float64(avgFlash)
	}
	return &Result{
		ID: "ext-memcache", Title: "Keep-warm with P2P reloads (Section 5.3)",
		Table: t, Values: values,
	}, nil
}

// ExtScatter sweeps the Section 5.2 multi-CSD option: one large batched
// request executed on one drive versus partitioned across both.
func ExtScatter(env *Environment) (*Result, error) {
	r := env.DSCS()
	t := metrics.NewTable("Extension: multi-CSD scatter/gather (Section 5.2)",
		"Benchmark", "Batch", "One drive (ms)", "Two drives (ms)", "Gain")
	values := map[string]float64{}
	for _, slug := range []string{"ppe-detection", "clinical", "remote-sensing"} {
		b := suiteBySlug(env, slug)
		opt := faas.Options{Quantile: 0.5, Batch: 8}
		single, err := r.Invoke(b, opt)
		if err != nil {
			return nil, err
		}
		scattered, err := r.InvokeScattered(b, opt, 2)
		if err != nil {
			return nil, err
		}
		gain := single.Total().Seconds() / scattered.Total().Seconds()
		t.AddRow(slug, opt.Batch,
			single.Total().Seconds()*1e3, scattered.Total().Seconds()*1e3, gain)
		values["gain/"+slug] = gain
	}
	return &Result{
		ID: "ext-scatter", Title: "Parallel execution across CSDs (Section 5.2)",
		Table: t, Values: values,
	}, nil
}

// ExtFailover exercises the fault-tolerance path: the DSCS drive holding a
// benchmark's data dies mid-service; execution falls back to conventional
// nodes, and re-replication restores both durability and acceleration.
func ExtFailover(env *Environment) (*Result, error) {
	r := env.DSCS()
	b := suiteBySlug(env, "asset-damage")
	opt := faas.Options{Quantile: 0.5}

	before, err := r.Invoke(b, opt)
	if err != nil {
		return nil, err
	}
	node, _, ok := env.Store.DSCSReplicaHealthy(b.Slug + "/input")
	if !ok {
		return nil, fmt.Errorf("ext-failover: no DSCS replica to kill")
	}
	if err := env.Store.FailNode(node.ID); err != nil {
		return nil, err
	}
	during, err := r.Invoke(b, opt) // falls back to conventional execution
	if err != nil {
		return nil, err
	}
	chunks, movedBytes, err := env.Store.ReReplicate(node.ID)
	if err != nil {
		return nil, err
	}
	if err := env.Store.RecoverNode(node.ID); err != nil {
		return nil, err
	}
	after, err := r.Invoke(b, opt)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: DSCS drive failure and recovery (Sections 5.2-5.3)",
		"Phase", "Latency (ms)", "Path")
	t.AddRow("healthy", before.Total().Seconds()*1e3, "in-storage DSA")
	t.AddRow("drive down", during.Total().Seconds()*1e3, "conventional fallback")
	t.AddRow("repaired", after.Total().Seconds()*1e3, "in-storage DSA")
	values := map[string]float64{
		"healthy_ms":       before.Total().Seconds() * 1e3,
		"fallback_ms":      during.Total().Seconds() * 1e3,
		"repaired_ms":      after.Total().Seconds() * 1e3,
		"repaired_chunks":  float64(chunks),
		"repaired_mb":      float64(movedBytes) / 1e6,
		"fallback_penalty": during.Total().Seconds() / before.Total().Seconds(),
	}
	return &Result{
		ID: "ext-failover", Title: "Fail-over and re-replication (Sections 5.2-5.3)",
		Table: t, Values: values,
	}, nil
}
