package experiments

import (
	"time"

	"dscs/internal/cluster"
	"dscs/internal/faas"
	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/sim"
	"dscs/internal/trace"
)

// serviceModel builds a per-benchmark service-time sampler for a platform:
// the median end-to-end invocation latency with a lognormal jitter
// (sigma 0.2) around it.
func (e *Environment) serviceModel(platformName string) (cluster.ServiceModel, error) {
	runner := e.Runners[platformName]
	medians := make(map[string]time.Duration, len(e.Suite))
	for _, b := range e.Suite {
		res, err := runner.Invoke(b, faas.Options{Quantile: 0.5})
		if err != nil {
			return nil, err
		}
		medians[b.Slug] = res.Total()
	}
	return func(slug string, rng *sim.RNG) time.Duration {
		d := sim.LogNormal{Median: medians[slug], Sigma: 0.2}
		return d.Sample(rng)
	}, nil
}

// Fig13 reproduces the at-scale run: the bursty 20-minute trace against 200
// instances for both the baseline and DSCS-Serverless, producing the input
// rate (a), queued functions (b), and wall-clock latency (c, d) series.
func Fig13(env *Environment) (*Result, error) {
	cfg := trace.PaperTrace()
	tr, err := trace.Generate(cfg, env.Suite, env.RNG.Split())
	if err != nil {
		return nil, err
	}

	baseService, err := env.serviceModel(env.Platforms[0].Name())
	if err != nil {
		return nil, err
	}
	dscsService, err := env.serviceModel("DSCS-Serverless")
	if err != nil {
		return nil, err
	}

	// Both systems replay under the paper's deployed FCFS policy — the
	// same policy implementation the live serving engine dispatches with,
	// driven here by the discrete-event clock instead of worker pools.
	baseCfg := cluster.PaperConfig(baseService)
	baseCfg.Policy = sched.FCFSPolicy{}
	dscsCfg := cluster.PaperConfig(dscsService)
	dscsCfg.Policy = sched.FCFSPolicy{}
	baseStats, err := cluster.Run(tr, baseCfg, env.Seed+101)
	if err != nil {
		return nil, err
	}
	dscsStats, err := cluster.Run(tr, dscsCfg, env.Seed+102)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Figure 13: at-scale comparison (200 instances, 20-minute bursty trace)",
		"System", "MeanLatency(ms)", "p99(ms)", "PeakQueue", "Completed", "Dropped")
	addRow := func(name string, st *cluster.Stats) {
		t.AddRow(name,
			float64(st.LatencySample.Mean())/float64(time.Millisecond),
			float64(st.LatencySample.Percentile(0.99))/float64(time.Millisecond),
			st.Queue.MaxValue(), st.Completed, st.Dropped)
	}
	addRow("Baseline (CPU)", baseStats)
	addRow("DSCS-Serverless", dscsStats)

	rate := tr.RateSeries(15 * time.Second)
	rate.Name = "fig13a:requests/s"
	baseStats.Queue.Name = "fig13b:baseline-queued"
	dscsStats.Queue.Name = "fig13b:dscs-queued"
	baseStats.Latency.Name = "fig13c:baseline-latency-ms"
	dscsStats.Latency.Name = "fig13d:dscs-latency-ms"

	values := map[string]float64{
		"trace_requests":        float64(len(tr.Requests)),
		"trace_mean_rate":       tr.MeanRate(),
		"trace_peak_rate":       rate.MaxValue(),
		"baseline_mean_ms":      float64(baseStats.LatencySample.Mean()) / 1e6,
		"dscs_mean_ms":          float64(dscsStats.LatencySample.Mean()) / 1e6,
		"baseline_peak_queue":   baseStats.Queue.MaxValue(),
		"dscs_peak_queue":       dscsStats.Queue.MaxValue(),
		"baseline_dropped":      float64(baseStats.Dropped),
		"dscs_dropped":          float64(dscsStats.Dropped),
		"wallclock_improvement": float64(baseStats.LatencySample.Mean()) / float64(dscsStats.LatencySample.Mean()),
	}
	return &Result{
		ID: "fig13", Title: "At-scale wall-clock latency and queueing",
		Table:  t,
		Values: values,
		Series: []*metrics.Series{rate, &baseStats.Queue, &dscsStats.Queue,
			&baseStats.Latency, &dscsStats.Latency},
	}, nil
}
