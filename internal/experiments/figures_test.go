package experiments

import (
	"sync"
	"testing"
)

// sharedEnv builds one environment for the whole test binary; experiments
// cache their expensive intermediates on it.
var (
	envOnce sync.Once
	testEnv *Environment
	envErr  error
)

func env(t *testing.T) *Environment {
	t.Helper()
	envOnce.Do(func() {
		testEnv, envErr = NewEnvironment(42)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func run(t *testing.T, id string) *Result {
	t.Helper()
	spec, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	res, err := spec.Run(env(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

// within asserts a value lies in [lo, hi].
func within(t *testing.T, res *Result, name string, lo, hi float64) {
	t.Helper()
	v := res.Value(name)
	if v < lo || v > hi {
		t.Errorf("%s: %s = %.3f, want [%.3f, %.3f]", res.ID, name, v, lo, hi)
	}
}

func TestTable1Suite(t *testing.T) {
	res := run(t, "table1")
	within(t, res, "benchmarks", 8, 8)
	// Parameter counts match the published architectures.
	within(t, res, "params_m/asset-damage", 24, 27)
	within(t, res, "params_m/chatbot", 104, 116)
	within(t, res, "params_m/remote-sensing", 80, 92)
	if len(res.Table.Rows) != 8 {
		t.Errorf("table has %d rows, want 8", len(res.Table.Rows))
	}
}

func TestTable2Platforms(t *testing.T) {
	res := run(t, "table2")
	within(t, res, "platforms", 7, 7)
	// The headline power contrast: a 4.2W in-storage DSA against a 250W GPU.
	within(t, res, "tdp_w/DSCS-Serverless", 3, 5)
	within(t, res, "tdp_w/GPU (2080 Ti)", 250, 250)
}

func TestFig3TailShape(t *testing.T) {
	res := run(t, "fig3")
	// The paper: p99 ~110% above the median on average (factor ~2.1).
	within(t, res, "mean_p99_over_p50", 1.7, 2.4)
	// Larger payloads read slower at the median.
	if res.Value("p50_ms/ppe-detection") <= res.Value("p50_ms/chatbot") {
		t.Error("fig3: PPE's 18MB read should exceed the chatbot's 4KB read")
	}
}

func TestFig4CommunicationDominates(t *testing.T) {
	res := run(t, "fig4")
	// Average communication share >52% (paper: >55%).
	within(t, res, "mean_comm_frac", 0.50, 0.68)
	// The three benchmarks the paper singles out at >=70% communication.
	within(t, res, "comm_frac/credit-risk", 0.66, 0.95)
	within(t, res, "comm_frac/asset-damage", 0.55, 0.85)
	within(t, res, "comm_frac/moderation", 0.60, 0.90)
	// Amdahl bound on compute-only acceleration ~1.5x (paper: 1.52x).
	within(t, res, "amdahl_compute_cap", 1.3, 1.7)
}

func TestFig7PowerFrontier(t *testing.T) {
	res := run(t, "fig7")
	within(t, res, "configs_explored", 651, 2000)
	if res.Value("frontier_points") < 4 {
		t.Error("fig7: frontier too small")
	}
	// The DSE selects a 128x128 array on DDR5 (the paper's pick; our
	// memory model selects a larger buffer than the paper's 4MB —
	// documented in EXPERIMENTS.md).
	within(t, res, "optimal_dim", 128, 128)
	within(t, res, "optimal_mem_is_ddr5", 1, 1)
	// The paper's headline: 1024x1024 loses to 128x128 at batch one.
	if res.Value("best_throughput_dim1024") >= res.Value("best_throughput_dim128") {
		t.Errorf("fig7: best Dim1024 (%.0f req/s) should underperform best Dim128 (%.0f req/s)",
			res.Value("best_throughput_dim1024"), res.Value("best_throughput_dim128"))
	}
	// And the paper's exact pick remains competitive on the frontier.
	if res.Value("throughput_dim128_4mb") < 0.6*res.Value("best_throughput_dim128") {
		t.Error("fig7: Dim128-4MB should sit near the frontier")
	}
}

func TestFig8AreaFrontier(t *testing.T) {
	res := run(t, "fig8")
	if res.Value("frontier_points") < 4 {
		t.Error("fig8: frontier too small")
	}
	// A cubic fit exists (four coefficients reported).
	if res.Value("fit_c3") == 0 && res.Value("fit_c2") == 0 {
		t.Error("fig8: degenerate cubic fit")
	}
}

func TestFig9SpeedupShape(t *testing.T) {
	res := run(t, "fig9")
	// Paper: DSCS 3.6x; GPU 1.33x; FPGA slightly below/at baseline;
	// NS-ARM slightly under baseline; NS-Mobile-GPU 1.35x; NS-FPGA 2.2x.
	within(t, res, "geomean/DSCS-Serverless", 3.3, 4.5)
	within(t, res, "geomean/GPU (2080 Ti)", 1.1, 1.6)
	within(t, res, "geomean/FPGA (U280)", 0.8, 1.15)
	within(t, res, "geomean/NS-ARM", 0.75, 1.05)
	within(t, res, "geomean/NS-Mobile-GPU", 1.15, 1.65)
	within(t, res, "geomean/NS-FPGA (SmartSSD)", 1.8, 2.5)
	// Headline ratios: 2.7x over GPU, 3.7x over NS-ARM, 1.7x over NS-FPGA.
	within(t, res, "dscs_over_gpu", 2.3, 3.4)
	within(t, res, "dscs_over_ns_arm", 3.2, 5.0)
	within(t, res, "dscs_over_ns_fpga", 1.5, 2.2)
	// Credit Risk is the smallest DSCS win; PPE Detection the largest.
	credit := res.Value("speedup/DSCS-Serverless/credit-risk")
	ppe := res.Value("speedup/DSCS-Serverless/ppe-detection")
	for _, b := range env(t).Suite {
		s := res.Value("speedup/DSCS-Serverless/" + b.Slug)
		if s < credit {
			t.Errorf("fig9: %s (%.2f) below credit-risk (%.2f)", b.Slug, s, credit)
		}
		if s > ppe {
			t.Errorf("fig9: %s (%.2f) above ppe-detection (%.2f)", b.Slug, s, ppe)
		}
	}
}

func TestFig10BottleneckShift(t *testing.T) {
	res := run(t, "fig10")
	// GPU acceleration shrinks compute but communication remains: the GPU's
	// remote share must exceed the baseline's.
	if res.Value("remote_frac/GPU (2080 Ti)/asset-damage") <=
		res.Value("remote_frac/Baseline (CPU)/asset-damage") {
		t.Error("fig10: acceleration should shift the bottleneck to communication")
	}
	// DSCS eliminates the f1/f2 remote movement: its remote share (only
	// f3) must be well below the baseline's.
	if res.Value("remote_frac/DSCS-Serverless/ppe-detection") >=
		0.6*res.Value("remote_frac/Baseline (CPU)/ppe-detection") {
		t.Error("fig10: DSCS should slash the remote share")
	}
	// And its compute share is small (the DSA is fast).
	if res.Value("compute_frac/DSCS-Serverless/asset-damage") > 0.35 {
		t.Error("fig10: DSCS compute share should be small")
	}
}

func TestFig11EnergyShape(t *testing.T) {
	res := run(t, "fig11")
	// Paper: DSCS 3.5x (ours overshoots; see EXPERIMENTS.md), NS-FPGA the
	// most competitive conventional platform at ~1.9x less than DSCS.
	within(t, res, "geomean/DSCS-Serverless", 3.4, 7.0)
	ratio := res.Value("geomean/DSCS-Serverless") / res.Value("geomean/NS-FPGA (SmartSSD)")
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("fig11: DSCS/NS-FPGA energy ratio = %.2f, want ~1.9", ratio)
	}
	// DSCS leads every platform.
	for _, p := range env(t).Platforms {
		if p.Name() == "DSCS-Serverless" {
			continue
		}
		if res.Value("geomean/"+p.Name()) >= res.Value("geomean/DSCS-Serverless") {
			t.Errorf("fig11: %s beats DSCS on energy", p.Name())
		}
	}
	// PPE gains the most, credit-risk the least, among DSCS reductions.
	if res.Value("energy_reduction/DSCS-Serverless/ppe-detection") <=
		res.Value("energy_reduction/DSCS-Serverless/credit-risk") {
		t.Error("fig11: PPE should gain more energy than credit-risk")
	}
	// Compute-only: the DSA's inference energy is orders of magnitude
	// below the CPU's (paper reports 29x with its accounting).
	within(t, res, "dsa_compute_energy_ratio", 15, 1000)
}

func TestFig12CostEfficiency(t *testing.T) {
	res := run(t, "fig12")
	// Paper: DSCS 3.4x, NS-FPGA 1.6x.
	within(t, res, "cost_eff/DSCS-Serverless", 2.8, 4.4)
	within(t, res, "cost_eff/NS-FPGA (SmartSSD)", 1.3, 1.9)
	// DSCS ranks first, NS-FPGA second.
	dscs := res.Value("cost_eff/DSCS-Serverless")
	nsfpga := res.Value("cost_eff/NS-FPGA (SmartSSD)")
	for _, p := range env(t).Platforms {
		v := res.Value("cost_eff/" + p.Name())
		if p.Name() != "DSCS-Serverless" && v >= dscs {
			t.Errorf("fig12: %s (%.2f) >= DSCS (%.2f)", p.Name(), v, dscs)
		}
		if p.Name() != "DSCS-Serverless" && p.Name() != "NS-FPGA (SmartSSD)" && v >= nsfpga {
			t.Errorf("fig12: %s (%.2f) >= NS-FPGA (%.2f)", p.Name(), v, nsfpga)
		}
	}
	// The ASIC die is tens of dollars (ASIC Clouds model).
	within(t, res, "asic_die_cost", 30, 90)
}

func TestFig13AtScale(t *testing.T) {
	res := run(t, "fig13")
	// The trace swings between ~450 and ~730 req/s (Figure 13a).
	within(t, res, "trace_peak_rate", 600, 850)
	// The baseline queues heavily; DSCS barely queues (Figure 13b).
	if res.Value("baseline_peak_queue") < 20*res.Value("dscs_peak_queue")+100 {
		t.Errorf("fig13: baseline queue (%.0f) should dwarf DSCS (%.0f)",
			res.Value("baseline_peak_queue"), res.Value("dscs_peak_queue"))
	}
	// Baseline wall-clock latency climbs into seconds; DSCS stays low.
	within(t, res, "baseline_mean_ms", 700, 8000)
	within(t, res, "dscs_mean_ms", 40, 700)
	if res.Value("wallclock_improvement") < 4 {
		t.Errorf("fig13: wall-clock improvement %.1f too small",
			res.Value("wallclock_improvement"))
	}
	// Nothing is lost.
	within(t, res, "baseline_dropped", 0, 0)
	within(t, res, "dscs_dropped", 0, 0)
}

func TestFig14BatchSweep(t *testing.T) {
	res := run(t, "fig14")
	// Speedup grows monotonically with batch (paper: 3.6x -> 15.8x).
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		v := res.Value("geomean/batch" + itoa(b))
		if v <= prev {
			t.Errorf("fig14: speedup not increasing at batch %d: %.2f <= %.2f", b, v, prev)
		}
		prev = v
	}
	within(t, res, "geomean/batch1", 3.3, 4.5)
	within(t, res, "geomean/batch64", 12, 32)
	if res.Value("growth_1_to_64") < 3 {
		t.Errorf("fig14: growth %.2f too small", res.Value("growth_1_to_64"))
	}
	// Language models benefit most (weight reuse across the batch).
	if res.Value("chatbot/batch64") < res.Value("geomean/batch64") {
		t.Error("fig14: the chatbot should gain above the geomean at batch 64")
	}
}

func TestFig15TailSweep(t *testing.T) {
	res := run(t, "fig15")
	// Speedup grows monotonically toward the tail (paper: 3.1x -> 5.0x;
	// our amplification is smaller — see EXPERIMENTS.md).
	prev := 0.0
	for _, p := range []string{"p50", "p75", "p90", "p95", "p99"} {
		v := res.Value("speedup/" + p)
		if v <= prev {
			t.Errorf("fig15: speedup not increasing at %s", p)
		}
		prev = v
	}
	if res.Value("tail_amplification") < 1.04 {
		t.Errorf("fig15: amplification %.3f too flat", res.Value("tail_amplification"))
	}
}

func TestFig16AcceleratedFunctions(t *testing.T) {
	res := run(t, "fig16")
	prev := 0.0
	for extra := 0; extra <= 3; extra++ {
		v := res.Value("speedup/extra" + itoa(extra))
		if v <= prev {
			t.Errorf("fig16: speedup not increasing at +%d functions", extra)
		}
		prev = v
	}
	// Paper: 3.6x -> 8.1x (2.25x escalation); ours is smaller but clear.
	if res.Value("escalation") < 1.4 {
		t.Errorf("fig16: escalation %.2f too small", res.Value("escalation"))
	}
}

func TestFig17ColdStart(t *testing.T) {
	res := run(t, "fig17")
	// Paper: 3.6x warm falls to 2.6x cold.
	within(t, res, "speedup/warm", 3.3, 4.5)
	within(t, res, "speedup/cold", 2.2, 3.6)
	if res.Value("speedup/cold") >= res.Value("speedup/warm") {
		t.Error("fig17: cold must be slower than warm")
	}
	within(t, res, "cold_penalty", 1.1, 1.8)
}

func TestAllExperimentsRegistered(t *testing.T) {
	specs := All()
	if len(specs) != 21 {
		t.Fatalf("registry has %d experiments, want 21 (2 tables + 13 figures + 6 extensions)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate experiment id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Errorf("experiment %q incomplete", s.ID)
		}
	}
	if _, ok := ByID("fig9"); !ok {
		t.Error("ByID lookup broken")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
