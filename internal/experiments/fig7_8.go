package experiments

import (
	"dscs/internal/dse"
	"dscs/internal/metrics"
	"dscs/internal/power"
)

// exploreSpace runs the paper's full design-space exploration once per
// environment (it is shared by Figures 7 and 8).
func (e *Environment) explore() ([]dse.Point, error) {
	if e.dsePoints != nil {
		return e.dsePoints, nil
	}
	points, err := dse.Explore(dse.PaperSpace(), power.Node45nm)
	if err != nil {
		return nil, err
	}
	e.dsePoints = points
	return points, nil
}

// paretoResult renders one frontier figure.
func paretoResult(id, title, yName string, points []dse.Point,
	frontier []dse.Point, axes func(dse.Point) (float64, float64)) (*Result, error) {
	t := metrics.NewTable(title, "Design point", "Throughput(req/s)", yName, "Feasible")
	for _, p := range frontier {
		x, y := axes(p)
		t.AddRow(p.Label(), x, y, p.Feasible)
	}
	coeffs, err := dse.FitCubic(frontier, axes)
	if err != nil {
		return nil, err
	}
	values := map[string]float64{
		"configs_explored": float64(len(points)),
		"frontier_points":  float64(len(frontier)),
		"fit_c0":           coeffs[0],
		"fit_c1":           coeffs[1],
		"fit_c2":           coeffs[2],
		"fit_c3":           coeffs[3],
	}
	best, ok := dse.Optimal(points)
	if ok {
		values["optimal_dim"] = float64(best.Config.Rows)
		values["optimal_buf_mb"] = float64(best.Config.TotalBuf()) / 1e6
		values["optimal_mem_is_ddr5"] = boolTo01(best.Config.DRAM == power.DDR5)
		values["optimal_throughput"] = best.Throughput
	}
	s := &metrics.Series{Name: "frontier"}
	for _, p := range frontier {
		x, _ := axes(p)
		s.Add(0, x)
	}
	return &Result{ID: id, Title: title, Table: t, Values: values, Series: []*metrics.Series{s}}, nil
}

// Fig7 reproduces the power-performance Pareto frontier at 45 nm with its
// cubic fit, and reports the DSE-selected optimum (128x128, 4 MB, DDR5).
func Fig7(env *Environment) (*Result, error) {
	points, err := env.explore()
	if err != nil {
		return nil, err
	}
	frontier := dse.ParetoPower(points)
	res, err := paretoResult("fig7", "Power-performance frontier, 45nm",
		"DynPower(W)", points, frontier, dse.PowerAxes)
	if err != nil {
		return nil, err
	}
	// The paper's headline DSE finding: at batch 1 the 1024x1024 array
	// underperforms the 128x128 (tile DMA and fill/drain dominate).
	var t128x4mb, best128, best1024 float64
	for _, p := range points {
		if p.Config.DRAM != power.DDR5 {
			continue
		}
		if p.Config.Rows == 128 {
			if p.Config.TotalBuf() == 4*1024*1024 {
				t128x4mb = p.Throughput
			}
			if p.Throughput > best128 {
				best128 = p.Throughput
			}
		}
		if p.Config.Rows == 1024 && p.Throughput > best1024 {
			best1024 = p.Throughput
		}
	}
	res.Values["throughput_dim128_4mb"] = t128x4mb
	res.Values["best_throughput_dim128"] = best128
	res.Values["best_throughput_dim1024"] = best1024
	return res, nil
}

// Fig8 reproduces the area-performance frontier at 45 nm with its cubic fit.
func Fig8(env *Environment) (*Result, error) {
	points, err := env.explore()
	if err != nil {
		return nil, err
	}
	frontier := dse.ParetoArea(points)
	return paretoResult("fig8", "Area-performance frontier, 45nm",
		"Area(mm2)", points, frontier, dse.AreaAxes)
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
