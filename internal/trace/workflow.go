// workflow.go is the workflow trace class: invocation DAGs whose stage
// outputs become stage inputs as object-store objects. Like the fault
// scripts it is pure data — a spec says which stages exist, what each runs,
// and what it waits on; the serve core and the sims decide where a stage
// runs and what an unlock costs. The text spelling mirrors ParseFaultScript
// so operators compose both on the same command line.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dscs/internal/sim"
	"dscs/internal/workload"
)

// WorkflowStage is one node of the invocation graph: a benchmark invocation
// that may not start before Offset from workflow arrival and before every
// dependency has completed and written its output object.
type WorkflowStage struct {
	ID        string
	Benchmark string // workload slug
	Offset    time.Duration
	Deps      []string // stage IDs whose outputs this stage reads
}

// String formats the stage in the script spelling.
func (st WorkflowStage) String() string {
	return fmt.Sprintf("%s:%s=%s:%s", st.Offset, st.ID, st.Benchmark, strings.Join(st.Deps, ","))
}

// WorkflowSpec is one workflow's invocation graph in spec order.
type WorkflowSpec struct {
	Stages []WorkflowStage
}

// FormatWorkflowSpec renders a spec back into the ParseWorkflowSpec
// spelling; Parse(Format(spec)) round-trips any parsed spec.
func FormatWorkflowSpec(spec *WorkflowSpec) string {
	if spec == nil {
		return ""
	}
	parts := make([]string, len(spec.Stages))
	for i, st := range spec.Stages {
		parts[i] = st.String()
	}
	return strings.Join(parts, ";")
}

// stageIDRune reports whether r may appear in a stage ID: anything except
// the separators the spelling reserves and whitespace.
func stageIDRune(r rune) bool {
	switch r {
	case ':', ';', ',', '=', '\n':
		return false
	}
	return !strings.ContainsRune(" \t\r", r)
}

// validStageID rejects empty IDs and IDs carrying separator runes.
func validStageID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		if !stageIDRune(r) {
			return false
		}
	}
	return true
}

// ParseWorkflowSpec decodes an invocation graph of the form
//
//	0s:extract=credit-risk:;0s:shard0=nl-query:extract;0s:gather=credit-risk:shard0
//
// — stages separated by ';' or newlines, each "offset:id=benchmark:deps"
// with deps a comma-separated list of stage IDs (empty for a root stage).
// The offset is the stage's earliest start relative to workflow arrival;
// dependencies gate it further. Stages are returned in script order and the
// graph is validated: duplicate IDs, dangling or duplicate dependencies,
// self-dependencies, cycles, and the empty graph are all errors — a spec
// that parses is a spec the executor can run to completion.
func ParseWorkflowSpec(script string) (*WorkflowSpec, error) {
	spec := &WorkflowSpec{}
	for _, line := range strings.FieldsFunc(script, func(r rune) bool {
		return r == ';' || r == '\n'
	}) {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: workflow stage %q is not offset:id=benchmark:deps", line)
		}
		offset, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: workflow stage offset %q: %w", parts[0], err)
		}
		if offset < 0 {
			return nil, fmt.Errorf("trace: negative workflow stage offset %q", parts[0])
		}
		id, bench, ok := strings.Cut(parts[1], "=")
		if !ok {
			return nil, fmt.Errorf("trace: workflow stage %q is missing id=benchmark", line)
		}
		id, bench = strings.TrimSpace(id), strings.TrimSpace(bench)
		if !validStageID(id) {
			return nil, fmt.Errorf("trace: invalid workflow stage id %q", id)
		}
		if bench == "" {
			return nil, fmt.Errorf("trace: workflow stage %q names no benchmark", id)
		}
		st := WorkflowStage{ID: id, Benchmark: bench, Offset: offset}
		for _, dep := range strings.Split(parts[2], ",") {
			dep = strings.TrimSpace(dep)
			if dep == "" {
				continue
			}
			if !validStageID(dep) {
				return nil, fmt.Errorf("trace: stage %q has an invalid dependency id %q", id, dep)
			}
			st.Deps = append(st.Deps, dep)
		}
		spec.Stages = append(spec.Stages, st)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate checks the graph: at least one stage, unique stage IDs, every
// dependency resolving to a declared stage exactly once, no
// self-dependencies, and no cycles (Kahn's topological sort must consume
// every stage).
func (spec *WorkflowSpec) Validate() error {
	if spec == nil || len(spec.Stages) == 0 {
		return fmt.Errorf("trace: empty workflow graph")
	}
	idx := make(map[string]int, len(spec.Stages))
	for i, st := range spec.Stages {
		if !validStageID(st.ID) {
			return fmt.Errorf("trace: invalid workflow stage id %q", st.ID)
		}
		if st.Benchmark == "" {
			return fmt.Errorf("trace: workflow stage %q names no benchmark", st.ID)
		}
		if st.Offset < 0 {
			return fmt.Errorf("trace: workflow stage %q has a negative offset", st.ID)
		}
		if _, dup := idx[st.ID]; dup {
			return fmt.Errorf("trace: duplicate workflow stage id %q", st.ID)
		}
		idx[st.ID] = i
	}
	pending := make([]int, len(spec.Stages))
	dependents := make([][]int, len(spec.Stages))
	for i, st := range spec.Stages {
		seen := make(map[string]bool, len(st.Deps))
		for _, dep := range st.Deps {
			j, ok := idx[dep]
			if !ok {
				return fmt.Errorf("trace: stage %q depends on undeclared stage %q", st.ID, dep)
			}
			if dep == st.ID {
				return fmt.Errorf("trace: stage %q depends on itself", st.ID)
			}
			if seen[dep] {
				return fmt.Errorf("trace: stage %q declares dependency %q twice", st.ID, dep)
			}
			seen[dep] = true
			pending[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	// Kahn's sort: if it cannot consume every stage, what remains is a
	// cycle.
	ready := make([]int, 0, len(spec.Stages))
	for i, n := range pending {
		if n == 0 {
			ready = append(ready, i)
		}
	}
	consumed := 0
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		consumed++
		for _, j := range dependents[i] {
			if pending[j]--; pending[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if consumed != len(spec.Stages) {
		stuck := make([]string, 0, len(spec.Stages)-consumed)
		for i, n := range pending {
			if n > 0 {
				stuck = append(stuck, spec.Stages[i].ID)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("trace: workflow graph has a cycle through %s", strings.Join(stuck, ", "))
	}
	return nil
}

// Roots returns the indices of stages with no dependencies, in spec order.
func (spec *WorkflowSpec) Roots() []int {
	var roots []int
	for i, st := range spec.Stages {
		if len(st.Deps) == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// Workflow is one arrival of the workflow trace: at At, the whole graph is
// admitted and its root stages unlock.
type Workflow struct {
	ID   int
	At   time.Duration
	Spec *WorkflowSpec
}

// WorkflowTrace is an ordered workflow arrival sequence.
type WorkflowTrace struct {
	Workflows []Workflow
	Duration  time.Duration
}

// Stages totals the stages across every workflow in the trace.
func (tr *WorkflowTrace) Stages() int {
	n := 0
	for _, w := range tr.Workflows {
		n += len(w.Spec.Stages)
	}
	return n
}

// WorkflowConfig parameterizes GenerateWorkflows: a Poisson arrival process
// of two workflow classes — ETL scatter-gather (extract fans out to FanOut
// parallel same-benchmark transform shards, a gather joins them) and ML
// chains (preprocess, infer, postprocess in sequence).
type WorkflowConfig struct {
	Duration time.Duration
	// Rate is workflow arrivals per second.
	Rate float64
	// ETLShare is the fraction of arrivals drawn as ETL scatter-gather
	// graphs; the rest are ML chains. Must lie in [0, 1].
	ETLShare float64
	// FanOut is the ETL transform width (>= 1). The shards run the same
	// benchmark so parallel unlocks coalesce through the batch former.
	FanOut int
}

// Validate rejects degenerate configs.
func (c WorkflowConfig) Validate() error {
	if c.Duration <= 0 || c.Rate <= 0 {
		return fmt.Errorf("trace: invalid workflow arrival profile")
	}
	if c.ETLShare < 0 || c.ETLShare > 1 {
		return fmt.Errorf("trace: ETLShare must lie in [0, 1]")
	}
	if c.FanOut < 1 {
		return fmt.Errorf("trace: FanOut must be >= 1")
	}
	return nil
}

// etlSpec builds one ETL scatter-gather graph: extract → FanOut parallel
// transform shards (one benchmark, so they batch together) → gather.
func etlSpec(fanOut int, extract, transform, gather string) *WorkflowSpec {
	spec := &WorkflowSpec{Stages: []WorkflowStage{
		{ID: "extract", Benchmark: extract},
	}}
	shards := make([]string, fanOut)
	for i := 0; i < fanOut; i++ {
		id := fmt.Sprintf("shard%d", i)
		shards[i] = id
		spec.Stages = append(spec.Stages, WorkflowStage{
			ID: id, Benchmark: transform, Deps: []string{"extract"},
		})
	}
	spec.Stages = append(spec.Stages, WorkflowStage{
		ID: "gather", Benchmark: gather, Deps: shards,
	})
	return spec
}

// mlSpec builds one ML chain: preprocess → infer → postprocess.
func mlSpec(pre, infer, post string) *WorkflowSpec {
	return &WorkflowSpec{Stages: []WorkflowStage{
		{ID: "pre", Benchmark: pre},
		{ID: "infer", Benchmark: infer, Deps: []string{"pre"}},
		{ID: "post", Benchmark: post, Deps: []string{"infer"}},
	}}
}

// GenerateWorkflows draws the workflow arrival sequence: a homogeneous
// Poisson process at cfg.Rate, each arrival an ETL scatter-gather graph
// with probability cfg.ETLShare and an ML chain otherwise, stage benchmarks
// sampled uniformly from the suite.
func GenerateWorkflows(cfg WorkflowConfig, suite []*workload.Benchmark, rng *sim.RNG) (*WorkflowTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("trace: empty suite")
	}
	pick := func() string { return suite[rng.Intn(len(suite))].Slug }
	tr := &WorkflowTrace{Duration: cfg.Duration}
	meanGap := time.Duration(float64(time.Second) / cfg.Rate)
	t := time.Duration(0)
	id := 0
	for {
		t += rng.Exp(meanGap)
		if t >= cfg.Duration {
			break
		}
		var spec *WorkflowSpec
		if rng.Float64() < cfg.ETLShare {
			spec = etlSpec(cfg.FanOut, pick(), pick(), pick())
		} else {
			spec = mlSpec(pick(), pick(), pick())
		}
		tr.Workflows = append(tr.Workflows, Workflow{ID: id, At: t, Spec: spec})
		id++
	}
	return tr, nil
}
