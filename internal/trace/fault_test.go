package trace

import (
	"strings"
	"testing"
	"time"
)

func TestParseFaultScript(t *testing.T) {
	events, err := ParseFaultScript("30s:pool-down:DSCS-Serverless; 2m:pool-up:DSCS-Serverless\n45s:drive-down:nvme-2;1m30s:drive-up:nvme-2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []FaultEvent{
		{At: 30 * time.Second, Kind: FaultPoolDown, Target: "DSCS-Serverless"},
		{At: 45 * time.Second, Kind: FaultDriveDown, Target: "nvme-2"},
		{At: 90 * time.Second, Kind: FaultDriveUp, Target: "nvme-2"},
		{At: 2 * time.Minute, Kind: FaultPoolUp, Target: "DSCS-Serverless"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestParseFaultScriptEmpty(t *testing.T) {
	for _, script := range []string{"", " \n ", ";;"} {
		events, err := ParseFaultScript(script)
		if err != nil || events != nil {
			t.Errorf("ParseFaultScript(%q) = %v, %v; want nil, nil", script, events, err)
		}
	}
}

func TestParseFaultScriptErrors(t *testing.T) {
	for _, script := range []string{
		"30s:pool-down",          // missing target
		"30s:pool-down:",         // empty target
		"banana:pool-down:dscs",  // bad duration
		"-5s:pool-down:dscs",     // negative offset
		"30s:pool-sideways:dscs", // unknown kind
	} {
		if _, err := ParseFaultScript(script); err == nil {
			t.Errorf("ParseFaultScript(%q) accepted", script)
		}
	}
}

func TestFaultScriptRoundTrip(t *testing.T) {
	script := "30s:pool-down:dscs;45s:drive-down:nvme-0;2m0s:pool-up:dscs"
	events, err := ParseFaultScript(script)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := FormatFaultScript(events); got != script {
		t.Fatalf("round trip = %q, want %q", got, script)
	}
}

func TestFaultKindPredicates(t *testing.T) {
	cases := []struct {
		kind       FaultKind
		pool, down bool
	}{
		{FaultPoolDown, true, true},
		{FaultPoolUp, true, false},
		{FaultDriveDown, false, true},
		{FaultDriveUp, false, false},
	}
	for _, c := range cases {
		if c.kind.Pool() != c.pool || c.kind.Down() != c.down {
			t.Errorf("%v: Pool=%v Down=%v, want %v %v", c.kind, c.kind.Pool(), c.kind.Down(), c.pool, c.down)
		}
	}
}

// FuzzFaultScript checks that any accepted script yields a well-formed,
// ordered schedule that survives a format/parse round trip.
func FuzzFaultScript(f *testing.F) {
	f.Add("30s:pool-down:DSCS-Serverless;2m:pool-up:DSCS-Serverless")
	f.Add("45s:drive-down:nvme-2\n1m30s:drive-up:nvme-2")
	f.Add("0s:pool-down:a:b:c")
	f.Add(";;\n ;")
	f.Fuzz(func(t *testing.T, script string) {
		events, err := ParseFaultScript(script)
		if err != nil {
			return
		}
		for i, ev := range events {
			if ev.At < 0 {
				t.Fatalf("event %d has negative offset %v", i, ev.At)
			}
			if strings.TrimSpace(ev.Target) == "" {
				t.Fatalf("event %d has blank target", i)
			}
			if i > 0 && events[i-1].At > ev.At {
				t.Fatalf("events out of order: %v after %v", ev.At, events[i-1].At)
			}
		}
		again, err := ParseFaultScript(FormatFaultScript(events))
		if err != nil {
			t.Fatalf("re-parse of formatted script: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip lost events: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
