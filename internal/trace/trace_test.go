package trace

import (
	"math"
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/workload"
)

func TestPaperTraceProfile(t *testing.T) {
	cfg := PaperTrace()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bursts at the start of each period.
	if r := cfg.RateAt(0); r != cfg.BurstRate {
		t.Errorf("rate at burst = %v", r)
	}
	if r := cfg.RateAt(2 * time.Minute); r != cfg.BaseRate {
		t.Errorf("rate between bursts = %v", r)
	}
	if cfg.BurstRate < 600 || cfg.BurstRate > 900 {
		t.Errorf("burst rate %v outside Figure 13a's swing", cfg.BurstRate)
	}
}

func TestGenerateRates(t *testing.T) {
	rng := sim.NewRNG(7)
	tr, err := Generate(PaperTrace(), workload.Suite(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	// Mean rate between base and burst.
	mean := tr.MeanRate()
	if mean < PaperTrace().BaseRate || mean > PaperTrace().BurstRate {
		t.Errorf("mean rate %.0f outside [base, burst]", mean)
	}
	// Arrivals are ordered and within the duration.
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].At < tr.Requests[i-1].At {
			t.Fatal("arrivals out of order")
		}
	}
	last := tr.Requests[len(tr.Requests)-1]
	if last.At >= tr.Duration {
		t.Fatal("arrival beyond trace duration")
	}
	// All eight benchmarks appear.
	seen := map[string]bool{}
	for _, r := range tr.Requests {
		seen[r.Benchmark] = true
	}
	if len(seen) != 8 {
		t.Errorf("only %d benchmarks sampled", len(seen))
	}
}

func TestBurstsVisibleInRateSeries(t *testing.T) {
	rng := sim.NewRNG(11)
	cfg := PaperTrace()
	tr, err := Generate(cfg, workload.Suite(), rng)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.RateSeries(15 * time.Second)
	if len(s.Points) < 10 {
		t.Fatalf("rate series too short: %d points", len(s.Points))
	}
	// The peak bucket approaches the burst rate; quiet buckets the base.
	peak := s.MaxValue()
	if peak < cfg.BaseRate*1.2 {
		t.Errorf("no visible burst: peak %.0f vs base %.0f", peak, cfg.BaseRate)
	}
	if peak > cfg.BurstRate*1.3 {
		t.Errorf("peak %.0f implausibly above the burst rate", peak)
	}
}

func TestPoissonStatistics(t *testing.T) {
	// With a flat profile the arrival count should match rate*duration.
	cfg := BurstyConfig{
		Duration: 10 * time.Minute, BaseRate: 300, BurstRate: 300.0001,
		BurstEvery: time.Minute, BurstLength: time.Second,
	}
	rng := sim.NewRNG(3)
	tr, err := Generate(cfg, workload.Suite(), rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 300.0 * 600
	got := float64(len(tr.Requests))
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("flat-rate arrivals = %.0f, want ~%.0f", got, want)
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(BurstyConfig{}, workload.Suite(), rng); err == nil {
		t.Error("invalid config must fail")
	}
	if _, err := Generate(PaperTrace(), nil, rng); err == nil {
		t.Error("empty suite must fail")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(PaperTrace(), workload.Suite(), sim.NewRNG(5))
	b, _ := Generate(PaperTrace(), workload.Suite(), sim.NewRNG(5))
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed must give same trace")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("trace mismatch at same seed")
		}
	}
}
