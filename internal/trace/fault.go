// fault.go is the failure-event trace class: a scripted schedule of drive
// and pool faults replayed against the serve core, on the virtual clock in
// the simulations and on wall time in the live engine. Like the arrival
// traces it is pure data — the scheduler decides what a kill means; the
// script only says when one happens.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FaultKind classifies one scripted fault event.
type FaultKind int

// Fault kinds: pools brown out and recover (a platform's workers stop
// dispatching; its queue survives), drives fail and recover (replica
// failover and conventional-execution fallback in objstore).
const (
	FaultPoolDown FaultKind = iota
	FaultPoolUp
	FaultDriveDown
	FaultDriveUp
)

// faultKindNames is the script spelling of each kind (ParseFaultScript and
// String stay inverses through it).
var faultKindNames = map[FaultKind]string{
	FaultPoolDown:  "pool-down",
	FaultPoolUp:    "pool-up",
	FaultDriveDown: "drive-down",
	FaultDriveUp:   "drive-up",
}

// String names the kind in the script spelling.
func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Pool reports whether the event targets a worker pool (vs. a drive).
func (k FaultKind) Pool() bool { return k == FaultPoolDown || k == FaultPoolUp }

// Down reports whether the event is a failure (vs. a recovery).
func (k FaultKind) Down() bool { return k == FaultPoolDown || k == FaultDriveDown }

// FaultEvent is one scripted fault: at offset At from the start of the
// run, the named pool or drive fails or recovers.
type FaultEvent struct {
	At     time.Duration
	Kind   FaultKind
	Target string
}

// String formats the event in the script spelling.
func (ev FaultEvent) String() string {
	return fmt.Sprintf("%s:%s:%s", ev.At, ev.Kind, ev.Target)
}

// FormatFaultScript renders events back into the ParseFaultScript
// spelling; Parse(Format(events)) round-trips any parsed script.
func FormatFaultScript(events []FaultEvent) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

// ParseFaultScript decodes a fault schedule of the form
//
//	30s:pool-down:DSCS-Serverless;2m:pool-up:DSCS-Serverless
//
// — events separated by ';' or newlines, each "offset:kind:target" with
// kind one of pool-down, pool-up, drive-down, drive-up. The target is
// everything after the second ':' (platform names may contain any rune
// except the separators). Events are returned sorted by offset, ties in
// script order; an empty script returns nil.
func ParseFaultScript(script string) ([]FaultEvent, error) {
	var events []FaultEvent
	for _, line := range strings.FieldsFunc(script, func(r rune) bool {
		return r == ';' || r == '\n'
	}) {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: fault event %q is not offset:kind:target", line)
		}
		at, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: fault offset %q: %w", parts[0], err)
		}
		if at < 0 {
			return nil, fmt.Errorf("trace: negative fault offset %q", parts[0])
		}
		kind, ok := parseFaultKind(parts[1])
		if !ok {
			return nil, fmt.Errorf("trace: unknown fault kind %q (pool-down, pool-up, drive-down, drive-up)", parts[1])
		}
		target := strings.TrimSpace(parts[2])
		if target == "" {
			return nil, fmt.Errorf("trace: fault event %q has an empty target", line)
		}
		events = append(events, FaultEvent{At: at, Kind: kind, Target: target})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// parseFaultKind inverts FaultKind.String.
func parseFaultKind(s string) (FaultKind, bool) {
	for k, name := range faultKindNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}
