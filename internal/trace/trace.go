// Package trace generates request arrival traces for the at-scale
// evaluation (Figure 13a): an open-loop Poisson process whose rate follows
// a bursty profile, with each request sampling a benchmark from the suite —
// the methodology the paper borrows from serverless inference-serving work.
package trace

import (
	"fmt"
	"math"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sim"
	"dscs/internal/workload"
)

// Request is one arrival.
type Request struct {
	ID        int
	At        time.Duration
	Benchmark string // workload slug
}

// Trace is an ordered arrival sequence.
type Trace struct {
	Requests []Request
	Duration time.Duration
}

// BurstyConfig parameterizes the rate profile: a base rate with periodic
// bursts, matching the 200-800 requests/s swings of Figure 13a.
type BurstyConfig struct {
	Duration    time.Duration
	BaseRate    float64 // requests per second between bursts
	BurstRate   float64 // requests per second during bursts
	BurstEvery  time.Duration
	BurstLength time.Duration
}

// PaperTrace is the 20-minute bursty profile of the at-scale runs.
func PaperTrace() BurstyConfig {
	return BurstyConfig{
		Duration:    20 * time.Minute,
		BaseRate:    450,
		BurstRate:   720,
		BurstEvery:  4 * time.Minute,
		BurstLength: 45 * time.Second,
	}
}

// Validate rejects degenerate configs.
func (c BurstyConfig) Validate() error {
	if c.Duration <= 0 || c.BaseRate <= 0 || c.BurstRate < c.BaseRate {
		return fmt.Errorf("trace: invalid rate profile")
	}
	if c.BurstEvery <= 0 || c.BurstLength <= 0 || c.BurstLength >= c.BurstEvery {
		return fmt.Errorf("trace: invalid burst timing")
	}
	return nil
}

// RateAt returns the instantaneous arrival rate.
func (c BurstyConfig) RateAt(t time.Duration) float64 {
	phase := t % c.BurstEvery
	if phase < c.BurstLength {
		return c.BurstRate
	}
	return c.BaseRate
}

// DiurnalConfig parameterizes a day-shaped rate profile with bursts riding
// on top: a sinusoid swings the base rate between MinRate (trough, at t=0)
// and MaxRate (crest) over each Period, and periodic bursts multiply
// whatever the sinusoid sits at by BurstFactor — spikes proportional to
// ambient traffic, so nights stay quiet while daytime bursts overwhelm a
// mid-sized pool. This is the elastic-capacity stress shape: a fixed pool
// sized near the crest idles through every trough, and a purely reactive
// one eats a cold start at every burst edge.
type DiurnalConfig struct {
	Duration time.Duration
	// MinRate and MaxRate bound the sinusoidal base in requests/s.
	MinRate, MaxRate float64
	// Period is one full trough-crest-trough cycle.
	Period time.Duration
	// BurstFactor multiplies the base rate during bursts (0 or 1
	// disables; must otherwise exceed 1).
	BurstFactor float64
	// BurstEvery and BurstLength time the bursts (as in BurstyConfig).
	BurstEvery, BurstLength time.Duration
}

// Validate rejects degenerate configs.
func (c DiurnalConfig) Validate() error {
	if c.Duration <= 0 || c.MinRate <= 0 || c.MaxRate < c.MinRate || c.Period <= 0 {
		return fmt.Errorf("trace: invalid diurnal profile")
	}
	if c.BurstFactor != 0 && c.BurstFactor < 1 {
		return fmt.Errorf("trace: BurstFactor must be 0 (off) or >= 1")
	}
	if c.BurstFactor > 1 &&
		(c.BurstEvery <= 0 || c.BurstLength <= 0 || c.BurstLength >= c.BurstEvery) {
		return fmt.Errorf("trace: invalid burst timing")
	}
	return nil
}

// peak is the thinning envelope.
func (c DiurnalConfig) peak() float64 {
	if c.BurstFactor > 1 {
		return c.MaxRate * c.BurstFactor
	}
	return c.MaxRate
}

// RateAt returns the instantaneous arrival rate.
func (c DiurnalConfig) RateAt(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(c.Period)
	rate := c.MinRate + (c.MaxRate-c.MinRate)*(1-math.Cos(phase))/2
	if c.BurstFactor > 1 && t%c.BurstEvery < c.BurstLength {
		rate *= c.BurstFactor
	}
	return rate
}

// Generate draws the arrival sequence: a non-homogeneous Poisson process by
// thinning against the peak rate, with benchmarks sampled uniformly (the
// paper samples functions randomly from the suite).
func Generate(cfg BurstyConfig, suite []*workload.Benchmark, rng *sim.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return generate(cfg.Duration, cfg.BurstRate, cfg.RateAt, suite, rng)
}

// GenerateDiurnal draws a diurnal+bursty arrival sequence by the same
// thinning construction.
func GenerateDiurnal(cfg DiurnalConfig, suite []*workload.Benchmark, rng *sim.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return generate(cfg.Duration, cfg.peak(), cfg.RateAt, suite, rng)
}

// generate is the shared thinning loop: exponential gaps at the peak rate,
// arrivals kept with probability rate(t)/peak.
func generate(duration time.Duration, peak float64, rateAt func(time.Duration) float64, suite []*workload.Benchmark, rng *sim.RNG) (*Trace, error) {
	if len(suite) == 0 {
		return nil, fmt.Errorf("trace: empty suite")
	}
	tr := &Trace{Duration: duration}
	meanGap := time.Duration(float64(time.Second) / peak)
	t := time.Duration(0)
	id := 0
	for {
		t += rng.Exp(meanGap)
		if t >= duration {
			break
		}
		// Thinning: accept with probability rate(t)/peak.
		if rng.Float64()*peak > rateAt(t) {
			continue
		}
		b := suite[rng.Intn(len(suite))]
		tr.Requests = append(tr.Requests, Request{ID: id, At: t, Benchmark: b.Slug})
		id++
	}
	return tr, nil
}

// RateSeries buckets arrivals into a requests/second time series
// (Figure 13a's plotted form).
func (tr *Trace) RateSeries(bucket time.Duration) *metrics.Series {
	s := &metrics.Series{Name: "requests/s"}
	if bucket <= 0 || len(tr.Requests) == 0 {
		return s
	}
	counts := make(map[int]int)
	maxBucket := int(tr.Duration / bucket)
	for _, r := range tr.Requests {
		counts[int(r.At/bucket)]++
	}
	for i := 0; i <= maxBucket; i++ {
		s.Add(time.Duration(i)*bucket, float64(counts[i])/bucket.Seconds())
	}
	return s
}

// MeanRate is the trace-wide average arrival rate.
func (tr *Trace) MeanRate() float64 {
	if tr.Duration <= 0 {
		return 0
	}
	return float64(len(tr.Requests)) / tr.Duration.Seconds()
}
