package trace

import (
	"strings"
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/workload"
)

func TestParseWorkflowSpecRoundTrip(t *testing.T) {
	script := "0s:extract=credit-risk:;0s:shard0=nl-query:extract;0s:shard1=nl-query:extract;30s:gather=credit-risk:shard0,shard1"
	spec, err := ParseWorkflowSpec(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Stages) != 4 {
		t.Fatalf("parsed %d stages", len(spec.Stages))
	}
	gather := spec.Stages[3]
	if gather.ID != "gather" || gather.Benchmark != "credit-risk" ||
		gather.Offset != 30*time.Second || len(gather.Deps) != 2 {
		t.Fatalf("gather stage %+v", gather)
	}
	again, err := ParseWorkflowSpec(FormatWorkflowSpec(spec))
	if err != nil {
		t.Fatalf("re-parse of formatted spec: %v", err)
	}
	if len(again.Stages) != len(spec.Stages) {
		t.Fatalf("round trip lost stages: %d -> %d", len(spec.Stages), len(again.Stages))
	}
	for i := range spec.Stages {
		a, b := spec.Stages[i], again.Stages[i]
		if a.ID != b.ID || a.Benchmark != b.Benchmark || a.Offset != b.Offset ||
			strings.Join(a.Deps, ",") != strings.Join(b.Deps, ",") {
			t.Fatalf("round trip changed stage %d: %+v -> %+v", i, a, b)
		}
	}
}

func TestParseWorkflowSpecFindings(t *testing.T) {
	cases := []struct {
		name, script, want string
	}{
		{"empty graph", "", "empty workflow graph"},
		{"separators only", ";;\n ;", "empty workflow graph"},
		{"missing fields", "0s:a=x", "not offset:id=benchmark:deps"},
		{"no benchmark", "0s:a=:", "names no benchmark"},
		{"no id", "0s:=x:", "invalid workflow stage id"},
		{"bad offset", "soon:a=x:", "workflow stage offset"},
		{"negative offset", "-5s:a=x:", "negative workflow stage offset"},
		{"duplicate id", "0s:a=x:;0s:a=y:", "duplicate workflow stage id"},
		{"dangling dep", "0s:a=x:ghost", "undeclared stage"},
		{"self dep", "0s:a=x:a", "depends on itself"},
		{"duplicate dep", "0s:a=x:;0s:b=y:a,a", "twice"},
		{"two-cycle", "0s:a=x:b;0s:b=y:a", "cycle"},
		{"long cycle", "0s:a=x:c;0s:b=y:a;0s:c=z:b", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseWorkflowSpec(tc.script)
			if err == nil {
				t.Fatalf("silently accepted %q: %+v", tc.script, spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWorkflowSpecRoots(t *testing.T) {
	spec, err := ParseWorkflowSpec("0s:a=x:;0s:b=y:;0s:c=z:a,b")
	if err != nil {
		t.Fatal(err)
	}
	roots := spec.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 1 {
		t.Fatalf("roots = %v", roots)
	}
}

func TestGenerateWorkflowsShapes(t *testing.T) {
	cfg := WorkflowConfig{Duration: 5 * time.Minute, Rate: 0.5, ETLShare: 0.5, FanOut: 3}
	tr, err := GenerateWorkflows(cfg, workload.Suite(), sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Workflows) == 0 {
		t.Fatal("empty workflow trace")
	}
	etl, ml := 0, 0
	for _, w := range tr.Workflows {
		if err := w.Spec.Validate(); err != nil {
			t.Fatalf("workflow %d: %v", w.ID, err)
		}
		if w.At < 0 || w.At >= cfg.Duration {
			t.Fatalf("workflow %d arrives at %v outside the trace", w.ID, w.At)
		}
		switch len(w.Spec.Stages) {
		case 3: // pre → infer → post
			ml++
		case 2 + cfg.FanOut: // extract → shards → gather
			etl++
			// The shards must share one benchmark so parallel unlocks can
			// coalesce through the batch former.
			bench := w.Spec.Stages[1].Benchmark
			for _, st := range w.Spec.Stages[1 : 1+cfg.FanOut] {
				if st.Benchmark != bench {
					t.Fatalf("workflow %d shards mix benchmarks", w.ID)
				}
				if len(st.Deps) != 1 || st.Deps[0] != "extract" {
					t.Fatalf("workflow %d shard deps %v", w.ID, st.Deps)
				}
			}
		default:
			t.Fatalf("workflow %d has unexpected shape (%d stages)", w.ID, len(w.Spec.Stages))
		}
	}
	if etl == 0 || ml == 0 {
		t.Fatalf("one class missing: %d ETL, %d ML", etl, ml)
	}
	if tr.Stages() == 0 {
		t.Fatal("zero stage total")
	}
	// Same seed, same trace.
	again, err := GenerateWorkflows(cfg, workload.Suite(), sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Workflows) != len(tr.Workflows) {
		t.Fatalf("regeneration drifted: %d vs %d workflows", len(again.Workflows), len(tr.Workflows))
	}
	for i := range tr.Workflows {
		if again.Workflows[i].At != tr.Workflows[i].At ||
			FormatWorkflowSpec(again.Workflows[i].Spec) != FormatWorkflowSpec(tr.Workflows[i].Spec) {
			t.Fatalf("workflow %d drifted across regenerations", i)
		}
	}
}

func TestGenerateWorkflowsRejectsDegenerate(t *testing.T) {
	rng := sim.NewRNG(1)
	bad := []WorkflowConfig{
		{},
		{Duration: time.Minute, Rate: 0, ETLShare: 0.5, FanOut: 2},
		{Duration: time.Minute, Rate: 1, ETLShare: 1.5, FanOut: 2},
		{Duration: time.Minute, Rate: 1, ETLShare: 0.5, FanOut: 0},
	}
	for _, cfg := range bad {
		if _, err := GenerateWorkflows(cfg, workload.Suite(), rng); err == nil {
			t.Fatalf("accepted degenerate config %+v", cfg)
		}
	}
	good := WorkflowConfig{Duration: time.Minute, Rate: 1, ETLShare: 0.5, FanOut: 2}
	if _, err := GenerateWorkflows(good, nil, rng); err == nil {
		t.Fatal("accepted an empty suite")
	}
}

// FuzzWorkflowSpec drives the spec decoder: structurally broken graphs —
// cycles, dangling or duplicate deps, duplicate stage IDs, the empty
// graph — must surface as errors, never panics or silent accepts, and any
// accepted spec must validate and round-trip through its formatted
// spelling.
func FuzzWorkflowSpec(f *testing.F) {
	f.Add("0s:extract=credit-risk:;0s:shard0=nl-query:extract;0s:gather=credit-risk:shard0")
	f.Add("0s:pre=a:\n5s:infer=b:pre\n0s:post=c:infer")
	f.Add("0s:a=x:b;0s:b=y:a")
	f.Add("0s:a=x:ghost")
	f.Add("0s:a=x:;0s:a=y:")
	f.Add("0s:a=x:a")
	f.Add(";;\n ;")
	f.Add("0s:a=x")
	f.Fuzz(func(t *testing.T, script string) {
		spec, err := ParseWorkflowSpec(script)
		if err != nil {
			return
		}
		// Whatever parses must be a runnable graph...
		if err := spec.Validate(); err != nil {
			t.Fatalf("parsed spec fails validation: %v", err)
		}
		if len(spec.Stages) == 0 {
			t.Fatal("empty graph accepted")
		}
		if len(spec.Roots()) == 0 {
			t.Fatal("acyclic graph with no roots")
		}
		// ...and survive the Format/Parse round trip exactly.
		again, err := ParseWorkflowSpec(FormatWorkflowSpec(spec))
		if err != nil {
			t.Fatalf("re-parse of formatted spec: %v", err)
		}
		if len(again.Stages) != len(spec.Stages) {
			t.Fatalf("round trip lost stages: %d -> %d", len(spec.Stages), len(again.Stages))
		}
		for i := range spec.Stages {
			a, b := spec.Stages[i], again.Stages[i]
			if a.ID != b.ID || a.Benchmark != b.Benchmark || a.Offset != b.Offset ||
				strings.Join(a.Deps, ",") != strings.Join(b.Deps, ",") {
				t.Fatalf("round trip changed stage %d: %+v -> %+v", i, a, b)
			}
		}
	})
}
