package rpc

import (
	"testing"
	"time"

	"dscs/internal/units"
)

func TestProtobufValidates(t *testing.T) {
	if err := Protobuf().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Protobuf()
	bad.SerializeBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero throughput must fail")
	}
	bad2 := Protobuf()
	bad2.PerMessage = -time.Second
	if err := bad2.Validate(); err == nil {
		t.Error("negative per-message must fail")
	}
}

func TestSerializeScalesWithPayload(t *testing.T) {
	c := Protobuf()
	small := c.Serialize(units.KB)
	big := c.Serialize(10 * units.MB)
	if big <= small {
		t.Errorf("10MB serialize (%v) should exceed 1KB (%v)", big, small)
	}
	// 10 MB at 1.2 GB/s ~ 8.3 ms plus the envelope.
	if big < 8*time.Millisecond || big > 10*time.Millisecond {
		t.Errorf("10MB serialize = %v, want ~8.4ms", big)
	}
	// Deserialization is slower per byte than serialization.
	if c.Deserialize(10*units.MB) <= big {
		t.Error("protobuf decode should cost more than encode")
	}
}

func TestRequestPathComposition(t *testing.T) {
	c := Protobuf()
	s := DefaultStack()
	lat := RequestPath(c, s, 602*units.KB)
	// Envelope + 4 syscalls + gateway + payload decode: ~1ms scale.
	if lat < 500*time.Microsecond || lat > 3*time.Millisecond {
		t.Errorf("request path = %v, want 0.5-3ms", lat)
	}
	// A tiny payload still pays the fixed costs.
	tiny := RequestPath(c, s, 64)
	floor := 4*s.Syscall + s.Gateway
	if tiny < floor {
		t.Errorf("tiny request %v below fixed floor %v", tiny, floor)
	}
	// Payload dependence.
	if RequestPath(c, s, 16*units.MB) <= lat {
		t.Error("bigger payloads must cost more on the RPC path")
	}
}

func TestStackCosts(t *testing.T) {
	s := DefaultStack()
	if s.Syscall <= 0 || s.Gateway <= 0 {
		t.Fatal("stack costs must be positive")
	}
	if s.Syscall > 10*time.Microsecond {
		t.Error("a syscall should be microseconds")
	}
}
