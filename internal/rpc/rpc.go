// Package rpc models the software cost of a storage RPC: protobuf-style
// serialization, kernel crossings, and gateway processing. The paper's
// motivation leans on exactly these costs (it cites the protobuf
// hardware-acceleration work); the DSCS path replaces them with a single
// driver syscall.
package rpc

import (
	"fmt"
	"time"

	"dscs/internal/units"
)

// Codec models a serialization format's throughput.
type Codec struct {
	Name string
	// SerializeBW and DeserializeBW are the encode/decode throughputs.
	SerializeBW   units.Bandwidth
	DeserializeBW units.Bandwidth
	// PerMessage is the fixed envelope cost (descriptor walk, allocs).
	PerMessage time.Duration
}

// Protobuf returns a protobuf-class codec (single-digit GB/s, noticeable
// per-message fixed cost).
func Protobuf() Codec {
	return Codec{
		Name:          "protobuf",
		SerializeBW:   1.2 * units.GBps,
		DeserializeBW: 0.9 * units.GBps,
		PerMessage:    25 * time.Microsecond,
	}
}

// Validate rejects incomplete codecs.
func (c Codec) Validate() error {
	if c.SerializeBW <= 0 || c.DeserializeBW <= 0 {
		return fmt.Errorf("rpc: non-positive codec throughput")
	}
	if c.PerMessage < 0 {
		return fmt.Errorf("rpc: negative per-message cost")
	}
	return nil
}

// Serialize returns the encode time for a payload.
func (c Codec) Serialize(n units.Bytes) time.Duration {
	return c.PerMessage + c.SerializeBW.TransferTime(n)
}

// Deserialize returns the decode time for a payload.
func (c Codec) Deserialize(n units.Bytes) time.Duration {
	return c.PerMessage + c.DeserializeBW.TransferTime(n)
}

// Stack models the OS/system costs on the request path.
type Stack struct {
	Syscall time.Duration // one kernel crossing
	Gateway time.Duration // storage front-end processing per request
}

// DefaultStack returns datacenter-typical costs.
func DefaultStack() Stack {
	return Stack{
		Syscall: 1500 * time.Nanosecond,
		Gateway: 150 * time.Microsecond,
	}
}

// RequestPath composes the client- and server-side software cost of one
// storage RPC carrying a payload in one direction: client serialize +
// syscalls, server deserialize + read/write syscall + gateway, and the
// payload deserialize on the receiving side.
func RequestPath(c Codec, s Stack, payload units.Bytes) time.Duration {
	const syscalls = 4        // client send/recv + server recv/IO
	return c.Serialize(256) + // request envelope
		time.Duration(syscalls)*s.Syscall +
		s.Gateway +
		c.Deserialize(payload)
}
