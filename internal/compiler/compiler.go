// Package compiler lowers model graphs (internal/model) to DSA programs
// (internal/isa) for a specific design point (internal/dsa.Config). It
// mirrors the paper's compilation stack: operator fusion to minimize
// off-chip movement, design-specific padding and tiling to maximize array
// utilization, and dataflow (loop-order) selection to minimize DRAM traffic.
package compiler

import (
	"fmt"

	"dscs/internal/dsa"
	"dscs/internal/isa"
	"dscs/internal/model"
	"dscs/internal/units"
)

// Options tune the compiler; zero value enables every optimization.
type Options struct {
	// DisableFusion keeps every activation/eltwise op as a separate DRAM
	// round-trip (the ablation baseline).
	DisableFusion bool
}

// Compile lowers graph g at the given batch size onto design point cfg.
func Compile(g *model.Graph, batch int, cfg dsa.Config, opts Options) (*isa.Program, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("compiler: non-positive batch %d", batch)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := &compilation{g: g, batch: batch, cfg: cfg, opts: opts}
	return c.run()
}

type compilation struct {
	g     *model.Graph
	batch int
	cfg   dsa.Config
	opts  Options

	prog *isa.Program
	// lastGEMM indexes the most recent GEMM instruction, the fusion target.
	lastGEMM int
	// lastOutBytes is the previous layer's output size, used to decide
	// whether a following vector op can stay on-chip.
	lastOutBytes units.Bytes
}

func (c *compilation) run() (*isa.Program, error) {
	c.prog = &isa.Program{Name: c.g.Name, Batch: c.batch}
	c.lastGEMM = -1

	// Stage the function input once from drive DRAM.
	inBytes := units.Bytes(c.g.InputShape.Elems()) * units.Bytes(c.batch)
	c.emit(isa.Instr{Op: isa.OpLoad, Layer: "input", Bytes: inBytes})

	for _, l := range c.g.Layers {
		switch {
		case l.Kind == model.DepthwiseConv2D:
			// Per-channel kernels fill a single systolic column; mapping
			// them to the VPU keeps the array for dense GEMMs.
			c.lowerDepthwise(l)
		case l.IsGEMM():
			c.lowerGEMM(l)
		default:
			c.lowerVector(l)
		}
	}

	// Store the final activation back to drive DRAM.
	last := c.g.Layers[len(c.g.Layers)-1]
	outBytes := units.Bytes(last.OutputElems()) * units.Bytes(c.batch)
	c.emit(isa.Instr{Op: isa.OpStore, Layer: "output", Bytes: outBytes})

	if err := c.prog.Validate(); err != nil {
		return nil, err
	}
	return c.prog, nil
}

func (c *compilation) emit(in isa.Instr) {
	c.prog.Instrs = append(c.prog.Instrs, in)
}

// lowerGEMM tiles one GEMM-kind layer and selects its dataflow.
func (c *compilation) lowerGEMM(l *model.Layer) {
	m, k, n, count, _ := l.GEMMDims()

	// Batch handling: layers with weights stack the batch into M so the
	// resident weights are reused across the whole batch; activation-by-
	// activation products (attention) replicate per batch item instead.
	hasWeights := l.WeightElems() > 0
	if hasWeights {
		m *= c.batch
	} else {
		count *= c.batch
	}

	tileM, tileK, tileN := c.chooseTiles(m, k, n)
	nM := ceilDiv(m, tileM)
	nN := ceilDiv(n, tileN)

	// Dataflow selection: weight-stationary re-reads the input panel once
	// per N tile; input-stationary re-reads weights once per M tile. Pick
	// whichever moves fewer DRAM bytes. Operands resident entirely in
	// their buffer are only read once either way.
	weightBytes := units.Bytes(k) * units.Bytes(n) * units.Bytes(count)
	inputBytes := units.Bytes(m) * units.Bytes(k) * units.Bytes(count)
	outputBytes := units.Bytes(m) * units.Bytes(n) * units.Bytes(count)

	wsInput := inputBytes * units.Bytes(nN) // re-read per n tile
	isWeights := weightBytes * units.Bytes(nM)
	if weightBytes <= c.cfg.WeightBuf/2 {
		// All weights resident: no re-reads under either order.
		isWeights = weightBytes
	}
	if inputBytes <= c.cfg.InputBuf/2 {
		wsInput = inputBytes
	}

	order := isa.WeightStationary
	inDRAM, wDRAM := wsInput, weightBytes
	if inputBytes+isWeights < wsInput+weightBytes {
		order = isa.InputStationary
		inDRAM, wDRAM = inputBytes, isWeights
	}

	fused := isa.VecNone
	if !c.opts.DisableFusion {
		fused = actToVec(l.FusedAct)
	}

	c.emit(isa.Instr{
		Op:    isa.OpGEMMLoop,
		Layer: l.Name,
		M:     m, K: k, N: n, Count: count,
		TileM: tileM, TileK: tileK, TileN: tileN,
		Order:       order,
		WeightBytes: wDRAM,
		InputBytes:  inDRAM,
		OutputBytes: outputBytes,
		FusedVec:    fused,
	})
	c.lastGEMM = len(c.prog.Instrs) - 1
	c.lastOutBytes = outputBytes

	if c.opts.DisableFusion && l.FusedAct != model.NoAct {
		// Unfused activation: a separate VPU pass over the outputs.
		c.emitVector(l.Name+"_act", actToVec(l.FusedAct),
			l.OutputElems()*int64(c.batch), false)
	}
}

// lowerDepthwise maps a depthwise convolution onto the VPU: one lane-op per
// multiply-accumulate, with the channel dimension spread across lanes.
func (c *compilation) lowerDepthwise(l *model.Layer) {
	macs := int64(l.OutH) * int64(l.OutW) * int64(l.InC) *
		int64(l.KH) * int64(l.KW) * int64(c.batch)
	outBytes := units.Bytes(l.OutputElems()) * units.Bytes(c.batch)
	onChip := false
	if !c.opts.DisableFusion {
		inBytes := units.Bytes(l.InputElems()) * units.Bytes(c.batch)
		onChip = c.lastOutBytes > 0 && inBytes <= c.cfg.OutputBuf &&
			c.lastOutBytes <= c.cfg.OutputBuf
	}
	c.emitVector(l.Name, isa.VecDWConv, macs, onChip)
	c.lastOutBytes = outBytes
	if l.FusedAct != model.NoAct && c.opts.DisableFusion {
		c.emitVector(l.Name+"_act", actToVec(l.FusedAct),
			l.OutputElems()*int64(c.batch), false)
	}
}

// lowerVector emits a VPU loop, keeping it on-chip when the producing
// tensor fits in the shared output buffer (the MPU-VPU coupling the paper's
// Figure 6 shows).
func (c *compilation) lowerVector(l *model.Layer) {
	elems := l.Elems * int64(c.batch)
	if elems <= 0 {
		elems = l.OutputElems() * int64(c.batch)
	}
	if elems <= 0 {
		return
	}
	onChip := false
	if !c.opts.DisableFusion {
		operand := units.Bytes(elems)
		onChip = c.lastOutBytes > 0 && operand <= c.cfg.OutputBuf &&
			c.lastOutBytes <= c.cfg.OutputBuf
	}
	c.emitVector(l.Name, layerToVec(l), elems, onChip)
	c.lastOutBytes = units.Bytes(elems)
}

func (c *compilation) emitVector(name string, kind isa.VectorKind, elems int64, onChip bool) {
	c.emit(isa.Instr{
		Op:     isa.OpVectorLoop,
		Layer:  name,
		Vec:    kind,
		Elems:  elems,
		OnChip: onChip,
	})
}

// chooseTiles picks tile extents: the array bounds the K and N tiles; the
// M tile grows until the input or output buffer half fills (double
// buffering halves the usable capacity).
func (c *compilation) chooseTiles(m, k, n int) (tileM, tileK, tileN int) {
	tileK = minInt(k, c.cfg.Rows)
	tileN = minInt(n, c.cfg.Cols)

	halfIn := int64(c.cfg.InputBuf) / 2
	halfOut := int64(c.cfg.OutputBuf) / 2
	byInput := halfIn / int64(tileK)         // 1B activations
	byOutput := halfOut / (4 * int64(tileN)) // 4B accumulators
	tileM = int(minI64(byInput, byOutput))
	if tileM > m {
		tileM = m
	}
	if tileM < 1 {
		tileM = 1
	}
	return tileM, tileK, tileN
}

func actToVec(a model.ActKind) isa.VectorKind {
	switch a {
	case model.ReLU:
		return isa.VecReLU
	case model.LeakyReLU:
		return isa.VecLeakyReLU
	case model.GeLU:
		return isa.VecGeLU
	case model.Tanh:
		return isa.VecTanh
	case model.Sigmoid:
		return isa.VecSigmoid
	}
	return isa.VecNone
}

func layerToVec(l *model.Layer) isa.VectorKind {
	switch l.Kind {
	case model.Activation:
		return actToVec(l.Act)
	case model.Pool:
		return isa.VecPool
	case model.Norm:
		return isa.VecNorm
	case model.Elementwise:
		return isa.VecAdd
	case model.Softmax:
		return isa.VecSoftmax
	case model.Embedding:
		return isa.VecEmbed
	case model.Transpose:
		return isa.VecTranspose
	case model.Cast:
		return isa.VecCast
	case model.Preprocess:
		return isa.VecPreprocess
	}
	return isa.VecAdd
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
