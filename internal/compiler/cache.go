// cache.go is the compiled-program cache behind the concurrent serving
// path: compilation is deterministic for a (model, batch, DSA config,
// options) tuple, so the toolchain memoizes programs process-wide with
// singleflight semantics — when many cold invocations of the same function
// arrive together, exactly one goroutine compiles and the rest wait for its
// result instead of recompiling.
package compiler

import (
	"fmt"
	"sync"

	"dscs/internal/dsa"
	"dscs/internal/isa"
	"dscs/internal/model"
)

// cacheKey fingerprints one compilation. dsa.Config and Options are flat
// value types, so %+v is a faithful fingerprint; the graph is identified by
// name plus shape invariants in case two graphs share a name.
func cacheKey(g *model.Graph, batch int, cfg dsa.Config, opts Options) string {
	return fmt.Sprintf("%s/%d/%d/%d|%+v|%+v", g.Name, len(g.Layers), g.FLOPs(), batch, cfg, opts)
}

// flight is one cache slot: the once gates the single compilation, after
// which prog/err are immutable.
type flight struct {
	once sync.Once
	prog *isa.Program
	err  error
}

// programCache is the process-wide compiled-program cache.
var programCache sync.Map // cacheKey -> *flight

// CompileCached is Compile behind the program cache: the first caller for a
// (model, batch, config, options) tuple compiles; concurrent and later
// callers share the result. The returned program is shared — callers must
// treat it as immutable (the simulator does).
func CompileCached(g *model.Graph, batch int, cfg dsa.Config, opts Options) (*isa.Program, error) {
	v, _ := programCache.LoadOrStore(cacheKey(g, batch, cfg, opts), &flight{})
	f := v.(*flight)
	f.once.Do(func() {
		f.prog, f.err = Compile(g, batch, cfg, opts)
	})
	return f.prog, f.err
}

// CacheSize reports how many compiled programs are resident (telemetry).
func CacheSize() int {
	n := 0
	programCache.Range(func(_, _ interface{}) bool { n++; return true })
	return n
}
