package compiler

import (
	"testing"
	"testing/quick"

	"dscs/internal/dsa"
	"dscs/internal/isa"
	"dscs/internal/model"
	"dscs/internal/units"
)

func compileOrDie(t *testing.T, g *model.Graph, batch int, cfg dsa.Config) *isa.Program {
	t.Helper()
	p, err := Compile(g, batch, cfg, Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return p
}

func TestCompileAllZooModels(t *testing.T) {
	cfg := dsa.PaperOptimal()
	zoo := []*model.Graph{
		model.LogisticRegressionCredit(4096), model.ResNet50(),
		model.SSDMobileNetPPE(), model.BERTBaseChatbot(),
		model.MarianTranslation(), model.InceptionV3Clinical(),
		model.ResNet18Moderation(), model.ViTRemoteSensing(),
	}
	for _, g := range zoo {
		p := compileOrDie(t, g, 1, cfg)
		// Depthwise convolutions are mapped to the VPU, so their MACs
		// leave the MPU count and reappear as vector lane-ops.
		if p.MACs() != g.MACs()-dwMACs(g) {
			t.Errorf("%s: program MACs %d != MPU-expected %d",
				g.Name, p.MACs(), g.MACs()-dwMACs(g))
		}
		if len(p.Instrs) < 3 {
			t.Errorf("%s: suspiciously small program (%d instrs)", g.Name, len(p.Instrs))
		}
	}
}

func TestBatchScalesMACs(t *testing.T) {
	cfg := dsa.PaperOptimal()
	g := model.ResNet18Moderation()
	p1 := compileOrDie(t, g, 1, cfg)
	p8 := compileOrDie(t, g, 8, cfg)
	if p8.MACs() != 8*p1.MACs() {
		t.Errorf("batch-8 MACs = %d, want 8x %d", p8.MACs(), p1.MACs())
	}
}

func TestWeightReuseAcrossBatch(t *testing.T) {
	// For a weighted model, per-item weight DRAM traffic must shrink
	// sharply with batch (the paper's Figure 14 batching mechanism): a
	// resident weight panel is reused across every item in the batch.
	cfg := dsa.PaperOptimal()
	g := model.BERTBaseChatbot()
	p1 := compileOrDie(t, g, 1, cfg)
	p64 := compileOrDie(t, g, 64, cfg)
	w1, w64 := weightBytes(p1), weightBytes(p64)
	if w64/64 > w1/4 {
		t.Errorf("per-item weight traffic should shrink >4x with batch 64: %v -> %v per item",
			w1, w64/64)
	}
	// Total DRAM traffic grows sublinearly for weight-heavy models.
	if p64.DRAMBytes() >= 32*p1.DRAMBytes() {
		t.Errorf("DRAM traffic should be sublinear in batch: %v -> %v",
			p1.DRAMBytes(), p64.DRAMBytes())
	}
}

// dwMACs totals a graph's depthwise-convolution MACs (VPU-mapped).
func dwMACs(g *model.Graph) int64 {
	var n int64
	for _, l := range g.Layers {
		if l.Kind == model.DepthwiseConv2D {
			m, k, nn, c, _ := l.GEMMDims()
			n += int64(m) * int64(k) * int64(nn) * int64(c)
		}
	}
	return n
}

func weightBytes(p *isa.Program) units.Bytes {
	var n units.Bytes
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpGEMMLoop {
			n += p.Instrs[i].WeightBytes
		}
	}
	return n
}

func TestTilesRespectBuffers(t *testing.T) {
	cfgs := []dsa.Config{
		dsa.PaperOptimal(),
		smallCfg(),
		func() dsa.Config {
			c := dsa.PaperOptimal()
			c.Rows, c.Cols = 1024, 1024
			return c.WithBuffers(32 * units.MiB)
		}(),
	}
	zoo := []*model.Graph{model.ResNet50(), model.BERTBaseChatbot()}
	for _, cfg := range cfgs {
		for _, g := range zoo {
			p := compileOrDie(t, g, 1, cfg)
			for i := range p.Instrs {
				in := &p.Instrs[i]
				if in.Op != isa.OpGEMMLoop {
					continue
				}
				if in.TileK > cfg.Rows || in.TileN > cfg.Cols {
					t.Fatalf("%v %s: tile (%d,%d,%d) exceeds array %dx%d",
						cfg, in.Layer, in.TileM, in.TileK, in.TileN, cfg.Rows, cfg.Cols)
				}
				if units.Bytes(in.TileM*in.TileK) > cfg.InputBuf/2 && in.TileM > 1 {
					t.Fatalf("%v %s: input tile overflows half-buffer", cfg, in.Layer)
				}
				if units.Bytes(4*in.TileM*in.TileN) > cfg.OutputBuf/2 && in.TileM > 1 {
					t.Fatalf("%v %s: output tile overflows half-buffer", cfg, in.Layer)
				}
			}
		}
	}
}

func smallCfg() dsa.Config {
	c := dsa.Config{
		Name: "small", Rows: 4, Cols: 4, VPULanes: 4,
		Freq: units.GHz, DRAM: 0, DoubleBuffered: true,
	}
	return c.WithBuffers(128 * units.KiB)
}

func TestFusionReducesDRAM(t *testing.T) {
	cfg := dsa.PaperOptimal()
	g := model.ResNet18Moderation()
	fused, err := Compile(g, 1, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Compile(g, 1, cfg, Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.DRAMBytes() >= unfused.DRAMBytes() {
		t.Errorf("fusion must cut DRAM traffic: fused %v >= unfused %v",
			fused.DRAMBytes(), unfused.DRAMBytes())
	}
	// Unfused programs carry extra vector passes.
	if len(unfused.Instrs) <= len(fused.Instrs) {
		t.Error("unfused program should have more instructions")
	}
}

func TestDataflowSelection(t *testing.T) {
	cfg := dsa.PaperOptimal()
	// A layer with tiny weights and a huge activation panel must keep the
	// weights resident (weight-stationary, weights read once).
	g := model.NewGraph("t", 256, 256, 32)
	g.Conv("c", 64, 1, 1, 0, model.NoAct)
	p := compileOrDie(t, g, 1, cfg)
	var in *isa.Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpGEMMLoop {
			in = &p.Instrs[i]
		}
	}
	if in == nil {
		t.Fatal("no GEMM emitted")
	}
	if in.WeightBytes != units.Bytes(32*64) {
		t.Errorf("weights should be read once: %v", in.WeightBytes)
	}
	if in.InputBytes != units.Bytes(256*256*32) {
		t.Errorf("inputs should be read once when weights resident: %v", in.InputBytes)
	}
}

func TestInputOutputStaging(t *testing.T) {
	cfg := dsa.PaperOptimal()
	g := model.ResNet50()
	p := compileOrDie(t, g, 2, cfg)
	first, last := p.Instrs[0], p.Instrs[len(p.Instrs)-1]
	if first.Op != isa.OpLoad || first.Bytes != units.Bytes(2*224*224*3) {
		t.Errorf("input staging wrong: %+v", first)
	}
	if last.Op != isa.OpStore || last.Bytes != 2*1000 {
		t.Errorf("output staging wrong: %+v", last)
	}
}

func TestCompileErrors(t *testing.T) {
	cfg := dsa.PaperOptimal()
	if _, err := Compile(model.ResNet50(), 0, cfg, Options{}); err == nil {
		t.Error("batch 0 must fail")
	}
	bad := cfg
	bad.Rows = 0
	if _, err := Compile(model.ResNet50(), 1, bad, Options{}); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestAttentionReplicatesPerBatch(t *testing.T) {
	cfg := dsa.PaperOptimal()
	g := model.NewSequenceGraph("attn", 128)
	g.BatchMatMul("scores", 128, 64, 128, 12)
	p4 := compileOrDie(t, g, 4, cfg)
	var in *isa.Instr
	for i := range p4.Instrs {
		if p4.Instrs[i].Op == isa.OpGEMMLoop {
			in = &p4.Instrs[i]
		}
	}
	if in.Count != 48 {
		t.Errorf("attention count = %d, want 12 heads x 4 batch", in.Count)
	}
}

func TestTileChoiceProperty(t *testing.T) {
	cfg := dsa.PaperOptimal()
	f := func(m, k, n uint16) bool {
		M, K, N := int(m%2048)+1, int(k%2048)+1, int(n%2048)+1
		g := model.NewSequenceGraph("p", 1)
		g.BatchMatMul("mm", M, K, N, 1)
		p, err := Compile(g, 1, cfg, Options{})
		if err != nil {
			return false
		}
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.Op != isa.OpGEMMLoop {
				continue
			}
			if in.TileM < 1 || in.TileK < 1 || in.TileN < 1 {
				return false
			}
			if in.TileM > in.M || in.TileK > in.K || in.TileN > in.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompiledProgramSurvivesContainerPackaging(t *testing.T) {
	// Section 5.1: the compiler output ships inside the function container;
	// the serialized program must execute identically after the round trip.
	cfg := dsa.PaperOptimal()
	for _, g := range []*model.Graph{model.ResNet50(), model.GPT2Generative()} {
		p := compileOrDie(t, g, 1, cfg)
		back, err := isa.Unmarshal(isa.Marshal(p))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if back.MACs() != p.MACs() || back.DRAMBytes() != p.DRAMBytes() ||
			len(back.Instrs) != len(p.Instrs) {
			t.Errorf("%s: program changed across packaging", g.Name)
		}
	}
}
