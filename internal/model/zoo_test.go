package model

import (
	"testing"
	"testing/quick"

	"dscs/internal/tensor"
)

// paramTol checks a parameter count against the published value within tol
// (fractional). Structural fidelity of the zoo is what the compiler and the
// cold-start model depend on.
func paramTol(t *testing.T, g *Graph, want float64, tol float64) {
	t.Helper()
	got := float64(g.Params())
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s params = %.2fM, want %.2fM +/- %.0f%%",
			g.Name, got/1e6, want/1e6, tol*100)
	}
}

func TestResNet50Fidelity(t *testing.T) {
	g := ResNet50()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 25.6e6, 0.05)
	// ~3.9 GMACs = ~7.8 GFLOPs at 224x224.
	gf := float64(g.FLOPs()) / 1e9
	if gf < 7.0 || gf > 8.8 {
		t.Errorf("resnet-50 GFLOPs = %.2f, want ~7.8 (3.9 GMACs)", gf)
	}
}

func TestResNet18Fidelity(t *testing.T) {
	g := ResNet18Moderation()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 11.7e6, 0.05)
	gf := float64(g.FLOPs()) / 1e9
	if gf < 3.0 || gf > 4.2 { // 1.8 GMACs = 3.6 GFLOPs
		t.Errorf("resnet-18 GFLOPs = %.2f, want ~3.6", gf)
	}
}

func TestBERTBaseFidelity(t *testing.T) {
	g := BERTBaseChatbot()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 110e6, 0.05)
	// ~22.4 GFLOPs at seq 128 (2 * 87.5M weight-macs * 128 tokens).
	gf := float64(g.FLOPs()) / 1e9
	if gf < 18 || gf > 28 {
		t.Errorf("bert GFLOPs = %.2f, want ~22", gf)
	}
}

func TestViTFidelity(t *testing.T) {
	g := ViTRemoteSensing()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 86e6, 0.06)
	gf := float64(g.FLOPs()) / 1e9
	if gf < 32 || gf > 39 { // 17.6 GMACs = ~35 GFLOPs
		t.Errorf("vit GFLOPs = %.2f, want ~35 (17.6 GMACs)", gf)
	}
}

func TestMarianFidelity(t *testing.T) {
	g := MarianTranslation()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 74e6, 0.06)
}

func TestInceptionV3Fidelity(t *testing.T) {
	g := InceptionV3Clinical()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 23.8e6, 0.08)
	gf := float64(g.FLOPs()) / 1e9
	if gf < 9 || gf > 13 { // 5.7 GMACs = 11.4 GFLOPs
		t.Errorf("inception GFLOPs = %.2f, want ~11.4", gf)
	}
}

func TestSSDMobileNetFidelity(t *testing.T) {
	g := SSDMobileNetPPE()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// MobileNetV1 backbone 4.2M + SSD heads: several million.
	p := float64(g.Params()) / 1e6
	if p < 4 || p > 9 {
		t.Errorf("ssd-mobilenet params = %.2fM, want 4-9M", p)
	}
}

func TestLogisticRegressionTiny(t *testing.T) {
	g := LogisticRegressionCredit(4096)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Params() > 1000 {
		t.Errorf("logreg params = %d, want tiny", g.Params())
	}
	// FLOPs scale with the record count.
	small := LogisticRegressionCredit(16).FLOPs()
	big := LogisticRegressionCredit(1600).FLOPs()
	if big < 50*small {
		t.Errorf("logreg FLOPs don't scale with records: %d vs %d", small, big)
	}
}

func TestConvShapeTracking(t *testing.T) {
	g := NewGraph("t", 224, 224, 3)
	g.Conv("c1", 64, 7, 2, 3, ReLU)
	if h, w, c := g.Shape(); h != 112 || w != 112 || c != 64 {
		t.Fatalf("after conv1: %dx%dx%d, want 112x112x64", h, w, c)
	}
	g.MaxPool("p1", 3, 2, 1)
	if h, w, _ := g.Shape(); h != 56 || w != 56 {
		t.Fatalf("after pool: %dx%d, want 56x56", h, w)
	}
}

func TestGEMMDims(t *testing.T) {
	g := NewGraph("t", 56, 56, 64)
	l := g.Conv("c", 128, 3, 1, 1, NoAct)
	m, k, n, count, ok := l.GEMMDims()
	if !ok || m != 56*56 || k != 3*3*64 || n != 128 || count != 1 {
		t.Fatalf("conv GEMM dims = %d,%d,%d,%d", m, k, n, count)
	}
	dl := &Layer{Kind: Dense, InFeatures: 768, OutFeatures: 3072, M: 128}
	m, k, n, count, _ = dl.GEMMDims()
	if m != 128 || k != 768 || n != 3072 || count != 1 {
		t.Fatalf("token dense GEMM dims = %d,%d,%d,%d", m, k, n, count)
	}
	vec := &Layer{Kind: Softmax, Elems: 100}
	if _, _, _, _, ok := vec.GEMMDims(); ok {
		t.Fatal("softmax must not be a GEMM")
	}
}

func TestDepthwiseParams(t *testing.T) {
	g := NewGraph("t", 112, 112, 32)
	l := g.DWConv("dw", 3, 1, 1, ReLU)
	if w := l.WeightElems(); w != 3*3*32+32 {
		t.Fatalf("dwconv weights = %d", w)
	}
	m, k, n, count, _ := l.GEMMDims()
	if m != 112*112 || k != 9 || n != 1 || count != 32 {
		t.Fatalf("dwconv GEMM dims = %d,%d,%d,%d", m, k, n, count)
	}
}

func TestFLOPsNonNegativeProperty(t *testing.T) {
	f := func(h, w, c, oc, k uint8) bool {
		hh, ww := int(h%64)+8, int(w%64)+8
		cc, oo := int(c%64)+1, int(oc%64)+1
		kk := int(k%3)*2 + 1
		g := NewGraph("p", hh, ww, cc)
		l := g.Conv("c", oo, kk, 1, kk/2, NoAct)
		return l.FLOPs() > 0 && l.WeightElems() > 0 &&
			l.InputElems() > 0 && l.OutputElems() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphMACsVsFLOPs(t *testing.T) {
	g := ResNet50()
	// FLOPs should be at least 2x MACs (GEMM) and include vector work.
	if g.FLOPs() < 2*g.MACs() {
		t.Errorf("FLOPs %d < 2*MACs %d", g.FLOPs(), g.MACs())
	}
}

func TestAllZooModelsValidate(t *testing.T) {
	models := []*Graph{
		LogisticRegressionCredit(4096), ResNet50(), SSDMobileNetPPE(),
		BERTBaseChatbot(), MarianTranslation(), InceptionV3Clinical(),
		ResNet18Moderation(), ViTRemoteSensing(),
	}
	seen := map[string]bool{}
	for _, g := range models {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if seen[g.Name] {
			t.Errorf("duplicate model name %q", g.Name)
		}
		seen[g.Name] = true
		if g.Params() <= 0 || g.FLOPs() <= 0 {
			t.Errorf("%s: degenerate params/FLOPs", g.Name)
		}
	}
	if len(models) != 8 {
		t.Fatalf("zoo has %d models, want 8 (Table 1)", len(models))
	}
}

func TestWeightBytesByDtype(t *testing.T) {
	g := ResNet18Moderation()
	if g.WeightBytes(tensor.Float32) != 4*g.Params() {
		t.Error("fp32 weight bytes mismatch")
	}
	if g.WeightBytes(tensor.Int8) != g.Params() {
		t.Error("int8 weight bytes mismatch")
	}
}

func TestGPT2Fidelity(t *testing.T) {
	g := GPT2Generative()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	paramTol(t, g, 124e6, 0.05)
	// Prefill at seq 512 is tens of GMACs.
	gm := float64(g.MACs()) / 1e9
	if gm < 50 || gm > 110 {
		t.Errorf("gpt2 prefill GMACs = %.1f, want 50-110", gm)
	}
}
