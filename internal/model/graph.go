// Package model defines the neural-network graph IR consumed by the compiler
// and a zoo of the eight architectures behind the paper's Table 1 benchmark
// suite. Only structure is represented (shapes, parameter counts, operation
// kinds) — the simulator never executes real arithmetic.
package model

import (
	"fmt"

	"dscs/internal/tensor"
)

// LayerKind discriminates the operation a layer performs.
type LayerKind int

// Layer kinds. GEMM-like kinds (Conv2D, DepthwiseConv2D, Dense, MatMul) map
// to the Matrix Processing Unit; the rest map to the Vector Processing Unit.
const (
	Conv2D LayerKind = iota
	DepthwiseConv2D
	Dense
	MatMul // activation x activation batched matmul (attention scores etc.)
	Activation
	Pool
	Norm
	Elementwise
	Softmax
	Embedding
	Transpose
	Cast
	Preprocess // tokenization / resize / normalize style data preparation
)

// String names the layer kind.
func (k LayerKind) String() string {
	switch k {
	case Conv2D:
		return "conv2d"
	case DepthwiseConv2D:
		return "dwconv2d"
	case Dense:
		return "dense"
	case MatMul:
		return "matmul"
	case Activation:
		return "activation"
	case Pool:
		return "pool"
	case Norm:
		return "norm"
	case Elementwise:
		return "eltwise"
	case Softmax:
		return "softmax"
	case Embedding:
		return "embedding"
	case Transpose:
		return "transpose"
	case Cast:
		return "cast"
	case Preprocess:
		return "preprocess"
	}
	return "unknown"
}

// ActKind identifies an activation or vector transform.
type ActKind int

// Activation kinds supported by the VPU.
const (
	NoAct ActKind = iota
	ReLU
	GeLU
	Tanh
	Sigmoid
	LeakyReLU
)

// String names the activation.
func (a ActKind) String() string {
	switch a {
	case NoAct:
		return "none"
	case ReLU:
		return "relu"
	case GeLU:
		return "gelu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case LeakyReLU:
		return "leaky_relu"
	}
	return "unknown"
}

// Layer is one operation in a graph. Fields are populated according to Kind;
// the builder methods on Graph keep them consistent.
type Layer struct {
	Name string
	Kind LayerKind

	// Spatial parameters for Conv2D / DepthwiseConv2D / Pool.
	InH, InW, InC  int
	OutH, OutW     int
	OutC           int
	KH, KW, Stride int

	// Dense parameters.
	InFeatures, OutFeatures int

	// MatMul parameters (per-instance dims and instance count, e.g. heads).
	M, K, N, Count int

	// Vector parameters.
	Act          ActKind
	Elems        int64 // per-batch-item element count for vector kinds
	NormFeatures int   // learned scale/shift width for Norm layers

	// Fused activation applied by the MPU epilogue (set by builders).
	FusedAct ActKind

	// HasBias adds OutC / OutFeatures bias parameters.
	HasBias bool
}

// IsGEMM reports whether the layer runs on the Matrix Processing Unit.
func (l *Layer) IsGEMM() bool {
	switch l.Kind {
	case Conv2D, DepthwiseConv2D, Dense, MatMul:
		return true
	}
	return false
}

// GEMMDims returns the lowered GEMM dimensions for one batch item:
// count independent (m x k) * (k x n) products. Conv2D lowers via im2col.
// For token-wise Dense layers (sequences), M carries the tokens per item.
// ok is false for vector layers.
func (l *Layer) GEMMDims() (m, k, n, count int, ok bool) {
	switch l.Kind {
	case Conv2D:
		return l.OutH * l.OutW, l.KH * l.KW * l.InC, l.OutC, 1, true
	case DepthwiseConv2D:
		// One small GEMM per channel: im2col over a single channel.
		return l.OutH * l.OutW, l.KH * l.KW, 1, l.InC, true
	case Dense:
		m := l.M
		if m <= 0 {
			m = 1
		}
		return m, l.InFeatures, l.OutFeatures, 1, true
	case MatMul:
		return l.M, l.K, l.N, l.Count, true
	}
	return 0, 0, 0, 0, false
}

// WeightElems returns the number of learned parameters in the layer.
func (l *Layer) WeightElems() int64 {
	var w int64
	switch l.Kind {
	case Conv2D:
		w = int64(l.KH) * int64(l.KW) * int64(l.InC) * int64(l.OutC)
		if l.HasBias {
			w += int64(l.OutC)
		}
	case DepthwiseConv2D:
		w = int64(l.KH) * int64(l.KW) * int64(l.InC)
		if l.HasBias {
			w += int64(l.InC)
		}
	case Dense:
		w = int64(l.InFeatures) * int64(l.OutFeatures)
		if l.HasBias {
			w += int64(l.OutFeatures)
		}
	case Norm:
		w = 2 * int64(l.NormFeatures) // scale and shift over the feature dim
	case Embedding:
		w = int64(l.InFeatures) * int64(l.OutFeatures) // vocab x dim
	}
	return w
}

// FLOPs returns the multiply-accumulate-dominated floating-point operation
// count for one batch item (2 ops per MAC for GEMM kinds; 1 op per element
// for vector kinds).
func (l *Layer) FLOPs() int64 {
	if m, k, n, c, ok := l.GEMMDims(); ok {
		return 2 * int64(m) * int64(k) * int64(n) * int64(c)
	}
	switch l.Kind {
	case Softmax:
		return 5 * l.Elems // exp, sum, div amortized
	case Norm:
		return 8 * l.Elems
	case Embedding:
		return l.Elems
	default:
		return l.Elems
	}
}

// InputElems returns the per-batch-item activation input element count.
func (l *Layer) InputElems() int64 {
	switch l.Kind {
	case Conv2D, DepthwiseConv2D, Pool:
		return int64(l.InH) * int64(l.InW) * int64(l.InC)
	case Dense:
		m := int64(l.M)
		if m <= 0 {
			m = 1
		}
		return m * int64(l.InFeatures)
	case MatMul:
		return int64(l.Count) * (int64(l.M)*int64(l.K) + int64(l.K)*int64(l.N))
	default:
		return l.Elems
	}
}

// OutputElems returns the per-batch-item activation output element count.
func (l *Layer) OutputElems() int64 {
	switch l.Kind {
	case Conv2D:
		return int64(l.OutH) * int64(l.OutW) * int64(l.OutC)
	case DepthwiseConv2D, Pool:
		return int64(l.OutH) * int64(l.OutW) * int64(l.InC)
	case Dense:
		m := int64(l.M)
		if m <= 0 {
			m = 1
		}
		return m * int64(l.OutFeatures)
	case MatMul:
		return int64(l.Count) * int64(l.M) * int64(l.N)
	default:
		return l.Elems
	}
}

// Graph is an ordered sequence of layers with a named input shape.
type Graph struct {
	Name       string
	InputShape tensor.Shape
	Layers     []*Layer

	// builder state: current spatial feature-map shape.
	curH, curW, curC int
	curFeatures      int64
}

// NewGraph starts a graph whose input is an H x W x C image.
func NewGraph(name string, h, w, c int) *Graph {
	return &Graph{
		Name:       name,
		InputShape: tensor.Shape{h, w, c},
		curH:       h, curW: w, curC: c,
		curFeatures: int64(h) * int64(w) * int64(c),
	}
}

// NewSequenceGraph starts a graph whose input is a token sequence.
func NewSequenceGraph(name string, seqLen int) *Graph {
	return &Graph{
		Name:        name,
		InputShape:  tensor.Shape{seqLen},
		curFeatures: int64(seqLen),
	}
}

// NewFeatureGraph starts a graph whose input is a flat feature vector.
func NewFeatureGraph(name string, features int) *Graph {
	return &Graph{
		Name:        name,
		InputShape:  tensor.Shape{features},
		curFeatures: int64(features),
	}
}

func (g *Graph) add(l *Layer) *Layer {
	g.Layers = append(g.Layers, l)
	return l
}

func convOut(in, k, stride, pad int) int {
	return (in-k+2*pad)/stride + 1
}

// Conv adds a 2D convolution with "same"-style padding pad, fused act, and
// bias, updating the tracked feature-map shape.
func (g *Graph) Conv(name string, outC, k, stride, pad int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Conv2D,
		InH: g.curH, InW: g.curW, InC: g.curC,
		OutC: outC, KH: k, KW: k, Stride: stride,
		FusedAct: act, HasBias: true,
	}
	l.OutH = convOut(g.curH, k, stride, pad)
	l.OutW = convOut(g.curW, k, stride, pad)
	g.curH, g.curW, g.curC = l.OutH, l.OutW, outC
	g.curFeatures = int64(g.curH) * int64(g.curW) * int64(g.curC)
	return g.add(l)
}

// ConvHW adds a convolution with a rectangular kernel and per-axis padding.
func (g *Graph) ConvHW(name string, outC, kh, kw, stride, padH, padW int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Conv2D,
		InH: g.curH, InW: g.curW, InC: g.curC,
		OutC: outC, KH: kh, KW: kw, Stride: stride,
		FusedAct: act, HasBias: true,
	}
	l.OutH = convOut(g.curH, kh, stride, padH)
	l.OutW = convOut(g.curW, kw, stride, padW)
	g.curH, g.curW, g.curC = l.OutH, l.OutW, outC
	g.curFeatures = int64(g.curH) * int64(g.curW) * int64(g.curC)
	return g.add(l)
}

// ConvBranch adds a convolution that reads an explicit input shape and does
// not advance the builder's tracked shape. It models a parallel branch
// (e.g. a residual downsample or an inception tower stage).
func (g *Graph) ConvBranch(name string, inH, inW, inC, outC, kh, kw, stride, padH, padW int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Conv2D,
		InH: inH, InW: inW, InC: inC,
		OutC: outC, KH: kh, KW: kw, Stride: stride,
		FusedAct: act, HasBias: true,
	}
	l.OutH = convOut(inH, kh, stride, padH)
	l.OutW = convOut(inW, kw, stride, padW)
	return g.add(l)
}

// SetShape overrides the tracked feature-map shape, used after concatenating
// parallel branches the linear tracker cannot follow.
func (g *Graph) SetShape(h, w, c int) {
	g.curH, g.curW, g.curC = h, w, c
	g.curFeatures = int64(h) * int64(w) * int64(c)
}

// Shape reports the tracked feature-map shape.
func (g *Graph) Shape() (h, w, c int) { return g.curH, g.curW, g.curC }

// TokenDense adds a fully connected layer applied independently to each of
// seq tokens (the projection layers of transformer models).
func (g *Graph) TokenDense(name string, seq, inFeatures, outFeatures int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Dense,
		InFeatures: inFeatures, OutFeatures: outFeatures,
		M:        seq,
		FusedAct: act, HasBias: true,
	}
	g.curFeatures = int64(seq) * int64(outFeatures)
	return g.add(l)
}

// DWConv adds a depthwise convolution over the current feature map.
func (g *Graph) DWConv(name string, k, stride, pad int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: DepthwiseConv2D,
		InH: g.curH, InW: g.curW, InC: g.curC,
		KH: k, KW: k, Stride: stride,
		FusedAct: act, HasBias: true,
	}
	l.OutH = convOut(g.curH, k, stride, pad)
	l.OutW = convOut(g.curW, k, stride, pad)
	g.curH, g.curW = l.OutH, l.OutW
	g.curFeatures = int64(g.curH) * int64(g.curW) * int64(g.curC)
	return g.add(l)
}

// MaxPool adds a pooling layer (compute-wise identical to average pooling
// for the simulator).
func (g *Graph) MaxPool(name string, k, stride, pad int) *Layer {
	l := &Layer{
		Name: name, Kind: Pool,
		InH: g.curH, InW: g.curW, InC: g.curC,
		KH: k, KW: k, Stride: stride,
	}
	l.OutH = convOut(g.curH, k, stride, pad)
	l.OutW = convOut(g.curW, k, stride, pad)
	l.Elems = int64(l.OutH) * int64(l.OutW) * int64(l.InC) * int64(k) * int64(k)
	g.curH, g.curW = l.OutH, l.OutW
	g.curFeatures = int64(g.curH) * int64(g.curW) * int64(g.curC)
	return g.add(l)
}

// GlobalPool reduces the spatial dims to 1x1.
func (g *Graph) GlobalPool(name string) *Layer {
	l := &Layer{
		Name: name, Kind: Pool,
		InH: g.curH, InW: g.curW, InC: g.curC,
		KH: g.curH, KW: g.curW, Stride: 1,
		OutH: 1, OutW: 1,
		Elems: int64(g.curH) * int64(g.curW) * int64(g.curC),
	}
	g.curH, g.curW = 1, 1
	g.curFeatures = int64(g.curC)
	return g.add(l)
}

// Dense adds a fully connected layer from the current flattened features.
func (g *Graph) Dense(name string, outFeatures int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Dense,
		InFeatures: int(g.curFeatures), OutFeatures: outFeatures,
		FusedAct: act, HasBias: true,
	}
	g.curFeatures = int64(outFeatures)
	g.curH, g.curW, g.curC = 0, 0, 0
	return g.add(l)
}

// DenseFrom adds a fully connected layer with explicit input features,
// for graphs with non-linear topologies the tracker cannot follow.
func (g *Graph) DenseFrom(name string, inFeatures, outFeatures int, act ActKind) *Layer {
	l := &Layer{
		Name: name, Kind: Dense,
		InFeatures: inFeatures, OutFeatures: outFeatures,
		FusedAct: act, HasBias: true,
	}
	g.curFeatures = int64(outFeatures)
	return g.add(l)
}

// BatchMatMul adds count independent (m x k)*(k x n) activation products.
func (g *Graph) BatchMatMul(name string, m, k, n, count int) *Layer {
	l := &Layer{Name: name, Kind: MatMul, M: m, K: k, N: n, Count: count}
	g.curFeatures = int64(count) * int64(m) * int64(n)
	return g.add(l)
}

// Activate adds a standalone activation over elems elements.
func (g *Graph) Activate(name string, act ActKind, elems int64) *Layer {
	return g.add(&Layer{Name: name, Kind: Activation, Act: act, Elems: elems})
}

// LayerNorm adds a normalization over elems elements with learned
// scale/shift parameters of width features.
func (g *Graph) LayerNorm(name string, elems int64, features int) *Layer {
	return g.add(&Layer{Name: name, Kind: Norm, Elems: elems, NormFeatures: features})
}

// SoftmaxOver adds a softmax over elems elements.
func (g *Graph) SoftmaxOver(name string, elems int64) *Layer {
	return g.add(&Layer{Name: name, Kind: Softmax, Elems: elems})
}

// Residual adds an elementwise addition over elems elements.
func (g *Graph) Residual(name string, elems int64) *Layer {
	return g.add(&Layer{Name: name, Kind: Elementwise, Elems: elems})
}

// Embed adds an embedding lookup (vocab x dim table, seqLen lookups).
func (g *Graph) Embed(name string, vocab, dim, seqLen int) *Layer {
	l := &Layer{
		Name: name, Kind: Embedding,
		InFeatures: vocab, OutFeatures: dim,
		Elems: int64(seqLen) * int64(dim),
	}
	g.curFeatures = int64(seqLen) * int64(dim)
	return g.add(l)
}

// Prep adds a data pre/post-processing vector op (resize, normalize,
// tokenize, cast) of the given element volume.
func (g *Graph) Prep(name string, elems int64) *Layer {
	return g.add(&Layer{Name: name, Kind: Preprocess, Elems: elems})
}

// Params returns the total learned parameter count.
func (g *Graph) Params() int64 {
	var n int64
	for _, l := range g.Layers {
		n += l.WeightElems()
	}
	return n
}

// FLOPs returns the total op count for one batch item.
func (g *Graph) FLOPs() int64 {
	var n int64
	for _, l := range g.Layers {
		n += l.FLOPs()
	}
	return n
}

// MACs returns the total GEMM multiply-accumulate count for one batch item.
func (g *Graph) MACs() int64 {
	var n int64
	for _, l := range g.Layers {
		if m, k, nn, c, ok := l.GEMMDims(); ok {
			n += int64(m) * int64(k) * int64(nn) * int64(c)
		}
	}
	return n
}

// WeightBytes returns parameter storage at the given dtype.
func (g *Graph) WeightBytes(d tensor.DType) int64 {
	return g.Params() * int64(d.Size())
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d layers, %.1fM params, %.2f GFLOPs",
		g.Name, len(g.Layers), float64(g.Params())/1e6, float64(g.FLOPs())/1e9)
}

// Validate checks builder invariants: every layer has positive dims for its
// kind. It returns the first problem found.
func (g *Graph) Validate() error {
	for i, l := range g.Layers {
		switch l.Kind {
		case Conv2D, DepthwiseConv2D:
			if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 || l.OutH <= 0 || l.OutW <= 0 || l.KH <= 0 {
				return fmt.Errorf("model: %s layer %d (%s) has non-positive dims", g.Name, i, l.Name)
			}
			if l.Kind == Conv2D && l.OutC <= 0 {
				return fmt.Errorf("model: %s layer %d (%s) conv without output channels", g.Name, i, l.Name)
			}
		case Dense:
			if l.InFeatures <= 0 || l.OutFeatures <= 0 {
				return fmt.Errorf("model: %s layer %d (%s) dense with non-positive features", g.Name, i, l.Name)
			}
		case MatMul:
			if l.M <= 0 || l.K <= 0 || l.N <= 0 || l.Count <= 0 {
				return fmt.Errorf("model: %s layer %d (%s) matmul with non-positive dims", g.Name, i, l.Name)
			}
		default:
			if l.OutputElems() < 0 {
				return fmt.Errorf("model: %s layer %d (%s) negative element count", g.Name, i, l.Name)
			}
		}
	}
	return nil
}
