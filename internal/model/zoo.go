package model

// The zoo builds the eight inference architectures behind the paper's
// Table 1 benchmark suite. Where AWS does not disclose the production model,
// the paper substitutes a representative Hugging Face architecture; we build
// the same architectures structurally (layer shapes and parameter counts
// within a few percent of the published models).

// LogisticRegressionCredit is the Credit Risk Assessment scorer (IBM
// SPSS-style binary logistic regression over 64 engineered features). One
// request carries a batch of loan records scored together.
func LogisticRegressionCredit(records int) *Graph {
	g := NewFeatureGraph("logistic-regression", 64)
	g.TokenDense("score", records, 64, 2, Sigmoid)
	g.SoftmaxOver("prob", int64(records)*2)
	return g
}

// resNetStage appends n residual blocks; bottleneck selects the ResNet-50
// style 1x1/3x3/1x1 block versus the ResNet-18 3x3/3x3 basic block.
func resNetStage(g *Graph, name string, n, mid, out, stride int, bottleneck bool) {
	for b := 0; b < n; b++ {
		s := 1
		if b == 0 {
			s = stride
		}
		inH, inW, inC := g.Shape()
		if bottleneck {
			g.Conv(name+"_reduce", mid, 1, s, 0, ReLU)
			g.Conv(name+"_conv", mid, 3, 1, 1, ReLU)
			g.Conv(name+"_expand", out, 1, 1, 0, NoAct)
		} else {
			g.Conv(name+"_conv1", out, 3, s, 1, ReLU)
			g.Conv(name+"_conv2", out, 3, 1, 1, NoAct)
		}
		if b == 0 && (inC != out || s != 1) {
			g.ConvBranch(name+"_down", inH, inW, inC, out, 1, 1, s, 0, 0, NoAct)
		}
		h, w, c := g.Shape()
		g.Residual(name+"_add", int64(h)*int64(w)*int64(c))
		g.Activate(name+"_relu", ReLU, int64(h)*int64(w)*int64(c))
	}
}

// ResNet50 builds the Asset Damage Detection classifier (AWS Lookout for
// Vision style): the standard 224x224 ResNet-50 (~25.6M parameters).
func ResNet50() *Graph {
	g := NewGraph("resnet-50", 224, 224, 3)
	g.Conv("conv1", 64, 7, 2, 3, ReLU)
	g.MaxPool("pool1", 3, 2, 1)
	resNetStage(g, "stage1", 3, 64, 256, 1, true)
	resNetStage(g, "stage2", 4, 128, 512, 2, true)
	resNetStage(g, "stage3", 6, 256, 1024, 2, true)
	resNetStage(g, "stage4", 3, 512, 2048, 2, true)
	g.GlobalPool("gap")
	g.Dense("fc", 1000, NoAct)
	g.SoftmaxOver("softmax", 1000)
	return g
}

// ResNet18Moderation builds the Content Moderation classifier (Rekognition
// moderation style): a 224x224 ResNet-18 (~11.7M parameters).
func ResNet18Moderation() *Graph {
	g := NewGraph("resnet-18", 224, 224, 3)
	g.Conv("conv1", 64, 7, 2, 3, ReLU)
	g.MaxPool("pool1", 3, 2, 1)
	resNetStage(g, "stage1", 2, 64, 64, 1, false)
	resNetStage(g, "stage2", 2, 128, 128, 2, false)
	resNetStage(g, "stage3", 2, 256, 256, 2, false)
	resNetStage(g, "stage4", 2, 512, 512, 2, false)
	g.GlobalPool("gap")
	g.Dense("fc", 1000, NoAct)
	g.SoftmaxOver("softmax", 1000)
	return g
}

// SSDMobileNetPPE builds the PPE Detection model (Rekognition PPE style):
// an SSD detector over a MobileNetV1 backbone at 640x640 input (small-object
// PPE detection needs resolution). Compute is modest but input/intermediate
// tensors are large, which is exactly the data-movement-bound profile the
// paper highlights for this benchmark.
func SSDMobileNetPPE() *Graph {
	g := NewGraph("ssd-mobilenet-ppe", 640, 640, 3)
	g.Conv("conv0", 32, 3, 2, 1, ReLU)
	dw := func(name string, outC, stride int) {
		g.DWConv(name+"_dw", 3, stride, 1, ReLU)
		g.Conv(name+"_pw", outC, 1, 1, 0, ReLU)
	}
	dw("b1", 64, 1)
	dw("b2", 128, 2)
	dw("b3", 128, 1)
	dw("b4", 256, 2)
	dw("b5", 256, 1)
	dw("b6", 512, 2)
	for i := 0; i < 5; i++ {
		dw("b7_"+string(rune('a'+i)), 512, 1)
	}
	// Detection head 1 reads the 32x32x512 map.
	h1, w1, c1 := g.Shape()
	dw("b12", 1024, 2)
	dw("b13", 1024, 1)
	h2, w2, c2 := g.Shape()
	// SSD extra feature layers.
	g.Conv("extra1_1x1", 256, 1, 1, 0, ReLU)
	g.Conv("extra1_3x3", 512, 3, 2, 1, ReLU)
	h3, w3, c3 := g.Shape()
	g.Conv("extra2_1x1", 128, 1, 1, 0, ReLU)
	g.Conv("extra2_3x3", 256, 3, 2, 1, ReLU)
	h4, w4, c4 := g.Shape()
	// Class+box heads: 6 anchors x (4 box + 8 PPE classes) = 72 outputs.
	head := func(name string, h, w, c int) {
		g.ConvBranch(name+"_cls", h, w, c, 72, 3, 3, 1, 1, 1, NoAct)
	}
	head("head1", h1, w1, c1)
	head("head2", h2, w2, c2)
	head("head3", h3, w3, c3)
	head("head4", h4, w4, c4)
	// NMS-style post-processing on the VPU.
	g.Prep("decode_nms", int64(h1*w1+h2*w2+h3*w3+h4*w4)*72)
	return g
}

// transformerEncoderBlock appends one standard pre-norm encoder block.
func transformerEncoderBlock(g *Graph, name string, seq, dModel, heads, dFF int) {
	headDim := dModel / heads
	tokens := int64(seq) * int64(dModel)
	g.LayerNorm(name+"_ln1", tokens, dModel)
	g.TokenDense(name+"_q", seq, dModel, dModel, NoAct)
	g.TokenDense(name+"_k", seq, dModel, dModel, NoAct)
	g.TokenDense(name+"_v", seq, dModel, dModel, NoAct)
	g.BatchMatMul(name+"_scores", seq, headDim, seq, heads)
	g.SoftmaxOver(name+"_softmax", int64(heads)*int64(seq)*int64(seq))
	g.BatchMatMul(name+"_attnv", seq, seq, headDim, heads)
	g.TokenDense(name+"_proj", seq, dModel, dModel, NoAct)
	g.Residual(name+"_add1", tokens)
	g.LayerNorm(name+"_ln2", tokens, dModel)
	g.TokenDense(name+"_ff1", seq, dModel, dFF, GeLU)
	g.TokenDense(name+"_ff2", seq, dFF, dModel, NoAct)
	g.Residual(name+"_add2", tokens)
}

// transformerDecoderBlock appends one decoder block with self- and
// cross-attention (the translation model's decoder).
func transformerDecoderBlock(g *Graph, name string, seq, srcSeq, dModel, heads, dFF int) {
	headDim := dModel / heads
	tokens := int64(seq) * int64(dModel)
	g.LayerNorm(name+"_ln1", tokens, dModel)
	g.TokenDense(name+"_sq", seq, dModel, dModel, NoAct)
	g.TokenDense(name+"_sk", seq, dModel, dModel, NoAct)
	g.TokenDense(name+"_sv", seq, dModel, dModel, NoAct)
	g.BatchMatMul(name+"_sscores", seq, headDim, seq, heads)
	g.SoftmaxOver(name+"_ssoftmax", int64(heads)*int64(seq)*int64(seq))
	g.BatchMatMul(name+"_sattnv", seq, seq, headDim, heads)
	g.TokenDense(name+"_sproj", seq, dModel, dModel, NoAct)
	g.Residual(name+"_sadd", tokens)
	g.LayerNorm(name+"_ln2", tokens, dModel)
	g.TokenDense(name+"_cq", seq, dModel, dModel, NoAct)
	g.TokenDense(name+"_ck", srcSeq, dModel, dModel, NoAct)
	g.TokenDense(name+"_cv", srcSeq, dModel, dModel, NoAct)
	g.BatchMatMul(name+"_cscores", seq, headDim, srcSeq, heads)
	g.SoftmaxOver(name+"_csoftmax", int64(heads)*int64(seq)*int64(srcSeq))
	g.BatchMatMul(name+"_cattnv", seq, srcSeq, headDim, heads)
	g.TokenDense(name+"_cproj", seq, dModel, dModel, NoAct)
	g.Residual(name+"_cadd", tokens)
	g.LayerNorm(name+"_ln3", tokens, dModel)
	g.TokenDense(name+"_ff1", seq, dModel, dFF, GeLU)
	g.TokenDense(name+"_ff2", seq, dFF, dModel, NoAct)
	g.Residual(name+"_fadd", tokens)
}

// BERTBaseChatbot builds the Conversational Chatbot encoder (BERT-base,
// ~110M parameters) at sequence length 128.
func BERTBaseChatbot() *Graph {
	const (
		seq    = 128
		dModel = 768
		heads  = 12
		dFF    = 3072
		vocab  = 30522
	)
	g := NewSequenceGraph("bert-base", seq)
	g.Embed("tok_embed", vocab, dModel, seq)
	g.Embed("pos_embed", 512, dModel, seq)
	g.Embed("type_embed", 2, dModel, seq)
	g.LayerNorm("embed_ln", int64(seq)*dModel, dModel)
	for i := 0; i < 12; i++ {
		transformerEncoderBlock(g, blockName("enc", i), seq, dModel, heads, dFF)
	}
	g.TokenDense("pooler", 1, dModel, dModel, Tanh)
	g.TokenDense("intent_head", 1, dModel, 256, NoAct)
	g.SoftmaxOver("intent_softmax", 256)
	return g
}

// MarianTranslation builds the Document Translation model (Marian-style
// 6+6 encoder-decoder, d=512, ~74M parameters) at sequence length 256.
// Decoding is modeled as one teacher-forced forward pass over the output
// sequence, the standard throughput-oriented approximation.
func MarianTranslation() *Graph {
	const (
		seq    = 256
		dModel = 512
		heads  = 8
		dFF    = 2048
		vocab  = 58100
	)
	g := NewSequenceGraph("marian-translation", seq)
	g.Embed("shared_embed", vocab, dModel, 2*seq)
	for i := 0; i < 6; i++ {
		transformerEncoderBlock(g, blockName("enc", i), seq, dModel, heads, dFF)
	}
	for i := 0; i < 6; i++ {
		transformerDecoderBlock(g, blockName("dec", i), seq, seq, dModel, heads, dFF)
	}
	// Output projection shares the embedding matrix: compute without params.
	g.BatchMatMul("lm_head", seq, dModel, vocab, 1)
	g.SoftmaxOver("lm_softmax", int64(seq)*vocab)
	return g
}

// inceptionTowerA appends one Inception-A style block and returns the
// concatenated channel count.
func inceptionTowerA(g *Graph, name string, poolProj int) int {
	h, w, c := g.Shape()
	g.ConvBranch(name+"_1x1", h, w, c, 64, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_5x5a", h, w, c, 48, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_5x5b", h, w, 48, 64, 5, 5, 1, 2, 2, ReLU)
	g.ConvBranch(name+"_3x3a", h, w, c, 64, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_3x3b", h, w, 64, 96, 3, 3, 1, 1, 1, ReLU)
	g.ConvBranch(name+"_3x3c", h, w, 96, 96, 3, 3, 1, 1, 1, ReLU)
	g.ConvBranch(name+"_pool", h, w, c, poolProj, 1, 1, 1, 0, 0, ReLU)
	out := 64 + 64 + 96 + poolProj
	g.SetShape(h, w, out)
	return out
}

// inceptionTowerB appends one Inception-B (factorized 7x7) block.
func inceptionTowerB(g *Graph, name string, c7 int) {
	h, w, c := g.Shape()
	g.ConvBranch(name+"_1x1", h, w, c, 192, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_7a", h, w, c, c7, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_7b", h, w, c7, c7, 1, 7, 1, 0, 3, ReLU)
	g.ConvBranch(name+"_7c", h, w, c7, 192, 7, 1, 1, 3, 0, ReLU)
	g.ConvBranch(name+"_7da", h, w, c, c7, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_7db", h, w, c7, c7, 7, 1, 1, 3, 0, ReLU)
	g.ConvBranch(name+"_7dc", h, w, c7, c7, 1, 7, 1, 0, 3, ReLU)
	g.ConvBranch(name+"_7dd", h, w, c7, c7, 7, 1, 1, 3, 0, ReLU)
	g.ConvBranch(name+"_7de", h, w, c7, 192, 1, 7, 1, 0, 3, ReLU)
	g.ConvBranch(name+"_pool", h, w, c, 192, 1, 1, 1, 0, 0, ReLU)
	g.SetShape(h, w, 768)
}

// inceptionTowerC appends one Inception-C (expanded) block.
func inceptionTowerC(g *Graph, name string) {
	h, w, c := g.Shape()
	g.ConvBranch(name+"_1x1", h, w, c, 320, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_3a", h, w, c, 384, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_3b1", h, w, 384, 384, 1, 3, 1, 0, 1, ReLU)
	g.ConvBranch(name+"_3b2", h, w, 384, 384, 3, 1, 1, 1, 0, ReLU)
	g.ConvBranch(name+"_d3a", h, w, c, 448, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch(name+"_d3b", h, w, 448, 384, 3, 3, 1, 1, 1, ReLU)
	g.ConvBranch(name+"_d3c1", h, w, 384, 384, 1, 3, 1, 0, 1, ReLU)
	g.ConvBranch(name+"_d3c2", h, w, 384, 384, 3, 1, 1, 1, 0, ReLU)
	g.ConvBranch(name+"_pool", h, w, c, 192, 1, 1, 1, 0, 0, ReLU)
	g.SetShape(h, w, 2048)
}

// InceptionV3Clinical builds the Clinical Analysis classifier (Inception-v3
// at 299x299, ~23.8M parameters, the leukemia-classification use case).
func InceptionV3Clinical() *Graph {
	g := NewGraph("inception-v3", 299, 299, 3)
	g.Conv("stem1", 32, 3, 2, 0, ReLU)
	g.Conv("stem2", 32, 3, 1, 0, ReLU)
	g.Conv("stem3", 64, 3, 1, 1, ReLU)
	g.MaxPool("stem_pool1", 3, 2, 0)
	g.Conv("stem4", 80, 1, 1, 0, ReLU)
	g.Conv("stem5", 192, 3, 1, 0, ReLU)
	g.MaxPool("stem_pool2", 3, 2, 0)
	inceptionTowerA(g, "mixed0", 32)
	inceptionTowerA(g, "mixed1", 64)
	inceptionTowerA(g, "mixed2", 64)
	// Reduction A: 35x35x288 -> 17x17x768.
	h, w, c := g.Shape()
	g.ConvBranch("redA_3x3", h, w, c, 384, 3, 3, 2, 0, 0, ReLU)
	g.ConvBranch("redA_d3a", h, w, c, 64, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch("redA_d3b", h, w, 64, 96, 3, 3, 1, 1, 1, ReLU)
	g.ConvBranch("redA_d3c", h, w, 96, 96, 3, 3, 2, 0, 0, ReLU)
	g.SetShape((h-3)/2+1, (w-3)/2+1, 768)
	inceptionTowerB(g, "mixed4", 128)
	inceptionTowerB(g, "mixed5", 160)
	inceptionTowerB(g, "mixed6", 160)
	inceptionTowerB(g, "mixed7", 192)
	// Reduction B: 17x17x768 -> 8x8x1280.
	h, w, c = g.Shape()
	g.ConvBranch("redB_3a", h, w, c, 192, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch("redB_3b", h, w, 192, 320, 3, 3, 2, 0, 0, ReLU)
	g.ConvBranch("redB_7a", h, w, c, 192, 1, 1, 1, 0, 0, ReLU)
	g.ConvBranch("redB_7b", h, w, 192, 192, 1, 7, 1, 0, 3, ReLU)
	g.ConvBranch("redB_7c", h, w, 192, 192, 7, 1, 1, 3, 0, ReLU)
	g.ConvBranch("redB_7d", h, w, 192, 192, 3, 3, 2, 0, 0, ReLU)
	g.SetShape((h-3)/2+1, (w-3)/2+1, 1280)
	inceptionTowerC(g, "mixed9")
	g.SetShape(8, 8, 2048)
	inceptionTowerC(g, "mixed10")
	g.SetShape(8, 8, 2048)
	g.GlobalPool("gap")
	g.Dense("fc", 1000, NoAct)
	g.SoftmaxOver("softmax", 1000)
	return g
}

// ViTRemoteSensing builds the Remote Sensing classifier (ViT-B/16 at
// 224x224, ~86M parameters — the wildfire-detection vision transformer).
func ViTRemoteSensing() *Graph {
	const (
		dModel = 768
		heads  = 12
		dFF    = 3072
		seq    = 197 // 14x14 patches + CLS token
	)
	g := NewGraph("vit-b16", 224, 224, 3)
	g.Conv("patch_embed", dModel, 16, 16, 0, NoAct)
	g.Embed("pos_embed", seq, dModel, seq)
	for i := 0; i < 12; i++ {
		transformerEncoderBlock(g, blockName("blk", i), seq, dModel, heads, dFF)
	}
	g.LayerNorm("final_ln", int64(seq)*dModel, dModel)
	g.TokenDense("head", 1, dModel, 1000, NoAct)
	g.SoftmaxOver("softmax", 1000)
	return g
}

func blockName(prefix string, i int) string {
	return prefix + "_" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// GPT2Generative builds a GPT-2 small decoder (124M parameters) at a
// 512-token prefill — the generative-AI workload class the paper names as
// the fastest-growing serverless domain. It is not part of the Table 1
// suite; it exercises the toolchain on a decoder-only LLM.
func GPT2Generative() *Graph {
	const (
		seq    = 512
		dModel = 768
		heads  = 12
		dFF    = 3072
		vocab  = 50257
		ctx    = 1024
	)
	g := NewSequenceGraph("gpt2-small", seq)
	g.Embed("wte", vocab, dModel, seq)
	g.Embed("wpe", ctx, dModel, seq)
	for i := 0; i < 12; i++ {
		transformerEncoderBlock(g, blockName("blk", i), seq, dModel, heads, dFF)
	}
	g.LayerNorm("final_ln", int64(seq)*dModel, dModel)
	// Tied output head: compute without extra parameters.
	g.BatchMatMul("lm_head", seq, dModel, vocab, 1)
	g.SoftmaxOver("lm_softmax", int64(seq)*vocab)
	return g
}
