// workflow.go replays workflow traces — invocation DAGs whose stage
// outputs become stage inputs as object-store objects — against the same
// serve core the request sims drive. Each DSCS drive fronts its own pool
// (the in-storage DSA is the drive's compute), an optional CPU tier
// mirrors the hybrid rack, and a real objstore.Store holds every
// inter-stage object, so placement decisions read the actual replica map:
// a stage scheduled on the drive holding its input reads through the
// drive's internal path; any other placement pays the fabric. One entry
// point covers both evaluation shapes — CPUInstances=0 is the
// drives-only rack of the Figure 13 regime, CPUInstances>0 the CPU+DSCS
// split of Figure 14 — and a Locality toggle swaps the placement policy
// between the replica-map-aware placer and a blind rotation, which is the
// comparison the locality goldens pin.
package cluster

import (
	"fmt"
	"time"

	"dscs/internal/csd"
	"dscs/internal/metrics"
	"dscs/internal/objstore"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/trace"
	"dscs/internal/units"
	"dscs/internal/workflow"
	"dscs/internal/workload"
)

// cpuPool names the optional CPU tier's pool in fault scripts and specs.
const cpuPool = "cpu"

// WorkflowSimConfig parameterizes RunWorkflows.
type WorkflowSimConfig struct {
	// Drives is the DSCS drive count; drive i fronts pool "drive<i>" with
	// WorkersPerDrive executors (the in-storage DSAs).
	Drives, WorkersPerDrive int
	// CPUInstances staffs the "cpu" fallback pool; 0 omits the tier
	// entirely (the drives-only rack regime).
	CPUInstances int
	// QueueDepth bounds each pool's admission queue.
	QueueDepth int
	// Service is the per-benchmark execution-time model (cpu, dscs); input
	// fetches and output writes are priced by the object store on top.
	Service HybridServiceModel
	// Jitter is the lognormal sigma on sampled service times (0 keeps the
	// model exact — the goldens' determinism lever).
	Jitter float64
	// Locality picks stage placement: true consults the replica map and
	// falls back to least-priced wait (workflow.Placer); false rotates
	// blindly across pools (workflow.RoundRobin).
	Locality bool
	// MaxBatch arms inter-stage batching: same-benchmark stages queued on
	// one pool — parallel fan-out shards especially — coalesce through a
	// per-pool serve.BatchFormer up to this count (0 or 1 disables).
	MaxBatch int
	// BatchLinger and BatchSLO tune the former's hold decision.
	BatchLinger, BatchSLO time.Duration
	// SampleEvery sets the queue-occupancy sampling period.
	SampleEvery time.Duration
	// MakespanSLO tallies workflows whose end-to-end makespan fit the
	// budget (0 disables the tally).
	MakespanSLO time.Duration
	// Faults is the scripted fault schedule: pool events target "drive<i>"
	// or "cpu" (workers stop; the queue survives), drive events target
	// node "drive<i>" in the object store (replicas fail over and the
	// locality placer routes around the hole). The two are orthogonal, as
	// on the live engine.
	Faults []trace.FaultEvent
}

// WorkflowStats is the outcome of one workflow replay.
type WorkflowStats struct {
	// Workflows counts admitted graphs; Settled those whose every stage
	// reached a terminal state; Succeeded those that completed every stage.
	Workflows, WorkflowsSettled, WorkflowsSucceeded int
	// Stage ledger: every admitted stage settles as exactly one of these.
	Stages, StagesCompleted, StagesDropped, StagesStranded int
	// LocalStages ran on the drive holding their (dominant) input;
	// RemoteStages paid the fabric for it.
	LocalStages, RemoteStages int
	// LocalBytes were served through a drive's internal path; FabricBytes
	// moved over the network to feed stages. Their split is the locality
	// win the goldens pin.
	LocalBytes, FabricBytes units.Bytes
	// Batches counts executions (<= StagesCompleted with batching on);
	// Formed counts batches the queue-level formers released.
	Batches, Formed int
	// MakespanSample holds every succeeded workflow's end-to-end span.
	MakespanSample           *metrics.Sample
	MakespanP50, MakespanP95 time.Duration
	// WithinSLO counts succeeded workflows inside MakespanSLO.
	WithinSLO int
	// Faults counts applied fault events; Requeued the in-flight tasks a
	// pool kill returned to its queue; FetchFailures the stages stranded
	// because no healthy replica of an input survived.
	Faults, Requeued, FetchFailures int
	// Queue is total queued stages over time.
	Queue metrics.Series
}

// workflowStore builds the replay's object store: one DSCS node per drive
// (IDs matching the pool names) plus two plain-SSD replica targets.
func workflowStore(drives int, seed uint64) (*objstore.Store, error) {
	var nodes []*objstore.Node
	for i := 0; i < drives; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("drive%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	return objstore.New(objstore.Default(), nodes, sim.NewRNG(seed))
}

// wfState wraps one workflow's graph state with its replay bookkeeping.
type wfState struct {
	run     *workflow.Run
	counted bool
}

// wfStageRef rides each stage task's Ref: which run and stage the task is,
// and the I/O bill priced at submission.
type wfStageRef struct {
	ws    *wfState
	idx   int
	bench *workload.Benchmark
	fetch time.Duration // summed remote-input fetch time
}

// RunWorkflows replays the workflow trace and returns the stats. The
// deterministic levers are the ones the request sims use: a seeded RNG for
// jitter, and every object-store transfer priced at the q=0.5 analytic
// quantile (no RNG draws), so a Jitter=0 run is exactly reproducible.
func RunWorkflows(wtr *trace.WorkflowTrace, cfg WorkflowSimConfig, seed uint64) (*WorkflowStats, error) {
	if wtr == nil || len(wtr.Workflows) == 0 {
		return nil, fmt.Errorf("cluster: empty workflow trace")
	}
	if cfg.Drives <= 0 || cfg.WorkersPerDrive <= 0 || cfg.QueueDepth <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete workflow config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}

	// Pools: one per drive, plus the optional CPU tier.
	specs := make([]serve.PoolSpec, 0, cfg.Drives+1)
	for i := 0; i < cfg.Drives; i++ {
		specs = append(specs, serve.PoolSpec{
			Name: fmt.Sprintf("drive%d", i), Class: sched.ClassDSCS,
			Workers: cfg.WorkersPerDrive, QueueDepth: cfg.QueueDepth,
			Policy: sched.DAGAwarePolicy{},
		})
	}
	if cfg.CPUInstances > 0 {
		specs = append(specs, serve.PoolSpec{
			Name: cpuPool, Class: sched.ClassCPU,
			Workers: cfg.CPUInstances, QueueDepth: cfg.QueueDepth,
			Policy: sched.DAGAwarePolicy{},
		})
	}
	mc, err := serve.NewMultiCore(specs)
	if err != nil {
		return nil, err
	}
	pools := mc.Pools()
	poolOf := make(map[string]int, pools)
	for i := 0; i < pools; i++ {
		poolOf[specs[i].Name] = i
	}
	for _, ev := range cfg.Faults {
		if _, ok := poolOf[ev.Target]; !ok || (!ev.Kind.Pool() && ev.Target == cpuPool) {
			return nil, fmt.Errorf("cluster: workflow fault targets unknown %s %q",
				map[bool]string{true: "pool", false: "drive"}[ev.Kind.Pool()], ev.Target)
		}
	}

	store, err := workflowStore(cfg.Drives, seed+1)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)

	// Inter-stage batching: a queue-level former per pool, so parallel
	// fan-out shards landing together release as one execution.
	formers := make([]*serve.BatchFormer, pools)
	if cfg.MaxBatch > 1 {
		for i := 0; i < pools; i++ {
			formers[i] = serve.NewBatchFormer(cfg.MaxBatch, cfg.BatchLinger, cfg.BatchSLO, specs[i].Class)
			mc.Pool(i).AttachFormer(formers[i])
		}
	}

	// The two placement policies under comparison.
	placer := &workflow.Placer{
		Pools: pools,
		Home: func(key string) int {
			node, _, ok := store.DSCSReplicaHealthy(key)
			if !ok {
				return -1
			}
			if p, ok := poolOf[node.ID]; ok {
				return p
			}
			return -1
		},
		Healthy: mc.Healthy,
		Idle:    mc.Idle,
		Wait:    mc.PricedWait,
	}
	blind := &workflow.RoundRobin{Pools: pools, Healthy: mc.Healthy}

	st := &WorkflowStats{
		Workflows:      len(wtr.Workflows),
		Stages:         wtr.Stages(),
		MakespanSample: metrics.NewSample(len(wtr.Workflows)),
		Queue:          metrics.Series{Name: "queued_stages"},
	}

	noteSettled := func(ws *wfState) {
		if ws.counted || !ws.run.Settled() {
			return
		}
		ws.counted = true
		st.WorkflowsSettled++
		if !ws.run.Succeeded() {
			return
		}
		st.WorkflowsSucceeded++
		if ms, ok := ws.run.Makespan(); ok {
			st.MakespanSample.Add(ms)
			if cfg.MakespanSLO > 0 && ms <= cfg.MakespanSLO {
				st.WithinSLO++
			}
		}
	}

	var pump func()
	nextTaskID := 0
	var submitStage func(ws *wfState, idx int)
	submitStage = func(ws *wfState, idx int) {
		now := engine.Now()
		stage := ws.run.Stage(idx)
		ref := &wfStageRef{ws: ws, idx: idx, bench: workload.BySlug(stage.Benchmark)}
		inputs := ws.run.InputKeys(idx)
		// Place by the dominant input: the biggest object is the one worth
		// staying next to. Fan-in side inputs are billed individually below.
		domKey, domSize := "", units.Bytes(-1)
		for _, key := range inputs {
			if obj, ok := store.Lookup(key); ok && obj.Size > domSize {
				domKey, domSize = key, obj.Size
			}
		}
		var pl workflow.Placement
		if cfg.Locality {
			pl = placer.Place(domKey)
		} else {
			pl = blind.Place()
		}
		pool := pl.Pool
		if pool < 0 {
			// No healthy pool: queues are durable, so admit on pool 0 and
			// let dispatch resume on recovery.
			pool = 0
		}
		// Bill each input: served local if this pool's drive holds its
		// healthy DSCS replica, fetched over the fabric otherwise.
		local := false
		for _, key := range inputs {
			obj, ok := store.Lookup(key)
			home := -1
			if ok {
				if node, _, hOK := store.DSCSReplicaHealthy(key); hOK {
					home = poolOf[node.ID]
				}
			}
			if ok && home == pool {
				st.LocalBytes += obj.Size
				if key == domKey {
					local = true
				}
				continue
			}
			d, _, err := store.GetWithFailover(key, 0.5)
			if err != nil {
				// No healthy replica anywhere: the stage can never
				// assemble its input, so it strands (and cascades).
				st.FetchFailures++
				st.StagesStranded += ws.run.Strand(idx, now)
				noteSettled(ws)
				return
			}
			ref.fetch += d
			if ok {
				st.FabricBytes += obj.Size
			}
		}
		if local {
			st.LocalStages++
		} else {
			st.RemoteStages++
		}
		cpu, dscs, accel := cfg.Service(stage.Benchmark)
		task := sched.HybridTask{
			ID: nextTaskID, Arrived: ws.run.UnlockedAt(idx),
			Payload: stage.Benchmark, CPUService: cpu, DSCSService: dscs,
			AccelFuncs: accel, Ref: ref,
		}
		nextTaskID++
		if !mc.SubmitTo(pool, task) {
			st.StagesDropped++
			st.StagesStranded += ws.run.Drop(idx, now)
			noteSettled(ws)
			return
		}
		if formers[pool] != nil {
			formers[pool].Observe(task, 1)
		}
	}

	// unlock submits a newly unlocked stage, honoring its offset floor.
	unlock := func(ws *wfState, idx int) {
		at := ws.run.UnlockedAt(idx)
		if at > engine.Now() {
			engine.At(at, func() {
				submitStage(ws, idx)
				pump()
			})
			return
		}
		submitStage(ws, idx)
	}

	// settleComplete retires one stage after its output object landed and
	// feeds the unlock path.
	settleComplete := func(ref *wfStageRef) {
		now := engine.Now()
		unlocked := ref.ws.run.Complete(ref.idx, now)
		st.StagesCompleted++
		for _, j := range unlocked {
			unlock(ref.ws, j)
		}
		noteSettled(ref.ws)
	}

	// In-flight executions, tracked per pool for the fault model.
	type wfExec struct {
		tasks           []sched.HybridTask
		done, cancelled bool
	}
	inflight := make([][]*wfExec, pools)
	faultsOn := len(cfg.Faults) > 0

	execute := func(pool int, tasks []sched.HybridTask) {
		var ex *wfExec
		if faultsOn {
			ex = &wfExec{tasks: tasks}
			inflight[pool] = append(inflight[pool], ex)
		}
		base := tasks[0].CPUService
		if specs[pool].Class == sched.ClassDSCS {
			base = tasks[0].DSCSService
		}
		if cfg.Jitter > 0 {
			base = sim.LogNormal{Median: base, Sigma: cfg.Jitter}.Sample(rng)
		}
		// The batch shares one execution (that is the point of batching);
		// each member's remote-input fetches serialize on top of it.
		service := base
		for _, t := range tasks {
			service += t.Ref.(*wfStageRef).fetch
		}
		engine.After(service, func() {
			if ex != nil {
				if ex.cancelled {
					return
				}
				ex.done = true
			}
			mc.Complete(pool, len(tasks))
			st.Batches++
			for _, t := range tasks {
				ref := t.Ref.(*wfStageRef)
				// The completed stage writes its output object — the
				// replica map now says where its dependents belong. The
				// q=0.5 write draws no RNG.
				putD, _, err := store.PutAt(ref.ws.run.OutputKey(ref.idx),
					ref.bench.IntermediateBytes, true, 0.5)
				if err != nil {
					putD = 0
				}
				engine.After(putD, func() { settleComplete(ref); pump() })
			}
			pump()
		})
	}

	lastWake := make([]time.Duration, pools)
	for i := range lastWake {
		lastWake[i] = -1
	}
	pump = func() {
		for i := 0; i < pools; i++ {
			for {
				now := engine.Now()
				var task sched.HybridTask
				var ok bool
				if formers[i] != nil {
					var wake time.Duration
					var wakeOK bool
					task, ok, wake, wakeOK = mc.DispatchFormed(i, now)
					if !ok {
						if wakeOK && wake != lastWake[i] {
							lastWake[i] = wake
							engine.At(wake, func() { pump() })
						}
						break
					}
				} else if task, ok = mc.Dispatch(i, now); !ok {
					break
				}
				batch := []sched.HybridTask{task}
				if cfg.MaxBatch > 1 {
					batch = append(batch, mc.Coalesce(i, now, cfg.MaxBatch-1,
						func(t sched.HybridTask) bool { return t.Payload == task.Payload })...)
				}
				execute(i, batch)
			}
		}
	}

	// applyFault mirrors the request sims: a pool kill cancels its open
	// executions and requeues their tasks at-most-once (stage age and the
	// submission ledger never move); a drive event reshapes the replica
	// map under the locality placer's feet.
	applyFault := func(ev trace.FaultEvent) {
		now := engine.Now()
		st.Faults++
		if !ev.Kind.Pool() {
			if ev.Kind == trace.FaultDriveDown {
				if store.FailNode(ev.Target) == nil {
					store.ReReplicate(ev.Target)
				}
			} else {
				store.RecoverNode(ev.Target)
			}
			return
		}
		pool := poolOf[ev.Target]
		if ev.Kind == trace.FaultPoolUp {
			mc.RecoverPool(pool, now)
			pump()
			return
		}
		if !mc.Healthy(pool) {
			return
		}
		mc.FailPool(pool, now)
		for _, ex := range inflight[pool] {
			if ex.done || ex.cancelled {
				continue
			}
			ex.cancelled = true
			mc.Requeue(pool, ex.tasks)
			st.Requeued += len(ex.tasks)
			if formers[pool] != nil {
				for _, t := range ex.tasks {
					formers[pool].Observe(t, 1)
				}
			}
		}
		inflight[pool] = inflight[pool][:0]
	}
	for _, ev := range cfg.Faults {
		ev := ev
		engine.At(ev.At, func() { applyFault(ev) })
	}

	// Admit the trace: each arrival seeds its root input objects (the
	// caller's upload, out of band) and unlocks the roots.
	states := make([]*wfState, 0, len(wtr.Workflows))
	var admitErr error
	for _, w := range wtr.Workflows {
		run, err := workflow.NewRun(w.ID, w.At, w.Spec)
		if err != nil {
			return nil, err
		}
		for _, st := range w.Spec.Stages {
			if workload.BySlug(st.Benchmark) == nil {
				return nil, fmt.Errorf("cluster: workflow %d stage %q runs unknown benchmark %q",
					w.ID, st.ID, st.Benchmark)
			}
		}
		ws := &wfState{run: run}
		states = append(states, ws)
		engine.At(w.At, func() {
			for _, i := range ws.run.Spec().Roots() {
				b := workload.BySlug(ws.run.Stage(i).Benchmark)
				if _, _, err := store.PutAt(workflow.InputKey(ws.run.ID(), ws.run.Stage(i).ID),
					b.InputBytes, true, 0.5); err != nil && admitErr == nil {
					admitErr = err
				}
			}
			for _, i := range ws.run.Start(engine.Now()) {
				unlock(ws, i)
			}
			pump()
		})
	}

	horizon := wtr.Duration + 2*time.Minute
	for t := time.Duration(0); t <= horizon; t += cfg.SampleEvery {
		at := t
		engine.At(at, func() { st.Queue.Add(at, float64(mc.QueueLen())) })
	}

	engine.Run()
	if admitErr != nil {
		return nil, admitErr
	}

	// Close out: whatever the horizon cut off strands, then the ledgers
	// must balance — per workflow and across the pool set.
	now := engine.Now()
	for _, ws := range states {
		st.StagesStranded += ws.run.StrandRemaining(now)
		noteSettled(ws)
		if err := ws.run.Conservation(); err != nil {
			return nil, err
		}
		if !ws.run.Settled() {
			return nil, fmt.Errorf("cluster: workflow %d never settled", ws.run.ID())
		}
	}
	if got := st.StagesCompleted + st.StagesDropped + st.StagesStranded; got != st.Stages {
		return nil, fmt.Errorf("cluster: workflow stage ledger leaks: %d completed + %d dropped + %d stranded != %d admitted",
			st.StagesCompleted, st.StagesDropped, st.StagesStranded, st.Stages)
	}
	if err := mc.Conservation(); err != nil {
		return nil, err
	}
	for i := 0; i < pools; i++ {
		if formers[i] != nil {
			st.Formed += formers[i].Formed()
		}
	}
	st.MakespanP50 = st.MakespanSample.Percentile(0.50)
	st.MakespanP95 = st.MakespanSample.Percentile(0.95)
	return st, nil
}
