package cluster

import (
	"testing"
	"time"

	"dscs/internal/scale"
	"dscs/internal/sched"
	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// diurnalTrace is the elastic-capacity stress shape: a 16-minute trace of
// two day/night cycles (sinusoid 5..100 requests/s) with 15-second bursts
// every minute at 4x the ambient rate. Daytime bursts peak near 400
// requests/s — beyond what the mid-sized fixed pool can absorb — while
// nights idle near 5 requests/s, where that same fixed pool wastes almost
// its whole footprint.
func diurnalTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DiurnalConfig{
		Duration: 16 * time.Minute,
		MinRate:  5, MaxRate: 100, Period: 8 * time.Minute,
		BurstFactor: 4, BurstEvery: time.Minute, BurstLength: 15 * time.Second,
	}
	tr, err := trace.GenerateDiurnal(cfg, workload.Suite(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestElasticLifecycleGolden is the elastic acceptance scenario on the
// Fig 13 rack: the same diurnal+bursty trace replayed against three
// capacity regimes, all measured through the identical lifecycle state
// machine so idle-capacity cost lands on one axis.
//
//   - fixed: 110 instances always warm — the classic pool, sized between
//     the daytime base (~30 busy) and the burst peak (~120 busy), so it
//     saturates during crest bursts and idles ~all night.
//   - reactive: capacity tracks busy+queued between 4 and 150. Growth
//     starts only after work queues, so every burst edge eats the 3s
//     cold start before relief arrives.
//   - predictive: reactive plus the Little's-law pre-warm floor and the
//     wait-p95 surge latch. The windowed burst-level rate estimate keeps
//     daytime capacity above the burst peak while nights still scale to
//     a handful of warm slots.
//
// Predictive must strictly dominate both on within-SLO completions and
// beat fixed on idle-capacity cost; the seeded counts are pinned.
func TestElasticLifecycleGolden(t *testing.T) {
	tr := diurnalTrace(t)
	base := Config{
		QueueDepth:  10000,
		Service:     flatService(300 * time.Millisecond),
		SampleEvery: 5 * time.Second,
		BatchSLO:    time.Second, // within-SLO tally only; no former armed
	}

	run := func(ec scale.Config) *Stats {
		cfg := base
		cfg.Elastic = &ec
		st, err := Run(tr, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	elastic := scale.Config{
		Min: 4, Max: 150,
		ColdStart: 3 * time.Second, IdleLinger: 15 * time.Second,
		Window: 256,
	}
	fixedCfg := elastic
	fixedCfg.Mode = scale.ModeFixed
	fixedCfg.Min, fixedCfg.Max = 110, 110
	reactiveCfg := elastic
	reactiveCfg.Mode = scale.ModeReactive
	predictiveCfg := elastic
	predictiveCfg.Mode = scale.ModePredictive

	fixed := run(fixedCfg)
	reactive := run(reactiveCfg)
	predictive := run(predictiveCfg)

	for name, st := range map[string]*Stats{
		"fixed": fixed, "reactive": reactive, "predictive": predictive,
	} {
		t.Logf("%s: completed=%d dropped=%d withinSLO=%d coldStarts=%d suspends=%d idleCost=%s",
			name, st.Completed, st.Dropped, st.WithinSLO, st.ColdStarts, st.Suspends, st.IdleCost)
		if st.Dropped != 0 {
			t.Errorf("%s dropped %d requests; the comparison needs equal throughput", name, st.Dropped)
		}
	}

	// The headline: pre-warm wins the SLO race against both rivals...
	if predictive.WithinSLO <= reactive.WithinSLO {
		t.Errorf("predictive must beat reactive on within-SLO: %d vs %d",
			predictive.WithinSLO, reactive.WithinSLO)
	}
	if predictive.WithinSLO <= fixed.WithinSLO {
		t.Errorf("predictive must beat fixed on within-SLO: %d vs %d",
			predictive.WithinSLO, fixed.WithinSLO)
	}
	// ...while buying less idle capacity than the fixed pool.
	if predictive.IdleCost >= fixed.IdleCost {
		t.Errorf("predictive must idle less warm capacity than fixed: %s vs %s",
			predictive.IdleCost, fixed.IdleCost)
	}
	// Fixed pools never pay cold starts past construction and never
	// suspend; the elastic arms must actually cycle capacity.
	if fixed.Suspends != 0 {
		t.Errorf("fixed pool suspended %d slots", fixed.Suspends)
	}
	if reactive.ColdStarts == 0 || predictive.ColdStarts == 0 {
		t.Error("elastic arms must pay cold starts")
	}
	if reactive.Suspends == 0 || predictive.Suspends == 0 {
		t.Error("elastic arms must suspend idle capacity at night")
	}

	// Seeded goldens (trace seed 7, run seed 11) pin all three regimes —
	// a drift in the lifecycle, the autoscaler, or the wake plumbing
	// shows its hand here before it shows up in production telemetry.
	type golden struct{ completed, withinSLO, coldStarts, suspends int }
	for _, pin := range []struct {
		name string
		st   *Stats
		want golden
	}{
		{"fixed", fixed, golden{87705, 82399, 0, 0}},
		{"reactive", reactive, golden{87705, 71279, 1426, 1426}},
		{"predictive", predictive, golden{87705, 87670, 679, 630}},
	} {
		got := golden{pin.st.Completed, pin.st.WithinSLO, pin.st.ColdStarts, pin.st.Suspends}
		if got != pin.want {
			t.Errorf("%s: completed/withinSLO/coldStarts/suspends = %+v, pinned %+v",
				pin.name, got, pin.want)
		}
	}

	// Determinism: elastic runs must stay reproducible per seed.
	again := run(predictiveCfg)
	if again.WithinSLO != predictive.WithinSLO || again.IdleCost != predictive.IdleCost {
		t.Error("elastic runs must be deterministic per seed")
	}
}

// TestHybridElasticLifecycle drives the SAME lifecycle state machine
// through the hybrid sim's split layout: every pool gets its own
// autoscaler (Max pinned to the pool's instance split), capacity cycles
// under the bursty trace, and the run stays deterministic per seed.
func TestHybridElasticLifecycle(t *testing.T) {
	tr := hybridTrace(t)
	cfg := HybridConfig{
		CPUInstances: 28, DSCSInstances: 6, QueueDepth: 100000,
		Policy: sched.CriticalityPolicy{}, Service: mixedService, Jitter: 0.15,
		SampleEvery: 5 * time.Second,
		SplitQueues: true,
		Elastic: &scale.Config{
			Mode: scale.ModeReactive,
			Min:  1, Max: 9999, // Max is per-pool: ignored in favor of the split
			ColdStart: 500 * time.Millisecond, IdleLinger: 10 * time.Second,
		},
	}
	st, err := RunHybrid(tr, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != len(tr.Requests) || st.Dropped != 0 {
		t.Fatalf("completed %d/%d dropped %d", st.Completed, len(tr.Requests), st.Dropped)
	}
	// The bursty trace must cycle capacity on at least one pool: growth
	// pays cold starts, the inter-burst lulls suspend, and the idle
	// integral accrues whenever warm slots outnumber busy ones.
	if st.ColdStarts == 0 {
		t.Error("hybrid elastic run paid no cold starts")
	}
	if st.Suspends == 0 {
		t.Error("hybrid elastic run never suspended idle capacity")
	}
	if st.IdleCost == 0 {
		t.Error("hybrid elastic run accrued no idle-capacity cost")
	}

	again, err := RunHybrid(tr, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if again.Completed != st.Completed || again.ColdStarts != st.ColdStarts ||
		again.Suspends != st.Suspends || again.IdleCost != st.IdleCost ||
		again.Latency.Mean() != st.Latency.Mean() {
		t.Error("hybrid elastic runs must be deterministic per seed")
	}

	// The fixed-capacity path is untouched: Elastic without SplitQueues
	// is a config error, not a silent fallback.
	bad := cfg
	bad.SplitQueues = false
	if _, err := RunHybrid(tr, bad, 5); err == nil {
		t.Error("Elastic without SplitQueues must be rejected")
	}
}
