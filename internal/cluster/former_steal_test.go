package cluster

import (
	"testing"
	"time"
)

// TestFormerGolden pins the Fig 13/14 regime counts with the global batch
// former disabled and enabled, so a future scheduler refactor that shifts
// the batching regime shows its hand explicitly instead of hiding inside a
// latency delta. Two regimes, both seeded and fully deterministic:
//
//   - Overload (the Fig 13 shape): 4 instances, a 40-deep queue, bursty
//     arrivals at ~15x one instance's capacity. Queue-level forming admits
//     more (the queue drains in fuller batches ahead of the bound) and the
//     SLO cap tightens it further.
//   - Light load (the Fig 14 tension): sparse arrivals, a generous 2s
//     linger. The per-dispatch window holds workers hostage for the full
//     linger; the former holds only queued work, and the SLO budget caps
//     the hold so p99 collapses to the service time plus the slack bound.
func TestFormerGolden(t *testing.T) {
	type golden struct {
		completed, dropped, batches, formed int
		meanMS                              float64
	}
	check := func(t *testing.T, name string, st *Stats, want golden) {
		t.Helper()
		if st.Completed != want.completed || st.Dropped != want.dropped ||
			st.Batches != want.batches || st.Formed != want.formed {
			t.Errorf("%s: completed/dropped/batches/formed = %d/%d/%d/%d, pinned %d/%d/%d/%d",
				name, st.Completed, st.Dropped, st.Batches, st.Formed,
				want.completed, want.dropped, want.batches, want.formed)
		}
		meanMS := float64(st.LatencySample.Mean()) / float64(time.Millisecond)
		if diff := meanMS - want.meanMS; diff < -1e-3 || diff > 1e-3 {
			t.Errorf("%s: mean latency %.6fms, pinned %.6fms", name, meanMS, want.meanMS)
		}
	}

	t.Run("overload", func(t *testing.T) {
		tr := smallTrace(t, 60)
		base := Config{Instances: 4, QueueDepth: 40,
			Service: flatService(250 * time.Millisecond), SampleEvery: time.Second,
			MaxBatch: 4, BatchLinger: 400 * time.Millisecond}
		goldens := map[string]golden{
			"off":        {6974, 144, 1756, 0, 742.828539},
			"former":     {7017, 101, 1877, 1775, 716.985365},
			"former+slo": {7026, 92, 1930, 1809, 687.382626},
		}
		for _, mode := range []struct {
			name string
			gb   bool
			slo  time.Duration
		}{{"off", false, 0}, {"former", true, 0}, {"former+slo", true, 150 * time.Millisecond}} {
			cfg := base
			cfg.GlobalBatch, cfg.BatchSLO = mode.gb, mode.slo
			st, err := Run(tr, cfg, 11)
			if err != nil {
				t.Fatal(err)
			}
			check(t, mode.name, st, goldens[mode.name])
		}
	})

	t.Run("light-load", func(t *testing.T) {
		tr := smallTrace(t, 3)
		base := Config{Instances: 2, QueueDepth: 100,
			Service: flatService(100 * time.Millisecond), SampleEvery: time.Second,
			MaxBatch: 4, BatchLinger: 2 * time.Second}
		goldens := map[string]golden{
			"off":        {349, 0, 140, 0, 3232.455882},
			"former":     {349, 0, 206, 206, 1657.040010},
			"former+slo": {349, 0, 310, 310, 385.518062},
		}
		for _, mode := range []struct {
			name string
			gb   bool
			slo  time.Duration
		}{{"off", false, 0}, {"former", true, 0}, {"former+slo", true, 300 * time.Millisecond}} {
			cfg := base
			cfg.GlobalBatch, cfg.BatchSLO = mode.gb, mode.slo
			st, err := Run(tr, cfg, 11)
			if err != nil {
				t.Fatal(err)
			}
			check(t, mode.name, st, goldens[mode.name])
		}
	})
}

// TestStealRebalancesDeepBacklog is the acceptance scenario on the
// discrete-event rack: split per-class backlogs stage a deep DSCS queue
// beside 28 idle CPU instances (every arrival targets the accelerated
// tier). With stealing armed the CPU side drains the excess and
// completions strictly dominate the no-steal configuration; without it the
// backlog overflows its bound and drops.
func TestStealRebalancesDeepBacklog(t *testing.T) {
	tr := hybridTrace(t)
	run := func(steal, spill int) *HybridStats {
		st, err := RunHybrid(tr, HybridConfig{
			CPUInstances: 28, DSCSInstances: 6, QueueDepth: 400,
			Service: mixedService, Jitter: 0.15, SampleEvery: 5 * time.Second,
			SplitQueues: true, StealThreshold: steal, SpilloverThreshold: spill,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	noSteal := run(0, 0)
	withSteal := run(4, 0)
	both := run(4, 200)

	if withSteal.Completed <= noSteal.Completed {
		t.Errorf("steal completions (%d) must strictly dominate no-steal (%d)",
			withSteal.Completed, noSteal.Completed)
	}
	if withSteal.Dropped >= noSteal.Dropped {
		t.Errorf("steal drops (%d) must undercut no-steal (%d)", withSteal.Dropped, noSteal.Dropped)
	}
	if withSteal.Stolen == 0 {
		t.Error("rebalancing run recorded no steals")
	}
	if noSteal.Stolen != 0 || noSteal.Spilled != 0 {
		t.Errorf("no-steal run moved work: stolen=%d spilled=%d", noSteal.Stolen, noSteal.Spilled)
	}
	if withSteal.Latency.Mean() >= noSteal.Latency.Mean() {
		t.Error("rebalancing must not worsen mean latency under a drop-heavy backlog")
	}
	// Submit-time spillover and drain-time stealing compose: the combined
	// run completes at least as much as stealing alone and both mechanisms
	// are visibly at work.
	if both.Completed < withSteal.Completed {
		t.Errorf("steal+spillover completed %d, less than steal alone (%d)",
			both.Completed, withSteal.Completed)
	}
	if both.Spilled == 0 || both.Stolen == 0 {
		t.Errorf("combined run: spilled=%d stolen=%d, want both active", both.Spilled, both.Stolen)
	}

	// Seeded golden pins for the regime shift (same trace seed 21, run
	// seed 5 as the classic equivalence test).
	type golden struct{ completed, dropped, stolen, spilled int }
	for _, pin := range []struct {
		name string
		st   *HybridStats
		want golden
	}{
		{"no-steal", noSteal, golden{18213, 15606, 0, 0}},
		{"steal", withSteal, golden{31499, 2320, 13754, 0}},
		{"steal+spillover", both, golden{32106, 1713, 5896, 8382}},
	} {
		if pin.st.Completed != pin.want.completed || pin.st.Dropped != pin.want.dropped ||
			pin.st.Stolen != pin.want.stolen || pin.st.Spilled != pin.want.spilled {
			t.Errorf("%s: completed/dropped/stolen/spilled = %d/%d/%d/%d, pinned %d/%d/%d/%d",
				pin.name, pin.st.Completed, pin.st.Dropped, pin.st.Stolen, pin.st.Spilled,
				pin.want.completed, pin.want.dropped, pin.want.stolen, pin.want.spilled)
		}
	}
}

// TestSplitDeterminism: split + steal runs must stay reproducible per
// seed, like every other simulation path.
func TestSplitDeterminism(t *testing.T) {
	tr := hybridTrace(t)
	run := func() *HybridStats {
		st, err := RunHybrid(tr, HybridConfig{
			CPUInstances: 10, DSCSInstances: 3, QueueDepth: 300,
			Service: mixedService, Jitter: 0.2, SampleEvery: 5 * time.Second,
			SplitQueues: true, StealThreshold: 2, SpilloverThreshold: 150,
		}, 9)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Stolen != b.Stolen || a.Spilled != b.Spilled ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Error("split runs must be deterministic per seed")
	}
}
