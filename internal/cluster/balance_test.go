package cluster

import (
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// onesidedTrace is the adaptive-balance regime: bursty arrivals, every one
// of them targeting the accelerated tier (the split layout routes all
// arrivals to the DSCS backlog), with bursts that swamp the small DSCS
// pool while the CPU side has capacity to spare.
func onesidedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.BurstyConfig{
		Duration: 2 * time.Minute, BaseRate: 40, BurstRate: 130,
		BurstEvery: 30 * time.Second, BurstLength: 15 * time.Second,
	}
	tr, err := trace.Generate(cfg, workload.Suite(), sim.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// balanceConfig is the shared pool shape: 3 DSCS instances serve the base
// rate comfortably but drown in the bursts; 28 CPU instances idle unless
// rebalancing moves work over. The static thresholds are the kind an
// operator sizes against the queue bound (half of it) — reasonable-looking
// counts that translate to multi-second waits at DSCS drain speed, far
// past the SLO. Wait-keyed balance reacts to the delay itself.
func balanceConfig() HybridConfig {
	return HybridConfig{
		CPUInstances: 28, DSCSInstances: 3, QueueDepth: 300,
		Service: mixedService, Jitter: 0.15, SampleEvery: 5 * time.Second,
		SplitQueues: true, SLO: time.Second,
	}
}

// TestAdaptiveBalanceGolden is the acceptance scenario: under the bursty
// one-sided trace, wait-keyed rebalancing (-adaptive-balance) must beat
// the static depth thresholds on completions within the SLO — the static
// counts only trip after the backlog already represents seconds of queue
// delay, while the adopted wait-p95 gap latches within a warmup's worth of
// dispatches. Both regimes replay the identical trace and seed, and the
// seeded counts are pinned so a regression in either trigger shows its
// hand explicitly.
func TestAdaptiveBalanceGolden(t *testing.T) {
	tr := onesidedTrace(t)

	run := func(mutate func(*HybridConfig)) *HybridStats {
		cfg := balanceConfig()
		mutate(&cfg)
		st, err := RunHybrid(tr, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	static := run(func(cfg *HybridConfig) {
		cfg.SpilloverThreshold, cfg.StealThreshold = 150, 150
	})
	adaptive := run(func(cfg *HybridConfig) {
		cfg.AdaptiveBalance = true
		cfg.EstimateWarmup, cfg.EstimateWindow = 16, 128
	})

	if adaptive.WithinSLO <= static.WithinSLO {
		t.Errorf("adaptive balance within-SLO (%d) must beat static thresholds (%d)",
			adaptive.WithinSLO, static.WithinSLO)
	}
	if adaptive.Stolen == 0 && adaptive.Spilled == 0 {
		t.Error("adaptive run moved no work")
	}
	if adaptive.Served["cpu"] == 0 {
		t.Error("adaptive run never used the CPU pool")
	}
	// The wait digests are the run's own evidence: the DSCS pool queued,
	// and the adaptive run must leave it with a bounded tail where the
	// static run let multi-second delays stand.
	if adaptive.WaitP95["dscs"] >= static.WaitP95["dscs"] {
		t.Errorf("adaptive DSCS wait p95 (%v) must undercut static (%v)",
			adaptive.WaitP95["dscs"], static.WaitP95["dscs"])
	}

	// Determinism: the wait-keyed path must stay reproducible per seed.
	again := run(func(cfg *HybridConfig) {
		cfg.AdaptiveBalance = true
		cfg.EstimateWarmup, cfg.EstimateWindow = 16, 128
	})
	if again.WithinSLO != adaptive.WithinSLO || again.Stolen != adaptive.Stolen ||
		again.Spilled != adaptive.Spilled || again.Latency.Mean() != adaptive.Latency.Mean() {
		t.Error("adaptive-balance runs must be deterministic per seed")
	}

	// Seeded golden pins (trace seed 33, run seed 7).
	type golden struct{ completed, dropped, withinSLO, stolen, spilled int }
	for _, pin := range []struct {
		name string
		st   *HybridStats
		want golden
	}{
		{"static", static, golden{10150, 0, 5311, 0, 4254}},
		{"adaptive", adaptive, golden{10150, 0, 10150, 5087, 616}},
	} {
		if pin.st.Completed != pin.want.completed || pin.st.Dropped != pin.want.dropped ||
			pin.st.WithinSLO != pin.want.withinSLO || pin.st.Stolen != pin.want.stolen ||
			pin.st.Spilled != pin.want.spilled {
			t.Errorf("%s: completed/dropped/withinSLO/stolen/spilled = %d/%d/%d/%d/%d, pinned %d/%d/%d/%d/%d",
				pin.name, pin.st.Completed, pin.st.Dropped, pin.st.WithinSLO, pin.st.Stolen, pin.st.Spilled,
				pin.want.completed, pin.want.dropped, pin.want.withinSLO, pin.want.stolen, pin.want.spilled)
		}
	}
}

// TestNWayAdaptiveBalance exercises the MultiCore generalization the
// two-class HybridCore could not express: three same-class CPU pools
// beside the DSCS backlog, all rebalancing on the wait-p95 gap. Every CPU
// pool must end up serving (spills pick the least-wait pool and idle pools
// steal N-way), and the balanced run must dominate the no-balance baseline
// on within-SLO completions.
func TestNWayAdaptiveBalance(t *testing.T) {
	tr := onesidedTrace(t)
	run := func(balance bool) *HybridStats {
		cfg := balanceConfig()
		cfg.CPUPools = 3
		cfg.AdaptiveBalance = balance
		cfg.EstimateWarmup, cfg.EstimateWindow = 16, 128
		st, err := RunHybrid(tr, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	balanced := run(true)
	isolated := run(false)

	for _, pool := range []string{"cpu0", "cpu1", "cpu2"} {
		if balanced.Served[pool] == 0 {
			t.Errorf("pool %s served nothing in the N-way balanced run", pool)
		}
		if isolated.Served[pool] != 0 {
			t.Errorf("pool %s served %d with balancing off (arrivals are one-sided)",
				pool, isolated.Served[pool])
		}
	}
	if balanced.WithinSLO <= isolated.WithinSLO {
		t.Errorf("N-way balance within-SLO (%d) must beat isolated pools (%d)",
			balanced.WithinSLO, isolated.WithinSLO)
	}
	if balanced.Stolen == 0 {
		t.Error("N-way balanced run recorded no steals")
	}
	// Determinism across the N-way layout too.
	again := run(true)
	if again.WithinSLO != balanced.WithinSLO || again.Stolen != balanced.Stolen ||
		again.Spilled != balanced.Spilled {
		t.Error("N-way adaptive runs must be deterministic per seed")
	}
}

// TestFig13WaitStats pins the Fig 13 sim's queue-delay observatory: under
// the overload regime the rack queues, so the recorded arrival→dispatch
// waits must be visible in the run's wait quantiles and ordered like
// quantiles.
func TestFig13WaitStats(t *testing.T) {
	tr := smallTrace(t, 60)
	st, err := Run(tr, Config{Instances: 4, QueueDepth: 40,
		Service: flatService(250 * time.Millisecond), SampleEvery: time.Second}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if st.WaitP50 <= 0 {
		t.Fatalf("overloaded rack recorded no queue delay (p50 %v)", st.WaitP50)
	}
	if st.WaitP50 > st.WaitP95 || st.WaitP95 > st.WaitP99 {
		t.Fatalf("wait quantiles out of order: p50 %v p95 %v p99 %v",
			st.WaitP50, st.WaitP95, st.WaitP99)
	}
}
