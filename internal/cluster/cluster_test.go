package cluster

import (
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// TestLingerBatchesFromVirtualClock exercises the deadline-aware batching
// path from the discrete-event clock: one instance, two same-benchmark
// arrivals 1s apart, and a 2s linger window. The first dispatch must hold
// its batch open past the second arrival and serve both in one execution —
// the same serve.BatchWindow decision the live engine runs on wall time.
func TestLingerBatchesFromVirtualClock(t *testing.T) {
	tr := &trace.Trace{
		Duration: 10 * time.Second,
		Requests: []trace.Request{
			{ID: 1, At: 0, Benchmark: "chatbot"},
			{ID: 2, At: time.Second, Benchmark: "chatbot"},
			{ID: 3, At: 90 * time.Second, Benchmark: "moderation"}, // different benchmark, long after
		},
	}
	cfg := Config{
		Instances: 1, QueueDepth: 10,
		Service:     flatService(10 * time.Second),
		SampleEvery: time.Minute,
		MaxBatch:    4, BatchLinger: 2 * time.Second,
	}
	st, err := Run(tr, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 || st.Dropped != 0 {
		t.Fatalf("completed %d dropped %d", st.Completed, st.Dropped)
	}
	if st.Batches != 2 {
		t.Fatalf("executions = %d, want 2 (chatbot pair lingered into one batch)", st.Batches)
	}
	// The lead waits out the full 2s window before its 10s service, so the
	// batch completes at 12s: latencies 12s (lead), 11s (follower), and
	// 10s for the solo request at 90s. Max is the lead's 12s.
	if max := st.LatencySample.Percentile(1.0); max != 12*time.Second {
		t.Fatalf("max latency = %v, want 12s (2s linger + 10s service)", max)
	}

	// Without a linger window the two arrivals serve separately: the
	// second queues behind a 10s execution.
	cfg.BatchLinger = 0
	st2, err := Run(tr, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Batches != 3 {
		t.Fatalf("executions without linger = %d, want 3", st2.Batches)
	}

	// A window that fills must close early, exactly like the engine's
	// linger loop: with MaxBatch 2 the second arrival at 1s completes the
	// batch, so execution starts at 1s — not at the 2s deadline — and the
	// lead's latency is 11s, not 12s. (A two-request trace: a solo
	// request would legitimately wait out its whole window.)
	pair := &trace.Trace{
		Duration: 10 * time.Second,
		Requests: []trace.Request{
			{ID: 1, At: 0, Benchmark: "chatbot"},
			{ID: 2, At: time.Second, Benchmark: "chatbot"},
		},
	}
	cfg.MaxBatch, cfg.BatchLinger = 2, 2*time.Second
	st3, err := Run(pair, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Batches != 1 {
		t.Fatalf("executions with early-close = %d, want 1", st3.Batches)
	}
	if max := st3.LatencySample.Percentile(1.0); max != 11*time.Second {
		t.Fatalf("max latency = %v, want 11s (window closed early when full)", max)
	}
}

// TestBatchingDisabledMatchesSeed pins the default path: MaxBatch unset
// must leave the Figure 13 behavior untouched, batch counting included.
func TestBatchingDisabledMatchesSeed(t *testing.T) {
	tr := smallTrace(t, 50)
	st, err := Run(tr, Config{Instances: 50, QueueDepth: 1000,
		Service: flatService(100 * time.Millisecond), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != st.Completed {
		t.Fatalf("unbatched run: %d executions != %d completions", st.Batches, st.Completed)
	}
}

func flatService(d time.Duration) ServiceModel {
	return func(string, *sim.RNG) time.Duration { return d }
}

func smallTrace(t *testing.T, rate float64) *trace.Trace {
	t.Helper()
	cfg := trace.BurstyConfig{
		Duration: 2 * time.Minute, BaseRate: rate, BurstRate: rate + 0.001,
		BurstEvery: time.Minute, BurstLength: time.Second,
	}
	tr, err := trace.Generate(cfg, workload.Suite(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUnderloadedNoQueue(t *testing.T) {
	// 100 rps against 50 instances at 100ms service: 10% load.
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 50, QueueDepth: 1000,
		Service: flatService(100 * time.Millisecond), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d under light load", st.Dropped)
	}
	if st.Completed != len(tr.Requests) {
		t.Fatalf("completed %d of %d", st.Completed, len(tr.Requests))
	}
	if q := st.Queue.MaxValue(); q > 20 {
		t.Errorf("peak queue %v under light load", q)
	}
	// Latency stays near the service time.
	if p99 := st.LatencySample.Percentile(0.99); p99 > 300*time.Millisecond {
		t.Errorf("p99 = %v under light load", p99)
	}
}

func TestOverloadQueues(t *testing.T) {
	// 100 rps against 5 instances at 100ms: 2x overload -> queue grows.
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 5, QueueDepth: 100000,
		Service: flatService(100 * time.Millisecond), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q := st.Queue.MaxValue(); q < 1000 {
		t.Errorf("peak queue %v, expected sustained growth under 2x overload", q)
	}
	// Wall-clock latency far exceeds the service time.
	if mean := st.LatencySample.Mean(); mean < time.Second {
		t.Errorf("mean latency %v under overload", mean)
	}
}

func TestQueueBoundDrops(t *testing.T) {
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 1, QueueDepth: 50,
		Service: flatService(time.Second), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatal("expected drops at a 50-deep queue under extreme overload")
	}
	if st.Completed+st.Dropped != len(tr.Requests) {
		t.Fatal("request conservation violated")
	}
}

func TestFasterServiceLowerLatency(t *testing.T) {
	// The Figure 13 contrast: the same trace against fast (DSCS-like) and
	// slow (baseline-like) service times.
	tr := smallTrace(t, 120)
	cfgFast := Config{Instances: 20, QueueDepth: 10000,
		Service: flatService(90 * time.Millisecond), SampleEvery: time.Second}
	cfgSlow := cfgFast
	cfgSlow.Service = flatService(300 * time.Millisecond)
	fast, err := Run(tr, cfgFast, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, cfgSlow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fast.LatencySample.Mean() >= slow.LatencySample.Mean() {
		t.Error("faster service must lower wall-clock latency")
	}
	if fast.Queue.MaxValue() > slow.Queue.MaxValue() {
		t.Error("faster service must not queue more")
	}
}

func TestRunValidation(t *testing.T) {
	tr := smallTrace(t, 10)
	if _, err := Run(tr, Config{}, 1); err == nil {
		t.Error("incomplete config must fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := smallTrace(t, 50)
	cfg := Config{Instances: 10, QueueDepth: 100,
		Service: func(slug string, rng *sim.RNG) time.Duration {
			return 50*time.Millisecond + rng.Exp(20*time.Millisecond)
		}, SampleEvery: time.Second}
	a, err := Run(tr, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.LatencySample.Mean() != b.LatencySample.Mean() {
		t.Error("same seed must reproduce the run")
	}
}
