package cluster

import (
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

func flatService(d time.Duration) ServiceModel {
	return func(string, *sim.RNG) time.Duration { return d }
}

func smallTrace(t *testing.T, rate float64) *trace.Trace {
	t.Helper()
	cfg := trace.BurstyConfig{
		Duration: 2 * time.Minute, BaseRate: rate, BurstRate: rate + 0.001,
		BurstEvery: time.Minute, BurstLength: time.Second,
	}
	tr, err := trace.Generate(cfg, workload.Suite(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUnderloadedNoQueue(t *testing.T) {
	// 100 rps against 50 instances at 100ms service: 10% load.
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 50, QueueDepth: 1000,
		Service: flatService(100 * time.Millisecond), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d under light load", st.Dropped)
	}
	if st.Completed != len(tr.Requests) {
		t.Fatalf("completed %d of %d", st.Completed, len(tr.Requests))
	}
	if q := st.Queue.MaxValue(); q > 20 {
		t.Errorf("peak queue %v under light load", q)
	}
	// Latency stays near the service time.
	if p99 := st.LatencySample.Percentile(0.99); p99 > 300*time.Millisecond {
		t.Errorf("p99 = %v under light load", p99)
	}
}

func TestOverloadQueues(t *testing.T) {
	// 100 rps against 5 instances at 100ms: 2x overload -> queue grows.
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 5, QueueDepth: 100000,
		Service: flatService(100 * time.Millisecond), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q := st.Queue.MaxValue(); q < 1000 {
		t.Errorf("peak queue %v, expected sustained growth under 2x overload", q)
	}
	// Wall-clock latency far exceeds the service time.
	if mean := st.LatencySample.Mean(); mean < time.Second {
		t.Errorf("mean latency %v under overload", mean)
	}
}

func TestQueueBoundDrops(t *testing.T) {
	tr := smallTrace(t, 100)
	st, err := Run(tr, Config{Instances: 1, QueueDepth: 50,
		Service: flatService(time.Second), SampleEvery: time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatal("expected drops at a 50-deep queue under extreme overload")
	}
	if st.Completed+st.Dropped != len(tr.Requests) {
		t.Fatal("request conservation violated")
	}
}

func TestFasterServiceLowerLatency(t *testing.T) {
	// The Figure 13 contrast: the same trace against fast (DSCS-like) and
	// slow (baseline-like) service times.
	tr := smallTrace(t, 120)
	cfgFast := Config{Instances: 20, QueueDepth: 10000,
		Service: flatService(90 * time.Millisecond), SampleEvery: time.Second}
	cfgSlow := cfgFast
	cfgSlow.Service = flatService(300 * time.Millisecond)
	fast, err := Run(tr, cfgFast, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, cfgSlow, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fast.LatencySample.Mean() >= slow.LatencySample.Mean() {
		t.Error("faster service must lower wall-clock latency")
	}
	if fast.Queue.MaxValue() > slow.Queue.MaxValue() {
		t.Error("faster service must not queue more")
	}
}

func TestRunValidation(t *testing.T) {
	tr := smallTrace(t, 10)
	if _, err := Run(tr, Config{}, 1); err == nil {
		t.Error("incomplete config must fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := smallTrace(t, 50)
	cfg := Config{Instances: 10, QueueDepth: 100,
		Service: func(slug string, rng *sim.RNG) time.Duration {
			return 50*time.Millisecond + rng.Exp(20*time.Millisecond)
		}, SampleEvery: time.Second}
	a, err := Run(tr, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.LatencySample.Mean() != b.LatencySample.Mean() {
		t.Error("same seed must reproduce the run")
	}
}
