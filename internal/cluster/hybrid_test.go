package cluster

import (
	"testing"
	"time"

	"dscs/internal/sched"
	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// mixedService gives benchmarks widely different CPU costs and a uniform
// 5x DSCS advantage — the regime where placement policy matters.
func mixedService(slug string) (cpu, dscs time.Duration, accel int) {
	costs := map[string]time.Duration{
		"credit-risk":    60 * time.Millisecond,
		"asset-damage":   240 * time.Millisecond,
		"ppe-detection":  520 * time.Millisecond,
		"chatbot":        300 * time.Millisecond,
		"translation":    410 * time.Millisecond,
		"clinical":       260 * time.Millisecond,
		"moderation":     210 * time.Millisecond,
		"remote-sensing": 400 * time.Millisecond,
	}
	cpu = costs[slug]
	if cpu == 0 {
		cpu = 200 * time.Millisecond
	}
	return cpu, cpu / 5, 2
}

func hybridTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.BurstyConfig{
		Duration: 3 * time.Minute, BaseRate: 150, BurstRate: 240,
		BurstEvery: time.Minute, BurstLength: 25 * time.Second,
	}
	tr, err := trace.Generate(cfg, workload.Suite(), sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runPolicy(t *testing.T, tr *trace.Trace, p sched.Policy) *HybridStats {
	t.Helper()
	st, err := RunHybrid(tr, HybridConfig{
		CPUInstances: 28, DSCSInstances: 6, QueueDepth: 100000,
		Policy: p, Service: mixedService, Jitter: 0.15,
		SampleEvery: 5 * time.Second,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPoliciesCompleteEverything(t *testing.T) {
	tr := hybridTrace(t)
	for _, p := range []sched.Policy{sched.FCFSPolicy{}, sched.CriticalityPolicy{}, sched.DAGAwarePolicy{}} {
		st := runPolicy(t, tr, p)
		if st.Completed != len(tr.Requests) || st.Dropped != 0 {
			t.Errorf("%s: completed %d/%d dropped %d",
				p.Name(), st.Completed, len(tr.Requests), st.Dropped)
		}
		if st.OnDSCS == 0 {
			t.Errorf("%s: DSCS pool unused", p.Name())
		}
	}
}

func TestCriticalityBeatsFCFS(t *testing.T) {
	// The paper's Section 5.3 hypothesis: assigning long-running functions
	// to DSCS nodes improves performance over class-blind FCFS when DSCS
	// capacity is scarce.
	tr := hybridTrace(t)
	fcfs := runPolicy(t, tr, sched.FCFSPolicy{})
	crit := runPolicy(t, tr, sched.CriticalityPolicy{})
	f := fcfs.Latency.Mean()
	c := crit.Latency.Mean()
	if c >= f {
		t.Errorf("criticality-aware (%v) should beat FCFS (%v)", c, f)
	}
	t.Logf("mean latency: fcfs=%v criticality=%v (%.1f%% better)",
		f, c, 100*(1-float64(c)/float64(f)))
}

func TestHybridValidation(t *testing.T) {
	tr := hybridTrace(t)
	if _, err := RunHybrid(tr, HybridConfig{}, 1); err == nil {
		t.Error("incomplete config must fail")
	}
}

// TestHybridPoolCoreEquivalence pins the serve.HybridCore rewire to the
// pre-refactor behavior: the retired sched.HybridScheduler path (same
// trace seed 21, run seed 5, 28 CPU + 6 DSCS pool, the post-aging-fix
// policies) produced exactly these completed/dropped/OnDSCS counts and
// mean latencies. The shared-core path must reproduce them bit for bit.
func TestHybridPoolCoreEquivalence(t *testing.T) {
	golden := map[string]struct {
		completed, dropped, onDSCS int
		meanMS                     float64
	}{
		"fcfs":        {33819, 0, 17591, 2882.010275},
		"criticality": {33819, 0, 14249, 2636.806996},
		"dag-aware":   {33819, 0, 14249, 2636.806996},
	}
	tr := hybridTrace(t)
	for _, p := range []sched.Policy{sched.FCFSPolicy{}, sched.CriticalityPolicy{}, sched.DAGAwarePolicy{}} {
		st := runPolicy(t, tr, p)
		want := golden[p.Name()]
		if st.Completed != want.completed || st.Dropped != want.dropped || st.OnDSCS != want.onDSCS {
			t.Errorf("%s: completed/dropped/onDSCS = %d/%d/%d, pre-refactor %d/%d/%d",
				p.Name(), st.Completed, st.Dropped, st.OnDSCS,
				want.completed, want.dropped, want.onDSCS)
		}
		meanMS := float64(st.Latency.Mean()) / float64(time.Millisecond)
		if diff := meanMS - want.meanMS; diff < -1e-3 || diff > 1e-3 {
			t.Errorf("%s: mean latency %.6fms, pre-refactor %.6fms", p.Name(), meanMS, want.meanMS)
		}
	}
}

func TestHybridDeterminism(t *testing.T) {
	tr := hybridTrace(t)
	a := runPolicy(t, tr, sched.DAGAwarePolicy{})
	b := runPolicy(t, tr, sched.DAGAwarePolicy{})
	if a.Latency.Mean() != b.Latency.Mean() || a.OnDSCS != b.OnDSCS {
		t.Error("hybrid runs must be deterministic per seed")
	}
}
