package cluster

import (
	"testing"
	"time"

	"dscs/internal/trace"
)

// chaosFaults is the drive-loss scenario: the accelerated tier (the DSCS
// drives) browns out mid-trace — squarely inside the second burst — and
// comes back 30 seconds later.
func chaosFaults(t *testing.T) []trace.FaultEvent {
	t.Helper()
	evs, err := trace.ParseFaultScript("40s:pool-down:dscs;70s:pool-up:dscs")
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestChaosGolden is the failure-model acceptance scenario: the bursty
// one-sided trace with the DSCS pool killed mid-burst and recovered 30s
// later, replayed under two regimes on the identical trace and seed.
// Fail-and-retry is the naive deployment — no rebalancing, no hedging —
// where every arrival keeps targeting the dead tier: its bounded backlog
// fills and drops, the orphaned in-flight work requeues and simply waits
// out the outage, and the post-recovery drain blows the SLO for minutes.
// Hedged+rebalanced arms the wait-keyed balance (which treats the dead
// pool as unboundedly slow, never as idle) plus tail hedging, so arrivals
// route around the grave, orphans get stolen by the CPU side, and
// stragglers race a duplicate. The treatment must strictly beat the
// baseline on within-SLO completions, and both seeded counts are pinned
// so either failure path regressing shows its hand explicitly.
func TestChaosGolden(t *testing.T) {
	tr := onesidedTrace(t)
	faults := chaosFaults(t)

	run := func(mutate func(*HybridConfig)) *HybridStats {
		cfg := balanceConfig()
		// A heavier service tail than the balance golden's: hedging exists
		// to cut stragglers, so the scenario needs stragglers worth cutting.
		// The deeper queue gives the dead-tier reroute room to absorb a
		// burst landing mid-outage; fail-and-retry overflows it anyway.
		cfg.Jitter = 0.6
		cfg.QueueDepth = 2000
		cfg.Faults = faults
		mutate(&cfg)
		st, err := RunHybrid(tr, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	retry := run(func(cfg *HybridConfig) {})
	hedged := run(func(cfg *HybridConfig) {
		cfg.AdaptiveBalance = true
		cfg.EstimateWarmup, cfg.EstimateWindow = 16, 128
		cfg.HedgeFactor = 3
	})

	// Both regimes took the same two faults and orphaned in-flight work.
	if retry.Faults != 1 || hedged.Faults != 1 {
		t.Fatalf("fault counts: retry %d, hedged %d, want 1 pool-down each", retry.Faults, hedged.Faults)
	}
	if retry.Requeued == 0 || hedged.Requeued == 0 {
		t.Errorf("the pool-down must orphan in-flight work: retry requeued %d, hedged %d",
			retry.Requeued, hedged.Requeued)
	}
	// The recovery happened, so nothing may be stranded at the horizon.
	if retry.Stranded != 0 || hedged.Stranded != 0 {
		t.Errorf("stranded after recovery: retry %d, hedged %d, want 0", retry.Stranded, hedged.Stranded)
	}
	// Fail-and-retry pins its arrivals to the dead tier's bounded backlog
	// and must pay for it in drops; the rebalanced run routes around the
	// grave and must not drop at all.
	if retry.Dropped == 0 {
		t.Error("fail-and-retry must overflow the dead pool's bounded queue")
	}
	if hedged.Dropped != 0 {
		t.Errorf("hedged+rebalanced dropped %d, want 0", hedged.Dropped)
	}
	// The headline: hedging+rebalance strictly beats fail-and-retry on
	// within-SLO completions under the same loss.
	if hedged.WithinSLO <= retry.WithinSLO {
		t.Errorf("hedged+rebalanced within-SLO (%d) must beat fail-and-retry (%d)",
			hedged.WithinSLO, retry.WithinSLO)
	}
	if hedged.Stolen == 0 {
		t.Error("rebalanced run rescued no orphans (no steals)")
	}
	if hedged.HedgesFired == 0 || hedged.HedgesWon == 0 {
		t.Errorf("hedging must fire and win under the heavy tail: fired %d, won %d",
			hedged.HedgesFired, hedged.HedgesWon)
	}
	if retry.HedgesFired != 0 {
		t.Errorf("fail-and-retry fired %d hedges with hedging off", retry.HedgesFired)
	}

	// Determinism: the fault and hedge paths must stay reproducible per
	// seed — injection is virtual-clock events, hedging resamples from the
	// same deterministic stream.
	again := run(func(cfg *HybridConfig) {
		cfg.AdaptiveBalance = true
		cfg.EstimateWarmup, cfg.EstimateWindow = 16, 128
		cfg.HedgeFactor = 3
	})
	if again.WithinSLO != hedged.WithinSLO || again.HedgesFired != hedged.HedgesFired ||
		again.HedgesWon != hedged.HedgesWon || again.Stolen != hedged.Stolen ||
		again.Requeued != hedged.Requeued || again.Latency.Mean() != hedged.Latency.Mean() {
		t.Error("chaos runs must be deterministic per seed")
	}

	// Seeded golden pins (trace seed 33, run seed 7, faults at 40s/70s).
	type golden struct{ completed, dropped, withinSLO, requeued, hedgesFired, hedgesWon int }
	for _, pin := range []struct {
		name string
		st   *HybridStats
		want golden
	}{
		{"fail-and-retry", retry, golden{5700, 4450, 51, 3, 0, 0}},
		{"hedged+rebalanced", hedged, golden{10150, 0, 5477, 3, 49, 13}},
	} {
		if pin.st.Completed != pin.want.completed || pin.st.Dropped != pin.want.dropped ||
			pin.st.WithinSLO != pin.want.withinSLO || pin.st.Requeued != pin.want.requeued ||
			pin.st.HedgesFired != pin.want.hedgesFired || pin.st.HedgesWon != pin.want.hedgesWon {
			t.Errorf("%s: completed/dropped/withinSLO/requeued/hedgesFired/hedgesWon = %d/%d/%d/%d/%d/%d, pinned %d/%d/%d/%d/%d/%d",
				pin.name, pin.st.Completed, pin.st.Dropped, pin.st.WithinSLO, pin.st.Requeued,
				pin.st.HedgesFired, pin.st.HedgesWon,
				pin.want.completed, pin.want.dropped, pin.want.withinSLO, pin.want.requeued,
				pin.want.hedgesFired, pin.want.hedgesWon)
		}
	}
}

// TestChaosStranded pins the stranded accounting: a script that kills the
// DSCS pool and never recovers it, with no rebalancing armed, must leave
// the backlog stranded — counted, not silently lost — while Conservation
// still balances.
func TestChaosStranded(t *testing.T) {
	tr := onesidedTrace(t)
	evs, err := trace.ParseFaultScript("40s:pool-down:dscs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := balanceConfig()
	cfg.Faults = evs
	st, err := RunHybrid(tr, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stranded == 0 {
		t.Error("an unrecovered pool with no rescue path must strand its backlog")
	}
	if st.Completed+st.Dropped+st.Stranded != len(tr.Requests) {
		t.Errorf("accounting: %d completed + %d dropped + %d stranded != %d arrived",
			st.Completed, st.Dropped, st.Stranded, len(tr.Requests))
	}
}

// TestChaosRackRequeue exercises the Figure 13 rack's fault path: a
// mid-trace brown-out of the one-pool rack cancels its in-flight
// executions, requeues them, and completes everything after recovery —
// batching windows included.
func TestChaosRackRequeue(t *testing.T) {
	tr := smallTrace(t, 60)
	evs, err := trace.ParseFaultScript("20s:pool-down:sim;25s:pool-up:sim")
	if err != nil {
		t.Fatal(err)
	}
	for _, batched := range []bool{false, true} {
		cfg := Config{
			Instances: 8, QueueDepth: 4000,
			Service:     flatService(80 * time.Millisecond),
			SampleEvery: time.Second,
			Faults:      evs,
		}
		if batched {
			cfg.MaxBatch = 8
			cfg.BatchLinger = 20 * time.Millisecond
		}
		st, err := Run(tr, cfg, 11)
		if err != nil {
			t.Fatalf("batched=%v: %v", batched, err)
		}
		if st.Faults != 1 {
			t.Errorf("batched=%v: faults = %d, want 1", batched, st.Faults)
		}
		if st.Requeued == 0 {
			t.Errorf("batched=%v: the brown-out orphaned no in-flight work", batched)
		}
		if st.Stranded != 0 {
			t.Errorf("batched=%v: %d stranded after recovery", batched, st.Stranded)
		}
		if st.Completed+st.Dropped != len(tr.Requests) {
			t.Errorf("batched=%v: %d completed + %d dropped != %d arrived",
				batched, st.Completed, st.Dropped, len(tr.Requests))
		}
	}
}

// TestChaosConfigValidation rejects the scripts and factors the sims
// cannot honor: drive events (no storage nodes in these sims), unknown
// pool names, sub-1 hedge factors, and fault/hedge use on layouts that
// lack per-pool state.
func TestChaosConfigValidation(t *testing.T) {
	tr := smallTrace(t, 5)
	mustParse := func(s string) []trace.FaultEvent {
		evs, err := trace.ParseFaultScript(s)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	if _, err := Run(tr, Config{Instances: 2, QueueDepth: 10,
		Service: flatService(time.Millisecond), Faults: mustParse("1s:drive-down:dscs-0")}, 1); err == nil {
		t.Error("rack sim accepted a drive fault")
	}
	if _, err := Run(tr, Config{Instances: 2, QueueDepth: 10,
		Service: flatService(time.Millisecond), Faults: mustParse("1s:pool-down:nope")}, 1); err == nil {
		t.Error("rack sim accepted an unknown pool target")
	}
	hybridBase := HybridConfig{CPUInstances: 2, DSCSInstances: 2, QueueDepth: 10,
		Service: mixedService, SplitQueues: true}
	bad := hybridBase
	bad.Faults = mustParse("1s:pool-down:nope")
	if _, err := RunHybrid(tr, bad, 1); err == nil {
		t.Error("hybrid sim accepted an unknown pool target")
	}
	bad = hybridBase
	bad.Faults = mustParse("1s:drive-down:dscs-0")
	if _, err := RunHybrid(tr, bad, 1); err == nil {
		t.Error("hybrid sim accepted a drive fault")
	}
	bad = hybridBase
	bad.HedgeFactor = 0.5
	if _, err := RunHybrid(tr, bad, 1); err == nil {
		t.Error("hybrid sim accepted HedgeFactor 0.5")
	}
	bad = hybridBase
	bad.SplitQueues = false
	bad.Faults = mustParse("1s:pool-down:dscs")
	if _, err := RunHybrid(tr, bad, 1); err == nil {
		t.Error("shared layout accepted a fault script")
	}
}
