// Package cluster runs the at-scale discrete-event simulation of
// Section 6.2.2: a rack with a bounded pool of function instances (200 in
// the paper), a 10,000-deep FCFS queue, and a bursty arrival trace. It
// produces the time series of Figure 13: queued functions over time and
// wall-clock request latency for each system.
//
// The simulation drives the same scheduling core as the live serving path
// (serve.PoolCore over sched's bounded queue and pluggable policies), so
// what Figure 13 measures is literally the scheduler the gateway runs —
// only the clock differs: virtual here, wall time there.
package cluster

import (
	"fmt"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/scale"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/trace"
)

// ServiceModel returns the end-to-end service time of one request of the
// given benchmark; implementations sample jitter from the provided stream.
type ServiceModel func(slug string, rng *sim.RNG) time.Duration

// Config parameterizes a run.
type Config struct {
	Instances  int
	QueueDepth int
	Service    ServiceModel
	// Policy selects queued work for free instances; nil means the
	// paper's deployed FCFS.
	Policy sched.Policy
	// SampleEvery sets the telemetry sampling period for the series.
	SampleEvery time.Duration
	// MaxBatch coalesces same-benchmark queued requests into one
	// execution, up to this count (0 or 1 disables batching).
	MaxBatch int
	// BatchLinger lets a dispatching instance hold its batch open until
	// the serve.BatchWindow deadline so later same-benchmark arrivals can
	// fill it toward MaxBatch — the same deadline-aware batching decision
	// the live engine runs, exercised here from the virtual clock.
	BatchLinger time.Duration
	// GlobalBatch switches batching from the per-dispatch linger window to
	// the queue-level serve.BatchFormer: same-benchmark arrivals group
	// across the whole queue before any instance dispatches, releasing at
	// MaxBatch, after BatchLinger, or when the oldest member's BatchSLO
	// slack runs out — the live engine's former driven from the virtual
	// clock.
	GlobalBatch bool
	// BatchSLO is each request's deadline budget for the global former (0
	// bounds holds by BatchLinger alone).
	BatchSLO time.Duration
	// StaticEstimate is the scheduler's static per-benchmark service
	// prior: tasks are priced with it, so the former's BatchSLO slack has
	// a service term (nil leaves tasks unpriced, the earlier behavior).
	StaticEstimate func(slug string) time.Duration
	// AdaptiveEstimates prices the former's BatchSLO slack with live
	// latency digests (observed p95, metrics.Observatory with warmup and
	// hysteresis) instead of StaticEstimate once warmed — the same code
	// the live engine runs with serve.Options.AdaptiveEstimates, driven
	// here from the virtual clock.
	AdaptiveEstimates bool
	// EstimateWarmup and EstimateWindow tune the digests (defaults
	// metrics.DefaultWarmup / metrics.DefaultWindow).
	EstimateWarmup, EstimateWindow int
	// Elastic arms the worker lifecycle: instance capacity floats between
	// Elastic.Min and Elastic.Max (Instances is ignored), warming pays
	// Elastic.ColdStart, idle slots suspend after Elastic.IdleLinger, and
	// Elastic.Mode picks the autoscaler (fixed pools ride the same
	// machinery with Mode scale.ModeFixed, so their idle-capacity cost is
	// measured on the same axis). Nil keeps the classic fixed pool
	// bit-identical. The sim drives the identical serve.Lifecycle the
	// live engine runs, from the virtual clock.
	Elastic *scale.Config
	// Faults is the scripted fault schedule (trace.ParseFaultScript),
	// replayed on the virtual clock. The rack has one pool named "sim", so
	// only pool events targeting it are accepted; drive events are rejected
	// — the Figure 13 rack does not model storage nodes. A pool-down browns
	// the rack out mid-trace: in-flight executions cancel and their tasks
	// requeue (serve.PoolCore.Requeue, at-most-once accounting), the queue
	// keeps admitting, and dispatch resumes on pool-up.
	Faults []trace.FaultEvent
}

// simPlatform keys the simulation's digests: the rack has one simulated
// pool, where the live engine has named platforms.
const simPlatform = "sim"

// PaperConfig returns the paper's at-scale parameters.
func PaperConfig(service ServiceModel) Config {
	return Config{
		Instances:   200,
		QueueDepth:  10000,
		Service:     service,
		SampleEvery: 5 * time.Second,
	}
}

// Stats is the outcome of one run.
type Stats struct {
	Queue   metrics.Series // queued functions over time (Figure 13b)
	Latency metrics.Series // wall-clock latency over time (Figure 13c/d)

	Completed int
	Dropped   int
	// Batches counts executions; with batching enabled it is <= Completed.
	Batches int
	// Formed counts batches released by the queue-level former (0 unless
	// Config.GlobalBatch).
	Formed int
	// WithinSLO counts completions whose wall-clock latency fit the
	// BatchSLO budget (0 when Config.BatchSLO is unset) — the adaptive-
	// estimation goldens compare it across pricing regimes.
	WithinSLO int
	// LatencySample holds every completed request's wall-clock latency.
	LatencySample *metrics.Sample
	// WaitP50/WaitP95/WaitP99 are the pool's windowed queue-delay
	// quantiles — wait from arrival to dispatch, the signal the engine
	// surfaces as serve_queue_delay_* gauges — at the end of the run.
	WaitP50, WaitP95, WaitP99 time.Duration
	// ColdStarts counts completed warming transitions and Suspends the
	// linger expirations that parked a slot (both 0 without Elastic).
	ColdStarts, Suspends int
	// IdleCost is the integral of (warm - busy) over the run: warm
	// worker-time bought but unused — the cost axis the elastic goldens
	// trade against WithinSLO.
	IdleCost time.Duration
	// Faults counts pool brown-outs applied; Requeued counts in-flight
	// tasks returned to the queue by a brown-out (both 0 without
	// Config.Faults).
	Faults, Requeued int
	// Stranded counts tasks still queued when the run ends — nonzero only
	// when the script leaves the pool dead at the horizon.
	Stranded int
}

// Run replays the trace against the pool and returns the series.
func Run(tr *trace.Trace, cfg Config, seed uint64) (*Stats, error) {
	instances := cfg.Instances
	if cfg.Elastic != nil {
		if err := cfg.Elastic.Validate(); err != nil {
			return nil, err
		}
		instances = cfg.Elastic.Max
	}
	if instances <= 0 || cfg.QueueDepth <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}
	for _, ev := range cfg.Faults {
		if !ev.Kind.Pool() {
			return nil, fmt.Errorf("cluster: the rack sim models pool faults only, got %q", ev)
		}
		if ev.Target != simPlatform {
			return nil, fmt.Errorf("cluster: fault script targets unknown pool %q (the rack's one pool is %q)",
				ev.Target, simPlatform)
		}
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	// The rack is a one-pool MultiCore: dispatch and coalesce flow through
	// the N-pool core so every served request's queue delay — arrival to
	// dispatch — lands in the same wait digests the engine and the hybrid
	// sim record.
	mc, err := serve.NewMultiCore([]serve.PoolSpec{{
		Name: simPlatform, Class: sched.ClassCPU,
		Workers: instances, QueueDepth: cfg.QueueDepth, Policy: cfg.Policy,
	}})
	if err != nil {
		return nil, err
	}
	mc.SetWaitTuning(cfg.EstimateWindow, cfg.EstimateWarmup)
	core := mc.Pool(0)
	// The elastic rack attaches the identical serve.Lifecycle the live
	// engine drives with wall-clock timers — here its events are virtual.
	var asc *scale.Autoscaler
	if cfg.Elastic != nil {
		initial := cfg.Elastic.Min
		if cfg.Elastic.Mode == scale.ModeFixed {
			initial = cfg.Elastic.Max
		}
		lc, err := serve.NewLifecycle(serve.LifecycleConfig{
			Min: cfg.Elastic.Min, Max: cfg.Elastic.Max,
			ColdStart: cfg.Elastic.ColdStart, IdleLinger: cfg.Elastic.IdleLinger,
		}, initial, 0)
		if err != nil {
			return nil, err
		}
		if err := core.AttachLifecycle(lc, 0); err != nil {
			return nil, err
		}
		if asc, err = scale.New(*cfg.Elastic, simPlatform); err != nil {
			return nil, err
		}
	}
	var obs *metrics.Observatory
	if cfg.AdaptiveEstimates {
		obs = metrics.NewObservatory(cfg.EstimateWindow, cfg.EstimateWarmup)
	}
	var former *serve.BatchFormer
	if cfg.GlobalBatch && cfg.MaxBatch > 1 {
		former = serve.NewBatchFormer(cfg.MaxBatch, cfg.BatchLinger, cfg.BatchSLO, sched.ClassCPU)
		if obs != nil {
			former.SetEstimator(func(payload string, static time.Duration) time.Duration {
				return obs.ServiceQuantile(payload, simPlatform, static, 0.95)
			})
		}
		core.AttachFormer(former)
	}
	st := &Stats{
		Queue:         metrics.Series{Name: "queued"},
		Latency:       metrics.Series{Name: "latency_ms"},
		LatencySample: metrics.NewSample(len(tr.Requests)),
	}

	// Latency accumulator per sampling bucket.
	var bucketSum time.Duration
	var bucketN int

	var pump func()
	// simExec is one in-flight execution under the fault model: a pool-down
	// cancels it — its completion event still fires but retires nothing —
	// and requeues its tasks. Tracked only when a fault script is armed, so
	// faultless runs stay bit-identical.
	type simExec struct {
		tasks           []sched.HybridTask
		done, cancelled bool
	}
	var inflight []*simExec
	faultsOn := len(cfg.Faults) > 0
	// execute retires a gathered batch after one service time: the lead's
	// sample prices the whole coalesced execution, as on the live engine.
	execute := func(tasks []sched.HybridTask) {
		var ex *simExec
		if faultsOn {
			ex = &simExec{tasks: tasks}
			inflight = append(inflight, ex)
		}
		service := cfg.Service(tasks[0].Payload, rng)
		engine.After(service, func() {
			if ex != nil {
				if ex.cancelled {
					return
				}
				ex.done = true
			}
			core.Complete(len(tasks))
			st.Batches++
			if asc != nil {
				asc.ObserveService(tasks[0].Payload, service)
			}
			if obs != nil {
				// The digest learns the true service time at completion —
				// the same observe-on-complete the live engine does.
				obs.Record(tasks[0].Payload, simPlatform, service)
			}
			for _, t := range tasks {
				lat := engine.Now() - t.Arrived
				st.Completed++
				if cfg.BatchSLO > 0 && lat <= cfg.BatchSLO {
					st.WithinSLO++
				}
				st.LatencySample.Add(lat)
				bucketSum += lat
				bucketN++
			}
			pump()
		})
	}

	// window is one instance's open linger window: the batch it holds and
	// the BatchWindow deciding whether to keep waiting. Arrivals landing
	// while a window is open coalesce into it immediately and may close it
	// early (exactly the live engine's per-slice re-gather); otherwise the
	// deadline event fires it.
	type window struct {
		w     serve.BatchWindow
		batch []sched.HybridTask
		fired bool
	}
	var open []*window
	fire := func(win *window) {
		if win.fired {
			return
		}
		win.fired = true
		execute(win.batch)
	}
	// gatherInto pulls queued same-benchmark tasks into the window and
	// fires it when full.
	gatherInto := func(win *window, now time.Duration) {
		late := mc.Coalesce(0, now, win.w.Target-win.w.Size, func(t sched.HybridTask) bool {
			return t.Payload == win.batch[0].Payload
		})
		win.w.Add(len(late))
		win.batch = append(win.batch, late...)
		if !win.w.Open(now) {
			fire(win)
		}
	}

	// lastWake dedups the former's wake events: scheduled events are never
	// cancelled, so any instant already armed will fire and re-pump.
	lastWake := time.Duration(-1)

	// Elastic drive: fold virtual time into the lifecycle (warming slots
	// come ready, expired lingers suspend), re-decide the autoscaler
	// target, and arm a wake at the lifecycle's next self-transition —
	// the virtual-clock analogue of the live engine's lifecycle timer.
	// Decisions are rate-limited like the engine's (the digest quantile
	// reads are not per-event work); a starved pool (backlog, no free
	// capacity) bypasses the limit.
	warmup := int64(cfg.EstimateWarmup)
	if warmup <= 0 {
		warmup = int64(metrics.DefaultWarmup)
	}
	const scaleInterval = 100 * time.Millisecond
	lastLifeWake := time.Duration(-1)
	lastDecide := time.Duration(-1)
	advanceScale := func() {
		if asc == nil {
			return
		}
		now := engine.Now()
		mc.AdvanceLifecycles(now)
		starved := core.QueueLen() > 0 && core.Busy() >= core.Workers()
		if starved || lastDecide < 0 || now-lastDecide >= scaleInterval {
			lastDecide = now
			var waitP95 time.Duration
			if dg := mc.WaitDigest(0); dg != nil && dg.Count() >= warmup {
				waitP95 = dg.Quantile(serve.WaitQuantile)
			}
			desired := asc.Desired(now, core.Busy(), core.QueueLen(), waitP95)
			if desired != core.Lifecycle().Desired() {
				core.ScaleTo(desired, now)
			}
		}
		if evt, ok := mc.NextLifecycleEvent(); ok && evt != lastLifeWake {
			lastLifeWake = evt
			engine.At(evt, func() {
				if lastLifeWake == evt {
					lastLifeWake = -1
				}
				pump()
			})
		}
	}
	pump = func() {
		advanceScale()
		for {
			now := engine.Now()
			if former != nil {
				// Queue-level forming: dispatch only batches the former
				// releases; otherwise arm an event at the earliest due
				// instant — the virtual-clock analogue of the live
				// engine's timed worker wait.
				task, ok, wake, wakeOK := mc.DispatchFormed(0, now)
				if !ok {
					if wakeOK && wake != lastWake {
						lastWake = wake
						engine.At(wake, func() { pump() })
					}
					return
				}
				batch := append([]sched.HybridTask{task},
					mc.Coalesce(0, now, cfg.MaxBatch-1, func(t sched.HybridTask) bool {
						return t.Payload == task.Payload
					})...)
				execute(batch)
				continue
			}
			task, ok := mc.Dispatch(0, now)
			if !ok {
				return
			}
			if cfg.MaxBatch <= 1 {
				execute([]sched.HybridTask{task})
				continue
			}
			batch := append([]sched.HybridTask{task},
				mc.Coalesce(0, now, cfg.MaxBatch-1, func(t sched.HybridTask) bool {
					return t.Payload == task.Payload
				})...)
			win := &window{
				w:     serve.NewBatchWindow(now, cfg.BatchLinger, cfg.MaxBatch, len(batch)),
				batch: batch,
			}
			if !win.w.Open(now) {
				fire(win)
				continue
			}
			// Deadline-aware linger: the instance stays busy holding the
			// batch open until it fills or the window closes.
			open = append(open, win)
			engine.At(win.w.Deadline, func() {
				if !win.fired {
					gatherInto(win, engine.Now())
					fire(win)
				}
			})
		}
	}

	// applyFault drives the scripted schedule. A pool-down browns the rack
	// out mid-run: open linger windows and in-flight executions cancel, and
	// their tasks return to the queue by arrival order (the at-most-once
	// path — the submission ledger never moves, each task is still owed
	// exactly one completion). A pool-up resumes dispatch over the
	// preserved backlog; requeued work re-enters through the same former or
	// window machinery it originally took.
	applyFault := func(ev trace.FaultEvent) {
		now := engine.Now()
		if ev.Kind == trace.FaultPoolUp {
			mc.RecoverPool(0, now)
			pump()
			return
		}
		if !mc.Healthy(0) {
			return
		}
		mc.FailPool(0, now)
		for _, win := range open {
			if win.fired {
				continue
			}
			win.fired = true
			mc.Requeue(0, win.batch)
		}
		open = open[:0]
		for _, ex := range inflight {
			if ex.done || ex.cancelled {
				continue
			}
			ex.cancelled = true
			mc.Requeue(0, ex.tasks)
			if former != nil {
				// Requeue leaves the former untouched; re-observe the tasks
				// at submit weight so their groups re-form.
				for _, t := range ex.tasks {
					former.Observe(t, 1)
				}
			}
		}
		// Every tracked execution is now done or cancelled (one pool).
		inflight = inflight[:0]
	}
	for _, ev := range cfg.Faults {
		ev := ev
		engine.At(ev.At, func() { applyFault(ev) })
	}

	for _, r := range tr.Requests {
		req := r
		engine.At(req.At, func() {
			if asc != nil {
				// The rate digests see offered load — dropped arrivals
				// still describe the demand the pool should warm for.
				asc.ObserveArrival(req.Benchmark, engine.Now())
			}
			task := sched.HybridTask{ID: req.ID, Arrived: engine.Now(), Payload: req.Benchmark}
			if cfg.StaticEstimate != nil {
				// The rack's single simulated pool is CPU-class, so the
				// CPU estimate is the one the former's slack pricing reads.
				task.CPUService = cfg.StaticEstimate(req.Benchmark)
			}
			admitted := mc.SubmitTo(0, task)
			if admitted && former != nil {
				former.Observe(task, 1)
			}
			if admitted && former == nil && len(open) > 0 {
				// Offer the arrival to open windows before idle instances
				// see it — the engine's lingering workers do the same.
				now := engine.Now()
				kept := open[:0]
				for _, win := range open {
					if !win.fired && win.w.Open(now) {
						gatherInto(win, now)
					}
					if !win.fired {
						kept = append(kept, win)
					}
				}
				open = kept
			}
			pump()
		})
	}

	// Telemetry sampler across the trace (plus drain tail).
	horizon := tr.Duration + 2*time.Minute
	for t := time.Duration(0); t <= horizon; t += cfg.SampleEvery {
		at := t
		engine.At(at, func() {
			st.Queue.Add(at, float64(core.QueueLen()))
			if bucketN > 0 {
				st.Latency.Add(at, float64(bucketSum.Milliseconds())/float64(bucketN))
				bucketSum, bucketN = 0, 0
			}
		})
	}

	engine.Run()
	st.Dropped = mc.Dropped()
	if former != nil {
		st.Formed = former.Formed()
	}
	if dg := mc.WaitDigest(0); dg != nil {
		st.WaitP50 = dg.Quantile(0.50)
		st.WaitP95 = dg.Quantile(0.95)
		st.WaitP99 = dg.Quantile(0.99)
	}
	if lc := core.Lifecycle(); lc != nil {
		// Close the idle integral at the common horizon so every mode's
		// cost covers the same span, drain tail included.
		core.AdvanceLifecycle(horizon)
		st.ColdStarts = lc.ColdStarts()
		st.Suspends = lc.Suspends()
		st.IdleCost = lc.IdleCost()
	}
	st.Faults = mc.Faults()
	st.Requeued = mc.Requeued()
	st.Stranded = mc.QueueLen()
	if err := mc.Conservation(); err != nil {
		return nil, err
	}
	if st.Completed+st.Dropped+st.Stranded != len(tr.Requests) {
		return nil, fmt.Errorf("cluster: lost requests: %d completed + %d dropped + %d stranded != %d arrived",
			st.Completed, st.Dropped, st.Stranded, len(tr.Requests))
	}
	if st.Stranded > 0 && !faultsOn {
		return nil, fmt.Errorf("cluster: %d requests stranded without a fault script", st.Stranded)
	}
	return st, nil
}
