package cluster

import (
	"strings"
	"testing"
	"time"

	"dscs/internal/sim"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// workflowTestTrace is the seeded mixed trace the workflow tests share:
// ETL scatter-gather and ML chains at a rate that keeps the drive pools
// busy without saturating them.
func workflowTestTrace(t *testing.T) *trace.WorkflowTrace {
	t.Helper()
	wtr, err := trace.GenerateWorkflows(trace.WorkflowConfig{
		Duration: 4 * time.Minute, Rate: 0.8, ETLShare: 0.5, FanOut: 4,
	}, workload.Suite(), sim.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	return wtr
}

// workflowGoldenConfig is the hybrid-regime setup the locality golden pins.
func workflowGoldenConfig(locality bool) WorkflowSimConfig {
	return WorkflowSimConfig{
		Drives: 4, WorkersPerDrive: 2, CPUInstances: 4, QueueDepth: 64,
		Service: mixedService, Locality: locality, MaxBatch: 4,
		BatchLinger: 20 * time.Millisecond, SampleEvery: 10 * time.Second,
		MakespanSLO: 5 * time.Second,
	}
}

// TestWorkflowLocalityGolden pins the locality comparison on the seeded
// mixed trace (Jitter=0, q=0.5 object I/O — the run is exactly
// reproducible): locality-aware placement must strictly dominate the
// locality-blind rotation on end-to-end makespan AND bytes moved over the
// fabric, and the exact values are pinned so a placement or pricing change
// cannot drift in silently. The PR 2–9 goldens run beside this one
// untouched: workflows are a separate entry point, so with workflows off
// those sims replay bit-identically (the full suite enforces it).
func TestWorkflowLocalityGolden(t *testing.T) {
	wtr := workflowTestTrace(t)
	aware, err := RunWorkflows(wtr, workflowGoldenConfig(true), 33)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := RunWorkflows(wtr, workflowGoldenConfig(false), 33)
	if err != nil {
		t.Fatal(err)
	}

	// Strict dominance: the thesis is "run the function where the data
	// lives", so the replica-map-aware placer must beat the rotation on
	// both axes, not trade one for the other.
	if aware.FabricBytes >= blind.FabricBytes {
		t.Fatalf("locality moved %d fabric bytes, blind %d — locality must strictly win",
			aware.FabricBytes, blind.FabricBytes)
	}
	if aware.MakespanP95 >= blind.MakespanP95 || aware.MakespanSample.Mean() >= blind.MakespanSample.Mean() {
		t.Fatalf("locality makespan p95=%v mean=%v vs blind p95=%v mean=%v — locality must strictly win",
			aware.MakespanP95, aware.MakespanSample.Mean(), blind.MakespanP95, blind.MakespanSample.Mean())
	}
	if aware.LocalStages <= blind.LocalStages {
		t.Fatalf("locality served %d stages local, blind %d", aware.LocalStages, blind.LocalStages)
	}

	// Everything settles cleanly in both regimes.
	for name, st := range map[string]*WorkflowStats{"aware": aware, "blind": blind} {
		if st.WorkflowsSettled != st.Workflows || st.WorkflowsSucceeded != st.Workflows {
			t.Fatalf("%s: %d/%d settled, %d succeeded", name, st.WorkflowsSettled, st.Workflows, st.WorkflowsSucceeded)
		}
		if st.StagesDropped != 0 || st.StagesStranded != 0 || st.FetchFailures != 0 {
			t.Fatalf("%s: dropped=%d stranded=%d fetchFailures=%d on a faultless run",
				name, st.StagesDropped, st.StagesStranded, st.FetchFailures)
		}
		if st.Formed == 0 || st.Batches > st.StagesCompleted {
			t.Fatalf("%s: formed=%d batches=%d completed=%d — inter-stage batching never engaged",
				name, st.Formed, st.Batches, st.StagesCompleted)
		}
	}
	// Batching coalesced parallel fan-out shards: executions < stages.
	if aware.Batches >= aware.StagesCompleted {
		t.Fatalf("aware: %d batches for %d stages — no coalescing", aware.Batches, aware.StagesCompleted)
	}

	// The pinned goldens. Every value below is deterministic; a diff means
	// placement, batching, or store pricing changed and must be reviewed.
	pins := []struct {
		name      string
		got, want int64
	}{
		{"workflows", int64(aware.Workflows), 164},
		{"stages", int64(aware.Stages), 765},
		{"aware.LocalStages", int64(aware.LocalStages), 484},
		{"aware.RemoteStages", int64(aware.RemoteStages), 281},
		{"aware.LocalBytes", int64(aware.LocalBytes), 1331893500},
		{"aware.FabricBytes", int64(aware.FabricBytes), 1062450140},
		{"aware.Batches", int64(aware.Batches), 763},
		{"aware.MakespanP50", int64(aware.MakespanP50), int64(373406279)},
		{"aware.MakespanP95", int64(aware.MakespanP95), int64(731727087)},
		{"blind.LocalStages", int64(blind.LocalStages), 158},
		{"blind.FabricBytes", int64(blind.FabricBytes), 1888694360},
		{"blind.MakespanP50", int64(blind.MakespanP50), int64(636800592)},
		{"blind.MakespanP95", int64(blind.MakespanP95), int64(1351933331)},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("golden drift: %s = %d, want %d", p.name, p.got, p.want)
		}
	}
}

// TestWorkflowRackRegime drives the drives-only shape (CPUInstances=0, the
// Figure 13 regime) with jitter armed: the ledger must balance and the
// batching/telemetry surfaces must engage regardless of placement policy.
func TestWorkflowRackRegime(t *testing.T) {
	wtr := workflowTestTrace(t)
	st, err := RunWorkflows(wtr, WorkflowSimConfig{
		Drives: 6, WorkersPerDrive: 2, QueueDepth: 128,
		Service: mixedService, Jitter: 0.15, Locality: true, MaxBatch: 4,
		BatchLinger: 20 * time.Millisecond,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkflowsSettled != st.Workflows {
		t.Fatalf("%d/%d workflows settled", st.WorkflowsSettled, st.Workflows)
	}
	if st.StagesCompleted+st.StagesDropped+st.StagesStranded != st.Stages {
		t.Fatalf("stage ledger leaks: %d+%d+%d != %d",
			st.StagesCompleted, st.StagesDropped, st.StagesStranded, st.Stages)
	}
	if st.LocalStages == 0 || st.Queue.MaxValue() < 0 {
		t.Fatalf("degenerate rack run: %+v", st)
	}
}

// TestWorkflowFanInStrandedByFault composes workflows with the PR 8 fault
// model: a scripted pool kill strands one branch of a fan-in mid-flight —
// the branch's task requeues onto the dead pool's durable queue and waits
// there past the horizon — so the join can never assemble its inputs and
// must settle stranded, while the surviving branch still completes. The
// per-workflow ledger (completed + dropped + stranded == admitted) is
// enforced inside RunWorkflows; this test pins the exact split.
func TestWorkflowFanInStrandedByFault(t *testing.T) {
	spec, err := trace.ParseWorkflowSpec(
		"0s:a=ppe-detection:;0s:b=ppe-detection:a;0s:c=ppe-detection:a;0s:d=ppe-detection:b,c")
	if err != nil {
		t.Fatal(err)
	}
	faults, err := trace.ParseFaultScript("400ms:pool-down:drive1")
	if err != nil {
		t.Fatal(err)
	}
	wtr := &trace.WorkflowTrace{
		Workflows: []trace.Workflow{{ID: 0, At: 0, Spec: spec}},
		Duration:  time.Second,
	}
	// Locality off: the blind rotation deterministically spreads a→drive0,
	// b→drive1, c→drive0, so the kill at 400ms catches exactly branch b
	// executing on drive1.
	st, err := RunWorkflows(wtr, WorkflowSimConfig{
		Drives: 2, WorkersPerDrive: 1, QueueDepth: 8,
		Service: mixedService, Locality: false, Faults: faults,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != 1 || st.Requeued != 1 {
		t.Fatalf("fault machinery: faults=%d requeued=%d, want 1/1", st.Faults, st.Requeued)
	}
	if st.StagesCompleted != 2 || st.StagesStranded != 2 || st.StagesDropped != 0 {
		t.Fatalf("ledger split completed=%d stranded=%d dropped=%d, want 2/2/0",
			st.StagesCompleted, st.StagesStranded, st.StagesDropped)
	}
	if st.WorkflowsSucceeded != 0 || st.WorkflowsSettled != 1 {
		t.Fatalf("workflow settled=%d succeeded=%d, want settled partial", st.WorkflowsSettled, st.WorkflowsSucceeded)
	}
}

// TestRunWorkflowsRejectsBadInput pins the config and fault-script guard
// rails.
func TestRunWorkflowsRejectsBadInput(t *testing.T) {
	wtr := workflowTestTrace(t)
	if _, err := RunWorkflows(nil, workflowGoldenConfig(true), 1); err == nil {
		t.Fatal("accepted a nil trace")
	}
	if _, err := RunWorkflows(wtr, WorkflowSimConfig{}, 1); err == nil {
		t.Fatal("accepted an empty config")
	}
	cfg := workflowGoldenConfig(true)
	cfg.Faults, _ = trace.ParseFaultScript("1s:pool-down:nonesuch")
	if _, err := RunWorkflows(wtr, cfg, 1); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown fault target accepted: %v", err)
	}
	bad := &trace.WorkflowTrace{Workflows: []trace.Workflow{{
		Spec: &trace.WorkflowSpec{Stages: []trace.WorkflowStage{{ID: "a", Benchmark: "nonesuch"}}},
	}}, Duration: time.Second}
	if _, err := RunWorkflows(bad, workflowGoldenConfig(true), 1); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown benchmark accepted: %v", err)
	}
}
